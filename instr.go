package pathsched

import "pathsched/internal/ir"

// Instruction constructors re-exported from the IR so programs can be
// authored entirely against the public API. See the ir package for
// detailed semantics; briefly: registers are 64-bit integers, memory
// is a flat word-addressed array, comparisons yield 0 or 1, and every
// basic block ends in exactly one control instruction.

// Data movement.
func MovI(dst Reg, imm int64) Instr { return ir.MovI(dst, imm) }
func Mov(dst, src Reg) Instr        { return ir.Mov(dst, src) }

// Register-register arithmetic and logic.
func Add(dst, a, b Reg) Instr { return ir.Add(dst, a, b) }
func Sub(dst, a, b Reg) Instr { return ir.Sub(dst, a, b) }
func Mul(dst, a, b Reg) Instr { return ir.Mul(dst, a, b) }
func And(dst, a, b Reg) Instr { return ir.And(dst, a, b) }
func Or(dst, a, b Reg) Instr  { return ir.Or(dst, a, b) }
func Xor(dst, a, b Reg) Instr { return ir.Xor(dst, a, b) }
func Shl(dst, a, b Reg) Instr { return ir.Shl(dst, a, b) }
func Shr(dst, a, b Reg) Instr { return ir.Shr(dst, a, b) }

// Register-immediate arithmetic and logic.
func AddI(dst, a Reg, imm int64) Instr { return ir.AddI(dst, a, imm) }
func MulI(dst, a Reg, imm int64) Instr { return ir.MulI(dst, a, imm) }
func AndI(dst, a Reg, imm int64) Instr { return ir.AndI(dst, a, imm) }
func OrI(dst, a Reg, imm int64) Instr  { return ir.OrI(dst, a, imm) }
func XorI(dst, a Reg, imm int64) Instr { return ir.XorI(dst, a, imm) }
func ShlI(dst, a Reg, imm int64) Instr { return ir.ShlI(dst, a, imm) }
func ShrI(dst, a Reg, imm int64) Instr { return ir.ShrI(dst, a, imm) }

// Comparisons (result is 0 or 1).
func CmpEQ(dst, a, b Reg) Instr          { return ir.CmpEQ(dst, a, b) }
func CmpNE(dst, a, b Reg) Instr          { return ir.CmpNE(dst, a, b) }
func CmpLT(dst, a, b Reg) Instr          { return ir.CmpLT(dst, a, b) }
func CmpLE(dst, a, b Reg) Instr          { return ir.CmpLE(dst, a, b) }
func CmpEQI(dst, a Reg, imm int64) Instr { return ir.CmpEQI(dst, a, imm) }
func CmpNEI(dst, a Reg, imm int64) Instr { return ir.CmpNEI(dst, a, imm) }
func CmpLTI(dst, a Reg, imm int64) Instr { return ir.CmpLTI(dst, a, imm) }
func CmpLEI(dst, a Reg, imm int64) Instr { return ir.CmpLEI(dst, a, imm) }
func CmpGTI(dst, a Reg, imm int64) Instr { return ir.CmpGTI(dst, a, imm) }
func CmpGEI(dst, a Reg, imm int64) Instr { return ir.CmpGEI(dst, a, imm) }

// Memory and observable output.
func Load(dst, base Reg, off int64) Instr      { return ir.Load(dst, base, off) }
func Store(base Reg, off int64, val Reg) Instr { return ir.Store(base, off, val) }
func Emit(src Reg) Instr                       { return ir.Emit(src) }

// Control flow.
func Br(cond Reg, taken, fallthru BlockID) Instr { return ir.Br(cond, taken, fallthru) }
func Jmp(target BlockID) Instr                   { return ir.Jmp(target) }
func Switch(idx Reg, targets ...BlockID) Instr   { return ir.Switch(idx, targets...) }
func Ret(src Reg) Instr                          { return ir.Ret(src) }

// Call invokes callee with args and continues at cont; the callee's r0
// lands in dst.
func Call(dst Reg, callee ProcID, cont BlockID, args ...Reg) Instr {
	return ir.Call(dst, callee, cont, args...)
}
