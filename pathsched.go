// Package pathsched is a from-scratch reproduction of Cliff Young and
// Michael D. Smith, "Better Global Scheduling Using Path Profiles"
// (MICRO-31, December 1998): superblock formation driven by general
// path profiles instead of CFG edge profiles, evaluated on an
// idealized 8-wide VLIW with a 32KB direct-mapped instruction cache.
//
// The package is the public façade over the full stack:
//
//   - an IR with basic blocks, procedures, and CFG analyses;
//   - an interpreter that both feeds profilers and measures scheduled
//     code cycle-accurately;
//   - edge and general-path profilers (the latter using the paper's
//     lazy O(1)-per-edge automaton);
//   - edge-based (mutual-most-likely + tail duplication + branch
//     target expansion / peeling / unrolling) and path-based
//     (most-likely-path-successor + unified enlargement) superblock
//     formation;
//   - a superblock compactor (renaming, DCE, top-down cycle list
//     scheduling) and register allocation back to the 128-entry file;
//   - Pettis–Hansen code layout and an I-cache model;
//   - the 14-benchmark suite and the experiment harness reproducing
//     the paper's Table 1 and Figures 4–7.
//
// # Quick start
//
// Build a program with the Builder, profile it, compile it under a
// scheme, and run it:
//
//	bd := pathsched.NewBuilder("demo", 64)
//	... // construct procedures and blocks (see examples/quickstart)
//	prog := bd.Finish()
//	profs, _ := pathsched.ProfileProgram(prog)
//	bin, _ := pathsched.Compile(prog, profs, pathsched.SchemeP4)
//	res, _ := pathsched.Execute(bin)
//	fmt.Println(res.Cycles)
//
// For the paper's experiments, use Experiments (or the
// cmd/experiments binary).
package pathsched

import (
	"fmt"

	"pathsched/internal/bench"
	"pathsched/internal/core"
	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/layout"
	"pathsched/internal/machine"
	"pathsched/internal/pipeline"
	"pathsched/internal/profile"
	"pathsched/internal/sched"
	"pathsched/internal/stats"
)

// Re-exported IR surface: enough to author programs against the
// public API (the examples use exactly this).
type (
	// Program is a whole compilation unit.
	Program = ir.Program
	// Proc is a procedure; Block a basic block; Instr an instruction.
	Proc  = ir.Proc
	Block = ir.Block
	Instr = ir.Instr
	// Reg names a register; BlockID and ProcID identify blocks and
	// procedures.
	Reg     = ir.Reg
	BlockID = ir.BlockID
	ProcID  = ir.ProcID
	// Builder and friends construct programs fluently.
	Builder      = ir.Builder
	ProcBuilder  = ir.ProcBuilder
	BlockBuilder = ir.BlockBuilder
)

// NewBuilder starts a new program with the given data-memory size in
// 64-bit words.
func NewBuilder(name string, memWords int64) *Builder { return ir.NewBuilder(name, memWords) }

// Scheme names a compilation configuration from the paper's figures.
type Scheme = pipeline.Scheme

// The paper's schemes: BB (basic-block scheduled baseline), M4/M16
// (edge-based, unroll 4/16), P4 (path-based), and P4e (path-based with
// restrained non-loop enlargement).
const (
	SchemeBB  = pipeline.SchemeBB
	SchemeM4  = pipeline.SchemeM4
	SchemeM16 = pipeline.SchemeM16
	SchemeP4  = pipeline.SchemeP4
	SchemeP4e = pipeline.SchemeP4e
)

// Schemes returns every scheme in presentation order.
func Schemes() []Scheme { return pipeline.AllSchemes() }

// Profiles bundles the results of one training run.
type Profiles struct {
	Edge  *profile.EdgeProfile
	Path  *profile.PathProfile
	Calls map[[2]ProcID]int64
}

// RunResult is the outcome of executing a program.
type RunResult = interp.Result

// Execute runs a program (scheduled or not) and returns its observable
// behaviour and performance counters.
func Execute(prog *Program) (*RunResult, error) {
	return interp.Run(prog, interp.Config{})
}

// ExecuteWithCache runs a scheduled, laid-out program against the
// paper's 32KB direct-mapped instruction cache and returns the run
// plus the cache's miss rate.
func ExecuteWithCache(prog *Program) (*RunResult, float64, error) {
	cache := machine.NewICache(machine.DefaultICache())
	res, err := interp.Run(prog, interp.Config{Fetch: cache})
	if err != nil {
		return nil, 0, err
	}
	return res, cache.MissRate(), nil
}

// ProfileProgram executes prog once, gathering the edge profile, the
// general path profile (depth 15, §2.2), and the dynamic call graph in
// a single training run. On decodable programs the run uses the fast
// profiling paths (batched path observation, counter-fused edge and
// call-graph reconstruction); the profiles are identical to what
// per-event observers gather.
func ProfileProgram(prog *Program) (*Profiles, error) {
	tp, err := profile.Train(prog, profile.PathConfig{})
	if err != nil {
		return nil, fmt.Errorf("pathsched: training run: %w", err)
	}
	return &Profiles{Edge: tp.Edge, Path: tp.Path, Calls: tp.Calls}, nil
}

// Compile forms superblocks under the given scheme, compacts them for
// the experimental VLIW, and lays the code out (Pettis–Hansen order
// using the training call graph). The input program is not modified.
// The returned program is executable and carries cycle annotations, so
// Execute reports scheduled cycle counts.
func Compile(prog *Program, profs *Profiles, scheme Scheme) (*Program, error) {
	work := ir.CloneProgram(prog)
	if scheme == SchemeBB {
		if err := sched.CompactBasicBlocks(work, sched.Options{}); err != nil {
			return nil, fmt.Errorf("pathsched: %w", err)
		}
		layoutProgram(work, profs)
		return work, nil
	}
	cfg := core.DefaultConfig()
	cfg.Edge, cfg.Path = profs.Edge, profs.Path
	switch scheme {
	case SchemeM4:
		cfg.Method = core.EdgeBased
		cfg.UnrollFactor = 4
	case SchemeM16:
		cfg.Method = core.EdgeBased
		cfg.UnrollFactor = 16
	case SchemeP4:
		cfg.Method = core.PathBased
	case SchemeP4e:
		cfg.Method = core.PathBased
		cfg.StopNonLoopAtFirstHead = true
	default:
		return nil, fmt.Errorf("pathsched: unknown scheme %q", scheme)
	}
	formed, err := core.Form(work, cfg)
	if err != nil {
		return nil, fmt.Errorf("pathsched: %w", err)
	}
	if err := sched.Compact(formed, sched.Options{}); err != nil {
		return nil, fmt.Errorf("pathsched: %w", err)
	}
	layoutProgram(formed.Prog, profs)
	return formed.Prog, nil
}

// layoutProgram assigns code addresses; block weights come from the
// original profile via origins (clones inherit their origin's heat).
func layoutProgram(prog *Program, profs *Profiles) {
	layout.Assign(prog, layout.Input{
		CallCounts: profs.Calls,
		BlockFreq: func(p ProcID, b BlockID) int64 {
			blk := prog.Proc(p).Block(b)
			if blk == nil {
				return 0
			}
			return profs.Edge.BlockFreq(p, blk.Origin)
		},
		EdgeFreq: func(p ProcID, from, to BlockID) int64 {
			pf, pt := prog.Proc(p).Block(from), prog.Proc(p).Block(to)
			if pf == nil || pt == nil {
				return 0
			}
			return profs.Edge.EdgeFreq(p, pf.Origin, pt.Origin)
		},
	})
}

// Benchmarks returns the names of the paper's 14-benchmark suite.
func Benchmarks() []string { return bench.Names() }

// ExperimentOptions configures Experiments.
type ExperimentOptions struct {
	// Benchmarks restricts the suite (nil = all 14).
	Benchmarks []string
	// Schemes restricts the schemes (nil = all five).
	Schemes []Scheme
	// RealisticLatency enables multi-cycle loads/multiplies.
	RealisticLatency bool
	// NoCache disables the I-cache simulation.
	NoCache bool
	// Parallelism bounds concurrent benchmark/scheme measurement
	// (0 = GOMAXPROCS, 1 = serial). Results are identical either way.
	Parallelism int
}

// ExperimentResults bundles raw measurements with renderers for every
// table and figure in the paper.
type ExperimentResults struct {
	Results []*pipeline.Result
}

// Experiments runs the paper's evaluation and returns the raw
// measurements; the result's methods render Table 1 and Figures 4–7.
func Experiments(opts ExperimentOptions) (*ExperimentResults, error) {
	mc := machine.Default()
	mc.Realistic = opts.RealisticLatency
	popts := pipeline.Options{Machine: mc, Parallelism: opts.Parallelism}
	if !opts.NoCache {
		cache := machine.DefaultICache()
		popts.Cache = &cache
	}
	schemes := opts.Schemes
	if schemes == nil {
		schemes = pipeline.AllSchemes()
	}
	runner := pipeline.NewRunner(popts)
	results, err := runner.RunSuite(opts.Benchmarks, schemes)
	if err != nil {
		return nil, err
	}
	return &ExperimentResults{Results: results}, nil
}

// Table1 renders benchmark statistics (paper Table 1).
func (e *ExperimentResults) Table1() string { return stats.Table1(e.Results) }

// Figure4 renders ideal-cache normalized cycles, P4 vs M4.
func (e *ExperimentResults) Figure4() string { return stats.Figure4(e.Results) }

// Figure5 renders cache-adjusted normalized cycles, P4 and P4e vs M4.
func (e *ExperimentResults) Figure5() string { return stats.Figure5(e.Results) }

// Figure6 renders the unroll-aggressiveness comparison, P4e/M16 vs M4.
func (e *ExperimentResults) Figure6() string { return stats.Figure6(e.Results) }

// Figure7 renders dynamic superblock statistics.
func (e *ExperimentResults) Figure7() string { return stats.Figure7(e.Results) }

// MissRates renders per-scheme I-cache miss rates (§4).
func (e *ExperimentResults) MissRates() string { return stats.MissRates(e.Results) }

// Summary renders geometric-mean normalized cycles per scheme.
func (e *ExperimentResults) Summary() string { return stats.Summary(e.Results) }
