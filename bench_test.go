package pathsched

// The benchmark harness regenerates every table and figure of the
// paper as Go benchmarks: each sub-benchmark runs the corresponding
// pipeline configuration and reports the figure's quantity via
// b.ReportMetric, so `go test -bench=.` reproduces the evaluation row
// by row (cmd/experiments renders the same data as formatted text).
//
//	BenchmarkTable1     — baseline dynamic statistics per benchmark
//	BenchmarkFigure4    — P4 vs M4, ideal I-cache (metric P4/M4)
//	BenchmarkFigure5    — P4 and P4e vs M4 with the 32KB I-cache
//	BenchmarkFigure6    — P4e and M16 vs M4 with the I-cache
//	BenchmarkFigure7    — blocks executed per superblock vs size
//	BenchmarkMissRates  — I-cache miss rates (the §4 gcc/go discussion)
//
// Component benchmarks at the bottom measure the infrastructure
// itself (profiling overhead, formation, compaction, interpretation).

import (
	"testing"

	"pathsched/internal/bench"
	"pathsched/internal/core"
	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/machine"
	"pathsched/internal/pipeline"
	"pathsched/internal/profile"
	"pathsched/internal/sched"
)

func runOnce(b *testing.B, name string, schemes []pipeline.Scheme, cache bool) *pipeline.Result {
	b.Helper()
	opts := pipeline.Options{}
	if cache {
		c := machine.DefaultICache()
		opts.Cache = &c
	}
	runner := pipeline.NewRunner(opts)
	res, err := runner.RunBenchmark(bench.ByName(name), schemes)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func BenchmarkTable1(b *testing.B) {
	for _, name := range bench.Names() {
		b.Run(name, func(b *testing.B) {
			var res *pipeline.Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, name, []pipeline.Scheme{pipeline.SchemeBB}, false)
			}
			m := res.ByScheme[pipeline.SchemeBB]
			b.ReportMetric(float64(m.DynBranches)/1e3, "Kbranches")
			b.ReportMetric(float64(m.IdealCycles)/1e3, "Kcycles")
			b.ReportMetric(float64(m.DynInstrs)/1e3, "Kinstrs")
			b.ReportMetric(float64(res.OrigCodeBytes)/1024, "KBcode")
		})
	}
}

func BenchmarkFigure4(b *testing.B) {
	for _, name := range bench.Names() {
		b.Run(name, func(b *testing.B) {
			var res *pipeline.Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, name, []pipeline.Scheme{pipeline.SchemeM4, pipeline.SchemeP4}, false)
			}
			m4 := res.ByScheme[pipeline.SchemeM4]
			p4 := res.ByScheme[pipeline.SchemeP4]
			b.ReportMetric(float64(p4.IdealCycles)/float64(m4.IdealCycles), "P4/M4")
		})
	}
}

func BenchmarkFigure5(b *testing.B) {
	schemes := []pipeline.Scheme{pipeline.SchemeM4, pipeline.SchemeP4, pipeline.SchemeP4e}
	for _, name := range bench.Names() {
		b.Run(name, func(b *testing.B) {
			var res *pipeline.Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, name, schemes, true)
			}
			m4 := res.ByScheme[pipeline.SchemeM4]
			b.ReportMetric(float64(res.ByScheme[pipeline.SchemeP4].Cycles)/float64(m4.Cycles), "P4/M4")
			b.ReportMetric(float64(res.ByScheme[pipeline.SchemeP4e].Cycles)/float64(m4.Cycles), "P4e/M4")
		})
	}
}

func BenchmarkFigure6(b *testing.B) {
	schemes := []pipeline.Scheme{pipeline.SchemeM4, pipeline.SchemeM16, pipeline.SchemeP4e}
	for _, name := range bench.Names() {
		b.Run(name, func(b *testing.B) {
			var res *pipeline.Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, name, schemes, true)
			}
			m4 := res.ByScheme[pipeline.SchemeM4]
			b.ReportMetric(float64(res.ByScheme[pipeline.SchemeP4e].Cycles)/float64(m4.Cycles), "P4e/M4")
			b.ReportMetric(float64(res.ByScheme[pipeline.SchemeM16].Cycles)/float64(m4.Cycles), "M16/M4")
		})
	}
}

func BenchmarkFigure7(b *testing.B) {
	schemes := []pipeline.Scheme{pipeline.SchemeM4, pipeline.SchemeM16,
		pipeline.SchemeP4e, pipeline.SchemeP4}
	for _, name := range bench.Names() {
		b.Run(name, func(b *testing.B) {
			var res *pipeline.Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, name, schemes, false)
			}
			for _, s := range schemes {
				m := res.ByScheme[s]
				b.ReportMetric(m.AvgBlocksExecuted, string(s)+"-exec")
				b.ReportMetric(m.AvgSBSize, string(s)+"-size")
			}
		})
	}
}

func BenchmarkMissRates(b *testing.B) {
	schemes := []pipeline.Scheme{pipeline.SchemeM4, pipeline.SchemeM16,
		pipeline.SchemeP4e, pipeline.SchemeP4}
	for _, name := range []string{"gcc", "go"} {
		b.Run(name, func(b *testing.B) {
			var res *pipeline.Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, name, schemes, true)
			}
			for _, s := range schemes {
				b.ReportMetric(res.ByScheme[s].MissRate*100, string(s)+"-miss%")
			}
		})
	}
}

// BenchmarkSuiteParallelism measures the experiment pipeline's wall
// clock at different worker counts over a mixed four-benchmark subset:
// j1 is the historical serial order, jmax uses GOMAXPROCS workers at
// both the benchmark and scheme level. On a multi-core runner jmax
// should approach a len(schemes)× speedup; results are identical (see
// TestParallelSuiteReportsAreByteIdentical).
func BenchmarkSuiteParallelism(b *testing.B) {
	names := []string{"alt", "ph", "corr", "wc"}
	for _, cfg := range []struct {
		name string
		par  int
	}{{"j1", 1}, {"jmax", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			c := machine.DefaultICache()
			runner := pipeline.NewRunner(pipeline.Options{Cache: &c, Parallelism: cfg.par})
			for i := 0; i < b.N; i++ {
				if _, err := runner.RunSuite(names, pipeline.AllSchemes()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Component benchmarks -------------------------------------------

// BenchmarkProfiling compares edge-profiled, path-profiled, and
// unobserved interpretation of one benchmark, quantifying the paper's
// claim that lazy general-path profiling has edge-profiling-like
// overhead (§3.1).
func BenchmarkProfiling(b *testing.B) {
	prog := bench.ByName("wc").Build(bench.ByName("wc").Train)
	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := interp.Run(prog, interp.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("edge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ep := profile.NewEdgeProfiler(prog)
			if _, err := interp.Run(prog, interp.Config{Observer: ep}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pp := profile.NewPathProfiler(prog, profile.PathConfig{})
			if _, err := interp.Run(prog, interp.Config{Observer: pp}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The fast paths the pipeline actually takes: a batched path
	// profiler on a counted run with edge/call reconstruction
	// (profile.Train), and the observer-free fused point profile
	// (profile.PointProfiles).
	b.Run("fast-train", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := profile.Train(prog, profile.PathConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fused-edge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := profile.PointProfiles(prog); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBLProfiler measures the Ball–Larus numbered-path scheme the
// same way BenchmarkProfiling measures the window profiler: per-event
// observation, the batched training fast path (the direct comparison
// point for fast-train above), and the freeze that decodes numbered
// paths back into a PathProfile.
func BenchmarkBLProfiler(b *testing.B) {
	bm := bench.ByName("wc")
	prog := bm.Build(bm.Train)
	b.Run("path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bl := profile.NewBLProfiler(prog, profile.BLConfig{})
			if _, err := interp.Run(prog, interp.Config{Observer: bl}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bl-train", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := profile.TrainBL(prog, profile.BLConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("freeze", func(b *testing.B) {
		tp, err := profile.TrainBL(prog, profile.BLConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tp.BL.Profile()
		}
	})
}

// BenchmarkFormation measures the form pass alone under both methods.
func BenchmarkFormation(b *testing.B) {
	bm := bench.ByName("gcc")
	prog := bm.Build(bm.Train)
	ep := profile.NewEdgeProfiler(prog)
	pp := profile.NewPathProfiler(prog, profile.PathConfig{})
	if _, err := interp.Run(prog, interp.Config{Observer: profile.Multi{ep, pp}}); err != nil {
		b.Fatal(err)
	}
	eprof, pprof := ep.Profile(), pp.Profile()
	for _, method := range []core.Method{core.EdgeBased, core.PathBased} {
		b.Run(method.String(), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Method = method
			cfg.Edge, cfg.Path = eprof, pprof
			for i := 0; i < b.N; i++ {
				if _, err := core.Form(prog, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompaction measures the compact pass (merging, renaming,
// DCE, scheduling, allocation) on path-formed superblocks.
func BenchmarkCompaction(b *testing.B) {
	bm := bench.ByName("gcc")
	prog := bm.Build(bm.Train)
	ep := profile.NewEdgeProfiler(prog)
	pp := profile.NewPathProfiler(prog, profile.PathConfig{})
	if _, err := interp.Run(prog, interp.Config{Observer: profile.Multi{ep, pp}}); err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Method = core.PathBased
	cfg.Edge, cfg.Path = ep.Profile(), pp.Profile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		formed, err := core.Form(prog, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := sched.Compact(formed, sched.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpDispatch races the two dispatch engines on the
// no-observer fast path (a measurement run): the preserved seed engine
// (reference, per-instruction switch over ir.Instr) against the
// pre-decoded threaded-code engine behind interp.Run (decoded), on
// both an unscheduled build and a scheduled P4 binary of the same
// benchmark. The decoded/reference Minstr/s ratio is the speedup the
// decode buys; cmd/benchinterp records it in BENCH_interp.json.
func BenchmarkInterpDispatch(b *testing.B) {
	bm := bench.ByName("wc")
	unsched := bm.Build(bm.Train)
	profs, err := ProfileProgram(bm.Build(bm.Train))
	if err != nil {
		b.Fatal(err)
	}
	scheduled, err := Compile(bm.Build(bm.Train), profs, SchemeP4)
	if err != nil {
		b.Fatal(err)
	}
	engines := []struct {
		name string
		run  func(*Program, interp.Config) (*interp.Result, error)
	}{
		{"reference", interp.ReferenceRun},
		{"decoded", interp.Run},
	}
	progs := []struct {
		name string
		prog *Program
	}{
		{"unscheduled", unsched},
		{"scheduled", scheduled},
	}
	for _, p := range progs {
		for _, e := range engines {
			b.Run(p.name+"/"+e.name, func(b *testing.B) {
				var instrs int64
				for i := 0; i < b.N; i++ {
					res, err := e.run(p.prog, interp.Config{})
					if err != nil {
						b.Fatal(err)
					}
					instrs = res.DynInstrs
				}
				b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
			})
		}
	}
}

// event is one captured observer callback, for profiler replay.
type event struct {
	kind byte // 0 enter, 1 exit, 2 edge, 3 block
	p    ProcID
	a, b BlockID
}

type eventRecorder struct {
	events []event
	limit  int
}

func (r *eventRecorder) full() bool { return len(r.events) >= r.limit }
func (r *eventRecorder) EnterProc(p ProcID, entry BlockID) {
	if !r.full() {
		r.events = append(r.events, event{0, p, entry, 0})
	}
}
func (r *eventRecorder) ExitProc(p ProcID) {
	if !r.full() {
		r.events = append(r.events, event{1, p, 0, 0})
	}
}
func (r *eventRecorder) Edge(p ProcID, from, to BlockID) {
	if !r.full() {
		r.events = append(r.events, event{2, p, from, to})
	}
}
func (r *eventRecorder) Block(p ProcID, b BlockID) {
	if !r.full() {
		r.events = append(r.events, event{3, p, b, 0})
	}
}

// BenchmarkProfilerHotPath measures the observer callbacks themselves
// — the per-event cost of the dense edge profiler and of the lazy path
// profiler — by replaying a captured event stream from a real training
// run into a fresh profiler per iteration, without interpreter time in
// the loop.
func BenchmarkProfilerHotPath(b *testing.B) {
	bm := bench.ByName("wc")
	prog := bm.Build(bm.Train)
	rec := &eventRecorder{limit: 1 << 17}
	if _, err := interp.Run(prog, interp.Config{Observer: rec}); err != nil {
		b.Fatal(err)
	}
	replay := func(obs interp.Observer) {
		for _, ev := range rec.events {
			switch ev.kind {
			case 0:
				obs.EnterProc(ev.p, ev.a)
			case 1:
				obs.ExitProc(ev.p)
			case 2:
				obs.Edge(ev.p, ev.a, ev.b)
			case 3:
				obs.Block(ev.p, ev.a)
			}
		}
	}
	b.Run("edge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			replay(profile.NewEdgeProfiler(prog))
		}
		b.ReportMetric(float64(len(rec.events))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	})
	b.Run("path", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			replay(profile.NewPathProfiler(prog, profile.PathConfig{}))
		}
		b.ReportMetric(float64(len(rec.events))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	})
	b.Run("multi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			replay(profile.Multi{
				profile.NewEdgeProfiler(prog),
				profile.NewPathProfiler(prog, profile.PathConfig{}),
				profile.NewCallGraphProfiler(),
			})
		}
		b.ReportMetric(float64(len(rec.events))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	})
}

// batchEv is one captured BatchObserver callback, for replay.
type batchEv struct {
	kind  byte // 0 begin, 1 end, 2 batch
	p     ProcID
	entry BlockID
	recs  []interp.EdgeRec
}

type batchRecorder struct {
	events []batchEv
	nrecs  int
	limit  int
}

func (r *batchRecorder) BeginProc(p ProcID, entry BlockID) {
	if r.nrecs < r.limit {
		r.events = append(r.events, batchEv{kind: 0, p: p, entry: entry})
	}
}
func (r *batchRecorder) EndProc(p ProcID) {
	if r.nrecs < r.limit {
		r.events = append(r.events, batchEv{kind: 1, p: p})
	}
}
func (r *batchRecorder) EdgeBatch(p ProcID, recs []interp.EdgeRec) {
	if r.nrecs < r.limit {
		r.events = append(r.events, batchEv{kind: 2, p: p,
			recs: append([]interp.EdgeRec(nil), recs...)})
		r.nrecs += len(recs)
	}
}

// BenchmarkProfilerBatchHotPath measures the batched delivery path of
// the path profiler — BeginProc/EdgeBatch/EndProc over a captured
// batch stream from a real training run — against which the per-event
// replay in BenchmarkProfilerHotPath/path is the baseline.
func BenchmarkProfilerBatchHotPath(b *testing.B) {
	bm := bench.ByName("wc")
	prog := bm.Build(bm.Train)
	rec := &batchRecorder{limit: 1 << 17}
	if _, err := interp.Run(prog, interp.Config{Batch: rec}); err != nil {
		b.Fatal(err)
	}
	var events int
	for _, ev := range rec.events {
		events += 1 + len(ev.recs)
	}
	for i := 0; i < b.N; i++ {
		pp := profile.NewPathProfiler(prog, profile.PathConfig{})
		for _, ev := range rec.events {
			switch ev.kind {
			case 0:
				pp.BeginProc(ev.p, ev.entry)
			case 1:
				pp.EndProc(ev.p)
			case 2:
				pp.EdgeBatch(ev.p, ev.recs)
			}
		}
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrecords/s")
}

// branchyChain builds an n-block procedure where every block ends in a
// conditional branch to the next two blocks (mod n). It is never
// executed — it only gives the path profiler a legal CFG — so block
// walks can be synthesized to stress specific automaton behaviours.
func branchyChain(n int) *Program {
	bd := NewBuilder("chainbench", 8)
	pb := bd.Proc("main")
	bbs := pb.NewBlocks(n)
	for i, bb := range bbs {
		bb.Add(ir.MovI(1, int64(i)))
		bb.Br(1, bbs[(i+1)%n].ID(), bbs[(i+2)%n].ID())
	}
	return bd.Program()
}

// chainWalk synthesizes a legal random walk of m blocks over a
// branchyChain program (deterministic via a fixed linear generator).
func chainWalk(n, m int) []BlockID {
	walk := make([]BlockID, m)
	state := uint64(12345)
	cur := 0
	for i := range walk {
		walk[i] = BlockID(cur)
		state = state*6364136223846793005 + 1442695040888963407
		cur = (cur + 1 + int(state>>63)) % n
	}
	return walk
}

// BenchmarkProfilerAutomaton isolates the path automaton itself: the
// per-block step cost in dense mode (successor slices indexed by
// BlockID) and in the map-fallback mode used above the block-count
// threshold, plus the node-creation (intern) rate on a cold automaton.
// Every conditional block consumes profiling depth, so a random walk
// over branchyChain churns distinct windows far harder than real
// training runs do.
func BenchmarkProfilerAutomaton(b *testing.B) {
	const m = 1 << 16
	run := func(b *testing.B, nblocks int, wantDense bool) {
		prog := branchyChain(nblocks)
		walk := chainWalk(nblocks, m)
		for i := 0; i < b.N; i++ {
			pp := profile.NewPathProfiler(prog, profile.PathConfig{})
			pp.EnterProc(0, walk[0])
			for _, blk := range walk {
				pp.Block(0, blk)
			}
			pp.ExitProc(0)
			if i == 0 {
				st := pp.AutomatonStats()[0]
				if st.Dense != wantDense {
					b.Fatalf("dense = %v, want %v", st.Dense, wantDense)
				}
				b.ReportMetric(float64(st.Nodes), "nodes")
			}
		}
		b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mblocks/s")
	}
	b.Run("dense", func(b *testing.B) { run(b, 64, true) })
	b.Run("map", func(b *testing.B) { run(b, 160, false) })
}

// BenchmarkInterpreter measures raw scheduled-code execution speed.
func BenchmarkInterpreter(b *testing.B) {
	prog := demoProgram()
	profs, err := ProfileProgram(prog)
	if err != nil {
		b.Fatal(err)
	}
	bin, err := Compile(prog, profs, SchemeP4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		res, err := Execute(bin)
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.DynInstrs
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}
