package pathsched_test

import (
	"fmt"
	"log"

	"pathsched"
)

// buildCounter constructs a tiny counting loop used by the examples.
func buildCounter(n int64) *pathsched.Program {
	bd := pathsched.NewBuilder("counter", 16)
	pb := bd.Proc("main")
	entry, head, body, exit := pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, s, c = 1, 2, 3
	entry.Add(pathsched.MovI(i, 0), pathsched.MovI(s, 0))
	entry.Jmp(head.ID())
	head.Add(pathsched.CmpLTI(c, i, n))
	head.Br(c, body.ID(), exit.ID())
	body.Add(pathsched.Add(s, s, i), pathsched.AddI(i, i, 1))
	body.Jmp(head.ID())
	exit.Add(pathsched.Emit(s))
	exit.Ret(s)
	return bd.Finish()
}

// ExampleExecute runs an unscheduled program and reads its observable
// output.
func ExampleExecute() {
	prog := buildCounter(10)
	res, err := pathsched.Execute(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Ret, res.Output)
	// Output: 45 [45]
}

// ExampleCompile shows the profile → compile → measure flow and that
// superblock scheduling preserves behaviour while reducing cycles.
func ExampleCompile() {
	prog := buildCounter(1000)
	profs, err := pathsched.ProfileProgram(prog)
	if err != nil {
		log.Fatal(err)
	}
	base, _ := pathsched.Execute(prog)
	bin, err := pathsched.Compile(prog, profs, pathsched.SchemeP4)
	if err != nil {
		log.Fatal(err)
	}
	res, _ := pathsched.Execute(bin)
	fmt.Println("same result:", res.Ret == base.Ret)
	fmt.Println("fewer cycles:", res.Cycles < base.Cycles)
	// Output:
	// same result: true
	// fewer cycles: true
}

// ExampleProfiles_pathQueries demonstrates exact path-frequency
// queries, the capability edge profiles lack (paper Figure 1).
func ExampleProfiles_pathQueries() {
	prog := buildCounter(100)
	profs, err := pathsched.ProfileProgram(prog)
	if err != nil {
		log.Fatal(err)
	}
	// Blocks: 1=head, 2=body. Two consecutive iterations:
	twoIters := []pathsched.BlockID{1, 2, 1, 2}
	fmt.Println("f(head,body) =", profs.Path.Freq(0, []pathsched.BlockID{1, 2}))
	fmt.Println("f(two iterations) =", profs.Path.Freq(0, twoIters))
	// Output:
	// f(head,body) = 100
	// f(two iterations) = 99
}
