package pathsched

import (
	"strings"
	"testing"
)

// demoProgram builds a small hot loop with a biased branch through the
// public API.
func demoProgram() *Program {
	bd := NewBuilder("demo", 64)
	pb := bd.Proc("main")
	entry, head, hot, cold, latch, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, s, c, t = 1, 2, 3, 4
	entry.Add(MovI(i, 0), MovI(s, 0))
	entry.Jmp(head.ID())
	head.Add(CmpLTI(c, i, 3000))
	head.Br(c, hot.ID(), exit.ID())
	hot.Add(AndI(t, i, 7), CmpEQI(c, t, 7))
	hot.Br(c, cold.ID(), latch.ID())
	cold.Add(AddI(s, s, 100))
	cold.Jmp(latch.ID())
	latch.Add(AddI(s, s, 1), AddI(i, i, 1))
	latch.Jmp(head.ID())
	exit.Add(Emit(s))
	exit.Ret(s)
	return bd.Finish()
}

func TestPublicAPICompileAndRun(t *testing.T) {
	prog := demoProgram()
	orig, err := Execute(prog)
	if err != nil {
		t.Fatal(err)
	}
	profs, err := ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	var bbCycles int64
	for _, scheme := range Schemes() {
		bin, err := Compile(prog, profs, scheme)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		res, err := Execute(bin)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.Ret != orig.Ret || len(res.Output) != len(orig.Output) {
			t.Fatalf("%s: behaviour diverged", scheme)
		}
		if scheme == SchemeBB {
			bbCycles = res.Cycles
		} else if res.Cycles >= bbCycles {
			t.Errorf("%s: %d cycles, not better than BB's %d", scheme, res.Cycles, bbCycles)
		}
		// Compiled code must carry schedule annotations.
		annotated := false
		for _, p := range bin.Procs {
			for _, b := range p.Blocks {
				if b.Cycles != nil {
					annotated = true
				}
			}
		}
		if !annotated {
			t.Fatalf("%s: no schedule annotations", scheme)
		}
	}
}

func TestPublicAPICacheExecution(t *testing.T) {
	prog := demoProgram()
	profs, err := ProfileProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := Compile(prog, profs, SchemeP4)
	if err != nil {
		t.Fatal(err)
	}
	res, missRate, err := ExecuteWithCache(bin)
	if err != nil {
		t.Fatal(err)
	}
	if res.FetchStall < 0 || missRate < 0 || missRate > 1 {
		t.Fatalf("implausible cache results: stall=%d rate=%v", res.FetchStall, missRate)
	}
}

func TestPublicAPIUnknownScheme(t *testing.T) {
	prog := demoProgram()
	profs, _ := ProfileProgram(prog)
	if _, err := Compile(prog, profs, Scheme("nope")); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

func TestCompileDoesNotMutateInput(t *testing.T) {
	prog := demoProgram()
	before := prog.Dump()
	profs, _ := ProfileProgram(prog)
	if _, err := Compile(prog, profs, SchemeP4); err != nil {
		t.Fatal(err)
	}
	if prog.Dump() != before {
		t.Fatal("Compile mutated its input")
	}
}

func TestExperimentsAPI(t *testing.T) {
	res, err := Experiments(ExperimentOptions{
		Benchmarks: []string{"alt", "corr"},
		Schemes:    []Scheme{SchemeBB, SchemeM4, SchemeP4},
	})
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table1()
	if !strings.Contains(table, "alt") || !strings.Contains(table, "corr") {
		t.Fatalf("Table 1 missing benchmarks:\n%s", table)
	}
	fig4 := res.Figure4()
	if !strings.Contains(fig4, "P4") {
		t.Fatalf("Figure 4 malformed:\n%s", fig4)
	}
	for _, render := range []string{res.Figure5(), res.Figure6(), res.Figure7(), res.MissRates(), res.Summary()} {
		if render == "" {
			t.Fatal("empty rendering")
		}
	}
	if got := len(Benchmarks()); got != 14 {
		t.Fatalf("suite has %d benchmarks, want 14", got)
	}
}
