// Correlated: the paper's "corr" microbenchmark. Two branches in a
// loop body test the same data-dependent predicate, so the second is
// fully determined by the first. Edge profiles record two independent
// 50/50 branches; a general path profile knows that the path through
// the first branch predicts the second exactly, and the path-based
// superblock enlarger extends superblocks along the correlated
// successor (§2.2: "this strategy captures correlation").
package main

import (
	"fmt"
	"log"

	"pathsched"
)

func corrProgram() *pathsched.Program {
	const dataLen = 512
	bd := pathsched.NewBuilder("corr", dataLen+16)
	// Pseudo-random 0/1 data: a fixed xorshift fills the table, so the
	// predicate is unpredictable pointwise but identical for both
	// branches of one iteration.
	vals := make([]int64, dataLen)
	x := uint64(0x9e3779b97f4a7c15)
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = int64(x & 1)
	}
	bd.Data(0, vals...)

	pb := bd.Proc("main")
	entry, head, first, t1, f1, mid, t2, f2, latch, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(),
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, s, a, c, t = 1, 2, 3, 4, 5
	entry.Add(pathsched.MovI(i, 0), pathsched.MovI(s, 0))
	entry.Jmp(head.ID())
	head.Add(pathsched.CmpLTI(c, i, 20000))
	head.Br(c, first.ID(), exit.ID())
	first.Add(
		pathsched.AndI(t, i, dataLen-1),
		pathsched.Load(a, t, 0),
		pathsched.CmpEQI(c, a, 1),
	)
	first.Br(c, t1.ID(), f1.ID())
	t1.Add(pathsched.AddI(s, s, 7))
	t1.Jmp(mid.ID())
	f1.Add(pathsched.AddI(s, s, 1))
	f1.Jmp(mid.ID())
	mid.Add(pathsched.XorI(s, s, 0x55), pathsched.CmpEQI(c, a, 1)) // same predicate
	mid.Br(c, t2.ID(), f2.ID())
	t2.Add(pathsched.MulI(s, s, 3), pathsched.AndI(s, s, 0xfffff))
	t2.Jmp(latch.ID())
	f2.Add(pathsched.ShrI(s, s, 1))
	f2.Jmp(latch.ID())
	latch.Add(pathsched.AddI(i, i, 1))
	latch.Jmp(head.ID())
	exit.Add(pathsched.Emit(s))
	exit.Ret(s)
	return bd.Finish()
}

func main() {
	prog := corrProgram()
	profs, err := pathsched.ProfileProgram(prog)
	if err != nil {
		log.Fatal(err)
	}

	// Block ids: first=2, t1=3, f1=4, mid=5, t2=6, f2=7.
	fmt.Println("the two branches look independent to an edge profile:")
	fmt.Printf("  first:  T %d / F %d\n", profs.Edge.EdgeFreq(0, 2, 3), profs.Edge.EdgeFreq(0, 2, 4))
	fmt.Printf("  second: T %d / F %d\n", profs.Edge.EdgeFreq(0, 5, 6), profs.Edge.EdgeFreq(0, 5, 7))
	fmt.Println("but paths expose perfect correlation:")
	fmt.Printf("  f(t1,mid,t2) = %-6d f(t1,mid,f2) = %d\n",
		profs.Path.Freq(0, []pathsched.BlockID{3, 5, 6}),
		profs.Path.Freq(0, []pathsched.BlockID{3, 5, 7}))
	fmt.Printf("  f(f1,mid,f2) = %-6d f(f1,mid,t2) = %d\n",
		profs.Path.Freq(0, []pathsched.BlockID{4, 5, 7}),
		profs.Path.Freq(0, []pathsched.BlockID{4, 5, 6}))

	fmt.Println("\nscheduled cycle counts:")
	var base int64
	for _, scheme := range []pathsched.Scheme{pathsched.SchemeBB, pathsched.SchemeM4, pathsched.SchemeP4} {
		bin, err := pathsched.Compile(prog, profs, scheme)
		if err != nil {
			log.Fatal(err)
		}
		res, err := pathsched.Execute(bin)
		if err != nil {
			log.Fatal(err)
		}
		if scheme == pathsched.SchemeM4 {
			base = res.Cycles
		}
		fmt.Printf("  %-3s %8d cycles\n", scheme, res.Cycles)
		if scheme == pathsched.SchemeP4 && base > 0 {
			fmt.Printf("\nP4 runs at %.1f%% of M4's cycles: superblocks extended along the\n"+
				"correlated successor rarely take early exits, so speculative code\n"+
				"motion above the second branch is almost never wasted.\n",
				100*float64(res.Cycles)/float64(base))
		}
	}
}
