// Quickstart: build the paper's Figure 1 CFG through the public API,
// show why edge profiles cannot determine a trace's completion
// frequency while path profiles can, then compile the program with
// edge-based and path-based superblock scheduling and compare cycles.
package main

import (
	"fmt"
	"log"

	"pathsched"
)

// figure1 builds the CFG of the paper's Figure 1, wrapped in a loop so
// profiles accumulate. Per iteration the program either follows A→B→C
// or X→B→Y, in strict alternation-free correlation: whoever enters B
// through A always leaves toward C, and whoever enters through X
// leaves toward Y. Edge profiles see four edges of equal weight and
// cannot tell whether trace ABC ever completes; path profiles count
// f(ABC) exactly.
func figure1() *pathsched.Program {
	bd := pathsched.NewBuilder("figure1", 64)
	pb := bd.Proc("main")
	entry, head, a, x, b, c, y, latch, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(),
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, s, cond, t = 1, 2, 3, 4
	entry.Add(pathsched.MovI(i, 0), pathsched.MovI(s, 0))
	entry.Jmp(head.ID())
	head.Add(pathsched.CmpLTI(cond, i, 2000))
	head.Br(cond, a.ID(), exit.ID())
	// Alternate: even iterations take A, odd take X.
	a.Add(pathsched.AndI(t, i, 1), pathsched.CmpEQI(cond, t, 0))
	a.Br(cond, b.ID(), x.ID())
	x.Add(pathsched.AddI(s, s, 10))
	x.Jmp(b.ID()) // side entrance into the AB trace
	b.Add(pathsched.AndI(t, i, 1), pathsched.CmpEQI(cond, t, 0), pathsched.AddI(s, s, 1))
	b.Br(cond, c.ID(), y.ID())
	c.Add(pathsched.AddI(s, s, 2))
	c.Jmp(latch.ID())
	y.Add(pathsched.AddI(s, s, 3))
	y.Jmp(latch.ID())
	latch.Add(pathsched.AddI(i, i, 1))
	latch.Jmp(head.ID())
	exit.Add(pathsched.Emit(s))
	exit.Ret(s)
	return bd.Finish()
}

func main() {
	prog := figure1()
	profs, err := pathsched.ProfileProgram(prog)
	if err != nil {
		log.Fatal(err)
	}

	// Edge profile: B's outgoing edges are a dead 50/50 heat — the
	// completion frequency of trace A,B,C could be anywhere in
	// [0, 1000]. (Block ids: A=2, X=3, B=4, C=5, Y=6.)
	fmt.Println("edge profile around B:")
	fmt.Printf("  f(A→B) = %d   f(X→B) = %d\n",
		profs.Edge.EdgeFreq(0, 2, 4), profs.Edge.EdgeFreq(0, 3, 4))
	fmt.Printf("  f(B→C) = %d   f(B→Y) = %d\n",
		profs.Edge.EdgeFreq(0, 4, 5), profs.Edge.EdgeFreq(0, 4, 6))

	fmt.Println("path profile resolves the ambiguity exactly:")
	fmt.Printf("  f(A,B,C) = %d   f(A,B,Y) = %d\n",
		profs.Path.Freq(0, []pathsched.BlockID{2, 4, 5}),
		profs.Path.Freq(0, []pathsched.BlockID{2, 4, 6}))
	fmt.Printf("  f(X,B,Y) = %d   f(X,B,C) = %d\n",
		profs.Path.Freq(0, []pathsched.BlockID{3, 4, 6}),
		profs.Path.Freq(0, []pathsched.BlockID{3, 4, 5}))

	fmt.Println("\ncompiling and measuring:")
	for _, scheme := range []pathsched.Scheme{pathsched.SchemeBB, pathsched.SchemeM4, pathsched.SchemeP4} {
		bin, err := pathsched.Compile(prog, profs, scheme)
		if err != nil {
			log.Fatal(err)
		}
		res, err := pathsched.Execute(bin)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-3s  %7d cycles  (checksum %d)\n", scheme, res.Cycles, res.Ret)
	}
	fmt.Println("\npath-based formation selects traces that actually complete,")
	fmt.Println("so speculation above the B branch pays off instead of being wasted.")
}
