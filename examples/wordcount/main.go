// Wordcount: an end-to-end run of the suite's wc benchmark through the
// experiment harness — train on one synthetic document, compile under
// every scheme, measure on another document with the instruction-cache
// model, and print the paper-style reports for this one benchmark.
package main

import (
	"fmt"
	"log"

	"pathsched"
)

func main() {
	res, err := pathsched.Experiments(pathsched.ExperimentOptions{
		Benchmarks: []string{"wc"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table1())
	fmt.Println(res.Figure4())
	fmt.Println(res.Figure5())
	fmt.Println(res.Figure7())
	fmt.Println(res.MissRates())

	fmt.Println("wc's inner loop is a small state machine over characters; paths")
	fmt.Println("capture sequences like \"space then letter\" (a word start), which is")
	fmt.Println("why the path-based superblocks above complete more of their blocks")
	fmt.Println("per entry than the edge-based ones.")
}
