// Phased: the paper's Figure 3 in action. A loop's conditional that
// repeats TTTF (the "alt" pattern) or runs TT…TFF…F (the "ph" pattern)
// looks like a boring 75/25 or 67/33 edge split, but general path
// profiles expose the periodicity/phase — and path-driven enlargement
// unrolls the loop along its *actual* paths instead of blindly copying
// the most likely body.
package main

import (
	"fmt"
	"log"

	"pathsched"
)

// pattern builds a loop whose conditional direction is produced by
// classify(i); the two arms do different work.
func pattern(name string, n int64, taken func() []pathsched.Instr, classify func(g *blocks)) *pathsched.Program {
	bd := pathsched.NewBuilder(name, 64)
	pb := bd.Proc("main")
	g := &blocks{pb: pb}
	g.entry, g.head, g.body, g.tArm, g.fArm, g.latch, g.exit =
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	g.entry.Add(pathsched.MovI(regS, 0), pathsched.MovI(regI, 0))
	g.entry.Jmp(g.head.ID())
	g.head.Add(pathsched.CmpLTI(regC, regI, n))
	g.head.Br(regC, g.body.ID(), g.exit.ID())
	classify(g) // fills g.body and branches to tArm/fArm
	g.tArm.Add(taken()...)
	g.tArm.Jmp(g.latch.ID())
	g.fArm.Add(pathsched.MulI(regS, regS, 3), pathsched.AndI(regS, regS, 0xffff))
	g.fArm.Jmp(g.latch.ID())
	g.latch.Add(pathsched.AddI(regS, regS, 2), pathsched.AddI(regI, regI, 1))
	g.latch.Jmp(g.head.ID())
	g.exit.Add(pathsched.Emit(regS))
	g.exit.Ret(regS)
	return bd.Finish()
}

const (
	regI pathsched.Reg = 1
	regS pathsched.Reg = 2
	regC pathsched.Reg = 3
	regT pathsched.Reg = 4
)

type blocks struct {
	pb                                         *pathsched.ProcBuilder
	entry, head, body, tArm, fArm, latch, exit *pathsched.BlockBuilder
}

func main() {
	simpleTaken := func() []pathsched.Instr {
		return []pathsched.Instr{pathsched.AddI(regS, regS, 1), pathsched.XorI(regS, regS, 5)}
	}
	alt := pattern("alt", 60000, simpleTaken, func(g *blocks) {
		// TTTF: taken except every 4th iteration.
		g.body.Add(pathsched.AndI(regT, regI, 3), pathsched.CmpNEI(regC, regT, 3))
		g.body.Br(regC, g.tArm.ID(), g.fArm.ID())
	})
	ph := pattern("ph", 60000, simpleTaken, func(g *blocks) {
		// Phased: taken for the first two thirds, then never.
		g.body.Add(pathsched.CmpLTI(regC, regI, 40000))
		g.body.Br(regC, g.tArm.ID(), g.fArm.ID())
	})

	for _, prog := range []*pathsched.Program{alt, ph} {
		fmt.Printf("=== %s: the edge profile sees one biased branch; paths see the pattern\n", prog.Name)
		profs, err := pathsched.ProfileProgram(prog)
		if err != nil {
			log.Fatal(err)
		}
		// Block ids: head=1, body=2, tArm=3, fArm=4, latch=5.
		iter := func(arm pathsched.BlockID) []pathsched.BlockID {
			return []pathsched.BlockID{2, arm, 5, 1}
		}
		seqTT := append(iter(3), iter(3)[0:]...)
		fmt.Printf("  f(body→T) = %-6d f(body→F) = %d\n",
			profs.Edge.EdgeFreq(0, 2, 3), profs.Edge.EdgeFreq(0, 2, 4))
		fmt.Printf("  f(two taken iterations in a row)    = %d\n", profs.Path.Freq(0, seqTT))
		seqFT := append(iter(4), iter(3)[0:]...)
		seqFF := append(iter(4), iter(4)[0:]...)
		fmt.Printf("  f(fallthru iteration then taken)    = %d\n", profs.Path.Freq(0, seqFT))
		fmt.Printf("  f(two fallthru iterations in a row) = %d\n", profs.Path.Freq(0, seqFF))

		for _, scheme := range []pathsched.Scheme{pathsched.SchemeM4, pathsched.SchemeM16, pathsched.SchemeP4} {
			bin, err := pathsched.Compile(prog, profs, scheme)
			if err != nil {
				log.Fatal(err)
			}
			res, err := pathsched.Execute(bin)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-4s %8d cycles   superblock entries %d, avg blocks run %.1f of %.1f\n",
				scheme, res.Cycles, res.SBEntries,
				avg(res.SBExecuted, res.SBEntries), avg(res.SBSize, res.SBEntries))
		}
		fmt.Println()
	}
	fmt.Println("alt: path enlargement unrolls the loop along the TTTF period, so the")
	fmt.Println("unrolled superblock completes essentially every time (Figure 3b).")
	fmt.Println("ph: each phase gets its own specialized loop (Figure 3c).")
}

func avg(sum, n int64) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
