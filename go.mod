module pathsched

go 1.22
