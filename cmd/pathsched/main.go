// Command pathsched compiles and measures one benchmark under one
// scheme, printing the full measurement and optionally the scheduled
// code.
//
// Usage:
//
//	pathsched -bench m88k -scheme P4
//	pathsched -bench alt -scheme M16 -dump     # show scheduled IR
//	pathsched -bench gcc -scheme P4e -nocache
//	pathsched -list                            # show the suite
package main

import (
	"flag"
	"fmt"
	"os"

	"pathsched/internal/bench"
	"pathsched/internal/machine"
	"pathsched/internal/pipeline"
)

func main() {
	var (
		benchName = flag.String("bench", "alt", "benchmark name")
		scheme    = flag.String("scheme", "P4", "scheme: BB, M4, M16, P4e, P4")
		noCache   = flag.Bool("nocache", false, "disable the I-cache simulation")
		realistic = flag.Bool("realistic", false, "multi-cycle load/mul latencies")
		list      = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %-10s %s\n", "name", "category", "description")
		for _, b := range bench.All() {
			fmt.Printf("%-8s %-10s %s\n", b.Name, b.Category, b.Description)
		}
		return
	}

	b := bench.ByName(*benchName)
	if b == nil {
		fmt.Fprintf(os.Stderr, "pathsched: unknown benchmark %q (try -list)\n", *benchName)
		os.Exit(1)
	}
	mc := machine.Default()
	mc.Realistic = *realistic
	opts := pipeline.Options{Machine: mc}
	if !*noCache {
		cache := machine.DefaultICache()
		opts.Cache = &cache
	}
	runner := pipeline.NewRunner(opts)
	schemes := []pipeline.Scheme{pipeline.SchemeBB, pipeline.Scheme(*scheme)}
	if *scheme == "BB" {
		schemes = schemes[:1]
	}
	res, err := runner.RunBenchmark(b, schemes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathsched:", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark  %s — %s (%s)\n", res.Name, res.Description, res.Category)
	fmt.Printf("test input %s\n", b.Test.Label)
	fmt.Printf("orig size  %.1f KB\n\n", float64(res.OrigCodeBytes)/1024)
	for _, s := range schemes {
		m := res.ByScheme[s]
		fmt.Printf("[%s]\n", s)
		fmt.Printf("  cycles        %12d (ideal %d + fetch stall %d)\n", m.Cycles, m.IdealCycles, m.FetchStall)
		fmt.Printf("  instructions  %12d   branches %d\n", m.DynInstrs, m.DynBranches)
		fmt.Printf("  code size     %12.1f KB\n", float64(m.CodeBytes)/1024)
		if m.CacheAccesses > 0 {
			fmt.Printf("  i-cache       %12.2f%% miss (%d/%d)\n", m.MissRate*100, m.CacheMisses, m.CacheAccesses)
		}
		if m.SBEntries > 0 {
			fmt.Printf("  superblocks   %12.2f blocks executed per entry (size %.2f)\n",
				m.AvgBlocksExecuted, m.AvgSBSize)
		}
		fmt.Printf("  formation     %+v\n", m.FormStats)
	}
	if bb, ok := res.ByScheme[pipeline.SchemeBB]; ok && len(schemes) > 1 {
		m := res.ByScheme[schemes[1]]
		fmt.Printf("\nspeedup vs BB: %.3fx (cycles %d -> %d)\n",
			float64(bb.Cycles)/float64(m.Cycles), bb.Cycles, m.Cycles)
	}
}
