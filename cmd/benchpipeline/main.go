// Command benchpipeline measures what the content-addressed
// compile/layout-profile cache buys an end-to-end RunSuite over all
// five schemes, and writes the result to BENCH_pipeline.json.
//
// Five arms are timed per trial:
//
//   - off:  cache disabled (the pre-cache pipeline);
//   - cold: a fresh cache — wins come from intra-run sharing only
//     (train==test builds collapse to one compile, and concurrent
//     workers single-flight duplicate keys);
//   - warm: the same runner's second RunSuite — every compile and
//     every layout-profiling interpreter run is served from cache,
//     which is the ablation-sweep / re-run regime runAblations exploits
//     by sharing one cache across configs;
//   - disk_cold / disk_warm: two *fresh processes* (the binary re-execs
//     itself with -diskchild) sharing one artifact-store directory. The
//     first populates the store while compiling, the second serves
//     every compile and layout profile from disk — the process-restart
//     regime the store exists for, where the in-memory cache is worth
//     exactly 1.0x. Child timings are the children's own RunSuite
//     seconds, so process startup is excluded from every arm alike.
//
// Like cmd/benchinterp, this expects noisy shared machines: each trial
// times all arms adjacently (alternating whether the cache-off or the
// cache-on pair goes first), speedups are medians of per-trial ratios
// so drift that moves a whole trial cancels, and per-arm times are
// medians across trials.
//
// Usage:
//
//	go run ./cmd/benchpipeline [-trials N] [-bench a,b] [-j N] [-o BENCH_pipeline.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"pathsched/internal/bench"
	"pathsched/internal/pipeline"
	"pathsched/internal/store"
)

type armStats struct {
	Trials        []float64 `json:"trials_seconds"`
	MedianSeconds float64   `json:"median_seconds"`
}

type report struct {
	Benchmarks  []string `json:"benchmarks"`
	Schemes     []string `json:"schemes"`
	TrialCount  int      `json:"trials"`
	Parallelism int      `json:"parallelism"`
	GoVersion   string   `json:"go_version"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Off         armStats `json:"cache_off"`
	Cold        armStats `json:"cache_cold"`
	Warm        armStats `json:"cache_warm"`
	DiskCold    armStats `json:"disk_cold"`
	DiskWarm    armStats `json:"disk_warm"`
	// Speedups are medians of per-trial ratios; >1 means the second
	// arm finished the suite faster than the first arm of the same
	// trial. The disk speedup is the headline: a fresh process over a
	// warm store vs a fresh process over an empty one.
	SpeedupCold     float64 `json:"speedup_cold_vs_off"`
	SpeedupWarm     float64 `json:"speedup_warm_vs_off"`
	SpeedupDiskWarm float64 `json:"speedup_diskwarm_vs_diskcold"`
	// Cache counters from the last trial, substantiating where the
	// time went: cold shows misses+dedups+train==test hits, warm shows
	// every lookup hitting.
	ColdStats        string  `json:"cold_cache_stats"`
	WarmStats        string  `json:"warm_cache_stats"`
	DiskColdStats    string  `json:"disk_cold_cache_stats"`
	DiskWarmStats    string  `json:"disk_warm_cache_stats"`
	WallClockSeconds float64 `json:"wall_clock_seconds"`
}

// childReport is what a -diskchild process prints to stdout.
type childReport struct {
	Seconds float64 `json:"seconds"`
	Stats   string  `json:"stats"`
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func main() {
	trials := flag.Int("trials", 3, "paired trials (each times all five arms)")
	benches := flag.String("bench", "", "comma-separated benchmark names (default: whole suite)")
	jobs := flag.Int("j", 0, "pipeline workers per run (0 = GOMAXPROCS)")
	out := flag.String("o", "BENCH_pipeline.json", "output file")
	diskChild := flag.Bool("diskchild", false, "internal: run one disk-backed suite in this process and print JSON timing")
	storeDir := flag.String("store", "", "artifact store directory (with -diskchild)")
	flag.Parse()

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	schemes := pipeline.AllSchemes()

	runSuite := func(r *pipeline.Runner) (float64, error) {
		start := time.Now()
		_, err := r.RunSuite(names, schemes)
		return time.Since(start).Seconds(), err
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchpipeline:", err)
		os.Exit(1)
	}

	if *diskChild {
		st, err := store.Open(*storeDir, store.Options{})
		if err != nil {
			fail(err)
		}
		r := pipeline.NewRunner(pipeline.Options{Parallelism: *jobs, ArtifactStore: st})
		secs, err := runSuite(r)
		if err != nil {
			fail(err)
		}
		var statsStr string
		if s, ok := r.CacheStats(); ok {
			statsStr = s.String()
		}
		if err := json.NewEncoder(os.Stdout).Encode(childReport{Seconds: secs, Stats: statsStr}); err != nil {
			fail(err)
		}
		return
	}

	// runDiskProcess re-execs this binary over dir and returns the
	// child's own suite seconds and cache counters.
	runDiskProcess := func(dir string) (childReport, error) {
		self, err := os.Executable()
		if err != nil {
			return childReport{}, err
		}
		args := []string{"-diskchild", "-store", dir, "-j", fmt.Sprint(*jobs)}
		if *benches != "" {
			args = append(args, "-bench", *benches)
		}
		cmd := exec.Command(self, args...)
		cmd.Stderr = os.Stderr
		outBuf, err := cmd.Output()
		if err != nil {
			return childReport{}, fmt.Errorf("disk child: %w", err)
		}
		var cr childReport
		if err := json.Unmarshal(outBuf, &cr); err != nil {
			return childReport{}, fmt.Errorf("disk child output: %w", err)
		}
		return cr, nil
	}
	storeRoot, err := os.MkdirTemp("", "pathsched-bench-store-")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(storeRoot)

	rep := &report{
		TrialCount:  *trials,
		Parallelism: *jobs,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	for _, s := range schemes {
		rep.Schemes = append(rep.Schemes, string(s))
	}
	rep.Benchmarks = names
	if rep.Benchmarks == nil {
		rep.Benchmarks = bench.Names()
	}

	start := time.Now()
	var coldRatios, warmRatios, diskRatios []float64
	for t := 0; t < *trials; t++ {
		offRunner := pipeline.NewRunner(pipeline.Options{Parallelism: *jobs, DisableProfileCache: true})
		onRunner := pipeline.NewRunner(pipeline.Options{Parallelism: *jobs})

		var off, cold, warm float64
		var err error
		timeOn := func() {
			if cold, err = runSuite(onRunner); err != nil {
				fail(err)
			}
			if s, ok := onRunner.CacheStats(); ok {
				rep.ColdStats = s.String()
			}
			if warm, err = runSuite(onRunner); err != nil {
				fail(err)
			}
			if s, ok := onRunner.CacheStats(); ok {
				rep.WarmStats = s.String()
			}
		}
		var diskCold, diskWarm float64
		timeDisk := func() {
			// A fresh store directory per trial: the first child runs
			// disk-cold and populates it, the second runs disk-warm
			// off what the first published. The two are adjacent, so
			// machine drift cancels in their ratio.
			dir := filepath.Join(storeRoot, fmt.Sprintf("trial%d", t))
			cr, derr := runDiskProcess(dir)
			if derr != nil {
				fail(derr)
			}
			diskCold, rep.DiskColdStats = cr.Seconds, cr.Stats
			if cr, derr = runDiskProcess(dir); derr != nil {
				fail(derr)
			}
			diskWarm, rep.DiskWarmStats = cr.Seconds, cr.Stats
		}
		if t%2 == 0 {
			if off, err = runSuite(offRunner); err != nil {
				fail(err)
			}
			timeOn()
			timeDisk()
		} else {
			timeDisk()
			timeOn()
			if off, err = runSuite(offRunner); err != nil {
				fail(err)
			}
		}
		rep.Off.Trials = append(rep.Off.Trials, off)
		rep.Cold.Trials = append(rep.Cold.Trials, cold)
		rep.Warm.Trials = append(rep.Warm.Trials, warm)
		rep.DiskCold.Trials = append(rep.DiskCold.Trials, diskCold)
		rep.DiskWarm.Trials = append(rep.DiskWarm.Trials, diskWarm)
		coldRatios = append(coldRatios, off/cold)
		warmRatios = append(warmRatios, off/warm)
		diskRatios = append(diskRatios, diskCold/diskWarm)
		fmt.Printf("trial %d/%d: off %6.2fs   cold %6.2fs (%.2fx)   warm %6.2fs (%.2fx)   disk %6.2fs -> %6.2fs (%.2fx)\n",
			t+1, *trials, off, cold, off/cold, warm, off/warm, diskCold, diskWarm, diskCold/diskWarm)
	}
	rep.Off.MedianSeconds = median(rep.Off.Trials)
	rep.Cold.MedianSeconds = median(rep.Cold.Trials)
	rep.Warm.MedianSeconds = median(rep.Warm.Trials)
	rep.DiskCold.MedianSeconds = median(rep.DiskCold.Trials)
	rep.DiskWarm.MedianSeconds = median(rep.DiskWarm.Trials)
	rep.SpeedupCold = median(coldRatios)
	rep.SpeedupWarm = median(warmRatios)
	rep.SpeedupDiskWarm = median(diskRatios)
	rep.WallClockSeconds = time.Since(start).Seconds()

	fmt.Printf("median: off %.2fs   cold %.2fs (%.2fx)   warm %.2fs (%.2fx)   disk %.2fs -> %.2fs (%.2fx)\n",
		rep.Off.MedianSeconds, rep.Cold.MedianSeconds, rep.SpeedupCold,
		rep.Warm.MedianSeconds, rep.SpeedupWarm,
		rep.DiskCold.MedianSeconds, rep.DiskWarm.MedianSeconds, rep.SpeedupDiskWarm)
	fmt.Printf("cold cache: %s\nwarm cache: %s\ndisk-warm cache: %s\n", rep.ColdStats, rep.WarmStats, rep.DiskWarmStats)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (wall clock %.1fs)\n", *out, rep.WallClockSeconds)
}
