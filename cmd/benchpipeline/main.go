// Command benchpipeline measures what the content-addressed
// compile/layout-profile cache buys an end-to-end RunSuite over all
// five schemes, and writes the result to BENCH_pipeline.json.
//
// Three arms are timed per trial:
//
//   - off:  cache disabled (the pre-cache pipeline);
//   - cold: a fresh cache — wins come from intra-run sharing only
//     (train==test builds collapse to one compile, and concurrent
//     workers single-flight duplicate keys);
//   - warm: the same runner's second RunSuite — every compile and
//     every layout-profiling interpreter run is served from cache,
//     which is the ablation-sweep / re-run regime runAblations exploits
//     by sharing one cache across configs.
//
// Like cmd/benchinterp, this expects noisy shared machines: each trial
// times all arms adjacently (alternating whether the cache-off or the
// cache-on pair goes first), speedups are medians of per-trial ratios
// so drift that moves a whole trial cancels, and per-arm times are
// medians across trials.
//
// Usage:
//
//	go run ./cmd/benchpipeline [-trials N] [-bench a,b] [-j N] [-o BENCH_pipeline.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"pathsched/internal/bench"
	"pathsched/internal/pipeline"
)

type armStats struct {
	Trials        []float64 `json:"trials_seconds"`
	MedianSeconds float64   `json:"median_seconds"`
}

type report struct {
	Benchmarks  []string `json:"benchmarks"`
	Schemes     []string `json:"schemes"`
	TrialCount  int      `json:"trials"`
	Parallelism int      `json:"parallelism"`
	GoVersion   string   `json:"go_version"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Off         armStats `json:"cache_off"`
	Cold        armStats `json:"cache_cold"`
	Warm        armStats `json:"cache_warm"`
	// Speedups are medians of per-trial off/arm ratios; >1 means the
	// cached arm finished the suite faster than the cache-off arm of
	// the same trial.
	SpeedupCold float64 `json:"speedup_cold_vs_off"`
	SpeedupWarm float64 `json:"speedup_warm_vs_off"`
	// Cache counters from the last trial, substantiating where the
	// time went: cold shows misses+dedups+train==test hits, warm shows
	// every lookup hitting.
	ColdStats        string  `json:"cold_cache_stats"`
	WarmStats        string  `json:"warm_cache_stats"`
	WallClockSeconds float64 `json:"wall_clock_seconds"`
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func main() {
	trials := flag.Int("trials", 3, "paired trials (each times all three arms)")
	benches := flag.String("bench", "", "comma-separated benchmark names (default: whole suite)")
	jobs := flag.Int("j", 0, "pipeline workers per run (0 = GOMAXPROCS)")
	out := flag.String("o", "BENCH_pipeline.json", "output file")
	flag.Parse()

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	schemes := pipeline.AllSchemes()

	runSuite := func(r *pipeline.Runner) (float64, error) {
		start := time.Now()
		_, err := r.RunSuite(names, schemes)
		return time.Since(start).Seconds(), err
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchpipeline:", err)
		os.Exit(1)
	}

	rep := &report{
		TrialCount:  *trials,
		Parallelism: *jobs,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	for _, s := range schemes {
		rep.Schemes = append(rep.Schemes, string(s))
	}
	rep.Benchmarks = names
	if rep.Benchmarks == nil {
		rep.Benchmarks = bench.Names()
	}

	start := time.Now()
	var coldRatios, warmRatios []float64
	for t := 0; t < *trials; t++ {
		offRunner := pipeline.NewRunner(pipeline.Options{Parallelism: *jobs, DisableProfileCache: true})
		onRunner := pipeline.NewRunner(pipeline.Options{Parallelism: *jobs})

		var off, cold, warm float64
		var err error
		timeOn := func() {
			if cold, err = runSuite(onRunner); err != nil {
				fail(err)
			}
			if s, ok := onRunner.CacheStats(); ok {
				rep.ColdStats = s.String()
			}
			if warm, err = runSuite(onRunner); err != nil {
				fail(err)
			}
			if s, ok := onRunner.CacheStats(); ok {
				rep.WarmStats = s.String()
			}
		}
		if t%2 == 0 {
			if off, err = runSuite(offRunner); err != nil {
				fail(err)
			}
			timeOn()
		} else {
			timeOn()
			if off, err = runSuite(offRunner); err != nil {
				fail(err)
			}
		}
		rep.Off.Trials = append(rep.Off.Trials, off)
		rep.Cold.Trials = append(rep.Cold.Trials, cold)
		rep.Warm.Trials = append(rep.Warm.Trials, warm)
		coldRatios = append(coldRatios, off/cold)
		warmRatios = append(warmRatios, off/warm)
		fmt.Printf("trial %d/%d: off %6.2fs   cold %6.2fs (%.2fx)   warm %6.2fs (%.2fx)\n",
			t+1, *trials, off, cold, off/cold, warm, off/warm)
	}
	rep.Off.MedianSeconds = median(rep.Off.Trials)
	rep.Cold.MedianSeconds = median(rep.Cold.Trials)
	rep.Warm.MedianSeconds = median(rep.Warm.Trials)
	rep.SpeedupCold = median(coldRatios)
	rep.SpeedupWarm = median(warmRatios)
	rep.WallClockSeconds = time.Since(start).Seconds()

	fmt.Printf("median: off %.2fs   cold %.2fs (%.2fx)   warm %.2fs (%.2fx)\n",
		rep.Off.MedianSeconds, rep.Cold.MedianSeconds, rep.SpeedupCold,
		rep.Warm.MedianSeconds, rep.SpeedupWarm)
	fmt.Printf("cold cache: %s\nwarm cache: %s\n", rep.ColdStats, rep.WarmStats)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (wall clock %.1fs)\n", *out, rep.WallClockSeconds)
}
