// Command benchcompile measures the cold compile — superblock
// formation plus compaction, no caching — across the benchmark suite,
// and writes the result to BENCH_compile.json.
//
// Five arms are timed per trial, each a full pass over every
// benchmark × scheme:
//
//   - ref:  the reference compaction path (sched.Options.Reference),
//     the implementation the allocation-free fast path replaced;
//   - fast: the fast path, serial (Parallelism 1);
//   - par:  the fast path at default parallelism (GOMAXPROCS);
//   - chk-recompute: fast serial plus the schedule checker rebuilding
//     dependences from the emitted order (the old checked-compile cost);
//   - chk-recorded: fast serial with dependence recording
//     (sched.Options.RecordDeps) feeding check.SchedulesWithDeps.
//
// Before any timing, one untimed pass pins the output: the structural
// fingerprint of every compiled binary must be identical across the
// reference path, the serial fast path, and worker counts 1/2/8 —
// the optimizations may not change a single emitted byte.
//
// Like cmd/benchinterp and cmd/benchpipeline, this expects noisy
// shared machines: each trial times all arms adjacently (alternating
// order), and speedups are medians of per-trial ratios so drift that
// moves a whole trial cancels.
//
// Usage:
//
//	go run ./cmd/benchcompile [-trials N] [-bench a,b] [-o BENCH_compile.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"pathsched/internal/bench"
	"pathsched/internal/check"
	"pathsched/internal/core"
	"pathsched/internal/ir"
	"pathsched/internal/machine"
	"pathsched/internal/profile"
	"pathsched/internal/sched"
)

type armStats struct {
	Trials        []float64 `json:"trials_seconds"`
	MedianSeconds float64   `json:"median_seconds"`
}

type report struct {
	Benchmarks []string `json:"benchmarks"`
	Schemes    []string `json:"schemes"`
	TrialCount int      `json:"trials"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`

	Ref          armStats `json:"reference"`
	Fast         armStats `json:"fast_serial"`
	Par          armStats `json:"fast_parallel"`
	ChkRecompute armStats `json:"checked_recompute"`
	ChkRecorded  armStats `json:"checked_recorded"`

	// Speedups are medians of per-trial ref/arm ratios; >1 means the
	// arm compiled the suite faster than the reference arm of the same
	// trial.
	SpeedupFast float64 `json:"speedup_fast_vs_reference"`
	SpeedupPar  float64 `json:"speedup_parallel_vs_reference"`

	// Checker overheads are medians of per-trial (checked/fast - 1):
	// the fractional cost of a checked compile over an unchecked one,
	// with the dependences recomputed vs recorded.
	OverheadRecompute float64 `json:"checker_overhead_recompute"`
	OverheadRecorded  float64 `json:"checker_overhead_recorded"`

	// FingerprintsIdentical records the untimed identity pass: every
	// benchmark × scheme compiled to the same structural fingerprint
	// under the reference path and worker counts 1, 2, and 8 (in
	// -exact mode: under the exact path itself across those counts —
	// exact schedules legitimately differ from the reference).
	FingerprintsIdentical bool  `json:"fingerprints_identical"`
	WorkerCountsVerified  []int `json:"worker_counts_verified"`

	// -exact mode only: the exact arm's times, its cost over the fast
	// list-scheduling arm (medians of per-trial exact/fast - 1), and
	// the suite-wide gap accounting.
	Exact     *armStats       `json:"exact_serial,omitempty"`
	CostExact float64         `json:"exact_cost_vs_fast,omitempty"`
	ExactGap  *sched.GapStats `json:"exact_gap,omitempty"`

	WallClockSeconds float64 `json:"wall_clock_seconds"`
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// unit is one benchmark × scheme compile: a prebuilt test program, its
// training profiles, and the resolved formation config.
type unit struct {
	name  string // "benchmark/scheme", for messages
	bench string // map key into units.prog
	cfg   core.Config
}

type units struct {
	list []unit
	prog map[string]*ir.Program
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchcompile:", err)
	os.Exit(1)
}

// compileOne forms and compacts u's program. The program is read-only
// (Form clones internally), so arms can reuse one build.
func (us *units) compileOne(u unit, opts sched.Options) (*core.Result, error) {
	res, err := core.Form(us.prog[u.bench], u.cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: Form: %w", u.name, err)
	}
	if err := sched.Compact(res, opts); err != nil {
		return nil, fmt.Errorf("%s: Compact: %w", u.name, err)
	}
	return res, nil
}

func main() {
	trials := flag.Int("trials", 5, "paired trials (each times all five arms)")
	benches := flag.String("bench", "", "comma-separated benchmark names (default: whole suite)")
	schemes := flag.String("schemes", "M4,P4", "comma-separated formation schemes (M4 = edge-based unroll 4, P4 = path-based)")
	depth := flag.Int("depth", 15, "path profile depth in branches")
	out := flag.String("o", "BENCH_compile.json", "output file")
	exact := flag.Bool("exact", false, "time exact (branch-and-bound) compiles against the fast list-scheduling arm instead of the five reference arms")
	exnodes := flag.Int("exactnodes", 0, "exact-search node budget per region (0 = default 32, max 64)")
	exsearch := flag.Int64("exactsearch", 0, "exact-search step budget per region (0 = default 200000)")
	flag.Parse()

	names := bench.Names()
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	mc := machine.Default()

	rep := &report{
		Benchmarks:           names,
		Schemes:              strings.Split(*schemes, ","),
		TrialCount:           *trials,
		GoVersion:            runtime.Version(),
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		WorkerCountsVerified: []int{1, 2, 8},
	}

	// Untimed setup: build and train every benchmark once, resolve one
	// formation config per benchmark × scheme. Formation runs serial in
	// the timed arms except `par`, where compaction parallelism is the
	// knob under test (formation stays serial so the arm isolates it).
	us := &units{prog: map[string]*ir.Program{}}
	for _, name := range names {
		b := bench.ByName(name)
		if b == nil {
			fail(fmt.Errorf("unknown benchmark %q", name))
		}
		trainProg := b.Build(b.Train)
		us.prog[name] = b.Build(b.Test)
		tp, err := profile.Train(trainProg, profile.PathConfig{Depth: *depth})
		if err != nil {
			fail(fmt.Errorf("%s: training: %w", name, err))
		}
		for _, s := range rep.Schemes {
			cfg := core.DefaultConfig()
			cfg.Edge, cfg.Path = tp.Edge, tp.Path
			cfg.Parallelism = 1
			switch s {
			case "M4":
				cfg.Method = core.EdgeBased
				cfg.UnrollFactor = 4
			case "M16":
				cfg.Method = core.EdgeBased
				cfg.UnrollFactor = 16
			case "P4":
				cfg.Method = core.PathBased
			default:
				fail(fmt.Errorf("unknown scheme %q", s))
			}
			us.list = append(us.list, unit{name: name + "/" + s, bench: name, cfg: cfg})
		}
	}

	start := time.Now()

	if *exact {
		runExactMode(us, rep, sched.ExactConfig{
			Enabled:      true,
			NodeBudget:   *exnodes,
			SearchBudget: *exsearch,
		}, *trials, *out, start)
		return
	}

	// Identity pass (untimed): reference vs fast at workers 1, 2, 8 —
	// every compile must fingerprint identically.
	rep.FingerprintsIdentical = true
	for _, u := range us.list {
		res, err := us.compileOne(u, sched.Options{Reference: true})
		if err != nil {
			fail(err)
		}
		want := ir.Fingerprint(res.Prog)
		for _, w := range rep.WorkerCountsVerified {
			res, err := us.compileOne(u, sched.Options{Parallelism: w})
			if err != nil {
				fail(err)
			}
			if fp := ir.Fingerprint(res.Prog); fp != want {
				rep.FingerprintsIdentical = false
				fmt.Fprintf(os.Stderr, "benchcompile: %s: workers=%d fingerprint diverges from reference\n", u.name, w)
			}
		}
	}
	if !rep.FingerprintsIdentical {
		fail(fmt.Errorf("fast compaction changed output"))
	}
	fmt.Printf("identity: %d compiles byte-identical across reference and workers %v\n",
		len(us.list), rep.WorkerCountsVerified)

	runArm := func(opts sched.Options, checked, recorded bool) float64 {
		runtime.GC()
		t0 := time.Now()
		for _, u := range us.list {
			if recorded {
				opts.RecordDeps = sched.BlockDeps{}
			}
			res, err := us.compileOne(u, opts)
			if err != nil {
				fail(err)
			}
			if checked {
				if vs := check.SchedulesWithDeps(res.Prog, mc, opts.RecordDeps); len(vs) > 0 {
					fail(fmt.Errorf("%s: checker: %v", u.name, vs[0]))
				}
			}
		}
		return time.Since(t0).Seconds()
	}

	var fastRatios, parRatios, recomputeOver, recordedOver []float64
	for t := 0; t < *trials; t++ {
		var ref, fast, par, chkRe, chkRec float64
		timeFast := func() {
			fast = runArm(sched.Options{Parallelism: 1}, false, false)
			par = runArm(sched.Options{}, false, false)
			chkRe = runArm(sched.Options{Parallelism: 1}, true, false)
			chkRec = runArm(sched.Options{Parallelism: 1}, true, true)
		}
		if t%2 == 0 {
			ref = runArm(sched.Options{Reference: true}, false, false)
			timeFast()
		} else {
			timeFast()
			ref = runArm(sched.Options{Reference: true}, false, false)
		}
		rep.Ref.Trials = append(rep.Ref.Trials, ref)
		rep.Fast.Trials = append(rep.Fast.Trials, fast)
		rep.Par.Trials = append(rep.Par.Trials, par)
		rep.ChkRecompute.Trials = append(rep.ChkRecompute.Trials, chkRe)
		rep.ChkRecorded.Trials = append(rep.ChkRecorded.Trials, chkRec)
		fastRatios = append(fastRatios, ref/fast)
		parRatios = append(parRatios, ref/par)
		recomputeOver = append(recomputeOver, chkRe/fast-1)
		recordedOver = append(recordedOver, chkRec/fast-1)
		fmt.Printf("trial %d/%d: ref %6.2fs   fast %6.2fs (%.2fx)   par %6.2fs (%.2fx)   chk-recompute %+.1f%%   chk-recorded %+.1f%%\n",
			t+1, *trials, ref, fast, ref/fast, par, ref/par,
			100*(chkRe/fast-1), 100*(chkRec/fast-1))
	}
	rep.Ref.MedianSeconds = median(rep.Ref.Trials)
	rep.Fast.MedianSeconds = median(rep.Fast.Trials)
	rep.Par.MedianSeconds = median(rep.Par.Trials)
	rep.ChkRecompute.MedianSeconds = median(rep.ChkRecompute.Trials)
	rep.ChkRecorded.MedianSeconds = median(rep.ChkRecorded.Trials)
	rep.SpeedupFast = median(fastRatios)
	rep.SpeedupPar = median(parRatios)
	rep.OverheadRecompute = median(recomputeOver)
	rep.OverheadRecorded = median(recordedOver)
	rep.WallClockSeconds = time.Since(start).Seconds()

	fmt.Printf("median: ref %.2fs   fast %.2fs (%.2fx)   par %.2fs (%.2fx)   checker %+.1f%% recompute, %+.1f%% recorded\n",
		rep.Ref.MedianSeconds, rep.Fast.MedianSeconds, rep.SpeedupFast,
		rep.Par.MedianSeconds, rep.SpeedupPar,
		100*rep.OverheadRecompute, 100*rep.OverheadRecorded)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (wall clock %.1fs)\n", *out, rep.WallClockSeconds)
}

// runExactMode is the -exact harness: an untimed identity pass pinning
// exact-mode output (and gap counters) byte-identical across worker
// counts 1/2/8, then paired trials timing the exact arm against the
// fast list-scheduling arm — the cost of proving schedules optimal.
func runExactMode(us *units, rep *report, ecfg sched.ExactConfig, trials int, out string, start time.Time) {
	gapOf := func(opts sched.Options) *sched.GapStats {
		gap := &sched.GapStats{}
		opts.Exact = ecfg
		opts.GapStats = gap
		for _, u := range us.list {
			if _, err := us.compileOne(u, opts); err != nil {
				fail(err)
			}
		}
		return gap
	}

	// Identity pass: exact schedules legitimately differ from the list
	// schedules, so the baseline is the exact arm itself at one worker;
	// every other worker count must reproduce its bytes and its gap
	// counters exactly.
	rep.FingerprintsIdentical = true
	baseGap := &sched.GapStats{}
	for _, u := range us.list {
		res, err := us.compileOne(u, sched.Options{Parallelism: 1, Exact: ecfg, GapStats: baseGap})
		if err != nil {
			fail(err)
		}
		want := ir.Fingerprint(res.Prog)
		for _, w := range rep.WorkerCountsVerified {
			res, err := us.compileOne(u, sched.Options{Parallelism: w, Exact: ecfg})
			if err != nil {
				fail(err)
			}
			if fp := ir.Fingerprint(res.Prog); fp != want {
				rep.FingerprintsIdentical = false
				fmt.Fprintf(os.Stderr, "benchcompile: %s: exact workers=%d fingerprint diverges from serial exact\n", u.name, w)
			}
		}
	}
	for _, w := range rep.WorkerCountsVerified {
		if g := gapOf(sched.Options{Parallelism: w}); *g != *baseGap {
			rep.FingerprintsIdentical = false
			fmt.Fprintf(os.Stderr, "benchcompile: exact workers=%d gap stats diverge: %+v vs %+v\n", w, *g, *baseGap)
		}
	}
	if !rep.FingerprintsIdentical {
		fail(fmt.Errorf("exact compaction output depends on worker count"))
	}
	rep.ExactGap = baseGap
	fmt.Printf("identity: %d exact compiles byte-identical across workers %v (%d regions: %d proved, %d bounded, %d improved)\n",
		len(us.list), rep.WorkerCountsVerified,
		baseGap.Blocks, baseGap.Proved, baseGap.Bounded, baseGap.Improved)

	runArm := func(opts sched.Options) float64 {
		runtime.GC()
		t0 := time.Now()
		for _, u := range us.list {
			if _, err := us.compileOne(u, opts); err != nil {
				fail(err)
			}
		}
		return time.Since(t0).Seconds()
	}

	rep.Exact = &armStats{}
	var costs []float64
	for t := 0; t < trials; t++ {
		var fast, ex float64
		if t%2 == 0 {
			fast = runArm(sched.Options{Parallelism: 1})
			ex = runArm(sched.Options{Parallelism: 1, Exact: ecfg})
		} else {
			ex = runArm(sched.Options{Parallelism: 1, Exact: ecfg})
			fast = runArm(sched.Options{Parallelism: 1})
		}
		rep.Fast.Trials = append(rep.Fast.Trials, fast)
		rep.Exact.Trials = append(rep.Exact.Trials, ex)
		costs = append(costs, ex/fast-1)
		fmt.Printf("trial %d/%d: fast %6.2fs   exact %6.2fs (%+.1f%%)\n",
			t+1, trials, fast, ex, 100*(ex/fast-1))
	}
	rep.Fast.MedianSeconds = median(rep.Fast.Trials)
	rep.Exact.MedianSeconds = median(rep.Exact.Trials)
	rep.CostExact = median(costs)
	rep.WallClockSeconds = time.Since(start).Seconds()

	fmt.Printf("median: fast %.2fs   exact %.2fs (%+.1f%% cost)   list schedules %.2f%% of optimal over %d proved regions\n",
		rep.Fast.MedianSeconds, rep.Exact.MedianSeconds, 100*rep.CostExact,
		baseGap.PctOfOptimal(), baseGap.Proved)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (wall clock %.1fs)\n", out, rep.WallClockSeconds)
}
