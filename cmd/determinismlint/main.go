// Command determinismlint guards the pipeline's reproducibility
// guarantee: it flags every map-range iteration in the packages whose
// output must be byte-deterministic (scheduling, formation, pipeline
// orchestration, profiling), unless the loop is an order-insensitive
// key collection or carries a //lint:ordered annotation. CI runs it on
// every push; see internal/lint/determinism for the rules.
//
// Usage:
//
//	determinismlint              # lint the default deterministic set
//	determinismlint internal/ir  # lint specific packages
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pathsched/internal/lint/determinism"
)

// deterministicPkgs is the default target set: every package a compile
// or a profile flows through. Packages that only render reports
// (stats, cmd) may iterate maps as they please — their output is
// sorted at the rendering layer and pinned by golden tests.
var deterministicPkgs = []string{
	"internal/sched",
	"internal/core",
	"internal/pipeline",
	"internal/profile",
}

func main() {
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = deterministicPkgs
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "determinismlint:", err)
		os.Exit(2)
	}
	findings, err := determinism.Check(root, "pathsched", pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "determinismlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "determinismlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
