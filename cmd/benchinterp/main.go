// Command benchinterp measures the pre-decoded interpreter against the
// preserved seed engine on the no-observer fast path (a measurement
// run) and writes the result to BENCH_interp.json.
//
// The shared-machine noise this is expected to run under swamps a
// back-to-back comparison: batches of one engine drift 10%+ against
// batches of the other as neighbors come and go. So every trial times
// the two engines adjacently (alternating which goes first), the
// speedup is the median of the per-trial ratios — drift that moves
// both halves of a pair cancels — and the reported throughputs are
// per-engine medians across trials.
//
// Usage:
//
//	go run ./cmd/benchinterp [-trials N] [-mintime D] [-o BENCH_interp.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"pathsched"
	"pathsched/internal/bench"
	"pathsched/internal/interp"
)

type engineStats struct {
	MinstrPerSec float64   `json:"minstr_per_sec"` // median across trials
	Trials       []float64 `json:"trials"`
}

type variantResult struct {
	DynInstrs int64       `json:"dyn_instrs"` // per run, both engines agree
	Reference engineStats `json:"reference"`
	Decoded   engineStats `json:"decoded"`
	// Speedup is the median of per-trial decoded/reference ratios
	// (each ratio compares adjacent timings, so machine drift between
	// trials cancels out of it).
	Speedup float64 `json:"speedup"`
}

type report struct {
	Benchmark        string                    `json:"benchmark"`
	Scheme           string                    `json:"scheme"`
	TrialsPerEngine  int                       `json:"trials_per_engine"`
	MinTimePerTrial  string                    `json:"min_time_per_trial"`
	GoVersion        string                    `json:"go_version"`
	GOMAXPROCS       int                       `json:"gomaxprocs"`
	Variants         map[string]*variantResult `json:"variants"`
	WallClockSeconds float64                   `json:"wall_clock_seconds"`
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// time1 runs the engine repeatedly for at least minTime and returns
// Minstr/s along with the per-run instruction count.
func time1(run func(*pathsched.Program, interp.Config) (*interp.Result, error),
	prog *pathsched.Program, minTime time.Duration) (float64, int64, error) {
	var instrs, runs int64
	start := time.Now()
	for time.Since(start) < minTime {
		res, err := run(prog, interp.Config{})
		if err != nil {
			return 0, 0, err
		}
		instrs = res.DynInstrs
		runs++
	}
	elapsed := time.Since(start).Seconds()
	return float64(instrs) * float64(runs) / elapsed / 1e6, instrs, nil
}

func measure(prog *pathsched.Program, trials int, minTime time.Duration) (*variantResult, error) {
	v := &variantResult{}
	// Warm-up: populates the decode cache and faults in both paths.
	for _, run := range []func(*pathsched.Program, interp.Config) (*interp.Result, error){
		interp.ReferenceRun, interp.Run,
	} {
		if _, err := run(prog, interp.Config{}); err != nil {
			return nil, err
		}
	}
	var ratios []float64
	for t := 0; t < trials; t++ {
		refFirst := t%2 == 0
		var ref, dec float64
		var err error
		if refFirst {
			ref, v.DynInstrs, err = time1(interp.ReferenceRun, prog, minTime)
		} else {
			dec, v.DynInstrs, err = time1(interp.Run, prog, minTime)
		}
		if err != nil {
			return nil, err
		}
		if refFirst {
			dec, _, err = time1(interp.Run, prog, minTime)
		} else {
			ref, _, err = time1(interp.ReferenceRun, prog, minTime)
		}
		if err != nil {
			return nil, err
		}
		v.Reference.Trials = append(v.Reference.Trials, ref)
		v.Decoded.Trials = append(v.Decoded.Trials, dec)
		ratios = append(ratios, dec/ref)
	}
	v.Reference.MinstrPerSec = median(v.Reference.Trials)
	v.Decoded.MinstrPerSec = median(v.Decoded.Trials)
	v.Speedup = median(ratios)
	return v, nil
}

func main() {
	trials := flag.Int("trials", 12, "paired trials per variant")
	minTime := flag.Duration("mintime", 250*time.Millisecond, "minimum measuring time per engine per trial")
	out := flag.String("o", "BENCH_interp.json", "output file")
	flag.Parse()

	start := time.Now()
	bm := bench.ByName("wc")
	unsched := bm.Build(bm.Train)
	profs, err := pathsched.ProfileProgram(bm.Build(bm.Train))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchinterp:", err)
		os.Exit(1)
	}
	scheduled, err := pathsched.Compile(bm.Build(bm.Train), profs, pathsched.SchemeP4)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchinterp:", err)
		os.Exit(1)
	}

	rep := &report{
		Benchmark:       bm.Name,
		Scheme:          "P4",
		TrialsPerEngine: *trials,
		MinTimePerTrial: minTime.String(),
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Variants:        map[string]*variantResult{},
	}
	for _, p := range []struct {
		name string
		prog *pathsched.Program
	}{{"unscheduled", unsched}, {"scheduled", scheduled}} {
		v, err := measure(p.prog, *trials, *minTime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchinterp: %s: %v\n", p.name, err)
			os.Exit(1)
		}
		rep.Variants[p.name] = v
		fmt.Printf("%-12s reference %7.1f Minstr/s   decoded %7.1f Minstr/s   speedup %.2fx\n",
			p.name, v.Reference.MinstrPerSec, v.Decoded.MinstrPerSec, v.Speedup)
	}
	rep.WallClockSeconds = time.Since(start).Seconds()

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchinterp:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchinterp:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (wall clock %.1fs)\n", *out, rep.WallClockSeconds)
}
