// Command benchprofile measures the fast profiling paths (batched path
// observation, counter-fused edge profiles) against the legacy
// per-event observers and the no-observer measurement run, and writes
// the result to BENCH_profile.json.
//
// Like benchinterp, it assumes a noisy shared machine: every trial
// times the two sides of a comparison adjacently (alternating which
// goes first), the speedup is the median of the per-trial ratios —
// drift that moves both halves of a pair cancels — and the reported
// throughputs are per-side medians across trials.
//
// Pairs reported:
//
//	train        legacy per-event training run (edge+path+callgraph
//	             observers) vs the fast path profile.Train takes on
//	             decodable programs (batched path profiler on a counted
//	             run, edge/call profiles reconstructed from counters)
//	train-noobs  no-observer measurement run vs the fast training run
//	             (how close training gets to observer-free speed)
//	edge         no-observer run vs the counter-fused point-profiling
//	             run (profile.PointProfiles); the fused run carries no
//	             observer, so this is its total overhead
//	edge-legacy  legacy per-event edge+callgraph run vs the fused run
//	train-bl     fast window-profiler training run vs the Ball–Larus
//	             numbered-path training run at matched depth
//	             (profile.TrainBL) — the overhead comparison between
//	             the two path-profiling schemes
//	train-bl-perl  the same comparison on perl, whose branchy control
//	             flow grows the window profiler's automaton working
//	             set while the Ball–Larus side stays one arithmetic
//	             add per edge — where the numbered scheme's
//	             depth-independent cost shows
//	bl-noobs     no-observer measurement run vs the Ball–Larus training
//	             run (total Ball–Larus training overhead)
//
// Each pair names the benchmark it ran on; the legacy pairs stay on wc
// for comparability with earlier reports.
//
// Usage:
//
//	go run ./cmd/benchprofile [-trials N] [-mintime D] [-o BENCH_profile.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"pathsched"
	"pathsched/internal/bench"
	"pathsched/internal/interp"
	"pathsched/internal/profile"
)

type sideStats struct {
	Mode         string    `json:"mode"`
	MinstrPerSec float64   `json:"minstr_per_sec"` // median across trials
	Trials       []float64 `json:"trials"`
}

type pairResult struct {
	Benchmark string    `json:"benchmark"`
	DynInstrs int64     `json:"dyn_instrs"` // per run, identical on every side
	Base      sideStats `json:"base"`
	Fast      sideStats `json:"fast"`
	// Speedup is the median of per-trial fast/base throughput ratios
	// (each ratio compares adjacent timings, so machine drift between
	// trials cancels out of it).
	Speedup float64 `json:"speedup"`
}

type report struct {
	TrialsPerSide    int                    `json:"trials_per_side"`
	MinTimePerTrial  string                 `json:"min_time_per_trial"`
	GoVersion        string                 `json:"go_version"`
	GOMAXPROCS       int                    `json:"gomaxprocs"`
	Pairs            map[string]*pairResult `json:"pairs"`
	WallClockSeconds float64                `json:"wall_clock_seconds"`
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// mode is one way of running the training program once, profilers and
// all. Every mode executes the same program, so the per-run dynamic
// instruction count is shared and a mode only needs to report errors.
type mode struct {
	name string
	run  func(*pathsched.Program) error
}

var modes = map[string]mode{
	"noobs": {"no-observer run", func(p *pathsched.Program) error {
		_, err := interp.Run(p, interp.Config{})
		return err
	}},
	"legacy-train": {"per-event edge+path+callgraph observers", func(p *pathsched.Program) error {
		ep := profile.NewEdgeProfiler(p)
		pp := profile.NewPathProfiler(p, profile.PathConfig{})
		cg := profile.NewCallGraphProfiler()
		if _, err := interp.Run(p, interp.Config{Observer: profile.Multi{ep, pp, cg}}); err != nil {
			return err
		}
		ep.Profile()
		pp.Profile()
		cg.Counts()
		return nil
	}},
	"fast-train": {"batched path profiler + counter-fused edge/call reconstruction", func(p *pathsched.Program) error {
		_, err := profile.Train(p, profile.PathConfig{})
		return err
	}},
	"legacy-edge": {"per-event edge+callgraph observers", func(p *pathsched.Program) error {
		ep := profile.NewEdgeProfiler(p)
		cg := profile.NewCallGraphProfiler()
		if _, err := interp.Run(p, interp.Config{Observer: profile.Multi{ep, cg}}); err != nil {
			return err
		}
		ep.Profile()
		cg.Counts()
		return nil
	}},
	"fused-edge": {"no-observer counted run + edge/call reconstruction", func(p *pathsched.Program) error {
		_, _, err := profile.PointProfiles(p)
		return err
	}},
	"bl-train": {"Ball-Larus numbered paths + counter-fused edge/call reconstruction", func(p *pathsched.Program) error {
		_, err := profile.TrainBL(p, profile.BLConfig{})
		return err
	}},
}

// time1 runs the mode repeatedly for at least minTime and returns
// Minstr/s given the per-run instruction count.
func time1(m mode, prog *pathsched.Program, instrs int64, minTime time.Duration) (float64, error) {
	var runs int64
	start := time.Now()
	for time.Since(start) < minTime {
		if err := m.run(prog); err != nil {
			return 0, err
		}
		runs++
	}
	elapsed := time.Since(start).Seconds()
	return float64(instrs) * float64(runs) / elapsed / 1e6, nil
}

func measure(base, fast string, prog *pathsched.Program, instrs int64,
	trials int, minTime time.Duration) (*pairResult, error) {
	bm, fm := modes[base], modes[fast]
	v := &pairResult{DynInstrs: instrs,
		Base: sideStats{Mode: bm.name}, Fast: sideStats{Mode: fm.name}}
	// Warm-up faults both paths in (the decode cache is already hot).
	for _, m := range []mode{bm, fm} {
		if err := m.run(prog); err != nil {
			return nil, err
		}
	}
	var ratios []float64
	for t := 0; t < trials; t++ {
		baseFirst := t%2 == 0
		var b, f float64
		var err error
		if baseFirst {
			b, err = time1(bm, prog, instrs, minTime)
		} else {
			f, err = time1(fm, prog, instrs, minTime)
		}
		if err != nil {
			return nil, err
		}
		if baseFirst {
			f, err = time1(fm, prog, instrs, minTime)
		} else {
			b, err = time1(bm, prog, instrs, minTime)
		}
		if err != nil {
			return nil, err
		}
		v.Base.Trials = append(v.Base.Trials, b)
		v.Fast.Trials = append(v.Fast.Trials, f)
		ratios = append(ratios, f/b)
	}
	v.Base.MinstrPerSec = median(v.Base.Trials)
	v.Fast.MinstrPerSec = median(v.Fast.Trials)
	v.Speedup = median(ratios)
	return v, nil
}

func main() {
	trials := flag.Int("trials", 12, "paired trials per comparison")
	minTime := flag.Duration("mintime", 250*time.Millisecond, "minimum measuring time per side per trial")
	out := flag.String("o", "BENCH_profile.json", "output file")
	flag.Parse()

	start := time.Now()
	progs := map[string]*pathsched.Program{}
	instrsBy := map[string]int64{}
	getProg := func(name string) (*pathsched.Program, int64, error) {
		if p, ok := progs[name]; ok {
			return p, instrsBy[name], nil
		}
		bm := bench.ByName(name)
		p := bm.Build(bm.Train)
		res, err := interp.Run(p, interp.Config{})
		if err != nil {
			return nil, 0, err
		}
		progs[name], instrsBy[name] = p, res.DynInstrs
		return p, res.DynInstrs, nil
	}

	rep := &report{
		TrialsPerSide:   *trials,
		MinTimePerTrial: minTime.String(),
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Pairs:           map[string]*pairResult{},
	}
	for _, p := range []struct{ name, bench, base, fast string }{
		{"train", "wc", "legacy-train", "fast-train"},
		{"train-noobs", "wc", "noobs", "fast-train"},
		{"edge", "wc", "noobs", "fused-edge"},
		{"edge-legacy", "wc", "legacy-edge", "fused-edge"},
		{"train-bl", "wc", "fast-train", "bl-train"},
		{"train-bl-perl", "perl", "fast-train", "bl-train"},
		{"bl-noobs", "wc", "noobs", "bl-train"},
	} {
		prog, instrs, err := getProg(p.bench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchprofile: %s: %v\n", p.bench, err)
			os.Exit(1)
		}
		v, err := measure(p.base, p.fast, prog, instrs, *trials, *minTime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchprofile: %s: %v\n", p.name, err)
			os.Exit(1)
		}
		v.Benchmark = p.bench
		rep.Pairs[p.name] = v
		fmt.Printf("%-14s %-5s %-12s %7.1f Minstr/s   %-12s %7.1f Minstr/s   speedup %.2fx\n",
			p.name, p.bench, p.base, v.Base.MinstrPerSec, p.fast, v.Fast.MinstrPerSec, v.Speedup)
	}
	rep.WallClockSeconds = time.Since(start).Seconds()

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchprofile:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchprofile:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (wall clock %.1fs)\n", *out, rep.WallClockSeconds)
}
