package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"

	"pathsched/internal/bench"
	"pathsched/internal/pipeline"
)

// Spawn driver: -spawn N re-execs this binary N times, once per shard,
// all sharing one artifact-store directory, and merges the shards'
// results back into suite order. Each distinct compile and layout
// profile is built by exactly one worker in the common case (the
// store's claim protocol dedups the rest), so the merged run is
// byte-identical to — and on a multi-core machine faster than — the
// serial runner.

// shardEnvelope is what a -shardout child writes: its shard's results
// in shard order, plus its cache counters for the per-shard report.
type shardEnvelope struct {
	Results   []*pipeline.Result
	Stats     pipeline.CacheStats
	HaveStats bool
}

func writeShardEnvelope(path string, env shardEnvelope) error {
	data, err := json.Marshal(env)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// spawnWorkers forks n children over storeDir (created fresh under a
// temp directory when empty — the workers still share artifacts, they
// just don't persist them) and merges their results into suite order.
func spawnWorkers(n int, storeDir string, names []string) ([]*pipeline.Result, []pipeline.CacheStats, error) {
	if names == nil {
		names = bench.Names()
	}
	self, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	if storeDir == "" {
		tmp, err := os.MkdirTemp("", "pathsched-store-")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(tmp)
		storeDir = tmp
	}
	outDir, err := os.MkdirTemp("", "pathsched-shards-")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(outDir)

	// Children inherit every explicitly-set flag except the driver's
	// own, so -depth, -profiler, -exact, ... behave identically whether
	// the suite runs in one process or n.
	var base []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "spawn", "shards", "shardout", "store", "storegc", "json", "cachestats", "only":
			return
		}
		base = append(base, "-"+f.Name+"="+f.Value.String())
	})

	envs := make([]shardEnvelope, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := filepath.Join(outDir, fmt.Sprintf("shard%d.json", i))
			args := append(append([]string{}, base...),
				"-store="+storeDir,
				fmt.Sprintf("-shards=%d/%d", i, n),
				"-shardout="+out,
			)
			cmd := exec.Command(self, args...)
			cmd.Stderr = os.Stderr
			if err := cmd.Run(); err != nil {
				errs[i] = fmt.Errorf("shard %d/%d: %w", i, n, err)
				return
			}
			data, err := os.ReadFile(out)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d/%d: %w", i, n, err)
				return
			}
			if err := json.Unmarshal(data, &envs[i]); err != nil {
				errs[i] = fmt.Errorf("shard %d/%d: %w", i, n, err)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	// Invert ShardNames' round-robin split back into suite order.
	merged := make([]*pipeline.Result, len(names))
	for i := range merged {
		shard := envs[i%n].Results
		j := i / n
		if j >= len(shard) {
			return nil, nil, fmt.Errorf("shard %d/%d returned %d results, need %d", i%n, n, len(shard), j+1)
		}
		merged[i] = shard[j]
		if merged[i] == nil || merged[i].Name != names[i] {
			return nil, nil, fmt.Errorf("shard %d/%d: result %d out of order", i%n, n, j)
		}
	}
	stats := make([]pipeline.CacheStats, n)
	for i, e := range envs {
		stats[i] = e.Stats
	}
	return merged, stats, nil
}
