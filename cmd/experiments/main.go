// Command experiments regenerates every table and figure of Young &
// Smith, "Better Global Scheduling Using Path Profiles" (MICRO-31,
// 1998), on the reproduction's synthetic benchmark suite.
//
// Usage:
//
//	experiments                  # everything: Table 1, Figures 4-7, miss rates
//	experiments -only fig4,fig7  # a subset
//	experiments -bench gcc,go    # restrict the benchmark set
//	experiments -realistic       # multi-cycle load/mul latencies (§3.2 note)
//	experiments -j 1             # serial pipeline (default: GOMAXPROCS workers)
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"pathsched/internal/core"
	"pathsched/internal/machine"
	"pathsched/internal/pipeline"
	"pathsched/internal/sched"
	"pathsched/internal/stats"
	"pathsched/internal/store"
)

func main() {
	var (
		only      = flag.String("only", "all", "comma-separated subset: table1,fig4,fig5,fig6,fig7,miss,summary")
		benches   = flag.String("bench", "", "comma-separated benchmark names (default: whole suite)")
		realistic = flag.Bool("realistic", false, "use multi-cycle load/mul latencies")
		depth     = flag.Int("depth", 15, "general path profile depth in branches")
		profiler  = flag.String("profiler", "window", "path profiling scheme: window (sliding-window) or bl (Ball-Larus numbered paths)")
		bliters   = flag.Int("bliters", 0, "Ball-Larus k-iteration extension depth (0 = adaptive to -depth, min 2; only with -profiler bl)")
		ways      = flag.Int("ways", 1, "I-cache associativity (paper: 1, direct-mapped)")
		ablate    = flag.Bool("ablate", false, "run design-choice ablations instead of the figures")
		jsonOut   = flag.Bool("json", false, "emit raw measurements as JSON instead of text reports")
		jobs      = flag.Int("j", 0, "parallel pipeline workers (0 = GOMAXPROCS, 1 = serial)")
		cstats    = flag.Bool("cachestats", false, "report compile/layout-profile cache hits, misses, and dedups")
		nocache   = flag.Bool("nocache", false, "disable the compile/layout-profile cache")
		docheck   = flag.Bool("check", false, "run the semantic checker after every pipeline stage")
		nocheck   = flag.Bool("nocheck", false, "disable the semantic checker (default: off outside tests)")
		dovalid   = flag.Bool("validate", false, "prove every compile semantically equivalent to its pristine IR and report the verdict table")
		novalid   = flag.Bool("novalidate", false, "disable translation validation (default: off outside tests)")
		profstats = flag.Bool("profstats", false, "report per-benchmark training-run statistics (fast-path modes, batch flushes, automaton sizes)")
		compstats = flag.Bool("compilestats", false, "report per-stage compile wall time (form, compact, check, layout)")
		exact     = flag.Bool("exact", false, "schedule with the exact branch-and-bound search (falls back to the list schedule above the budgets)")
		exnodes   = flag.Int("exactnodes", 0, "exact-search node budget per region (0 = default 32, max 64)")
		exsearch  = flag.Int64("exactsearch", 0, "exact-search step budget per region (0 = default 200000)")
		gapstats  = flag.Bool("gapstats", false, "report the gap-to-optimal table (implies -exact)")
		storeDir  = flag.String("store", "", "persistent artifact-store directory (disk tier under the cache, shared across processes)")
		storeGC   = flag.Int64("storegc", 0, "after the run, prune the -store directory to this many bytes (oldest access first)")
		shardSpec = flag.String("shards", "", "run only shard i of n ('i/n', 0-based) of the benchmark list")
		spawnN    = flag.Int("spawn", 0, "fork N worker processes sharing one artifact store and merge their results")
		shardOut  = flag.String("shardout", "", "write this shard's results as a JSON envelope to FILE instead of reports (used by -spawn)")
	)
	flag.Parse()
	if *gapstats {
		*exact = true
	}

	checkMode := pipeline.CheckAuto
	switch {
	case *docheck && *nocheck:
		fmt.Fprintln(os.Stderr, "experiments: -check and -nocheck are mutually exclusive")
		os.Exit(2)
	case *docheck:
		checkMode = pipeline.CheckOn
	case *nocheck:
		checkMode = pipeline.CheckOff
	}
	validateMode := pipeline.ValidateAuto
	switch {
	case *dovalid && *novalid:
		fmt.Fprintln(os.Stderr, "experiments: -validate and -novalidate are mutually exclusive")
		os.Exit(2)
	case *dovalid:
		validateMode = pipeline.ValidateOn
	case *novalid:
		validateMode = pipeline.ValidateOff
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir, store.Options{}); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *storeGC > 0 && st == nil {
		fmt.Fprintln(os.Stderr, "experiments: -storegc requires -store")
		os.Exit(2)
	}

	if *spawnN > 0 {
		// The spawn driver merges child results parsed back from JSON,
		// which deliberately excludes the per-process observational
		// fields those reports need.
		for _, bad := range []struct {
			set  bool
			name string
		}{{*ablate, "-ablate"}, {*profstats, "-profstats"}, {*compstats, "-compilestats"}, {*dovalid, "-validate"}, {*shardSpec != "", "-shards"}, {*shardOut != "", "-shardout"}} {
			if bad.set {
				fmt.Fprintf(os.Stderr, "experiments: -spawn is incompatible with %s\n", bad.name)
				os.Exit(2)
			}
		}
	}

	if *ablate {
		runAblations(*benches, *jobs, *cstats, *nocache, checkMode, validateMode, st)
		return
	}

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	var (
		results    []*pipeline.Result
		runner     *pipeline.Runner
		shardStats []pipeline.CacheStats
	)
	start := time.Now()
	if *spawnN > 0 {
		var err error
		results, shardStats, err = spawnWorkers(*spawnN, *storeDir, names)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	} else {
		if *shardSpec != "" {
			var index, count int
			if _, err := fmt.Sscanf(*shardSpec, "%d/%d", &index, &count); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bad -shards %q (want i/n)\n", *shardSpec)
				os.Exit(2)
			}
			var err error
			if names, err = pipeline.ShardNames(names, index, count); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(2)
			}
		}
		mc := machine.Default()
		mc.Realistic = *realistic
		cache := machine.DefaultICache()
		cache.Ways = *ways
		runner = pipeline.NewRunner(pipeline.Options{
			Machine:             mc,
			Cache:               &cache,
			Profiler:            pipeline.ProfilerScheme(*profiler),
			BLIterations:        *bliters,
			PathDepth:           *depth,
			Parallelism:         *jobs,
			DisableProfileCache: *nocache,
			Check:               checkMode,
			Validate:            validateMode,
			ArtifactStore:       st,
			Sched: sched.Options{Exact: sched.ExactConfig{
				Enabled:      *exact,
				NodeBudget:   *exnodes,
				SearchBudget: *exsearch,
			}},
		})
		var err error
		results, err = runner.RunSuite(names, pipeline.AllSchemes())
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	if *shardOut != "" {
		env := shardEnvelope{Results: results}
		if s, ok := runner.CacheStats(); ok {
			env.Stats, env.HaveStats = s, true
		}
		if err := writeShardEnvelope(*shardOut, env); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		runStoreGC(st, *storeGC)
		return
	}

	if *jsonOut {
		out, err := stats.JSON(results)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println(out)
		runStoreGC(st, *storeGC)
		return
	}
	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("# pathsched experiments — %d benchmarks, schemes %v, %d worker(s), wall clock %.1fs\n\n",
		len(results), pipeline.AllSchemes(), workers, time.Since(start).Seconds())
	if *cstats {
		switch {
		case shardStats != nil:
			total := pipeline.CacheStats{}
			for i, s := range shardStats {
				fmt.Printf("# cache shard %d: %s\n", i, s)
				total = total.Add(s)
			}
			fmt.Printf("# cache total: %s\n\n", total)
		case runner != nil:
			if s, ok := runner.CacheStats(); ok {
				fmt.Printf("# cache: %s\n\n", s)
			} else {
				fmt.Printf("# cache: disabled\n\n")
			}
		}
	}

	want := map[string]bool{}
	for _, w := range strings.Split(*only, ",") {
		want[strings.TrimSpace(w)] = true
	}
	show := func(key string) bool { return want["all"] || want[key] }

	if show("table1") {
		fmt.Println(stats.Table1(results))
	}
	if show("fig4") {
		fmt.Println(stats.Figure4(results))
	}
	if show("fig5") {
		fmt.Println(stats.Figure5(results))
	}
	if show("fig6") {
		fmt.Println(stats.Figure6(results))
	}
	if show("fig7") {
		fmt.Println(stats.Figure7(results))
	}
	if show("miss") {
		fmt.Println(stats.MissRates(results))
	}
	if show("summary") {
		fmt.Println(stats.Summary(results))
	}
	if *gapstats {
		fmt.Println(stats.GapTable(results))
	}
	if *dovalid {
		fmt.Println(stats.ValidationTable(results))
	}
	if *profstats {
		printProfStats(results)
	}
	if *compstats {
		printCompileStats(runner.CompileStats())
	}
	runStoreGC(st, *storeGC)
}

// runStoreGC prunes the artifact store to maxBytes after the run (a
// no-op without -store/-storegc).
func runStoreGC(st *store.Store, maxBytes int64) {
	if st == nil || maxBytes <= 0 {
		return
	}
	gc, err := st.GC(maxBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: store gc:", err)
		os.Exit(1)
	}
	fmt.Printf("# store gc: removed %d entries (%d bytes); %d entries (%d bytes) remain\n",
		gc.Removed, gc.RemovedBytes, gc.Entries, gc.Bytes)
}

// printCompileStats reports where compile time went across the whole
// run. Stage times sum over concurrent compiles, so they can exceed
// wall clock on parallel runs.
func printCompileStats(cs pipeline.CompileStats) {
	fmt.Println("\n# compile-stage wall time (summed across workers)")
	fmt.Printf("  compiles: %d, layout runs: %d\n", cs.Compiles, cs.LayoutRuns)
	fmt.Printf("  %-8s %8.3fs\n", "form", cs.FormSeconds)
	fmt.Printf("  %-8s %8.3fs\n", "compact", cs.CompactSeconds)
	fmt.Printf("  %-8s %8.3fs\n", "check", cs.CheckSeconds)
	fmt.Printf("  %-8s %8.3fs\n", "validate", cs.ValidateSeconds)
	fmt.Printf("  %-8s %8.3fs\n", "layout", cs.LayoutSeconds)
}

// printProfStats reports how each benchmark's training run executed:
// which fast paths were active (counter-fused edge/call reconstruction,
// batched path-profiler delivery), the batch flush statistics, and per
// procedure the path automaton's node count and successor-table mode.
func printProfStats(results []*pipeline.Result) {
	fmt.Println("# training-run profiling statistics")
	for _, r := range results {
		ps := r.ProfStats
		if ps == nil {
			fmt.Printf("\n%s: no training statistics (cached result)\n", r.Name)
			continue
		}
		mode := "legacy per-event observers"
		if ps.Fused {
			mode = "counter-fused edge/call reconstruction"
		}
		scheme := ps.Scheme
		if scheme == "" {
			scheme = "window"
		}
		fmt.Printf("\n%s: scheme=%s, %s\n", r.Name, scheme, mode)
		if ps.Batched {
			rec := float64(0)
			if ps.Batches > 0 {
				rec = float64(ps.Records) / float64(ps.Batches)
			}
			fmt.Printf("  path batches: %d flushes, %d records (%.1f records/flush)\n",
				ps.Batches, ps.Records, rec)
		} else {
			fmt.Printf("  path batches: none (per-event delivery)\n")
		}
		var nodes int
		for _, a := range ps.Automaton {
			nodes += a.Nodes
		}
		fmt.Printf("  path automaton: %d nodes over %d procs\n", nodes, len(ps.Automaton))
		for _, a := range ps.Automaton {
			if a.Nodes == 0 {
				continue
			}
			m := "dense"
			if !a.Dense {
				m = "map"
			}
			fmt.Printf("    proc %-3d %6d nodes  succ-table %s\n", a.Proc, a.Nodes, m)
		}
	}
}

// runAblations measures how the design choices DESIGN.md calls out
// contribute to the path-based result: profile depth, the three §2.3
// compaction optimizations, and footnote 2's upward trace growth.
// Reported per configuration: geometric mean of P4/M4 ideal cycles
// over the ablation benchmark set.
//
// All configurations share one content-addressed cache, so configs
// that resolve to identical formation inputs (depth=15 vs baseline)
// collapse to one compile and one layout-profiling run per benchmark.
// With -store, the shared cache is disk-backed, so a repeated sweep
// starts warm.
func runAblations(benches string, jobs int, cstats, nocache bool, checkMode pipeline.CheckMode, validateMode pipeline.ValidateMode, st *store.Store) {
	names := []string{"alt", "ph", "corr", "wc", "eqn", "m88k"}
	if benches != "" {
		names = strings.Split(benches, ",")
	}
	type config struct {
		label string
		opts  pipeline.Options
	}
	var configs []config
	for _, d := range []int{1, 2, 4, 8, 15} {
		configs = append(configs, config{
			label: fmt.Sprintf("depth=%-2d", d),
			opts:  pipeline.Options{PathDepth: d},
		})
	}
	configs = append(configs,
		config{"no-renaming", pipeline.Options{Sched: sched.Options{DisableRenaming: true}}},
		config{"no-dce", pipeline.Options{Sched: sched.Options{DisableDCE: true}}},
		config{"no-vn", pipeline.Options{Sched: sched.Options{DisableVN: true}}},
		config{"upward-growth", pipeline.Options{Form: func(c *core.Config) { c.GrowUpward = true }}},
		config{"cross-act", pipeline.Options{PathCrossActivation: true}},
		config{"bl", pipeline.Options{Profiler: pipeline.ProfilerBL}},
		config{"bl-k2", pipeline.Options{Profiler: pipeline.ProfilerBL, BLIterations: 2}},
		config{"bl-k8", pipeline.Options{Profiler: pipeline.ProfilerBL, BLIterations: 8}},
		config{"baseline", pipeline.Options{}},
	)
	fmt.Printf("# ablations over %v (geomean of P4/M4 ideal cycles; lower favors P4)\n\n", names)
	fmt.Printf("%-14s %10s %14s\n", "config", "P4/M4", "P4 cycles (K)")
	shared := pipeline.NewCache()
	if st != nil {
		shared = pipeline.NewDiskCache(st)
	}
	for _, c := range configs {
		c.opts.Parallelism = jobs
		c.opts.ProfileCache = shared
		c.opts.DisableProfileCache = nocache
		c.opts.Check = checkMode
		c.opts.Validate = validateMode
		runner := pipeline.NewRunner(c.opts)
		results, err := runner.RunSuite(names, []pipeline.Scheme{pipeline.SchemeM4, pipeline.SchemeP4})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		geo, n := 1.0, 0
		var cycles int64
		for _, r := range results {
			m4 := r.ByScheme[pipeline.SchemeM4]
			p4 := r.ByScheme[pipeline.SchemeP4]
			geo *= float64(p4.IdealCycles) / float64(m4.IdealCycles)
			cycles += p4.IdealCycles
			n++
		}
		if n > 0 {
			geo = math.Pow(geo, 1/float64(n))
		}
		fmt.Printf("%-14s %10.3f %14.1f\n", c.label, geo, float64(cycles)/1000)
	}
	if cstats && !nocache {
		fmt.Printf("\n# cache: %s\n", shared.Stats())
	}
}
