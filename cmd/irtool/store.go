package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pathsched/internal/pipeline"
	"pathsched/internal/store"
)

// storeCmd administers a persistent artifact store directory: list its
// entries, verify every entry end to end (framing sha plus the
// kind-specific semantic check — decode, re-fingerprint, key binding),
// or prune it to a byte budget, oldest access first.
func storeCmd(args []string) {
	if len(args) < 1 {
		storeUsage()
	}
	sub, args := args[0], args[1:]
	fs := flag.NewFlagSet("store "+sub, flag.ExitOnError)
	dir := fs.String("dir", "", "artifact store directory (required)")
	maxBytes := fs.Int64("maxbytes", 0, "gc: entry-byte budget to prune down to (0 = sweep debris only)")
	_ = fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("store %s: -dir is required", sub))
	}
	st, err := store.Open(*dir, store.Options{})
	if err != nil {
		fatal(err)
	}
	switch sub {
	case "ls":
		storeLs(st)
	case "verify":
		storeVerify(st)
	case "gc":
		storeGC(st, *maxBytes)
	default:
		storeUsage()
	}
}

func storeUsage() {
	fmt.Fprintln(os.Stderr, "usage: irtool store {ls|verify|gc} -dir DIR [-maxbytes N]")
	os.Exit(2)
}

func storeLs(st *store.Store) {
	entries, err := st.List()
	if err != nil {
		fatal(err)
	}
	var total int64
	now := time.Now()
	for _, e := range entries {
		fmt.Printf("%-8s %-64s %8d  %s\n", e.Kind, e.Key, e.Size, fmtAge(now.Sub(e.ModTime)))
		total += e.Size
	}
	fmt.Printf("%d entries, %d bytes\n", len(entries), total)
}

// fmtAge renders an access age at one coarse unit, enough to judge GC
// candidates by eye.
func fmtAge(d time.Duration) string {
	switch {
	case d < time.Minute:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	case d < time.Hour:
		return fmt.Sprintf("%dm", int(d.Minutes()))
	case d < 24*time.Hour:
		return fmt.Sprintf("%dh", int(d.Hours()))
	default:
		return fmt.Sprintf("%dd", int(d.Hours()/24))
	}
}

func storeVerify(st *store.Store) {
	entries, err := st.List()
	if err != nil {
		fatal(err)
	}
	bad := 0
	for _, e := range entries {
		payload, ok := st.Get(e.Kind, e.Key)
		if !ok {
			// Get already deleted it: framing sha or magic failed.
			fmt.Printf("CORRUPT %s/%s: bad framing (removed)\n", e.Kind, e.Key)
			bad++
			continue
		}
		if err := pipeline.VerifyEntry(e.Kind, e.Key, payload); err != nil {
			fmt.Printf("CORRUPT %s/%s: %v\n", e.Kind, e.Key, err)
			bad++
		}
	}
	fmt.Printf("%d entries verified, %d corrupt\n", len(entries), bad)
	if bad > 0 {
		os.Exit(1)
	}
}

func storeGC(st *store.Store, maxBytes int64) {
	gs, err := st.GC(maxBytes)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("removed %d entries (%d bytes), %d temp files, %d stale claims; %d entries (%d bytes) remain\n",
		gs.Removed, gs.RemovedBytes, gs.TmpRemoved, gs.ClaimsRemoved, gs.Entries, gs.Bytes)
}
