// Command irtool works with the textual IR format: dump a benchmark
// (optionally after compilation), verify a file, run a file, or
// profile a file and print path statistics.
//
// Usage:
//
//	irtool dump -bench wc > wc.ir            # architectural program
//	irtool dump -bench wc -scheme P4         # compiled (annotations dropped)
//	irtool verify wc.ir
//	irtool check wc.ir                       # semantic checks (def-before-use, schedules)
//	irtool check -edge e.prof -path p.prof wc.ir   # + profile flow conservation
//	irtool run wc.ir
//	irtool validate -scheme P4 wc.ir         # compile + prove equivalence
//	irtool validate -bench wc                # same, all five schemes
//	irtool paths -top 10 wc.ir               # hottest general paths
//	irtool profile -edge e.prof -path p.prof wc.ir   # save profiles
//	irtool compile -scheme P4 -edge e.prof -path p.prof wc.ir > wc.p4.ir
//	irtool store ls -dir .pathsched-store            # list artifact-store entries
//	irtool store verify -dir .pathsched-store        # re-fingerprint every entry
//	irtool store gc -dir .pathsched-store -maxbytes 1000000
//
// profile + compile decouple training from compilation, the standard
// profile-guided build workflow.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pathsched/internal/bench"
	"pathsched/internal/check"
	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/machine"
	"pathsched/internal/profile"
	"pathsched/internal/validate"

	root "pathsched"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "dump":
		dump(args)
	case "verify":
		verify(args)
	case "check":
		checkCmd(args)
	case "run":
		run(args)
	case "validate":
		validateCmd(args)
	case "paths":
		paths(args)
	case "profile":
		profileCmd(args)
	case "compile":
		compileCmd(args)
	case "dot":
		dotCmd(args)
	case "trace":
		traceCmd(args)
	case "store":
		storeCmd(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: irtool {dump|verify|check|run|validate|paths|profile|compile|dot|trace|store} [flags] [file.ir]")
	os.Exit(2)
}

// dotCmd renders a procedure's CFG as Graphviz DOT, with dynamic edge
// weights from a run.
func dotCmd(args []string) {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	procName := fs.String("proc", "main", "procedure to render")
	weights := fs.Bool("weights", true, "run the program and label edges with counts")
	_ = fs.Parse(args)
	prog := loadFile(fs.Args())
	p := prog.ProcByName(*procName)
	if p == nil {
		fatal(fmt.Errorf("no procedure %q", *procName))
	}
	var weight func(from, to ir.BlockID) int64
	if *weights {
		ep := profile.NewEdgeProfiler(prog)
		if _, err := interp.Run(prog, interp.Config{Observer: ep}); err != nil {
			fatal(err)
		}
		e := ep.Profile()
		weight = func(from, to ir.BlockID) int64 { return e.EdgeFreq(p.ID, from, to) }
	}
	fmt.Print(ir.WriteDot(p, weight))
}

// traceCmd prints the first N block-level control-flow events of a run.
func traceCmd(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	n := fs.Int("n", 50, "events to print")
	_ = fs.Parse(args)
	prog := loadFile(fs.Args())
	tr := &tracer{limit: *n, prog: prog}
	if _, err := interp.Run(prog, interp.Config{Observer: tr}); err != nil {
		fatal(err)
	}
	if tr.printed >= tr.limit {
		fmt.Printf("... (truncated at %d events)\n", tr.limit)
	}
}

type tracer struct {
	prog    *ir.Program
	limit   int
	printed int
	depth   int
}

func (t *tracer) EnterProc(p ir.ProcID, entry ir.BlockID) {
	if t.printed < t.limit {
		fmt.Printf("%*scall %s\n", 2*t.depth, "", t.prog.Proc(p).Name)
		t.printed++
	}
	t.depth++
}

func (t *tracer) ExitProc(p ir.ProcID) {
	t.depth--
	if t.printed < t.limit {
		fmt.Printf("%*sret  %s\n", 2*t.depth, "", t.prog.Proc(p).Name)
		t.printed++
	}
}

func (t *tracer) Edge(p ir.ProcID, from, to ir.BlockID) {}

func (t *tracer) Block(p ir.ProcID, b ir.BlockID) {
	if t.printed < t.limit {
		fmt.Printf("%*s  b%d\n", 2*t.depth, "", b)
		t.printed++
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "irtool:", err)
	os.Exit(1)
}

func loadFile(args []string) *ir.Program {
	if len(args) != 1 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fatal(err)
	}
	prog, err := ir.ParseText(string(data))
	if err != nil {
		fatal(err)
	}
	return prog
}

func dump(args []string) {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	benchName := fs.String("bench", "alt", "benchmark to dump")
	scheme := fs.String("scheme", "", "compile first: BB, M4, M16, P4e, P4")
	train := fs.Bool("train", false, "use the training input instead of testing")
	_ = fs.Parse(args)

	b := bench.ByName(*benchName)
	if b == nil {
		fatal(fmt.Errorf("unknown benchmark %q", *benchName))
	}
	in := b.Test
	if *train {
		in = b.Train
	}
	prog := b.Build(in)
	if *scheme != "" {
		profs, err := root.ProfileProgram(b.Build(b.Train))
		if err != nil {
			fatal(err)
		}
		bin, err := root.Compile(prog, profs, root.Scheme(*scheme))
		if err != nil {
			fatal(err)
		}
		prog = bin
	}
	fmt.Print(ir.WriteText(prog))
}

func verify(args []string) {
	prog := loadFile(args)
	fmt.Printf("ok: %s — %d procs, %d blocks, %d instructions, %d data words\n",
		prog.Name, len(prog.Procs), totalBlocks(prog), prog.NumInstrs(), prog.MemSize)
}

// checkCmd runs the semantic analyses of internal/check offline:
// structural verification, def-before-use (undefined virtual reads are
// always errors; physical reads are judged against the program's own
// baseline), schedule legality for any scheduled blocks, and — when
// profile files are supplied — flow conservation.
func checkCmd(args []string) {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	edgeIn := fs.String("edge", "", "edge profile to check flow conservation against")
	pathIn := fs.String("path", "", "path profile to check internal consistency")
	realistic := fs.Bool("realistic", false, "check schedules against multi-cycle load/mul latencies")
	_ = fs.Parse(args)
	prog := loadFile(fs.Args())
	if err := ir.Verify(prog); err != nil {
		fatal(err)
	}
	mc := machine.Default()
	mc.Realistic = *realistic

	vs := check.DefBeforeUse(prog, check.BaselineOf(prog))
	vs = append(vs, check.Schedules(prog, mc)...)
	var eprof *profile.EdgeProfile
	if *edgeIn != "" {
		data, err := os.ReadFile(*edgeIn)
		if err != nil {
			fatal(err)
		}
		if eprof, err = profile.ParseEdgeProfile(len(prog.Procs), string(data)); err != nil {
			fatal(err)
		}
		vs = append(vs, check.EdgeFlow(prog, eprof)...)
	}
	if *pathIn != "" {
		data, err := os.ReadFile(*pathIn)
		if err != nil {
			fatal(err)
		}
		pprof, err := profile.ParsePathProfile(prog, string(data))
		if err != nil {
			fatal(err)
		}
		vs = append(vs, check.PathFlow(prog, pprof, eprof)...)
	}
	if err := check.Err("offline", vs); err != nil {
		fatal(err)
	}
	fmt.Printf("ok: %s — %d procs, %d blocks, %d instructions semantically checked\n",
		prog.Name, len(prog.Procs), totalBlocks(prog), prog.NumInstrs())
}

func totalBlocks(p *ir.Program) int {
	n := 0
	for _, pr := range p.Procs {
		n += len(pr.Blocks)
	}
	return n
}

func run(args []string) {
	prog := loadFile(args)
	res, err := interp.Run(prog, interp.Config{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ret      %d\n", res.Ret)
	fmt.Printf("output   %v\n", res.Output)
	fmt.Printf("cycles   %d\n", res.Cycles)
	fmt.Printf("instrs   %d\n", res.DynInstrs)
	fmt.Printf("branches %d\n", res.DynBranches)
}

// validateCmd compiles a program in-process and proves the result
// semantically equivalent to the pristine input with the translation
// validator. Compilation must happen here rather than on a dumped file
// pair: the textual IR format drops the schedule annotations
// (Cycles/Units/UnitOrigins) the proof consumes, so validating parsed
// files could only ever report every procedure bounded.
func validateCmd(args []string) {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	benchName := fs.String("bench", "", "benchmark to compile and validate (alternative to a file)")
	scheme := fs.String("scheme", "", "single scheme: BB, M4, M16, P4e, P4 (default: all five)")
	verbose := fs.Bool("v", false, "print per-procedure verdicts")
	depthB := fs.Int("depthbudget", 0, "trace blocks co-executed per merged block (0 = default)")
	pathB := fs.Int("pathbudget", 0, "exit cuts checked per procedure (0 = default)")
	nodeB := fs.Int("nodebudget", 0, "expression-graph nodes per procedure (0 = default)")
	_ = fs.Parse(args)

	var pristine, train *ir.Program
	if *benchName != "" {
		if len(fs.Args()) != 0 {
			fatal(fmt.Errorf("validate: -bench and a file are mutually exclusive"))
		}
		b := bench.ByName(*benchName)
		if b == nil {
			fatal(fmt.Errorf("unknown benchmark %q", *benchName))
		}
		pristine, train = b.Build(b.Test), b.Build(b.Train)
	} else {
		pristine = loadFile(fs.Args())
		train = pristine
	}
	profs, err := root.ProfileProgram(train)
	if err != nil {
		fatal(err)
	}
	schemes := root.Schemes()
	if *scheme != "" {
		schemes = []root.Scheme{root.Scheme(*scheme)}
	}
	opts := validate.Options{DepthBudget: *depthB, PathBudget: *pathB, NodeBudget: *nodeB}
	bad := false
	for _, s := range schemes {
		bin, err := root.Compile(pristine, profs, s)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", s, err))
		}
		rep, vs := check.Equiv(pristine, bin, opts)
		fmt.Printf("%-4s %s\n", s, rep.Stats)
		if *verbose {
			for _, pr := range rep.Procs {
				line := fmt.Sprintf("  %-12s %-8s %d blocks, %d cuts, %d nodes",
					pr.Proc, pr.Verdict, pr.Blocks, pr.Cuts, pr.Nodes)
				if pr.Reason != "" {
					line += " — " + pr.Reason
				}
				fmt.Println(line)
			}
		}
		if err := check.Err("validate", vs); err != nil {
			fmt.Fprintf(os.Stderr, "irtool: %s: %v\n", s, err)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
}

// profileCmd executes the program once, writing edge and/or path
// profiles to files.
func profileCmd(args []string) {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	edgeOut := fs.String("edge", "", "write edge profile here")
	pathOut := fs.String("path", "", "write path profile here")
	depth := fs.Int("depth", 15, "path depth in branches")
	_ = fs.Parse(args)
	if *edgeOut == "" && *pathOut == "" {
		fatal(fmt.Errorf("profile: need -edge and/or -path output files"))
	}
	prog := loadFile(fs.Args())
	ep := profile.NewEdgeProfiler(prog)
	pp := profile.NewPathProfiler(prog, profile.PathConfig{Depth: *depth})
	if _, err := interp.Run(prog, interp.Config{Observer: profile.Multi{ep, pp}}); err != nil {
		fatal(err)
	}
	if *edgeOut != "" {
		if err := os.WriteFile(*edgeOut, []byte(ep.Profile().WriteText()), 0o644); err != nil {
			fatal(err)
		}
	}
	if *pathOut != "" {
		if err := os.WriteFile(*pathOut, []byte(pp.WriteText()), 0o644); err != nil {
			fatal(err)
		}
	}
	nodes, edges := pp.Stats()
	fmt.Fprintf(os.Stderr, "profiled %s: %d distinct paths over %d dynamic edges\n",
		prog.Name, nodes, edges)
}

// compileCmd forms and compacts a program from saved profiles and
// prints the compiled IR.
func compileCmd(args []string) {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	scheme := fs.String("scheme", "P4", "BB, M4, M16, P4e, P4")
	edgeIn := fs.String("edge", "", "edge profile file")
	pathIn := fs.String("path", "", "path profile file")
	_ = fs.Parse(args)
	prog := loadFile(fs.Args())

	profs := &root.Profiles{Calls: map[[2]ir.ProcID]int64{}}
	if *edgeIn != "" {
		data, err := os.ReadFile(*edgeIn)
		if err != nil {
			fatal(err)
		}
		e, err := profile.ParseEdgeProfile(len(prog.Procs), string(data))
		if err != nil {
			fatal(err)
		}
		profs.Edge = e
	}
	if *pathIn != "" {
		data, err := os.ReadFile(*pathIn)
		if err != nil {
			fatal(err)
		}
		p, err := profile.ParsePathProfile(prog, string(data))
		if err != nil {
			fatal(err)
		}
		profs.Path = p
	}
	if profs.Edge == nil {
		// Layout weights and edge-based schemes need an edge profile;
		// derive one by running the program if absent.
		ep := profile.NewEdgeProfiler(prog)
		if _, err := interp.Run(prog, interp.Config{Observer: ep}); err != nil {
			fatal(err)
		}
		profs.Edge = ep.Profile()
	}
	bin, err := root.Compile(prog, profs, root.Scheme(*scheme))
	if err != nil {
		fatal(err)
	}
	fmt.Print(ir.WriteText(bin))
}

func paths(args []string) {
	fs := flag.NewFlagSet("paths", flag.ExitOnError)
	top := fs.Int("top", 10, "paths to print per procedure")
	length := fs.Int("len", 4, "path length in blocks")
	depth := fs.Int("depth", 15, "profiling depth in branches")
	_ = fs.Parse(args)
	prog := loadFile(fs.Args())

	pp := profile.NewPathProfiler(prog, profile.PathConfig{Depth: *depth})
	if _, err := interp.Run(prog, interp.Config{Observer: pp}); err != nil {
		fatal(err)
	}
	pf := pp.Profile()
	for _, p := range prog.Procs {
		type hot struct {
			seq  []ir.BlockID
			freq int64
		}
		var hots []hot
		// Enumerate length-N sequences by extending hot blocks greedily
		// breadth-first through observed successors.
		frontier := [][]ir.BlockID{}
		for _, b := range pf.BlocksByFreq(p.ID) {
			frontier = append(frontier, []ir.BlockID{b})
		}
		for step := 1; step < *length; step++ {
			var next [][]ir.BlockID
			for _, seq := range frontier {
				for s := range pf.SuccFreqs(p.ID, seq) {
					ext := append(append([]ir.BlockID{}, seq...), s)
					next = append(next, ext)
				}
			}
			frontier = next
		}
		for _, seq := range frontier {
			if f := pf.Freq(p.ID, seq); f > 0 {
				hots = append(hots, hot{seq, f})
			}
		}
		sort.Slice(hots, func(i, j int) bool {
			if hots[i].freq != hots[j].freq {
				return hots[i].freq > hots[j].freq
			}
			return fmt.Sprint(hots[i].seq) < fmt.Sprint(hots[j].seq)
		})
		if len(hots) > *top {
			hots = hots[:*top]
		}
		if len(hots) == 0 {
			continue
		}
		fmt.Printf("proc %s:\n", p.Name)
		for _, h := range hots {
			fmt.Printf("  %8d  %s\n", h.freq, profile.FmtSeq(h.seq))
		}
	}
}
