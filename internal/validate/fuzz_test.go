package validate_test

import (
	"testing"

	"pathsched/internal/check"
	"pathsched/internal/core"
	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/ir/irtest"
	"pathsched/internal/profile"
	"pathsched/internal/sched"
	"pathsched/internal/validate"
)

// FuzzEquiv is the validator's soundness fuzzer: random executable
// programs go through the full pipeline under all three schemes, and
// every compile the pipeline accepts must validate — the translation
// validator may never reject legitimate pipeline output, never report
// Bounded under default budgets on these small programs, and never
// panic. (Its ability to reject miscompiles is pinned separately by
// the mutation teeth tests in internal/check.)
func FuzzEquiv(f *testing.F) {
	f.Add(int64(1), uint8(8))
	f.Add(int64(2), uint8(12))
	f.Add(int64(42), uint8(6))
	f.Add(int64(-7), uint8(20))
	f.Add(int64(1234567), uint8(31))
	f.Fuzz(func(t *testing.T, seed int64, sz uint8) {
		prog := irtest.RandExecProg(seed, int(sz%28)+4)
		pristine := ir.CloneProgram(prog)

		ep := profile.NewEdgeProfiler(prog)
		pp := profile.NewPathProfiler(prog, profile.PathConfig{})
		if _, err := interp.Run(prog, interp.Config{
			Observer: profile.Multi{ep, pp},
			MaxSteps: 1 << 22,
		}); err != nil {
			t.Skipf("training run rejected: %v", err)
		}
		eprof, pprof := ep.Profile(), pp.Profile()

		validated := func(scheme string, bin *ir.Program) {
			rep, vs := check.Equiv(pristine, bin, validate.Options{})
			if err := check.Err("validate", vs); err != nil {
				t.Fatalf("%s compile of a legitimate program rejected: %v", scheme, err)
			}
			if rep.Stats.Bounded != 0 {
				t.Fatalf("%s compile hit a budget on a small program: %v", scheme, rep.Stats)
			}
			if rep.Stats.Proved != rep.Stats.Procs {
				t.Fatalf("%s compile not fully proved: %v", scheme, rep.Stats)
			}
		}

		bb := ir.CloneProgram(pristine)
		if err := sched.CompactBasicBlocks(bb, sched.Options{}); err == nil {
			validated("bb", bb)
		}

		for _, method := range []core.Method{core.EdgeBased, core.PathBased} {
			cfg := core.DefaultConfig()
			cfg.Method = method
			cfg.Edge, cfg.Path = eprof, pprof
			res, err := core.Form(ir.CloneProgram(pristine), cfg)
			if err != nil {
				continue // formation may refuse odd shapes; not the validator's bug
			}
			if err := sched.Compact(res, sched.Options{}); err != nil {
				continue
			}
			validated(method.String(), res.Prog)
		}
	})
}
