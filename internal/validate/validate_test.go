package validate_test

import (
	"strings"
	"testing"

	"pathsched/internal/core"
	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/profile"
	"pathsched/internal/sched"
	"pathsched/internal/validate"
)

// loopProg is a loop whose hot path invites superblock formation with
// tail duplication and load speculation, and whose body stores and
// emits so both effect streams are exercised.
func loopProg() *ir.Program {
	bd := ir.NewBuilder("loop", 64)
	bd.Data(0, 7, 9)
	pb := bd.Proc("main")
	entry, head, b1, b2, rare, latch, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, s, c, t1, t2, t3, base = 1, 2, 3, 4, 5, 6, 7
	entry.Add(ir.MovI(i, 0), ir.MovI(s, 0), ir.MovI(base, 0))
	entry.Jmp(head.ID())
	head.Add(ir.CmpLTI(c, i, 300))
	head.Br(c, b1.ID(), exit.ID())
	b1.Add(ir.AddI(t1, i, 3), ir.AndI(c, i, 63), ir.CmpEQI(c, c, 63))
	b1.Br(c, rare.ID(), b2.ID())
	b2.Add(
		ir.Load(t2, base, 0), ir.Load(t3, base, 1),
		ir.Add(s, s, t2), ir.Add(s, s, t3), ir.Add(s, s, t1),
		ir.Store(base, 3, s),
	)
	b2.Jmp(latch.ID())
	rare.Add(ir.AddI(s, s, 1000))
	rare.Jmp(latch.ID())
	latch.Add(ir.AddI(i, i, 1))
	latch.Jmp(head.ID())
	exit.Add(ir.Emit(s))
	exit.Ret(s)
	return bd.Finish()
}

// callProg exercises call havoc: two calls in sequence whose results
// and memory effects feed later observables.
func callProg() *ir.Program {
	bd := ir.NewBuilder("callp", 64)
	bd.Data(0, 5)
	hp := bd.Proc("helper")
	hb := hp.NewBlock()
	hb.Add(ir.MovI(4, 8), ir.Add(3, 1, 2), ir.Store(4, 0, 3), ir.Emit(3))
	hb.Ret(3)
	mp := bd.Proc("main")
	b0, b1, b2 := mp.NewBlock(), mp.NewBlock(), mp.NewBlock()
	b0.Add(ir.MovI(1, 2), ir.MovI(2, 3))
	b0.Call(5, hp.ID(), b1.ID(), 1, 2)
	b1.Add(ir.AddI(6, 5, 1), ir.Load(7, 5, 0))
	b1.Call(8, hp.ID(), b2.ID(), 6, 7)
	b2.Add(ir.Emit(8))
	b2.Ret(8)
	bd.SetMain(mp.ID())
	return bd.Finish()
}

var schemes = []string{"bb", "edge", "path"}

// compileScheme compiles prog under one of the three schemes and
// returns the transformed program; prog itself is never mutated.
func compileScheme(t *testing.T, prog *ir.Program, scheme string) *ir.Program {
	t.Helper()
	work := ir.CloneProgram(prog)
	if scheme == "bb" {
		if err := sched.CompactBasicBlocks(work, sched.Options{}); err != nil {
			t.Fatalf("CompactBasicBlocks: %v", err)
		}
		return work
	}
	ep := profile.NewEdgeProfiler(prog)
	pp := profile.NewPathProfiler(prog, profile.PathConfig{})
	if _, err := interp.Run(prog, interp.Config{Observer: profile.Multi{ep, pp}}); err != nil {
		t.Fatalf("training run: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.Method = core.EdgeBased
	if scheme == "path" {
		cfg.Method = core.PathBased
	}
	cfg.Edge, cfg.Path = ep.Profile(), pp.Profile()
	cfg.MinExecFreq = 2
	res, err := core.Form(work, cfg)
	if err != nil {
		t.Fatalf("Form: %v", err)
	}
	if err := sched.Compact(res, sched.Options{}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	return res.Prog
}

// requireAllProved asserts every procedure proved and returns the
// report.
func requireAllProved(t *testing.T, pristine, transformed *ir.Program) *validate.Report {
	t.Helper()
	rep := validate.Program(pristine, transformed, validate.Options{})
	if len(rep.Issues) != 0 {
		t.Fatalf("unexpected issues: %v", rep.Issues)
	}
	if rep.Stats.Proved != rep.Stats.Procs || rep.Stats.Bounded != 0 || rep.Stats.Failed != 0 {
		t.Fatalf("stats = %v, want all %d proved", rep.Stats, rep.Stats.Procs)
	}
	return rep
}

func TestProvedAcrossSchemes(t *testing.T) {
	for _, prog := range []*ir.Program{loopProg(), callProg()} {
		for _, scheme := range schemes {
			t.Run(prog.Name+"/"+scheme, func(t *testing.T) {
				transformed := compileScheme(t, prog, scheme)
				rep := requireAllProved(t, prog, transformed)
				// callProg's calls can merge into one block (their
				// continuations become in-block fallthroughs), leaving no
				// cuts; the loop always branches between blocks.
				if rep.Stats.Cuts == 0 && prog.Name == "loop" {
					t.Fatalf("no cuts checked: %v", rep.Stats)
				}
			})
		}
	}
}

// The validator must also prove a program against itself when it
// carries metadata — and report Bounded, not Proved, when it doesn't.
func TestUnscheduledIsBounded(t *testing.T) {
	prog := loopProg()
	rep := validate.Program(prog, ir.CloneProgram(prog), validate.Options{})
	if len(rep.Issues) != 0 {
		t.Fatalf("unexpected issues: %v", rep.Issues)
	}
	if rep.Stats.Bounded != rep.Stats.Procs || rep.Stats.Procs == 0 {
		t.Fatalf("stats = %v, want every proc bounded", rep.Stats)
	}
	if r := rep.Procs[0].Reason; !strings.Contains(r, "lacks schedule or trace metadata") {
		t.Fatalf("reason = %q", r)
	}
}

// Budget boundaries: exactly-at-budget proves, one-under goes Bounded
// with the budget named in the reason — never a silent pass.
func TestBudgetBoundaries(t *testing.T) {
	prog := loopProg()
	transformed := compileScheme(t, prog, "path")
	base := requireAllProved(t, prog, transformed)
	pr := base.Procs[0]

	maxDepth := 0
	for _, b := range transformed.Procs[0].Blocks {
		maxDepth = max(maxDepth, len(b.UnitOrigins))
	}
	if maxDepth < 2 {
		t.Fatalf("no merged superblock formed (max depth %d)", maxDepth)
	}
	cases := []struct {
		name      string
		at, under validate.Options
		reason    string
	}{
		{"depth", validate.Options{DepthBudget: maxDepth}, validate.Options{DepthBudget: maxDepth - 1}, "trace depth"},
		{"path", validate.Options{PathBudget: pr.Cuts}, validate.Options{PathBudget: pr.Cuts - 1}, "exit cuts"},
		{"node", validate.Options{NodeBudget: pr.Nodes}, validate.Options{NodeBudget: pr.Nodes - 1}, "expression nodes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := validate.Program(prog, transformed, tc.at)
			if rep.Stats.Proved != rep.Stats.Procs {
				t.Fatalf("at-budget stats = %v, want all proved", rep.Stats)
			}
			rep = validate.Program(prog, transformed, tc.under)
			if rep.Stats.Bounded != 1 || len(rep.Issues) != 0 {
				t.Fatalf("under-budget stats = %v issues = %v, want one bounded proc", rep.Stats, rep.Issues)
			}
			if r := rep.Procs[0].Reason; !strings.Contains(r, tc.reason) {
				t.Fatalf("reason = %q, want mention of %q", r, tc.reason)
			}
		})
	}
}

func TestCorruptTraceMetadataFails(t *testing.T) {
	prog := loopProg()
	transformed := compileScheme(t, prog, "path")
	transformed.Procs[0].Blocks[0].UnitOrigins[0] = 999
	rep := validate.Program(prog, transformed, validate.Options{})
	if rep.Stats.Failed != 1 {
		t.Fatalf("stats = %v, want failed", rep.Stats)
	}
	found := false
	for _, is := range rep.Issues {
		if strings.Contains(is.Msg, "does not exist") {
			found = true
			if is.Proc != "main" || is.Block != 0 {
				t.Fatalf("issue lacks identity: %v", is)
			}
		}
	}
	if !found {
		t.Fatalf("no issue mentions the bad origin: %v", rep.Issues)
	}
}

func TestProcedureShapeMismatch(t *testing.T) {
	prog := callProg()
	transformed := compileScheme(t, prog, "bb")
	truncated := ir.CloneProgram(transformed)
	truncated.Procs = truncated.Procs[:1]
	rep := validate.Program(prog, truncated, validate.Options{})
	if len(rep.Issues) != 1 || !strings.Contains(rep.Issues[0].Msg, "procedure count changed") {
		t.Fatalf("issues = %v", rep.Issues)
	}

	renamed := compileScheme(t, prog, "bb")
	renamed.Procs[0].Name = "evil"
	rep = validate.Program(prog, renamed, validate.Options{})
	if rep.Stats.Failed != 1 {
		t.Fatalf("stats = %v, want one failed", rep.Stats)
	}
	if !strings.Contains(rep.Issues[0].Msg, "renamed") {
		t.Fatalf("issues = %v", rep.Issues)
	}
}

// Two direct miscompile smokes at the validate API level (the full
// teeth matrix lives in internal/check's equiv_teeth_test.go).

func TestDetectsDroppedStore(t *testing.T) {
	prog := loopProg()
	transformed := compileScheme(t, prog, "path")
	requireAllProved(t, prog, transformed)
	for _, b := range transformed.Procs[0].Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpStore {
				b.Instrs[i] = ir.Nop()
				goto mutated
			}
		}
	}
	t.Fatal("no store found in compiled program")
mutated:
	rep := validate.Program(prog, transformed, validate.Options{})
	if rep.Stats.Failed != 1 || len(rep.Issues) == 0 {
		t.Fatalf("dropped store not caught: %v", rep.Stats)
	}
}

func TestDetectsSwappedBranchTargets(t *testing.T) {
	prog := loopProg()
	transformed := compileScheme(t, prog, "path")
	requireAllProved(t, prog, transformed)
	// Merged-block branches survive as mid-block exits whose on-trace
	// direction is an in-block fallthrough (NoBlock); swapping the slots
	// inverts the branch sense.
	for _, b := range transformed.Procs[0].Blocks {
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			if ins.Op == ir.OpBr && ins.Targets[0] != ins.Targets[1] {
				ins.Targets[0], ins.Targets[1] = ins.Targets[1], ins.Targets[0]
				goto mutated
			}
		}
	}
	t.Fatal("no conditional branch with distinct targets found")
mutated:
	rep := validate.Program(prog, transformed, validate.Options{})
	if rep.Stats.Failed != 1 || len(rep.Issues) == 0 {
		t.Fatalf("swapped branch not caught: %v", rep.Stats)
	}
}

func TestIssueAndVerdictStrings(t *testing.T) {
	is := validate.Issue{Proc: "p", Block: 3, Instr: 2, Msg: "boom"}
	if got, want := is.String(), `validate: proc "p" block b3 instr 2: boom`; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	is = validate.Issue{Proc: "p", Block: ir.NoBlock, Instr: validate.NoInstr, Msg: "boom"}
	if got, want := is.String(), `validate: proc "p": boom`; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	for v, want := range map[validate.Verdict]string{
		validate.Proved: "proved", validate.Bounded: "bounded", validate.Failed: "failed",
	} {
		if v.String() != want {
			t.Fatalf("Verdict(%d).String() = %q", v, v.String())
		}
	}
}
