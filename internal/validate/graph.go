package validate

import (
	"pathsched/internal/ir"
	"pathsched/internal/sched"
)

// valID names one node of a graph. Because nodes are hash-consed,
// two expressions built in the same graph are semantically identical
// whenever their valIDs are equal (the converse does not hold — the
// normalization is sound, not complete).
type valID int32

type exprKind uint8

const (
	// kConst is an integer constant (value in imm).
	kConst exprKind = iota
	// kInitReg is the value register imm held at region entry.
	kInitReg
	// kInitMem is the memory state at region entry.
	kInitMem
	// kOp is a pure ALU operation (op is the canonical register form;
	// immediate variants are rewritten to kOp over a kConst operand).
	kOp
	// kLoad is the word read from memory a at address b.
	kLoad
	// kFresh is the unknowable return value of the imm-th call of the
	// region (calls execute in their own frames, so only the call
	// sequence number identifies the result).
	kFresh
	// kCallMem is the memory state after the imm-th call (calls are
	// memory barriers: they may read and write anything).
	kCallMem
	// kStore is memory a overwritten with value c at address b.
	kStore
)

// expr is the structural identity of a node; it doubles as the
// hash-cons key.
type expr struct {
	k       exprKind
	op      ir.Opcode
	a, b, c valID
	imm     int64
}

// graph is a hash-consed expression DAG shared by the two sides of one
// validated region, so that structurally equal values collapse to one
// node and equivalence is a valID comparison. Alongside each node it
// memoizes the set of entry registers (kInitReg leaves) the node
// depends on; the cut-point fixpoint (validate.go) consumes those sets.
type graph struct {
	nodes []expr
	memo  map[expr]valID
	// vars is the per-node entry-register dependence set, flattened at
	// `words` uint64s per node.
	vars  []uint64
	zero  []uint64 // words zeros, appended to vars per node
	words int
}

// reset readies g for a new region with numRegs-wide dependence sets.
// The backing arrays and the memo map are kept (cleared, not
// reallocated), so validating many blocks in sequence reuses storage
// instead of re-growing from empty each time.
func (g *graph) reset(numRegs int) {
	w := (numRegs + 63) / 64
	if w > cap(g.zero) {
		g.zero = make([]uint64, w)
	}
	g.zero = g.zero[:w]
	g.words = w
	g.nodes = g.nodes[:0]
	g.vars = g.vars[:0]
	if g.memo == nil {
		g.memo = make(map[expr]valID)
	} else {
		clear(g.memo)
	}
}

// varsOf returns node v's entry-register dependence set (read-only).
func (g *graph) varsOf(v valID) []uint64 {
	return g.vars[int(v)*g.words : (int(v)+1)*g.words]
}

// intern returns the node for e, creating it (and its dependence set)
// on first use.
func (g *graph) intern(e expr) valID {
	if id, ok := g.memo[e]; ok {
		return id
	}
	id := valID(len(g.nodes))
	g.nodes = append(g.nodes, e)
	g.memo[e] = id
	start := len(g.vars)
	g.vars = append(g.vars, g.zero...)
	vs := g.vars[start : start+g.words]
	switch e.k {
	case kInitReg:
		vs[e.imm>>6] |= 1 << uint(e.imm&63)
	case kConst, kInitMem, kFresh, kCallMem:
		// leaves with no register dependences
	default:
		for _, op := range [3]valID{e.a, e.b, e.c} {
			if op >= 0 {
				src := g.varsOf(op)
				for i := range vs {
					vs[i] |= src[i]
				}
			}
		}
	}
	return id
}

const noVal valID = -1

func (g *graph) konst(v int64) valID {
	return g.intern(expr{k: kConst, a: noVal, b: noVal, c: noVal, imm: v})
}

func (g *graph) initReg(r ir.Reg) valID {
	return g.intern(expr{k: kInitReg, a: noVal, b: noVal, c: noVal, imm: int64(r)})
}

func (g *graph) initMem() valID {
	return g.intern(expr{k: kInitMem, a: noVal, b: noVal, c: noVal})
}

func (g *graph) fresh(call int) valID {
	return g.intern(expr{k: kFresh, a: noVal, b: noVal, c: noVal, imm: int64(call)})
}

func (g *graph) callMem(call int) valID {
	return g.intern(expr{k: kCallMem, a: noVal, b: noVal, c: noVal, imm: int64(call)})
}

func (g *graph) load(mem, addr valID) valID {
	return g.intern(expr{k: kLoad, a: mem, b: addr, c: noVal})
}

func (g *graph) store(mem, addr, val valID) valID {
	return g.intern(expr{k: kStore, a: mem, b: addr, c: val})
}

// binop builds the canonical-form ALU node op(a, b), constant-folding
// when both operands are constants and sorting the operands of
// commutative ops (the same canonicalization rule VN applies, via the
// exported sched.Commutative seam).
func (g *graph) binop(op ir.Opcode, a, b valID) valID {
	na, nb := &g.nodes[a], &g.nodes[b]
	if na.k == kConst && nb.k == kConst {
		return g.konst(evalOp(op, na.imm, nb.imm))
	}
	if sched.Commutative(op) && b < a {
		a, b = b, a
	}
	return g.intern(expr{k: kOp, op: op, a: a, b: b, c: noVal})
}

// evalOp folds one pure ALU op over constants with exactly the
// interpreter's semantics (64-bit wrapping arithmetic, shift counts
// masked to 6 bits, arithmetic right shift, 0/1 comparisons).
func evalOp(op ir.Opcode, x, y int64) int64 {
	switch op {
	case ir.OpAdd:
		return x + y
	case ir.OpSub:
		return x - y
	case ir.OpMul:
		return x * y
	case ir.OpAnd:
		return x & y
	case ir.OpOr:
		return x | y
	case ir.OpXor:
		return x ^ y
	case ir.OpShl:
		return x << (uint64(y) & 63)
	case ir.OpShr:
		return x >> (uint64(y) & 63)
	case ir.OpCmpEQ:
		return b2i(x == y)
	case ir.OpCmpNE:
		return b2i(x != y)
	case ir.OpCmpLT:
		return b2i(x < y)
	case ir.OpCmpLE:
		return b2i(x <= y)
	}
	panic("validate: evalOp on non-foldable opcode")
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
