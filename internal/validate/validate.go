// Package validate is a per-procedure symbolic translation validator:
// given the pristine input program and the transformed (formed,
// compacted, allocated) output the pipeline produced from it, it
// proves the two semantically equivalent, procedure by procedure —
// independently of every pass that did the transforming.
//
// # How it proves equivalence
//
// Compaction leaves, on every merged block, the formation metadata
// ir.Block.UnitOrigins: the pristine blocks of the trace the merged
// block implements, in trace order. The validator symbolically
// co-executes each merged block against that pristine trace over one
// shared hash-consed expression DAG (graph.go), normalizing the way
// value numbering does (canonical operand order via sched.Commutative,
// immediate forms folded onto register forms, constant folding), so
// that value equivalence reduces to node identity. Memory is a
// store/select term, calls havoc memory and their result with
// fresh symbols aligned by call sequence number.
//
// Along the co-execution it requires:
//
//   - identical observable effect sequences: stores and calls form one
//     ordered stream, emits and calls another (the scheduler orders the
//     two streams internally but never emits relative to stores, so
//     comparing them interleaved would reject legal schedules), with
//     per-exit prefix counts matching — an effect may never migrate
//     across a branch;
//   - branch-condition equivalence and slot-for-slot target
//     correspondence at every exit, each off-trace target's own trace
//     metadata naming the pristine block the original branch targets;
//   - at every exit cut, equality of the register values the
//     continuation depends on, and equality of the memory state.
//
// "Depends on" is computed, not approximated by liveness: a backward
// fixpoint propagates, from every compared expression (effects,
// conditions, memory, return values) through the exit cuts, the set of
// entry registers each block's verdict rests on. A register that
// diverges at a cut is only a failure if some chain of cuts carries
// its value into an observable — exactly the soundness requirement of
// cut-point translation validation, with none of the false positives
// a syntactic liveness union would produce on clone-refined traces.
//
// Loops need no unrolling: every merged block is validated once from a
// fully symbolic entry state, so the proof covers all executions,
// including all loop iterations (the cut into a loop head re-enters
// the same validated segment).
//
// # What it does not prove
//
// Fault behaviour of speculated loads is out of scope: a load hoisted
// above its home branch executes on paths the original never ran it
// on, and the structural checker (check.Schedules) verifies such loads
// carry the non-excepting Spec flag. The validator proves the hoisted
// value cannot leak into any observable on those paths — the
// complementary semantic half of the speculation rule. Side-effecting
// instructions never speculate: the effect streams pin them between
// their neighbouring exits.
//
// # Verdicts
//
// Each procedure gets one Verdict: Proved, Failed (with Issues naming
// proc, block, and instruction), or Bounded when a budget (trace
// depth, exit-cut count, expression nodes) or missing metadata stopped
// the proof. Bounded is counted explicitly and reported — never
// silently passed — and the structural checks remain the fallback
// gate for those procedures.
package validate

import (
	"fmt"
	"math/bits"

	"pathsched/internal/ir"
)

// NoInstr marks an Issue not tied to one instruction (mirrors
// check.NoInstr).
const NoInstr = -1

// Issue is one semantic divergence between the transformed program and
// its pristine original. Proc, Block, and Instr locate the offending
// construct in the transformed program (Block ir.NoBlock / Instr
// NoInstr when proc-level).
type Issue struct {
	Proc  string
	Block ir.BlockID
	Instr int
	Msg   string
}

func (is Issue) String() string {
	s := "validate:"
	if is.Proc != "" {
		s += fmt.Sprintf(" proc %q", is.Proc)
	}
	if is.Block != ir.NoBlock {
		s += fmt.Sprintf(" block b%d", is.Block)
	}
	if is.Instr != NoInstr {
		s += fmt.Sprintf(" instr %d", is.Instr)
	}
	return s + ": " + is.Msg
}

// Verdict is the per-procedure outcome.
type Verdict uint8

const (
	// Proved: every block's trace co-execution matched and the
	// cut-point fixpoint found no observable divergence.
	Proved Verdict = iota
	// Bounded: a budget or missing metadata stopped the proof; the
	// procedure falls back to the structural checks.
	Bounded
	// Failed: at least one Issue — the transformed procedure is not
	// equivalent to its original.
	Failed
)

func (v Verdict) String() string {
	switch v {
	case Proved:
		return "proved"
	case Bounded:
		return "bounded"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// Options bounds the proof effort. The zero value selects defaults.
type Options struct {
	// DepthBudget caps the constituent (pristine trace) blocks
	// symbolically executed per merged block; a deeper superblock makes
	// the procedure Bounded. 0 means 256.
	DepthBudget int
	// PathBudget caps the exit cuts checked per procedure. 0 means 4096.
	PathBudget int
	// NodeBudget caps the expression-DAG nodes allocated per procedure.
	// 0 means 1<<20.
	NodeBudget int
}

// Normalized resolves zero fields to their defaults.
func (o Options) Normalized() Options {
	if o.DepthBudget == 0 {
		o.DepthBudget = 256
	}
	if o.PathBudget == 0 {
		o.PathBudget = 4096
	}
	if o.NodeBudget == 0 {
		o.NodeBudget = 1 << 20
	}
	return o
}

// ProcReport is one procedure's outcome.
type ProcReport struct {
	Proc    string
	Verdict Verdict
	// Reason explains a Bounded verdict ("" otherwise).
	Reason string
	// Blocks is the number of merged blocks co-executed, Cuts the exit
	// cuts checked, Nodes the expression nodes allocated.
	Blocks, Cuts, Nodes int
}

// Stats aggregates verdicts for reporting (the -validate table, cached
// compile values).
type Stats struct {
	Procs   int
	Proved  int
	Bounded int
	Failed  int
	// Cuts counts the exit cuts checked across all proved/failed procs.
	Cuts int64
}

// Add accumulates t into s.
func (s *Stats) Add(t Stats) {
	s.Procs += t.Procs
	s.Proved += t.Proved
	s.Bounded += t.Bounded
	s.Failed += t.Failed
	s.Cuts += t.Cuts
}

func (s Stats) String() string {
	return fmt.Sprintf("%d procs: %d proved, %d bounded, %d failed (%d cuts)",
		s.Procs, s.Proved, s.Bounded, s.Failed, s.Cuts)
}

// Report is the outcome of validating one (pristine, transformed)
// program pair.
type Report struct {
	Procs  []ProcReport
	Issues []Issue
	Stats  Stats
}

// Program validates transformed against pristine and reports per-proc
// verdicts. It never mutates either program.
func Program(pristine, transformed *ir.Program, opts Options) *Report {
	opts = opts.Normalized()
	rep := &Report{}
	if len(pristine.Procs) != len(transformed.Procs) {
		rep.Issues = append(rep.Issues, Issue{Block: ir.NoBlock, Instr: NoInstr,
			Msg: fmt.Sprintf("procedure count changed: original %d, transformed %d", len(pristine.Procs), len(transformed.Procs))})
		return rep
	}
	scr := &scratch{}
	for i := range transformed.Procs {
		pp, tp := pristine.Procs[i], transformed.Procs[i]
		rep.Stats.Procs++
		if pp.Name != tp.Name {
			rep.Issues = append(rep.Issues, Issue{Proc: tp.Name, Block: ir.NoBlock, Instr: NoInstr,
				Msg: fmt.Sprintf("procedure %d renamed: original %q", i, pp.Name)})
			rep.Stats.Failed++
			continue
		}
		pr := validateProc(pp, tp, opts, &rep.Issues, scr)
		rep.Procs = append(rep.Procs, pr)
		switch pr.Verdict {
		case Proved:
			rep.Stats.Proved++
			rep.Stats.Cuts += int64(pr.Cuts)
		case Bounded:
			rep.Stats.Bounded++
		case Failed:
			rep.Stats.Failed++
			rep.Stats.Cuts += int64(pr.Cuts)
		}
	}
	return rep
}

// cut is one (exit → successor) edge of the cut-point decomposition:
// per register, whether the transformed value at the exit equals the
// original value at the corresponding branch, and which entry
// registers that pair of values depends on.
//
// Only registers some side of the region wrote are stored explicitly
// (`explicit`); every other register holds its entry value on both
// sides, so its pair is equal and depends exactly on itself. Keeping
// that identity implicit makes a cut's size and fixpoint cost scale
// with the registers a region touches, not with the procedure's
// (post-renaming, often thousands-wide) register space.
type cut struct {
	instr    int        // transformed exit instruction
	target   ir.BlockID // transformed successor block
	explicit []uint64   // bitset: registers stored explicitly below
	eq       []uint64   // bitset over explicit: value pair matches
	// pairVars packs one `words`-wide entry-register dependence set per
	// explicit register, in ascending register order.
	pairVars []uint64
}

// scratch pools the allocation-heavy per-block state (expression
// graph, two symbolic machines) across the blocks and procedures of
// one Program call. Each block still gets a logically fresh graph —
// entry nodes are region-relative, so sharing live nodes across
// regions would be unsound — but the backing arrays and the memo map
// survive, which matters because a big procedure resets this once per
// block rather than re-growing maps from empty.
type scratch struct {
	g      graph
	ts, ps symState
}

// procV is the working state of one procedure validation.
type procV struct {
	pp, tp *ir.Proc
	opts   Options
	issues *[]Issue
	scr    *scratch

	nregs, words int
	// origin[b] is transformed block b's first pristine trace block
	// (UnitOrigins[0]), ir.NoBlock when metadata is missing.
	origin []ir.BlockID

	cuts  [][]cut    // per transformed block
	base  [][]uint64 // per transformed block: entry regs its comparisons read
	nodes int
	ncuts int
}

func (pv *procV) bad(block ir.BlockID, instr int, format string, args ...any) {
	*pv.issues = append(*pv.issues, Issue{
		Proc: pv.tp.Name, Block: block, Instr: instr,
		Msg: fmt.Sprintf(format, args...),
	})
}

func validateProc(pp, tp *ir.Proc, opts Options, issues *[]Issue, scr *scratch) ProcReport {
	pr := ProcReport{Proc: tp.Name}
	nregs := max(int(ir.PhysRegs), maxRegIndex(pp)+1, maxRegIndex(tp)+1)
	pv := &procV{
		pp: pp, tp: tp, opts: opts, issues: issues, scr: scr,
		nregs: nregs, words: (nregs + 63) / 64,
		origin: make([]ir.BlockID, len(tp.Blocks)),
		cuts:   make([][]cut, len(tp.Blocks)),
		base:   make([][]uint64, len(tp.Blocks)),
	}
	before := len(*issues)

	// Metadata pass: a compiled procedure must be fully scheduled with
	// trace metadata; anything less is out of the validator's domain
	// and falls back to the structural checks as an explicit Bounded.
	for _, b := range tp.Blocks {
		if b.Cycles == nil || b.UnitOrigins == nil {
			pr.Verdict = Bounded
			pr.Reason = fmt.Sprintf("block b%d lacks schedule or trace metadata", b.ID)
			return pr
		}
		if len(b.UnitOrigins) != int(b.SBSize) {
			pv.bad(b.ID, NoInstr, "trace metadata names %d units, SBSize is %d", len(b.UnitOrigins), b.SBSize)
		}
		pv.origin[b.ID] = ir.NoBlock
		for u, oid := range b.UnitOrigins {
			if oid < 0 || int(oid) >= len(pp.Blocks) {
				pv.bad(b.ID, NoInstr, "trace unit %d names original block b%d, which does not exist", u, oid)
			} else if u == 0 {
				pv.origin[b.ID] = oid
			}
		}
	}
	if len(*issues) > before {
		pr.Verdict = Failed
		return pr
	}
	if len(tp.Blocks) > 0 && len(pp.Blocks) > 0 && pv.origin[tp.Blocks[0].ID] != pp.Blocks[0].ID {
		pv.bad(tp.Blocks[0].ID, NoInstr, "entry block implements original b%d, want the original entry b%d",
			pv.origin[tp.Blocks[0].ID], pp.Blocks[0].ID)
		pr.Verdict = Failed
		return pr
	}

	// Per-block symbolic co-execution.
	for _, b := range tp.Blocks {
		if len(b.UnitOrigins) > pv.opts.DepthBudget {
			pr.Verdict = Bounded
			pr.Reason = fmt.Sprintf("block b%d trace depth %d exceeds budget %d", b.ID, len(b.UnitOrigins), pv.opts.DepthBudget)
			pr.Blocks, pr.Cuts, pr.Nodes = blocksSoFar(pv, b.ID), pv.ncuts, pv.nodes
			return pr
		}
		pv.validateBlock(b)
		if pv.nodes > pv.opts.NodeBudget {
			pr.Verdict = Bounded
			pr.Reason = fmt.Sprintf("expression nodes %d exceed budget %d", pv.nodes, pv.opts.NodeBudget)
			pr.Blocks, pr.Cuts, pr.Nodes = blocksSoFar(pv, b.ID)+1, pv.ncuts, pv.nodes
			return pr
		}
		if pv.ncuts > pv.opts.PathBudget {
			pr.Verdict = Bounded
			pr.Reason = fmt.Sprintf("exit cuts %d exceed budget %d", pv.ncuts, pv.opts.PathBudget)
			pr.Blocks, pr.Cuts, pr.Nodes = blocksSoFar(pv, b.ID)+1, pv.ncuts, pv.nodes
			return pr
		}
	}
	pr.Blocks, pr.Cuts, pr.Nodes = len(tp.Blocks), pv.ncuts, pv.nodes
	if len(*issues) > before {
		pr.Verdict = Failed
		return pr
	}

	// Cut-point fixpoint: propagate, backwards through the cuts, the
	// entry registers each block's comparisons depend on, then demand
	// value equality exactly there.
	pv.checkCuts()
	if len(*issues) > before {
		pr.Verdict = Failed
		return pr
	}
	pr.Verdict = Proved
	return pr
}

// blocksSoFar counts the blocks preceding id in the proc's block list
// (for Bounded progress reporting).
func blocksSoFar(pv *procV, id ir.BlockID) int {
	n := 0
	for _, b := range pv.tp.Blocks {
		if b.ID == id {
			break
		}
		n++
	}
	return n
}

// checkCuts runs the dependence fixpoint over the recorded cuts and
// reports every register that diverges at a cut some observable
// depends on.
func (pv *procV) checkCuts() {
	need := make([][]uint64, len(pv.tp.Blocks))
	for i := range need {
		need[i] = make([]uint64, pv.words)
		if pv.base[i] != nil {
			copy(need[i], pv.base[i])
		}
	}
	for changed := true; changed; {
		changed = false
		for bi := range pv.cuts {
			for ci := range pv.cuts[bi] {
				c := &pv.cuts[bi][ci]
				tgt, nd := need[c.target], need[bi]
				// Implicit registers hold their entry value on both sides:
				// the continuation's need passes through unchanged.
				for i := range nd {
					if imp := tgt[i] &^ c.explicit[i]; nd[i]|imp != nd[i] {
						nd[i] |= imp
						changed = true
					}
				}
				idx := 0
				for i, word := range c.explicit {
					for word != 0 {
						r := i<<6 + bits.TrailingZeros64(word)
						word &= word - 1
						if bsHas(tgt, r) && bsUnionInto(nd, c.pairVars[idx*pv.words:(idx+1)*pv.words]) {
							changed = true
						}
						idx++
					}
				}
			}
		}
	}
	for bi := range pv.cuts {
		for ci := range pv.cuts[bi] {
			c := &pv.cuts[bi][ci]
			tgt := need[c.target]
			for i, word := range c.explicit {
				for word != 0 {
					r := i<<6 + bits.TrailingZeros64(word)
					word &= word - 1
					if bsHas(tgt, r) && !bsHas(c.eq, r) {
						pv.bad(pv.tp.Blocks[bi].ID, c.instr,
							"register r%d differs at the exit to b%d (original b%d): the continuation depends on a value the transformed program computes differently",
							r, c.target, pv.origin[c.target])
					}
				}
			}
		}
	}
}

// maxRegIndex returns the highest register index mentioned anywhere in
// p (operands and call args), for sizing the symbolic register file.
func maxRegIndex(p *ir.Proc) int {
	hi := 0
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			hi = max(hi, int(ins.Dst), int(ins.Src1), int(ins.Src2))
			for _, a := range ins.Args {
				hi = max(hi, int(a))
			}
		}
	}
	return hi
}

// --- bitset helpers ---

func bsHas(s []uint64, i int) bool { return s[i>>6]&(1<<uint(i&63)) != 0 }

// bsUnionInto ors src into dst and reports whether dst changed.
func bsUnionInto(dst, src []uint64) bool {
	changed := false
	for i := range dst {
		if n := dst[i] | src[i]; n != dst[i] {
			dst[i] = n
			changed = true
		}
	}
	return changed
}
