package validate_test

import (
	"testing"

	root "pathsched"
	"pathsched/internal/bench"
	"pathsched/internal/check"
	"pathsched/internal/validate"
)

// BenchmarkEquiv measures the validator alone on a full-size compile:
// the largest benchmark in the corpus under the paper's main scheme.
// This is the number that decides whether validated pipelines are
// affordable, so it gets a benchmark of its own rather than being
// inferred from suite-level -compilestats deltas.
func BenchmarkEquiv(b *testing.B) {
	bm := bench.ByName("gcc")
	if bm == nil {
		b.Fatal("gcc benchmark missing")
	}
	pristine := bm.Build(bm.Test)
	profs, err := root.ProfileProgram(bm.Build(bm.Train))
	if err != nil {
		b.Fatal(err)
	}
	bin, err := root.Compile(pristine, profs, root.SchemeP4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, vs := check.Equiv(pristine, bin, validate.Options{})
		if len(vs) != 0 {
			b.Fatalf("gcc/P4 failed validation: %v", vs[0])
		}
		if rep.Stats.Proved+rep.Stats.Bounded != rep.Stats.Procs {
			b.Fatalf("verdicts do not partition procs: %+v", rep.Stats)
		}
	}
}
