package validate

import (
	"math/bits"

	"pathsched/internal/ir"
)

// event is one observable effect in a region's symbolic execution.
// Stores and calls form the memory stream; emits and calls the output
// stream (the scheduler orders each stream internally but never orders
// an emit against a store, so the validator compares them separately).
type event struct {
	op    ir.Opcode
	instr int // instruction index in the owning block/trace
	// a, b: store → address, value; emit → value; call → memory state
	// the call observes.
	a, b   valID
	callee ir.ProcID
	args   []valID
}

// symState is one side's symbolic machine state while executing a
// region: register file and memory as graph nodes, plus the two
// observable effect streams and the call sequence counter that aligns
// havoc symbols across the two sides.
//
// The register file is lazy: regs[r] == noVal means r still holds its
// entry value, and reg() materializes the kInitReg node only on first
// read. dirty marks the registers the region has written; everything
// outside it is implicitly equal across the two sides (both hold the
// entry value), which keeps per-cut work proportional to the registers
// a region touches rather than to the procedure's register count.
type symState struct {
	regs  []valID
	dirty []uint64 // bitset over regs: written by this region
	mem   valID
	memEv []event // stores and calls, in execution order
	outEv []event // emits and calls, in execution order
	calls int
}

// reset readies st for a new region over g, reusing its backing
// arrays.
func (st *symState) reset(g *graph, nregs int) {
	w := (nregs + 63) / 64
	if nregs > cap(st.regs) {
		st.regs = make([]valID, nregs)
		st.dirty = make([]uint64, w)
	}
	st.regs = st.regs[:nregs]
	st.dirty = st.dirty[:w]
	for r := range st.regs {
		st.regs[r] = noVal
	}
	for i := range st.dirty {
		st.dirty[i] = 0
	}
	st.mem = g.initMem()
	st.memEv = st.memEv[:0]
	st.outEv = st.outEv[:0]
	st.calls = 0
}

// reg reads register r, materializing its entry-value node on first
// read. Reads do not mark r dirty: holding the entry value is exactly
// what dirty tracks the absence of.
func (st *symState) reg(g *graph, r ir.Reg) valID {
	if st.regs[r] == noVal {
		st.regs[r] = g.initReg(r)
	}
	return st.regs[r]
}

// set writes register r.
func (st *symState) set(r ir.Reg, v valID) {
	st.regs[r] = v
	st.dirty[int(r)>>6] |= 1 << uint(int(r)&63)
}

// exec symbolically executes one non-control instruction. It reports
// false on an opcode outside the validator's model.
func (st *symState) exec(g *graph, i int, ins *ir.Instr) bool {
	switch ins.Op {
	case ir.OpNop:
	case ir.OpMovI:
		st.set(ins.Dst, g.konst(ins.Imm))
	case ir.OpMov:
		st.set(ins.Dst, st.reg(g, ins.Src1))
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE:
		st.set(ins.Dst, g.binop(ins.Op, st.reg(g, ins.Src1), st.reg(g, ins.Src2)))
	case ir.OpAddI:
		st.set(ins.Dst, g.binop(ir.OpAdd, st.reg(g, ins.Src1), g.konst(ins.Imm)))
	case ir.OpMulI:
		st.set(ins.Dst, g.binop(ir.OpMul, st.reg(g, ins.Src1), g.konst(ins.Imm)))
	case ir.OpAndI:
		st.set(ins.Dst, g.binop(ir.OpAnd, st.reg(g, ins.Src1), g.konst(ins.Imm)))
	case ir.OpOrI:
		st.set(ins.Dst, g.binop(ir.OpOr, st.reg(g, ins.Src1), g.konst(ins.Imm)))
	case ir.OpXorI:
		st.set(ins.Dst, g.binop(ir.OpXor, st.reg(g, ins.Src1), g.konst(ins.Imm)))
	case ir.OpShlI:
		st.set(ins.Dst, g.binop(ir.OpShl, st.reg(g, ins.Src1), g.konst(ins.Imm)))
	case ir.OpShrI:
		st.set(ins.Dst, g.binop(ir.OpShr, st.reg(g, ins.Src1), g.konst(ins.Imm)))
	case ir.OpCmpEQI:
		st.set(ins.Dst, g.binop(ir.OpCmpEQ, st.reg(g, ins.Src1), g.konst(ins.Imm)))
	case ir.OpCmpNEI:
		st.set(ins.Dst, g.binop(ir.OpCmpNE, st.reg(g, ins.Src1), g.konst(ins.Imm)))
	case ir.OpCmpLTI:
		st.set(ins.Dst, g.binop(ir.OpCmpLT, st.reg(g, ins.Src1), g.konst(ins.Imm)))
	case ir.OpCmpLEI:
		st.set(ins.Dst, g.binop(ir.OpCmpLE, st.reg(g, ins.Src1), g.konst(ins.Imm)))
	case ir.OpCmpGTI:
		// x > C  ⇔  C < x: rewrite onto the register comparison the same
		// way the interpreter and VN treat these forms.
		st.set(ins.Dst, g.binop(ir.OpCmpLT, g.konst(ins.Imm), st.reg(g, ins.Src1)))
	case ir.OpCmpGEI:
		st.set(ins.Dst, g.binop(ir.OpCmpLE, g.konst(ins.Imm), st.reg(g, ins.Src1)))
	case ir.OpLoad:
		st.set(ins.Dst, g.load(st.mem, st.addr(g, ins)))
	case ir.OpStore:
		a := st.addr(g, ins)
		v := st.reg(g, ins.Src2)
		st.memEv = append(st.memEv, event{op: ir.OpStore, instr: i, a: a, b: v})
		st.mem = g.store(st.mem, a, v)
	case ir.OpEmit:
		st.outEv = append(st.outEv, event{op: ir.OpEmit, instr: i, a: st.reg(g, ins.Src1)})
	default:
		return false
	}
	return true
}

// addr builds the effective address Src1+Imm of a load or store.
func (st *symState) addr(g *graph, ins *ir.Instr) valID {
	if ins.Imm == 0 {
		return st.reg(g, ins.Src1)
	}
	return g.binop(ir.OpAdd, st.reg(g, ins.Src1), g.konst(ins.Imm))
}

// call applies a call's effects: it appends the call to both effect
// streams (recording the memory it observes and the argument values),
// havocs memory, and defines the result register with a fresh symbol.
// Symbols are indexed by call sequence number, which aligns across the
// two sides because calls are ordering barriers on both.
func (st *symState) call(g *graph, i int, ins *ir.Instr) {
	k := st.calls
	st.calls++
	ev := event{op: ir.OpCall, instr: i, a: st.mem, callee: ins.Callee}
	if len(ins.Args) > 0 {
		ev.args = make([]valID, len(ins.Args))
		for j, r := range ins.Args {
			ev.args[j] = st.reg(g, r)
		}
	}
	st.memEv = append(st.memEv, ev)
	st.outEv = append(st.outEv, ev)
	st.mem = g.callMem(k)
	st.set(ins.Dst, g.fresh(k))
}

// texit is one control exit recorded during the transformed block's
// symbolic pass, to be consumed in order by the pristine trace walk.
type texit struct {
	instr   int
	op      ir.Opcode
	cond    valID // br/switch selector
	ret     valID // ret value
	targets []ir.BlockID
	regs    []valID  // register snapshot at the exit (noVal = entry value)
	dirty   []uint64 // registers written before this exit
	mem     valID
	memLen  int // memory-stream events retired before this exit
	outLen  int
}

// blockV validates one transformed merged block against its pristine
// trace.
type blockV struct {
	pv     *procV
	b      *ir.Block
	g      *graph
	texits []texit
	ei     int // next texit to consume
	base   []uint64
	cuts   []cut
}

func (pv *procV) validateBlock(b *ir.Block) {
	g := &pv.scr.g
	g.reset(pv.nregs)
	bv := &blockV{pv: pv, b: b, g: g, base: make([]uint64, pv.words)}
	defer func() {
		pv.nodes += len(g.nodes)
		pv.cuts[b.ID] = bv.cuts
		pv.base[b.ID] = bv.base
	}()

	// Transformed pass: straight-line symbolic execution recording every
	// control exit with a full state snapshot.
	ts := &pv.scr.ts
	ts.reset(g, pv.nregs)
	for i := range b.Instrs {
		ins := &b.Instrs[i]
		switch ins.Op {
		case ir.OpBr, ir.OpSwitch:
			bv.snap(ts, i, ins, texit{cond: ts.reg(g, ins.Src1)})
		case ir.OpJmp:
			bv.snap(ts, i, ins, texit{})
		case ir.OpRet:
			bv.snap(ts, i, ins, texit{ret: ts.reg(g, ins.Src1)})
		case ir.OpCall:
			ts.call(g, i, ins)
			if len(ins.Targets) > 0 && ins.Targets[0] != ir.NoBlock {
				bv.snap(ts, i, ins, texit{})
			}
		default:
			if !ts.exec(g, i, ins) {
				pv.bad(b.ID, i, "opcode %s is outside the validator's model", ins.Op)
				return
			}
		}
	}

	// Pristine pass: walk the trace named by UnitOrigins, replaying the
	// original blocks and consuming one recorded exit per surviving
	// branch.
	ps := &pv.scr.ps
	ps.reset(g, pv.nregs)
	for u, oid := range b.UnitOrigins {
		pb := pv.pp.Block(oid)
		last := u == len(b.UnitOrigins)-1
		next := ir.NoBlock
		if !last {
			next = b.UnitOrigins[u+1]
		}
		for i := range pb.Instrs {
			ins := &pb.Instrs[i]
			switch ins.Op {
			case ir.OpBr, ir.OpSwitch:
				if !last && allTargets(ins.Targets, next) {
					// Merging internalized this branch: every direction
					// continues on trace, so it leaves no exit.
					continue
				}
				if !bv.checkpoint(ps, oid, i, ins, last, next) {
					return
				}
			case ir.OpJmp:
				if last {
					if !bv.checkpoint(ps, oid, i, ins, last, next) {
						return
					}
				} else if ins.Targets[0] != next {
					bv.discontinuity(oid, i, ins.Targets[0], next)
					return
				}
			case ir.OpCall:
				ps.call(g, i, ins)
				tgt := ir.NoBlock
				if len(ins.Targets) > 0 {
					tgt = ins.Targets[0]
				}
				if tgt == ir.NoBlock {
					continue
				}
				if last {
					if !bv.checkpoint(ps, oid, i, ins, last, next) {
						return
					}
				} else if tgt != next {
					bv.discontinuity(oid, i, tgt, next)
					return
				}
			case ir.OpRet:
				if !last {
					bv.pv.bad(bv.b.ID, NoInstr,
						"trace metadata continues past the return in original b%d", oid)
					return
				}
				if !bv.checkpoint(ps, oid, i, ins, last, next) {
					return
				}
			default:
				if !ps.exec(g, i, ins) {
					pv.bad(b.ID, NoInstr, "original b%d instr %d: opcode %s is outside the validator's model", oid, i, ins.Op)
					return
				}
			}
		}
	}
	if bv.ei != len(bv.texits) {
		pv.bad(b.ID, bv.texits[bv.ei].instr,
			"transformed block has %d control exits, the original trace implies %d",
			len(bv.texits), bv.ei)
		return
	}

	// Global effect-stream comparison (per-exit prefix counts already
	// matched above, so lengths agree; contents must too).
	bv.compareStreams(ts, ps)
}

// snap records a control exit with a snapshot of the current state.
func (bv *blockV) snap(ts *symState, i int, ins *ir.Instr, t texit) {
	t.instr = i
	t.op = ins.Op
	t.targets = ins.Targets
	t.regs = append([]valID(nil), ts.regs...)
	t.dirty = append([]uint64(nil), ts.dirty...)
	t.mem = ts.mem
	t.memLen = len(ts.memEv)
	t.outLen = len(ts.outEv)
	bv.texits = append(bv.texits, t)
}

func (bv *blockV) discontinuity(oid ir.BlockID, i int, got, want ir.BlockID) {
	bv.pv.bad(bv.b.ID, NoInstr,
		"trace discontinuity at original b%d instr %d: control passes to b%d, but the trace metadata names b%d as the next unit",
		oid, i, got, want)
}

// checkpoint consumes the next recorded transformed exit and matches it
// against the pristine branch at (oid, pi). It returns false only when
// the block's validation cannot continue.
func (bv *blockV) checkpoint(ps *symState, oid ir.BlockID, pi int, ins *ir.Instr, last bool, next ir.BlockID) bool {
	pv := bv.pv
	if bv.ei >= len(bv.texits) {
		pv.bad(bv.b.ID, NoInstr,
			"original branch at b%d instr %d has no corresponding exit left in the transformed block", oid, pi)
		return false
	}
	t := &bv.texits[bv.ei]
	bv.ei++

	// An effect may never migrate across a branch: both streams must
	// have retired the same number of events on the two sides.
	if t.memLen != len(ps.memEv) {
		pv.bad(bv.b.ID, t.instr,
			"stores/calls retired before this exit: transformed %d, original %d (branch at b%d instr %d)",
			t.memLen, len(ps.memEv), oid, pi)
	}
	if t.outLen != len(ps.outEv) {
		pv.bad(bv.b.ID, t.instr,
			"emits/calls retired before this exit: transformed %d, original %d (branch at b%d instr %d)",
			t.outLen, len(ps.outEv), oid, pi)
	}
	if t.mem != ps.mem {
		pv.bad(bv.b.ID, t.instr,
			"memory state differs from the original at this exit (branch at b%d instr %d)", oid, pi)
		bv.useVars(t.mem, ps.mem)
	}

	// Branch-form matching. A degenerate original br (both directions
	// the same) is an unconditional jump in all but spelling; formation
	// normalizes it to jmp, so accept that shape.
	pop, ptargets := ins.Op, ins.Targets
	if pop == ir.OpBr && t.op == ir.OpJmp && allSame(ptargets) {
		pop, ptargets = ir.OpJmp, ptargets[:1]
	}
	if t.op != pop {
		pv.bad(bv.b.ID, t.instr,
			"exit is a %s, the original branch at b%d instr %d is a %s", t.op, oid, pi, ins.Op)
		return true
	}
	switch pop {
	case ir.OpBr, ir.OpSwitch:
		pc := ps.reg(bv.g, ins.Src1)
		bv.useVars(t.cond, pc)
		if t.cond != pc {
			pv.bad(bv.b.ID, t.instr,
				"exit condition differs from the original branch at b%d instr %d", oid, pi)
		}
	case ir.OpRet:
		pr := ps.reg(bv.g, ins.Src1)
		bv.useVars(t.ret, pr)
		if t.ret != pr {
			pv.bad(bv.b.ID, t.instr,
				"return value differs from the original return at b%d instr %d", oid, pi)
		}
		return true // a return has no successors, hence no cuts
	}

	// Slot-for-slot target correspondence and exit cuts.
	if len(t.targets) != len(ptargets) {
		pv.bad(bv.b.ID, t.instr,
			"exit has %d targets, the original branch at b%d instr %d has %d",
			len(t.targets), oid, pi, len(ptargets))
		return true
	}
	for k := range ptargets {
		tt, pt := t.targets[k], ptargets[k]
		if tt == ir.NoBlock {
			// Fall-through inside the merged block: this must be the
			// on-trace direction of a non-final branch.
			if last {
				pv.bad(bv.b.ID, t.instr, "terminator target %d falls through past the end of the block", k)
			} else if pt != next {
				pv.bad(bv.b.ID, t.instr,
					"target %d continues inside the block, but the original branch at b%d instr %d goes to b%d, not the next trace unit b%d",
					k, oid, pi, pt, next)
			}
			continue
		}
		if int(tt) < 0 || int(tt) >= len(pv.tp.Blocks) {
			pv.bad(bv.b.ID, t.instr, "exit target %d names b%d, which does not exist", k, tt)
			continue
		}
		if pv.origin[tt] != pt {
			pv.bad(bv.b.ID, t.instr,
				"exit target b%d implements original b%d, but the original branch at b%d instr %d goes to b%d (slot %d)",
				tt, pv.origin[tt], oid, pi, pt, k)
			continue
		}
		bv.addCut(t, tt, ps)
	}
	return true
}

// addCut records the per-register equality and dependence information
// of one (exit → successor) edge for the cut-point fixpoint. Only
// registers some side wrote are recorded; the rest hold their entry
// value on both sides and stay implicit in the cut.
func (bv *blockV) addCut(t *texit, target ir.BlockID, ps *symState) {
	pv := bv.pv
	w := pv.words
	c := cut{
		instr:    t.instr,
		target:   target,
		explicit: make([]uint64, w),
		eq:       make([]uint64, w),
	}
	n := 0
	for i := range c.explicit {
		c.explicit[i] = t.dirty[i] | ps.dirty[i]
		n += bits.OnesCount64(c.explicit[i])
	}
	c.pairVars = make([]uint64, n*w)
	idx := 0
	for i, word := range c.explicit {
		for word != 0 {
			r := i<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			vt, vp := t.regs[r], ps.regs[r]
			if vt == noVal {
				vt = bv.g.initReg(ir.Reg(r))
			}
			if vp == noVal {
				vp = bv.g.initReg(ir.Reg(r))
			}
			if vt == vp {
				c.eq[i] |= 1 << uint(r&63)
			}
			dst := c.pairVars[idx*w : (idx+1)*w]
			orInto(dst, bv.g.varsOf(vt))
			orInto(dst, bv.g.varsOf(vp))
			idx++
		}
	}
	bv.cuts = append(bv.cuts, c)
	pv.ncuts++
}

// useVars marks both sides of a directly-compared value pair as
// observables of this block: their entry-register dependences seed the
// fixpoint.
func (bv *blockV) useVars(a, b valID) {
	orInto(bv.base, bv.g.varsOf(a))
	orInto(bv.base, bv.g.varsOf(b))
}

// compareStreams checks the two sides' effect streams pairwise for
// content equality (prefix counts were checked at each exit).
func (bv *blockV) compareStreams(ts, ps *symState) {
	for j := 0; j < min(len(ts.memEv), len(ps.memEv)); j++ {
		bv.compareEvent("store/call", j, &ts.memEv[j], &ps.memEv[j])
	}
	for j := 0; j < min(len(ts.outEv), len(ps.outEv)); j++ {
		bv.compareEvent("emit/call", j, &ts.outEv[j], &ps.outEv[j])
	}
}

func (bv *blockV) compareEvent(stream string, j int, te, pe *event) {
	pv := bv.pv
	if te.op != pe.op {
		pv.bad(bv.b.ID, te.instr, "%s #%d is a %s, the original's is a %s", stream, j, te.op, pe.op)
		return
	}
	switch te.op {
	case ir.OpStore:
		bv.useVars(te.a, pe.a)
		bv.useVars(te.b, pe.b)
		if te.a != pe.a {
			pv.bad(bv.b.ID, te.instr, "%s #%d stores to a different address than the original's (original instr %d)", stream, j, pe.instr)
		}
		if te.b != pe.b {
			pv.bad(bv.b.ID, te.instr, "%s #%d stores a different value than the original's (original instr %d)", stream, j, pe.instr)
		}
	case ir.OpEmit:
		bv.useVars(te.a, pe.a)
		if te.a != pe.a {
			pv.bad(bv.b.ID, te.instr, "%s #%d emits a different value than the original's (original instr %d)", stream, j, pe.instr)
		}
	case ir.OpCall:
		if te.callee != pe.callee {
			pv.bad(bv.b.ID, te.instr, "%s #%d calls procedure %d, the original calls %d", stream, j, te.callee, pe.callee)
			return
		}
		if len(te.args) != len(pe.args) {
			pv.bad(bv.b.ID, te.instr, "%s #%d passes %d arguments, the original passes %d", stream, j, len(te.args), len(pe.args))
			return
		}
		for x := range te.args {
			bv.useVars(te.args[x], pe.args[x])
			if te.args[x] != pe.args[x] {
				pv.bad(bv.b.ID, te.instr, "%s #%d argument %d differs from the original's (original instr %d)", stream, j, x, pe.instr)
			}
		}
		bv.useVars(te.a, pe.a)
		if te.a != pe.a {
			pv.bad(bv.b.ID, te.instr, "%s #%d observes a different memory state than the original's (original instr %d)", stream, j, pe.instr)
		}
	}
}

func allSame(ts []ir.BlockID) bool {
	for _, t := range ts[1:] {
		if t != ts[0] {
			return false
		}
	}
	return len(ts) > 0
}

func allTargets(ts []ir.BlockID, want ir.BlockID) bool {
	if len(ts) == 0 {
		return false
	}
	for _, t := range ts {
		if t != want {
			return false
		}
	}
	return true
}

func orInto(dst, src []uint64) {
	for i := range dst {
		dst[i] |= src[i]
	}
}
