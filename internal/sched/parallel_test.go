package sched

import (
	"fmt"
	"strings"
	"testing"

	"pathsched/internal/core"
	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/ir/irtest"
	"pathsched/internal/profile"
)

// Compact's output must be byte-identical — pinned by the structural
// fingerprint — at every worker count and against the preserved
// reference compaction path. Run under -race this also proves the
// worker pool shares nothing it shouldn't.
func TestCompactWorkerDeterminism(t *testing.T) {
	progs := map[string]*ir.Program{
		"hot": hotTrace(300),
	}
	for _, seed := range []int64{1, 2, 5, 9} {
		progs[fmt.Sprintf("rand%d", seed)] = irtest.RandExecProg(seed, 16)
	}
	configs := []Options{
		{Parallelism: 1},
		{Parallelism: 2},
		{Parallelism: 8},
		{Parallelism: 2, RecordDeps: BlockDeps{}},
		{Reference: true},
		{Reference: true, Parallelism: 4},
	}
	for name, prog := range progs {
		for _, method := range []core.Method{core.EdgeBased, core.PathBased} {
			ep := profile.NewEdgeProfiler(prog)
			pp := profile.NewPathProfiler(prog, profile.PathConfig{})
			if _, err := interp.Run(prog, interp.Config{Observer: profile.Multi{ep, pp}}); err != nil {
				t.Fatalf("%s: training run: %v", name, err)
			}
			cfg := core.DefaultConfig()
			cfg.Method = method
			cfg.Edge, cfg.Path = ep.Profile(), pp.Profile()
			cfg.MinExecFreq = 2
			var base ir.Digest
			for ci, opts := range configs {
				if opts.RecordDeps != nil {
					opts.RecordDeps = BlockDeps{} // fresh map per run
				}
				res, err := core.Form(prog, cfg)
				if err != nil {
					t.Fatalf("%s/%v: Form: %v", name, method, err)
				}
				if err := Compact(res, opts); err != nil {
					t.Fatalf("%s/%v config %d: Compact: %v", name, method, ci, err)
				}
				fp := ir.Fingerprint(res.Prog)
				if ci == 0 {
					base = fp
					continue
				}
				if fp != base {
					t.Fatalf("%s/%v: config %+v fingerprint %x differs from workers=1 baseline %x",
						name, method, opts, fp, base)
				}
			}
		}
	}
}

// CompactBasicBlocks schedules every block of every procedure, so it
// exercises the worker pool on multi-procedure programs; its output
// must also be independent of worker count and match the reference.
func TestCompactBasicBlocksWorkerDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 4, 8} {
		prog := irtest.RandExecProg(seed, 20)
		var base ir.Digest
		configs := []Options{{Parallelism: 1}, {Parallelism: 2}, {Parallelism: 8}, {Reference: true}}
		for ci, opts := range configs {
			clone := ir.CloneProgram(prog)
			if err := CompactBasicBlocks(clone, opts); err != nil {
				t.Fatalf("seed %d config %d: %v", seed, ci, err)
			}
			fp := ir.Fingerprint(clone)
			if ci == 0 {
				base = fp
			} else if fp != base {
				t.Fatalf("seed %d: config %+v fingerprint differs from workers=1", seed, opts)
			}
		}
	}
}

// When several procedures fail, Compact must report the error of the
// lowest-numbered failing procedure, with an identical message, at
// every worker count — errors may not race.
func TestCompactErrorDeterminism(t *testing.T) {
	bd := ir.NewBuilder("bad", 16)
	// A valid main so only the doctored procedures can fail.
	mb := bd.Proc("main")
	m0 := mb.NewBlock()
	m0.Add(ir.MovI(1, 7))
	m0.Ret(1)
	// Two procedures whose superblocks will claim both blocks, putting
	// the first block's ret mid-superblock — a deterministic merge
	// error.
	mkBad := func(name string) (ir.ProcID, []ir.BlockID) {
		pb := bd.Proc(name)
		b0, b1 := pb.NewBlock(), pb.NewBlock()
		b0.Add(ir.MovI(1, 1))
		b0.Ret(1)
		b1.Add(ir.MovI(2, 2))
		b1.Ret(2)
		return pb.ID(), []ir.BlockID{b0.ID(), b1.ID()}
	}
	f1, f1blocks := mkBad("f1")
	f2, f2blocks := mkBad("f2")
	prog := bd.Program() // intentionally unverified: b1 is unreachable

	var want string
	for _, workers := range []int{1, 2, 8} {
		res := &core.Result{
			Prog: ir.CloneProgram(prog),
			Superblocks: map[ir.ProcID][]*core.Superblock{
				f1: {{ID: 0, Proc: f1, Blocks: f1blocks}},
				f2: {{ID: 0, Proc: f2, Blocks: f2blocks}},
			},
		}
		err := Compact(res, Options{Parallelism: workers})
		if err == nil {
			t.Fatalf("workers=%d: expected merge error, got none", workers)
		}
		if workers == 1 {
			want = err.Error()
			if got := want; !strings.Contains(got, "f1") || !strings.Contains(got, "mid-superblock") {
				t.Fatalf("workers=1: error %q does not name the first failing proc", got)
			}
			continue
		}
		if err.Error() != want {
			t.Fatalf("workers=%d: error %q differs from serial %q", workers, err.Error(), want)
		}
	}
}
