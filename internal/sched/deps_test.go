package sched

import (
	"sort"
	"testing"

	"pathsched/internal/ir"
	"pathsched/internal/machine"
)

// depRegion is a small golden superblock exercising every dependence
// rule at least once: a flow chain, a store/load pair, an interior
// exit with live-out uses, a WAW/WAR redefinition, and a final return.
func depRegion() []DepItem {
	var liveOut RegSet
	liveOut.Add(8)
	return []DepItem{
		{Ins: ir.MovI(8, 1)},     // 0: def r8
		{Ins: ir.Add(9, 8, 8)},   // 1: r9 = r8+r8
		{Ins: ir.Store(1, 0, 9)}, // 2: mem[r1+0] = r9
		{Ins: ir.Br(9, 1, 2), IsExit: true, // 3: interior exit, r8 live out
			LiveOut: liveOut},
		{Ins: ir.Load(10, 1, 0)},       // 4: r10 = mem[r1+0]
		{Ins: ir.MovI(8, 5)},           // 5: redefine r8
		{Ins: ir.Ret(8), IsExit: true}, // 6: final exit
	}
}

// The golden dependence set, pinned edge by edge. This is the
// contract shared by the scheduler's DDG and the semantic checker;
// a change here must be deliberate and reflected in both.
func wantDepEdges() []DepEdge {
	return []DepEdge{
		{From: 0, To: 1, Lat: 1, Kind: DepRAW},     // r8 flow into the add
		{From: 1, To: 2, Lat: 1, Kind: DepRAW},     // r9 flow into the store
		{From: 0, To: 3, Lat: 1, Kind: DepRAW},     // r8 live out at the exit
		{From: 1, To: 3, Lat: 1, Kind: DepRAW},     // r9 is the branch condition
		{From: 2, To: 3, Lat: 0, Kind: DepControl}, // store may not cross the exit
		{From: 2, To: 4, Lat: 1, Kind: DepMem},     // load after store
		{From: 0, To: 5, Lat: 1, Kind: DepWAW},     // r8 redefinition
		{From: 1, To: 5, Lat: 0, Kind: DepWAR},     // r8 read before redefinition
		{From: 3, To: 5, Lat: 0, Kind: DepWAR},     // exit's live-out read of r8
		{From: 3, To: 6, Lat: 1, Kind: DepControl}, // exits stay in order
		{From: 5, To: 6, Lat: 1, Kind: DepRAW},     // r8 flow into the return
		{From: 0, To: 6, Lat: 0, Kind: DepControl}, // everything before the final item
		{From: 1, To: 6, Lat: 0, Kind: DepControl},
		{From: 2, To: 6, Lat: 0, Kind: DepControl},
		{From: 4, To: 6, Lat: 0, Kind: DepControl},
	}
}

func sortDepEdges(es []DepEdge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
}

func TestDependencesGolden(t *testing.T) {
	got := Dependences(depRegion(), machine.Default())
	want := wantDepEdges()
	sortDepEdges(got)
	sortDepEdges(want)
	if len(got) != len(want) {
		t.Fatalf("got %d edges, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("edge %d: got %d→%d lat %d %s, want %d→%d lat %d %s",
				i, got[i].From, got[i].To, got[i].Lat, got[i].Kind,
				want[i].From, want[i].To, want[i].Lat, want[i].Kind)
		}
	}
}

// The DDG the scheduler consumes must be exactly the Dependences edge
// set reassembled into adjacency form — one rule set, two views.
func TestBuildDDGAgreesWithDependences(t *testing.T) {
	items := depRegion()
	nodes := make([]node, len(items))
	for i, it := range items {
		nodes[i] = node{ins: it.Ins, isExit: it.IsExit, liveOut: it.LiveOut}
	}
	mc := machine.Default()
	g, _ := buildDDG(nodes, mc, newScratch())
	edges := Dependences(items, mc)

	var flat []DepEdge
	npreds := make([]int, len(items))
	for from, es := range g.succs {
		for _, e := range es {
			flat = append(flat, DepEdge{From: from, To: e.to, Lat: e.lat})
			npreds[e.to]++
		}
	}
	stripped := make([]DepEdge, len(edges))
	for i, e := range edges {
		stripped[i] = DepEdge{From: e.From, To: e.To, Lat: e.Lat}
	}
	sortDepEdges(flat)
	sortDepEdges(stripped)
	if len(flat) != len(stripped) {
		t.Fatalf("DDG has %d edges, Dependences %d", len(flat), len(stripped))
	}
	for i := range flat {
		if flat[i] != stripped[i] {
			t.Errorf("edge %d: DDG %v, Dependences %v", i, flat[i], stripped[i])
		}
	}
	for i := range npreds {
		if g.npreds[i] != npreds[i] {
			t.Errorf("npreds[%d]: DDG %d, recount %d", i, g.npreds[i], npreds[i])
		}
	}
	// Height is the latency-weighted longest path — spot-check the two
	// region ends: the final item is a sink, the first item sees the
	// whole critical path (0→1→2→4→... or 0→5→6).
	if g.height[len(items)-1] != 0 {
		t.Errorf("final item height %d, want 0", g.height[len(items)-1])
	}
	if g.height[0] < 2 {
		t.Errorf("first item height %d, want ≥ 2 (movi→add→store chain)", g.height[0])
	}
}
