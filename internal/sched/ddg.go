package sched

import (
	"pathsched/internal/machine"
)

// edge is a scheduling dependence: to may issue no earlier than
// lat cycles after from. Latency-0 edges permit sharing a cycle; the
// final linearization by (cycle, original index) keeps such pairs in
// program order, which is what the sequential interpreter relies on.
type edge struct {
	to  int
	lat int32
}

// ddg is the data-dependence graph over a merged superblock. All edges
// point forward in program order by construction, so program order is a
// topological order.
type ddg struct {
	succs  [][]edge
	npreds []int
	height []int32 // latency-weighted longest path to any sink
}

// buildDDG constructs the DDG over the renamed nodes. The dependence
// rules themselves live in Dependences (deps.go), shared with the
// semantic checker in internal/check. It also returns the dependence
// edges (aliasing scratch storage, valid until the next dependence
// computation on s) so checked compiles can record them instead of
// recomputing.
//
// Every array lives in the scratch: the successor lists are slices of
// one flat pool sized exactly to the edge count up front, so filling
// them never reallocates (a grow would invalidate the earlier
// sub-slices). Dependences returns edges grouped by From in increasing
// order, which is what makes the single-pass run-slicing valid.
func buildDDG(nodes []node, mc machine.Config, s *scratch) (*ddg, []DepEdge) {
	n := len(nodes)
	items := s.items
	if cap(items) < n {
		items = make([]DepItem, n)
	}
	items = items[:n]
	s.items = items
	for i := range nodes {
		items[i] = DepItem{Ins: nodes[i].ins, IsExit: nodes[i].isExit, LiveOut: nodes[i].liveOut}
	}
	edges := s.dep.dependences(items, mc)

	g := &s.g
	if cap(g.succs) < n {
		g.succs = make([][]edge, n)
	}
	g.succs = g.succs[:n]
	if cap(g.npreds) < n {
		g.npreds = make([]int, n)
	}
	g.npreds = g.npreds[:n]
	g.height = i32zero(&g.height, n)
	for i := range g.succs {
		g.succs[i] = nil
		g.npreds[i] = 0
	}

	if cap(s.flatSucc) < len(edges) {
		s.flatSucc = make([]edge, 0, len(edges))
	}
	flat := s.flatSucc[:0]
	for k := 0; k < len(edges); {
		from := edges[k].From
		start := len(flat)
		for k < len(edges) && edges[k].From == from {
			e := &edges[k]
			flat = append(flat, edge{e.To, e.Lat})
			g.npreds[e.To]++
			k++
		}
		g.succs[from] = flat[start:len(flat):len(flat)]
	}
	s.flatSucc = flat

	// Heights for the scheduling priority (critical path).
	for i := n - 1; i >= 0; i-- {
		h := int32(0)
		for _, e := range g.succs[i] {
			if v := g.height[e.to] + e.lat; v > h {
				h = v
			}
		}
		g.height[i] = h
	}
	return g, edges
}
