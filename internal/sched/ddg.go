package sched

import (
	"pathsched/internal/machine"
)

// edge is a scheduling dependence: to may issue no earlier than
// lat cycles after from. Latency-0 edges permit sharing a cycle; the
// final linearization by (cycle, original index) keeps such pairs in
// program order, which is what the sequential interpreter relies on.
type edge struct {
	to  int
	lat int32
}

// ddg is the data-dependence graph over a merged superblock. All edges
// point forward in program order by construction, so program order is a
// topological order.
type ddg struct {
	succs  [][]edge
	npreds []int
	height []int32 // latency-weighted longest path to any sink
}

// buildDDG constructs the DDG over the renamed nodes. The dependence
// rules themselves live in Dependences (deps.go), shared with the
// semantic checker in internal/check.
func buildDDG(nodes []node, mc machine.Config) *ddg {
	n := len(nodes)
	items := make([]DepItem, n)
	for i := range nodes {
		items[i] = DepItem{Ins: nodes[i].ins, IsExit: nodes[i].isExit, LiveOut: nodes[i].liveOut}
	}
	g := &ddg{
		succs:  make([][]edge, n),
		npreds: make([]int, n),
		height: make([]int32, n),
	}
	for _, e := range Dependences(items, mc) {
		g.succs[e.From] = append(g.succs[e.From], edge{e.To, e.Lat})
		g.npreds[e.To]++
	}

	// Heights for the scheduling priority (critical path).
	for i := n - 1; i >= 0; i-- {
		h := int32(0)
		for _, e := range g.succs[i] {
			if v := g.height[e.to] + e.lat; v > h {
				h = v
			}
		}
		g.height[i] = h
	}
	return g
}
