package sched

import (
	"pathsched/internal/ir"
	"pathsched/internal/machine"
)

// edge is a scheduling dependence: to may issue no earlier than
// lat cycles after from. Latency-0 edges permit sharing a cycle; the
// final linearization by (cycle, original index) keeps such pairs in
// program order, which is what the sequential interpreter relies on.
type edge struct {
	to  int
	lat int32
}

// ddg is the data-dependence graph over a merged superblock. All edges
// point forward in program order by construction, so program order is a
// topological order.
type ddg struct {
	succs  [][]edge
	npreds []int
	height []int32 // latency-weighted longest path to any sink
}

// buildDDG constructs dependences over the renamed nodes:
//
//   - register RAW/WAR/WAW edges (renaming removed most WAR/WAW);
//   - conservative memory edges: stores conflict with every other
//     memory operation, loads may reorder among themselves;
//   - calls act as memory and output barriers;
//   - emits stay ordered among themselves (the observable stream);
//   - control edges: exits stay in program order, non-speculatable
//     instructions may not cross an exit in either direction, and
//     everything must issue no later than the final terminator.
//
// Speculatable instructions (ALU ops and loads) deliberately get no
// control edges: moving them above exits is precisely the speculation
// superblock scheduling exists for (§1, §2.3).
func buildDDG(nodes []node, mc machine.Config) *ddg {
	n := len(nodes)
	g := &ddg{
		succs:  make([][]edge, n),
		npreds: make([]int, n),
		height: make([]int32, n),
	}
	// Dedup edges cheaply with a last-added marker per (from) node.
	addEdge := func(from, to int, lat int32) {
		if from == to || from > to {
			return
		}
		for _, e := range g.succs[from] {
			if e.to == to {
				if lat > e.lat {
					// Keep the strongest constraint.
					es := g.succs[from]
					for i := range es {
						if es[i].to == to {
							es[i].lat = lat
						}
					}
				}
				return
			}
		}
		g.succs[from] = append(g.succs[from], edge{to, lat})
		g.npreds[to]++
	}

	lastDef := map[ir.Reg]int{}
	lastUses := map[ir.Reg][]int{}
	lastStore := -1
	var loadsSinceStore []int
	lastCall := -1
	lastEmit := -1
	lastExit := -1
	var usesBuf []ir.Reg

	for i := range nodes {
		nd := &nodes[i]
		op := nd.ins.Op

		// Register uses (exits additionally "use" their live-out set).
		usesBuf = nd.ins.Uses(usesBuf[:0])
		if nd.isExit {
			nd.liveOut.ForEach(func(r ir.Reg) { usesBuf = append(usesBuf, r) })
		}
		for _, u := range usesBuf {
			if d, ok := lastDef[u]; ok {
				addEdge(d, i, mc.Latency(nodes[d].ins.Op))
			}
			lastUses[u] = append(lastUses[u], i)
		}
		// Register def.
		if nd.ins.HasDst() {
			r := nd.ins.Dst
			for _, u := range lastUses[r] {
				addEdge(u, i, 0) // WAR: may share a cycle, program order wins
			}
			if d, ok := lastDef[r]; ok {
				addEdge(d, i, 1) // WAW: strictly later cycle
			}
			lastDef[r] = i
			lastUses[r] = lastUses[r][:0]
		}

		// Memory and side-effect ordering.
		isCall := op == ir.OpCall
		switch {
		case op == ir.OpLoad:
			if lastStore >= 0 {
				addEdge(lastStore, i, 1)
			}
			if lastCall >= 0 {
				addEdge(lastCall, i, 1)
			}
			loadsSinceStore = append(loadsSinceStore, i)
		case op == ir.OpStore || isCall:
			if lastStore >= 0 {
				addEdge(lastStore, i, 1)
			}
			for _, l := range loadsSinceStore {
				addEdge(l, i, 0)
			}
			if lastCall >= 0 {
				addEdge(lastCall, i, 1)
			}
			lastStore = i
			loadsSinceStore = loadsSinceStore[:0]
			if isCall {
				lastCall = i
			}
		}
		if op == ir.OpEmit || isCall {
			if lastEmit >= 0 {
				addEdge(lastEmit, i, 1)
			}
			if lastCall >= 0 && lastCall != i {
				addEdge(lastCall, i, 1)
			}
			lastEmit = i
		}

		// Control ordering.
		if nd.isExit {
			if lastExit >= 0 {
				addEdge(lastExit, i, 1)
			}
			lastExit = i
		} else if !nd.ins.CanSpeculate() {
			// Pinned below the previous exit; the pass below also pins
			// it above the next one.
			if lastExit >= 0 {
				addEdge(lastExit, i, 0)
			}
		}
	}

	// Second pass: pin non-speculatable, non-exit instructions before
	// the next exit, and everything before the final terminator.
	nextExit := -1
	for i := n - 1; i >= 0; i-- {
		if nodes[i].isExit {
			nextExit = i
			continue
		}
		if !nodes[i].ins.CanSpeculate() && nextExit >= 0 {
			addEdge(i, nextExit, 0)
		}
	}
	final := n - 1
	for i := 0; i < final; i++ {
		addEdge(i, final, 0)
	}

	// Heights for the scheduling priority (critical path).
	for i := n - 1; i >= 0; i-- {
		h := int32(0)
		for _, e := range g.succs[i] {
			if v := g.height[e.to] + e.lat; v > h {
				h = v
			}
		}
		g.height[i] = h
	}
	return g
}
