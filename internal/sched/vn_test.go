package sched

import (
	"testing"

	"pathsched/internal/core"
	"pathsched/internal/interp"
	"pathsched/internal/ir"
)

func v(n int32) ir.Reg { return ir.VirtBase + ir.Reg(n) }

func countOps(nodes []node, op ir.Opcode) int {
	n := 0
	for i := range nodes {
		if nodes[i].ins.Op == op {
			n++
		}
	}
	return n
}

func TestValueNumberEliminatesRedundantArith(t *testing.T) {
	nodes := []node{
		{ins: ir.Add(v(0), 1, 2)},
		{ins: ir.Add(v(1), 1, 2)}, // redundant
		{ins: ir.Add(v(2), 2, 1)}, // redundant by commutativity
		{ins: ir.Mov(3, v(1))},
		{ins: ir.Mov(4, v(2))},
		{ins: ir.Ret(3), isExit: true},
	}
	out := valueNumber(nodes, newScratch())
	if got := countOps(out, ir.OpAdd); got != 1 {
		t.Fatalf("adds after VN = %d, want 1", got)
	}
	// Uses must have been retargeted to the surviving name.
	for i := range out {
		if out[i].ins.Op == ir.OpMov && out[i].ins.Src1 != v(0) {
			t.Fatalf("use not retargeted: %v", out[i].ins)
		}
	}
}

func TestValueNumberRespectsStores(t *testing.T) {
	nodes := []node{
		{ins: ir.Load(v(0), 1, 4)},
		{ins: ir.Load(v(1), 1, 4)},  // redundant (no store between)
		{ins: ir.Store(2, 0, v(0))}, // invalidates
		{ins: ir.Load(v(2), 1, 4)},  // NOT redundant
		{ins: ir.Mov(3, v(1))},
		{ins: ir.Mov(4, v(2))},
		{ins: ir.Ret(3), isExit: true},
	}
	out := valueNumber(nodes, newScratch())
	if got := countOps(out, ir.OpLoad); got != 2 {
		t.Fatalf("loads after VN = %d, want 2 (second dup removed, post-store kept)", got)
	}
}

func TestValueNumberRespectsCalls(t *testing.T) {
	call := ir.Call(v(9), 0, ir.NoBlock)
	nodes := []node{
		{ins: ir.Load(v(0), 1, 0)},
		{ins: call},
		{ins: ir.Load(v(1), 1, 0)}, // call may have stored: keep
		{ins: ir.Mov(3, v(0))},
		{ins: ir.Mov(4, v(1))},
		{ins: ir.Ret(3), isExit: true},
	}
	out := valueNumber(nodes, newScratch())
	if got := countOps(out, ir.OpLoad); got != 2 {
		t.Fatalf("loads after VN = %d, want 2", got)
	}
}

func TestValueNumberSkipsArchDefs(t *testing.T) {
	nodes := []node{
		{ins: ir.MovI(v(0), 7)},
		{ins: ir.MovI(5, 7)}, // architectural repair copy: must survive
		{ins: ir.Mov(3, v(0))},
		{ins: ir.Ret(3), isExit: true},
	}
	out := valueNumber(nodes, newScratch())
	if got := countOps(out, ir.OpMovI); got != 2 {
		t.Fatalf("movi count after VN = %d, want 2 (arch def kept)", got)
	}
}

func TestValueNumberDistinguishesImmediates(t *testing.T) {
	nodes := []node{
		{ins: ir.AddI(v(0), 1, 4)},
		{ins: ir.AddI(v(1), 1, 5)}, // different immediate: keep
		{ins: ir.Add(3, v(0), v(1))},
		{ins: ir.Ret(3), isExit: true},
	}
	out := valueNumber(nodes, newScratch())
	if got := countOps(out, ir.OpAddI); got != 2 {
		t.Fatalf("addi count = %d, want 2", got)
	}
}

// redundantProg recomputes the same expressions repeatedly inside a hot
// loop; VN should shorten the schedule without changing behaviour.
func redundantProg() *ir.Program {
	bd := ir.NewBuilder("vn", 64)
	pb := bd.Proc("main")
	entry, head, body, latch, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, s, c, t1, t2, t3 = 1, 2, 3, 4, 5, 6
	entry.Add(ir.MovI(i, 0), ir.MovI(s, 0))
	entry.Jmp(head.ID())
	head.Add(ir.CmpLTI(c, i, 500))
	head.Br(c, body.ID(), exit.ID())
	body.Add(
		ir.MulI(t1, i, 37), ir.AddI(t1, t1, 11),
		ir.MulI(t2, i, 37), ir.AddI(t2, t2, 11), // same value as t1
		ir.MulI(t3, i, 37), ir.AddI(t3, t3, 11), // and again
		ir.Add(s, s, t1), ir.Add(s, s, t2), ir.Add(s, s, t3),
	)
	body.Jmp(latch.ID())
	latch.Add(ir.AddI(i, i, 1))
	latch.Jmp(head.ID())
	exit.Add(ir.Emit(s))
	exit.Ret(s)
	return bd.Finish()
}

func TestValueNumberingImprovesSchedules(t *testing.T) {
	prog := redundantProg()
	orig, err := interp.Run(prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	withVN := compile(t, prog, core.PathBased, Options{}, nil)
	withoutVN := compile(t, prog, core.PathBased, Options{DisableVN: true}, nil)
	r1, err := interp.Run(withVN.Prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := interp.Run(withoutVN.Prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustMatch(t, orig, r1, "vn on")
	mustMatch(t, orig, r2, "vn off")
	if r1.DynInstrs >= r2.DynInstrs {
		t.Fatalf("VN must remove dynamic work: %d vs %d instrs", r1.DynInstrs, r2.DynInstrs)
	}
	if r1.Cycles > r2.Cycles {
		t.Fatalf("VN made the schedule worse: %d vs %d cycles", r1.Cycles, r2.Cycles)
	}
}
