package sched

import (
	"math"

	"pathsched/internal/machine"
)

// This file is the exact compaction baseline (ROADMAP "optimal-schedule
// and combinatorial baselines", DESIGN.md §13): a branch-and-bound /
// memoized-DFS search that finds a provably minimum-span schedule for
// one merged superblock under the same legality rules the list
// scheduler and check.Schedules enforce — dependence latencies,
// FuncUnits issue slots per cycle, BranchPerCycle control slots, and
// latency-0 edges permitting same-cycle issue in program order.
//
// The search space is restricted, without losing optimality, to
// schedules where every cycle's issue set is maximal: if a ready,
// resource-feasible instruction exists, the current cycle may not
// close. Any schedule left-shifts to such a form — moving an
// instruction to an earlier feasible cycle only relaxes its successors
// and frees later resources — so some optimal schedule survives the
// restriction. Within a cycle, candidates are tried in increasing node
// index; dependence edges only point forward, so every legal cycle set
// is enumerable in index order exactly once.

// ExactConfig configures the exact scheduler (Options.Exact).
type ExactConfig struct {
	// Enabled switches compaction from the list scheduler to the exact
	// branch-and-bound search (falling back to the list schedule above
	// the budgets below, with the block counted as Bounded).
	Enabled bool
	// NodeBudget is the largest region (instruction count after DCE/VN)
	// the search will attempt; larger regions keep their list schedule.
	// 0 means the default (32); values above 64 are capped — the search
	// state packs the scheduled set into one 64-bit mask.
	NodeBudget int
	// SearchBudget bounds branch-and-bound steps (node expansions plus
	// placements) per region; when exhausted the best schedule found so
	// far — at worst the list schedule — is kept and the block is
	// counted as Bounded. 0 means the default (200000).
	SearchBudget int64
}

const (
	defaultNodeBudget   = 32
	maxNodeBudget       = 64
	defaultSearchBudget = 200000
)

// Normalized resolves zero fields to their defaults and caps
// NodeBudget, so explicit-default and default-by-omission configs are
// identical (the pipeline cache keys on the normalized form). The
// zero/disabled config normalizes to itself.
func (c ExactConfig) Normalized() ExactConfig {
	if !c.Enabled {
		return ExactConfig{}
	}
	if c.NodeBudget <= 0 {
		c.NodeBudget = defaultNodeBudget
	}
	if c.NodeBudget > maxNodeBudget {
		c.NodeBudget = maxNodeBudget
	}
	if c.SearchBudget <= 0 {
		c.SearchBudget = defaultSearchBudget
	}
	return c
}

// exactStatus classifies one region's trip through the exact scheduler.
type exactStatus uint8

const (
	// exactProved: the search ran to completion; the returned span is
	// provably minimal (and the static lower bound certifies it in the
	// common case where they coincide).
	exactProved exactStatus = iota
	// exactBoundedNodes: the region exceeded NodeBudget; list schedule
	// kept.
	exactBoundedNodes
	// exactBoundedSearch: SearchBudget ran out mid-search; the best
	// legal schedule found so far is kept, without an optimality proof.
	exactBoundedSearch
)

// GapStats accumulates list-vs-exact span statistics across the
// regions of one compilation (Options.GapStats). Sums over proved
// regions only are what make PctOfOptimal a sound "% of optimal":
// bounded regions have no optimality certificate to compare against.
type GapStats struct {
	// Blocks counts scheduled regions (superblocks or basic blocks;
	// regalloc-fallback reschedules count once, as the kept attempt).
	Blocks int64
	// Proved counts regions with a completed, provably optimal search.
	Proved int64
	// Bounded counts fallbacks (NodeBudget exceeded or SearchBudget
	// exhausted); BoundedSearch is the budget-exhausted subset.
	Bounded       int64
	BoundedSearch int64
	// Improved counts proved regions where the exact span strictly beat
	// the list schedule.
	Improved int64
	// ListSpan and ExactSpan sum the two schedulers' spans over proved
	// regions.
	ListSpan  int64
	ExactSpan int64
}

// Merge folds o into g (per-worker stats joining after Compact).
func (g *GapStats) Merge(o *GapStats) {
	g.Blocks += o.Blocks
	g.Proved += o.Proved
	g.Bounded += o.Bounded
	g.BoundedSearch += o.BoundedSearch
	g.Improved += o.Improved
	g.ListSpan += o.ListSpan
	g.ExactSpan += o.ExactSpan
}

// PctOfOptimal reports the list scheduler's quality over proved
// regions as a percentage of the optimal span sum: 100 means every
// list schedule was optimal; 98 means list schedules were 1/0.98x
// longer in aggregate.
func (g *GapStats) PctOfOptimal() float64 {
	if g.ListSpan == 0 {
		return 100
	}
	return 100 * float64(g.ExactSpan) / float64(g.ListSpan)
}

// gapRecord is one region's outcome, filled by scheduleNodes and folded
// into the worker's GapStats by compactSuperblock once the kept attempt
// is known (the regalloc fallback reschedules, and only the final
// schedule is installed).
type gapRecord struct {
	valid               bool
	status              exactStatus
	listSpan, exactSpan int32
}

// add folds one region's record into the stats.
func (g *GapStats) add(rec gapRecord) {
	if !rec.valid {
		return
	}
	g.Blocks++
	switch rec.status {
	case exactProved:
		g.Proved++
		g.ListSpan += int64(rec.listSpan)
		g.ExactSpan += int64(rec.exactSpan)
		if rec.exactSpan < rec.listSpan {
			g.Improved++
		}
	case exactBoundedSearch:
		g.Bounded++
		g.BoundedSearch++
	default:
		g.Bounded++
	}
}

// exactKey identifies a search state at a cycle boundary: the set of
// scheduled nodes plus, for each unscheduled node, how far its earliest
// start sits past the new cycle (2 bits per node, exact whenever the
// maximum edge latency is ≤ 4 — delta is at most maxLat-1). Two visits
// with equal keys need identical numbers of further cycles, so the
// later-cycle visit is dominated.
type exactKey struct {
	mask, d0, d1 uint64
}

// estUndo is one entry of the DFS backtracking stack: est[idx] held est
// before the placement being undone raised it.
type estUndo struct {
	idx, est int32
}

// exactSchedule finds a minimum-span schedule for nodes over g, or the
// best schedule it can prove legal within cfg's budgets. It first runs
// listSchedule — propagating its *CycleError unchanged, so cyclic
// graphs fail fast instead of hanging the search — and uses that
// schedule as the incumbent, guaranteeing the result is never worse
// than the list schedule. The returned cycles live in scratch storage
// (valid until the next exact/list call on s); listSpan is the list
// scheduler's span for gap accounting. cfg must be normalized.
func exactSchedule(nodes []node, g *ddg, mc machine.Config, cfg ExactConfig, s *scratch) (cycles []int32, span, listSpan int32, status exactStatus, err error) {
	listCycles, listSpan, err := listSchedule(nodes, g, mc, s)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	n := len(nodes)
	best := i32buf(&s.exBest, n)
	copy(best, listCycles[:n])
	if n > cfg.NodeBudget {
		return best, listSpan, listSpan, exactBoundedNodes, nil
	}

	// Static lower bound: the certificate. Critical path (some chain
	// must run end to end), issue width (n ops through W slots), and
	// the control slot (every branch takes a cycle of its own with
	// BranchPerCycle=1).
	W, B := int32(mc.FuncUnits), int32(mc.BranchPerCycle)
	var branchMask uint64
	nBranches := int32(0)
	staticLB := int32(0)
	maxLat := int32(0)
	for i := 0; i < n; i++ {
		if nodes[i].ins.Op.IsBranch() {
			branchMask |= 1 << uint(i)
			nBranches++
		}
		if h := g.height[i] + 1; h > staticLB {
			staticLB = h
		}
		for _, e := range g.succs[i] {
			if e.lat > maxLat {
				maxLat = e.lat
			}
		}
	}
	if lb := (int32(n) + W - 1) / W; lb > staticLB {
		staticLB = lb
	}
	if lb := (nBranches + B - 1) / B; lb > staticLB {
		staticLB = lb
	}
	if listSpan <= staticLB {
		// The list schedule meets the bound: optimal without searching.
		return best, listSpan, listSpan, exactProved, nil
	}

	// Branch and bound. All working state lives in the worker's scratch.
	cyc := i32fill(&s.exCyc, n, -1)
	est := i32zero(&s.exEst, n)
	npred := i32buf(&s.exNpred, n)
	for i := 0; i < n; i++ {
		npred[i] = int32(g.npreds[i])
	}
	undo := s.exUndo[:0]
	memoOK := maxLat <= 4 // 2-bit deltas stay exact
	memo := s.exMemo
	if memoOK {
		if memo == nil {
			memo = map[exactKey]int32{}
			s.exMemo = memo
		}
		clear(memo)
	}

	bestSpan := listSpan
	var mask uint64
	remaining := n
	steps := int64(0)
	aborted, proved := false, false

	var dfs func(lastIdx int, cycle int32, used, brUsed int32)
	dfs = func(lastIdx int, cycle int32, used, brUsed int32) {
		steps++
		if steps > cfg.SearchBudget {
			aborted = true
			return
		}
		// Lower bounds over the unscheduled suffix; prune unless this
		// subtree can strictly beat the incumbent.
		lb := int32(0)
		remB := int32(0)
		for i := 0; i < n; i++ {
			if cyc[i] >= 0 {
				continue
			}
			if branchMask>>uint(i)&1 != 0 {
				remB++
			}
			e := est[i]
			if e < cycle {
				e = cycle
			}
			if v := e + g.height[i] + 1; v > lb {
				lb = v
			}
		}
		if r := int32(remaining) - (W - used); r > 0 {
			if v := cycle + 1 + (r+W-1)/W; v > lb {
				lb = v
			}
		}
		if rb := remB - (B - brUsed); rb > 0 {
			if v := cycle + 1 + (rb+B-1)/B; v > lb {
				lb = v
			}
		}
		if lb >= bestSpan {
			return
		}

		// Can anything issue this cycle? (Maximality gate for advancing.)
		placeable := false
		if used < W {
			for i := 0; i < n; i++ {
				if cyc[i] >= 0 || npred[i] != 0 || est[i] > cycle {
					continue
				}
				if branchMask>>uint(i)&1 != 0 && brUsed >= B {
					continue
				}
				placeable = true
				break
			}
		}

		// Branch 1..k: place each candidate after lastIdx at this cycle.
		if used < W {
			for i := lastIdx + 1; i < n; i++ {
				if cyc[i] >= 0 || npred[i] != 0 || est[i] > cycle {
					continue
				}
				isBr := branchMask>>uint(i)&1 != 0
				if isBr && brUsed >= B {
					continue
				}
				steps++
				cyc[i] = cycle
				mask |= 1 << uint(i)
				remaining--
				mark := len(undo)
				for _, e := range g.succs[i] {
					npred[e.to]--
					if t := cycle + e.lat; t > est[e.to] {
						undo = append(undo, estUndo{int32(e.to), est[e.to]})
						est[e.to] = t
					}
				}
				if remaining == 0 {
					if cycle+1 < bestSpan {
						bestSpan = cycle + 1
						copy(best, cyc)
						if bestSpan <= staticLB {
							proved = true // hit the certificate: done
						}
					}
				} else {
					nb := brUsed
					if isBr {
						nb++
					}
					dfs(i, cycle, used+1, nb)
				}
				for _, e := range g.succs[i] {
					npred[e.to]++
				}
				for len(undo) > mark {
					u := undo[len(undo)-1]
					undo = undo[:len(undo)-1]
					est[u.idx] = u.est
				}
				remaining++
				mask &^= 1 << uint(i)
				cyc[i] = -1
				if aborted || proved {
					return
				}
			}
		}

		// Final branch: close the cycle — legal only when the issue set
		// is maximal — and jump to the next cycle anything can start at.
		if !placeable {
			next := int32(math.MaxInt32)
			for i := 0; i < n; i++ {
				if cyc[i] < 0 && npred[i] == 0 && est[i] < next {
					next = est[i]
				}
			}
			// Ready nodes always exist (the graph is acyclic: the list
			// schedule succeeded), and a ready-now node only fails the
			// placeable gate on resources, forcing cycle+1.
			if next <= cycle {
				next = cycle + 1
			}
			if memoOK {
				var d0, d1 uint64
				for i := 0; i < n; i++ {
					if cyc[i] >= 0 {
						continue
					}
					if d := est[i] - next; d > 0 {
						if i < 32 {
							d0 |= uint64(d) << uint(2*i)
						} else {
							d1 |= uint64(d) << uint(2*(i-32))
						}
					}
				}
				k := exactKey{mask, d0, d1}
				if prev, ok := memo[k]; ok && next >= prev {
					return // dominated: an earlier visit covered this state
				}
				memo[k] = next
			}
			dfs(-1, next, 0, 0)
		}
	}

	dfs(-1, 0, 0, 0)
	s.exUndo = undo[:0]

	status = exactProved
	if aborted {
		status = exactBoundedSearch
	}
	span = bestSpan
	return best, span, listSpan, status, nil
}
