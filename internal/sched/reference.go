package sched

import (
	"fmt"
	"sort"

	"pathsched/internal/core"
	"pathsched/internal/ir"
	"pathsched/internal/machine"
	"pathsched/internal/regalloc"
)

// This file preserves the seed compaction path verbatim — map-based
// dependence tables, per-cycle ready-list re-sorts, per-instruction
// clones, fresh allocations throughout — behind Options.Reference,
// exactly as internal/interp keeps ReferenceRun. It serves two
// purposes: differential tests pin the optimized path byte-identical
// to it, and cmd/benchcompile uses it as the before-optimization
// baseline arm. Do not optimize this file.

// refDependences is the seed Dependences implementation.
func refDependences(items []DepItem, mc machine.Config) []DepEdge {
	n := len(items)
	heads := make([]int32, n)
	for i := range heads {
		heads[i] = -1
	}
	pool := make([]pooledEdge, 0, 8*n)
	nEdges := 0
	addEdge := func(from, to int, lat int32, kind DepKind) {
		if from == to || from > to {
			return
		}
		for j := heads[from]; j >= 0; j = pool[j].next {
			if pool[j].edge.To == to {
				if lat > pool[j].edge.Lat {
					pool[j].edge.Lat = lat
					pool[j].edge.Kind = kind
				}
				return
			}
		}
		pool = append(pool, pooledEdge{
			edge: DepEdge{From: from, To: to, Lat: lat, Kind: kind},
			next: heads[from],
		})
		heads[from] = int32(len(pool) - 1)
		nEdges++
	}

	lastDef := map[ir.Reg]int{}
	lastUses := map[ir.Reg][]int{}
	lastStore := -1
	var loadsSinceStore []int
	lastCall := -1
	lastEmit := -1
	lastExit := -1
	var usesBuf []ir.Reg

	for i := range items {
		it := &items[i]
		op := it.Ins.Op

		usesBuf = it.Ins.Uses(usesBuf[:0])
		if it.IsExit {
			it.LiveOut.ForEach(func(r ir.Reg) { usesBuf = append(usesBuf, r) })
		}
		for _, u := range usesBuf {
			if d, ok := lastDef[u]; ok {
				addEdge(d, i, mc.Latency(items[d].Ins.Op), DepRAW)
			}
			lastUses[u] = append(lastUses[u], i)
		}
		if it.Ins.HasDst() {
			r := it.Ins.Dst
			for _, u := range lastUses[r] {
				addEdge(u, i, 0, DepWAR)
			}
			if d, ok := lastDef[r]; ok {
				addEdge(d, i, 1, DepWAW)
			}
			lastDef[r] = i
			lastUses[r] = lastUses[r][:0]
		}

		isCall := op == ir.OpCall
		switch {
		case op == ir.OpLoad:
			if lastStore >= 0 {
				addEdge(lastStore, i, 1, DepMem)
			}
			if lastCall >= 0 {
				addEdge(lastCall, i, 1, DepMem)
			}
			loadsSinceStore = append(loadsSinceStore, i)
		case op == ir.OpStore || isCall:
			if lastStore >= 0 {
				addEdge(lastStore, i, 1, DepMem)
			}
			for _, l := range loadsSinceStore {
				addEdge(l, i, 0, DepMem)
			}
			if lastCall >= 0 {
				addEdge(lastCall, i, 1, DepMem)
			}
			lastStore = i
			loadsSinceStore = loadsSinceStore[:0]
			if isCall {
				lastCall = i
			}
		}
		if op == ir.OpEmit || isCall {
			if lastEmit >= 0 {
				addEdge(lastEmit, i, 1, DepOrder)
			}
			if lastCall >= 0 && lastCall != i {
				addEdge(lastCall, i, 1, DepOrder)
			}
			lastEmit = i
		}

		if it.IsExit {
			if lastExit >= 0 {
				addEdge(lastExit, i, 1, DepControl)
			}
			lastExit = i
		} else if !it.Ins.CanSpeculate() {
			if lastExit >= 0 {
				addEdge(lastExit, i, 0, DepControl)
			}
		}
	}

	nextExit := -1
	for i := n - 1; i >= 0; i-- {
		if items[i].IsExit {
			nextExit = i
			continue
		}
		if !items[i].Ins.CanSpeculate() && nextExit >= 0 {
			addEdge(i, nextExit, 0, DepControl)
		}
	}
	final := n - 1
	for i := 0; i < final; i++ {
		addEdge(i, final, 0, DepControl)
	}

	out := make([]DepEdge, 0, nEdges)
	for _, h := range heads {
		start := len(out)
		for j := h; j >= 0; j = pool[j].next {
			out = append(out, pool[j].edge)
		}
		for i, j := start, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}

// refBuildDDG is the seed buildDDG: a fresh graph with per-node
// append-grown successor slices. It also returns the dependence edges
// so the recording path can map them to emitted positions.
func refBuildDDG(nodes []node, mc machine.Config) (*ddg, []DepEdge) {
	n := len(nodes)
	items := make([]DepItem, n)
	for i := range nodes {
		items[i] = DepItem{Ins: nodes[i].ins, IsExit: nodes[i].isExit, LiveOut: nodes[i].liveOut}
	}
	g := &ddg{
		succs:  make([][]edge, n),
		npreds: make([]int, n),
		height: make([]int32, n),
	}
	edges := refDependences(items, mc)
	for _, e := range edges {
		g.succs[e.From] = append(g.succs[e.From], edge{e.To, e.Lat})
		g.npreds[e.To]++
	}
	for i := n - 1; i >= 0; i-- {
		h := int32(0)
		for _, e := range g.succs[i] {
			if v := g.height[e.to] + e.lat; v > h {
				h = v
			}
		}
		g.height[i] = h
	}
	return g, edges
}

// refListSchedule is the seed list scheduler: it re-sorts the entire
// ready list by (height, program order) every cycle.
func refListSchedule(nodes []node, g *ddg, mc machine.Config) (cycles []int32, span int32, err error) {
	n := len(nodes)
	cycles = make([]int32, n)
	earliest := make([]int32, n)
	npreds := append([]int(nil), g.npreds...)

	var ready []int
	for i := 0; i < n; i++ {
		if npreds[i] == 0 {
			ready = append(ready, i)
		}
	}
	remaining := n
	clock := int32(0)
	for remaining > 0 {
		sort.Slice(ready, func(a, b int) bool {
			ia, ib := ready[a], ready[b]
			if ha, hb := g.height[ia], g.height[ib]; ha != hb {
				return ha > hb
			}
			return ia < ib
		})
		if len(ready) == 0 {
			return nil, 0, &CycleError{Block: ir.NoBlock, Remaining: remaining}
		}
		slots := mc.FuncUnits
		branches := mc.BranchPerCycle
		var rest []int
		for _, i := range ready {
			if slots == 0 || earliest[i] > clock {
				rest = append(rest, i)
				continue
			}
			isBranch := nodes[i].ins.Op.IsBranch()
			if isBranch && branches == 0 {
				rest = append(rest, i)
				continue
			}
			cycles[i] = clock
			remaining--
			slots--
			if isBranch {
				branches--
			}
			for _, e := range g.succs[i] {
				if t := clock + e.lat; t > earliest[e.to] {
					earliest[e.to] = t
				}
				npreds[e.to]--
				if npreds[e.to] == 0 {
					rest = append(rest, e.to)
				}
			}
		}
		ready = rest
		clock++
	}
	span = 0
	for i := 0; i < n; i++ {
		if cycles[i]+1 > span {
			span = cycles[i] + 1
		}
	}
	return cycles, span, nil
}

// refMergeSuperblock is the seed merge: it deep-clones every
// instruction individually.
func refMergeSuperblock(p *ir.Proc, sb *core.Superblock, liveIn []RegSet) ([]node, error) {
	var nodes []node
	for i, bid := range sb.Blocks {
		b := p.Block(bid)
		lastBlock := i == len(sb.Blocks)-1
		var next ir.BlockID = ir.NoBlock
		if !lastBlock {
			next = sb.Blocks[i+1]
		}
		for j := range b.Instrs {
			ins := b.Instrs[j].Clone()
			isTerm := j == len(b.Instrs)-1
			if !isTerm {
				if ins.Op.IsTerminator() {
					return nil, fmt.Errorf("sched: %s/b%d has terminator mid-block before merging", p.Name, bid)
				}
				nodes = append(nodes, node{ins: ins, unit: i})
				continue
			}
			if lastBlock {
				n := node{ins: ins, unit: i, isExit: true}
				for _, t := range ins.Targets {
					n.liveOut.Union(liveIn[t])
				}
				nodes = append(nodes, n)
				continue
			}
			if ins.Op == ir.OpRet {
				return nil, fmt.Errorf("sched: %s/b%d: ret cannot appear mid-superblock", p.Name, bid)
			}
			real := 0
			for k, t := range ins.Targets {
				if t == next {
					ins.Targets[k] = ir.NoBlock
				} else {
					real++
				}
			}
			if real == 0 {
				if ins.Op == ir.OpCall {
					nodes = append(nodes, node{ins: ins, unit: i})
					continue
				}
				continue
			}
			if ins.Op == ir.OpJmp || ins.Op == ir.OpCall {
				return nil, fmt.Errorf("sched: %s/b%d: %s to non-successor inside superblock", p.Name, bid, ins.Op)
			}
			if ins.Op == ir.OpBr {
				if ins.Targets[0] != ir.NoBlock && ins.Targets[1] != ir.NoBlock {
					return nil, fmt.Errorf("sched: %s/b%d: br has no internal successor", p.Name, bid)
				}
			}
			n := node{ins: ins, unit: i, isExit: true}
			for _, t := range ins.Targets {
				if t != ir.NoBlock {
					n.liveOut.Union(liveIn[t])
				}
			}
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("sched: superblock %d merged to nothing", sb.ID)
	}
	last := &nodes[len(nodes)-1]
	if !last.ins.Op.IsTerminator() {
		return nil, fmt.Errorf("sched: superblock %d does not end in a terminator", sb.ID)
	}
	return nodes, nil
}

// refRename is the seed map-based renamer.
func refRename(p *ir.Proc, nodes []node) []node {
	cur := map[ir.Reg]ir.Reg{}
	repaired := map[ir.Reg]ir.Reg{}

	nameOf := func(r ir.Reg) ir.Reg {
		if v, ok := cur[r]; ok {
			return v
		}
		return r
	}

	out := make([]node, 0, len(nodes)+8)
	for i := range nodes {
		n := nodes[i]
		final := i == len(nodes)-1

		rewriteUses(&n.ins, nameOf)

		if n.isExit {
			var copies []node
			n.liveOut.ForEach(func(r ir.Reg) {
				want := nameOf(r)
				have, ok := repaired[r]
				if !ok {
					have = r
				}
				if want == have {
					return
				}
				copies = append(copies, node{ins: ir.Mov(r, want), unit: n.unit})
				repaired[r] = want
			})
			out = append(out, copies...)
		}

		if n.ins.Op == ir.OpMov && !final && n.ins.Src1.IsVirtual() {
			cur[n.ins.Dst] = n.ins.Src1
			continue
		}

		if n.ins.HasDst() && !final {
			v := p.NewVirtReg()
			cur[n.ins.Dst] = v
			n.ins.Dst = v
		} else if n.ins.HasDst() && final {
			delete(cur, n.ins.Dst)
			delete(repaired, n.ins.Dst)
		}
		out = append(out, n)
	}
	return out
}

// refValueNumber is the seed value-numbering pass with per-call maps.
func refValueNumber(nodes []node) []node {
	table := map[vnKey]ir.Reg{}
	replace := map[ir.Reg]ir.Reg{}
	canon := func(r ir.Reg) ir.Reg {
		if c, ok := replace[r]; ok {
			return c
		}
		return r
	}
	gen := 0
	out := make([]node, 0, len(nodes))
	for i := range nodes {
		n := nodes[i]
		rewriteUses(&n.ins, canon)

		if n.ins.IsMemWrite() || n.ins.Op == ir.OpCall {
			gen++
		}

		if vnCandidate(&n.ins) {
			k := vnKey{op: n.ins.Op, a: n.ins.Src1, b: n.ins.Src2, imm: n.ins.Imm}
			if isCommutative(n.ins.Op) && k.b < k.a {
				k.a, k.b = k.b, k.a
			}
			if n.ins.Op == ir.OpLoad {
				k.gen = gen
			}
			if prior, ok := table[k]; ok {
				replace[n.ins.Dst] = prior
				continue
			}
			table[k] = n.ins.Dst
		}
		out = append(out, n)
	}
	return out
}

// refEliminateDeadDefs is the seed DCE with a per-iteration map.
func refEliminateDeadDefs(nodes []node) []node {
	for {
		used := map[ir.Reg]bool{}
		var buf []ir.Reg
		for i := range nodes {
			buf = nodes[i].ins.Uses(buf[:0])
			for _, u := range buf {
				used[u] = true
			}
		}
		kept := nodes[:0]
		removed := false
		for i := range nodes {
			nd := nodes[i]
			dead := nd.ins.HasDst() && nd.ins.Dst.IsVirtual() && !used[nd.ins.Dst] &&
				nd.ins.CanSpeculate() && !nd.isExit
			if dead {
				removed = true
				continue
			}
			kept = append(kept, nd)
		}
		nodes = kept
		if !removed {
			return nodes
		}
	}
}

// refScheduleNodes is the seed scheduleNodes (sort.SliceStable
// linearization, fresh output slices), extended only to map the
// dependence edges to emitted positions when recording is requested.
func refScheduleNodes(p *ir.Proc, nodes []node, doRename bool, opts Options, record bool) ([]node, []int32, int32, []DepEdge, error) {
	if doRename {
		nodes = refRename(p, nodes)
		if !opts.DisableVN {
			nodes = refValueNumber(nodes)
		}
	}
	if !opts.DisableDCE {
		nodes = refEliminateDeadDefs(nodes)
	}
	g, edges := refBuildDDG(nodes, opts.Machine)
	cycles, span, err := refListSchedule(nodes, g, opts.Machine)
	if err != nil {
		return nil, nil, 0, nil, err
	}

	order := make([]int, len(nodes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return cycles[order[a]] < cycles[order[b]] })

	finalPos := make([]int, len(nodes))
	for pos, idx := range order {
		finalPos[idx] = pos
	}
	var exits []int
	for i := range nodes {
		if nodes[i].isExit {
			exits = append(exits, i)
		}
	}
	outNodes := make([]node, len(nodes))
	outCycles := make([]int32, len(nodes))
	for pos, idx := range order {
		nd := nodes[idx]
		if nd.ins.Op == ir.OpLoad {
			for _, e := range exits {
				if e < idx && finalPos[e] > pos {
					nd.ins.Spec = true
					break
				}
			}
		}
		outNodes[pos] = nd
		outCycles[pos] = cycles[idx]
	}
	var recEdges []DepEdge
	if record {
		recEdges = make([]DepEdge, len(edges))
		for k, e := range edges {
			recEdges[k] = DepEdge{From: finalPos[e.From], To: finalPos[e.To], Lat: e.Lat, Kind: e.Kind}
		}
	}
	return outNodes, outCycles, span, recEdges, nil
}

// refCompactSuperblock is the seed compactSuperblock: it merges an
// independent fallback copy eagerly and allocates fresh working state
// throughout.
func refCompactSuperblock(p *ir.Proc, sb *core.Superblock, live []RegSet, pool []ir.Reg, opts Options, record bool) ([]DepEdge, error) {
	nodes, err := refMergeSuperblock(p, sb, live)
	if err != nil {
		return nil, err
	}
	// An independent merged copy for the no-renaming fallback: rename
	// mutates instruction operands in place, and install overwrites the
	// head block the merge reads from.
	fallback, err := refMergeSuperblock(p, sb, live)
	if err != nil {
		return nil, err
	}
	tryRename := !opts.DisableRenaming
	final, cycles, span, edges, err := refScheduleNodes(p, nodes, tryRename, opts, record)
	if err != nil {
		return nil, tagCycleError(err, p, sb)
	}
	head := p.Block(sb.Blocks[0])
	install(p, head, sb, final, cycles, span)
	if tryRename {
		if aerr := regalloc.AssignVirtuals(head, pool); aerr != nil {
			final, cycles, span, edges, err = refScheduleNodes(p, fallback, false, opts, record)
			if err != nil {
				return nil, tagCycleError(err, p, sb)
			}
			install(p, head, sb, final, cycles, span)
		}
	}
	sb.Blocks = sb.Blocks[:1]
	return edges, nil
}
