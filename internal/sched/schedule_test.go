package sched

import (
	"errors"
	"strings"
	"testing"

	"pathsched/internal/ir"
	"pathsched/internal/machine"
)

// listSchedule must fail cleanly — not panic — when handed a cyclic
// dependence graph: one bad procedure should fail its own benchmark
// run, not crash a whole parallel suite. Dependences itself only
// produces forward edges, so the cycle is built by hand, standing in
// for any future dependence rule (or corrupted input) that wires one.
func TestListScheduleCycleError(t *testing.T) {
	nodes := []node{
		{ins: ir.MovI(8, 1)},
		{ins: ir.MovI(9, 2)},
		{ins: ir.Ret(8)},
	}
	// Nodes 0 and 1 depend on each other; node 2 is free and schedules,
	// after which nothing is ready with two nodes remaining.
	g := &ddg{
		succs:  [][]edge{{{to: 1, lat: 1}}, {{to: 0, lat: 1}}, nil},
		npreds: []int{1, 1, 0},
		height: []int32{1, 1, 0},
	}
	_, _, err := listSchedule(nodes, g, machine.Default(), newScratch())
	if err == nil {
		t.Fatal("listSchedule on a cyclic DDG returned no error")
	}
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("got %T (%v), want *CycleError", err, err)
	}
	if ce.Remaining != 2 {
		t.Errorf("Remaining = %d, want 2", ce.Remaining)
	}
	if msg := ce.Error(); !strings.Contains(msg, "cycle") {
		t.Errorf("untagged message %q does not mention the cycle", msg)
	}
	// Compaction tags the error with proc/block identity; the message
	// must carry both.
	ce.Proc, ce.Block = "f", 3
	if msg := ce.Error(); !strings.Contains(msg, "f") || !strings.Contains(msg, "b3") {
		t.Errorf("tagged message %q lacks proc/block identity", msg)
	}
}

// An acyclic graph still schedules after the error-return conversion.
func TestListScheduleAcyclicOK(t *testing.T) {
	nodes := []node{
		{ins: ir.MovI(8, 1)},
		{ins: ir.Mov(9, 8)},
		{ins: ir.Ret(9)},
	}
	g, _ := buildDDG(nodes, machine.Default(), newScratch())
	cycles, span, err := listSchedule(nodes, g, machine.Default(), newScratch())
	if err != nil {
		t.Fatalf("listSchedule: %v", err)
	}
	if len(cycles) != len(nodes) || span <= 0 {
		t.Fatalf("cycles=%v span=%d", cycles, span)
	}
}
