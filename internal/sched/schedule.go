package sched

import (
	"fmt"
	"sort"

	"pathsched/internal/ir"
	"pathsched/internal/machine"
)

// CycleError reports a dependence-graph cycle found during list
// scheduling: no instruction was ready, yet some remain unscheduled.
// Compaction tags it with the procedure and superblock head block so a
// suite run can report exactly which procedure is malformed instead of
// crashing the whole parallel run.
type CycleError struct {
	// Proc is the name of the offending procedure ("" until compaction
	// tags the error).
	Proc string
	// Block is the superblock's head block (ir.NoBlock until tagged).
	Block ir.BlockID
	// Remaining is how many instructions were left unscheduled when the
	// cycle was detected.
	Remaining int
}

func (e *CycleError) Error() string {
	if e.Proc == "" {
		return fmt.Sprintf("scheduler deadlock: dependence graph has a cycle (%d instructions unschedulable)", e.Remaining)
	}
	return fmt.Sprintf("scheduler deadlock in %s block b%d: dependence graph has a cycle (%d instructions unschedulable)", e.Proc, e.Block, e.Remaining)
}

// listSchedule performs top-down cycle scheduling (§2.3): cycle by
// cycle, the ready instructions with the greatest critical-path height
// fill the machine's functional units, with at most one control
// operation per cycle. It returns each node's issue cycle and the
// total span (makespan) in cycles, or a *CycleError if the dependence
// graph is cyclic and no legal order exists.
func listSchedule(nodes []node, g *ddg, mc machine.Config) (cycles []int32, span int32, err error) {
	n := len(nodes)
	cycles = make([]int32, n)
	earliest := make([]int32, n)
	npreds := append([]int(nil), g.npreds...)
	scheduled := make([]bool, n)

	// ready holds nodes whose predecessors have all issued; they become
	// eligible once the clock reaches their earliest cycle.
	var ready []int
	for i := 0; i < n; i++ {
		if npreds[i] == 0 {
			ready = append(ready, i)
		}
	}
	remaining := n
	clock := int32(0)
	for remaining > 0 {
		// Eligible now, best (height, program order) first.
		sort.Slice(ready, func(a, b int) bool {
			ia, ib := ready[a], ready[b]
			if ha, hb := g.height[ia], g.height[ib]; ha != hb {
				return ha > hb
			}
			return ia < ib
		})
		if len(ready) == 0 {
			return nil, 0, &CycleError{Block: ir.NoBlock, Remaining: remaining}
		}
		slots := mc.FuncUnits
		branches := mc.BranchPerCycle
		var rest []int
		for _, i := range ready {
			if slots == 0 || earliest[i] > clock {
				rest = append(rest, i)
				continue
			}
			isBranch := nodes[i].ins.Op.IsBranch()
			if isBranch && branches == 0 {
				rest = append(rest, i)
				continue
			}
			// Issue i at clock.
			cycles[i] = clock
			scheduled[i] = true
			remaining--
			slots--
			if isBranch {
				branches--
			}
			for _, e := range g.succs[i] {
				if t := clock + e.lat; t > earliest[e.to] {
					earliest[e.to] = t
				}
				npreds[e.to]--
				if npreds[e.to] == 0 {
					rest = append(rest, e.to)
				}
			}
		}
		ready = rest
		clock++
	}
	span = 0
	for i := 0; i < n; i++ {
		if cycles[i]+1 > span {
			span = cycles[i] + 1
		}
	}
	return cycles, span, nil
}
