package sched

import (
	"fmt"
	"math/bits"

	"pathsched/internal/ir"
	"pathsched/internal/machine"
)

// CycleError reports a dependence-graph cycle found during list
// scheduling: no instruction was ready, yet some remain unscheduled.
// Compaction tags it with the procedure and superblock head block so a
// suite run can report exactly which procedure is malformed instead of
// crashing the whole parallel run.
type CycleError struct {
	// Proc is the name of the offending procedure ("" until compaction
	// tags the error).
	Proc string
	// Block is the superblock's head block (ir.NoBlock until tagged).
	Block ir.BlockID
	// Remaining is how many instructions were left unscheduled when the
	// cycle was detected.
	Remaining int
}

func (e *CycleError) Error() string {
	if e.Proc == "" {
		return fmt.Sprintf("scheduler deadlock: dependence graph has a cycle (%d instructions unschedulable)", e.Remaining)
	}
	return fmt.Sprintf("scheduler deadlock in %s block b%d: dependence graph has a cycle (%d instructions unschedulable)", e.Proc, e.Block, e.Remaining)
}

// listSchedule performs top-down cycle scheduling (§2.3): cycle by
// cycle, the ready instructions with the greatest critical-path height
// fill the machine's functional units, with at most one control
// operation per cycle. It returns each node's issue cycle (in scratch
// storage, valid until the next call on s) and the total span
// (makespan) in cycles, or a *CycleError if the dependence graph is
// cyclic and no legal order exists.
//
// The priority structure is incremental instead of a per-cycle re-sort
// of the ready list. The scheduling priority (height desc, program
// order asc) is a *static* total order — heights never change during
// scheduling — so one counting sort up front assigns every node a rank,
// and the ready set becomes a bitset over ranks scanned lowest-rank
// first with TrailingZeros64. Two details keep the issue order
// bit-identical to the re-sorting scheduler (the tie-break invariant of
// DESIGN.md §12):
//
//   - A ready node whose earliest cycle is still in the future stays in
//     the bitset and is skipped during the scan, exactly as the old
//     scheduler re-appended it to the next cycle's list.
//   - A node becoming ready *during* a cycle's scan must not issue
//     until the next cycle (the old scheduler appended it behind the
//     current iteration snapshot). Flooring its earliest cycle to
//     clock+1 at enable time enforces that without any extra state;
//     dependence latecomers in the same word as the issuing node are
//     additionally invisible to the current word snapshot.
func listSchedule(nodes []node, g *ddg, mc machine.Config, s *scratch) (cycles []int32, span int32, err error) {
	n := len(nodes)
	cycles = i32zero(&s.cycles, n)
	earliest := i32zero(&s.earliest, n)
	npreds := i32buf(&s.npreds, n)
	for i := 0; i < n; i++ {
		npreds[i] = int32(g.npreds[i])
	}

	// Counting sort: rank 0 is the highest height, program order breaks
	// ties within a height bucket.
	maxH := int32(0)
	for _, h := range g.height[:n] {
		if h > maxH {
			maxH = h
		}
	}
	cnt := i32zero(&s.hcnt, int(maxH)+2)
	for _, h := range g.height[:n] {
		cnt[maxH-h]++
	}
	pos := int32(0)
	for b := range cnt {
		c := cnt[b]
		cnt[b] = pos
		pos += c
	}
	perm := i32buf(&s.perm, n)     // rank -> node
	rankOf := i32buf(&s.rankOf, n) // node -> rank
	for i := 0; i < n; i++ {
		b := maxH - g.height[i]
		perm[cnt[b]] = int32(i)
		rankOf[i] = cnt[b]
		cnt[b]++
	}

	nw := (n + 63) / 64
	ready := u64zero(&s.ready, nw)
	readyCount := 0
	for i := 0; i < n; i++ {
		if npreds[i] == 0 {
			r := rankOf[i]
			ready[r>>6] |= 1 << uint(r&63)
			readyCount++
		}
	}

	remaining := n
	clock := int32(0)
	for remaining > 0 {
		if readyCount == 0 {
			return nil, 0, &CycleError{Block: ir.NoBlock, Remaining: remaining}
		}
		slots := mc.FuncUnits
		branches := mc.BranchPerCycle
	scan:
		for w := 0; w < nw; w++ {
			word := ready[w]
			for word != 0 {
				tz := bits.TrailingZeros64(word)
				word &= word - 1
				i := int(perm[w<<6+tz])
				if earliest[i] > clock {
					continue
				}
				isBranch := nodes[i].ins.Op.IsBranch()
				if isBranch && branches == 0 {
					continue
				}
				// Issue i at clock.
				cycles[i] = clock
				ready[w] &^= 1 << uint(tz)
				readyCount--
				remaining--
				slots--
				if isBranch {
					branches--
				}
				for _, e := range g.succs[i] {
					if t := clock + e.lat; t > earliest[e.to] {
						earliest[e.to] = t
					}
					npreds[e.to]--
					if npreds[e.to] == 0 {
						if earliest[e.to] <= clock {
							earliest[e.to] = clock + 1
						}
						r := rankOf[e.to]
						ready[r>>6] |= 1 << uint(r&63)
						readyCount++
					}
				}
				if slots == 0 {
					break scan
				}
			}
		}
		clock++
	}
	span = 0
	for i := 0; i < n; i++ {
		if cycles[i]+1 > span {
			span = cycles[i] + 1
		}
	}
	return cycles, span, nil
}
