package sched

import (
	"math/bits"

	"pathsched/internal/ir"
)

// RegSet is a bitset over the 128 architected registers. Virtual
// registers never cross block boundaries, so block-level liveness only
// tracks physical names.
type RegSet [2]uint64

// Has reports membership. Virtual registers are never members.
func (s RegSet) Has(r ir.Reg) bool {
	if r >= ir.VirtBase {
		return false
	}
	return s[r>>6]&(1<<(uint(r)&63)) != 0
}

// Add inserts a physical register (virtuals are ignored).
func (s *RegSet) Add(r ir.Reg) {
	if r >= ir.VirtBase {
		return
	}
	s[r>>6] |= 1 << (uint(r) & 63)
}

// Remove deletes a register.
func (s *RegSet) Remove(r ir.Reg) {
	if r >= ir.VirtBase {
		return
	}
	s[r>>6] &^= 1 << (uint(r) & 63)
}

// Union merges o into s and reports whether s changed.
func (s *RegSet) Union(o RegSet) bool {
	changed := false
	for i := range s {
		if n := s[i] | o[i]; n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// ForEach calls fn for every member, in increasing register order.
// Exit live-out sets are walked once per exit per dependence
// computation, so the index comes from TrailingZeros64 rather than a
// shift-count loop.
func (s RegSet) ForEach(fn func(ir.Reg)) {
	for w := 0; w < len(s); w++ {
		word := s[w]
		for word != 0 {
			fn(ir.Reg(w*64 + bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
}

// LiveIn computes, for every block of p, the set of physical registers
// live on entry, via the standard backward dataflow. It is the
// foundation of live-off-trace renaming: an exit branch conceptually
// "uses" everything live into its targets, which is exactly what limits
// (and after renaming enables) moving instructions above superblock
// exits (§2.3).
func LiveIn(p *ir.Proc) []RegSet {
	n := len(p.Blocks)
	liveIn := make([]RegSet, n)
	// Iterate to fixpoint; reverse-ish order converges fast enough for
	// our block counts.
	var usesBuf []ir.Reg
	for changed := true; changed; {
		changed = false
		for bi := n - 1; bi >= 0; bi-- {
			b := p.Blocks[bi]
			var live RegSet
			for _, t := range b.Succs() {
				live.Union(liveIn[t])
			}
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				ins := &b.Instrs[i]
				if ins.HasDst() {
					live.Remove(ins.Dst)
				}
				usesBuf = ins.Uses(usesBuf[:0])
				for _, u := range usesBuf {
					live.Add(u)
				}
			}
			if liveIn[bi].Union(live) {
				changed = true
			}
		}
	}
	return liveIn
}
