package sched

import (
	"pathsched/internal/ir"
	"pathsched/internal/machine"
)

// This file is the single source of truth for scheduling dependences.
// The compactor's DDG (ddg.go) and the semantic checker
// (internal/check) both consume Dependences, so the dependence and
// latency rules cannot drift apart between the pass that uses them and
// the pass that verifies them.

// DepKind classifies a dependence edge, so consumers can distinguish
// semantic orderings (flow, memory, observable stream, control) from
// purely resource-conservative ones (a same-cycle WAW write pair is
// harmless to the sequential retirement model but the scheduler still
// separates it).
type DepKind uint8

const (
	// DepRAW is a true (flow) dependence: To reads a register From
	// writes, Lat = the producing opcode's latency.
	DepRAW DepKind = iota
	// DepWAR is an anti dependence: To overwrites a register From
	// reads. Lat 0 — program order within a cycle suffices.
	DepWAR
	// DepWAW is an output dependence between two writes of one
	// register.
	DepWAW
	// DepMem orders conflicting memory operations (and calls, which
	// may touch memory).
	DepMem
	// DepOrder keeps the observable output stream (emits, calls) in
	// program order.
	DepOrder
	// DepControl pins exits in program order and non-speculatable
	// instructions between their neighboring exits.
	DepControl
)

func (k DepKind) String() string {
	switch k {
	case DepRAW:
		return "RAW"
	case DepWAR:
		return "WAR"
	case DepWAW:
		return "WAW"
	case DepMem:
		return "mem"
	case DepOrder:
		return "order"
	case DepControl:
		return "control"
	}
	return "dep?"
}

// DepEdge is one scheduling constraint: To may issue no earlier than
// Lat cycles after From. Lat-0 edges permit sharing a cycle; program
// order (From < To) then decides execution order.
type DepEdge struct {
	From, To int
	Lat      int32
	Kind     DepKind
}

// DepItem is one instruction of a linear scheduling region, in the
// order dependences are computed over. IsExit marks instructions that
// can transfer control out of the region; LiveOut is the union of the
// live-in sets of an exit's targets — the registers whose values must
// be architecturally correct if that exit is taken (the exit
// conceptually "uses" them).
type DepItem struct {
	Ins     ir.Instr
	IsExit  bool
	LiveOut RegSet
}

// Dependences computes the scheduling dependences over items:
//
//   - register RAW/WAR/WAW edges (renaming removes most WAR/WAW);
//   - conservative memory edges: stores conflict with every other
//     memory operation, loads may reorder among themselves;
//   - calls act as memory and output barriers;
//   - emits stay ordered among themselves (the observable stream);
//   - control edges: exits stay in program order, non-speculatable
//     instructions may not cross an exit in either direction, and
//     everything must issue no later than the final item.
//
// Speculatable instructions (ALU ops and loads) deliberately get no
// control edges: moving them above exits is precisely the speculation
// superblock scheduling exists for (§1, §2.3). All edges point forward
// (From < To), so item order is a topological order. Parallel edges
// between one (From, To) pair are merged, keeping the strongest
// (largest-latency) constraint and the kind that first established it.
func Dependences(items []DepItem, mc machine.Config) []DepEdge {
	n := len(items)
	// Edges live in one pooled singly-linked list per source node
	// (head indices into a shared backing slice) instead of a slice
	// per node: dependence graphs are built once per block on every
	// compile, and the per-node append-and-grow pattern dominated the
	// cost of the whole computation.
	type pooledEdge struct {
		edge DepEdge
		next int32 // index into pool, -1 ends the list
	}
	heads := make([]int32, n)
	for i := range heads {
		heads[i] = -1
	}
	pool := make([]pooledEdge, 0, 8*n)
	nEdges := 0
	addEdge := func(from, to int, lat int32, kind DepKind) {
		if from == to || from > to {
			return
		}
		for j := heads[from]; j >= 0; j = pool[j].next {
			if pool[j].edge.To == to {
				if lat > pool[j].edge.Lat {
					pool[j].edge.Lat = lat
					pool[j].edge.Kind = kind
				}
				return
			}
		}
		pool = append(pool, pooledEdge{
			edge: DepEdge{From: from, To: to, Lat: lat, Kind: kind},
			next: heads[from],
		})
		heads[from] = int32(len(pool) - 1)
		nEdges++
	}

	lastDef := map[ir.Reg]int{}
	lastUses := map[ir.Reg][]int{}
	lastStore := -1
	var loadsSinceStore []int
	lastCall := -1
	lastEmit := -1
	lastExit := -1
	var usesBuf []ir.Reg

	for i := range items {
		it := &items[i]
		op := it.Ins.Op

		// Register uses (exits additionally "use" their live-out set).
		usesBuf = it.Ins.Uses(usesBuf[:0])
		if it.IsExit {
			it.LiveOut.ForEach(func(r ir.Reg) { usesBuf = append(usesBuf, r) })
		}
		for _, u := range usesBuf {
			if d, ok := lastDef[u]; ok {
				addEdge(d, i, mc.Latency(items[d].Ins.Op), DepRAW)
			}
			lastUses[u] = append(lastUses[u], i)
		}
		// Register def.
		if it.Ins.HasDst() {
			r := it.Ins.Dst
			for _, u := range lastUses[r] {
				addEdge(u, i, 0, DepWAR) // may share a cycle, program order wins
			}
			if d, ok := lastDef[r]; ok {
				addEdge(d, i, 1, DepWAW) // strictly later cycle
			}
			lastDef[r] = i
			lastUses[r] = lastUses[r][:0]
		}

		// Memory and side-effect ordering.
		isCall := op == ir.OpCall
		switch {
		case op == ir.OpLoad:
			if lastStore >= 0 {
				addEdge(lastStore, i, 1, DepMem)
			}
			if lastCall >= 0 {
				addEdge(lastCall, i, 1, DepMem)
			}
			loadsSinceStore = append(loadsSinceStore, i)
		case op == ir.OpStore || isCall:
			if lastStore >= 0 {
				addEdge(lastStore, i, 1, DepMem)
			}
			for _, l := range loadsSinceStore {
				addEdge(l, i, 0, DepMem)
			}
			if lastCall >= 0 {
				addEdge(lastCall, i, 1, DepMem)
			}
			lastStore = i
			loadsSinceStore = loadsSinceStore[:0]
			if isCall {
				lastCall = i
			}
		}
		if op == ir.OpEmit || isCall {
			if lastEmit >= 0 {
				addEdge(lastEmit, i, 1, DepOrder)
			}
			if lastCall >= 0 && lastCall != i {
				addEdge(lastCall, i, 1, DepOrder)
			}
			lastEmit = i
		}

		// Control ordering.
		if it.IsExit {
			if lastExit >= 0 {
				addEdge(lastExit, i, 1, DepControl)
			}
			lastExit = i
		} else if !it.Ins.CanSpeculate() {
			// Pinned below the previous exit; the pass below also pins
			// it above the next one.
			if lastExit >= 0 {
				addEdge(lastExit, i, 0, DepControl)
			}
		}
	}

	// Second pass: pin non-speculatable, non-exit instructions before
	// the next exit, and everything before the final item.
	nextExit := -1
	for i := n - 1; i >= 0; i-- {
		if items[i].IsExit {
			nextExit = i
			continue
		}
		if !items[i].Ins.CanSpeculate() && nextExit >= 0 {
			addEdge(i, nextExit, 0, DepControl)
		}
	}
	final := n - 1
	for i := 0; i < final; i++ {
		addEdge(i, final, 0, DepControl)
	}

	out := make([]DepEdge, 0, nEdges)
	for _, h := range heads {
		// Lists are most-recent-first; reverse each node's run so the
		// result keeps insertion order, exactly as the slice-per-node
		// representation produced it.
		start := len(out)
		for j := h; j >= 0; j = pool[j].next {
			out = append(out, pool[j].edge)
		}
		for i, j := start, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}
