package sched

import (
	"pathsched/internal/ir"
	"pathsched/internal/machine"
)

// This file is the single source of truth for scheduling dependences.
// The compactor's DDG (ddg.go) and the semantic checker
// (internal/check) both consume Dependences, so the dependence and
// latency rules cannot drift apart between the pass that uses them and
// the pass that verifies them.

// DepKind classifies a dependence edge, so consumers can distinguish
// semantic orderings (flow, memory, observable stream, control) from
// purely resource-conservative ones (a same-cycle WAW write pair is
// harmless to the sequential retirement model but the scheduler still
// separates it).
type DepKind uint8

const (
	// DepRAW is a true (flow) dependence: To reads a register From
	// writes, Lat = the producing opcode's latency.
	DepRAW DepKind = iota
	// DepWAR is an anti dependence: To overwrites a register From
	// reads. Lat 0 — program order within a cycle suffices.
	DepWAR
	// DepWAW is an output dependence between two writes of one
	// register.
	DepWAW
	// DepMem orders conflicting memory operations (and calls, which
	// may touch memory).
	DepMem
	// DepOrder keeps the observable output stream (emits, calls) in
	// program order.
	DepOrder
	// DepControl pins exits in program order and non-speculatable
	// instructions between their neighboring exits.
	DepControl
)

func (k DepKind) String() string {
	switch k {
	case DepRAW:
		return "RAW"
	case DepWAR:
		return "WAR"
	case DepWAW:
		return "WAW"
	case DepMem:
		return "mem"
	case DepOrder:
		return "order"
	case DepControl:
		return "control"
	}
	return "dep?"
}

// DepEdge is one scheduling constraint: To may issue no earlier than
// Lat cycles after From. Lat-0 edges permit sharing a cycle; program
// order (From < To) then decides execution order.
type DepEdge struct {
	From, To int
	Lat      int32
	Kind     DepKind
}

// DepItem is one instruction of a linear scheduling region, in the
// order dependences are computed over. IsExit marks instructions that
// can transfer control out of the region; LiveOut is the union of the
// live-in sets of an exit's targets — the registers whose values must
// be architecturally correct if that exit is taken (the exit
// conceptually "uses" them).
type DepItem struct {
	Ins     ir.Instr
	IsExit  bool
	LiveOut RegSet
}

// pooledEdge is one dependence edge in the per-source singly-linked
// edge lists (head indices into a shared backing slice). Dependence
// graphs are built once per block on every compile, and a per-node
// append-and-grow slice pattern dominated the cost of the whole
// computation.
type pooledEdge struct {
	edge DepEdge
	next int32 // index into pool, -1 ends the list
}

// useLink is one entry of the per-register "uses since last def" lists,
// pooled the same way as edges so tracking uses allocates nothing.
type useLink struct {
	idx  int32 // item index of the use
	next int32 // index into usePool, -1 ends the list
}

// depScratch holds the dense working state of one dependence
// computation so repeated computations (one per superblock per
// compile) reuse every table. Registers index two flat arrays: the
// architected file occupies [0, ir.PhysRegs) and the superblock's
// virtual window — renaming allocates virtuals contiguously per
// procedure — maps r to PhysRegs+(r-minVirt). That replaces the
// lastDef/lastUses maps of the original implementation with O(1)
// array loads on the hottest path of the whole compiler.
type depScratch struct {
	heads   []int32      // per-item edge list head (into pool)
	toFinal []int32      // per-item: pool index of its edge to the final item, -1 if none
	pool    []pooledEdge // edge backing storage
	lastDef []int32      // per dense register: last defining item, -1 if none
	useHead []int32      // per dense register: head of use list (into usePool), -1 if none
	usePool []useLink    // use-list backing storage
	uses    []ir.Reg     // flattened uses of every item
	useOff  []int32      // item i's uses are uses[useOff[i]:useOff[i+1]]
	loads   []int32      // loads since the last store
	out     []DepEdge    // output buffer, reused across calls
}

// Dependences computes the scheduling dependences over items:
//
//   - register RAW/WAR/WAW edges (renaming removes most WAR/WAW);
//   - conservative memory edges: stores conflict with every other
//     memory operation, loads may reorder among themselves;
//   - calls act as memory and output barriers;
//   - emits stay ordered among themselves (the observable stream);
//   - control edges: exits stay in program order, non-speculatable
//     instructions may not cross an exit in either direction, and
//     everything must issue no later than the final item.
//
// Speculatable instructions (ALU ops and loads) deliberately get no
// control edges: moving them above exits is precisely the speculation
// superblock scheduling exists for (§1, §2.3). All edges point forward
// (From < To), so item order is a topological order. Parallel edges
// between one (From, To) pair are merged, keeping the strongest
// (largest-latency) constraint and the kind that first established it.
//
// The result is grouped by From in increasing order, insertion order
// within each group — a contract the golden tests pin and the DDG
// builder relies on.
func Dependences(items []DepItem, mc machine.Config) []DepEdge {
	var s depScratch
	out := s.dependences(items, mc)
	// The scratch dies here; hand the caller its own copy-free slice.
	s.out = nil
	return out
}

// dependences is the scratch-backed engine behind Dependences. The
// returned slice aliases s.out and is valid until the next call on s.
func (s *depScratch) dependences(items []DepItem, mc machine.Config) []DepEdge {
	n := len(items)
	if n == 0 {
		return s.out[:0]
	}

	// Pass 0: flatten every item's uses (exits additionally "use" their
	// live-out set) and find the virtual register window so virtuals
	// index the dense tables contiguously after the architected file.
	uses := s.uses[:0]
	useOff := i32buf(&s.useOff, n+1)
	minVirt, maxVirt := ir.Reg(-1), ir.Reg(-1)
	note := func(r ir.Reg) {
		if r >= ir.VirtBase {
			if minVirt < 0 || r < minVirt {
				minVirt = r
			}
			if r > maxVirt {
				maxVirt = r
			}
		}
	}
	for i := range items {
		it := &items[i]
		useOff[i] = int32(len(uses))
		uses = it.Ins.Uses(uses)
		if it.IsExit {
			it.LiveOut.ForEach(func(r ir.Reg) { uses = append(uses, r) })
		}
		for _, u := range uses[useOff[i]:] {
			note(u)
		}
		if it.Ins.HasDst() {
			note(it.Ins.Dst)
		}
	}
	useOff[n] = int32(len(uses))
	s.uses = uses

	nRegs := ir.PhysRegs
	if minVirt >= 0 {
		nRegs += int(maxVirt-minVirt) + 1
	}
	regIndex := func(r ir.Reg) int32 {
		if r < ir.VirtBase {
			return int32(r)
		}
		return int32(ir.PhysRegs) + int32(r-minVirt)
	}

	heads := i32fill(&s.heads, n, -1)
	toFinal := i32fill(&s.toFinal, n, -1)
	lastDef := i32fill(&s.lastDef, nRegs, -1)
	useHead := i32fill(&s.useHead, nRegs, -1)
	pool := s.pool[:0]
	usePool := s.usePool[:0]
	loads := s.loads[:0]

	final := n - 1
	nEdges := 0
	addEdge := func(from, to int, lat int32, kind DepKind) {
		if from == to || from > to {
			return
		}
		if to == final {
			// Fast path: every item eventually gets an edge to the
			// final item, so the "everything before the final" pass —
			// and every earlier edge to the terminator — would turn
			// the dedupe scan quadratic on exit-heavy superblocks.
			// One slot per node makes it O(1).
			if j := toFinal[from]; j >= 0 {
				if lat > pool[j].edge.Lat {
					pool[j].edge.Lat = lat
					pool[j].edge.Kind = kind
				}
				return
			}
		} else {
			for j := heads[from]; j >= 0; j = pool[j].next {
				if pool[j].edge.To == to {
					if lat > pool[j].edge.Lat {
						pool[j].edge.Lat = lat
						pool[j].edge.Kind = kind
					}
					return
				}
			}
		}
		pool = append(pool, pooledEdge{
			edge: DepEdge{From: from, To: to, Lat: lat, Kind: kind},
			next: heads[from],
		})
		heads[from] = int32(len(pool) - 1)
		if to == final {
			toFinal[from] = heads[from]
		}
		nEdges++
	}

	lastStore := -1
	lastCall := -1
	lastEmit := -1
	lastExit := -1

	for i := range items {
		it := &items[i]
		op := it.Ins.Op

		// Register uses.
		for _, u := range uses[useOff[i]:useOff[i+1]] {
			ri := regIndex(u)
			if d := lastDef[ri]; d >= 0 {
				addEdge(int(d), i, mc.Latency(items[d].Ins.Op), DepRAW)
			}
			usePool = append(usePool, useLink{idx: int32(i), next: useHead[ri]})
			useHead[ri] = int32(len(usePool) - 1)
		}
		// Register def. The use list is most-recent-first; WAR edges
		// from distinct sources land in distinct per-From lists and
		// duplicates dedupe, so flush order does not change the output.
		if it.Ins.HasDst() {
			ri := regIndex(it.Ins.Dst)
			for j := useHead[ri]; j >= 0; j = usePool[j].next {
				addEdge(int(usePool[j].idx), i, 0, DepWAR) // may share a cycle, program order wins
			}
			if d := lastDef[ri]; d >= 0 {
				addEdge(int(d), i, 1, DepWAW) // strictly later cycle
			}
			lastDef[ri] = int32(i)
			useHead[ri] = -1
		}

		// Memory and side-effect ordering.
		isCall := op == ir.OpCall
		switch {
		case op == ir.OpLoad:
			if lastStore >= 0 {
				addEdge(lastStore, i, 1, DepMem)
			}
			if lastCall >= 0 {
				addEdge(lastCall, i, 1, DepMem)
			}
			loads = append(loads, int32(i))
		case op == ir.OpStore || isCall:
			if lastStore >= 0 {
				addEdge(lastStore, i, 1, DepMem)
			}
			for _, l := range loads {
				addEdge(int(l), i, 0, DepMem)
			}
			if lastCall >= 0 {
				addEdge(lastCall, i, 1, DepMem)
			}
			lastStore = i
			loads = loads[:0]
			if isCall {
				lastCall = i
			}
		}
		if op == ir.OpEmit || isCall {
			if lastEmit >= 0 {
				addEdge(lastEmit, i, 1, DepOrder)
			}
			if lastCall >= 0 && lastCall != i {
				addEdge(lastCall, i, 1, DepOrder)
			}
			lastEmit = i
		}

		// Control ordering.
		if it.IsExit {
			if lastExit >= 0 {
				addEdge(lastExit, i, 1, DepControl)
			}
			lastExit = i
		} else if !it.Ins.CanSpeculate() {
			// Pinned below the previous exit; the pass below also pins
			// it above the next one.
			if lastExit >= 0 {
				addEdge(lastExit, i, 0, DepControl)
			}
		}
	}

	// Second pass: pin non-speculatable, non-exit instructions before
	// the next exit, and everything before the final item.
	nextExit := -1
	for i := n - 1; i >= 0; i-- {
		if items[i].IsExit {
			nextExit = i
			continue
		}
		if !items[i].Ins.CanSpeculate() && nextExit >= 0 {
			addEdge(i, nextExit, 0, DepControl)
		}
	}
	for i := 0; i < final; i++ {
		addEdge(i, final, 0, DepControl)
	}

	s.pool = pool
	s.usePool = usePool
	s.loads = loads

	out := s.out[:0]
	if cap(out) < nEdges {
		out = make([]DepEdge, 0, nEdges)
	}
	for _, h := range heads {
		// Lists are most-recent-first; reverse each node's run so the
		// result keeps insertion order, exactly as the slice-per-node
		// representation produced it.
		start := len(out)
		for j := h; j >= 0; j = pool[j].next {
			out = append(out, pool[j].edge)
		}
		for i, j := start, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	s.out = out
	return out
}
