package sched

import (
	"fmt"

	"pathsched/internal/core"
	"pathsched/internal/ir"
)

// node is one instruction of a merged superblock with the metadata the
// renamer and scheduler need.
type node struct {
	ins  ir.Instr
	unit int // index of the constituent block this came from

	// isExit marks instructions that can transfer control out of the
	// superblock (they retain at least one real target). liveOut is
	// the union of the live-in sets of those targets: the registers
	// whose values must be architecturally correct if this exit is
	// taken.
	isExit  bool
	liveOut RegSet
}

// mergeSuperblock flattens sb's blocks into a single instruction
// sequence. Internal fall-through edges become ir.NoBlock slots;
// unconditional jumps (and degenerate branches) whose every target is
// internal disappear entirely — the instruction-count saving that
// branch target expansion and unrolling buy on real machines.
//
// The node list lives in the scratch, and instruction deep copies go
// through two bulk arenas (targets, call args) sized exactly up front:
// per-instruction Clone allocations dominated merge cost. The arenas
// escape into the installed program, so they are fresh per call — the
// exact capacities guarantee the appends never reallocate and earlier
// sub-slices stay valid.
func mergeSuperblock(p *ir.Proc, sb *core.Superblock, liveIn []RegSet, s *scratch) ([]node, error) {
	nTargets, nArgs := 0, 0
	for _, bid := range sb.Blocks {
		for j := range p.Block(bid).Instrs {
			ins := &p.Block(bid).Instrs[j]
			nTargets += len(ins.Targets)
			nArgs += len(ins.Args)
		}
	}
	targetArena := make([]ir.BlockID, 0, nTargets)
	argArena := make([]ir.Reg, 0, nArgs)
	clone := func(ins *ir.Instr) ir.Instr {
		out := *ins
		if ins.Targets != nil {
			start := len(targetArena)
			targetArena = append(targetArena, ins.Targets...)
			out.Targets = targetArena[start:len(targetArena):len(targetArena)]
		}
		if ins.Args != nil {
			start := len(argArena)
			argArena = append(argArena, ins.Args...)
			out.Args = argArena[start:len(argArena):len(argArena)]
		}
		return out
	}

	nodes := s.merged[:0]
	for i, bid := range sb.Blocks {
		b := p.Block(bid)
		lastBlock := i == len(sb.Blocks)-1
		var next ir.BlockID = ir.NoBlock
		if !lastBlock {
			next = sb.Blocks[i+1]
		}
		for j := range b.Instrs {
			ins := clone(&b.Instrs[j])
			isTerm := j == len(b.Instrs)-1
			if !isTerm {
				if ins.Op.IsTerminator() {
					return nil, fmt.Errorf("sched: %s/b%d has terminator mid-block before merging", p.Name, bid)
				}
				nodes = append(nodes, node{ins: ins, unit: i})
				continue
			}
			if lastBlock {
				n := node{ins: ins, unit: i, isExit: true}
				for _, t := range ins.Targets {
					n.liveOut.Union(liveIn[t])
				}
				nodes = append(nodes, n)
				continue
			}
			// Internal terminator: retarget fall-through slots.
			if ins.Op == ir.OpRet {
				return nil, fmt.Errorf("sched: %s/b%d: ret cannot appear mid-superblock", p.Name, bid)
			}
			real := 0
			for k, t := range ins.Targets {
				if t == next {
					ins.Targets[k] = ir.NoBlock
				} else {
					real++
				}
			}
			if real == 0 {
				if ins.Op == ir.OpCall {
					// The call still runs; it just continues in-block.
					nodes = append(nodes, node{ins: ins, unit: i})
					continue
				}
				// Pure fall-through (jmp to next, or a degenerate
				// branch): the merged code needs no instruction at all.
				continue
			}
			if ins.Op == ir.OpJmp || ins.Op == ir.OpCall {
				return nil, fmt.Errorf("sched: %s/b%d: %s to non-successor inside superblock", p.Name, bid, ins.Op)
			}
			if ins.Op == ir.OpBr {
				// A branch must keep exactly one fall-through slot; if
				// neither target was internal the superblock linkage is
				// broken.
				if ins.Targets[0] != ir.NoBlock && ins.Targets[1] != ir.NoBlock {
					return nil, fmt.Errorf("sched: %s/b%d: br has no internal successor", p.Name, bid)
				}
			}
			n := node{ins: ins, unit: i, isExit: true}
			for _, t := range ins.Targets {
				if t != ir.NoBlock {
					n.liveOut.Union(liveIn[t])
				}
			}
			nodes = append(nodes, n)
		}
	}
	s.merged = nodes
	if len(nodes) == 0 {
		return nil, fmt.Errorf("sched: superblock %d merged to nothing", sb.ID)
	}
	last := &nodes[len(nodes)-1]
	if !last.ins.Op.IsTerminator() {
		return nil, fmt.Errorf("sched: superblock %d does not end in a terminator", sb.ID)
	}
	return nodes, nil
}
