package sched

import (
	"math/rand"
	"reflect"
	"testing"

	"pathsched/internal/ir"
	"pathsched/internal/machine"
)

// randItems generates a random linear scheduling region mixing
// architectural and virtual registers, loads, stores, emits, and exit
// branches with random live-out sets — the full vocabulary the
// dependence rules discriminate on. The final item is always an exit
// (as in every real region).
func randItems(rng *rand.Rand, n int) []DepItem {
	items := make([]DepItem, 0, n)
	reg := func() ir.Reg {
		if rng.Intn(3) == 0 {
			return ir.VirtBase + ir.Reg(rng.Intn(12))
		}
		return ir.Reg(rng.Intn(16))
	}
	randLiveOut := func() RegSet {
		var s RegSet
		for k := 0; k < 4; k++ {
			s.Add(ir.Reg(rng.Intn(ir.PhysRegs)))
		}
		return s
	}
	for i := 0; i < n-1; i++ {
		var it DepItem
		switch rng.Intn(8) {
		case 0:
			it.Ins = ir.Load(reg(), reg(), int64(rng.Intn(8)))
			it.Ins.Spec = rng.Intn(2) == 0
		case 1:
			it.Ins = ir.Store(reg(), int64(rng.Intn(8)), reg())
		case 2:
			it.Ins = ir.Emit(reg())
		case 3:
			it.Ins = ir.Br(reg(), 1, 2)
			it.IsExit = true
			it.LiveOut = randLiveOut()
		case 4:
			it.Ins = ir.MovI(reg(), int64(rng.Intn(100)))
		case 5:
			it.Ins = ir.Mul(reg(), reg(), reg())
		default:
			it.Ins = ir.Add(reg(), reg(), reg())
		}
		items = append(items, it)
	}
	fin := DepItem{Ins: ir.Ret(reg()), IsExit: true, LiveOut: randLiveOut()}
	items = append(items, fin)
	return items
}

// randNodes is randItems reshaped into scheduler nodes, with units
// assigned in nondecreasing order as merging would.
func randNodes(rng *rand.Rand, n int) []node {
	items := randItems(rng, n)
	nodes := make([]node, len(items))
	unit := 0
	for i, it := range items {
		nodes[i] = node{ins: it.Ins, unit: unit, isExit: it.IsExit, liveOut: it.LiveOut}
		if it.IsExit {
			unit++
		}
	}
	return nodes
}

// The dense allocation-free dependence computation must produce the
// exact edge slice — same edges, same order — as the reference
// map-based implementation it replaced, including across scratch
// reuse (stale tables from a previous, larger region must not leak).
func TestDependencesFastMatchesReference(t *testing.T) {
	mc := machine.Default()
	var s depScratch // reused across all iterations, like one compile worker
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		n := 1 + rng.Intn(60)
		items := randItems(rng, n)
		got := s.dependences(items, mc)
		want := refDependences(items, mc)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d (n=%d): fast dependences diverge\n got: %v\nwant: %v", iter, n, got, want)
		}
	}
}

// The public wrapper must match too (it owns a fresh scratch).
func TestDependencesWrapperMatchesReference(t *testing.T) {
	mc := machine.Default()
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		items := randItems(rng, 1+rng.Intn(40))
		got, want := Dependences(items, mc), refDependences(items, mc)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: Dependences diverges from reference", iter)
		}
	}
}

// The incremental rank/bitset list scheduler must produce bit-identical
// cycle assignments and spans to the reference per-cycle-sort
// implementation, over the same graphs, with scratch reuse.
func TestListScheduleFastMatchesReference(t *testing.T) {
	mc := machine.Default()
	s := newScratch()
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 500; iter++ {
		nodes := randNodes(rng, 1+rng.Intn(60))
		gFast, edgesFast := buildDDG(nodes, mc, s)
		gRef, edgesRef := refBuildDDG(nodes, mc)
		if !reflect.DeepEqual(edgesFast, edgesRef) && (len(edgesFast) != 0 || len(edgesRef) != 0) {
			t.Fatalf("iter %d: buildDDG edges diverge", iter)
		}
		if !reflect.DeepEqual(gFast.npreds, gRef.npreds) || !reflect.DeepEqual(gFast.height, gRef.height) {
			t.Fatalf("iter %d: buildDDG npreds/height diverge", iter)
		}
		cyc, span, err := listSchedule(nodes, gFast, mc, s)
		refCyc, refSpan, refErr := refListSchedule(nodes, gRef, mc)
		if (err == nil) != (refErr == nil) {
			t.Fatalf("iter %d: error mismatch: %v vs %v", iter, err, refErr)
		}
		if err != nil {
			continue
		}
		if span != refSpan {
			t.Fatalf("iter %d: span %d vs reference %d", iter, span, refSpan)
		}
		for i := range cyc {
			if cyc[i] != refCyc[i] {
				t.Fatalf("iter %d: cycle[%d] = %d, reference %d", iter, i, cyc[i], refCyc[i])
			}
		}
	}
}

// ForEach must enumerate exactly the members, in increasing register
// order, across both bitset words and at the word boundaries.
func TestRegSetForEach(t *testing.T) {
	cases := [][]ir.Reg{
		{},
		{0},
		{63},
		{64},
		{127},
		{0, 63, 64, 127},
		{3, 5, 62, 65, 100},
	}
	rng := rand.New(rand.NewSource(17))
	for c := 0; c < 20; c++ {
		var regs []ir.Reg
		seen := map[ir.Reg]bool{}
		for k := rng.Intn(20); k > 0; k-- {
			r := ir.Reg(rng.Intn(ir.PhysRegs))
			if !seen[r] {
				seen[r] = true
				regs = append(regs, r)
			}
		}
		cases = append(cases, regs)
	}
	for ci, regs := range cases {
		var s RegSet
		want := map[ir.Reg]bool{}
		for _, r := range regs {
			s.Add(r)
			want[r] = true
		}
		var got []ir.Reg
		s.ForEach(func(r ir.Reg) { got = append(got, r) })
		if len(got) != len(want) {
			t.Fatalf("case %d: ForEach visited %d regs, want %d", ci, len(got), len(want))
		}
		for i, r := range got {
			if !want[r] {
				t.Fatalf("case %d: ForEach visited non-member r%d", ci, r)
			}
			if i > 0 && got[i-1] >= r {
				t.Fatalf("case %d: ForEach out of order: r%d before r%d", ci, got[i-1], r)
			}
		}
	}
}

// benchRegion builds one deterministic large scheduling region for the
// microbenchmarks — big enough that per-node costs dominate setup.
func benchRegion(n int) ([]DepItem, []node) {
	rng := rand.New(rand.NewSource(42))
	items := randItems(rng, n)
	nodes := make([]node, len(items))
	unit := 0
	for i, it := range items {
		nodes[i] = node{ins: it.Ins, unit: unit, isExit: it.IsExit, liveOut: it.LiveOut}
		if it.IsExit {
			unit++
		}
	}
	return items, nodes
}

func BenchmarkDependences(b *testing.B) {
	items, _ := benchRegion(256)
	mc := machine.Default()
	var s depScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.dependences(items, mc)
	}
}

func BenchmarkDependencesReference(b *testing.B) {
	items, _ := benchRegion(256)
	mc := machine.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refDependences(items, mc)
	}
}

func BenchmarkListSchedule(b *testing.B) {
	_, nodes := benchRegion(256)
	mc := machine.Default()
	s := newScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, _ := buildDDG(nodes, mc, s)
		if _, _, err := listSchedule(nodes, g, mc, s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkListScheduleReference(b *testing.B) {
	_, nodes := benchRegion(256)
	mc := machine.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, _ := refBuildDDG(nodes, mc)
		if _, _, err := refListSchedule(nodes, g, mc); err != nil {
			b.Fatal(err)
		}
	}
}
