package sched

import (
	"testing"

	"pathsched/internal/core"
	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/machine"
	"pathsched/internal/profile"
)

// Schedule-quality lower bounds: every compacted block's span must be
// at least (a) ceil(instructions / functional units), (b) the number
// of control operations (one per cycle), and (c) 1. These hold for any
// legal schedule, so violations indicate accounting bugs rather than
// miraculous compaction.
func TestScheduleLowerBounds(t *testing.T) {
	mc := machine.Default()
	for seed := int64(1); seed <= 8; seed++ {
		prog := randProg(seed)
		res := compile(t, prog, core.PathBased, Options{}, nil)
		for _, p := range res.Prog.Procs {
			for _, b := range p.Blocks {
				if b.Cycles == nil {
					continue
				}
				n := len(b.Instrs)
				branches := 0
				for i := range b.Instrs {
					if b.Instrs[i].Op.IsBranch() {
						branches++
					}
				}
				min := (n + mc.FuncUnits - 1) / mc.FuncUnits
				if branches > min {
					min = branches
				}
				if min < 1 {
					min = 1
				}
				if int(b.Span) < min {
					t.Fatalf("seed %d %s/b%d: span %d below lower bound %d (%d instrs, %d branches)",
						seed, p.Name, b.ID, b.Span, min, n, branches)
				}
			}
		}
	}
}

// Exits must appear in program order within the merged block, and
// their ExitUnits must be non-decreasing (a later exit leaves a later
// position in the trace).
func TestExitOrderAndUnitsMonotone(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		prog := randProg(seed)
		res := compile(t, prog, core.EdgeBased, Options{}, nil)
		for _, p := range res.Prog.Procs {
			for _, b := range p.Blocks {
				if b.ExitUnits == nil {
					continue
				}
				last := int32(0)
				for i := range b.Instrs {
					u := b.ExitUnits[i]
					if u == 0 {
						continue
					}
					if u < last {
						t.Fatalf("seed %d %s/b%d: exit units regress at %d (%d after %d)",
							seed, p.Name, b.ID, i, u, last)
					}
					last = u
					if u > b.SBSize {
						t.Fatalf("seed %d %s/b%d: exit unit %d beyond size %d",
							seed, p.Name, b.ID, u, b.SBSize)
					}
				}
			}
		}
	}
}

// The Figure 7 accounting invariant: blocks-executed per entry can
// never exceed the superblock size, and cycle counts with a trivial
// (always-hit) cache equal the no-cache counts.
func TestMeasurementInvariants(t *testing.T) {
	prog := hotTrace(300)
	res := compile(t, prog, core.PathBased, Options{}, nil)
	r, err := interp.Run(res.Prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.SBExecuted > r.SBSize {
		t.Fatalf("executed %d blocks over total size %d", r.SBExecuted, r.SBSize)
	}
	huge := machine.NewICache(machine.ICacheConfig{SizeBytes: 1 << 30, LineBytes: 32, Penalty: 6})
	huge.FetchRange(0, 1<<25) // pre-warm everything the program spans
	r2, err := interp.Run(res.Prog, interp.Config{Fetch: huge})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Cycles-r2.FetchStall != r.Cycles {
		t.Fatalf("cache-adjusted ideal %d != ideal %d", r2.Cycles-r2.FetchStall, r.Cycles)
	}
}

// Compaction must leave no unreachable blocks and keep block ids dense.
func TestCompactionCleansDeadBlocks(t *testing.T) {
	prog := hotTrace(200)
	res := compile(t, prog, core.PathBased, Options{}, nil)
	for _, p := range res.Prog.Procs {
		g := ir.NewCFG(p)
		for _, b := range p.Blocks {
			if !g.Reachable(b.ID) {
				t.Fatalf("%s/b%d unreachable after compaction", p.Name, b.ID)
			}
		}
	}
}

// A compile with every optimization disabled must still be correct.
func TestCompactionAllAblationsStillCorrect(t *testing.T) {
	prog := randProg(3)
	orig, err := interp.Run(prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{DisableRenaming: true, DisableDCE: true, DisableVN: true}
	res := compile(t, prog, core.PathBased, opts, nil)
	got, err := interp.Run(res.Prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustMatch(t, orig, got, "fully ablated")
}

// Profiles gathered on one run drive formation of a *different* build
// of the same CFG (the pipeline's profile-transfer property); spot
// check it at the sched level too.
func TestProfileTransferAcrossBuilds(t *testing.T) {
	train := hotTrace(100)
	test := hotTrace(700)
	ep := profile.NewEdgeProfiler(train)
	pp := profile.NewPathProfiler(train, profile.PathConfig{})
	if _, err := interp.Run(train, interp.Config{Observer: profile.Multi{ep, pp}}); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Method = core.PathBased
	cfg.Edge, cfg.Path = ep.Profile(), pp.Profile()
	cfg.MinExecFreq = 2
	formed, err := core.Form(test, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Compact(formed, Options{}); err != nil {
		t.Fatal(err)
	}
	orig, _ := interp.Run(hotTrace(700), interp.Config{})
	got, err := interp.Run(formed.Prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustMatch(t, orig, got, "profile transfer")
	if got.Cycles >= orig.Cycles {
		t.Fatalf("transferred-profile compile did not help: %d vs %d", got.Cycles, orig.Cycles)
	}
}
