package sched

import "pathsched/internal/ir"

// scratch owns every buffer the compaction hot path reuses across
// superblocks, so compiling a procedure allocates almost nothing per
// superblock: the dependence tables, the DDG, the scheduler's ready
// structure, the rename/VN/DCE working state, and the merge arenas all
// live here. One scratch belongs to exactly one compaction worker
// goroutine at a time (forEachProc hands each worker its own), and no
// memory reachable from a scratch may outlive the superblock it was
// used for unless the code explicitly copies it out (install and the
// dependence recorder do).
//
// Ownership rules (DESIGN.md §12):
//
//   - mergeSuperblock writes s.merged and bulk target/arg arenas; the
//     arenas escape into the installed program and are therefore
//     allocated fresh per merge, but the node slice is reused.
//   - rename writes s.renamed (it can grow the node list with repair
//     copies, so it cannot run in place); valueNumber and
//     eliminateDeadDefs filter their input in place.
//   - buildDDG/listSchedule/scheduleNodes use the remaining buffers;
//     the only per-superblock allocations left are the slices that
//     escape into the program (head.Instrs, Cycles, ExitUnits, Units)
//     and, when recording is on, the recorded dependence edges.
type scratch struct {
	dep depScratch

	merged   []node
	renamed  []node
	outNodes []node

	// rename state, dense over the architected file (rename only ever
	// keys by architectural registers; -1 means "no entry").
	cur      [ir.PhysRegs]ir.Reg
	repaired [ir.PhysRegs]ir.Reg

	// value-numbering tables, reused via clear().
	vnTable   map[vnKey]ir.Reg
	vnReplace map[ir.Reg]ir.Reg

	// DCE liveness bitset over the dense register window, plus a uses
	// buffer shared by DCE's scans.
	dceUsed []uint64
	usesBuf []ir.Reg

	// DDG assembly.
	items    []DepItem
	g        ddg
	flatSucc []edge

	// listSchedule state.
	earliest []int32
	npreds   []int32
	hcnt     []int32
	perm     []int32
	rankOf   []int32
	ready    []uint64
	cycles   []int32

	// linearization state.
	ccnt     []int32
	order    []int32
	finalPos []int32
	exits    []int32

	// exact-search state (exact.go). exBest holds the incumbent
	// schedule and survives the listSchedule call that seeds it; the
	// memo map is reused via clear() like the VN tables.
	exBest  []int32
	exCyc   []int32
	exEst   []int32
	exNpred []int32
	exUndo  []estUndo
	exMemo  map[exactKey]int32
}

func newScratch() *scratch {
	return &scratch{
		vnTable:   map[vnKey]ir.Reg{},
		vnReplace: map[ir.Reg]ir.Reg{},
	}
}

// i32buf returns a length-n slice reusing buf's capacity. Contents are
// undefined; callers overwrite every element.
func i32buf(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// i32zero is i32buf with every element reset to zero.
func i32zero(buf *[]int32, n int) []int32 {
	s := i32buf(buf, n)
	for i := range s {
		s[i] = 0
	}
	return s
}

// i32fill is i32buf with every element reset to v.
func i32fill(buf *[]int32, n int, v int32) []int32 {
	s := i32buf(buf, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// u64zero returns a zeroed length-n uint64 slice reusing buf.
func u64zero(buf *[]uint64, n int) []uint64 {
	if cap(*buf) < n {
		*buf = make([]uint64, n)
	}
	s := (*buf)[:n]
	*buf = s
	for i := range s {
		s[i] = 0
	}
	return s
}
