package sched

import (
	"math/rand"
	"testing"

	"pathsched/internal/core"
	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/machine"
	"pathsched/internal/profile"
)

// compile profiles, forms, and compacts prog with the given method.
func compile(t *testing.T, prog *ir.Program, method core.Method, opts Options, mut func(*core.Config)) *core.Result {
	t.Helper()
	ep := profile.NewEdgeProfiler(prog)
	pp := profile.NewPathProfiler(prog, profile.PathConfig{})
	if _, err := interp.Run(prog, interp.Config{Observer: profile.Multi{ep, pp}}); err != nil {
		t.Fatalf("training run: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.Method = method
	cfg.Edge, cfg.Path = ep.Profile(), pp.Profile()
	cfg.MinExecFreq = 2
	if mut != nil {
		mut(&cfg)
	}
	res, err := core.Form(prog, cfg)
	if err != nil {
		t.Fatalf("Form: %v", err)
	}
	if err := Compact(res, opts); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	return res
}

func mustMatch(t *testing.T, a, b *interp.Result, label string) {
	t.Helper()
	if a.Ret != b.Ret {
		t.Fatalf("%s: ret %d vs %d", label, a.Ret, b.Ret)
	}
	if len(a.Output) != len(b.Output) {
		t.Fatalf("%s: output len %d vs %d", label, len(a.Output), len(b.Output))
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			t.Fatalf("%s: output[%d] %d vs %d", label, i, a.Output[i], b.Output[i])
		}
	}
}

// hotTrace builds a loop whose body is a long dependence-light block
// chain — ideal superblock material.
func hotTrace(n int64) *ir.Program {
	bd := ir.NewBuilder("hot", 64)
	pb := bd.Proc("main")
	entry, head, b1, b2, rare, latch, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, s, c, t1, t2, t3, t4 = 1, 2, 3, 4, 5, 6, 7
	entry.Add(ir.MovI(i, 0), ir.MovI(s, 0))
	entry.Jmp(head.ID())
	head.Add(ir.CmpLTI(c, i, n))
	head.Br(c, b1.ID(), exit.ID())
	b1.Add(
		ir.AddI(t1, i, 3), ir.MulI(t2, i, 5), ir.XorI(t3, i, 9), ir.AndI(t4, i, 12),
		ir.AndI(c, i, 63), ir.CmpEQI(c, c, 63),
	)
	b1.Br(c, rare.ID(), b2.ID())
	b2.Add(ir.Add(s, s, t1), ir.Add(s, s, t2), ir.Add(s, s, t3), ir.Add(s, s, t4))
	b2.Jmp(latch.ID())
	rare.Add(ir.AddI(s, s, 1000))
	rare.Jmp(latch.ID())
	latch.Add(ir.AddI(i, i, 1))
	latch.Jmp(head.ID())
	exit.Add(ir.Emit(s))
	exit.Ret(s)
	return bd.Finish()
}

func TestCompactPreservesSemantics(t *testing.T) {
	prog := hotTrace(500)
	orig, err := interp.Run(prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []core.Method{core.EdgeBased, core.PathBased} {
		res := compile(t, prog, method, Options{}, nil)
		got, err := interp.Run(res.Prog, interp.Config{})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		mustMatch(t, orig, got, method.String())
		if got.Cycles >= got.DynInstrs {
			t.Fatalf("%v: cycles %d not below instrs %d — no ILP extracted",
				method, got.Cycles, got.DynInstrs)
		}
	}
}

func TestSuperblocksBeatBasicBlocks(t *testing.T) {
	prog := hotTrace(2000)
	base := ir.CloneProgram(prog)
	if err := CompactBasicBlocks(base, Options{}); err != nil {
		t.Fatal(err)
	}
	baseRes, err := interp.Run(base, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := compile(t, prog, core.PathBased, Options{}, nil)
	sbRes, err := interp.Run(res.Prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustMatch(t, baseRes, sbRes, "bb-vs-sb")
	if sbRes.Cycles >= baseRes.Cycles {
		t.Fatalf("superblock scheduling (%d cycles) must beat basic-block scheduling (%d)",
			sbRes.Cycles, baseRes.Cycles)
	}
}

func TestCompactBasicBlocksAnnotatesEverything(t *testing.T) {
	prog := hotTrace(10)
	if err := CompactBasicBlocks(prog, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			if b.Cycles == nil {
				t.Fatalf("%s/b%d not scheduled", p.Name, b.ID)
			}
			if b.SBSize != 1 {
				t.Fatalf("%s/b%d SBSize = %d, want 1", p.Name, b.ID, b.SBSize)
			}
		}
	}
	if _, err := interp.Run(prog, interp.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceLimitsRespected(t *testing.T) {
	prog := hotTrace(100)
	res := compile(t, prog, core.PathBased, Options{}, nil)
	mc := machine.Default()
	for _, p := range res.Prog.Procs {
		for _, b := range p.Blocks {
			if b.Cycles == nil {
				continue
			}
			ops := map[int32]int{}
			brs := map[int32]int{}
			for i := range b.Instrs {
				cyc := b.Cycles[i]
				ops[cyc]++
				if b.Instrs[i].Op.IsBranch() {
					brs[cyc]++
				}
			}
			for cyc, n := range ops {
				if n > mc.FuncUnits {
					t.Fatalf("%s/b%d cycle %d has %d ops", p.Name, b.ID, cyc, n)
				}
			}
			for cyc, n := range brs {
				if n > mc.BranchPerCycle {
					t.Fatalf("%s/b%d cycle %d has %d branches", p.Name, b.ID, cyc, n)
				}
			}
		}
	}
}

func TestTrueDependenceLatencyRespected(t *testing.T) {
	prog := hotTrace(100)
	opts := Options{Machine: machine.Config{FuncUnits: 8, BranchPerCycle: 1, Realistic: true}}
	res := compile(t, prog, core.PathBased, opts, nil)
	// In every scheduled block, a use must issue at least latency
	// cycles after the most recent def of its source (in linear order).
	for _, p := range res.Prog.Procs {
		for _, b := range p.Blocks {
			if b.Cycles == nil {
				continue
			}
			lastDef := map[ir.Reg]int{}
			var buf []ir.Reg
			for i := range b.Instrs {
				ins := &b.Instrs[i]
				buf = ins.Uses(buf[:0])
				for _, u := range buf {
					if d, ok := lastDef[u]; ok {
						need := b.Cycles[d] + opts.Machine.Latency(b.Instrs[d].Op)
						if b.Cycles[i] < need {
							t.Fatalf("%s/b%d: instr %d uses %v at cycle %d; def at %d needs %d",
								p.Name, b.ID, i, u, b.Cycles[i], b.Cycles[d], need)
						}
					}
				}
				if ins.HasDst() {
					lastDef[ins.Dst] = i
				}
			}
		}
	}
	// Equivalence still holds with realistic latencies.
	orig, _ := interp.Run(hotTrace(100), interp.Config{})
	got, err := interp.Run(res.Prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustMatch(t, orig, got, "realistic")
}

func TestSpeculativeLoadsMarked(t *testing.T) {
	// A hot path loads from a pointer only valid on that path; the
	// early exit guards the load. Superblock scheduling hoists the load
	// above the exit, so it must be marked speculative and the program
	// must still run (the non-speculative version would fault).
	bd := ir.NewBuilder("specload", 32)
	bd.Data(4, 7, 8, 9)
	pb := bd.Proc("main")
	entry, head, chk, ld, latch, skip, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, s, c, ptr, v = 1, 2, 3, 4, 5
	entry.Add(ir.MovI(i, 0), ir.MovI(s, 0))
	entry.Jmp(head.ID())
	head.Add(ir.CmpLTI(c, i, 200))
	head.Br(c, chk.ID(), exit.ID())
	// ptr is in range except every 64th iteration, when it is wild.
	chk.Add(ir.AndI(c, i, 63), ir.CmpEQI(c, c, 63), ir.MovI(ptr, 4))
	chk.Br(c, skip.ID(), ld.ID())
	ld.Add(ir.Load(v, ptr, 1), ir.Add(s, s, v))
	ld.Jmp(latch.ID())
	skip.Add(ir.MovI(ptr, 1_000_000), ir.AddI(s, s, 1)) // wild pointer, no load
	skip.Jmp(latch.ID())
	latch.Add(ir.AddI(i, i, 1))
	latch.Jmp(head.ID())
	exit.Add(ir.Emit(s))
	exit.Ret(s)
	prog := bd.Finish()

	orig, err := interp.Run(prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := compile(t, prog, core.PathBased, Options{}, nil)
	got, err := interp.Run(res.Prog, interp.Config{})
	if err != nil {
		t.Fatalf("scheduled program faulted: %v", err)
	}
	mustMatch(t, orig, got, "specload")
	found := false
	for _, p := range res.Prog.Procs {
		for _, b := range p.Blocks {
			for _, ins := range b.Instrs {
				if ins.Op == ir.OpLoad && ins.Spec {
					found = true
				}
			}
		}
	}
	if !found {
		t.Log("note: no load was hoisted above an exit in this schedule")
	}
}

func TestRenamingReducesCycles(t *testing.T) {
	// The loop body reuses one register serially; renaming breaks the
	// false dependences and shortens the schedule.
	bd := ir.NewBuilder("renamewin", 16)
	pb := bd.Proc("main")
	entry, head, body, latch, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, s, c, t1 = 1, 2, 3, 4
	entry.Add(ir.MovI(i, 0), ir.MovI(s, 0))
	entry.Jmp(head.ID())
	head.Add(ir.CmpLTI(c, i, 400))
	head.Br(c, body.ID(), exit.ID())
	body.Add(
		ir.AddI(t1, i, 1), ir.Add(s, s, t1), // t1 reused serially:
		ir.AddI(t1, i, 2), ir.Add(s, s, t1), // WAR/WAW chains without
		ir.AddI(t1, i, 3), ir.Add(s, s, t1), // renaming
		ir.AddI(t1, i, 4), ir.Add(s, s, t1),
	)
	body.Jmp(latch.ID())
	latch.Add(ir.AddI(i, i, 1))
	latch.Jmp(head.ID())
	exit.Add(ir.Emit(s))
	exit.Ret(s)
	prog := bd.Finish()

	withRen := compile(t, prog, core.PathBased, Options{}, nil)
	withoutRen := compile(t, prog, core.PathBased, Options{DisableRenaming: true}, nil)
	r1, err := interp.Run(withRen.Prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := interp.Run(withoutRen.Prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustMatch(t, r1, r2, "renaming ablation")
	if r1.Cycles >= r2.Cycles {
		t.Fatalf("renaming must shorten schedules: %d vs %d cycles", r1.Cycles, r2.Cycles)
	}
}

func TestDeadCodeEliminated(t *testing.T) {
	nodes := []node{
		{ins: ir.MovI(ir.VirtBase+0, 1)}, // dead
		{ins: ir.MovI(ir.VirtBase+1, 2)}, // live
		{ins: ir.Mov(5, ir.VirtBase+1)},  // uses v1
		{ins: ir.Ret(5), isExit: true},   // terminator
	}
	out := eliminateDeadDefs(nodes, newScratch())
	if len(out) != 3 {
		t.Fatalf("DCE kept %d nodes, want 3", len(out))
	}
}

func TestLiveness(t *testing.T) {
	bd := ir.NewBuilder("live", 8)
	pb := bd.Proc("main")
	a, b, c := pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	a.Add(ir.MovI(1, 5), ir.MovI(2, 6))
	a.Br(1, b.ID(), c.ID())
	b.Add(ir.Add(3, 1, 2)) // uses r1, r2
	b.Ret(3)
	c.Ret(2) // uses r2 only
	prog := bd.Finish()
	li := LiveIn(prog.Proc(0))
	if !li[1].Has(1) || !li[1].Has(2) {
		t.Fatal("block b must have r1, r2 live-in")
	}
	if li[2].Has(1) || !li[2].Has(2) {
		t.Fatal("block c must have only r2 live-in")
	}
	if li[0].Has(1) || li[0].Has(2) {
		t.Fatal("entry defines r1, r2 before use; they are not live-in")
	}
}

func TestRegSetOps(t *testing.T) {
	var s RegSet
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(127)
	s.Add(ir.VirtBase + 5) // ignored
	var got []ir.Reg
	s.ForEach(func(r ir.Reg) { got = append(got, r) })
	want := []ir.Reg{0, 63, 64, 127}
	if len(got) != len(want) {
		t.Fatalf("ForEach = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach = %v, want %v", got, want)
		}
	}
	s.Remove(63)
	if s.Has(63) {
		t.Fatal("Remove failed")
	}
	if s.Has(ir.VirtBase + 5) {
		t.Fatal("virtuals are never members")
	}
}

// randProg mirrors the structured random generator from core's tests;
// compaction must preserve semantics on top of every formation scheme.
func randProg(seed int64) *ir.Program {
	rng := rand.New(rand.NewSource(seed))
	bd := ir.NewBuilder("rand", 256)
	vals := make([]int64, 64)
	for i := range vals {
		vals[i] = int64(rng.Intn(256))
	}
	bd.Data(0, vals...)

	helper := bd.Proc("helper")
	hEntry, hThen, hElse, hOut := helper.NewBlock(), helper.NewBlock(), helper.NewBlock(), helper.NewBlock()
	hEntry.Add(ir.AndI(8, 1, 1))
	hEntry.Br(8, hThen.ID(), hElse.ID())
	hThen.Add(ir.AddI(0, 1, 3))
	hThen.Jmp(hOut.ID())
	hElse.Add(ir.MulI(0, 1, 2))
	hElse.Jmp(hOut.ID())
	hOut.Ret(0)

	pb := bd.Proc("main")
	const i, j, s, c, tmp, addr = 1, 2, 3, 4, 5, 6
	entry := pb.NewBlock()
	oh, obody := pb.NewBlock(), pb.NewBlock()
	exit := pb.NewBlock()
	entry.Add(ir.MovI(i, 0), ir.MovI(s, 0))
	entry.Jmp(oh.ID())
	outerN := int64(10 + rng.Intn(40))
	oh.Add(ir.CmpLTI(c, i, outerN))
	oh.Br(c, obody.ID(), exit.ID())
	cur := obody
	nd := 2 + rng.Intn(4)
	for d := 0; d < nd; d++ {
		thenB, elseB, join := pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
		mask := int64(1) << uint(rng.Intn(4))
		cur.Add(
			ir.AndI(tmp, i, 63),
			ir.AddI(addr, tmp, 0),
			ir.Load(tmp, addr, 0),
			ir.AndI(tmp, tmp, mask),
		)
		cur.Br(tmp, thenB.ID(), elseB.ID())
		thenB.Add(ir.AddI(s, s, int64(d+1)), ir.Store(addr, 0, s))
		thenB.Jmp(join.ID())
		elseB.Add(ir.XorI(s, s, int64(d+7)))
		elseB.Jmp(join.ID())
		cur = join
	}
	innerN := int64(1 + rng.Intn(5))
	ih := pb.NewBlock()
	cur.Add(ir.MovI(j, 0))
	cur.Jmp(ih.ID())
	after := pb.NewBlock()
	ih.Add(ir.AddI(s, s, 1), ir.AddI(j, j, 1), ir.CmpLTI(c, j, innerN))
	ih.Br(c, ih.ID(), after.ID())
	latch := pb.NewBlock()
	after.Call(s, helper.ID(), latch.ID(), s)
	latch.Add(ir.AddI(i, i, 1), ir.Emit(s))
	latch.Jmp(oh.ID())
	exit.Add(ir.Emit(s))
	exit.Ret(s)
	return bd.Finish()
}

func TestFullPipelineSemanticsOnRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		prog := randProg(seed)
		orig, err := interp.Run(prog, interp.Config{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Baseline.
		base := ir.CloneProgram(prog)
		if err := CompactBasicBlocks(base, Options{}); err != nil {
			t.Fatalf("seed %d bb: %v", seed, err)
		}
		got, err := interp.Run(base, interp.Config{})
		if err != nil {
			t.Fatalf("seed %d bb run: %v", seed, err)
		}
		mustMatch(t, orig, got, "bb")
		// Every formation scheme.
		type scheme struct {
			method core.Method
			mut    func(*core.Config)
		}
		for _, sc := range []scheme{
			{core.EdgeBased, nil},
			{core.EdgeBased, func(c *core.Config) { c.UnrollFactor = 16 }},
			{core.PathBased, nil},
			{core.PathBased, func(c *core.Config) { c.StopNonLoopAtFirstHead = true }},
		} {
			res := compile(t, prog, sc.method, Options{}, sc.mut)
			got, err := interp.Run(res.Prog, interp.Config{})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, sc.method, err)
			}
			mustMatch(t, orig, got, "scheme")
		}
	}
}
