package sched

import (
	"errors"
	"math/rand"
	"testing"

	"pathsched/internal/core"
	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/machine"
)

// verifyRegionSchedule asserts cycles is a legal schedule of nodes over
// g: every dependence edge satisfied (latency-0 edges may share a
// cycle), per-cycle issue width and branch slots respected, and span
// equal to the last cycle plus one. This is the scheduler-level form of
// the rules check.Schedules enforces on installed blocks.
func verifyRegionSchedule(t *testing.T, nodes []node, g *ddg, mc machine.Config, cycles []int32, span int32) {
	t.Helper()
	n := len(nodes)
	maxC := int32(-1)
	for i := 0; i < n; i++ {
		if cycles[i] < 0 {
			t.Fatalf("node %d unscheduled (cycle %d)", i, cycles[i])
		}
		if cycles[i] > maxC {
			maxC = cycles[i]
		}
		for _, e := range g.succs[i] {
			if cycles[e.to] < cycles[i]+e.lat {
				t.Fatalf("edge %d->%d lat %d violated: cycles %d vs %d", i, e.to, e.lat, cycles[i], cycles[e.to])
			}
		}
	}
	if span != maxC+1 {
		t.Fatalf("span %d, last cycle %d", span, maxC)
	}
	slots := make([]int, span)
	brs := make([]int, span)
	for i := 0; i < n; i++ {
		slots[cycles[i]]++
		if nodes[i].ins.Op.IsBranch() {
			brs[cycles[i]]++
		}
	}
	for c := int32(0); c < span; c++ {
		if slots[c] > mc.FuncUnits {
			t.Fatalf("cycle %d issues %d ops, machine has %d units", c, slots[c], mc.FuncUnits)
		}
		if brs[c] > mc.BranchPerCycle {
			t.Fatalf("cycle %d issues %d branches, machine allows %d", c, brs[c], mc.BranchPerCycle)
		}
	}
}

// refuteSpan tries to find a legal schedule strictly shorter than span
// by exhaustive DFS (assigning cycles in node-index order; all edges
// point forward, so predecessors are always assigned first). It is an
// independent algorithm from the branch-and-bound search — no maximal
// cycle sets, no bounds beyond the span target — so agreement is
// meaningful. Returns true if a shorter schedule exists, false if
// provably none does, and skips (via the ok flag) past the step cap.
func refuteSpan(nodes []node, g *ddg, mc machine.Config, span int32, cap int64) (shorter, ok bool) {
	n := len(nodes)
	if span <= 1 {
		return false, true // nothing is shorter than one cycle
	}
	limit := span - 2 // last usable cycle for a span-1 schedule
	cyc := make([]int32, n)
	slots := make([]int32, span)
	brs := make([]int32, span)
	steps := int64(0)
	var dfs func(i int) bool
	dfs = func(i int) bool {
		if i == n {
			return true
		}
		est := int32(0)
		for j := 0; j < i; j++ {
			for _, e := range g.succs[j] {
				if e.to == i {
					if v := cyc[j] + e.lat; v > est {
						est = v
					}
				}
			}
		}
		isBr := nodes[i].ins.Op.IsBranch()
		for c := est; c <= limit; c++ {
			steps++
			if steps > cap {
				return false
			}
			if slots[c] >= int32(mc.FuncUnits) || (isBr && brs[c] >= int32(mc.BranchPerCycle)) {
				continue
			}
			cyc[i] = c
			slots[c]++
			if isBr {
				brs[c]++
			}
			if dfs(i + 1) {
				return true
			}
			slots[c]--
			if isBr {
				brs[c]--
			}
		}
		return false
	}
	found := dfs(0)
	return found, steps <= cap
}

// The oracle property (500 random regions, both machine models): the
// exact span never exceeds the list span, the result is a legal
// schedule, a proved result meets the lower-bound certificate, and —
// checked by an independent exhaustive search on small regions — a
// proved span really is minimal.
func TestExactOracleRandomRegions(t *testing.T) {
	s := newScratch() // reused across regions, like one compile worker
	cfg := ExactConfig{Enabled: true, NodeBudget: 24, SearchBudget: 2_000_000}.Normalized()
	refuted, verified := 0, 0
	for _, mc := range []machine.Config{machine.Default(), {FuncUnits: 8, BranchPerCycle: 1, Realistic: true}} {
		rng := rand.New(rand.NewSource(42))
		for iter := 0; iter < 250; iter++ {
			n := 1 + rng.Intn(24)
			nodes := randNodes(rng, n)
			g, _ := buildDDG(nodes, mc, s)
			cycles, span, listSpan, status, err := exactSchedule(nodes, g, mc, cfg, s)
			if err != nil {
				t.Fatalf("iter %d (n=%d): %v", iter, n, err)
			}
			if span > listSpan {
				t.Fatalf("iter %d (n=%d): exact span %d exceeds list span %d", iter, n, span, listSpan)
			}
			if status == exactBoundedNodes {
				t.Fatalf("iter %d: n=%d within budget %d reported as node-bounded", iter, n, cfg.NodeBudget)
			}
			verifyRegionSchedule(t, nodes, g, mc, cycles, span)
			// Lower-bound certificate: no schedule beats the critical
			// path or the issue-width floor.
			lb := (int32(n) + int32(mc.FuncUnits) - 1) / int32(mc.FuncUnits)
			for i := 0; i < n; i++ {
				if h := g.height[i] + 1; h > lb {
					lb = h
				}
			}
			if span < lb {
				t.Fatalf("iter %d (n=%d): span %d below lower bound %d — bound or search is wrong", iter, n, span, lb)
			}
			if status == exactProved && n <= 12 {
				shorter, ok := refuteSpan(nodes, g, mc, span, 4_000_000)
				if !ok {
					continue // refutation search hit its step cap; skip
				}
				verified++
				if shorter {
					refuted++
					t.Errorf("iter %d (n=%d): proved span %d but exhaustive search found shorter", iter, n, span)
				}
			}
		}
	}
	if verified < 100 {
		t.Fatalf("only %d proved regions cross-checked exhaustively; generator or budgets drifted", verified)
	}
	if refuted > 0 {
		t.Fatalf("%d proved spans refuted", refuted)
	}
}

// A cyclic dependence graph must surface as the structured *CycleError
// immediately — the incumbent list schedule runs first and fails fast —
// never as a search that spins against its budget.
func TestExactCycleErrorRegression(t *testing.T) {
	nodes := []node{
		{ins: ir.MovI(8, 1)},
		{ins: ir.MovI(9, 2)},
		{ins: ir.Ret(8)},
	}
	g := &ddg{
		succs:  [][]edge{{{to: 1, lat: 1}}, {{to: 0, lat: 1}}, nil},
		npreds: []int{1, 1, 0},
		height: []int32{1, 1, 0},
	}
	// A one-step search budget: if the search ran at all before the
	// cycle check, it would return Bounded instead of the error.
	cfg := ExactConfig{Enabled: true, SearchBudget: 1}.Normalized()
	_, _, _, _, err := exactSchedule(nodes, g, machine.Default(), cfg, newScratch())
	if err == nil {
		t.Fatal("exactSchedule on a cyclic DDG returned no error")
	}
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("got %T (%v), want *CycleError", err, err)
	}
	if ce.Remaining != 2 {
		t.Errorf("Remaining = %d, want 2", ce.Remaining)
	}
}

// Cutoff boundaries: a region exactly at the node budget is searched,
// one above it falls back to the list schedule (cycle-for-cycle) with
// the Bounded marker, and an exhausted search budget keeps the
// incumbent while marking the region bounded too.
func TestExactCutoffBoundary(t *testing.T) {
	mc := machine.Default()
	rng := rand.New(rand.NewSource(99))
	s := newScratch()
	for iter := 0; iter < 50; iter++ {
		n := 4 + rng.Intn(20)
		nodes := randNodes(rng, n)
		g, _ := buildDDG(nodes, mc, s)

		listRef, listSpanRef, err := listSchedule(nodes, g, mc, newScratch())
		if err != nil {
			t.Fatal(err)
		}
		listCopy := append([]int32(nil), listRef...)

		// At the budget: the search runs (never node-bounded).
		at := ExactConfig{Enabled: true, NodeBudget: n, SearchBudget: 1_000_000}.Normalized()
		_, _, _, status, err := exactSchedule(nodes, g, mc, at, s)
		if err != nil {
			t.Fatal(err)
		}
		if status == exactBoundedNodes {
			t.Fatalf("iter %d: n=%d at budget %d was node-bounded", iter, n, at.NodeBudget)
		}

		// One below: the fallback is the list schedule, bit for bit.
		below := ExactConfig{Enabled: true, NodeBudget: n - 1, SearchBudget: 1_000_000}.Normalized()
		if below.NodeBudget != n-1 {
			t.Fatalf("budget %d normalized away", n-1)
		}
		cycles, span, listSpan, status, err := exactSchedule(nodes, g, mc, below, s)
		if err != nil {
			t.Fatal(err)
		}
		if status != exactBoundedNodes {
			t.Fatalf("iter %d: n=%d above budget %d not node-bounded (status %d)", iter, n, below.NodeBudget, status)
		}
		if span != listSpanRef || listSpan != listSpanRef {
			t.Fatalf("iter %d: bounded span %d/%d, list %d", iter, span, listSpan, listSpanRef)
		}
		for i := range listCopy {
			if cycles[i] != listCopy[i] {
				t.Fatalf("iter %d: bounded fallback diverges from list schedule at node %d", iter, i)
			}
		}

		// Starved search budget: bounded (unless proved before the first
		// step — the certificate short-circuit), incumbent still legal.
		tiny := ExactConfig{Enabled: true, NodeBudget: n, SearchBudget: 1}.Normalized()
		cycles, span, _, status, err = exactSchedule(nodes, g, mc, tiny, s)
		if err != nil {
			t.Fatal(err)
		}
		if status != exactProved && status != exactBoundedSearch {
			t.Fatalf("iter %d: starved search status %d", iter, status)
		}
		verifyRegionSchedule(t, nodes, g, mc, cycles, span)
	}
}

// GapStats bookkeeping at the region level: proved/bounded/improved
// counters partition the blocks, and sums cover proved regions only.
func TestExactGapStatsAccounting(t *testing.T) {
	var gs GapStats
	gs.add(gapRecord{valid: true, status: exactProved, listSpan: 10, exactSpan: 9})
	gs.add(gapRecord{valid: true, status: exactProved, listSpan: 7, exactSpan: 7})
	gs.add(gapRecord{valid: true, status: exactBoundedNodes, listSpan: 20, exactSpan: 20})
	gs.add(gapRecord{valid: true, status: exactBoundedSearch, listSpan: 20, exactSpan: 19})
	gs.add(gapRecord{}) // invalid: never scheduled (error path)
	want := GapStats{Blocks: 4, Proved: 2, Bounded: 2, BoundedSearch: 1, Improved: 1, ListSpan: 17, ExactSpan: 16}
	if gs != want {
		t.Fatalf("gap stats %+v, want %+v", gs, want)
	}
	var merged GapStats
	merged.Merge(&gs)
	merged.Merge(&gs)
	if merged.Blocks != 8 || merged.ListSpan != 34 {
		t.Fatalf("merge broken: %+v", merged)
	}
	if pct := gs.PctOfOptimal(); pct <= 94.0 || pct >= 94.2 {
		t.Fatalf("PctOfOptimal() = %v, want ~94.1", pct)
	}
	if pct := (&GapStats{}).PctOfOptimal(); pct != 100 {
		t.Fatalf("empty PctOfOptimal() = %v, want 100", pct)
	}
}

// Exact compaction end to end: semantics preserved, output and gap
// counters byte-identical across worker counts 1/2/8, and never slower
// than the list schedule on the measured program.
func TestExactCompactDeterminismAndSemantics(t *testing.T) {
	ecfg := ExactConfig{Enabled: true}
	for _, seed := range []int64{3, 17} {
		prog := randProg(seed)
		orig, err := interp.Run(prog, interp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		var wantFP ir.Digest
		var wantGap GapStats
		for _, workers := range []int{1, 2, 8} {
			var gap GapStats
			res := compile(t, prog, core.PathBased, Options{Parallelism: workers, Exact: ecfg, GapStats: &gap}, nil)
			got, err := interp.Run(res.Prog, interp.Config{})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			mustMatch(t, orig, got, "exact-compact")
			fp := ir.Fingerprint(res.Prog)
			if workers == 1 {
				wantFP, wantGap = fp, gap
				if gap.Blocks == 0 || gap.Proved == 0 {
					t.Fatalf("seed %d: no gap data recorded: %+v", seed, gap)
				}
				continue
			}
			if fp != wantFP {
				t.Fatalf("seed %d: workers=%d fingerprint diverges from serial exact", seed, workers)
			}
			if gap != wantGap {
				t.Fatalf("seed %d: workers=%d gap stats diverge: %+v vs %+v", seed, workers, gap, wantGap)
			}
		}
	}
}

// Exact mode composes with the whole-program path: a compacted program
// under exact scheduling must never have a larger total span than the
// list-scheduled build of the same formation.
func TestExactNeverWorseThanList(t *testing.T) {
	prog := hotTrace(800)
	listRes := compile(t, prog, core.PathBased, Options{}, nil)
	var gap GapStats
	exactRes := compile(t, prog, core.PathBased, Options{Exact: ExactConfig{Enabled: true}, GapStats: &gap}, nil)
	listRun, err := interp.Run(listRes.Prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	exactRun, err := interp.Run(exactRes.Prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustMatch(t, listRun, exactRun, "list-vs-exact")
	if exactRun.Cycles > listRun.Cycles {
		t.Fatalf("exact schedules cost %d cycles, list schedules %d", exactRun.Cycles, listRun.Cycles)
	}
	if gap.Blocks != gap.Proved+gap.Bounded {
		t.Fatalf("gap partition broken: %+v", gap)
	}
}

// Reference compaction has no exact backend; asking for both must be a
// configuration error, not a silent wrong answer.
func TestExactRejectsReference(t *testing.T) {
	prog := hotTrace(10)
	err := CompactBasicBlocks(ir.CloneProgram(prog), Options{Reference: true, Exact: ExactConfig{Enabled: true}})
	if err == nil {
		t.Fatal("Reference+Exact accepted")
	}
}
