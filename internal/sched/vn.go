package sched

import "pathsched/internal/ir"

// vnKey identifies a computed value for local value numbering. gen is
// the memory generation, so loads only match loads with no intervening
// store or call.
type vnKey struct {
	op   ir.Opcode
	a, b ir.Reg
	imm  int64
	gen  int
}

// valueNumber performs local value numbering over a *renamed*
// superblock (§2.3: each superblock undergoes "value numbering and
// dead-code elimination" before scheduling). After renaming, every
// definition writes a fresh single-assignment name, so names are
// values: an instruction recomputing an expression already computed by
// an earlier name is deleted and its uses retargeted to that name.
//
// Loads participate with a store/call generation counter: two loads of
// the same address with no intervening store or call are redundant.
// Architectural-register definitions (repair copies, the final
// terminator) are never candidates — their side effect is the point.
//
// The pass filters nodes in place (the write index never passes the
// read index) and reuses the scratch's cleared maps, so steady-state
// it allocates nothing.
func valueNumber(nodes []node, s *scratch) []node {
	table := s.vnTable
	replace := s.vnReplace
	clear(table)
	clear(replace)
	canon := func(r ir.Reg) ir.Reg {
		if c, ok := replace[r]; ok {
			return c
		}
		return r
	}
	gen := 0
	out := nodes[:0]
	for i := range nodes {
		n := nodes[i]
		rewriteUses(&n.ins, canon)

		// Memory generation: anything that may write memory invalidates
		// load equivalence.
		if n.ins.IsMemWrite() || n.ins.Op == ir.OpCall {
			gen++
		}

		if vnCandidate(&n.ins) {
			k := vnKey{op: n.ins.Op, a: n.ins.Src1, b: n.ins.Src2, imm: n.ins.Imm}
			if isCommutative(n.ins.Op) && k.b < k.a {
				k.a, k.b = k.b, k.a
			}
			if n.ins.Op == ir.OpLoad {
				k.gen = gen
			}
			if prior, ok := table[k]; ok {
				replace[n.ins.Dst] = prior
				continue // redundant: drop the instruction entirely
			}
			table[k] = n.ins.Dst
		}
		out = append(out, n)
	}
	return out
}

// Commutative reports whether operand order is irrelevant for op. It
// is the value-numbering canonicalization rule, exported so the
// translation validator (internal/validate) normalizes expression
// operand order exactly the way VN does — the two must agree, or the
// validator would reject schedules VN legally deduplicated.
func Commutative(op ir.Opcode) bool { return isCommutative(op) }

// isCommutative reports whether operand order is irrelevant, so the
// value-number key can be canonicalized.
func isCommutative(op ir.Opcode) bool {
	switch op {
	case ir.OpAdd, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpCmpEQ, ir.OpCmpNE:
		return true
	}
	return false
}

// vnCandidate reports whether the instruction computes a pure value
// into a virtual register and is therefore eligible for redundancy
// elimination.
func vnCandidate(ins *ir.Instr) bool {
	if !ins.HasDst() || !ins.Dst.IsVirtual() {
		return false
	}
	switch ins.Op {
	case ir.OpMovI,
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr,
		ir.OpAddI, ir.OpMulI, ir.OpAndI, ir.OpOrI, ir.OpXorI,
		ir.OpShlI, ir.OpShrI,
		ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE,
		ir.OpCmpEQI, ir.OpCmpNEI, ir.OpCmpLTI, ir.OpCmpLEI,
		ir.OpCmpGTI, ir.OpCmpGEI,
		ir.OpLoad:
		return true
	}
	return false
}
