package sched

import "pathsched/internal/ir"

// rename implements the three renaming forms of §2.3 in one unified
// local pass over a merged superblock:
//
//   - Anti and output dependence renaming: every local definition gets
//     a fresh virtual register, so WAR and WAW hazards between renamed
//     names vanish and the scheduler sees only true dependences.
//   - Live off-trace renaming: because speculative results land in
//     virtual registers, an instruction hoisted above an exit can no
//     longer clobber a value the off-trace path needs; architectural
//     registers are re-materialized by repair copies placed just
//     before each exit that needs them ("bookkeeping" code).
//   - Move renaming: copies are absorbed into the rename map — a use
//     of a move's destination reads the move's source directly, and
//     the move itself disappears unless an exit needs the value, in
//     which case the repair copy takes its place.
//
// Renaming never touches the final terminator's destination (a final
// call must deposit its result in the architectural register its
// off-superblock continuation reads).
func rename(p *ir.Proc, nodes []node) []node {
	cur := map[ir.Reg]ir.Reg{}      // architectural reg -> current name
	repaired := map[ir.Reg]ir.Reg{} // arch reg -> name it currently holds

	nameOf := func(r ir.Reg) ir.Reg {
		if v, ok := cur[r]; ok {
			return v
		}
		return r
	}

	out := make([]node, 0, len(nodes)+8)
	for i := range nodes {
		n := nodes[i]
		final := i == len(nodes)-1

		// Rewrite uses to current names.
		rewriteUses(&n.ins, nameOf)

		// Before an exit, restore every architectural register its
		// targets may read.
		if n.isExit {
			var copies []node
			n.liveOut.ForEach(func(r ir.Reg) {
				want := nameOf(r)
				have, ok := repaired[r]
				if !ok {
					have = r
				}
				if want == have {
					return
				}
				copies = append(copies, node{ins: ir.Mov(r, want), unit: n.unit})
				repaired[r] = want
			})
			out = append(out, copies...)
		}

		// Move renaming: a copy whose (renamed) source is a virtual
		// register is absorbed by the rename map. Virtuals are
		// single-assignment, so the aliasing is sound. A copy from an
		// architectural register must NOT be absorbed: a later repair
		// copy may legitimately overwrite that register, which would
		// silently retarget every absorbed use — instead it is renamed
		// like any other definition below.
		if n.ins.Op == ir.OpMov && !final && n.ins.Src1.IsVirtual() {
			cur[n.ins.Dst] = n.ins.Src1
			continue
		}

		// Fresh name for every other local definition.
		if n.ins.HasDst() && !final {
			v := p.NewVirtReg()
			cur[n.ins.Dst] = v
			n.ins.Dst = v
		} else if n.ins.HasDst() && final {
			// The final terminator writes the architectural register
			// directly; forget any stale mapping.
			delete(cur, n.ins.Dst)
			delete(repaired, n.ins.Dst)
		}
		out = append(out, n)
	}
	return out
}

// rewriteUses replaces every register the instruction reads via the
// naming function.
func rewriteUses(ins *ir.Instr, name func(ir.Reg) ir.Reg) {
	switch ins.Op {
	case ir.OpNop, ir.OpMovI, ir.OpJmp:
	case ir.OpMov, ir.OpAddI, ir.OpMulI, ir.OpAndI, ir.OpOrI, ir.OpXorI,
		ir.OpShlI, ir.OpShrI, ir.OpCmpEQI, ir.OpCmpNEI, ir.OpCmpLTI,
		ir.OpCmpLEI, ir.OpCmpGTI, ir.OpCmpGEI, ir.OpLoad, ir.OpEmit,
		ir.OpBr, ir.OpSwitch, ir.OpRet:
		ins.Src1 = name(ins.Src1)
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE:
		ins.Src1 = name(ins.Src1)
		ins.Src2 = name(ins.Src2)
	case ir.OpStore:
		ins.Src1 = name(ins.Src1)
		ins.Src2 = name(ins.Src2)
	case ir.OpCall:
		for i, a := range ins.Args {
			ins.Args[i] = name(a)
		}
	}
}
