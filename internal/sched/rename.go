package sched

import "pathsched/internal/ir"

// rename implements the three renaming forms of §2.3 in one unified
// local pass over a merged superblock:
//
//   - Anti and output dependence renaming: every local definition gets
//     a fresh virtual register, so WAR and WAW hazards between renamed
//     names vanish and the scheduler sees only true dependences.
//   - Live off-trace renaming: because speculative results land in
//     virtual registers, an instruction hoisted above an exit can no
//     longer clobber a value the off-trace path needs; architectural
//     registers are re-materialized by repair copies placed just
//     before each exit that needs them ("bookkeeping" code).
//   - Move renaming: copies are absorbed into the rename map — a use
//     of a move's destination reads the move's source directly, and
//     the move itself disappears unless an exit needs the value, in
//     which case the repair copy takes its place.
//
// Renaming never touches the final terminator's destination (a final
// call must deposit its result in the architectural register its
// off-superblock continuation reads).
//
// Both tables are keyed exclusively by architectural registers
// (formation never introduces virtuals, and repair/renamed values are
// always virtual), so they live in two dense 128-entry scratch arrays
// with -1 as the "no entry" sentinel instead of maps. The output goes
// to the scratch's renamed buffer: the pass can grow the node list
// with repair copies, so it cannot run in place.
func rename(p *ir.Proc, nodes []node, s *scratch) []node {
	cur := &s.cur           // architectural reg -> current name
	repaired := &s.repaired // arch reg -> name it currently holds
	for i := range cur {
		cur[i] = -1
		repaired[i] = -1
	}

	nameOf := func(r ir.Reg) ir.Reg {
		if r >= 0 && r < ir.VirtBase {
			if v := cur[r]; v >= 0 {
				return v
			}
		}
		return r
	}

	out := s.renamed[:0]
	for i := range nodes {
		n := nodes[i]
		final := i == len(nodes)-1

		// Rewrite uses to current names.
		rewriteUses(&n.ins, nameOf)

		// Before an exit, restore every architectural register its
		// targets may read.
		if n.isExit {
			unit := n.unit
			n.liveOut.ForEach(func(r ir.Reg) {
				want := nameOf(r)
				have := repaired[r]
				if have < 0 {
					have = r
				}
				if want == have {
					return
				}
				out = append(out, node{ins: ir.Mov(r, want), unit: unit})
				repaired[r] = want
			})
			// The exit node itself follows its repair copies; out may
			// have grown, so re-derive nothing from stale indices.
		}

		// Move renaming: a copy whose (renamed) source is a virtual
		// register is absorbed by the rename map. Virtuals are
		// single-assignment, so the aliasing is sound. A copy from an
		// architectural register must NOT be absorbed: a later repair
		// copy may legitimately overwrite that register, which would
		// silently retarget every absorbed use — instead it is renamed
		// like any other definition below.
		if n.ins.Op == ir.OpMov && !final && n.ins.Src1.IsVirtual() {
			cur[n.ins.Dst] = n.ins.Src1
			continue
		}

		// Fresh name for every other local definition.
		if n.ins.HasDst() && !final {
			v := p.NewVirtReg()
			cur[n.ins.Dst] = v
			n.ins.Dst = v
		} else if n.ins.HasDst() && final {
			// The final terminator writes the architectural register
			// directly; forget any stale mapping.
			cur[n.ins.Dst] = -1
			repaired[n.ins.Dst] = -1
		}
		out = append(out, n)
	}
	s.renamed = out
	return out
}

// rewriteUses replaces every register the instruction reads via the
// naming function.
func rewriteUses(ins *ir.Instr, name func(ir.Reg) ir.Reg) {
	switch ins.Op {
	case ir.OpNop, ir.OpMovI, ir.OpJmp:
	case ir.OpMov, ir.OpAddI, ir.OpMulI, ir.OpAndI, ir.OpOrI, ir.OpXorI,
		ir.OpShlI, ir.OpShrI, ir.OpCmpEQI, ir.OpCmpNEI, ir.OpCmpLTI,
		ir.OpCmpLEI, ir.OpCmpGTI, ir.OpCmpGEI, ir.OpLoad, ir.OpEmit,
		ir.OpBr, ir.OpSwitch, ir.OpRet:
		ins.Src1 = name(ins.Src1)
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpShr, ir.OpCmpEQ, ir.OpCmpNE, ir.OpCmpLT, ir.OpCmpLE:
		ins.Src1 = name(ins.Src1)
		ins.Src2 = name(ins.Src2)
	case ir.OpStore:
		ins.Src1 = name(ins.Src1)
		ins.Src2 = name(ins.Src2)
	case ir.OpCall:
		for i, a := range ins.Args {
			ins.Args[i] = name(a)
		}
	}
}
