// Package sched is the superblock compaction pass (the paper's
// "compact", §2.3): it merges each superblock into a single extended
// block, performs dead-code elimination and the three renaming forms,
// top-down cycle schedules the result for the experimental VLIW, maps
// virtual registers back onto the architected file, and annotates the
// code with issue cycles so the interpreter can measure cycle counts —
// including the cost of early exits.
//
// Exactly as in the paper, the same compaction runs on superblocks from
// edge-based and path-based formation; only the form pass differs.
package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pathsched/internal/core"
	"pathsched/internal/ir"
	"pathsched/internal/machine"
	"pathsched/internal/regalloc"
)

// BlockDeps records, per scheduled head block, the dependence edges the
// scheduler itself computed — indexed over the block's *emitted*
// instruction order, which is exactly the order internal/check
// re-derives them in. Passing the recording to check.SchedulesWithDeps
// spares checked runs a full recomputation of every block's
// dependences. Keys are block pointers: they survive the block
// renumbering removeDeadBlocks performs after scheduling.
type BlockDeps map[*ir.Block][]DepEdge

// Options configures compaction.
type Options struct {
	// Machine is the resource/latency model (default: machine.Default).
	Machine machine.Config
	// DisableRenaming turns off all renaming (for ablation studies).
	DisableRenaming bool
	// DisableDCE turns off dead-code elimination (for ablation).
	DisableDCE bool
	// DisableVN turns off local value numbering (for ablation). Value
	// numbering requires renaming and is skipped automatically when
	// renaming is off.
	DisableVN bool
	// Parallelism bounds how many procedures compact concurrently
	// (0 = GOMAXPROCS, 1 = serial). Output is byte-identical at every
	// setting: procedures are independent (renaming draws from
	// per-procedure virtual counters), results install into
	// per-procedure blocks, and the first error in procedure order wins.
	Parallelism int
	// RecordDeps, when non-nil, receives every scheduled head block's
	// dependence edges mapped to emitted instruction order, for
	// check.SchedulesWithDeps. The map is written only after all
	// workers join; callers must not share it across concurrent
	// Compact calls.
	RecordDeps BlockDeps
	// Reference selects the seed compaction implementation
	// (reference.go) — the differential baseline for tests and
	// cmd/benchcompile. Output is byte-identical to the default path.
	// Incompatible with Exact (the seed path has no search backend).
	Reference bool
	// Exact switches scheduling to the branch-and-bound exact search
	// (exact.go), falling back to the list schedule above its budgets.
	Exact ExactConfig
	// GapStats, when non-nil, accumulates per-region list-vs-exact
	// span statistics (only meaningful with Exact.Enabled). Written
	// only after all workers join; callers must not share it across
	// concurrent Compact calls.
	GapStats *GapStats
}

func (o Options) withDefaults() Options {
	if o.Machine.FuncUnits == 0 {
		o.Machine = machine.Default()
	}
	o.Exact = o.Exact.Normalized()
	return o
}

// blockDeps is one recorded block during compaction, carried per
// procedure until the deterministic merge after workers join.
type blockDeps struct {
	block *ir.Block
	edges []DepEdge
}

// Compact schedules every superblock of res in place: after it
// returns, each superblock is a single merged block carrying Cycles,
// Span, SBSize, and ExitUnits annotations, dead constituent blocks are
// removed, and res.Superblocks reflects the new block ids. Procedures
// compact in parallel per opts.Parallelism; the result (and the error,
// if any) is identical at every worker count.
func Compact(res *core.Result, opts Options) error {
	opts = opts.withDefaults()
	if opts.Reference && opts.Exact.Enabled {
		return fmt.Errorf("sched: Options.Reference and Options.Exact are mutually exclusive")
	}
	prog := res.Prog
	n := len(prog.Procs)
	errs := make([]error, n)
	var recs [][]blockDeps
	if opts.RecordDeps != nil {
		recs = make([][]blockDeps, n)
	}
	var gaps []GapStats
	if opts.GapStats != nil {
		gaps = make([]GapStats, n)
	}
	forEachProc(n, opts.Parallelism, func(i int, s *scratch) {
		p := prog.Procs[i]
		var gs *GapStats
		if gaps != nil {
			gs = &gaps[i]
		}
		rec, err := compactProc(p, res.Superblocks[p.ID], opts, s, gs)
		if err != nil {
			errs[i] = err
			return
		}
		if recs != nil {
			recs[i] = rec
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if recs != nil {
		for _, rec := range recs {
			for _, bd := range rec {
				opts.RecordDeps[bd.block] = bd.edges
			}
		}
	}
	// Per-procedure gap slots merge in input order after the join, the
	// same discipline RecordDeps uses, so totals are identical at every
	// worker count.
	for i := range gaps {
		opts.GapStats.Merge(&gaps[i])
	}
	if err := ir.Verify(prog); err != nil {
		return fmt.Errorf("sched: compaction produced invalid IR: %w", err)
	}
	return nil
}

// compactProc compacts one procedure's superblocks with one worker's
// scratch, returning the recorded block dependences when recording is
// on.
func compactProc(p *ir.Proc, sbs []*core.Superblock, opts Options, s *scratch, gs *GapStats) ([]blockDeps, error) {
	live := LiveIn(p)
	pool := regalloc.FreePool(p)
	record := opts.RecordDeps != nil
	var rec []blockDeps
	for _, sb := range sbs {
		var edges []DepEdge
		var err error
		if opts.Reference {
			edges, err = refCompactSuperblock(p, sb, live, pool, opts, record)
		} else {
			edges, err = compactSuperblock(p, sb, live, pool, opts, s, record, gs)
		}
		if err != nil {
			return nil, fmt.Errorf("sched: %s sb%d: %w", p.Name, sb.ID, err)
		}
		if record {
			// The head block pointer is stable across the renumbering
			// removeDeadBlocks performs below.
			rec = append(rec, blockDeps{block: p.Block(sb.Blocks[0]), edges: edges})
		}
	}
	if err := removeDeadBlocks(p, sbs); err != nil {
		return nil, fmt.Errorf("sched: %s: %w", p.Name, err)
	}
	return rec, nil
}

// forEachProc runs fn(i, scratch) for i in [0, n), fanning out across
// up to `parallelism` goroutines (0 = GOMAXPROCS), each owning one
// scratch for its whole lifetime. Mirrors core.Form's worker pool:
// an atomic cursor hands out indices, so the assignment of procedures
// to workers is racy but the per-index outputs are not — callers keep
// per-index result slots and merge them in input order after the join.
func forEachProc(n, parallelism int, fn func(int, *scratch)) {
	limit := parallelism
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if limit == 1 || n <= 1 {
		s := newScratch()
		for i := 0; i < n; i++ {
			fn(i, s)
		}
		return
	}
	if limit > n {
		limit = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(limit)
	for w := 0; w < limit; w++ {
		go func() {
			defer wg.Done()
			s := newScratch()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i, s)
			}
		}()
	}
	wg.Wait()
}

// CompactBasicBlocks schedules each reachable basic block of prog
// independently on the same machine model — the paper's baseline
// "basic-block scheduled" configuration (Table 1). Each block becomes
// a singleton superblock.
func CompactBasicBlocks(prog *ir.Program, opts Options) error {
	res := &core.Result{Prog: prog, Superblocks: map[ir.ProcID][]*core.Superblock{}}
	for _, p := range prog.Procs {
		g := ir.NewCFG(p)
		var sbs []*core.Superblock
		for _, b := range p.Blocks {
			if !g.Reachable(b.ID) {
				continue
			}
			sbs = append(sbs, &core.Superblock{
				ID:     len(sbs),
				Proc:   p.ID,
				Blocks: []ir.BlockID{b.ID},
			})
		}
		res.Superblocks[p.ID] = sbs
	}
	return Compact(res, opts)
}

func compactSuperblock(p *ir.Proc, sb *core.Superblock, live []RegSet, pool []ir.Reg, opts Options, s *scratch, record bool, gs *GapStats) ([]DepEdge, error) {
	nodes, err := mergeSuperblock(p, sb, live, s)
	if err != nil {
		return nil, err
	}
	head := p.Block(sb.Blocks[0])
	// The no-renaming fallback re-merges lazily (register pressure
	// failures are rare): rename mutates instruction operands in place
	// and install overwrites the head block the merge reads from, so
	// the original head instructions are saved for restoration.
	origInstrs := head.Instrs
	tryRename := !opts.DisableRenaming
	var gap gapRecord
	final, cycles, span, edges, err := scheduleNodes(p, nodes, tryRename, opts, s, record, &gap)
	if err != nil {
		return nil, tagCycleError(err, p, sb)
	}
	install(p, head, sb, final, cycles, span)
	if tryRename {
		// Register allocation; on pressure failure, retry without
		// renaming (the fallback schedule is allocation-clean since it
		// introduces no virtual registers).
		if aerr := regalloc.AssignVirtuals(head, pool); aerr != nil {
			head.Instrs = origInstrs
			fallback, merr := mergeSuperblock(p, sb, live, s)
			if merr != nil {
				return nil, merr
			}
			// The retry overwrites gap: only the kept schedule counts.
			final, cycles, span, edges, err = scheduleNodes(p, fallback, false, opts, s, record, &gap)
			if err != nil {
				return nil, tagCycleError(err, p, sb)
			}
			install(p, head, sb, final, cycles, span)
		}
	}
	if gs != nil {
		gs.add(gap)
	}
	sb.Blocks = sb.Blocks[:1]
	return edges, nil
}

// tagCycleError stamps a scheduler CycleError with the procedure and
// superblock head block it came from.
func tagCycleError(err error, p *ir.Proc, sb *core.Superblock) error {
	var ce *CycleError
	if errors.As(err, &ce) && ce.Proc == "" {
		ce.Proc = p.Name
		ce.Block = sb.Blocks[0]
	}
	return err
}

// scheduleNodes runs DCE/renaming, builds the DDG, schedules, and
// returns the nodes in final linear order with their cycles. Node
// storage and the returned nodes live in the scratch; the cycle slice
// is fresh (it escapes into the installed block). When record is set,
// the dependence edges are returned mapped to emitted positions. Under
// Options.Exact the branch-and-bound scheduler replaces the list
// scheduler and gap (when non-nil) receives the region's outcome.
func scheduleNodes(p *ir.Proc, nodes []node, doRename bool, opts Options, s *scratch, record bool, gap *gapRecord) ([]node, []int32, int32, []DepEdge, error) {
	if doRename {
		nodes = rename(p, nodes, s)
		if !opts.DisableVN {
			// Value numbering needs the single-assignment property that
			// renaming establishes (§2.3's per-superblock VN + DCE).
			nodes = valueNumber(nodes, s)
		}
	}
	if !opts.DisableDCE {
		nodes = eliminateDeadDefs(nodes, s)
	}
	g, edges := buildDDG(nodes, opts.Machine, s)
	var cycles []int32
	var span int32
	var err error
	if opts.Exact.Enabled {
		var listSpan int32
		var status exactStatus
		cycles, span, listSpan, status, err = exactSchedule(nodes, g, opts.Machine, opts.Exact, s)
		if err == nil && gap != nil {
			*gap = gapRecord{valid: true, status: status, listSpan: listSpan, exactSpan: span}
		}
	} else {
		cycles, span, err = listSchedule(nodes, g, opts.Machine, s)
	}
	if err != nil {
		return nil, nil, 0, nil, err
	}

	// Linearize by (cycle, program order): a counting sort over cycles
	// with ascending index placement, identical to the stable sort it
	// replaces. Program order breaks ties so latency-0 pairs (WAR,
	// control pins) execute correctly under the sequential interpreter.
	n := len(nodes)
	cnt := i32zero(&s.ccnt, int(span)+1)
	for _, c := range cycles[:n] {
		cnt[c]++
	}
	pos := int32(0)
	for c := range cnt {
		k := cnt[c]
		cnt[c] = pos
		pos += k
	}
	order := i32buf(&s.order, n)       // emitted position -> node index
	finalPos := i32buf(&s.finalPos, n) // node index -> emitted position
	for i := 0; i < n; i++ {
		c := cycles[i]
		order[cnt[c]] = int32(i)
		finalPos[i] = cnt[c]
		cnt[c]++
	}

	// Mark speculative loads: a load that now executes before an exit
	// that originally preceded it has been hoisted above that exit and
	// must not fault (§3.2's non-excepting instructions).
	exits := s.exits[:0]
	for i := range nodes {
		if nodes[i].isExit {
			exits = append(exits, int32(i))
		}
	}
	s.exits = exits
	outNodes := s.outNodes
	if cap(outNodes) < n {
		outNodes = make([]node, n)
	}
	outNodes = outNodes[:n]
	s.outNodes = outNodes
	outCycles := make([]int32, n)
	for pp := 0; pp < n; pp++ {
		idx := order[pp]
		nd := nodes[idx]
		if nd.ins.Op == ir.OpLoad {
			for _, e := range exits {
				if e < idx && finalPos[e] > int32(pp) {
					nd.ins.Spec = true
					break
				}
			}
		}
		outNodes[pp] = nd
		outCycles[pp] = cycles[idx]
	}
	var recEdges []DepEdge
	if record {
		recEdges = make([]DepEdge, len(edges))
		for k := range edges {
			e := &edges[k]
			recEdges[k] = DepEdge{
				From: int(finalPos[e.From]),
				To:   int(finalPos[e.To]),
				Lat:  e.Lat,
				Kind: e.Kind,
			}
		}
	}
	return outNodes, outCycles, span, recEdges, nil
}

// eliminateDeadDefs is the per-superblock dead-code elimination of
// §2.3: instructions without side effects whose virtual result is
// never read are dropped, iterating until stable. Only virtual
// destinations are candidates — architectural defs may be live outside
// the superblock. The used-set is a scratch bitset over the dense
// register window (architected file + the superblock's virtual range),
// and the node list is filtered in place.
func eliminateDeadDefs(nodes []node, s *scratch) []node {
	// The virtual window only shrinks as instructions die, so one
	// mapping up front covers every iteration.
	minVirt, maxVirt := ir.Reg(-1), ir.Reg(-1)
	buf := s.usesBuf
	defer func() { s.usesBuf = buf }()
	for i := range nodes {
		u := nodes[i].ins.Uses(buf[:0])
		buf = u
		for _, r := range u {
			if r >= ir.VirtBase {
				if minVirt < 0 || r < minVirt {
					minVirt = r
				}
				if r > maxVirt {
					maxVirt = r
				}
			}
		}
		if nodes[i].ins.HasDst() {
			if r := nodes[i].ins.Dst; r >= ir.VirtBase {
				if minVirt < 0 || r < minVirt {
					minVirt = r
				}
				if r > maxVirt {
					maxVirt = r
				}
			}
		}
	}
	nRegs := ir.PhysRegs
	if minVirt >= 0 {
		nRegs += int(maxVirt-minVirt) + 1
	}
	regIndex := func(r ir.Reg) int {
		if r < ir.VirtBase {
			return int(r)
		}
		return ir.PhysRegs + int(r-minVirt)
	}
	for {
		used := u64zero(&s.dceUsed, (nRegs+63)/64)
		for i := range nodes {
			u := nodes[i].ins.Uses(buf[:0])
			buf = u
			for _, r := range u {
				ri := regIndex(r)
				used[ri>>6] |= 1 << uint(ri&63)
			}
		}
		kept := nodes[:0]
		removed := false
		for i := range nodes {
			nd := nodes[i]
			dead := false
			if nd.ins.HasDst() && nd.ins.Dst.IsVirtual() && nd.ins.CanSpeculate() && !nd.isExit {
				ri := regIndex(nd.ins.Dst)
				dead = used[ri>>6]&(1<<uint(ri&63)) == 0
			}
			if dead {
				removed = true
				continue
			}
			kept = append(kept, nd)
		}
		nodes = kept
		if !removed {
			return nodes
		}
	}
}

// install writes the merged schedule into the superblock's head block.
// It also records UnitOrigins — each constituent's pristine origin
// block — while sb.Blocks still holds the pre-renumbering formed ids,
// so the translation validator can map the merged block back to the
// original trace after removeDeadBlocks has rewritten every other id.
func install(p *ir.Proc, head *ir.Block, sb *core.Superblock, nodes []node, cycles []int32, span int32) {
	head.Instrs = make([]ir.Instr, len(nodes))
	head.ExitUnits = make([]int32, len(nodes))
	head.Units = make([]int32, len(nodes))
	for i := range nodes {
		head.Instrs[i] = nodes[i].ins
		if nodes[i].isExit {
			head.ExitUnits[i] = int32(nodes[i].unit) + 1
		}
		head.Units[i] = int32(nodes[i].unit) + 1
	}
	head.Cycles = cycles
	head.Span = span
	head.SBSize = int32(len(sb.Blocks))
	head.SBID = int32(sb.ID)
	head.SBIndex = 0
	head.UnitOrigins = make([]ir.BlockID, len(sb.Blocks))
	for u, id := range sb.Blocks {
		head.UnitOrigins[u] = p.Block(id).Origin
	}
}

// removeDeadBlocks drops blocks made unreachable by merging and
// renumbers the survivors, rewriting every branch target and the
// superblock lists. The entry block keeps id 0.
func removeDeadBlocks(p *ir.Proc, sbs []*core.Superblock) error {
	g := ir.NewCFG(p)
	remap := make([]ir.BlockID, len(p.Blocks))
	var kept []*ir.Block
	for _, b := range p.Blocks {
		if g.Reachable(b.ID) {
			remap[b.ID] = ir.BlockID(len(kept))
			kept = append(kept, b)
		} else {
			remap[b.ID] = ir.NoBlock
		}
	}
	for _, b := range kept {
		old := b.ID
		b.ID = remap[old]
		if b.Origin >= 0 && int(b.Origin) < len(remap) && remap[b.Origin] != ir.NoBlock {
			b.Origin = remap[b.Origin]
		} else {
			b.Origin = b.ID // origin died; self-origin keeps the verifier happy
		}
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			for j, t := range ins.Targets {
				if t == ir.NoBlock {
					continue
				}
				nt := remap[t]
				if nt == ir.NoBlock {
					return fmt.Errorf("block b%d targets dead block b%d", old, t)
				}
				ins.Targets[j] = nt
			}
		}
	}
	p.Blocks = kept
	for _, sb := range sbs {
		for i, b := range sb.Blocks {
			sb.Blocks[i] = remap[b]
		}
	}
	return nil
}
