// Package sched is the superblock compaction pass (the paper's
// "compact", §2.3): it merges each superblock into a single extended
// block, performs dead-code elimination and the three renaming forms,
// top-down cycle schedules the result for the experimental VLIW, maps
// virtual registers back onto the architected file, and annotates the
// code with issue cycles so the interpreter can measure cycle counts —
// including the cost of early exits.
//
// Exactly as in the paper, the same compaction runs on superblocks from
// edge-based and path-based formation; only the form pass differs.
package sched

import (
	"errors"
	"fmt"
	"sort"

	"pathsched/internal/core"
	"pathsched/internal/ir"
	"pathsched/internal/machine"
	"pathsched/internal/regalloc"
)

// Options configures compaction.
type Options struct {
	// Machine is the resource/latency model (default: machine.Default).
	Machine machine.Config
	// DisableRenaming turns off all renaming (for ablation studies).
	DisableRenaming bool
	// DisableDCE turns off dead-code elimination (for ablation).
	DisableDCE bool
	// DisableVN turns off local value numbering (for ablation). Value
	// numbering requires renaming and is skipped automatically when
	// renaming is off.
	DisableVN bool
}

func (o Options) withDefaults() Options {
	if o.Machine.FuncUnits == 0 {
		o.Machine = machine.Default()
	}
	return o
}

// Compact schedules every superblock of res in place: after it
// returns, each superblock is a single merged block carrying Cycles,
// Span, SBSize, and ExitUnits annotations, dead constituent blocks are
// removed, and res.Superblocks reflects the new block ids.
func Compact(res *core.Result, opts Options) error {
	opts = opts.withDefaults()
	prog := res.Prog
	for _, p := range prog.Procs {
		sbs := res.Superblocks[p.ID]
		live := LiveIn(p)
		pool := regalloc.FreePool(p)
		for _, sb := range sbs {
			if err := compactSuperblock(p, sb, live, pool, opts); err != nil {
				return fmt.Errorf("sched: %s sb%d: %w", p.Name, sb.ID, err)
			}
		}
		if err := removeDeadBlocks(p, sbs); err != nil {
			return fmt.Errorf("sched: %s: %w", p.Name, err)
		}
		res.Superblocks[p.ID] = sbs
	}
	if err := ir.Verify(prog); err != nil {
		return fmt.Errorf("sched: compaction produced invalid IR: %w", err)
	}
	return nil
}

// CompactBasicBlocks schedules each reachable basic block of prog
// independently on the same machine model — the paper's baseline
// "basic-block scheduled" configuration (Table 1). Each block becomes
// a singleton superblock.
func CompactBasicBlocks(prog *ir.Program, opts Options) error {
	res := &core.Result{Prog: prog, Superblocks: map[ir.ProcID][]*core.Superblock{}}
	for _, p := range prog.Procs {
		g := ir.NewCFG(p)
		var sbs []*core.Superblock
		for _, b := range p.Blocks {
			if !g.Reachable(b.ID) {
				continue
			}
			sbs = append(sbs, &core.Superblock{
				ID:     len(sbs),
				Proc:   p.ID,
				Blocks: []ir.BlockID{b.ID},
			})
		}
		res.Superblocks[p.ID] = sbs
	}
	return Compact(res, opts)
}

func compactSuperblock(p *ir.Proc, sb *core.Superblock, live []RegSet, pool []ir.Reg, opts Options) error {
	nodes, err := mergeSuperblock(p, sb, live)
	if err != nil {
		return err
	}
	// An independent merged copy for the no-renaming fallback: rename
	// mutates instruction operands in place, and install overwrites the
	// head block the merge reads from.
	fallback, err := mergeSuperblock(p, sb, live)
	if err != nil {
		return err
	}
	tryRename := !opts.DisableRenaming
	final, cycles, span, err := scheduleNodes(p, nodes, tryRename, opts)
	if err != nil {
		return tagCycleError(err, p, sb)
	}
	head := p.Block(sb.Blocks[0])
	install(head, sb, final, cycles, span)
	if tryRename {
		// Register allocation; on pressure failure, retry without
		// renaming (the fallback schedule is allocation-clean since it
		// introduces no virtual registers).
		if aerr := regalloc.AssignVirtuals(head, pool); aerr != nil {
			final, cycles, span, err = scheduleNodes(p, fallback, false, opts)
			if err != nil {
				return tagCycleError(err, p, sb)
			}
			install(head, sb, final, cycles, span)
		}
	}
	sb.Blocks = sb.Blocks[:1]
	return nil
}

// tagCycleError stamps a scheduler CycleError with the procedure and
// superblock head block it came from.
func tagCycleError(err error, p *ir.Proc, sb *core.Superblock) error {
	var ce *CycleError
	if errors.As(err, &ce) && ce.Proc == "" {
		ce.Proc = p.Name
		ce.Block = sb.Blocks[0]
	}
	return err
}

// scheduleNodes runs DCE/renaming, builds the DDG, schedules, and
// returns the nodes in final linear order with their cycles.
func scheduleNodes(p *ir.Proc, nodes []node, doRename bool, opts Options) ([]node, []int32, int32, error) {
	if doRename {
		nodes = rename(p, nodes)
		if !opts.DisableVN {
			// Value numbering needs the single-assignment property that
			// renaming establishes (§2.3's per-superblock VN + DCE).
			nodes = valueNumber(nodes)
		}
	}
	if !opts.DisableDCE {
		nodes = eliminateDeadDefs(nodes)
	}
	g := buildDDG(nodes, opts.Machine)
	cycles, span, err := listSchedule(nodes, g, opts.Machine)
	if err != nil {
		return nil, nil, 0, err
	}

	// Linearize by (cycle, program order). Program order breaks ties so
	// latency-0 pairs (WAR, control pins) execute correctly under the
	// sequential interpreter.
	order := make([]int, len(nodes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return cycles[order[a]] < cycles[order[b]] })

	finalPos := make([]int, len(nodes))
	for pos, idx := range order {
		finalPos[idx] = pos
	}
	// Mark speculative loads: a load that now executes before an exit
	// that originally preceded it has been hoisted above that exit and
	// must not fault (§3.2's non-excepting instructions).
	var exits []int
	for i := range nodes {
		if nodes[i].isExit {
			exits = append(exits, i)
		}
	}
	outNodes := make([]node, len(nodes))
	outCycles := make([]int32, len(nodes))
	for pos, idx := range order {
		nd := nodes[idx]
		if nd.ins.Op == ir.OpLoad {
			for _, e := range exits {
				if e < idx && finalPos[e] > pos {
					nd.ins.Spec = true
					break
				}
			}
		}
		outNodes[pos] = nd
		outCycles[pos] = cycles[idx]
	}
	return outNodes, outCycles, span, nil
}

// eliminateDeadDefs is the per-superblock dead-code elimination of
// §2.3: instructions without side effects whose virtual result is
// never read are dropped, iterating until stable. Only virtual
// destinations are candidates — architectural defs may be live outside
// the superblock.
func eliminateDeadDefs(nodes []node) []node {
	for {
		used := map[ir.Reg]bool{}
		var buf []ir.Reg
		for i := range nodes {
			buf = nodes[i].ins.Uses(buf[:0])
			for _, u := range buf {
				used[u] = true
			}
		}
		kept := nodes[:0]
		removed := false
		for i := range nodes {
			nd := nodes[i]
			dead := nd.ins.HasDst() && nd.ins.Dst.IsVirtual() && !used[nd.ins.Dst] &&
				nd.ins.CanSpeculate() && !nd.isExit
			if dead {
				removed = true
				continue
			}
			kept = append(kept, nd)
		}
		nodes = kept
		if !removed {
			return nodes
		}
	}
}

// install writes the merged schedule into the superblock's head block.
func install(head *ir.Block, sb *core.Superblock, nodes []node, cycles []int32, span int32) {
	head.Instrs = make([]ir.Instr, len(nodes))
	head.ExitUnits = make([]int32, len(nodes))
	head.Units = make([]int32, len(nodes))
	for i := range nodes {
		head.Instrs[i] = nodes[i].ins
		if nodes[i].isExit {
			head.ExitUnits[i] = int32(nodes[i].unit) + 1
		}
		head.Units[i] = int32(nodes[i].unit) + 1
	}
	head.Cycles = cycles
	head.Span = span
	head.SBSize = int32(len(sb.Blocks))
	head.SBID = int32(sb.ID)
	head.SBIndex = 0
}

// removeDeadBlocks drops blocks made unreachable by merging and
// renumbers the survivors, rewriting every branch target and the
// superblock lists. The entry block keeps id 0.
func removeDeadBlocks(p *ir.Proc, sbs []*core.Superblock) error {
	g := ir.NewCFG(p)
	remap := make([]ir.BlockID, len(p.Blocks))
	var kept []*ir.Block
	for _, b := range p.Blocks {
		if g.Reachable(b.ID) {
			remap[b.ID] = ir.BlockID(len(kept))
			kept = append(kept, b)
		} else {
			remap[b.ID] = ir.NoBlock
		}
	}
	for _, b := range kept {
		old := b.ID
		b.ID = remap[old]
		if b.Origin >= 0 && int(b.Origin) < len(remap) && remap[b.Origin] != ir.NoBlock {
			b.Origin = remap[b.Origin]
		} else {
			b.Origin = b.ID // origin died; self-origin keeps the verifier happy
		}
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			for j, t := range ins.Targets {
				if t == ir.NoBlock {
					continue
				}
				nt := remap[t]
				if nt == ir.NoBlock {
					return fmt.Errorf("block b%d targets dead block b%d", old, t)
				}
				ins.Targets[j] = nt
			}
		}
	}
	p.Blocks = kept
	for _, sb := range sbs {
		for i, b := range sb.Blocks {
			sb.Blocks[i] = remap[b]
		}
	}
	return nil
}
