// Package determinism flags map-range iteration in packages whose
// output must be byte-reproducible.
//
// The pipeline's guarantees — parallel runs identical to serial runs,
// content-addressed cache hits identical to cold compiles, golden
// tests pinning exact output — all rest on every compile stage being
// deterministic. Go map iteration order is deliberately randomized, so
// a `for range` over a map in a deterministic package is a latent
// nondeterminism bug: it may sit harmless for months (order-insensitive
// accumulation) until someone threads the iteration order into an
// output.
//
// The linter type-checks the target packages (stdlib go/parser +
// go/types; module-internal imports are resolved from source, stdlib
// imports from export data) and reports every range statement whose
// operand is a map, with two exemptions:
//
//   - the loop body only collects keys or values into a slice
//     (`for k := range m { keys = append(keys, k) }`), the standard
//     prelude to sorting — intrinsically order-insensitive;
//   - the statement is annotated with a `//lint:ordered` comment on
//     the same line or the line above, recording that a human judged
//     the iteration order-insensitive (e.g. accumulation into
//     commutative sums, or a destination that is itself a map).
package determinism

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one unordered map iteration in a deterministic package.
type Finding struct {
	Pos token.Position
	Msg string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s", f.Pos, f.Msg)
}

// Check lints the packages at the given module-root-relative
// directories. modRoot is the module's filesystem root, modPath its
// module path (so module-internal imports resolve from source).
// Findings come back sorted by position; an error means the lint
// itself could not run (parse or type-check failure), never a finding.
func Check(modRoot, modPath string, pkgDirs []string) ([]Finding, error) {
	c := &checker{
		fset:    token.NewFileSet(),
		modRoot: modRoot,
		modPath: modPath,
		pkgs:    map[string]*loaded{},
	}
	c.std = importer.ForCompiler(c.fset, "gc", nil)

	var findings []Finding
	for _, rel := range pkgDirs {
		ipath := modPath
		if rel != "." && rel != "" {
			ipath = modPath + "/" + filepath.ToSlash(rel)
		}
		l, err := c.load(ipath)
		if err != nil {
			return nil, fmt.Errorf("determinism: %s: %w", rel, err)
		}
		for _, f := range l.files {
			findings = append(findings, c.lintFile(f, l.info)...)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return findings, nil
}

type checker struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	pkgs    map[string]*loaded

	// loading guards against import cycles (which go vet would reject
	// anyway, but a clear error beats a stack overflow).
	loading []string
}

// loaded memoizes one type-checked module-internal package. A package
// must be checked exactly once: re-checking would mint a second
// *types.Package identity, and types imported through different paths
// would stop comparing equal.
type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// Import resolves an import path for go/types: module-internal
// packages type-check from source, everything else comes from the
// stdlib importer.
func (c *checker) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == c.modPath || strings.HasPrefix(path, c.modPath+"/") {
		l, err := c.load(path)
		if err != nil {
			return nil, err
		}
		return l.pkg, nil
	}
	return c.std.Import(path)
}

// load parses and type-checks the module-internal package with import
// path ipath, memoized so every import path reaches one identity.
func (c *checker) load(ipath string) (*loaded, error) {
	if l, ok := c.pkgs[ipath]; ok {
		return l, nil
	}
	for _, p := range c.loading {
		if p == ipath {
			return nil, fmt.Errorf("import cycle through %s", ipath)
		}
	}
	c.loading = append(c.loading, ipath)
	defer func() { c.loading = c.loading[:len(c.loading)-1] }()

	dir := c.modRoot
	if ipath != c.modPath {
		dir = filepath.Join(c.modRoot, filepath.FromSlash(strings.TrimPrefix(ipath, c.modPath+"/")))
	}
	names, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(c.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	conf := types.Config{Importer: c, FakeImportC: true}
	pkg, err := conf.Check(ipath, c.fset, files, info)
	if err != nil {
		return nil, err
	}
	l := &loaded{pkg: pkg, files: files, info: info}
	c.pkgs[ipath] = l
	return l, nil
}

// sourceFiles lists the non-test Go files of dir that build for the
// current platform, in sorted order.
func sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go source files in %s", dir)
	}
	return names, nil
}

// lintFile reports every map-range in f that is neither a key/value
// collection nor annotated.
func (c *checker) lintFile(f *ast.File, info *types.Info) []Finding {
	var findings []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if collectsOnly(rs) || c.annotated(f, rs) {
			return true
		}
		findings = append(findings, Finding{
			Pos: c.fset.Position(rs.Pos()),
			Msg: "range over a map in a deterministic package: iteration order is randomized; " +
				"sort the keys, or annotate with //lint:ordered if order provably cannot reach any output",
		})
		return true
	})
	return findings
}

// collectsOnly reports whether the range body does nothing but append
// the loop variables to slices — the order-insensitive prelude to
// sorting.
func collectsOnly(rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	vars := map[string]bool{}
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			vars[id.Name] = true
		}
	}
	for _, st := range rs.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		dst, arg := fmtNode(as.Lhs[0]), call.Args[1]
		first, ok := call.Args[0].(*ast.Ident)
		if !ok || first.Name != dst {
			return false
		}
		id, ok := arg.(*ast.Ident)
		if !ok || !vars[id.Name] {
			return false
		}
	}
	return true
}

// fmtNode renders a simple identifier ("" for anything more complex).
func fmtNode(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// annotated reports whether a //lint:ordered comment sits on the range
// statement's line or the line directly above it.
func (c *checker) annotated(f *ast.File, rs *ast.RangeStmt) bool {
	line := c.fset.Position(rs.Pos()).Line
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			if !strings.Contains(cm.Text, "lint:ordered") {
				continue
			}
			l := c.fset.Position(cm.Pos()).Line
			if l == line || l == line-1 {
				return true
			}
		}
	}
	return false
}
