// Package fixmod is the determinism-lint test fixture: one offending
// map range, one annotated on the same line, one annotated the line
// above, one key collection, and some non-map ranges.
package fixmod

import "sort"

// Sum iterates a map with nothing excusing it — the lint must flag it.
func Sum(m map[string]int) string {
	out := ""
	for k := range m {
		out += k
	}
	return out
}

// SumAnnotated carries the same-line annotation.
func SumAnnotated(m map[string]int) int {
	t := 0
	for _, v := range m { //lint:ordered — commutative sum
		t += v
	}
	return t
}

// SumAnnotatedAbove carries the annotation on the preceding line.
func SumAnnotatedAbove(m map[string]int) int {
	t := 0
	//lint:ordered — commutative sum
	for _, v := range m {
		t += v
	}
	return t
}

// Keys collects then sorts — the order-insensitive prelude the lint
// exempts without annotation.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Pairs collects both loop variables into slices.
func Pairs(m map[string]int) ([]string, []int) {
	var ks []string
	var vs []int
	for k, v := range m {
		ks = append(ks, k)
		vs = append(vs, v)
	}
	return ks, vs
}

// NonMaps must never be flagged.
func NonMaps(xs []int, s string, ch chan int) int {
	t := 0
	for _, v := range xs {
		t += v
	}
	for range s {
		t++
	}
	for v := range ch {
		t += v
	}
	return t
}

// NamedMap ranges over a named type whose underlying type is a map —
// still a finding.
type counts map[string]int

func (c counts) Render() string {
	out := ""
	for k := range c {
		out += k
	}
	return out
}
