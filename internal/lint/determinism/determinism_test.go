package determinism

import (
	"path/filepath"
	"strings"
	"testing"
)

// The fixture exercises every rule: exactly the two unexcused map
// ranges are findings, in position order.
func TestFixtureFindings(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "fixmod"))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Check(root, "fixmod", []string{"."})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(findings) != 2 {
		t.Fatalf("want 2 findings (Sum, counts.Render), got %d:\n%v", len(findings), findings)
	}
	for _, f := range findings {
		if !strings.Contains(f.Msg, "range over a map") {
			t.Errorf("finding message drifted: %s", f.Msg)
		}
		if !strings.HasSuffix(f.Pos.Filename, "fix.go") {
			t.Errorf("finding outside fixture: %s", f.Pos)
		}
	}
	if findings[0].Pos.Line >= findings[1].Pos.Line {
		t.Errorf("findings not in position order: %v", findings)
	}
}

// The deterministic packages must stay lint-clean: every map iteration
// there is sorted, collected-then-sorted, or deliberately annotated.
// This is the in-tree mirror of the CI determinismlint step.
func TestRepoDeterministicPackagesClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs := []string{"internal/sched", "internal/core", "internal/pipeline", "internal/profile"}
	findings, err := Check(root, "pathsched", pkgs)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(findings) != 0 {
		t.Fatalf("deterministic packages have unordered map iteration:\n%v", findings)
	}
}
