package ir

// CFG caches the control-flow structure of a procedure: successor and
// predecessor lists, a reverse postorder, immediate dominators, back
// edges, and natural loops. Build one with NewCFG after any structural
// change to the procedure; a CFG is immutable once built.
type CFG struct {
	Proc *Proc

	succs [][]BlockID
	preds [][]BlockID

	// rpo is a reverse postorder over blocks reachable from the entry;
	// rpoIndex[b] is the position of b in rpo, or -1 if unreachable.
	rpo      []BlockID
	rpoIndex []int32

	// idom[b] is the immediate dominator of b (entry's idom is itself);
	// -1 for unreachable blocks.
	idom []BlockID

	// backEdge[from] lists back-edge targets of from.
	backEdges map[[2]BlockID]bool

	// loopHead[b] is true when some back edge targets b.
	loopHead []bool
}

// NewCFG computes the control-flow analyses for p.
func NewCFG(p *Proc) *CFG {
	n := len(p.Blocks)
	c := &CFG{
		Proc:      p,
		succs:     make([][]BlockID, n),
		preds:     make([][]BlockID, n),
		rpoIndex:  make([]int32, n),
		idom:      make([]BlockID, n),
		backEdges: make(map[[2]BlockID]bool),
		loopHead:  make([]bool, n),
	}
	for i := range p.Blocks {
		c.succs[i] = p.Blocks[i].Succs()
	}
	for from, ss := range c.succs {
		for _, s := range ss {
			c.preds[s] = append(c.preds[s], BlockID(from))
		}
	}
	c.computeRPO()
	c.computeDominators()
	c.findBackEdges()
	return c
}

// Succs returns the successors of b. The result must not be modified.
func (c *CFG) Succs(b BlockID) []BlockID { return c.succs[b] }

// Preds returns the predecessors of b. The result must not be modified.
func (c *CFG) Preds(b BlockID) []BlockID { return c.preds[b] }

// RPO returns the reverse postorder of reachable blocks. The result
// must not be modified.
func (c *CFG) RPO() []BlockID { return c.rpo }

// Reachable reports whether b is reachable from the entry.
func (c *CFG) Reachable(b BlockID) bool { return c.rpoIndex[b] >= 0 }

// IDom returns the immediate dominator of b, or -1 if b is
// unreachable. The entry block's immediate dominator is itself.
func (c *CFG) IDom(b BlockID) BlockID { return c.idom[b] }

// Dominates reports whether a dominates b (reflexively).
func (c *CFG) Dominates(a, b BlockID) bool {
	if !c.Reachable(a) || !c.Reachable(b) {
		return false
	}
	entry := c.Proc.Entry().ID
	for {
		if a == b {
			return true
		}
		if b == entry {
			return false
		}
		b = c.idom[b]
	}
}

// IsBackEdge reports whether from→to is a back edge (to dominates from).
func (c *CFG) IsBackEdge(from, to BlockID) bool { return c.backEdges[[2]BlockID{from, to}] }

// IsLoopHead reports whether b is the target of some back edge.
func (c *CFG) IsLoopHead(b BlockID) bool { return c.loopHead[b] }

func (c *CFG) computeRPO() {
	n := len(c.Proc.Blocks)
	for i := range c.rpoIndex {
		c.rpoIndex[i] = -1
	}
	visited := make([]bool, n)
	post := make([]BlockID, 0, n)

	// Iterative DFS to avoid stack overflow on large generated CFGs.
	type frame struct {
		b    BlockID
		next int
	}
	stack := []frame{{b: c.Proc.Entry().ID}}
	visited[c.Proc.Entry().ID] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ss := c.succs[f.b]
		if f.next < len(ss) {
			s := ss[f.next]
			f.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	c.rpo = make([]BlockID, len(post))
	for i := range post {
		c.rpo[i] = post[len(post)-1-i]
	}
	for i, b := range c.rpo {
		c.rpoIndex[b] = int32(i)
	}
}

// computeDominators uses the Cooper–Harvey–Kennedy iterative algorithm.
func (c *CFG) computeDominators() {
	for i := range c.idom {
		c.idom[i] = NoBlock
	}
	entry := c.Proc.Entry().ID
	c.idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range c.rpo {
			if b == entry {
				continue
			}
			var newIdom BlockID = NoBlock
			for _, p := range c.preds[b] {
				if c.idom[p] == NoBlock {
					continue // not yet processed or unreachable
				}
				if newIdom == NoBlock {
					newIdom = p
				} else {
					newIdom = c.intersect(p, newIdom)
				}
			}
			if newIdom != NoBlock && c.idom[b] != newIdom {
				c.idom[b] = newIdom
				changed = true
			}
		}
	}
}

func (c *CFG) intersect(a, b BlockID) BlockID {
	for a != b {
		for c.rpoIndex[a] > c.rpoIndex[b] {
			a = c.idom[a]
		}
		for c.rpoIndex[b] > c.rpoIndex[a] {
			b = c.idom[b]
		}
	}
	return a
}

func (c *CFG) findBackEdges() {
	for from := range c.succs {
		f := BlockID(from)
		if !c.Reachable(f) {
			continue
		}
		for _, to := range c.succs[from] {
			// An edge is a back edge when its target dominates its
			// source (this covers self-loops via reflexivity).
			if c.Dominates(to, f) {
				c.backEdges[[2]BlockID{f, to}] = true
				c.loopHead[to] = true
			}
		}
	}
}

// NaturalLoop returns the set of blocks in the natural loop of the
// back edge latch→head, or nil if that edge is not a back edge.
func (c *CFG) NaturalLoop(latch, head BlockID) map[BlockID]bool {
	if !c.IsBackEdge(latch, head) {
		return nil
	}
	loop := map[BlockID]bool{head: true}
	stack := []BlockID{latch}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if loop[b] {
			continue
		}
		loop[b] = true
		for _, p := range c.preds[b] {
			if !loop[p] && c.Reachable(p) {
				stack = append(stack, p)
			}
		}
	}
	return loop
}
