package ir

import (
	"testing"
)

// FuzzFingerprint checks the two properties the pipeline cache rests
// on: cloning a program never changes its fingerprint, and any single
// structural mutation does — except permuting non-overlapping data
// segments, which the canonical segment order deliberately ignores.
//
// The fuzz input is a mutation script: byte 0 selects the mutation
// kind, the remaining bytes parameterize it (which proc/block/instr,
// what delta). Every script is applied to a fresh clone of the same
// base program, so the fuzzer explores the mutation space rather than
// unconstrained IR.
func FuzzFingerprint(f *testing.F) {
	for kind := byte(0); kind < fuzzMutationKinds; kind++ {
		f.Add([]byte{kind})
		f.Add([]byte{kind, 1, 2, 3})
		f.Add([]byte{kind, 0xff, 0x80, 0x7f, 5})
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		base := fpBaseProgram()
		h0 := Fingerprint(base)
		if Fingerprint(CloneProgram(base)) != h0 {
			t.Fatal("cloning the base program changed its fingerprint")
		}

		mut := CloneProgram(base)
		changed, wantSame := applyFuzzMutation(mut, data)
		if !changed {
			return
		}
		h1 := Fingerprint(mut)
		if wantSame && h1 != h0 {
			t.Fatalf("mutation %d should be hash-neutral but changed the digest", data[0]%fuzzMutationKinds)
		}
		if !wantSame && h1 == h0 {
			t.Fatalf("structural mutation %d did not change the digest", data[0]%fuzzMutationKinds)
		}

		// Same script on a fresh clone must land on the same digest:
		// the hash is a pure function of structure.
		mut2 := CloneProgram(base)
		applyFuzzMutation(mut2, data)
		if Fingerprint(mut2) != h1 {
			t.Fatal("fingerprint is not deterministic across identical mutations")
		}
	})
}

const fuzzMutationKinds = 10

// fuzzCursor doles out script bytes, yielding zero once exhausted so
// every script prefix is a valid (if boring) parameterization.
type fuzzCursor struct {
	data []byte
	pos  int
}

func (c *fuzzCursor) next() byte {
	if c.pos >= len(c.data) {
		return 0
	}
	b := c.data[c.pos]
	c.pos++
	return b
}

// applyFuzzMutation mutates prog per the script. It reports whether
// anything changed and whether the change must leave the fingerprint
// intact (only true for non-overlapping data-segment permutation).
func applyFuzzMutation(prog *Program, data []byte) (changed, wantSame bool) {
	if len(data) == 0 {
		return false, false
	}
	cur := &fuzzCursor{data: data[1:]}
	pr := prog.Procs[1] // "main": the structurally rich proc
	pick := func(n int) int {
		if n <= 0 {
			return 0
		}
		return int(cur.next()) % n
	}
	switch data[0] % fuzzMutationKinds {
	case 0: // swap the operands of a three-address instruction
		ins := &pr.Blocks[0].Instrs[1] // Load: Src1 used, Src2 zero
		ins.Src1, ins.Src2 = ins.Src2, ins.Src1
		return true, false
	case 1: // flip a terminator target
		b := pr.Blocks[pick(len(pr.Blocks))]
		term := b.Terminator()
		if term == nil || len(term.Targets) == 0 {
			return false, false
		}
		i := pick(len(term.Targets))
		term.Targets[i] += BlockID(1 + pick(7))
		return true, false
	case 2: // edit a data byte
		if len(prog.Data) == 0 {
			return false, false
		}
		seg := &prog.Data[pick(len(prog.Data))]
		if len(seg.Values) == 0 {
			return false, false
		}
		seg.Values[pick(len(seg.Values))] ^= 1 << (cur.next() % 63)
		return true, false
	case 3: // change an immediate
		b := pr.Blocks[pick(len(pr.Blocks))]
		if len(b.Instrs) == 0 {
			return false, false
		}
		b.Instrs[pick(len(b.Instrs))].Imm += int64(1 + pick(255))
		return true, false
	case 4: // toggle the speculative flag
		ins := &pr.Blocks[0].Instrs[pick(len(pr.Blocks[0].Instrs))]
		ins.Spec = !ins.Spec
		return true, false
	case 5: // replace an opcode with a different one
		ins := &pr.Blocks[0].Instrs[0] // MovI
		if ins.Op == OpNop {
			ins.Op = OpMov
		} else {
			ins.Op = OpNop
		}
		return true, false
	case 6: // append an instruction
		b := pr.Blocks[pick(len(pr.Blocks))]
		n := len(b.Instrs)
		b.Instrs = append(b.Instrs[:n-1:n-1], Nop(), b.Instrs[n-1])
		return true, false
	case 7: // permute data segments: hash-neutral iff none overlap
		if len(prog.Data) < 2 {
			return false, false
		}
		if fuzzSegsOverlap(prog.Data) {
			return false, false
		}
		i, j := pick(len(prog.Data)), pick(len(prog.Data))
		prog.Data[i], prog.Data[j] = prog.Data[j], prog.Data[i]
		// Swapping a segment with itself (or an identical twin) is a
		// no-op, but a no-op trivially satisfies "hash unchanged".
		return true, true
	case 8: // grow the memory image
		prog.MemSize += int64(1 + pick(255))
		return true, false
	default: // toggle schedule metadata on the annotated block
		b := pr.Blocks[3]
		if b.Cycles == nil {
			b.Cycles = make([]int32, len(b.Instrs))
		} else {
			b.Cycles = nil
		}
		return true, false
	}
}

// fuzzSegsOverlap reports whether any two data segments touch the same
// word (memory is word-addressed: a segment covers [Addr,
// Addr+len(Values))); overlapping declarations are order-sensitive in
// initMem, so only overlap-free programs get the hash-neutral
// permutation guarantee.
func fuzzSegsOverlap(segs []DataSeg) bool {
	for i := range segs {
		for j := i + 1; j < len(segs); j++ {
			a, b := segs[i], segs[j]
			aEnd := a.Addr + int64(len(a.Values))
			bEnd := b.Addr + int64(len(b.Values))
			if a.Addr < bEnd && b.Addr < aEnd {
				return true
			}
		}
	}
	return false
}
