// Package irtest provides deterministic random-program generators for
// property tests and fuzzing across the repository. The generators are
// deliberately in a separate package (not an _test.go file) so that
// ir's own property tests, the regalloc def-before-use test, and the
// checker fuzzer can all share one program distribution.
package irtest

import (
	"math/rand"

	"pathsched/internal/ir"
)

// RandCFGProg builds a random (reducible-or-not) CFG with n blocks:
// each block ends in a branch, jump, or switch to random targets, with
// block n-1 a return. Not executable — CFG analyses only (a random
// back edge loops forever under the interpreter).
func RandCFGProg(seed int64, n int) *ir.Program {
	rng := rand.New(rand.NewSource(seed))
	bd := ir.NewBuilder("randcfg", 4)
	pb := bd.Proc("main")
	bbs := pb.NewBlocks(n)
	for i := 0; i < n-1; i++ {
		bbs[i].Add(ir.MovI(1, int64(i)))
		switch rng.Intn(3) {
		case 0:
			bbs[i].Jmp(ir.BlockID(rng.Intn(n)))
		case 1:
			bbs[i].Br(1, ir.BlockID(rng.Intn(n)), ir.BlockID(rng.Intn(n)))
		default:
			k := 2 + rng.Intn(3)
			targets := make([]ir.BlockID, k)
			for j := range targets {
				targets[j] = ir.BlockID(rng.Intn(n))
			}
			bbs[i].Switch(1, targets...)
		}
	}
	bbs[n-1].Ret(0)
	prog := bd.Program()
	if err := ir.Verify(prog); err != nil {
		panic(err)
	}
	return prog
}

// RandExecProg builds a random *executable, guaranteed-terminating*
// program with about n blocks in main: bodies of ALU/compare/emit
// instructions that only read registers already written (arguments
// r1..r7 or defs earlier in the same block), forward-only branch and
// switch targets (so the CFG is a DAG), optionally one counted loop
// whose back edge is guarded by a strictly decreasing counter, and
// optionally calls into a small leaf procedure. No loads or stores, so
// no run can fault; every run terminates because the only cycle passes
// through the decrementing loop head.
func RandExecProg(seed int64, n int) *ir.Program {
	rng := rand.New(rand.NewSource(seed))
	if n < 4 {
		n = 4
	}
	bd := ir.NewBuilder("randexec", 16)
	main := bd.Proc("main")
	var leafID ir.ProcID
	hasLeaf := rng.Intn(2) == 0
	if hasLeaf {
		leaf := bd.Proc("leaf")
		leafID = leaf.ID()
		fillExecBlocks(leaf, 3+rng.Intn(3), rng, false, 0, false)
	}
	fillExecBlocks(main, n, rng, true, leafID, hasLeaf)
	prog := bd.Program()
	if err := ir.Verify(prog); err != nil {
		panic(err)
	}
	return prog
}

// Scratch registers the generator plays with; the loop counter and the
// branch-condition temporary live above them so body defs never
// clobber loop state.
const (
	scratchBase = ir.Reg(8)
	scratchN    = 8
	counterReg  = ir.Reg(24)
	condReg     = ir.Reg(25)
)

func fillExecBlocks(pb *ir.ProcBuilder, n int, rng *rand.Rand, allowLoop bool, callee ir.ProcID, hasCallee bool) {
	bbs := pb.NewBlocks(n)
	loopHead := -1
	if allowLoop && n >= 6 && rng.Intn(2) == 0 {
		loopHead = 1 + rng.Intn(n-4) // head in 1..n-4, body non-empty
	}
	for i := 0; i < n-1; i++ {
		bb := bbs[i]
		defined := []ir.Reg{1, 2, 3, 4, 5, 6, 7}
		if i == 0 && loopHead >= 0 {
			bb.Add(ir.MovI(counterReg, int64(2+rng.Intn(4))))
		}
		cur := scratchBase + ir.Reg(rng.Intn(scratchN))
		bb.Add(ir.MovI(cur, int64(rng.Intn(100))))
		defined = append(defined, cur)
		for j, k := 0, 1+rng.Intn(3); j < k; j++ {
			dst := scratchBase + ir.Reg(rng.Intn(scratchN))
			a := defined[rng.Intn(len(defined))]
			b := defined[rng.Intn(len(defined))]
			switch rng.Intn(5) {
			case 0:
				bb.Add(ir.Add(dst, a, b))
			case 1:
				bb.Add(ir.Sub(dst, a, b))
			case 2:
				bb.Add(ir.AddI(dst, a, int64(rng.Intn(16))))
			case 3:
				bb.Add(ir.CmpLT(dst, a, b))
			default:
				bb.Add(ir.Xor(dst, a, b))
			}
			defined = append(defined, dst)
		}
		if rng.Intn(3) == 0 {
			bb.Add(ir.Emit(defined[rng.Intn(len(defined))]))
		}

		fwd := func() ir.BlockID { return ir.BlockID(i + 1 + rng.Intn(n-i-1)) }
		cond := defined[len(defined)-1]
		switch {
		case i == loopHead:
			// The only block with an incoming back edge: strictly
			// decrease the counter and exit once it runs out, so the
			// loop is bounded no matter how control reached the head.
			bb.Add(ir.AddI(counterReg, counterReg, -1))
			bb.Add(ir.CmpGTI(condReg, counterReg, 0))
			bb.Br(condReg, ir.BlockID(i+1), ir.BlockID(n-1))
		case i == n-2 && loopHead >= 0:
			bb.Jmp(ir.BlockID(loopHead)) // the loop's sole back edge
		case hasCallee && rng.Intn(4) == 0:
			nargs := rng.Intn(3)
			args := make([]ir.Reg, nargs)
			for j := range args {
				args[j] = defined[rng.Intn(len(defined))]
			}
			bb.Call(scratchBase+ir.Reg(rng.Intn(scratchN)), callee, fwd(), args...)
		default:
			switch rng.Intn(3) {
			case 0:
				bb.Jmp(fwd())
			case 1:
				bb.Br(cond, fwd(), fwd())
			default:
				k := 2 + rng.Intn(3)
				targets := make([]ir.BlockID, k)
				for j := range targets {
					targets[j] = fwd()
				}
				bb.Switch(cond, targets...)
			}
		}
	}
	bbs[n-1].Add(ir.MovI(ir.RegRet, int64(rng.Intn(50))))
	bbs[n-1].Ret(ir.RegRet)
}
