package ir

import (
	"testing"
)

// fpBaseProgram builds a structurally rich program for fingerprint
// tests: two procedures, every terminator kind, a call with arguments,
// a speculative load, multiple data segments, and one block carrying
// schedule and superblock annotations.
func fpBaseProgram() *Program {
	bd := NewBuilder("fp-base", 64)
	bd.Data(0, 10, 20, 30)
	bd.Data(8, 7)
	bd.Data(16, 1, 2)

	helper := bd.Proc("helper")
	hb := helper.NewBlock()
	hb.Add(AddI(0, RegArg0, 5))
	hb.Ret(0)

	main := bd.Proc("main")
	bs := main.NewBlocks(5)
	bs[0].Add(MovI(1, 3), Load(2, 1, 0), Instr{Op: OpLoad, Dst: 3, Src1: 1, Imm: 1, Spec: true})
	bs[0].Br(2, bs[1].ID(), bs[2].ID())
	bs[1].Add(CmpLTI(4, 1, 10))
	bs[1].Switch(4, bs[2].ID(), bs[3].ID(), bs[2].ID())
	bs[2].Call(5, helper.ID(), bs[3].ID(), 1, 2)
	bs[3].Add(Emit(5))
	bs[3].Jmp(bs[4].ID())
	bs[4].Ret(5)

	prog := bd.Program()
	// Annotate one block as a scheduled merged superblock so the hash
	// covers schedule metadata.
	b := prog.Procs[1].Blocks[3]
	b.SBID, b.SBIndex, b.SBSize = 0, 0, 2
	b.ExitUnits = []int32{1, 2}
	b.Cycles = []int32{0, 1}
	b.Span = 2
	b.Addr = 128
	return prog
}

func TestFingerprintCloneAndRehashStable(t *testing.T) {
	prog := fpBaseProgram()
	h := Fingerprint(prog)
	if h2 := Fingerprint(prog); h2 != h {
		t.Fatalf("re-hashing the same program changed the digest: %s vs %s", h.Short(), h2.Short())
	}
	if hc := Fingerprint(CloneProgram(prog)); hc != h {
		t.Fatalf("cloning changed the digest: %s vs %s", h.Short(), hc.Short())
	}
}

func TestFingerprintDetectsMutations(t *testing.T) {
	base := Fingerprint(fpBaseProgram())
	cases := []struct {
		name string
		mut  func(*Program)
	}{
		{"swap-operands", func(p *Program) {
			ins := &p.Procs[1].Blocks[0].Instrs[1]
			ins.Src1, ins.Src2 = ins.Src2, ins.Src1
		}},
		{"flip-branch-target", func(p *Program) {
			term := p.Procs[1].Blocks[0].Terminator()
			term.Targets[0], term.Targets[1] = term.Targets[1], term.Targets[0]
		}},
		{"edit-data-word", func(p *Program) { p.Data[0].Values[1]++ }},
		{"change-imm", func(p *Program) { p.Procs[1].Blocks[0].Instrs[0].Imm++ }},
		{"toggle-spec", func(p *Program) { p.Procs[1].Blocks[0].Instrs[2].Spec = false }},
		{"change-opcode", func(p *Program) { p.Procs[1].Blocks[0].Instrs[0].Op = OpNop }},
		{"shrink-switch-table", func(p *Program) {
			term := p.Procs[1].Blocks[1].Terminator()
			term.Targets = term.Targets[:2]
		}},
		{"drop-call-arg", func(p *Program) {
			term := p.Procs[1].Blocks[2].Terminator()
			term.Args = term.Args[:1]
		}},
		{"change-callee", func(p *Program) { p.Procs[1].Blocks[2].Terminator().Callee = 1 }},
		{"append-instr", func(p *Program) {
			b := p.Procs[0].Blocks[0]
			b.Instrs = append(b.Instrs[:1:1], append([]Instr{Nop()}, b.Instrs[1:]...)...)
		}},
		{"change-memsize", func(p *Program) { p.MemSize++ }},
		{"change-main", func(p *Program) { p.Main = 0 }},
		{"unschedule-block", func(p *Program) { p.Procs[1].Blocks[3].Cycles = nil }},
		{"change-span", func(p *Program) { p.Procs[1].Blocks[3].Span++ }},
		{"change-addr", func(p *Program) { p.Procs[1].Blocks[3].Addr += 4 }},
		{"change-sbsize", func(p *Program) { p.Procs[1].Blocks[3].SBSize++ }},
		{"change-exit-units", func(p *Program) { p.Procs[1].Blocks[3].ExitUnits[0] = 9 }},
	}
	for _, tc := range cases {
		p := fpBaseProgram()
		tc.mut(p)
		if Fingerprint(p) == base {
			t.Errorf("%s: digest unchanged by structural mutation", tc.name)
		}
	}
}

func TestFingerprintNilVsEmptySchedule(t *testing.T) {
	a, b := fpBaseProgram(), fpBaseProgram()
	a.Procs[1].Blocks[0].Cycles = nil
	b.Procs[1].Blocks[0].Cycles = []int32{}
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("nil (unscheduled) and empty Cycles must hash differently")
	}
}

func TestFingerprintDataSegOrder(t *testing.T) {
	// Non-overlapping segments produce the same memory image in any
	// order, so permutations must collide.
	a, b := fpBaseProgram(), fpBaseProgram()
	b.Data[0], b.Data[2] = b.Data[2], b.Data[0]
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("permuting non-overlapping data segments changed the digest")
	}

	// Overlapping segments are order-sensitive: the later segment wins
	// in initMem, so swapped declarations are different programs.
	mkOverlap := func(first, second DataSeg) *Program {
		p := fpBaseProgram()
		p.Data = []DataSeg{first, second}
		return p
	}
	s1 := DataSeg{Addr: 0, Values: []int64{1, 2, 3}}
	s2 := DataSeg{Addr: 2, Values: []int64{9, 9}}
	if Fingerprint(mkOverlap(s1, s2)) == Fingerprint(mkOverlap(s2, s1)) {
		t.Fatal("permuting overlapping data segments must change the digest")
	}
}
