package ir

import (
	"errors"
	"fmt"
)

// Verify checks structural invariants of a program:
//
//   - every procedure has at least one block and every block at least
//     one instruction;
//   - exactly the last instruction of each block is a terminator;
//   - branch targets and call continuations name existing blocks;
//   - OpBr has exactly two targets, OpJmp and OpCall exactly one,
//     OpSwitch at least one;
//   - call callees name existing procedures and pass at most MaxArgs
//     arguments;
//   - schedule annotations, when present, cover every instruction and
//     are non-decreasing in cycle order.
//
// Transformation passes call Verify after mutating programs so that
// structural bugs surface at the pass that introduced them.
func Verify(prog *Program) error {
	if len(prog.Procs) == 0 {
		return errors.New("ir: program has no procedures")
	}
	if prog.Proc(prog.Main) == nil {
		return fmt.Errorf("ir: main procedure id %d out of range", prog.Main)
	}
	for _, p := range prog.Procs {
		if err := verifyProc(prog, p); err != nil {
			return fmt.Errorf("ir: proc %q: %w", p.Name, err)
		}
	}
	for _, seg := range prog.Data {
		if seg.Addr < 0 || seg.Addr+int64(len(seg.Values)) > prog.MemSize {
			return fmt.Errorf("ir: data segment [%d,%d) outside memory of %d words",
				seg.Addr, seg.Addr+int64(len(seg.Values)), prog.MemSize)
		}
	}
	return nil
}

func verifyProc(prog *Program, p *Proc) error {
	if len(p.Blocks) == 0 {
		return errors.New("no blocks")
	}
	seen := make(map[BlockID]int, len(p.Blocks))
	for i, b := range p.Blocks {
		if j, dup := seen[b.ID]; dup {
			return fmt.Errorf("duplicate block id b%d at indices %d and %d", b.ID, j, i)
		}
		seen[b.ID] = i
		if b.ID != BlockID(i) {
			return fmt.Errorf("block at index %d has id b%d", i, b.ID)
		}
		if err := verifyBlock(prog, p, b); err != nil {
			return fmt.Errorf("block b%d: %w", b.ID, err)
		}
	}
	return nil
}

func verifyBlock(prog *Program, p *Proc, b *Block) error {
	if len(b.Instrs) == 0 {
		return errors.New("empty block")
	}
	if b.Origin < 0 || int(b.Origin) >= len(p.Blocks) {
		return fmt.Errorf("origin b%d out of range", b.Origin)
	}
	for i := range b.Instrs {
		ins := &b.Instrs[i]
		last := i == len(b.Instrs)-1
		if last {
			if !ins.Op.IsTerminator() {
				return fmt.Errorf("last instruction %s is not a terminator", ins.Op)
			}
			for _, t := range ins.Targets {
				if t == NoBlock {
					return errors.New("final terminator has a fall-through slot")
				}
			}
		} else if ins.Op.IsTerminator() {
			// Mid-block control is only legal in merged superblocks,
			// and only for ops that can fall through via a NoBlock slot.
			if err := verifyMidBlockControl(ins); err != nil {
				return fmt.Errorf("instr %d: %w", i, err)
			}
		}
		if err := verifyInstr(prog, p, ins); err != nil {
			return fmt.Errorf("instr %d (%s): %w", i, ins.Op, err)
		}
	}
	if b.ExitUnits != nil && len(b.ExitUnits) != len(b.Instrs) {
		return fmt.Errorf("ExitUnits covers %d of %d instructions", len(b.ExitUnits), len(b.Instrs))
	}
	if b.Units != nil {
		if len(b.Units) != len(b.Instrs) {
			return fmt.Errorf("Units covers %d of %d instructions", len(b.Units), len(b.Instrs))
		}
		for i, u := range b.Units {
			if u < 1 || (b.SBSize > 0 && u > b.SBSize) {
				return fmt.Errorf("Units[%d] = %d outside unit range 1..%d", i, u, b.SBSize)
			}
		}
	}
	if b.Cycles != nil {
		if len(b.Cycles) != len(b.Instrs) {
			return fmt.Errorf("schedule covers %d of %d instructions", len(b.Cycles), len(b.Instrs))
		}
		for i := 1; i < len(b.Cycles); i++ {
			if b.Cycles[i] < b.Cycles[i-1] {
				return fmt.Errorf("schedule cycles not monotone at %d", i)
			}
		}
		if b.Span <= b.Cycles[len(b.Cycles)-1] {
			return fmt.Errorf("span %d does not cover last cycle %d", b.Span, b.Cycles[len(b.Cycles)-1])
		}
	}
	return nil
}

// verifyMidBlockControl checks that a control instruction appearing
// before the end of a block (inside a merged superblock) can fall
// through to the next instruction.
func verifyMidBlockControl(ins *Instr) error {
	fallSlots := 0
	for _, t := range ins.Targets {
		if t == NoBlock {
			fallSlots++
		}
	}
	switch ins.Op {
	case OpBr:
		if fallSlots != 1 {
			return fmt.Errorf("mid-block br needs exactly one fall-through slot, has %d", fallSlots)
		}
	case OpSwitch:
		if fallSlots < 1 {
			return errors.New("mid-block switch needs a fall-through slot")
		}
	case OpCall:
		if fallSlots != 1 {
			return errors.New("mid-block call must fall through")
		}
	default:
		return fmt.Errorf("%s not allowed mid-block", ins.Op)
	}
	return nil
}

func verifyInstr(prog *Program, p *Proc, ins *Instr) error {
	checkTarget := func(t BlockID) error {
		if t == NoBlock {
			return nil // fall-through slot; position legality checked by caller
		}
		if t < 0 || int(t) >= len(p.Blocks) {
			return fmt.Errorf("target b%d out of range", t)
		}
		return nil
	}
	switch ins.Op {
	case OpBr:
		if len(ins.Targets) != 2 {
			return fmt.Errorf("br needs 2 targets, has %d", len(ins.Targets))
		}
	case OpJmp:
		if len(ins.Targets) != 1 {
			return fmt.Errorf("jmp needs 1 target, has %d", len(ins.Targets))
		}
	case OpSwitch:
		if len(ins.Targets) == 0 {
			return errors.New("switch needs at least one target")
		}
	case OpCall:
		if len(ins.Targets) != 1 {
			return fmt.Errorf("call needs 1 continuation, has %d", len(ins.Targets))
		}
		if prog.Proc(ins.Callee) == nil {
			return fmt.Errorf("callee %d out of range", ins.Callee)
		}
		if len(ins.Args) > MaxArgs {
			return fmt.Errorf("%d args exceeds max %d", len(ins.Args), MaxArgs)
		}
	case OpRet:
		if len(ins.Targets) != 0 {
			return errors.New("ret must not have targets")
		}
	default:
		if len(ins.Targets) != 0 {
			return errors.New("non-control instruction with targets")
		}
	}
	for _, t := range ins.Targets {
		if err := checkTarget(t); err != nil {
			return err
		}
	}
	for _, r := range [...]Reg{ins.Dst, ins.Src1, ins.Src2} {
		if r < 0 {
			return fmt.Errorf("negative register %d", r)
		}
	}
	for _, r := range ins.Args {
		if r < 0 {
			return fmt.Errorf("negative argument register %d", r)
		}
	}
	return nil
}
