package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randCFGProg builds a random (reducible-or-not) CFG with n blocks:
// each block ends in a branch or jump to random targets, with block
// n-1 a return. Not executable — CFG analyses only.
func randCFGProg(seed int64, n int) *Program {
	rng := rand.New(rand.NewSource(seed))
	bd := NewBuilder("randcfg", 4)
	pb := bd.Proc("main")
	bbs := pb.NewBlocks(n)
	for i := 0; i < n-1; i++ {
		bbs[i].Add(MovI(1, int64(i)))
		switch rng.Intn(3) {
		case 0:
			bbs[i].Jmp(BlockID(rng.Intn(n)))
		case 1:
			bbs[i].Br(1, BlockID(rng.Intn(n)), BlockID(rng.Intn(n)))
		default:
			k := 2 + rng.Intn(3)
			targets := make([]BlockID, k)
			for j := range targets {
				targets[j] = BlockID(rng.Intn(n))
			}
			bbs[i].Switch(1, targets...)
		}
	}
	bbs[n-1].Ret(0)
	prog := bd.Program()
	if err := Verify(prog); err != nil {
		panic(err)
	}
	return prog
}

// Property: the immediate dominator of every reachable non-entry block
// strictly dominates it, and domination is consistent with reachability
// (removing a dominator disconnects the block).
func TestDominatorProperties(t *testing.T) {
	check := func(seed int64, sz uint8) bool {
		n := int(sz%12) + 3
		prog := randCFGProg(seed, n)
		p := prog.Proc(0)
		g := NewCFG(p)
		entry := p.Entry().ID
		for _, b := range p.Blocks {
			if !g.Reachable(b.ID) || b.ID == entry {
				continue
			}
			id := g.IDom(b.ID)
			if id == NoBlock {
				return false
			}
			if !g.Dominates(id, b.ID) || id == b.ID {
				return false
			}
			// Entry dominates everything reachable.
			if !g.Dominates(entry, b.ID) {
				return false
			}
			// Check against a brute-force reachability-based oracle:
			// id dominates b iff b is unreachable when id is removed.
			if reachableWithout(g, p, entry, b.ID, id) {
				t.Logf("seed %d: b%d reachable without its idom b%d", seed, b.ID, id)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// reachableWithout reports whether target is reachable from entry while
// never passing through banned.
func reachableWithout(g *CFG, p *Proc, entry, target, banned BlockID) bool {
	if entry == banned {
		return false
	}
	seen := map[BlockID]bool{entry: true}
	stack := []BlockID{entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == target {
			return true
		}
		for _, s := range g.Succs(b) {
			if s != banned && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// Property: every back edge's natural loop contains both endpoints and
// is closed under predecessors (except through the header).
func TestNaturalLoopProperties(t *testing.T) {
	check := func(seed int64, sz uint8) bool {
		n := int(sz%10) + 3
		prog := randCFGProg(seed, n)
		p := prog.Proc(0)
		g := NewCFG(p)
		for _, b := range p.Blocks {
			if !g.Reachable(b.ID) {
				continue
			}
			for _, s := range g.Succs(b.ID) {
				if !g.IsBackEdge(b.ID, s) {
					continue
				}
				loop := g.NaturalLoop(b.ID, s)
				if loop == nil || !loop[b.ID] || !loop[s] {
					return false
				}
				for m := range loop {
					if m == s {
						continue
					}
					for _, pr := range g.Preds(m) {
						if g.Reachable(pr) && !loop[pr] {
							t.Logf("seed %d: loop of b%d->b%d not closed at b%d (pred b%d)",
								seed, b.ID, s, m, pr)
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: text round-trip is the identity on random CFG programs.
func TestTextRoundTripProperty(t *testing.T) {
	check := func(seed int64, sz uint8) bool {
		prog := randCFGProg(seed, int(sz%10)+3)
		text := WriteText(prog)
		back, err := ParseText(text)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return WriteText(back) == text
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
