package ir_test

import (
	"testing"
	"testing/quick"

	. "pathsched/internal/ir"
	"pathsched/internal/ir/irtest"
)

// The random-program generator lives in irtest so that regalloc's
// def-before-use property test and the checker fuzzer share it; this
// file keeps the CFG-analysis properties it was written for.

// Property: the immediate dominator of every reachable non-entry block
// strictly dominates it, and domination is consistent with reachability
// (removing a dominator disconnects the block).
func TestDominatorProperties(t *testing.T) {
	check := func(seed int64, sz uint8) bool {
		n := int(sz%12) + 3
		prog := irtest.RandCFGProg(seed, n)
		p := prog.Proc(0)
		g := NewCFG(p)
		entry := p.Entry().ID
		for _, b := range p.Blocks {
			if !g.Reachable(b.ID) || b.ID == entry {
				continue
			}
			id := g.IDom(b.ID)
			if id == NoBlock {
				return false
			}
			if !g.Dominates(id, b.ID) || id == b.ID {
				return false
			}
			// Entry dominates everything reachable.
			if !g.Dominates(entry, b.ID) {
				return false
			}
			// Check against a brute-force reachability-based oracle:
			// id dominates b iff b is unreachable when id is removed.
			if reachableWithout(g, p, entry, b.ID, id) {
				t.Logf("seed %d: b%d reachable without its idom b%d", seed, b.ID, id)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// reachableWithout reports whether target is reachable from entry while
// never passing through banned.
func reachableWithout(g *CFG, p *Proc, entry, target, banned BlockID) bool {
	if entry == banned {
		return false
	}
	seen := map[BlockID]bool{entry: true}
	stack := []BlockID{entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == target {
			return true
		}
		for _, s := range g.Succs(b) {
			if s != banned && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// Property: every back edge's natural loop contains both endpoints and
// is closed under predecessors (except through the header).
func TestNaturalLoopProperties(t *testing.T) {
	check := func(seed int64, sz uint8) bool {
		n := int(sz%10) + 3
		prog := irtest.RandCFGProg(seed, n)
		p := prog.Proc(0)
		g := NewCFG(p)
		for _, b := range p.Blocks {
			if !g.Reachable(b.ID) {
				continue
			}
			for _, s := range g.Succs(b.ID) {
				if !g.IsBackEdge(b.ID, s) {
					continue
				}
				loop := g.NaturalLoop(b.ID, s)
				if loop == nil || !loop[b.ID] || !loop[s] {
					return false
				}
				for m := range loop {
					if m == s {
						continue
					}
					for _, pr := range g.Preds(m) {
						if g.Reachable(pr) && !loop[pr] {
							t.Logf("seed %d: loop of b%d->b%d not closed at b%d (pred b%d)",
								seed, b.ID, s, m, pr)
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: text round-trip is the identity on random CFG programs.
func TestTextRoundTripProperty(t *testing.T) {
	check := func(seed int64, sz uint8) bool {
		prog := irtest.RandCFGProg(seed, int(sz%10)+3)
		text := WriteText(prog)
		back, err := ParseText(text)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return WriteText(back) == text
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
