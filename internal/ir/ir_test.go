package ir

import (
	"strings"
	"testing"
)

// diamond builds the Figure 1 CFG: A -> {B, X-side}, B -> {C, Y}, with
// an extra side-entrance X -> B and side exit B -> Y, all funneling to
// an exit block.
//
//	entry A: br -> B or X
//	X: jmp B        (side entrance into the AB trace)
//	B: br -> C or Y (side exit)
//	C: jmp exit
//	Y: jmp exit
//	exit: ret
func diamond(t *testing.T) *Program {
	t.Helper()
	bd := NewBuilder("diamond", 16)
	pb := bd.Proc("main")
	blocks := pb.NewBlocks(6)
	a, x, b, c, y, exit := blocks[0], blocks[1], blocks[2], blocks[3], blocks[4], blocks[5]
	a.Add(MovI(1, 1))
	a.Br(1, b.ID(), x.ID())
	x.Add(MovI(2, 2))
	x.Jmp(b.ID())
	b.Add(AddI(3, 1, 5))
	b.Br(3, c.ID(), y.ID())
	c.Add(Emit(3))
	c.Jmp(exit.ID())
	y.Add(Emit(2))
	y.Jmp(exit.ID())
	exit.Ret(0)
	return bd.Finish()
}

// loopProg builds: entry -> head; head -> body or exit; body -> head.
func loopProg(t *testing.T) *Program {
	t.Helper()
	bd := NewBuilder("loop", 16)
	pb := bd.Proc("main")
	entry, head, body, exit := pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	entry.Add(MovI(1, 0))
	entry.Jmp(head.ID())
	head.Add(CmpLTI(2, 1, 10))
	head.Br(2, body.ID(), exit.ID())
	body.Add(AddI(1, 1, 1))
	body.Jmp(head.ID())
	exit.Ret(1)
	return bd.Finish()
}

func TestBuilderProducesValidProgram(t *testing.T) {
	prog := diamond(t)
	if err := Verify(prog); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := len(prog.Procs); got != 1 {
		t.Fatalf("procs = %d, want 1", got)
	}
	if prog.Proc(prog.Main).Name != "main" {
		t.Fatalf("main proc is %q", prog.Proc(prog.Main).Name)
	}
}

func TestSuccsAndPreds(t *testing.T) {
	prog := diamond(t)
	cfg := NewCFG(prog.Proc(0))
	wantSuccs := map[BlockID][]BlockID{
		0: {2, 1}, // A: taken B, fallthru X
		1: {2},
		2: {3, 4},
		3: {5},
		4: {5},
		5: nil,
	}
	for b, want := range wantSuccs {
		got := cfg.Succs(b)
		if len(got) != len(want) {
			t.Fatalf("succs(b%d) = %v, want %v", b, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("succs(b%d) = %v, want %v", b, got, want)
			}
		}
	}
	if got := cfg.Preds(2); len(got) != 2 {
		t.Fatalf("preds(b2) = %v, want 2 predecessors", got)
	}
	if got := cfg.Preds(5); len(got) != 2 {
		t.Fatalf("preds(b5) = %v, want 2 predecessors", got)
	}
}

func TestDominators(t *testing.T) {
	prog := diamond(t)
	cfg := NewCFG(prog.Proc(0))
	cases := []struct {
		a, b BlockID
		want bool
	}{
		{0, 0, true},
		{0, 5, true},
		{0, 2, true},
		{2, 3, true},
		{2, 4, true},
		{1, 2, false}, // X does not dominate B (A reaches B directly)
		{3, 5, false},
		{4, 5, false},
		{2, 5, true}, // all paths to exit pass through B
	}
	for _, c := range cases {
		if got := cfg.Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(b%d, b%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestBackEdgesAndLoops(t *testing.T) {
	prog := loopProg(t)
	cfg := NewCFG(prog.Proc(0))
	if !cfg.IsBackEdge(2, 1) {
		t.Fatal("body->head should be a back edge")
	}
	if cfg.IsBackEdge(0, 1) {
		t.Fatal("entry->head must not be a back edge")
	}
	if !cfg.IsLoopHead(1) {
		t.Fatal("head should be a loop head")
	}
	if cfg.IsLoopHead(0) || cfg.IsLoopHead(3) {
		t.Fatal("entry/exit must not be loop heads")
	}
	loop := cfg.NaturalLoop(2, 1)
	if len(loop) != 2 || !loop[1] || !loop[2] {
		t.Fatalf("natural loop = %v, want {head, body}", loop)
	}
	if cfg.NaturalLoop(0, 1) != nil {
		t.Fatal("NaturalLoop on a non-back-edge must return nil")
	}
}

func TestSelfLoopIsBackEdge(t *testing.T) {
	bd := NewBuilder("self", 4)
	pb := bd.Proc("main")
	entry, lp, exit := pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	entry.Jmp(lp.ID())
	lp.Add(AddI(1, 1, 1), CmpLTI(2, 1, 5))
	lp.Br(2, lp.ID(), exit.ID())
	exit.Ret(1)
	prog := bd.Finish()
	cfg := NewCFG(prog.Proc(0))
	if !cfg.IsBackEdge(1, 1) {
		t.Fatal("self edge should be a back edge")
	}
	loop := cfg.NaturalLoop(1, 1)
	if len(loop) != 1 || !loop[1] {
		t.Fatalf("self natural loop = %v", loop)
	}
}

func TestRPOStartsAtEntryAndCoversReachable(t *testing.T) {
	prog := diamond(t)
	cfg := NewCFG(prog.Proc(0))
	rpo := cfg.RPO()
	if len(rpo) != 6 {
		t.Fatalf("rpo covers %d blocks, want 6", len(rpo))
	}
	if rpo[0] != 0 {
		t.Fatalf("rpo[0] = b%d, want entry b0", rpo[0])
	}
	// Every edge that is not a back edge must go forward in RPO.
	pos := map[BlockID]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	for _, b := range prog.Proc(0).Blocks {
		for _, s := range b.Succs() {
			if !cfg.IsBackEdge(b.ID, s) && pos[s] <= pos[b.ID] {
				t.Errorf("forward edge b%d->b%d goes backward in RPO", b.ID, s)
			}
		}
	}
}

func TestUnreachableBlockHandled(t *testing.T) {
	bd := NewBuilder("unreach", 4)
	pb := bd.Proc("main")
	entry, dead, exit := pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	entry.Jmp(exit.ID())
	dead.Jmp(exit.ID())
	exit.Ret(0)
	prog := bd.Finish()
	cfg := NewCFG(prog.Proc(0))
	if cfg.Reachable(dead.ID()) {
		t.Fatal("dead block must be unreachable")
	}
	if cfg.Dominates(0, dead.ID()) {
		t.Fatal("nothing dominates an unreachable block")
	}
	_ = entry
}

func TestVerifyCatchesErrors(t *testing.T) {
	mk := func(mutate func(*Program)) error {
		prog := diamond(t)
		mutate(prog)
		return Verify(prog)
	}
	cases := []struct {
		name   string
		mutate func(*Program)
	}{
		{"empty block", func(p *Program) { p.Procs[0].Blocks[1].Instrs = nil }},
		{"missing terminator", func(p *Program) {
			b := p.Procs[0].Blocks[1]
			b.Instrs = []Instr{MovI(1, 1)}
		}},
		{"terminator mid-block", func(p *Program) {
			b := p.Procs[0].Blocks[1]
			b.Instrs = append([]Instr{Jmp(2)}, b.Instrs...)
		}},
		{"bad target", func(p *Program) {
			p.Procs[0].Blocks[1].Terminator().Targets[0] = 99
		}},
		{"bad callee", func(p *Program) {
			b := p.Procs[0].Blocks[1]
			b.Instrs[len(b.Instrs)-1] = Call(0, 42, 2)
		}},
		{"data out of range", func(p *Program) {
			p.Data = append(p.Data, DataSeg{Addr: p.MemSize, Values: []int64{1}})
		}},
		{"br wrong arity", func(p *Program) {
			p.Procs[0].Blocks[0].Terminator().Targets = []BlockID{2}
		}},
	}
	for _, c := range cases {
		if err := mk(c.mutate); err == nil {
			t.Errorf("%s: Verify accepted invalid program", c.name)
		}
	}
}

func TestVerifyScheduleAnnotations(t *testing.T) {
	prog := diamond(t)
	b := prog.Procs[0].Blocks[0]
	b.Cycles = []int32{0, 0}
	b.Span = 1
	if err := Verify(prog); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	b.Cycles = []int32{1, 0}
	if err := Verify(prog); err == nil {
		t.Fatal("non-monotone schedule accepted")
	}
	b.Cycles = []int32{0, 3}
	b.Span = 3
	if err := Verify(prog); err == nil {
		t.Fatal("span not covering last cycle accepted")
	}
}

func TestUsesAndDefs(t *testing.T) {
	cases := []struct {
		ins     Instr
		uses    []Reg
		defines bool
	}{
		{MovI(3, 7), nil, true},
		{Mov(3, 4), []Reg{4}, true},
		{Add(1, 2, 3), []Reg{2, 3}, true},
		{AddI(1, 2, 5), []Reg{2}, true},
		{Load(1, 2, 0), []Reg{2}, true},
		{Store(2, 0, 3), []Reg{2, 3}, false},
		{Emit(4), []Reg{4}, false},
		{Br(5, 0, 1), []Reg{5}, false},
		{Jmp(0), nil, false},
		{Ret(0), []Reg{0}, false},
		{Call(1, 0, 0, 2, 3), []Reg{2, 3}, true},
		{Switch(6, 0, 1), []Reg{6}, false},
	}
	for _, c := range cases {
		got := c.ins.Uses(nil)
		if len(got) != len(c.uses) {
			t.Errorf("%s: uses = %v, want %v", c.ins.Op, got, c.uses)
			continue
		}
		for i := range got {
			if got[i] != c.uses[i] {
				t.Errorf("%s: uses = %v, want %v", c.ins.Op, got, c.uses)
			}
		}
		if c.ins.HasDst() != c.defines {
			t.Errorf("%s: HasDst = %v, want %v", c.ins.Op, c.ins.HasDst(), c.defines)
		}
	}
}

func TestCanSpeculate(t *testing.T) {
	if !Load(1, 2, 0).CanSpeculate() {
		t.Error("loads must be speculatable (non-excepting variants exist)")
	}
	if Store(1, 0, 2).CanSpeculate() {
		t.Error("stores must not speculate")
	}
	if Emit(1).CanSpeculate() {
		t.Error("emits must not speculate")
	}
	if Br(1, 0, 0).CanSpeculate() {
		t.Error("branches must not speculate")
	}
	if !Add(1, 2, 3).CanSpeculate() {
		t.Error("ALU ops must speculate")
	}
}

func TestCloneProgramIsDeep(t *testing.T) {
	prog := diamond(t)
	cp := CloneProgram(prog)
	cp.Procs[0].Blocks[0].Instrs[0].Imm = 999
	cp.Procs[0].Blocks[0].Terminator().Targets[0] = 5
	if prog.Procs[0].Blocks[0].Instrs[0].Imm == 999 {
		t.Fatal("instruction mutation leaked into original")
	}
	if prog.Procs[0].Blocks[0].Terminator().Targets[0] == 5 {
		t.Fatal("target mutation leaked into original")
	}
	cp.Data = append(cp.Data, DataSeg{})
	if len(prog.Data) == len(cp.Data) {
		t.Fatal("data slice shared")
	}
}

func TestCloneBlockTracksOrigin(t *testing.T) {
	prog := diamond(t)
	p := prog.Proc(0)
	orig := p.Blocks[2]
	c1 := CloneBlockInto(p, orig)
	if c1.Origin != orig.ID {
		t.Fatalf("first-generation clone origin = b%d, want b%d", c1.Origin, orig.ID)
	}
	c2 := CloneBlockInto(p, c1)
	if c2.Origin != orig.ID {
		t.Fatalf("second-generation clone origin = b%d, want original b%d", c2.Origin, orig.ID)
	}
	c1.Instrs[0].Imm = 123
	if orig.Instrs[0].Imm == 123 {
		t.Fatal("clone shares instruction storage with original")
	}
}

func TestRedirectEdges(t *testing.T) {
	prog := diamond(t)
	p := prog.Proc(0)
	n := RedirectEdges(p.Blocks[0], 2, 3)
	if n != 1 {
		t.Fatalf("redirected %d edges, want 1", n)
	}
	if p.Blocks[0].Terminator().Targets[0] != 3 {
		t.Fatal("edge not redirected")
	}
}

func TestNewVirtReg(t *testing.T) {
	p := &Proc{}
	r1, r2 := p.NewVirtReg(), p.NewVirtReg()
	if !r1.IsVirtual() || !r2.IsVirtual() {
		t.Fatal("NewVirtReg must return virtual registers")
	}
	if r1 == r2 {
		t.Fatal("NewVirtReg returned duplicate registers")
	}
	if r1.String() != "v0" {
		t.Fatalf("first virtual reg prints as %q, want v0", r1.String())
	}
}

func TestDumpContainsStructure(t *testing.T) {
	prog := diamond(t)
	prog.Procs[0].Blocks[1].Origin = 2 // pretend it's a copy
	text := prog.Dump()
	for _, want := range []string{"program diamond", "proc main", "b0", "br r1, b2, b1", "(copy of b2)", "ret r0"} {
		if !strings.Contains(text, want) {
			t.Errorf("dump missing %q:\n%s", want, text)
		}
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := map[string]Instr{
		"movi r1, 7":                   MovI(1, 7),
		"add r1, r2, r3":               Add(1, 2, 3),
		"load r1, [r2+4]":              Load(1, 2, 4),
		"store [r2+4], r3":             Store(2, 4, 3),
		"br r1, b0, b1":                Br(1, 0, 1),
		"switch r1, b0 b1 b2":          Switch(1, 0, 1, 2),
		"ret r0":                       Ret(0),
		"emit r5":                      Emit(5),
		"cmplti r1, r2, 3":             CmpLTI(1, 2, 3),
		"call r1, proc2(r3, r4) -> b5": Call(1, 2, 5, 3, 4),
	}
	for want, ins := range cases {
		if got := ins.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	spec := Load(1, 2, 0)
	spec.Spec = true
	if got := spec.String(); !strings.HasPrefix(got, "load.s") {
		t.Errorf("speculative load prints as %q", got)
	}
}

func TestMaxRegAndCounts(t *testing.T) {
	prog := diamond(t)
	p := prog.Proc(0)
	if got := p.MaxReg(); got != PhysRegs-1 {
		t.Fatalf("MaxReg = %d, want %d (small programs still cover the file)", got, PhysRegs-1)
	}
	v := p.NewVirtReg()
	p.Blocks[0].Instrs[0].Dst = v
	if got := p.MaxReg(); got != v {
		t.Fatalf("MaxReg = %d, want %d", got, v)
	}
	if prog.NumInstrs() != 11 {
		t.Fatalf("NumInstrs = %d, want 11", prog.NumInstrs())
	}
	if prog.CodeBytes() != 44 {
		t.Fatalf("CodeBytes = %d, want 44", prog.CodeBytes())
	}
}
