package ir

// CloneBlockInto appends a copy of src to p and returns the new block.
// The clone's Origin is src's Origin, so origin chains always point at
// the pristine original block regardless of how many generations of
// duplication formation performs. Schedule annotations are dropped:
// clones are produced before compaction.
func CloneBlockInto(p *Proc, src *Block) *Block {
	nb := p.AddBlock(src.Origin)
	nb.Instrs = make([]Instr, len(src.Instrs))
	for i := range src.Instrs {
		nb.Instrs[i] = src.Instrs[i].Clone()
	}
	return nb
}

// CloneProgram deep-copies a whole program, so that destructive passes
// can run while the original remains available for differential
// testing.
func CloneProgram(prog *Program) *Program {
	out := &Program{
		Name:    prog.Name,
		Main:    prog.Main,
		MemSize: prog.MemSize,
	}
	out.Data = make([]DataSeg, len(prog.Data))
	for i, seg := range prog.Data {
		out.Data[i] = DataSeg{Addr: seg.Addr, Values: append([]int64(nil), seg.Values...)}
	}
	out.Procs = make([]*Proc, len(prog.Procs))
	for i, p := range prog.Procs {
		np := &Proc{ID: p.ID, Name: p.Name, nextVirt: p.nextVirt}
		np.Blocks = make([]*Block, len(p.Blocks))
		for j, b := range p.Blocks {
			nb := &Block{
				ID:      b.ID,
				Origin:  b.Origin,
				SBID:    b.SBID,
				SBIndex: b.SBIndex,
				SBSize:  b.SBSize,
				Span:    b.Span,
				Addr:    b.Addr,
			}
			if b.ExitUnits != nil {
				nb.ExitUnits = append([]int32(nil), b.ExitUnits...)
			}
			if b.Units != nil {
				nb.Units = append([]int32(nil), b.Units...)
			}
			if b.UnitOrigins != nil {
				nb.UnitOrigins = append([]BlockID(nil), b.UnitOrigins...)
			}
			nb.Instrs = make([]Instr, len(b.Instrs))
			for k := range b.Instrs {
				nb.Instrs[k] = b.Instrs[k].Clone()
			}
			if b.Cycles != nil {
				nb.Cycles = append([]int32(nil), b.Cycles...)
			}
			np.Blocks[j] = nb
		}
		out.Procs[i] = np
	}
	return out
}

// RedirectEdges rewrites every occurrence of target old in b's
// terminator to new. It returns the number of rewritten targets.
func RedirectEdges(b *Block, old, new BlockID) int {
	t := b.Terminator()
	n := 0
	for i, tgt := range t.Targets {
		if tgt == old {
			t.Targets[i] = new
			n++
		}
	}
	return n
}
