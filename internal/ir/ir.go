// Package ir defines the compiler intermediate representation used
// throughout pathsched: a conventional three-address, register-based IR
// organized into basic blocks, procedures, and whole programs, together
// with the control-flow analyses (dominators, back edges, natural
// loops) that superblock formation depends on.
//
// The IR deliberately mirrors the Alpha-derived machine model of Young
// and Smith (MICRO-31, 1998): simple integer operations, loads and
// stores against a flat word-addressed memory, two-way conditional
// branches, multiway switches, calls, and returns. Every basic block
// ends in an explicit terminator; there is no implicit fallthrough, so
// the CFG is fully described by instruction operands and blocks can be
// reordered freely by layout.
package ir

import (
	"fmt"
	"sync/atomic"
)

// Reg names an integer register. Registers 0..PhysRegs-1 are physical;
// anything at or above VirtBase is a virtual register introduced by
// renaming and later mapped back down by register allocation.
type Reg int32

// PhysRegs is the size of the architected integer register file
// (the paper's experimental machine has 128 integer registers).
const PhysRegs = 128

// VirtBase is the first virtual register number.
const VirtBase Reg = PhysRegs

// IsVirtual reports whether r is a virtual (pre-allocation) register.
func (r Reg) IsVirtual() bool { return r >= VirtBase }

func (r Reg) String() string {
	if r.IsVirtual() {
		return fmt.Sprintf("v%d", int32(r-VirtBase))
	}
	return fmt.Sprintf("r%d", int32(r))
}

// Conventional register assignments used by the call protocol.
const (
	RegRet  Reg = 0 // return value lives in r0
	RegArg0 Reg = 1 // first argument in r1, then r2, ...
	MaxArgs     = 7 // r1..r7 carry arguments
)

// BlockID identifies a basic block within its procedure.
type BlockID int32

// NoBlock is the nil block id.
const NoBlock BlockID = -1

// ProcID identifies a procedure within a program.
type ProcID int32

// Opcode enumerates IR operations.
type Opcode uint8

// The instruction set. Register-register forms take Src1 and Src2;
// register-immediate forms take Src1 and Imm.
const (
	OpNop Opcode = iota

	// Data movement.
	OpMovI // Dst = Imm
	OpMov  // Dst = Src1

	// Arithmetic and logic, register-register.
	OpAdd // Dst = Src1 + Src2
	OpSub // Dst = Src1 - Src2
	OpMul // Dst = Src1 * Src2
	OpAnd // Dst = Src1 & Src2
	OpOr  // Dst = Src1 | Src2
	OpXor // Dst = Src1 ^ Src2
	OpShl // Dst = Src1 << (Src2 & 63)
	OpShr // Dst = Src1 >> (Src2 & 63) (arithmetic)

	// Arithmetic and logic, register-immediate.
	OpAddI // Dst = Src1 + Imm
	OpMulI // Dst = Src1 * Imm
	OpAndI // Dst = Src1 & Imm
	OpOrI  // Dst = Src1 | Imm
	OpXorI // Dst = Src1 ^ Imm
	OpShlI // Dst = Src1 << (Imm & 63)
	OpShrI // Dst = Src1 >> (Imm & 63)

	// Comparisons produce 0 or 1.
	OpCmpEQ // Dst = Src1 == Src2
	OpCmpNE // Dst = Src1 != Src2
	OpCmpLT // Dst = Src1 < Src2
	OpCmpLE // Dst = Src1 <= Src2
	OpCmpEQI
	OpCmpNEI
	OpCmpLTI
	OpCmpLEI
	OpCmpGTI
	OpCmpGEI

	// Memory. Addresses index a flat array of 64-bit words.
	OpLoad  // Dst = mem[Src1 + Imm]
	OpStore // mem[Src1 + Imm] = Src2

	// Observable output: appends Src1 to the program's output stream.
	// Used to check semantic equivalence across transformations.
	OpEmit

	// Control flow (terminators).
	OpBr     // if Src1 != 0 goto Targets[0] else goto Targets[1]
	OpJmp    // goto Targets[0]
	OpSwitch // goto Targets[Src1] if in range, else Targets[len-1]
	OpCall   // Dst = Callee(Args...); falls through to Targets[0]
	OpRet    // return Src1

	numOpcodes
)

var opNames = [numOpcodes]string{
	OpNop: "nop", OpMovI: "movi", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpAddI: "addi", OpMulI: "muli", OpAndI: "andi", OpOrI: "ori",
	OpXorI: "xori", OpShlI: "shli", OpShrI: "shri",
	OpCmpEQ: "cmpeq", OpCmpNE: "cmpne", OpCmpLT: "cmplt", OpCmpLE: "cmple",
	OpCmpEQI: "cmpeqi", OpCmpNEI: "cmpnei", OpCmpLTI: "cmplti",
	OpCmpLEI: "cmplei", OpCmpGTI: "cmpgti", OpCmpGEI: "cmpgei",
	OpLoad: "load", OpStore: "store", OpEmit: "emit",
	OpBr: "br", OpJmp: "jmp", OpSwitch: "switch", OpCall: "call", OpRet: "ret",
}

func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Instr is a single IR instruction. The zero value is a nop.
type Instr struct {
	Op   Opcode
	Dst  Reg
	Src1 Reg
	Src2 Reg
	Imm  int64

	// Targets holds branch targets. For OpBr, Targets[0] is the taken
	// target and Targets[1] the not-taken target; for OpJmp and OpCall
	// it holds the single continuation; for OpSwitch it holds the jump
	// table with the final entry acting as the default.
	Targets []BlockID

	// Callee and Args describe OpCall: the callee procedure and the
	// caller registers whose values are copied into the callee's
	// argument registers r1..rN.
	Callee ProcID
	Args   []Reg

	// Spec marks a speculative (non-excepting) variant, produced when
	// the scheduler hoists an instruction above a branch. A speculative
	// load of an unmapped address yields zero instead of faulting.
	Spec bool
}

// Block is a basic block: a straight-line instruction sequence ending
// in exactly one terminator.
type Block struct {
	ID     BlockID
	Instrs []Instr

	// Origin is the block this one was cloned from during superblock
	// formation; for original blocks it equals ID. Origin chains are
	// flattened: every clone points at the *original* block.
	Origin BlockID

	// SBID is the superblock this block belongs to after formation
	// (-1 when formation has not run or the block is not in one), and
	// SBIndex its position within that superblock.
	SBID    int32
	SBIndex int32

	// SBSize, on a merged superblock produced by compaction, is the
	// number of constituent original blocks (≥1); zero elsewhere.
	// ExitUnits, when non-nil, maps each instruction index to the
	// number of constituent blocks completed when control leaves the
	// merged block via that instruction (zero entries default to
	// SBSize). Together they drive the paper's Figure 7 statistics.
	SBSize    int32
	ExitUnits []int32

	// Units, when non-nil, maps each instruction index of a merged
	// superblock to 1 + the index of the constituent original block the
	// instruction came from (so values range over 1..SBSize). It
	// records where each instruction sat *before* compaction moved it,
	// which is what lets the checker decide whether a load ended up
	// hoisted above an earlier unit's exit and must carry Spec. Nil
	// means unscheduled or unknown.
	Units []int32

	// UnitOrigins, when non-nil, maps each constituent unit of a merged
	// superblock (0..SBSize-1) to the id of the *pristine* block the
	// unit was formed from. Unlike Origin — which compaction remaps
	// into the renumbered block space after dead blocks are removed —
	// UnitOrigins is recorded before renumbering and never remapped, so
	// its values stay valid ids into the untransformed input program.
	// It is the formation metadata the translation validator
	// (internal/validate) uses to match each compiled block back to the
	// original trace it implements. Nil means unscheduled.
	UnitOrigins []BlockID

	// Schedule annotations filled in by compaction. Cycles[i] is the
	// machine cycle in which Instrs[i] issues, relative to the start of
	// the block's superblock (for the first block of a superblock) or
	// block. Span is the number of cycles the block contributes when
	// control falls through its end. A nil Cycles means unscheduled:
	// the interpreter then charges one cycle per instruction.
	Cycles []int32
	Span   int32

	// Addr is the byte address of the block's first instruction after
	// layout; instruction i occupies Addr + 4*i .. Addr + 4*i+3.
	Addr int64
}

// Terminator returns the block's final instruction. It panics on an
// empty block; the verifier guarantees blocks are non-empty.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		panic(fmt.Sprintf("ir: block b%d has no instructions", b.ID))
	}
	return &b.Instrs[len(b.Instrs)-1]
}

// Succs returns the block's control-flow successors in a fresh slice,
// deduplicated in first-occurrence order. For ordinary blocks only the
// terminator contributes; merged superblocks also contribute their
// mid-block exit targets. NoBlock continuation slots are skipped.
func (b *Block) Succs() []BlockID {
	var out []BlockID
	seen := map[BlockID]bool{}
	for i := range b.Instrs {
		for _, t := range b.Instrs[i].Targets {
			if t == NoBlock || seen[t] {
				continue
			}
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

// NumInstrs returns the number of instructions in the block.
func (b *Block) NumInstrs() int { return len(b.Instrs) }

// Proc is a procedure: a list of basic blocks whose first element is
// the unique entry block.
type Proc struct {
	ID     ProcID
	Name   string
	Blocks []*Block

	// nextVirt is the next virtual register to hand out for this proc.
	nextVirt Reg
}

// Entry returns the procedure's entry block.
func (p *Proc) Entry() *Block { return p.Blocks[0] }

// Block returns the block with the given id, or nil.
func (p *Proc) Block(id BlockID) *Block {
	if id < 0 || int(id) >= len(p.Blocks) {
		return nil
	}
	return p.Blocks[id]
}

// NewVirtReg returns a fresh virtual register for this procedure.
func (p *Proc) NewVirtReg() Reg {
	if p.nextVirt < VirtBase {
		p.nextVirt = VirtBase
	}
	r := p.nextVirt
	p.nextVirt++
	return r
}

// MaxReg returns the highest register number mentioned anywhere in the
// procedure (at least PhysRegs-1 so frames always cover the file).
func (p *Proc) MaxReg() Reg {
	max := Reg(PhysRegs - 1)
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			for _, r := range [...]Reg{ins.Dst, ins.Src1, ins.Src2} {
				if r > max {
					max = r
				}
			}
			for _, r := range ins.Args {
				if r > max {
					max = r
				}
			}
		}
	}
	return max
}

// NumInstrs returns the total instruction count of the procedure.
func (p *Proc) NumInstrs() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// AddBlock appends a new empty block to the procedure and returns it.
// origin records which original block the new block is a copy of; pass
// NoBlock for a brand-new block (Origin then points at itself).
func (p *Proc) AddBlock(origin BlockID) *Block {
	b := &Block{ID: BlockID(len(p.Blocks)), Origin: origin, SBID: -1}
	if origin == NoBlock {
		b.Origin = b.ID
	}
	p.Blocks = append(p.Blocks, b)
	return b
}

// DataSeg initializes a run of memory words before execution.
type DataSeg struct {
	Addr   int64
	Values []int64
}

// Program is a whole compilation unit.
type Program struct {
	Name    string
	Procs   []*Proc
	Main    ProcID
	Data    []DataSeg
	MemSize int64 // words of addressable data memory

	// execCache holds an opaque, engine-specific pre-decoded
	// representation of the program (the interpreter's threaded-code
	// decode). It lives on the program so its lifetime matches the
	// program's — a global map keyed by pointer would pin dead programs
	// forever. Stored behind an atomic pointer so concurrent runs of
	// one program race benignly (decode is deterministic; one winner).
	// Clones never inherit it: CloneProgram builds a fresh Program.
	execCache atomic.Pointer[any]
}

// StoreExecCache publishes a pre-decoded execution representation for
// this program. The value is opaque to ir; the interpreter owns its
// type. Callers that mutate a program after it has executed should
// store nil to drop a stale decode (the interpreter additionally
// revalidates block shape on every hit).
func (pr *Program) StoreExecCache(v any) { pr.execCache.Store(&v) }

// ExecCache returns the value last stored by StoreExecCache, or nil.
func (pr *Program) ExecCache() any {
	if p := pr.execCache.Load(); p != nil {
		return *p
	}
	return nil
}

// Proc returns the procedure with the given id, or nil.
func (pr *Program) Proc(id ProcID) *Proc {
	if id < 0 || int(id) >= len(pr.Procs) {
		return nil
	}
	return pr.Procs[id]
}

// ProcByName returns the first procedure with the given name, or nil.
func (pr *Program) ProcByName(name string) *Proc {
	for _, p := range pr.Procs {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// NumInstrs returns the program's total static instruction count.
func (pr *Program) NumInstrs() int {
	n := 0
	for _, p := range pr.Procs {
		n += p.NumInstrs()
	}
	return n
}

// CodeBytes returns the static code size in bytes (4 bytes per
// instruction), the analogue of Table 1's binary-size column.
func (pr *Program) CodeBytes() int64 { return int64(pr.NumInstrs()) * 4 }

// AddProc appends a new empty procedure and returns it.
func (pr *Program) AddProc(name string) *Proc {
	p := &Proc{ID: ProcID(len(pr.Procs)), Name: name}
	pr.Procs = append(pr.Procs, p)
	return p
}
