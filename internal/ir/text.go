package ir

import (
	"fmt"
	"strings"
)

// WriteText serializes a program to the textual IR format, which
// ParseText reads back. The format is line-oriented:
//
//	program <name> mem=<words>
//	data <addr>: <v0> <v1> ...
//	proc <name>                      # procedures in id order
//	block b<i>: [origin=b<k>]
//	  <instruction>                  # Instr.String() syntax
//
// Schedule annotations, superblock metadata, and addresses are not
// serialized: the format captures the architectural program, the input
// to profiling and formation.
func WriteText(prog *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s mem=%d main=%d\n", prog.Name, prog.MemSize, prog.Main)
	for _, seg := range prog.Data {
		fmt.Fprintf(&sb, "data %d:", seg.Addr)
		for _, v := range seg.Values {
			fmt.Fprintf(&sb, " %d", v)
		}
		sb.WriteString("\n")
	}
	for _, p := range prog.Procs {
		fmt.Fprintf(&sb, "proc %s\n", p.Name)
		for _, b := range p.Blocks {
			if b.Origin != b.ID {
				fmt.Fprintf(&sb, "block b%d: origin=b%d\n", b.ID, b.Origin)
			} else {
				fmt.Fprintf(&sb, "block b%d:\n", b.ID)
			}
			for _, ins := range b.Instrs {
				fmt.Fprintf(&sb, "  %s\n", ins)
			}
		}
	}
	return sb.String()
}
