package ir

import (
	"strings"
	"testing"
)

func TestTextRoundTripDiamond(t *testing.T) {
	prog := diamond(t)
	prog.Data = append(prog.Data, DataSeg{Addr: 2, Values: []int64{7, -3, 0}})
	text := WriteText(prog)
	back, err := ParseText(text)
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, text)
	}
	if got := WriteText(back); got != text {
		t.Fatalf("round trip diverged:\n--- first\n%s\n--- second\n%s", text, got)
	}
}

func TestTextRoundTripAllInstructionForms(t *testing.T) {
	bd := NewBuilder("forms", 64)
	helper := bd.Proc("helper")
	hb := helper.NewBlock()
	hb.Ret(1)
	pb := bd.Proc("main")
	bb := pb.NewBlock()
	next, sw1, sw2, end := pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	spec := Load(9, 1, -4)
	spec.Spec = true
	bb.Add(
		Nop(),
		MovI(1, -77), Mov(2, 1),
		Add(3, 1, 2), Sub(3, 1, 2), Mul(3, 1, 2), And(3, 1, 2), Or(3, 1, 2),
		Xor(3, 1, 2), Shl(3, 1, 2), Shr(3, 1, 2),
		AddI(4, 3, 12), MulI(4, 3, -2), AndI(4, 3, 255), OrI(4, 3, 1),
		XorI(4, 3, 9), ShlI(4, 3, 2), ShrI(4, 3, 1),
		CmpEQ(5, 1, 2), CmpNE(5, 1, 2), CmpLT(5, 1, 2), CmpLE(5, 1, 2),
		CmpEQI(5, 1, 0), CmpNEI(5, 1, 0), CmpLTI(5, 1, 10), CmpLEI(5, 1, 10),
		CmpGTI(5, 1, 10), CmpGEI(5, 1, 10),
		Load(6, 1, 8), spec, Store(1, 8, 6), Emit(6),
	)
	bb.Br(5, next.ID(), sw1.ID())
	next.Call(7, helper.ID(), sw1.ID(), 1, 2)
	sw1.Switch(5, sw2.ID(), end.ID(), sw2.ID())
	sw2.Jmp(end.ID())
	end.Ret(7)
	bd.SetMain(pb.ID())
	prog := bd.Finish()

	text := WriteText(prog)
	back, err := ParseText(text)
	if err != nil {
		t.Fatalf("ParseText: %v\n%s", err, text)
	}
	if got := WriteText(back); got != text {
		t.Fatalf("round trip diverged:\n%s\nvs\n%s", text, got)
	}
	// Spot checks.
	if back.Main != 1 {
		t.Fatalf("main = %d, want 1", back.Main)
	}
	ld := back.Procs[1].Blocks[0].Instrs[29]
	if ld.Op != OpLoad || !ld.Spec || ld.Imm != -4 {
		t.Fatalf("speculative load mangled: %v", ld)
	}
}

func TestTextRoundTripVirtualRegisters(t *testing.T) {
	bd := NewBuilder("virt", 8)
	pb := bd.Proc("main")
	b := pb.NewBlock()
	v := VirtBase + 3
	b.Add(MovI(v, 5), Mov(2, v))
	b.Ret(2)
	prog := bd.Finish()
	text := WriteText(prog)
	if !strings.Contains(text, "v3") {
		t.Fatalf("virtual register not serialized as v3:\n%s", text)
	}
	back, err := ParseText(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.Procs[0].Blocks[0].Instrs[0].Dst != v {
		t.Fatal("virtual register lost in round trip")
	}
}

func TestTextRoundTripOrigins(t *testing.T) {
	prog := diamond(t)
	p := prog.Proc(0)
	CloneBlockInto(p, p.Blocks[2])
	// The clone is unreachable; give it a terminator audit trail anyway.
	text := WriteText(prog)
	if !strings.Contains(text, "origin=b2") {
		t.Fatalf("origin not serialized:\n%s", text)
	}
	back, err := ParseText(text)
	if err != nil {
		t.Fatal(err)
	}
	clone := back.Procs[0].Blocks[6]
	if clone.Origin != 2 {
		t.Fatalf("clone origin = b%d, want b2", clone.Origin)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no header":        "proc main\nblock b0:\n  ret r0\n",
		"bad opcode":       "program x mem=8 main=0\nproc main\nblock b0:\n  frobnicate r1\n",
		"bad register":     "program x mem=8 main=0\nproc main\nblock b0:\n  movi q1, 5\n",
		"bad block order":  "program x mem=8 main=0\nproc main\nblock b1:\n  ret r0\n",
		"instr outside":    "program x mem=8 main=0\nproc main\n  ret r0\n",
		"bad data":         "program x mem=8 main=0\ndata zz: 1\n",
		"invalid program":  "program x mem=8 main=0\nproc main\nblock b0:\n  movi r1, 5\n",
		"duplicate header": "program x mem=8 main=0\nprogram y mem=8 main=0\n",
		"bad mem operand":  "program x mem=8 main=0\nproc main\nblock b0:\n  load r1, [r2*4]\n",
		"bad call":         "program x mem=8 main=0\nproc main\nblock b0:\n  call r1, proc0\n",
	}
	for name, text := range cases {
		if _, err := ParseText(text); err == nil {
			t.Errorf("%s: parse accepted invalid input", name)
		}
	}
}

func TestParseAcceptsCommentsAndBlankLines(t *testing.T) {
	text := `# a comment
program tiny mem=8 main=0

proc main
# entry
block b0:
  movi r1, 42
  ret r1
`
	prog, err := ParseText(text)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "tiny" || prog.NumInstrs() != 2 {
		t.Fatalf("parsed %s with %d instrs", prog.Name, prog.NumInstrs())
	}
}

func TestWriteDot(t *testing.T) {
	prog := diamond(t)
	prog.Procs[0].Blocks[2].SBID = 1
	dot := WriteDot(prog.Proc(0), func(from, to BlockID) int64 {
		if from == 0 && to == 2 {
			return 500
		}
		return 0
	})
	for _, want := range []string{
		"digraph \"main\"", "b0 [label=\"b0 (2 instrs)\", style=bold]",
		"sb1", "b0 -> b2 [label=\"T 500\"]", "b0 -> b1 [label=\"F\"]",
		"b2 -> b3", "b2 -> b4",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestWriteDotSwitchAndCall(t *testing.T) {
	bd := NewBuilder("dotsw", 8)
	callee := bd.Proc("leaf")
	cb := callee.NewBlock()
	cb.Ret(0)
	pb := bd.Proc("main")
	e, t0, t1, cont := pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	e.Switch(1, t0.ID(), t1.ID())
	t0.Call(2, callee.ID(), cont.ID())
	t1.Ret(0)
	cont.Ret(2)
	bd.SetMain(pb.ID())
	prog := bd.Program()
	if err := Verify(prog); err != nil {
		t.Fatal(err)
	}
	dot := WriteDot(prog.ProcByName("main"), nil)
	for _, want := range []string{`label="0"`, `label="def"`, `label="ret-to"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
}
