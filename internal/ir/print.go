package ir

import (
	"fmt"
	"strings"
)

// String renders an instruction in a compact assembly-like syntax.
func (ins Instr) String() string {
	var sb strings.Builder
	sb.WriteString(ins.Op.String())
	if ins.Spec {
		sb.WriteString(".s")
	}
	switch ins.Op {
	case OpNop:
	case OpMovI:
		fmt.Fprintf(&sb, " %v, %d", ins.Dst, ins.Imm)
	case OpMov:
		fmt.Fprintf(&sb, " %v, %v", ins.Dst, ins.Src1)
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpLE:
		fmt.Fprintf(&sb, " %v, %v, %v", ins.Dst, ins.Src1, ins.Src2)
	case OpAddI, OpMulI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI,
		OpCmpEQI, OpCmpNEI, OpCmpLTI, OpCmpLEI, OpCmpGTI, OpCmpGEI:
		fmt.Fprintf(&sb, " %v, %v, %d", ins.Dst, ins.Src1, ins.Imm)
	case OpLoad:
		fmt.Fprintf(&sb, " %v, [%v+%d]", ins.Dst, ins.Src1, ins.Imm)
	case OpStore:
		fmt.Fprintf(&sb, " [%v+%d], %v", ins.Src1, ins.Imm, ins.Src2)
	case OpEmit:
		fmt.Fprintf(&sb, " %v", ins.Src1)
	case OpBr:
		fmt.Fprintf(&sb, " %v, b%d, b%d", ins.Src1, ins.Targets[0], ins.Targets[1])
	case OpJmp:
		fmt.Fprintf(&sb, " b%d", ins.Targets[0])
	case OpSwitch:
		fmt.Fprintf(&sb, " %v,", ins.Src1)
		for _, t := range ins.Targets {
			fmt.Fprintf(&sb, " b%d", t)
		}
	case OpCall:
		fmt.Fprintf(&sb, " %v, proc%d(", ins.Dst, ins.Callee)
		for i, a := range ins.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.String())
		}
		fmt.Fprintf(&sb, ") -> b%d", ins.Targets[0])
	case OpRet:
		fmt.Fprintf(&sb, " %v", ins.Src1)
	}
	return sb.String()
}

// Dump renders a procedure as readable text, including schedule
// annotations when present.
func (p *Proc) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "proc %s (id %d, %d blocks, %d instrs)\n",
		p.Name, p.ID, len(p.Blocks), p.NumInstrs())
	for _, b := range p.Blocks {
		fmt.Fprintf(&sb, "b%d", b.ID)
		if b.Origin != b.ID {
			fmt.Fprintf(&sb, " (copy of b%d)", b.Origin)
		}
		if b.SBID >= 0 {
			fmt.Fprintf(&sb, " [sb%d.%d]", b.SBID, b.SBIndex)
		}
		if b.Cycles != nil {
			fmt.Fprintf(&sb, " span=%d", b.Span)
		}
		sb.WriteString(":\n")
		for i, ins := range b.Instrs {
			if b.Cycles != nil {
				fmt.Fprintf(&sb, "  [c%2d] %s\n", b.Cycles[i], ins)
			} else {
				fmt.Fprintf(&sb, "  %s\n", ins)
			}
		}
	}
	return sb.String()
}

// Dump renders the whole program.
func (pr *Program) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s (main=proc%d, mem=%d words)\n", pr.Name, pr.Main, pr.MemSize)
	for _, p := range pr.Procs {
		sb.WriteString(p.Dump())
	}
	return sb.String()
}
