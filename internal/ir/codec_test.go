package ir_test

import (
	"bytes"
	"testing"

	root "pathsched"
	"pathsched/internal/bench"
	"pathsched/internal/ir"
	"pathsched/internal/ir/irtest"
)

// codecPrograms returns a mix of pristine and fully compiled programs:
// the compiled ones carry every annotation the disk store must
// preserve (Cycles, Units, UnitOrigins, ExitUnits, superblock ids,
// layout addresses), which the textual format deliberately drops.
func codecPrograms(t *testing.T) map[string]*ir.Program {
	t.Helper()
	out := map[string]*ir.Program{}
	for _, name := range []string{"wc", "alt"} {
		b := bench.ByName(name)
		if b == nil {
			t.Fatalf("unknown benchmark %q", name)
		}
		pristine := b.Build(b.Test)
		out[name+"/pristine"] = pristine
		profs, err := root.ProfileProgram(b.Build(b.Train))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []root.Scheme{"BB", "P4"} {
			bin, err := root.Compile(pristine, profs, s)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, s, err)
			}
			out[name+"/"+string(s)] = bin
		}
	}
	for seed := int64(0); seed < 20; seed++ {
		out[fmtSeed(seed)] = irtest.RandExecProg(seed, 8+int(seed))
	}
	return out
}

func fmtSeed(s int64) string { return string(rune('a'+s)) + "/rand" }

func TestCodecRoundTripPreservesFingerprint(t *testing.T) {
	for name, prog := range codecPrograms(t) {
		want := ir.Fingerprint(prog)
		data := ir.EncodeProgram(prog)
		got, err := ir.DecodeProgram(data)
		if err != nil {
			t.Errorf("%s: decode: %v", name, err)
			continue
		}
		if ir.Fingerprint(got) != want {
			t.Errorf("%s: fingerprint changed across encode/decode round trip", name)
		}
		// Re-encoding the decoded program must reproduce the bytes:
		// the codec has one canonical encoding per program, so disk
		// entries stay stable across rewrite cycles.
		if !bytes.Equal(ir.EncodeProgram(got), data) {
			t.Errorf("%s: re-encode is not byte-identical", name)
		}
	}
}

// TestCodecPreservesAnnotationPresence pins the nil-vs-empty seam the
// fingerprint treats as semantic: nil Cycles means unscheduled.
func TestCodecPreservesAnnotationPresence(t *testing.T) {
	b := bench.ByName("wc")
	profs, err := root.ProfileProgram(b.Build(b.Train))
	if err != nil {
		t.Fatal(err)
	}
	bin, err := root.Compile(b.Build(b.Test), profs, "P4")
	if err != nil {
		t.Fatal(err)
	}
	got, err := ir.DecodeProgram(ir.EncodeProgram(bin))
	if err != nil {
		t.Fatal(err)
	}
	sawScheduled := false
	for pi, p := range bin.Procs {
		for bi, blk := range p.Blocks {
			g := got.Procs[pi].Blocks[bi]
			if (blk.Cycles == nil) != (g.Cycles == nil) {
				t.Fatalf("proc %s block b%d: Cycles nil-ness not preserved", p.Name, blk.ID)
			}
			if (blk.UnitOrigins == nil) != (g.UnitOrigins == nil) {
				t.Fatalf("proc %s block b%d: UnitOrigins nil-ness not preserved", p.Name, blk.ID)
			}
			if blk.Cycles != nil {
				sawScheduled = true
			}
		}
	}
	if !sawScheduled {
		t.Fatal("compiled program has no scheduled blocks; test proves nothing")
	}
}

func TestCodecRejectsTruncation(t *testing.T) {
	prog := irtest.RandExecProg(7, 12)
	data := ir.EncodeProgram(prog)
	for n := 0; n < len(data); n++ {
		if _, err := ir.DecodeProgram(data[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(data))
		}
	}
}

func TestCodecRejectsTrailingBytes(t *testing.T) {
	data := append(ir.EncodeProgram(irtest.RandExecProg(3, 8)), 0x00)
	if _, err := ir.DecodeProgram(data); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
}

// TestCodecBitFlipNeverForgesFingerprint flips every bit of a small
// encoding: each flip must fail to decode, decode to a program with a
// different fingerprint, or decode to the *genuinely identical*
// program (some flips only denormalize a varint or presence flag —
// e.g. a nonzero flag stays "present" — which is harmless redundancy,
// proven by the canonical re-encode matching the original bytes). What
// must never happen is a flip decoding to a different program that
// still re-fingerprints clean — that would defeat the store's
// integrity check.
func TestCodecBitFlipNeverForgesFingerprint(t *testing.T) {
	prog := irtest.RandExecProg(11, 8)
	orig := ir.EncodeProgram(prog)
	want := ir.Fingerprint(prog)
	for pos := 0; pos < len(orig); pos++ {
		for bit := 0; bit < 8; bit++ {
			data := append([]byte(nil), orig...)
			data[pos] ^= 1 << bit
			got, err := ir.DecodeProgram(data)
			if err != nil || ir.Fingerprint(got) != want {
				continue
			}
			if !bytes.Equal(ir.EncodeProgram(got), orig) {
				t.Fatalf("flip at byte %d bit %d forged a fingerprint-identical but different program", pos, bit)
			}
		}
	}
}
