package ir

// Builder provides a fluent API for constructing programs. Benchmark
// generators and tests use it to assemble procedures block by block;
// Finish runs the verifier so malformed programs fail fast.
type Builder struct {
	prog *Program
}

// NewBuilder starts a new program with the given name and data-memory
// size in 64-bit words.
func NewBuilder(name string, memWords int64) *Builder {
	return &Builder{prog: &Program{Name: name, MemSize: memWords}}
}

// Data pre-initializes memory words starting at addr.
func (bd *Builder) Data(addr int64, values ...int64) *Builder {
	bd.prog.Data = append(bd.prog.Data, DataSeg{Addr: addr, Values: values})
	return bd
}

// Proc begins a new procedure; the first block created in it becomes
// the entry. The first procedure named "main" becomes the program
// entry point (override with SetMain).
func (bd *Builder) Proc(name string) *ProcBuilder {
	p := bd.prog.AddProc(name)
	if name == "main" {
		bd.prog.Main = p.ID
	}
	return &ProcBuilder{prog: bd.prog, proc: p}
}

// SetMain overrides the program entry procedure.
func (bd *Builder) SetMain(id ProcID) *Builder {
	bd.prog.Main = id
	return bd
}

// Finish verifies and returns the program. It panics on verification
// failure: builder misuse is a programming error, not a runtime
// condition.
func (bd *Builder) Finish() *Program {
	if err := Verify(bd.prog); err != nil {
		panic("ir: invalid program from builder: " + err.Error())
	}
	return bd.prog
}

// Program returns the program without verification (for tests that
// intentionally construct invalid IR).
func (bd *Builder) Program() *Program { return bd.prog }

// ProcBuilder accumulates blocks for one procedure.
type ProcBuilder struct {
	prog *Program
	proc *Proc
}

// ID returns the procedure id (usable in Call before the procedure's
// body is complete, enabling mutual recursion).
func (pb *ProcBuilder) ID() ProcID { return pb.proc.ID }

// NewBlock reserves a block and returns a BlockBuilder for it. Blocks
// may be created eagerly and filled later, so forward branch targets
// are easy to express.
func (pb *ProcBuilder) NewBlock() *BlockBuilder {
	b := pb.proc.AddBlock(NoBlock)
	return &BlockBuilder{proc: pb.proc, block: b}
}

// NewBlocks reserves n blocks at once.
func (pb *ProcBuilder) NewBlocks(n int) []*BlockBuilder {
	out := make([]*BlockBuilder, n)
	for i := range out {
		out[i] = pb.NewBlock()
	}
	return out
}

// BlockBuilder appends instructions to one block.
type BlockBuilder struct {
	proc  *Proc
	block *Block
}

// ID returns the block id for use as a branch target.
func (bb *BlockBuilder) ID() BlockID { return bb.block.ID }

// Add appends instructions to the block and returns the builder.
func (bb *BlockBuilder) Add(instrs ...Instr) *BlockBuilder {
	bb.block.Instrs = append(bb.block.Instrs, instrs...)
	return bb
}

// Terminated reports whether the block already ends in a terminator,
// so structured-control helpers can skip their implicit jump after a
// body that returned early.
func (bb *BlockBuilder) Terminated() bool {
	n := len(bb.block.Instrs)
	return n > 0 && bb.block.Instrs[n-1].Op.IsTerminator()
}

// Br terminates the block with a conditional branch.
func (bb *BlockBuilder) Br(cond Reg, taken, fallthru BlockID) { bb.Add(Br(cond, taken, fallthru)) }

// Jmp terminates the block with an unconditional jump.
func (bb *BlockBuilder) Jmp(target BlockID) { bb.Add(Jmp(target)) }

// Switch terminates the block with a multiway branch.
func (bb *BlockBuilder) Switch(idx Reg, targets ...BlockID) { bb.Add(Switch(idx, targets...)) }

// Call terminates the block with a call that continues at cont.
func (bb *BlockBuilder) Call(dst Reg, callee ProcID, cont BlockID, args ...Reg) {
	bb.Add(Call(dst, callee, cont, args...))
}

// Ret terminates the block with a return.
func (bb *BlockBuilder) Ret(src Reg) { bb.Add(Ret(src)) }
