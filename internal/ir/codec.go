package ir

import (
	"encoding/binary"
	"fmt"
)

// Binary program codec for the disk artifact store.
//
// The textual format (text.go) deliberately captures only the
// architectural program — it drops schedule annotations, superblock
// metadata, and layout addresses, which is exactly what a disk cache of
// *compiled* programs must preserve: a compiled master that loses its
// Cycles would be re-measured at one cycle per instruction and its
// translation-validation metadata (UnitOrigins) would vanish. This
// codec therefore round-trips every field Fingerprint hashes, and
// nothing else, so
//
//	Fingerprint(DecodeProgram(EncodeProgram(p))) == Fingerprint(p)
//
// holds by construction and the store can integrity-check an entry by
// re-fingerprinting what it decoded. The encoding is length-prefixed
// varints throughout; any truncation or corruption surfaces as a
// decode error (never a silently different program — the fingerprint
// cross-check backstops even a codec bug).
//
// Derived state is excluded exactly as Fingerprint excludes it: the
// memoized execution decode and the virtual-register cursor. Decoding
// resets the cursor above the highest register in use, so a consumer
// that (unexpectedly) asks a decoded procedure for a fresh virtual
// register can never collide with an existing one.

// codecMagic versions the binary program encoding. Bump on any layout
// change: entries written by other versions then fail to decode and
// are rebuilt, which is always safe.
const codecMagic = "pathsched-ir-bin-v1\n"

// EncodeProgram serializes prog into the binary codec format.
func EncodeProgram(prog *Program) []byte {
	e := &progEncoder{buf: make([]byte, 0, 1<<14)}
	e.raw([]byte(codecMagic))
	e.str(prog.Name)
	e.i64(int64(prog.Main))
	e.i64(prog.MemSize)

	e.u64(uint64(len(prog.Data)))
	for _, seg := range prog.Data {
		e.i64(seg.Addr)
		e.u64(uint64(len(seg.Values)))
		for _, v := range seg.Values {
			e.i64(v)
		}
	}

	e.u64(uint64(len(prog.Procs)))
	for _, p := range prog.Procs {
		if p == nil {
			e.u64(0)
			continue
		}
		e.u64(1)
		e.str(p.Name)
		e.i64(int64(p.ID))
		e.u64(uint64(len(p.Blocks)))
		for _, b := range p.Blocks {
			e.block(b)
		}
	}
	return e.buf
}

func (e *progEncoder) block(b *Block) {
	e.i64(int64(b.ID))
	e.i64(int64(b.Origin))
	e.i64(int64(b.SBID))
	e.i64(int64(b.SBIndex))
	e.i64(int64(b.SBSize))
	e.i64(int64(b.Span))
	e.i64(b.Addr)
	e.i32Slice(b.ExitUnits)
	e.i32Slice(b.Units)
	e.blockIDSlice(b.UnitOrigins)
	e.i32Slice(b.Cycles)
	e.u64(uint64(len(b.Instrs)))
	for i := range b.Instrs {
		ins := &b.Instrs[i]
		e.u64(uint64(ins.Op))
		e.i64(int64(ins.Dst))
		e.i64(int64(ins.Src1))
		e.i64(int64(ins.Src2))
		e.i64(ins.Imm)
		e.bool(ins.Spec)
		e.u64(uint64(len(ins.Targets)))
		for _, t := range ins.Targets {
			e.i64(int64(t))
		}
		e.i64(int64(ins.Callee))
		e.u64(uint64(len(ins.Args)))
		for _, a := range ins.Args {
			e.i64(int64(a))
		}
	}
}

// DecodeProgram parses data written by EncodeProgram. It validates
// framing (magic, lengths, trailing bytes) but not program semantics:
// callers that need a verified program run ir.Verify, and the artifact
// store additionally re-fingerprints the result against its key.
func DecodeProgram(data []byte) (*Program, error) {
	d := &progDecoder{buf: data}
	magic, err := d.rawN(len(codecMagic))
	if err != nil || string(magic) != codecMagic {
		return nil, fmt.Errorf("ir: decode: bad or missing codec magic")
	}
	prog := &Program{}
	prog.Name = d.str()
	prog.Main = ProcID(d.i64())
	prog.MemSize = d.i64()

	nseg := d.count()
	if d.err == nil && nseg > 0 {
		prog.Data = make([]DataSeg, 0, nseg)
	}
	for i := uint64(0); i < nseg && d.err == nil; i++ {
		seg := DataSeg{Addr: d.i64()}
		nv := d.count()
		if d.err == nil && nv > 0 {
			seg.Values = make([]int64, nv)
			for j := range seg.Values {
				seg.Values[j] = d.i64()
			}
		}
		prog.Data = append(prog.Data, seg)
	}

	nproc := d.count()
	if d.err == nil {
		prog.Procs = make([]*Proc, 0, nproc)
	}
	for i := uint64(0); i < nproc && d.err == nil; i++ {
		if d.u64() == 0 {
			prog.Procs = append(prog.Procs, nil)
			continue
		}
		p := &Proc{}
		p.Name = d.str()
		p.ID = ProcID(d.i64())
		nblk := d.count()
		if d.err == nil && nblk > 0 {
			p.Blocks = make([]*Block, 0, nblk)
		}
		for j := uint64(0); j < nblk && d.err == nil; j++ {
			p.Blocks = append(p.Blocks, d.block())
		}
		// Reset the virtual-register cursor above every register in
		// use (Fingerprint excludes it, so the encoding does too).
		if d.err == nil {
			p.nextVirt = p.MaxReg() + 1
			if p.nextVirt < VirtBase {
				p.nextVirt = VirtBase
			}
		}
		prog.Procs = append(prog.Procs, p)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("ir: decode: %d trailing bytes", len(d.buf))
	}
	return prog, nil
}

func (d *progDecoder) block() *Block {
	b := &Block{
		ID:      BlockID(d.i64()),
		Origin:  BlockID(d.i64()),
		SBID:    int32(d.i64()),
		SBIndex: int32(d.i64()),
		SBSize:  int32(d.i64()),
		Span:    int32(d.i64()),
		Addr:    d.i64(),
	}
	b.ExitUnits = d.i32Slice()
	b.Units = d.i32Slice()
	b.UnitOrigins = d.blockIDSlice()
	b.Cycles = d.i32Slice()
	nins := d.count()
	if d.err == nil && nins > 0 {
		b.Instrs = make([]Instr, nins)
	}
	for i := uint64(0); i < nins && d.err == nil; i++ {
		ins := &b.Instrs[i]
		ins.Op = Opcode(d.u64())
		ins.Dst = Reg(d.i64())
		ins.Src1 = Reg(d.i64())
		ins.Src2 = Reg(d.i64())
		ins.Imm = d.i64()
		ins.Spec = d.bool()
		if nt := d.count(); d.err == nil && nt > 0 {
			ins.Targets = make([]BlockID, nt)
			for j := range ins.Targets {
				ins.Targets[j] = BlockID(d.i64())
			}
		}
		ins.Callee = ProcID(d.i64())
		if na := d.count(); d.err == nil && na > 0 {
			ins.Args = make([]Reg, na)
			for j := range ins.Args {
				ins.Args[j] = Reg(d.i64())
			}
		}
	}
	return b
}

// progEncoder appends varint-framed fields to a buffer.
type progEncoder struct {
	buf []byte
}

func (e *progEncoder) raw(b []byte) { e.buf = append(e.buf, b...) }
func (e *progEncoder) u64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *progEncoder) i64(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *progEncoder) str(s string) { e.u64(uint64(len(s))); e.raw([]byte(s)) }
func (e *progEncoder) bool(b bool) {
	if b {
		e.u64(1)
	} else {
		e.u64(0)
	}
}

// i32Slice encodes presence (nil and empty differ: nil Cycles means
// unscheduled) followed by the values.
func (e *progEncoder) i32Slice(s []int32) {
	if s == nil {
		e.u64(0)
		return
	}
	e.u64(1)
	e.u64(uint64(len(s)))
	for _, v := range s {
		e.i64(int64(v))
	}
}

func (e *progEncoder) blockIDSlice(s []BlockID) {
	if s == nil {
		e.u64(0)
		return
	}
	e.u64(1)
	e.u64(uint64(len(s)))
	for _, v := range s {
		e.i64(int64(v))
	}
}

// progDecoder consumes the buffer with sticky error handling: after
// the first framing error every read returns zero values and the error
// is reported once at the end.
type progDecoder struct {
	buf []byte
	err error
}

func (d *progDecoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("ir: decode: %s", msg)
	}
}

func (d *progDecoder) rawN(n int) ([]byte, error) {
	if len(d.buf) < n {
		return nil, fmt.Errorf("ir: decode: truncated (%d bytes, need %d)", len(d.buf), n)
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b, nil
}

func (d *progDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("truncated or malformed uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *progDecoder) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("truncated or malformed varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *progDecoder) bool() bool { return d.u64() != 0 }

// count reads a length prefix and sanity-checks it against the bytes
// remaining: every counted element needs at least one byte, so a count
// beyond len(buf) proves corruption without attempting the allocation.
func (d *progDecoder) count() uint64 {
	n := d.u64()
	if d.err == nil && n > uint64(len(d.buf)) {
		d.fail("length prefix exceeds remaining input")
		return 0
	}
	return n
}

func (d *progDecoder) str() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	b, err := d.rawN(int(n))
	if err != nil {
		d.err = err
		return ""
	}
	return string(b)
}

func (d *progDecoder) i32Slice() []int32 {
	if d.u64() == 0 {
		return nil
	}
	n := d.count()
	if d.err != nil {
		return nil
	}
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(d.i64())
	}
	return s
}

func (d *progDecoder) blockIDSlice() []BlockID {
	if d.u64() == 0 {
		return nil
	}
	n := d.count()
	if d.err != nil {
		return nil
	}
	s := make([]BlockID, n)
	for i := range s {
		s[i] = BlockID(d.i64())
	}
	return s
}
