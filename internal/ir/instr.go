package ir

// Constructors for each instruction form. These keep benchmark
// generators and tests terse and make malformed instructions hard to
// build by hand.

// Nop returns a no-op.
func Nop() Instr { return Instr{Op: OpNop} }

// MovI returns dst = imm.
func MovI(dst Reg, imm int64) Instr { return Instr{Op: OpMovI, Dst: dst, Imm: imm} }

// Mov returns dst = src.
func Mov(dst, src Reg) Instr { return Instr{Op: OpMov, Dst: dst, Src1: src} }

// Binary register-register operations.
func Add(dst, a, b Reg) Instr { return Instr{Op: OpAdd, Dst: dst, Src1: a, Src2: b} }
func Sub(dst, a, b Reg) Instr { return Instr{Op: OpSub, Dst: dst, Src1: a, Src2: b} }
func Mul(dst, a, b Reg) Instr { return Instr{Op: OpMul, Dst: dst, Src1: a, Src2: b} }
func And(dst, a, b Reg) Instr { return Instr{Op: OpAnd, Dst: dst, Src1: a, Src2: b} }
func Or(dst, a, b Reg) Instr  { return Instr{Op: OpOr, Dst: dst, Src1: a, Src2: b} }
func Xor(dst, a, b Reg) Instr { return Instr{Op: OpXor, Dst: dst, Src1: a, Src2: b} }
func Shl(dst, a, b Reg) Instr { return Instr{Op: OpShl, Dst: dst, Src1: a, Src2: b} }
func Shr(dst, a, b Reg) Instr { return Instr{Op: OpShr, Dst: dst, Src1: a, Src2: b} }

// Binary register-immediate operations.
func AddI(dst, a Reg, imm int64) Instr { return Instr{Op: OpAddI, Dst: dst, Src1: a, Imm: imm} }
func MulI(dst, a Reg, imm int64) Instr { return Instr{Op: OpMulI, Dst: dst, Src1: a, Imm: imm} }
func AndI(dst, a Reg, imm int64) Instr { return Instr{Op: OpAndI, Dst: dst, Src1: a, Imm: imm} }
func OrI(dst, a Reg, imm int64) Instr  { return Instr{Op: OpOrI, Dst: dst, Src1: a, Imm: imm} }
func XorI(dst, a Reg, imm int64) Instr { return Instr{Op: OpXorI, Dst: dst, Src1: a, Imm: imm} }
func ShlI(dst, a Reg, imm int64) Instr { return Instr{Op: OpShlI, Dst: dst, Src1: a, Imm: imm} }
func ShrI(dst, a Reg, imm int64) Instr { return Instr{Op: OpShrI, Dst: dst, Src1: a, Imm: imm} }

// Comparisons.
func CmpEQ(dst, a, b Reg) Instr { return Instr{Op: OpCmpEQ, Dst: dst, Src1: a, Src2: b} }
func CmpNE(dst, a, b Reg) Instr { return Instr{Op: OpCmpNE, Dst: dst, Src1: a, Src2: b} }
func CmpLT(dst, a, b Reg) Instr { return Instr{Op: OpCmpLT, Dst: dst, Src1: a, Src2: b} }
func CmpLE(dst, a, b Reg) Instr { return Instr{Op: OpCmpLE, Dst: dst, Src1: a, Src2: b} }

func CmpEQI(dst, a Reg, imm int64) Instr { return Instr{Op: OpCmpEQI, Dst: dst, Src1: a, Imm: imm} }
func CmpNEI(dst, a Reg, imm int64) Instr { return Instr{Op: OpCmpNEI, Dst: dst, Src1: a, Imm: imm} }
func CmpLTI(dst, a Reg, imm int64) Instr { return Instr{Op: OpCmpLTI, Dst: dst, Src1: a, Imm: imm} }
func CmpLEI(dst, a Reg, imm int64) Instr { return Instr{Op: OpCmpLEI, Dst: dst, Src1: a, Imm: imm} }
func CmpGTI(dst, a Reg, imm int64) Instr { return Instr{Op: OpCmpGTI, Dst: dst, Src1: a, Imm: imm} }
func CmpGEI(dst, a Reg, imm int64) Instr { return Instr{Op: OpCmpGEI, Dst: dst, Src1: a, Imm: imm} }

// Load returns dst = mem[base+off].
func Load(dst, base Reg, off int64) Instr { return Instr{Op: OpLoad, Dst: dst, Src1: base, Imm: off} }

// Store returns mem[base+off] = val.
func Store(base Reg, off int64, val Reg) Instr {
	return Instr{Op: OpStore, Src1: base, Src2: val, Imm: off}
}

// Emit appends the value of src to the observable output stream.
func Emit(src Reg) Instr { return Instr{Op: OpEmit, Src1: src} }

// Br returns "if cond != 0 goto taken else goto fallthru".
func Br(cond Reg, taken, fallthru BlockID) Instr {
	return Instr{Op: OpBr, Src1: cond, Targets: []BlockID{taken, fallthru}}
}

// Jmp returns an unconditional jump.
func Jmp(target BlockID) Instr { return Instr{Op: OpJmp, Targets: []BlockID{target}} }

// Switch returns a multiway branch on idx; the last target is the
// default when idx is out of range.
func Switch(idx Reg, targets ...BlockID) Instr {
	return Instr{Op: OpSwitch, Src1: idx, Targets: targets}
}

// Call returns dst = callee(args...) followed by a fall-through to cont.
func Call(dst Reg, callee ProcID, cont BlockID, args ...Reg) Instr {
	return Instr{Op: OpCall, Dst: dst, Callee: callee, Targets: []BlockID{cont}, Args: args}
}

// Ret returns "return src".
func Ret(src Reg) Instr { return Instr{Op: OpRet, Src1: src} }

// IsTerminator reports whether the opcode ends a basic block.
func (op Opcode) IsTerminator() bool {
	switch op {
	case OpBr, OpJmp, OpSwitch, OpCall, OpRet:
		return true
	}
	return false
}

// IsBranch reports whether the opcode is a control instruction that
// consumes the machine's single per-cycle control slot.
func (op Opcode) IsBranch() bool { return op.IsTerminator() }

// IsCondBranch reports whether the opcode chooses among multiple
// successors at run time (the branches that bound general-path length).
func (op Opcode) IsCondBranch() bool { return op == OpBr || op == OpSwitch }

// HasDst reports whether the instruction writes a register.
func (ins *Instr) HasDst() bool {
	switch ins.Op {
	case OpNop, OpStore, OpEmit, OpBr, OpJmp, OpSwitch, OpRet:
		return false
	case OpCall:
		return true
	}
	return true
}

// Uses appends the registers the instruction reads to buf and returns
// the extended slice. Using an appended buffer avoids per-call
// allocation in the scheduler's hot loops.
func (ins *Instr) Uses(buf []Reg) []Reg {
	switch ins.Op {
	case OpNop, OpMovI, OpJmp:
	case OpMov, OpAddI, OpMulI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI,
		OpCmpEQI, OpCmpNEI, OpCmpLTI, OpCmpLEI, OpCmpGTI, OpCmpGEI,
		OpLoad, OpEmit, OpBr, OpSwitch, OpRet:
		buf = append(buf, ins.Src1)
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpLE, OpStore:
		buf = append(buf, ins.Src1, ins.Src2)
	case OpCall:
		buf = append(buf, ins.Args...)
	}
	return buf
}

// CanSpeculate reports whether the instruction may be hoisted above a
// conditional branch. Stores, calls, emits, and terminators must not
// move; loads may, becoming non-excepting speculative loads.
func (ins Instr) CanSpeculate() bool {
	switch ins.Op {
	case OpStore, OpEmit, OpBr, OpJmp, OpSwitch, OpCall, OpRet:
		return false
	}
	return true
}

// IsMemRead and IsMemWrite classify memory operations for dependence
// construction.
func (ins Instr) IsMemRead() bool  { return ins.Op == OpLoad }
func (ins Instr) IsMemWrite() bool { return ins.Op == OpStore }

// Clone returns a deep copy of the instruction.
func (ins Instr) Clone() Instr {
	out := ins
	if ins.Targets != nil {
		out.Targets = append([]BlockID(nil), ins.Targets...)
	}
	if ins.Args != nil {
		out.Args = append([]Reg(nil), ins.Args...)
	}
	return out
}
