package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseText parses the textual IR format emitted by WriteText and
// returns the verified program. Errors carry line numbers.
func ParseText(text string) (*Program, error) {
	p := &parser{}
	lines := strings.Split(text, "\n")
	for i, raw := range lines {
		p.lineNo = i + 1
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("ir: line %d: %w", p.lineNo, err)
		}
	}
	if p.prog == nil {
		return nil, fmt.Errorf("ir: no program header")
	}
	if err := Verify(p.prog); err != nil {
		return nil, fmt.Errorf("ir: parsed program invalid: %w", err)
	}
	return p.prog, nil
}

type parser struct {
	prog   *Program
	proc   *Proc
	block  *Block
	lineNo int
}

func (p *parser) line(line string) error {
	switch {
	case strings.HasPrefix(line, "program "):
		return p.header(line)
	case strings.HasPrefix(line, "data "):
		return p.data(line)
	case strings.HasPrefix(line, "proc "):
		if p.prog == nil {
			return fmt.Errorf("proc before program header")
		}
		p.proc = p.prog.AddProc(strings.TrimSpace(strings.TrimPrefix(line, "proc ")))
		p.block = nil
		return nil
	case strings.HasPrefix(line, "block "):
		return p.blockHeader(line)
	default:
		if p.block == nil {
			return fmt.Errorf("instruction outside a block: %q", line)
		}
		ins, err := parseInstr(line)
		if err != nil {
			return err
		}
		p.block.Instrs = append(p.block.Instrs, ins)
		return nil
	}
}

func (p *parser) header(line string) error {
	if p.prog != nil {
		return fmt.Errorf("duplicate program header")
	}
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return fmt.Errorf("malformed program header %q", line)
	}
	prog := &Program{Name: fields[1]}
	for _, f := range fields[2:] {
		switch {
		case strings.HasPrefix(f, "mem="):
			v, err := strconv.ParseInt(f[4:], 10, 64)
			if err != nil {
				return fmt.Errorf("bad mem size %q", f)
			}
			prog.MemSize = v
		case strings.HasPrefix(f, "main="):
			v, err := strconv.ParseInt(f[5:], 10, 32)
			if err != nil {
				return fmt.Errorf("bad main id %q", f)
			}
			prog.Main = ProcID(v)
		default:
			return fmt.Errorf("unknown header field %q", f)
		}
	}
	p.prog = prog
	return nil
}

func (p *parser) data(line string) error {
	if p.prog == nil {
		return fmt.Errorf("data before program header")
	}
	rest := strings.TrimPrefix(line, "data ")
	colon := strings.IndexByte(rest, ':')
	if colon < 0 {
		return fmt.Errorf("malformed data line")
	}
	addr, err := strconv.ParseInt(strings.TrimSpace(rest[:colon]), 10, 64)
	if err != nil {
		return fmt.Errorf("bad data address: %v", err)
	}
	seg := DataSeg{Addr: addr}
	for _, f := range strings.Fields(rest[colon+1:]) {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return fmt.Errorf("bad data value %q", f)
		}
		seg.Values = append(seg.Values, v)
	}
	p.prog.Data = append(p.prog.Data, seg)
	return nil
}

func (p *parser) blockHeader(line string) error {
	if p.proc == nil {
		return fmt.Errorf("block outside a proc")
	}
	rest := strings.TrimPrefix(line, "block ")
	colon := strings.IndexByte(rest, ':')
	if colon < 0 {
		return fmt.Errorf("malformed block header")
	}
	id, err := parseBlockID(strings.TrimSpace(rest[:colon]))
	if err != nil {
		return err
	}
	if int(id) < len(p.proc.Blocks) {
		return fmt.Errorf("duplicate block label b%d", id)
	}
	if int(id) != len(p.proc.Blocks) {
		return fmt.Errorf("block b%d out of order (expected b%d)", id, len(p.proc.Blocks))
	}
	b := p.proc.AddBlock(NoBlock)
	for _, f := range strings.Fields(rest[colon+1:]) {
		if strings.HasPrefix(f, "origin=") {
			o, err := parseBlockID(f[len("origin="):])
			if err != nil {
				return err
			}
			b.Origin = o
		} else {
			return fmt.Errorf("unknown block attribute %q", f)
		}
	}
	p.block = b
	return nil
}

// opByName maps mnemonic to opcode.
var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, numOpcodes)
	for op, name := range opNames {
		if name != "" {
			m[name] = Opcode(op)
		}
	}
	return m
}()

func parseReg(s string) (Reg, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.ParseInt(s[1:], 10, 32)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	switch s[0] {
	case 'r':
		return Reg(n), nil
	case 'v':
		return VirtBase + Reg(n), nil
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseBlockID(s string) (BlockID, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "b") {
		return 0, fmt.Errorf("bad block id %q", s)
	}
	n, err := strconv.ParseInt(s[1:], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad block id %q", s)
	}
	return BlockID(n), nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseInstr parses one instruction in Instr.String() syntax.
func parseInstr(line string) (Instr, error) {
	mnemonic := line
	rest := ""
	if sp := strings.IndexByte(line, ' '); sp >= 0 {
		mnemonic, rest = line[:sp], strings.TrimSpace(line[sp+1:])
	}
	spec := false
	if strings.HasSuffix(mnemonic, ".s") {
		spec = true
		mnemonic = strings.TrimSuffix(mnemonic, ".s")
	}
	op, ok := opByName[mnemonic]
	if !ok {
		return Instr{}, fmt.Errorf("unknown opcode %q", mnemonic)
	}
	ins := Instr{Op: op, Spec: spec}

	args := splitArgs(rest)
	fail := func() (Instr, error) {
		return Instr{}, fmt.Errorf("malformed %s operands %q", mnemonic, rest)
	}
	var err error
	switch op {
	case OpNop:
		if rest != "" {
			return fail()
		}
	case OpMovI:
		if len(args) != 2 {
			return fail()
		}
		if ins.Dst, err = parseReg(args[0]); err != nil {
			return Instr{}, err
		}
		if ins.Imm, err = parseImm(args[1]); err != nil {
			return Instr{}, err
		}
	case OpMov:
		if len(args) != 2 {
			return fail()
		}
		if ins.Dst, err = parseReg(args[0]); err != nil {
			return Instr{}, err
		}
		if ins.Src1, err = parseReg(args[1]); err != nil {
			return Instr{}, err
		}
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpLE:
		if len(args) != 3 {
			return fail()
		}
		if ins.Dst, err = parseReg(args[0]); err != nil {
			return Instr{}, err
		}
		if ins.Src1, err = parseReg(args[1]); err != nil {
			return Instr{}, err
		}
		if ins.Src2, err = parseReg(args[2]); err != nil {
			return Instr{}, err
		}
	case OpAddI, OpMulI, OpAndI, OpOrI, OpXorI, OpShlI, OpShrI,
		OpCmpEQI, OpCmpNEI, OpCmpLTI, OpCmpLEI, OpCmpGTI, OpCmpGEI:
		if len(args) != 3 {
			return fail()
		}
		if ins.Dst, err = parseReg(args[0]); err != nil {
			return Instr{}, err
		}
		if ins.Src1, err = parseReg(args[1]); err != nil {
			return Instr{}, err
		}
		if ins.Imm, err = parseImm(args[2]); err != nil {
			return Instr{}, err
		}
	case OpLoad:
		// load r1, [r2+4]
		if len(args) != 2 {
			return fail()
		}
		if ins.Dst, err = parseReg(args[0]); err != nil {
			return Instr{}, err
		}
		if ins.Src1, ins.Imm, err = parseMem(args[1]); err != nil {
			return Instr{}, err
		}
	case OpStore:
		// store [r2+4], r3
		if len(args) != 2 {
			return fail()
		}
		if ins.Src1, ins.Imm, err = parseMem(args[0]); err != nil {
			return Instr{}, err
		}
		if ins.Src2, err = parseReg(args[1]); err != nil {
			return Instr{}, err
		}
	case OpEmit, OpRet:
		if len(args) != 1 {
			return fail()
		}
		if ins.Src1, err = parseReg(args[0]); err != nil {
			return Instr{}, err
		}
	case OpBr:
		if len(args) != 3 {
			return fail()
		}
		if ins.Src1, err = parseReg(args[0]); err != nil {
			return Instr{}, err
		}
		t0, err := parseBlockID(args[1])
		if err != nil {
			return Instr{}, err
		}
		t1, err := parseBlockID(args[2])
		if err != nil {
			return Instr{}, err
		}
		ins.Targets = []BlockID{t0, t1}
	case OpJmp:
		if len(args) != 1 {
			return fail()
		}
		t, err := parseBlockID(args[0])
		if err != nil {
			return Instr{}, err
		}
		ins.Targets = []BlockID{t}
	case OpSwitch:
		// switch r1, b0 b1 b2
		if len(args) < 2 {
			return fail()
		}
		if ins.Src1, err = parseReg(args[0]); err != nil {
			return Instr{}, err
		}
		for _, f := range strings.Fields(strings.Join(args[1:], " ")) {
			t, err := parseBlockID(f)
			if err != nil {
				return Instr{}, err
			}
			ins.Targets = append(ins.Targets, t)
		}
	case OpCall:
		return parseCall(rest, spec)
	default:
		return Instr{}, fmt.Errorf("unsupported opcode %q", mnemonic)
	}
	return ins, nil
}

// parseMem parses "[rN+imm]".
func parseMem(s string) (Reg, int64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	plus := strings.IndexByte(inner, '+')
	if plus < 0 {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	r, err := parseReg(inner[:plus])
	if err != nil {
		return 0, 0, err
	}
	imm, err := parseImm(inner[plus+1:])
	if err != nil {
		return 0, 0, err
	}
	return r, imm, nil
}

// parseCall parses "r1, proc2(r3, r4) -> b5".
func parseCall(rest string, spec bool) (Instr, error) {
	comma := strings.IndexByte(rest, ',')
	if comma < 0 {
		return Instr{}, fmt.Errorf("malformed call %q", rest)
	}
	dst, err := parseReg(rest[:comma])
	if err != nil {
		return Instr{}, err
	}
	rest = strings.TrimSpace(rest[comma+1:])
	open := strings.IndexByte(rest, '(')
	closeP := strings.LastIndexByte(rest, ')')
	arrow := strings.LastIndex(rest, "->")
	if open < 0 || closeP < open || arrow < closeP {
		return Instr{}, fmt.Errorf("malformed call %q", rest)
	}
	if !strings.HasPrefix(rest[:open], "proc") {
		return Instr{}, fmt.Errorf("malformed callee in %q", rest)
	}
	calleeN, err := strconv.ParseInt(rest[4:open], 10, 32)
	if err != nil {
		return Instr{}, fmt.Errorf("bad callee id in %q", rest)
	}
	var argRegs []Reg
	argText := strings.TrimSpace(rest[open+1 : closeP])
	if argText != "" {
		for _, a := range strings.Split(argText, ",") {
			r, err := parseReg(a)
			if err != nil {
				return Instr{}, err
			}
			argRegs = append(argRegs, r)
		}
	}
	cont, err := parseBlockID(strings.TrimSpace(rest[arrow+2:]))
	if err != nil {
		return Instr{}, err
	}
	ins := Call(dst, ProcID(calleeN), cont, argRegs...)
	ins.Spec = spec
	return ins, nil
}

// splitArgs splits a comma-separated operand list, respecting
// brackets (memory operands contain no commas, so a simple top-level
// split suffices; parentheses are handled by parseCall separately).
func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
