package ir

import (
	"fmt"
	"strings"
)

// WriteDot renders a procedure's CFG in Graphviz DOT syntax. Nodes
// show block id, instruction count, and superblock membership when
// formation has annotated it; edges are labeled by kind (taken /
// fallthrough / switch index / call continuation). An optional weight
// function adds dynamic edge counts to the labels.
func WriteDot(p *Proc, weight func(from, to BlockID) int64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  node [shape=box, fontname=\"monospace\"];\n", p.Name)
	for _, b := range p.Blocks {
		label := fmt.Sprintf("b%d (%d instrs)", b.ID, len(b.Instrs))
		if b.SBID >= 0 {
			label += fmt.Sprintf("\\nsb%d.%d", b.SBID, b.SBIndex)
		}
		attrs := ""
		if b.ID == p.Entry().ID {
			attrs = ", style=bold"
		}
		fmt.Fprintf(&sb, "  b%d [label=\"%s\"%s];\n", b.ID, label, attrs)
	}
	for _, b := range p.Blocks {
		t := b.Terminator()
		emit := func(to BlockID, kind string) {
			if to == NoBlock {
				return
			}
			label := kind
			if weight != nil {
				if w := weight(b.ID, to); w > 0 {
					label = fmt.Sprintf("%s %d", kind, w)
				}
			}
			fmt.Fprintf(&sb, "  b%d -> b%d [label=%q];\n", b.ID, to, label)
		}
		switch t.Op {
		case OpBr:
			emit(t.Targets[0], "T")
			emit(t.Targets[1], "F")
		case OpJmp:
			emit(t.Targets[0], "")
		case OpSwitch:
			for i, tgt := range t.Targets {
				if i == len(t.Targets)-1 {
					emit(tgt, "def")
				} else {
					emit(tgt, fmt.Sprintf("%d", i))
				}
			}
		case OpCall:
			emit(t.Targets[0], "ret-to")
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
