package ir

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"sort"
)

// Digest is a collision-robust structural hash. The pipeline's
// compile/profile cache uses digests as content addresses, so two
// programs (or configs) with equal digests are treated as
// interchangeable; sha256 keeps accidental collisions out of reach the
// same way the Ball–Larus-style path encodings rely on injective
// numbering.
type Digest [sha256.Size]byte

// Short returns an abbreviated hex form for logs and test failures.
func (d Digest) Short() string { return hex.EncodeToString(d[:6]) }

// Fingerprint returns a stable structural digest of prog: program
// metadata (name, entry, memory size), every data segment, and every
// procedure's blocks with their full instruction contents (opcodes,
// register operands, immediates, branch targets, call descriptors,
// speculation flags) plus the block metadata that downstream consumers
// read (superblock annotations, schedule cycles, span, layout address).
//
// The encoding is order-sensitive wherever the IR is: procedure,
// block, and instruction order are identity (ids index into those
// slices), as are Targets and Args. Data segments are the one
// order-insensitive seam — when no two segments overlap, initMem
// produces the same memory image under any permutation, so they are
// hashed in a canonical (Addr-sorted) order; overlapping segments fall
// back to declaration order, which then is semantic (later copies
// win).
//
// Derived, non-structural state is excluded: the memoized execution
// decode (execCache) and the virtual-register allocation cursor.
// CloneProgram therefore preserves the fingerprint exactly, and any
// mutation of the hashed fields changes it (pinned by the fuzz test).
func Fingerprint(prog *Program) Digest {
	w := fpWriter{h: sha256.New()}
	w.str("pathsched-ir-fp-v2")
	w.str(prog.Name)
	w.i64(int64(prog.Main))
	w.i64(prog.MemSize)

	w.u64(uint64(len(prog.Data)))
	for _, i := range canonicalSegOrder(prog.Data) {
		seg := prog.Data[i]
		w.i64(seg.Addr)
		w.u64(uint64(len(seg.Values)))
		for _, v := range seg.Values {
			w.i64(v)
		}
	}

	w.u64(uint64(len(prog.Procs)))
	for _, p := range prog.Procs {
		if p == nil {
			w.str("\x00nilproc")
			continue
		}
		w.str(p.Name)
		w.i64(int64(p.ID))
		w.u64(uint64(len(p.Blocks)))
		for _, b := range p.Blocks {
			w.hashBlock(b)
		}
	}

	var d Digest
	w.h.Sum(d[:0])
	return d
}

func (w *fpWriter) hashBlock(b *Block) {
	w.i64(int64(b.ID))
	w.i64(int64(b.Origin))
	w.i64(int64(b.SBID))
	w.i64(int64(b.SBIndex))
	w.i64(int64(b.SBSize))
	w.i64(int64(b.Span))
	w.i64(b.Addr)
	// nil and empty differ semantically for both annotations (nil
	// Cycles means unscheduled, nil ExitUnits means every exit retires
	// SBSize blocks), so presence is part of the encoding.
	w.i32Slice(b.ExitUnits)
	w.i32Slice(b.Units)
	w.blockIDSlice(b.UnitOrigins)
	w.i32Slice(b.Cycles)
	w.u64(uint64(len(b.Instrs)))
	for i := range b.Instrs {
		ins := &b.Instrs[i]
		w.u64(uint64(ins.Op))
		w.i64(int64(ins.Dst))
		w.i64(int64(ins.Src1))
		w.i64(int64(ins.Src2))
		w.i64(ins.Imm)
		if ins.Spec {
			w.u64(1)
		} else {
			w.u64(0)
		}
		w.u64(uint64(len(ins.Targets)))
		for _, t := range ins.Targets {
			w.i64(int64(t))
		}
		w.i64(int64(ins.Callee))
		w.u64(uint64(len(ins.Args)))
		for _, a := range ins.Args {
			w.i64(int64(a))
		}
	}
}

// canonicalSegOrder returns the order in which to hash data segments:
// Addr-sorted (ties broken by length, then by declaration order) when
// no two segments overlap, declaration order otherwise.
func canonicalSegOrder(segs []DataSeg) []int {
	order := make([]int, len(segs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := segs[order[a]], segs[order[b]]
		if sa.Addr != sb.Addr {
			return sa.Addr < sb.Addr
		}
		return len(sa.Values) < len(sb.Values)
	})
	for k := 0; k+1 < len(order); k++ {
		cur, next := segs[order[k]], segs[order[k+1]]
		if cur.Addr+int64(len(cur.Values)) > next.Addr {
			// Overlap: declaration order is semantic (later segments
			// overwrite earlier ones in initMem).
			for i := range order {
				order[i] = i
			}
			return order
		}
	}
	return order
}

// fpWriter frames values into the hash. Every variable-length field is
// length-prefixed, so distinct structures cannot collide by sliding
// bytes across field boundaries.
type fpWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w *fpWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *fpWriter) i64(v int64) { w.u64(uint64(v)) }

func (w *fpWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.h.Write([]byte(s))
}

func (w *fpWriter) i32Slice(s []int32) {
	if s == nil {
		w.u64(0)
		return
	}
	w.u64(1)
	w.u64(uint64(len(s)))
	for _, v := range s {
		w.i64(int64(v))
	}
}

func (w *fpWriter) blockIDSlice(s []BlockID) {
	if s == nil {
		w.u64(0)
		return
	}
	w.u64(1)
	w.u64(uint64(len(s)))
	for _, v := range s {
		w.i64(int64(v))
	}
}
