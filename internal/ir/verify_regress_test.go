package ir

import (
	"strings"
	"testing"
)

// Regression: Verify used to index blocks positionally without
// checking for two blocks claiming one ID, so a pass that corrupted a
// Block.ID slid past every later by-ID lookup.
func TestVerifyDuplicateBlockID(t *testing.T) {
	prog := diamond(t)
	prog.Procs[0].Blocks[2].ID = prog.Procs[0].Blocks[1].ID
	err := Verify(prog)
	if err == nil || !strings.Contains(err.Error(), "duplicate block id") {
		t.Fatalf("duplicate block id not rejected: %v", err)
	}
}

// Regression: a call argument register below zero indexed the frame
// out of bounds in the interpreter instead of failing verification.
func TestVerifyNegativeArgRegister(t *testing.T) {
	prog := diamond(t)
	b := prog.Procs[0].Blocks[3]
	b.Instrs[len(b.Instrs)-1] = Call(1, 0, 5, Reg(-2))
	err := Verify(prog)
	if err == nil || !strings.Contains(err.Error(), "negative argument register") {
		t.Fatalf("negative argument register not rejected: %v", err)
	}
}

// The Units annotation must cover every instruction and stay within
// the merged superblock's constituent count.
func TestVerifyUnitsAnnotation(t *testing.T) {
	mk := func(mutate func(b *Block)) error {
		prog := diamond(t)
		b := prog.Procs[0].Blocks[0]
		b.SBSize = 2
		b.Units = make([]int32, len(b.Instrs))
		for i := range b.Units {
			b.Units[i] = 1
		}
		mutate(b)
		return Verify(prog)
	}
	if err := mk(func(b *Block) {}); err != nil {
		t.Fatalf("valid Units rejected: %v", err)
	}
	if err := mk(func(b *Block) { b.Units = b.Units[:1] }); err == nil {
		t.Fatal("short Units accepted")
	}
	if err := mk(func(b *Block) { b.Units[0] = 0 }); err == nil {
		t.Fatal("zero unit accepted")
	}
	if err := mk(func(b *Block) { b.Units[0] = 3 }); err == nil {
		t.Fatal("unit beyond SBSize accepted")
	}
}

// Regression: the parser reported a repeated block label as an
// out-of-order block, pointing the user at the wrong problem.
func TestParseDuplicateBlockLabel(t *testing.T) {
	text := WriteText(loopProg(t))
	dup := strings.Replace(text, "block b1:", "block b0:", 1)
	_, err := ParseText(dup)
	if err == nil || !strings.Contains(err.Error(), "duplicate block label") {
		t.Fatalf("duplicate block label not rejected: %v", err)
	}
}
