package interp

import (
	"fmt"
	"reflect"
	"testing"

	"pathsched/internal/ir"
)

// This file gates the pre-decoded engine (decode.go/exec.go) against
// ReferenceRun, the preserved seed engine: for any verifier-clean
// program and any Config, the two must produce byte-identical Results,
// identical observer event streams, identical fetch traffic, and
// identical success/failure. Hand cases pin the tricky semantics
// (merged superblocks with mid-block NoBlock exits, speculative loads,
// switch fallthrough, scheduled cycle accounting); a randomized
// property test sweeps structured programs with calls, recursion,
// loops, switches, memory traffic, and randomized schedule/superblock
// annotations.

// diffRun executes prog under both engines in three configurations
// (bare, observed, with a fetch sink) and fails the test on any
// divergence. It returns the bare-run reference result for extra
// assertions.
func diffRun(t *testing.T, name string, prog *ir.Program) *Result {
	t.Helper()
	var bare *Result
	for _, mode := range []string{"bare", "observer", "fetch"} {
		refCfg, decCfg := Config{}, Config{}
		var refLog, decLog eventLog
		var refFetch, decFetch fetchLog
		switch mode {
		case "observer":
			refCfg.Observer, decCfg.Observer = &refLog, &decLog
		case "fetch":
			refFetch.stall, decFetch.stall = 3, 3
			refCfg.Fetch, decCfg.Fetch = &refFetch, &decFetch
		}
		want, wantErr := ReferenceRun(prog, refCfg)
		got, gotErr := Run(prog, decCfg)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s/%s: reference err = %v, decoded err = %v", name, mode, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("%s/%s: reference err %q, decoded err %q", name, mode, wantErr, gotErr)
			}
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s/%s: results diverge\nreference: %+v\ndecoded:   %+v", name, mode, want, got)
		}
		if !reflect.DeepEqual(refLog, decLog) {
			t.Fatalf("%s/%s: observer event streams diverge\nreference: %+v\ndecoded:   %+v",
				name, mode, refLog, decLog)
		}
		if !reflect.DeepEqual(refFetch.ranges, decFetch.ranges) {
			t.Fatalf("%s/%s: fetch traffic diverges\nreference: %v\ndecoded:   %v",
				name, mode, refFetch.ranges, decFetch.ranges)
		}
		if mode == "bare" {
			bare = want
		}
	}
	return bare
}

// specLoadProg exercises speculative and mapped loads side by side: the
// speculative load probes an unmapped address (yields 0) while the real
// load reads initialized data.
func specLoadProg() *ir.Program {
	bd := ir.NewBuilder("spec", 16)
	bd.Data(4, 11, 22, 33)
	pb := bd.Proc("main")
	b := pb.NewBlock()
	spec := ir.Load(2, 1, 9999) // r1 = 0, so address 9999: unmapped
	spec.Spec = true
	b.Add(
		spec,
		ir.MovI(3, 5),
		ir.Load(4, 3, 0), // mem[5] = 22
		ir.Add(5, 2, 4),
		ir.Emit(5),
	)
	b.Ret(5)
	return bd.Finish()
}

// switchFallthroughProg builds a merged block whose mid-block switch
// has a NoBlock slot: case sel==1 falls through in-block, everything
// else exits to a real block.
func switchFallthroughProg(sel int64) *ir.Program {
	bd := ir.NewBuilder("swft", 8)
	pb := bd.Proc("main")
	sb, out0, outD := pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	sb.Add(
		ir.MovI(1, sel),
		ir.Switch(1, out0.ID(), ir.NoBlock, outD.ID()), // case 1 falls through
		ir.MovI(2, 77),
		ir.Emit(2),
	)
	sb.Ret(2)
	out0.Add(ir.MovI(3, 100))
	out0.Ret(3)
	outD.Add(ir.MovI(3, 200))
	outD.Ret(3)
	prog := bd.Program()
	b := prog.Proc(0).Blocks[0]
	b.Cycles = []int32{0, 1, 1, 2, 3}
	b.Span = 4
	b.SBSize = 2
	b.ExitUnits = []int32{0, 1, 0, 0, 0}
	if err := ir.Verify(prog); err != nil {
		panic(err)
	}
	return prog
}

// callFallthroughProg builds a merged block with a mid-block call whose
// continuation slot is NoBlock, so the caller resumes in-block.
func callFallthroughProg() *ir.Program {
	bd := ir.NewBuilder("callft", 8)
	pb := bd.Proc("main")
	leaf := bd.Proc("leaf")
	lb := leaf.NewBlock()
	lb.Add(ir.AddI(0, ir.RegArg0, 1))
	lb.Ret(0)
	b := pb.NewBlock()
	b.Add(
		ir.MovI(2, 41),
		ir.Call(3, leaf.ID(), ir.NoBlock, 2),
		ir.Emit(3),
	)
	b.Ret(3)
	return bd.Finish()
}

func TestDecodedMatchesReferenceHandCases(t *testing.T) {
	cases := []struct {
		name string
		prog *ir.Program
	}{
		{"sumLoop", sumLoop(500)},
		{"mergedEarlyExit", mergedProg(1)},
		{"mergedCompletion", mergedProg(0)},
		{"specLoad", specLoadProg()},
		{"switchFallthroughTaken", switchFallthroughProg(0)},
		{"switchFallthroughFT", switchFallthroughProg(1)},
		{"switchFallthroughDefault", switchFallthroughProg(9)},
		{"callFallthrough", callFallthroughProg()},
	}
	for _, tc := range cases {
		diffRun(t, tc.name, tc.prog)
	}
}

func TestDecodedMatchesReferenceErrors(t *testing.T) {
	// Unmapped non-speculative load: both engines must fail with the
	// same error.
	bd := ir.NewBuilder("badload", 8)
	pb := bd.Proc("main")
	b := pb.NewBlock()
	b.Add(ir.Load(2, 1, -5))
	b.Ret(2)
	diffRun(t, "unmappedLoad", bd.Finish())

	// Unmapped store likewise.
	bd = ir.NewBuilder("badstore", 8)
	pb = bd.Proc("main")
	b = pb.NewBlock()
	b.Add(ir.Store(1, 99, 1))
	b.Ret(1)
	diffRun(t, "unmappedStore", bd.Finish())
}

// --- randomized differential property test ---------------------------

// genRng is a splitmix64; the generator must be deterministic per seed.
type genRng struct{ s uint64 }

func (r *genRng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *genRng) intn(n int64) int64 { return int64(r.next() % uint64(n)) }

// progGen emits one random structured procedure body. Programs always
// terminate: loops count down bounded counters and recursion decreases
// its argument to a base case.
type progGen struct {
	rng *genRng
	pb  *ir.ProcBuilder
	cur *ir.BlockBuilder
	// callees this proc may call (later procs only, to bound depth;
	// plus itself when selfRec is set, guarded by the decreasing arg).
	callees []ir.ProcID
	selfRec bool
	self    ir.ProcID
}

const (
	memWords  = 64
	genRegLo  = ir.Reg(2) // r2..r9 are scratch
	genRegHi  = ir.Reg(9)
	maxStmts  = 12
	recCutoff = 6 // recursion depth bound via decreasing arg
)

func (g *progGen) reg() ir.Reg { return genRegLo + ir.Reg(g.rng.intn(int64(genRegHi-genRegLo+1))) }

// stmt emits one random statement into the current block, possibly
// splitting it (if/loop/switch create new blocks).
func (g *progGen) stmt(depth int) {
	r := g.rng
	switch pick := r.intn(10); {
	case pick < 3: // arithmetic
		d, a, b := g.reg(), g.reg(), g.reg()
		switch r.intn(7) {
		case 0:
			g.cur.Add(ir.Add(d, a, b))
		case 1:
			g.cur.Add(ir.Sub(d, a, b))
		case 2:
			g.cur.Add(ir.MulI(d, a, r.intn(7)-3))
		case 3:
			g.cur.Add(ir.XorI(d, a, r.intn(1000)))
		case 4:
			g.cur.Add(ir.ShrI(d, a, r.intn(8)))
		case 5:
			g.cur.Add(ir.CmpLTI(d, a, r.intn(100)-50))
		default:
			g.cur.Add(ir.MovI(d, r.intn(2000)-1000))
		}
	case pick < 4: // emit
		g.cur.Add(ir.Emit(g.reg()))
	case pick < 6: // memory: mask the base into [0,memWords) first
		base, v := g.reg(), g.reg()
		g.cur.Add(ir.AndI(base, v, memWords-1))
		if r.intn(2) == 0 {
			g.cur.Add(ir.Store(base, 0, g.reg()))
		} else {
			g.cur.Add(ir.Load(v, base, 0))
		}
	case pick < 7: // speculative load, sometimes unmapped
		d, b := g.reg(), g.reg()
		l := ir.Load(d, b, r.intn(3*memWords)-memWords)
		l.Spec = true
		g.cur.Add(l)
	case pick < 8 && depth < 3: // if/else
		c := g.reg()
		g.cur.Add(ir.CmpGTI(c, g.reg(), r.intn(40)-20))
		then, els, join := g.pb.NewBlock(), g.pb.NewBlock(), g.pb.NewBlock()
		g.cur.Br(c, then.ID(), els.ID())
		g.cur = then
		g.block(depth+1, r.intn(3)+1)
		g.cur.Jmp(join.ID())
		g.cur = els
		g.block(depth+1, r.intn(3)+1)
		g.cur.Jmp(join.ID())
		g.cur = join
	case pick < 9 && depth < 3: // bounded countdown loop
		// The counter and its test live outside the scratch range so a
		// random statement in the body can never clobber them (which
		// would make the loop non-terminating).
		cnt, c := ir.Reg(16+2*depth), ir.Reg(17+2*depth)
		g.cur.Add(ir.MovI(cnt, r.intn(6)+1))
		head, body, exit := g.pb.NewBlock(), g.pb.NewBlock(), g.pb.NewBlock()
		g.cur.Jmp(head.ID())
		head.Add(ir.CmpGTI(c, cnt, 0))
		head.Br(c, body.ID(), exit.ID())
		g.cur = body
		g.block(depth+1, r.intn(3)+1)
		g.cur.Add(ir.AddI(cnt, cnt, -1))
		g.cur.Jmp(head.ID())
		g.cur = exit
	default: // switch or call
		if r.intn(2) == 0 {
			idx := g.reg()
			g.cur.Add(ir.AndI(idx, g.reg(), 3))
			n := int(r.intn(3)) + 2 // 2-4 cases + default
			arms := make([]*ir.BlockBuilder, n+1)
			targets := make([]ir.BlockID, n+1)
			for i := range arms {
				arms[i] = g.pb.NewBlock()
				targets[i] = arms[i].ID()
			}
			join := g.pb.NewBlock()
			g.cur.Switch(idx, targets...)
			for _, arm := range arms {
				g.cur = arm
				g.cur.Add(ir.MovI(g.reg(), r.intn(50)))
				g.cur.Jmp(join.ID())
			}
			g.cur = join
		} else if len(g.callees) > 0 || g.selfRec {
			d := g.reg()
			cont := g.pb.NewBlock()
			if g.selfRec && (len(g.callees) == 0 || r.intn(2) == 0) {
				// Recursive call on a sharply decreasing argument: a body
				// may hold several such calls, so the depth bound must
				// keep the activation tree (branching^depth) small.
				arg := g.reg()
				g.cur.Add(ir.AddI(arg, ir.RegArg0, -2))
				g.cur.Call(d, g.self, cont.ID(), arg)
			} else {
				// Mask the first argument so a callee that recurses on
				// it bottoms out quickly.
				callee := g.callees[r.intn(int64(len(g.callees)))]
				arg := g.reg()
				g.cur.Add(ir.AndI(arg, arg, 7))
				g.cur.Call(d, callee, cont.ID(), arg, g.reg())
			}
			g.cur = cont
		} else {
			g.cur.Add(ir.Nop())
		}
	}
}

func (g *progGen) block(depth int, stmts int64) {
	for i := int64(0); i < stmts; i++ {
		g.stmt(depth)
	}
}

// buildProc fills pb with a random body. Recursive procs guard their
// body behind an arg check so recursion always bottoms out.
func buildProc(r *genRng, pb *ir.ProcBuilder, callees []ir.ProcID, selfRec bool) {
	g := &progGen{rng: r, pb: pb, callees: callees, selfRec: selfRec, self: pb.ID()}
	entry := pb.NewBlock()
	g.cur = entry
	if selfRec {
		// if arg0 <= 0: return 1
		base, body := pb.NewBlock(), pb.NewBlock()
		c := ir.Reg(10)
		entry.Add(ir.CmpLEI(c, ir.RegArg0, 0))
		entry.Br(c, base.ID(), body.ID())
		base.Add(ir.MovI(2, 1))
		base.Ret(2)
		g.cur = body
	}
	g.block(0, r.intn(maxStmts)+3)
	ret := g.reg()
	g.cur.Add(ir.AndI(ret, ret, 0xffff))
	g.cur.Ret(ret)
}

// randomProgram builds a deterministic random program for a seed:
// main -> {helper, recursive helper}, with structured control flow.
func randomProgram(seed uint64) *ir.Program {
	r := &genRng{s: seed}
	bd := ir.NewBuilder(fmt.Sprintf("rand%d", seed), memWords)
	bd.Data(0, 3, 1, 4, 1, 5, 9, 2, 6)
	main := bd.Proc("main")
	helper := bd.Proc("helper")
	rec := bd.Proc("rec")
	buildProc(r, rec, nil, true)
	buildProc(r, helper, []ir.ProcID{rec.ID()}, false)
	buildProc(r, main, []ir.ProcID{helper.ID(), rec.ID()}, false)
	bd.SetMain(main.ID())
	prog := bd.Finish()
	return prog
}

// annotateRandom decorates some blocks with schedule and superblock
// metadata so the differential covers exitCycles/exitUnits precompute:
// the specific numbers are arbitrary, both engines must read them
// identically.
func annotateRandom(r *genRng, prog *ir.Program) {
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			if len(b.Instrs) == 0 || r.intn(3) != 0 {
				continue
			}
			b.Cycles = make([]int32, len(b.Instrs))
			c := int32(0)
			for i := range b.Cycles {
				c += int32(r.intn(2))
				b.Cycles[i] = c
			}
			b.Span = c + 1 + int32(r.intn(3))
			if r.intn(2) == 0 {
				b.SBSize = int32(r.intn(4)) + 1
				b.SBIndex = 0
				if r.intn(2) == 0 {
					b.ExitUnits = make([]int32, len(b.Instrs))
					for i := range b.ExitUnits {
						b.ExitUnits[i] = int32(r.intn(int64(b.SBSize) + 1))
					}
				}
			}
		}
	}
}

func TestDecodedMatchesReferenceRandomPrograms(t *testing.T) {
	// Seed the recursion argument (RegArg0 of main is 0; rec guards on
	// its own arg) — the generator bounds loops and recursion, so every
	// program terminates well inside the default step budget.
	n := uint64(300)
	if testing.Short() {
		n = 60
	}
	for seed := uint64(1); seed <= n; seed++ {
		prog := randomProgram(seed)
		if err := ir.Verify(prog); err != nil {
			t.Fatalf("seed %d: generated program fails verify: %v", seed, err)
		}
		diffRun(t, fmt.Sprintf("seed%d/plain", seed), prog)

		r := &genRng{s: seed ^ 0xabcdef}
		annotateRandom(r, prog)
		prog.StoreExecCache(nil) // annotations changed the shape stamp anyway, but be explicit
		diffRun(t, fmt.Sprintf("seed%d/annotated", seed), prog)
	}
}

// --- decode cache behaviour ------------------------------------------

func TestEngineMemoizedOnProgram(t *testing.T) {
	prog := sumLoop(10)
	e1 := EngineFor(prog)
	e2 := EngineFor(prog)
	if e1 != e2 {
		t.Fatal("EngineFor must return the memoized engine on an unchanged program")
	}
	if _, err := Run(prog, Config{}); err != nil {
		t.Fatal(err)
	}
	if EngineFor(prog) != e1 {
		t.Fatal("running must not invalidate the decode cache")
	}
}

func TestEngineRevalidatesShape(t *testing.T) {
	prog := sumLoop(10)
	e1 := EngineFor(prog)

	// Layout-style mutation: addresses change after a run.
	prog.Proc(0).Blocks[0].Addr = 4096
	e2 := EngineFor(prog)
	if e2 == e1 {
		t.Fatal("EngineFor must re-decode after a block address changes")
	}
	res, err := Run(prog, Config{Fetch: &fetchLog{}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferenceRun(prog, Config{Fetch: &fetchLog{}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("post-mutation results diverge: %+v vs %+v", res, want)
	}

	// Compaction-style mutation: schedule annotations appear.
	b := prog.Proc(0).Blocks[1]
	b.Cycles = make([]int32, len(b.Instrs))
	b.Span = 1
	if EngineFor(prog) == e2 {
		t.Fatal("EngineFor must re-decode after schedule annotations appear")
	}

	// Clones never inherit the cache.
	clone := ir.CloneProgram(prog)
	if clone.ExecCache() != nil {
		t.Fatal("cloned program must start with an empty exec cache")
	}
}

// --- data segment validation (regression) ----------------------------

func TestDataSegmentValidation(t *testing.T) {
	build := func(addr int64, vals ...int64) *ir.Program {
		bd := ir.NewBuilder("data", 8)
		bd.Data(addr, vals...)
		pb := bd.Proc("main")
		b := pb.NewBlock()
		b.Add(ir.MovI(1, 0))
		b.Ret(1)
		return bd.Program()
	}
	cases := []struct {
		name string
		prog *ir.Program
	}{
		{"negativeAddr", build(-1, 5)},
		{"pastEnd", build(9, 5)},
		{"overflowsEnd", build(6, 1, 2, 3)},
	}
	for _, tc := range cases {
		for engine, runFn := range map[string]func(*ir.Program, Config) (*Result, error){
			"decoded": Run, "reference": ReferenceRun,
		} {
			if _, err := runFn(tc.prog, Config{}); err == nil {
				t.Errorf("%s/%s: bad data segment must error, not panic or pass", tc.name, engine)
			}
		}
	}
	// A segment exactly filling memory is legal.
	ok := build(4, 1, 2, 3, 4)
	if _, err := Run(ok, Config{}); err != nil {
		t.Errorf("segment filling memory exactly should run: %v", err)
	}
}
