// Package interp executes IR programs. It plays two roles in the
// reproduction, mirroring the two uses of execution in Young and
// Smith's methodology (MICRO-31, 1998, §3):
//
//  1. Profiling runs: observers receive every executed CFG edge of the
//     original program, exactly like the paper's instrumentation pass
//     feeding an analysis routine (§3.1). The edge and path profilers
//     in internal/profile are such observers.
//  2. Measurement runs ("compiled simulation", §3.2): transformed,
//     scheduled programs carry per-instruction cycle annotations; the
//     interpreter executes them for semantic fidelity while summing
//     cycles, including the cost of superblock early exits, and feeds
//     instruction-fetch addresses to an optional cache model.
//
// Scheduled superblocks are merged "extended blocks" with mid-block
// exits: a control instruction whose continuation slot is ir.NoBlock
// falls through to the next instruction of the same block. A taken
// mid-block exit at schedule cycle c charges c+1 cycles; falling off
// the block's end charges the block's Span.
//
// Run executes through a pre-decoded ("threaded-code") engine: each
// program is decoded once into a flat representation — dense block
// index ranges over a per-procedure instruction array, branch targets
// resolved to block indices, per-instruction exit cycles and
// superblock exit units precomputed — and the decode is memoized on
// the program itself, so repeated runs of one build (reference,
// layout-profiling, measurement, benchmarking iterations) share it.
// ReferenceRun (reference.go) keeps the original switch-walk engine as
// the executable specification; the differential tests in
// decode_test.go pin the two byte-identical.
package interp

import (
	"fmt"

	"pathsched/internal/ir"
)

// Observer receives control-flow events from a run. Implementations
// must be fast; the interpreter invokes them on every block boundary.
type Observer interface {
	// EnterProc fires when a procedure activation begins, before any
	// block event of that activation.
	EnterProc(p ir.ProcID, entry ir.BlockID)
	// ExitProc fires when a procedure activation returns. Enter/Exit
	// pairs nest properly, so observers can keep per-activation state
	// on a stack (the path profiler does, to survive recursion).
	ExitProc(p ir.ProcID)
	// Edge fires for every executed intra-procedure CFG edge.
	Edge(p ir.ProcID, from, to ir.BlockID)
	// Block fires each time a basic block begins execution (including
	// the entry block of each activation).
	Block(p ir.ProcID, b ir.BlockID)
}

// EdgeRec is one executed intra-procedure CFG edge, as delivered in
// bulk to a BatchObserver.
type EdgeRec struct {
	From, To ir.BlockID
}

// BatchObserver is the bulk alternative to Observer: instead of one
// interface dispatch per executed edge, the engine appends edge
// records to a fixed buffer and delivers them in chunks. The event
// stream is a lossless re-encoding of the per-event one —
//
//	BeginProc(p, entry) ≡ EnterProc(p, entry); Block(p, entry)
//	each EdgeRec{f, t}  ≡ Edge(p, f, t); Block(p, t)
//	EndProc(p)          ≡ ExitProc(p)
//
// — so an observer that can fold the implied Block events (every
// profiler here can: a Block event always follows its Edge) loses no
// information. Batches never span activations: the engine flushes
// pending records before every BeginProc and EndProc, so all records
// of one EdgeBatch belong to the activation of the closest preceding
// BeginProc, in execution order. Both engines (decoded and reference
// fallback) produce identical batch streams for the same program; the
// differential tests in batch_test.go pin this.
type BatchObserver interface {
	// BeginProc fires when an activation begins; entry is its entry
	// block, already "entered" (no separate record is delivered for it).
	BeginProc(p ir.ProcID, entry ir.BlockID)
	// EndProc fires when an activation returns.
	EndProc(p ir.ProcID)
	// EdgeBatch delivers executed edges of the current activation of p
	// in execution order. recs is reused across calls; implementations
	// must not retain it.
	EdgeBatch(p ir.ProcID, recs []EdgeRec)
}

// FetchSink models the instruction-fetch side of the memory system.
// FetchRange is called with a half-open byte range of fetched code and
// returns the stall cycles it induced.
type FetchSink interface {
	FetchRange(start, end int64) int64
}

// Config controls a run.
type Config struct {
	// MaxSteps bounds executed instructions (0 means a generous
	// default); exceeding it aborts the run with an error, which keeps
	// buggy transforms from hanging the test suite. The bound is a
	// budget, not an exact trip count: the pre-decoded engine checks it
	// once per basic block against the block's full length, so a run
	// may be aborted up to one block-length short of the limit.
	MaxSteps int64
	// MaxDepth bounds the call stack (0 means a generous default).
	MaxDepth int
	// Observer, when non-nil, receives control-flow events.
	Observer Observer
	// Batch, when non-nil, receives control-flow events in bulk (see
	// BatchObserver). Setting both Observer and Batch is an error.
	Batch BatchObserver
	// Fetch, when non-nil, receives instruction-fetch address ranges
	// and contributes stall cycles (the I-cache model).
	Fetch FetchSink
}

// Result summarizes a run.
type Result struct {
	Ret    int64   // value returned by main
	Output []int64 // values emitted by OpEmit, in order

	DynInstrs   int64 // instructions executed (speculated work included)
	DynBranches int64 // conditional branches executed (br, switch)
	DynBlocks   int64 // basic-block entries
	Calls       int64 // procedure calls executed
	Cycles      int64 // machine cycles per schedule annotations
	FetchStall  int64 // portion of Cycles contributed by the FetchSink

	// Superblock statistics for Figure 7, accumulated over every entry
	// into a merged superblock: SBEntries counts entries, SBExecuted
	// sums constituent blocks executed before leaving, and SBSize sums
	// the superblock's size in blocks.
	SBEntries  int64
	SBExecuted int64
	SBSize     int64
}

const (
	defaultMaxSteps = int64(2) << 33 // ~17e9; benchmarks stay far below
	defaultMaxDepth = 1 << 14
)

// Run executes prog's main procedure and returns the result. The
// program must be verifier-clean; malformed control flow surfaces as an
// error rather than a panic. The decode is cached on prog (see
// EngineFor), so back-to-back runs of one program pay it once.
func Run(prog *ir.Program, cfg Config) (*Result, error) {
	return EngineFor(prog).Run(cfg)
}

// initMem builds the initial data-memory image. Data segments are
// validated rather than trusted: a segment with a negative address or
// one extending past MemSize returns an error instead of panicking in
// copy (regression: interp.Run used to fault on such programs).
func initMem(prog *ir.Program) ([]int64, error) {
	mem := make([]int64, prog.MemSize)
	for i, seg := range prog.Data {
		if seg.Addr < 0 || seg.Addr > prog.MemSize || int64(len(seg.Values)) > prog.MemSize-seg.Addr {
			return nil, fmt.Errorf("interp: data segment %d ([%d,%d)) outside memory of %d words",
				i, seg.Addr, seg.Addr+int64(len(seg.Values)), prog.MemSize)
		}
		copy(mem[seg.Addr:], seg.Values)
	}
	return mem, nil
}
