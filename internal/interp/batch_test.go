package interp

import (
	"errors"
	"reflect"
	"testing"

	"pathsched/internal/ir"
)

// This file gates the batched-observer seam (Config.Batch) and the
// counted-run fast path (RunCounted) against the per-event baseline:
// both engines must deliver byte-identical batch streams — including
// flush boundaries — and a batch stream flattened back to per-event
// form must equal the legacy Observer stream of the same run.

// batchLog records BatchObserver callbacks. EdgeBatch copies the
// delivered records: the engine reuses its ring buffer across flushes,
// so retaining the slice would alias later batches.
type batchLog struct {
	events []batchEvent
}

type batchEvent struct {
	kind  byte // 'B' BeginProc, 'E' EndProc, 'F' EdgeBatch
	proc  ir.ProcID
	entry ir.BlockID
	recs  []EdgeRec
}

func (l *batchLog) BeginProc(p ir.ProcID, entry ir.BlockID) {
	l.events = append(l.events, batchEvent{kind: 'B', proc: p, entry: entry})
}

func (l *batchLog) EndProc(p ir.ProcID) {
	l.events = append(l.events, batchEvent{kind: 'E', proc: p})
}

func (l *batchLog) EdgeBatch(p ir.ProcID, recs []EdgeRec) {
	l.events = append(l.events, batchEvent{
		kind: 'F', proc: p, recs: append([]EdgeRec(nil), recs...)})
}

// flatten expands the batch stream into the per-event stream it stands
// for: BeginProc ≡ EnterProc + Block(entry), each record ≡ Edge +
// Block(To), EndProc ≡ ExitProc.
func (l *batchLog) flatten() eventLog {
	var out eventLog
	for _, ev := range l.events {
		switch ev.kind {
		case 'B':
			out.enters = append(out.enters, ev.entry)
			out.blocks = append(out.blocks, ev.entry)
		case 'E':
			out.exits = append(out.exits, ev.proc)
		case 'F':
			for _, r := range ev.recs {
				out.edges = append(out.edges, [2]ir.BlockID{r.From, r.To})
				out.blocks = append(out.blocks, r.To)
			}
		}
	}
	return out
}

// diffBatch runs prog under both engines with a batch observer and
// fails on any divergence: error outcome, Result, the batch streams
// themselves (flush boundaries included), and the flattened stream
// against a legacy per-event observer run.
func diffBatch(t *testing.T, name string, prog *ir.Program) {
	t.Helper()
	var refB, decB batchLog
	refRes, refErr := ReferenceRun(prog, Config{Batch: &refB})
	decRes, decErr := Run(prog, Config{Batch: &decB})
	if (refErr == nil) != (decErr == nil) {
		t.Fatalf("%s: reference err = %v, decoded err = %v", name, refErr, decErr)
	}
	if refErr != nil && refErr.Error() != decErr.Error() {
		t.Fatalf("%s: reference err %q, decoded err %q", name, refErr, decErr)
	}
	if !reflect.DeepEqual(refB.events, decB.events) {
		t.Fatalf("%s: batch streams diverge\nreference: %+v\ndecoded:   %+v",
			name, refB.events, decB.events)
	}
	if refErr == nil && !reflect.DeepEqual(refRes, decRes) {
		t.Fatalf("%s: results diverge\nreference: %+v\ndecoded:   %+v", name, refRes, decRes)
	}

	var legacy eventLog
	if _, err := Run(prog, Config{Observer: &legacy}); (err == nil) != (decErr == nil) {
		t.Fatalf("%s: legacy observer run err = %v, batch run err = %v", name, err, decErr)
	}
	if got := decB.flatten(); !reflect.DeepEqual(got, legacy) {
		t.Fatalf("%s: flattened batch stream != legacy event stream\nbatch:  %+v\nlegacy: %+v",
			name, got, legacy)
	}
}

func TestBatchMatchesReferenceHandCases(t *testing.T) {
	cases := []struct {
		name string
		prog *ir.Program
	}{
		{"sumLoop", sumLoop(500)},
		{"sumLoopLong", sumLoop(3000)}, // > batchCap edges: mid-run flushes
		{"mergedEarlyExit", mergedProg(1)},
		{"mergedCompletion", mergedProg(0)},
		{"specLoad", specLoadProg()},
		{"switchFallthroughTaken", switchFallthroughProg(0)},
		{"switchFallthroughFT", switchFallthroughProg(1)},
		{"switchFallthroughDefault", switchFallthroughProg(9)},
		{"callFallthrough", callFallthroughProg()},
		{"narrowTwin", wideTwin(1)},
		{"wideTwin", wideTwin(297)}, // reference fallback path
	}
	for _, tc := range cases {
		diffBatch(t, tc.name, tc.prog)
	}
}

func TestBatchMatchesReferenceErrors(t *testing.T) {
	// Batches must agree (and be fully flushed up to the fault) even on
	// runs that error.
	bd := ir.NewBuilder("badload", 8)
	pb := bd.Proc("main")
	b := pb.NewBlock()
	b.Add(ir.Load(2, 1, -5))
	b.Ret(2)
	diffBatch(t, "unmappedLoad", bd.Finish())
}

func TestBatchRandomPrograms(t *testing.T) {
	n := uint64(150)
	if testing.Short() {
		n = 40
	}
	for seed := uint64(1); seed <= n; seed++ {
		prog := randomProgram(seed)
		if err := ir.Verify(prog); err != nil {
			t.Fatalf("seed %d: generated program fails verify: %v", seed, err)
		}
		diffBatch(t, prog.Name, prog)
	}
}

func TestObserverAndBatchExclusive(t *testing.T) {
	prog := sumLoop(5)
	cfg := Config{Observer: &eventLog{}, Batch: &batchLog{}}
	if _, err := Run(prog, cfg); !errors.Is(err, errObserverAndBatch) {
		t.Fatalf("Run with Observer and Batch: err = %v, want %v", err, errObserverAndBatch)
	}
	if _, err := ReferenceRun(prog, cfg); !errors.Is(err, errObserverAndBatch) {
		t.Fatalf("ReferenceRun with Observer and Batch: err = %v, want %v", err, errObserverAndBatch)
	}
}

// TestObserverKeepsDecodedEngine is the fallback regression gate:
// attaching an observer — batched or legacy — must never route a
// ≤256-register program to the reference engine. The engine's fallback
// flag is its only routing condition, and RunCounted (which refuses to
// run on a fallback engine) must succeed with a batch observer
// attached.
func TestObserverKeepsDecodedEngine(t *testing.T) {
	for _, tc := range []struct {
		name string
		prog *ir.Program
	}{
		{"sumLoop", sumLoop(100)},
		{"callFallthrough", callFallthroughProg()},
		{"narrowTwin", wideTwin(1)},
	} {
		e := EngineFor(tc.prog)
		if e.Fallback() {
			t.Fatalf("%s: decoded engine reports fallback for a narrow program", tc.name)
		}
		if _, _, err := e.RunCounted(Config{Batch: &batchLog{}}); err != nil {
			t.Fatalf("%s: counted run with batch observer: %v", tc.name, err)
		}
	}
}

func TestRunCountedMatchesRun(t *testing.T) {
	progs := []struct {
		name string
		prog *ir.Program
	}{
		{"sumLoop", sumLoop(500)},
		{"mergedEarlyExit", mergedProg(1)},
		{"switchFallthroughDefault", switchFallthroughProg(9)},
		{"callFallthrough", callFallthroughProg()},
	}
	for seed := uint64(1); seed <= 25; seed++ {
		progs = append(progs, struct {
			name string
			prog *ir.Program
		}{randomProgram(seed).Name, randomProgram(seed)})
	}
	for _, tc := range progs {
		want, wantErr := Run(tc.prog, Config{})
		got, ec, gotErr := EngineFor(tc.prog).RunCounted(Config{})
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: Run err = %v, RunCounted err = %v", tc.name, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: results diverge\nplain:   %+v\ncounted: %+v", tc.name, want, got)
		}
		if ec == nil {
			t.Fatalf("%s: completed counted run returned nil EdgeCounts", tc.name)
		}
	}
}

func TestRunCountedRejections(t *testing.T) {
	if _, _, err := EngineFor(sumLoop(5)).RunCounted(Config{Observer: &eventLog{}}); !errors.Is(err, errCountedObserver) {
		t.Fatalf("counted run with Observer: err = %v, want %v", err, errCountedObserver)
	}
	if _, _, err := EngineFor(wideTwin(297)).RunCounted(Config{}); !errors.Is(err, errCountedFallback) {
		t.Fatalf("counted run on fallback engine: err = %v, want %v", err, errCountedFallback)
	}
}
