package interp

import (
	"errors"
	"fmt"

	"pathsched/internal/ir"
)

// ReferenceRun executes prog with the original per-instruction
// switch-walk engine, re-reading the ir.Instr stream on every step.
//
// It is kept verbatim (modulo shared memory-image validation) as the
// executable specification of the interpreter's semantics: the
// pre-decoded engine behind Run must produce byte-identical Results,
// and the differential tests in decode_test.go gate every engine
// change against this implementation. It is exported for those tests
// and for the cmd/benchinterp speedup harness; production callers
// should use Run.
func ReferenceRun(prog *ir.Program, cfg Config) (*Result, error) {
	if cfg.Batch != nil {
		// The reference engine has no native batch path: adapt the
		// per-event stream through a batcher, which uses the same
		// buffer capacity and flush points as the decoded engine so
		// the two produce identical batch streams.
		if cfg.Observer != nil {
			return nil, errObserverAndBatch
		}
		cfg.Observer = &batcher{bo: cfg.Batch}
		cfg.Batch = nil
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = defaultMaxSteps
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = defaultMaxDepth
	}
	mem, err := initMem(prog)
	if err != nil {
		return nil, err
	}
	m := &machine{
		prog: prog,
		cfg:  cfg,
		mem:  mem,
		res:  &Result{},
	}
	ret, err := m.call(prog.Main, nil, 0)
	if err != nil {
		return nil, err
	}
	m.res.Ret = ret
	return m.res, nil
}

type machine struct {
	prog  *ir.Program
	cfg   Config
	mem   []int64
	res   *Result
	steps int64

	// framePool recycles register files across calls; files are sized
	// per procedure on first use.
	framePool [][]int64
}

func (m *machine) getFrame(size int) []int64 {
	if n := len(m.framePool); n > 0 {
		f := m.framePool[n-1]
		m.framePool = m.framePool[:n-1]
		if cap(f) >= size {
			f = f[:size]
			for i := range f {
				f[i] = 0
			}
			return f
		}
	}
	return make([]int64, size)
}

func (m *machine) putFrame(f []int64) { m.framePool = append(m.framePool, f) }

// call runs one procedure activation and returns its r0.
func (m *machine) call(id ir.ProcID, args []int64, depth int) (int64, error) {
	if depth > m.cfg.MaxDepth {
		return 0, fmt.Errorf("interp: call depth exceeds %d", m.cfg.MaxDepth)
	}
	p := m.prog.Proc(id)
	if p == nil {
		return 0, fmt.Errorf("interp: call to unknown proc %d", id)
	}
	regs := m.getFrame(int(p.MaxReg()) + 1)
	defer m.putFrame(regs)
	for i, v := range args {
		regs[int(ir.RegArg0)+i] = v
	}

	obs := m.cfg.Observer
	if obs != nil {
		obs.EnterProc(id, p.Entry().ID)
	}

	cur := p.Entry().ID
	prev := ir.NoBlock
	for {
		b := p.Block(cur)
		if b == nil {
			return 0, fmt.Errorf("interp: proc %s: bad block b%d", p.Name, cur)
		}
		if obs != nil {
			if prev != ir.NoBlock {
				obs.Edge(id, prev, cur)
			}
			obs.Block(id, cur)
		}
		m.res.DynBlocks++
		if b.SBSize > 0 && b.SBIndex == 0 {
			m.res.SBEntries++
			m.res.SBSize += int64(b.SBSize)
		}

		next, ret, done, err := m.execBlock(p, b, regs, depth)
		if err != nil {
			return 0, err
		}
		if done {
			if obs != nil {
				obs.ExitProc(id)
			}
			return ret, nil
		}
		prev, cur = cur, next
	}
}

var errUnmappedLoad = errors.New("interp: load from unmapped address")

// execBlock runs one (possibly merged) block. It returns the successor
// block, or done=true with the return value when the activation ends.
func (m *machine) execBlock(p *ir.Proc, b *ir.Block, regs []int64, depth int) (next ir.BlockID, ret int64, done bool, err error) {
	sched := b.Cycles != nil
	for i := 0; i < len(b.Instrs); i++ {
		if m.steps >= m.cfg.MaxSteps {
			return 0, 0, false, fmt.Errorf("interp: step limit %d exceeded in %s/b%d", m.cfg.MaxSteps, p.Name, b.ID)
		}
		m.steps++
		m.res.DynInstrs++
		ins := &b.Instrs[i]
		switch ins.Op {
		case ir.OpNop:
		case ir.OpMovI:
			regs[ins.Dst] = ins.Imm
		case ir.OpMov:
			regs[ins.Dst] = regs[ins.Src1]
		case ir.OpAdd:
			regs[ins.Dst] = regs[ins.Src1] + regs[ins.Src2]
		case ir.OpSub:
			regs[ins.Dst] = regs[ins.Src1] - regs[ins.Src2]
		case ir.OpMul:
			regs[ins.Dst] = regs[ins.Src1] * regs[ins.Src2]
		case ir.OpAnd:
			regs[ins.Dst] = regs[ins.Src1] & regs[ins.Src2]
		case ir.OpOr:
			regs[ins.Dst] = regs[ins.Src1] | regs[ins.Src2]
		case ir.OpXor:
			regs[ins.Dst] = regs[ins.Src1] ^ regs[ins.Src2]
		case ir.OpShl:
			regs[ins.Dst] = regs[ins.Src1] << (uint64(regs[ins.Src2]) & 63)
		case ir.OpShr:
			regs[ins.Dst] = regs[ins.Src1] >> (uint64(regs[ins.Src2]) & 63)
		case ir.OpAddI:
			regs[ins.Dst] = regs[ins.Src1] + ins.Imm
		case ir.OpMulI:
			regs[ins.Dst] = regs[ins.Src1] * ins.Imm
		case ir.OpAndI:
			regs[ins.Dst] = regs[ins.Src1] & ins.Imm
		case ir.OpOrI:
			regs[ins.Dst] = regs[ins.Src1] | ins.Imm
		case ir.OpXorI:
			regs[ins.Dst] = regs[ins.Src1] ^ ins.Imm
		case ir.OpShlI:
			regs[ins.Dst] = regs[ins.Src1] << (uint64(ins.Imm) & 63)
		case ir.OpShrI:
			regs[ins.Dst] = regs[ins.Src1] >> (uint64(ins.Imm) & 63)
		case ir.OpCmpEQ:
			regs[ins.Dst] = b2i(regs[ins.Src1] == regs[ins.Src2])
		case ir.OpCmpNE:
			regs[ins.Dst] = b2i(regs[ins.Src1] != regs[ins.Src2])
		case ir.OpCmpLT:
			regs[ins.Dst] = b2i(regs[ins.Src1] < regs[ins.Src2])
		case ir.OpCmpLE:
			regs[ins.Dst] = b2i(regs[ins.Src1] <= regs[ins.Src2])
		case ir.OpCmpEQI:
			regs[ins.Dst] = b2i(regs[ins.Src1] == ins.Imm)
		case ir.OpCmpNEI:
			regs[ins.Dst] = b2i(regs[ins.Src1] != ins.Imm)
		case ir.OpCmpLTI:
			regs[ins.Dst] = b2i(regs[ins.Src1] < ins.Imm)
		case ir.OpCmpLEI:
			regs[ins.Dst] = b2i(regs[ins.Src1] <= ins.Imm)
		case ir.OpCmpGTI:
			regs[ins.Dst] = b2i(regs[ins.Src1] > ins.Imm)
		case ir.OpCmpGEI:
			regs[ins.Dst] = b2i(regs[ins.Src1] >= ins.Imm)
		case ir.OpLoad:
			addr := regs[ins.Src1] + ins.Imm
			if addr < 0 || addr >= int64(len(m.mem)) {
				if !ins.Spec {
					return 0, 0, false, fmt.Errorf("%w: %d in %s/b%d", errUnmappedLoad, addr, p.Name, b.ID)
				}
				regs[ins.Dst] = 0 // non-excepting speculative load
			} else {
				regs[ins.Dst] = m.mem[addr]
			}
		case ir.OpStore:
			addr := regs[ins.Src1] + ins.Imm
			if addr < 0 || addr >= int64(len(m.mem)) {
				return 0, 0, false, fmt.Errorf("interp: store to unmapped address %d in %s/b%d", addr, p.Name, b.ID)
			}
			m.mem[addr] = regs[ins.Src2]
		case ir.OpEmit:
			m.res.Output = append(m.res.Output, regs[ins.Src1])

		case ir.OpBr:
			m.res.DynBranches++
			var tgt ir.BlockID
			if regs[ins.Src1] != 0 {
				tgt = ins.Targets[0]
			} else {
				tgt = ins.Targets[1]
			}
			if tgt == ir.NoBlock {
				continue // merged superblock: fall through in-block
			}
			m.leaveBlock(b, i, sched)
			return tgt, 0, false, nil

		case ir.OpJmp:
			m.leaveBlock(b, i, sched)
			return ins.Targets[0], 0, false, nil

		case ir.OpSwitch:
			m.res.DynBranches++
			idx := regs[ins.Src1]
			var tgt ir.BlockID
			if idx >= 0 && idx < int64(len(ins.Targets)-1) {
				tgt = ins.Targets[idx]
			} else {
				tgt = ins.Targets[len(ins.Targets)-1]
			}
			if tgt == ir.NoBlock {
				continue
			}
			m.leaveBlock(b, i, sched)
			return tgt, 0, false, nil

		case ir.OpCall:
			m.res.Calls++
			var args [ir.MaxArgs]int64
			for ai, r := range ins.Args {
				args[ai] = regs[r]
			}
			rv, err := m.call(ins.Callee, args[:len(ins.Args)], depth+1)
			if err != nil {
				return 0, 0, false, err
			}
			regs[ins.Dst] = rv
			if ins.Targets[0] == ir.NoBlock {
				continue
			}
			m.leaveBlock(b, i, sched)
			return ins.Targets[0], 0, false, nil

		case ir.OpRet:
			m.leaveBlock(b, i, sched)
			return 0, regs[ins.Src1], true, nil

		default:
			return 0, 0, false, fmt.Errorf("interp: unknown opcode %v", ins.Op)
		}
	}
	// Fell off the end of the block: only legal in merged superblocks
	// where the final control op had a NoBlock slot? No — the verifier
	// guarantees a terminator, and every terminator either transfers
	// control or (with a NoBlock slot) continues the loop above, which
	// then runs past the final instruction only if that terminator fell
	// through. That is a malformed merged block.
	return 0, 0, false, fmt.Errorf("interp: control fell off end of %s/b%d", p.Name, b.ID)
}

// leaveBlock charges cycles and fetch traffic for executing b up to and
// including instruction i.
func (m *machine) leaveBlock(b *ir.Block, i int, sched bool) {
	var cycles int64
	if sched {
		if i == len(b.Instrs)-1 {
			cycles = int64(b.Span)
		} else {
			cycles = int64(b.Cycles[i]) + 1
		}
	} else {
		cycles = int64(i + 1)
	}
	m.res.Cycles += cycles
	if b.SBSize > 0 {
		// Early-exit accounting: ExitUnits[i] holds the number of
		// constituent blocks completed when leaving via instruction i.
		m.res.SBExecuted += int64(exitUnits(b, i))
	}
	if m.cfg.Fetch != nil {
		stall := m.cfg.Fetch.FetchRange(b.Addr, b.Addr+4*int64(i+1))
		m.res.Cycles += stall
		m.res.FetchStall += stall
	}
}

func exitUnits(b *ir.Block, i int) int32 {
	if b.ExitUnits == nil {
		return b.SBSize
	}
	if u := b.ExitUnits[i]; u > 0 {
		return u
	}
	return b.SBSize
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}
