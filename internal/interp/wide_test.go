package interp

import (
	"reflect"
	"testing"

	"pathsched/internal/ir"
)

// wideTwin builds a small looping program whose scratch registers
// start at base: sum = Σ i*3 for i in [0,10), emitted and returned.
// base 1 yields an ordinary program; base near 300 pushes operands
// past the decoded engine's 256-register frame.
func wideTwin(base ir.Reg) *ir.Program {
	i, sum, tmp, cond := base, base+1, base+2, base+3
	bd := ir.NewBuilder("wide-twin", 16)
	p := bd.Proc("main")
	bs := p.NewBlocks(3)
	bs[0].Add(ir.MovI(i, 0), ir.MovI(sum, 0))
	bs[0].Jmp(bs[1].ID())
	bs[1].Add(
		ir.MulI(tmp, i, 3),
		ir.Add(sum, sum, tmp),
		ir.AddI(i, i, 1),
		ir.CmpLTI(cond, i, 10),
	)
	bs[1].Br(cond, bs[1].ID(), bs[2].ID())
	bs[2].Add(ir.Emit(sum))
	bs[2].Ret(sum)
	return bd.Program()
}

// TestWideRegisterFallback pins the decoded engine's escape hatch: a
// procedure whose register file exceeds the 256-register decoded frame
// must route Run through ReferenceRun (Engine.fallback) and still
// behave exactly like a narrow twin of the same program.
func TestWideRegisterFallback(t *testing.T) {
	narrow, wide := wideTwin(1), wideTwin(297)
	if err := ir.Verify(narrow); err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(wide); err != nil {
		t.Fatal(err)
	}

	if e := EngineFor(narrow); e.fallback {
		t.Fatal("narrow twin (max reg 4) should use the decoded engine")
	}
	we := EngineFor(wide)
	if !we.fallback {
		t.Fatal("max reg 300 exceeds the 256-register decoded frame; engine should fall back")
	}
	for i, d := range we.procs {
		if d.frameLen > 256 && !we.fallback {
			t.Fatalf("proc %d: frameLen %d > 256 without fallback", i, d.frameLen)
		}
	}

	// Run on the wide program must equal ReferenceRun on it (fallback
	// delegates, including under an observer), and both twins must
	// compute the same answer.
	wideRes := diffRun(t, "wide", wide)
	narrowRes := diffRun(t, "narrow", narrow)
	if wideRes.Ret != narrowRes.Ret {
		t.Fatalf("twins diverge: wide ret %d, narrow ret %d", wideRes.Ret, narrowRes.Ret)
	}
	if !reflect.DeepEqual(wideRes.Output, narrowRes.Output) {
		t.Fatalf("twins diverge: wide output %v, narrow output %v", wideRes.Output, narrowRes.Output)
	}
	if want := int64(135); wideRes.Ret != want {
		t.Fatalf("ret = %d, want %d", wideRes.Ret, want)
	}
}
