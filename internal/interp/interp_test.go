package interp

import (
	"strings"
	"testing"

	"pathsched/internal/ir"
)

func run(t *testing.T, prog *ir.Program, cfg Config) *Result {
	t.Helper()
	res, err := Run(prog, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// sumLoop emits the sum 0+1+...+n-1 and returns it.
func sumLoop(n int64) *ir.Program {
	bd := ir.NewBuilder("sum", 8)
	pb := bd.Proc("main")
	entry, head, body, exit := pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, sum, c = 1, 2, 3
	entry.Add(ir.MovI(i, 0), ir.MovI(sum, 0))
	entry.Jmp(head.ID())
	head.Add(ir.CmpLTI(c, i, n))
	head.Br(c, body.ID(), exit.ID())
	body.Add(ir.Add(sum, sum, i), ir.AddI(i, i, 1))
	body.Jmp(head.ID())
	exit.Add(ir.Emit(sum))
	exit.Ret(sum)
	return bd.Finish()
}

func TestArithmeticAndEmit(t *testing.T) {
	bd := ir.NewBuilder("arith", 8)
	pb := bd.Proc("main")
	b := pb.NewBlock()
	b.Add(
		ir.MovI(1, 6), ir.MovI(2, 7),
		ir.Mul(3, 1, 2), ir.Emit(3), // 42
		ir.Sub(4, 3, 1), ir.Emit(4), // 36
		ir.AddI(5, 4, -6), ir.Emit(5), // 30
		ir.XorI(6, 5, 0xff), ir.Emit(6), // 225
		ir.ShlI(7, 1, 2), ir.Emit(7), // 24
		ir.ShrI(8, 7, 3), ir.Emit(8), // 3
		ir.And(9, 3, 2), ir.Emit(9), // 42&7 = 2
		ir.Or(10, 9, 8), ir.Emit(10), // 3
		ir.CmpLE(11, 1, 2), ir.Emit(11), // 1
		ir.CmpEQI(12, 3, 42), ir.Emit(12), // 1
		ir.CmpGTI(13, 3, 42), ir.Emit(13), // 0
	)
	b.Ret(3)
	res := run(t, bd.Finish(), Config{})
	want := []int64{42, 36, 30, 225, 24, 3, 2, 3, 1, 1, 0}
	if len(res.Output) != len(want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Fatalf("output[%d] = %d, want %d", i, res.Output[i], want[i])
		}
	}
	if res.Ret != 42 {
		t.Fatalf("ret = %d, want 42", res.Ret)
	}
}

func TestLoopSum(t *testing.T) {
	res := run(t, sumLoop(100), Config{})
	if res.Ret != 4950 {
		t.Fatalf("sum = %d, want 4950", res.Ret)
	}
	if res.DynBranches != 101 {
		t.Fatalf("branches = %d, want 101", res.DynBranches)
	}
	// Unscheduled code charges one cycle per executed instruction.
	if res.Cycles != res.DynInstrs {
		t.Fatalf("cycles = %d, instrs = %d; unscheduled must match", res.Cycles, res.DynInstrs)
	}
}

func TestMemoryAndData(t *testing.T) {
	bd := ir.NewBuilder("mem", 16)
	bd.Data(4, 10, 20, 30)
	pb := bd.Proc("main")
	b := pb.NewBlock()
	b.Add(
		ir.MovI(1, 4),
		ir.Load(2, 1, 1),  // mem[5] = 20
		ir.AddI(3, 2, 5),  // 25
		ir.Store(1, 2, 3), // mem[6] = 25
		ir.Load(4, 1, 2),  // 25
		ir.Emit(4),
	)
	b.Ret(4)
	res := run(t, bd.Finish(), Config{})
	if res.Ret != 25 {
		t.Fatalf("ret = %d, want 25", res.Ret)
	}
}

func TestCallsAndRecursion(t *testing.T) {
	bd := ir.NewBuilder("fib", 8)
	pb := bd.Proc("main")
	fib := bd.Proc("fib")

	// fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
	f0, fbase, frec1, frec2 := fib.NewBlock(), fib.NewBlock(), fib.NewBlock(), fib.NewBlock()
	const n, c, a, b2, tmp = 1, 8, 9, 10, 11
	f0.Add(ir.CmpLTI(c, n, 2))
	f0.Br(c, fbase.ID(), frec1.ID())
	fbase.Ret(n)
	frec1.Add(ir.AddI(tmp, n, -1))
	frec1.Call(a, fib.ID(), frec2.ID(), tmp)
	frec2.Add(ir.AddI(tmp, n, -2))
	last := fib.NewBlock()
	frec2.Call(b2, fib.ID(), last.ID(), tmp)
	last.Add(ir.Add(a, a, b2))
	last.Ret(a)

	m0, m1 := pb.NewBlock(), pb.NewBlock()
	m0.Add(ir.MovI(2, 10))
	m0.Call(3, fib.ID(), m1.ID(), 2)
	m1.Add(ir.Emit(3))
	m1.Ret(3)

	res := run(t, bd.Finish(), Config{})
	if res.Ret != 55 {
		t.Fatalf("fib(10) = %d, want 55", res.Ret)
	}
	if res.Calls < 100 {
		t.Fatalf("calls = %d, want many recursive calls", res.Calls)
	}
}

func TestSwitchSemantics(t *testing.T) {
	mk := func(idx int64) *ir.Program {
		bd := ir.NewBuilder("sw", 8)
		pb := bd.Proc("main")
		entry := pb.NewBlock()
		t0, t1, dflt := pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
		entry.Add(ir.MovI(1, idx))
		entry.Switch(1, t0.ID(), t1.ID(), dflt.ID())
		t0.Ret(1) // returns idx... use distinct consts
		t1.Add(ir.MovI(2, 100))
		t1.Ret(2)
		dflt.Add(ir.MovI(2, 999))
		dflt.Ret(2)
		return bd.Finish()
	}
	if res := run(t, mk(0), Config{}); res.Ret != 0 {
		t.Fatalf("switch(0) ret %d", res.Ret)
	}
	if res := run(t, mk(1), Config{}); res.Ret != 100 {
		t.Fatalf("switch(1) ret %d", res.Ret)
	}
	if res := run(t, mk(7), Config{}); res.Ret != 999 {
		t.Fatalf("switch(7) ret %d (default)", res.Ret)
	}
	if res := run(t, mk(-3), Config{}); res.Ret != 999 {
		t.Fatalf("switch(-3) ret %d (default)", res.Ret)
	}
}

func TestSpeculativeLoadIsNonExcepting(t *testing.T) {
	bd := ir.NewBuilder("spec", 8)
	pb := bd.Proc("main")
	b := pb.NewBlock()
	ld := ir.Load(2, 1, 1_000_000)
	ld.Spec = true
	b.Add(ir.MovI(1, 0), ld, ir.Emit(2))
	b.Ret(2)
	res := run(t, bd.Finish(), Config{})
	if res.Ret != 0 {
		t.Fatalf("speculative unmapped load = %d, want 0", res.Ret)
	}
}

func TestNonSpeculativeUnmappedLoadFails(t *testing.T) {
	bd := ir.NewBuilder("fault", 8)
	pb := bd.Proc("main")
	b := pb.NewBlock()
	b.Add(ir.MovI(1, 0), ir.Load(2, 1, 1_000_000))
	b.Ret(2)
	if _, err := Run(bd.Finish(), Config{}); err == nil {
		t.Fatal("unmapped non-speculative load must fail")
	} else if !strings.Contains(err.Error(), "unmapped") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	bd := ir.NewBuilder("inf", 8)
	pb := bd.Proc("main")
	b := pb.NewBlock()
	b.Add(ir.Nop())
	b.Jmp(b.ID())
	if _, err := Run(bd.Finish(), Config{MaxSteps: 1000}); err == nil {
		t.Fatal("infinite loop must hit the step limit")
	}
}

func TestDepthLimit(t *testing.T) {
	bd := ir.NewBuilder("deep", 8)
	pb := bd.Proc("main")
	b, cont := pb.NewBlock(), pb.NewBlock()
	b.Call(1, 0, cont.ID())
	cont.Ret(1)
	if _, err := Run(bd.Finish(), Config{MaxDepth: 50}); err == nil {
		t.Fatal("unbounded recursion must hit the depth limit")
	}
}

// eventLog records observer callbacks for inspection.
type eventLog struct {
	enters []ir.BlockID
	exits  []ir.ProcID
	edges  [][2]ir.BlockID
	blocks []ir.BlockID
}

func (e *eventLog) EnterProc(p ir.ProcID, entry ir.BlockID) { e.enters = append(e.enters, entry) }
func (e *eventLog) ExitProc(p ir.ProcID)                    { e.exits = append(e.exits, p) }
func (e *eventLog) Edge(p ir.ProcID, from, to ir.BlockID) {
	e.edges = append(e.edges, [2]ir.BlockID{from, to})
}
func (e *eventLog) Block(p ir.ProcID, b ir.BlockID) { e.blocks = append(e.blocks, b) }

func TestObserverEvents(t *testing.T) {
	log := &eventLog{}
	res := run(t, sumLoop(3), Config{Observer: log})
	if res.Ret != 3 {
		t.Fatalf("ret = %d", res.Ret)
	}
	if len(log.enters) != 1 || log.enters[0] != 0 {
		t.Fatalf("enters = %v", log.enters)
	}
	// Block sequence: entry, head, (body, head) x3, exit.
	want := []ir.BlockID{0, 1, 2, 1, 2, 1, 2, 1, 3}
	if len(log.blocks) != len(want) {
		t.Fatalf("blocks = %v, want %v", log.blocks, want)
	}
	for i := range want {
		if log.blocks[i] != want[i] {
			t.Fatalf("blocks = %v, want %v", log.blocks, want)
		}
	}
	if len(log.edges) != len(want)-1 {
		t.Fatalf("edges = %d, want %d", len(log.edges), len(want)-1)
	}
	for i, e := range log.edges {
		if e[0] != want[i] || e[1] != want[i+1] {
			t.Fatalf("edge %d = %v, want %v->%v", i, e, want[i], want[i+1])
		}
	}
	if res.DynBlocks != int64(len(want)) {
		t.Fatalf("DynBlocks = %d, want %d", res.DynBlocks, len(want))
	}
	if len(log.exits) != 1 {
		t.Fatalf("exits = %v, want one", log.exits)
	}
}

func TestScheduledCycleAccounting(t *testing.T) {
	prog := sumLoop(10)
	// Hand-annotate: pretend each block was compacted to fewer cycles.
	for _, b := range prog.Proc(0).Blocks {
		b.Cycles = make([]int32, len(b.Instrs))
		// All instructions in cycle 0, terminator in cycle 1 when the
		// block has more than one instruction.
		for i := range b.Cycles {
			if i == len(b.Instrs)-1 && len(b.Instrs) > 1 {
				b.Cycles[i] = 1
			}
		}
		b.Span = b.Cycles[len(b.Cycles)-1] + 1
	}
	if err := ir.Verify(prog); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	res := run(t, prog, Config{})
	// entry span 2, (head 2 + body 2) x10, head 2, exit 2 => 2+40+2+2=46.
	if res.Cycles != 46 {
		t.Fatalf("cycles = %d, want 46", res.Cycles)
	}
}

// mergedProg builds a hand-merged superblock:
//
//	b0 (merged, 3 units): movi r1,K; br r1 -> b1 (exit after unit 1, taken when r1!=0)
//	                      movi r2,7; emit r2; jmp b2 (completion)
//	b1: emit r1; ret r1   (early-exit path)
//	b2: ret r2
func mergedProg(takeExit int64) *ir.Program {
	bd := ir.NewBuilder("merged", 8)
	pb := bd.Proc("main")
	sb, early, done := pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	exitBr := ir.Br(1, early.ID(), ir.NoBlock) // taken -> early, else fall through
	sb.Add(
		ir.MovI(1, takeExit),
		exitBr,
		ir.MovI(2, 7),
		ir.Emit(2),
	)
	sb.Jmp(done.ID())
	early.Add(ir.Emit(1))
	early.Ret(1)
	done.Ret(2)
	prog := bd.Program()
	b := prog.Proc(0).Blocks[0]
	b.Cycles = []int32{0, 1, 1, 2, 3}
	b.Span = 4
	b.SBSize = 3
	b.ExitUnits = []int32{0, 1, 0, 0, 0} // exit at the br completes 1 unit
	if err := ir.Verify(prog); err != nil {
		panic(err)
	}
	return prog
}

func TestMergedSuperblockEarlyExit(t *testing.T) {
	res := run(t, mergedProg(1), Config{})
	if res.Ret != 1 {
		t.Fatalf("ret = %d, want early-exit value 1", res.Ret)
	}
	// Early exit at the br (cycle 1) costs 2 cycles, then early block
	// (2 instrs, unscheduled) and that's it: emit+ret = 2 cycles.
	if res.Cycles != 2+2 {
		t.Fatalf("cycles = %d, want 4", res.Cycles)
	}
	if res.SBEntries != 1 || res.SBExecuted != 1 || res.SBSize != 3 {
		t.Fatalf("SB stats = %d entries, %d executed, %d size; want 1,1,3",
			res.SBEntries, res.SBExecuted, res.SBSize)
	}
}

func TestMergedSuperblockCompletion(t *testing.T) {
	res := run(t, mergedProg(0), Config{})
	if res.Ret != 7 {
		t.Fatalf("ret = %d, want completion value 7", res.Ret)
	}
	// Completion: span 4, then done block 1 instr.
	if res.Cycles != 4+1 {
		t.Fatalf("cycles = %d, want 5", res.Cycles)
	}
	if res.SBEntries != 1 || res.SBExecuted != 3 || res.SBSize != 3 {
		t.Fatalf("SB stats = %d entries, %d executed, %d size; want 1,3,3",
			res.SBEntries, res.SBExecuted, res.SBSize)
	}
	if len(res.Output) != 1 || res.Output[0] != 7 {
		t.Fatalf("output = %v", res.Output)
	}
}

// fetchLog records fetch ranges and charges a fixed stall per call.
type fetchLog struct {
	ranges [][2]int64
	stall  int64
}

func (f *fetchLog) FetchRange(start, end int64) int64 {
	f.ranges = append(f.ranges, [2]int64{start, end})
	return f.stall
}

func TestFetchSink(t *testing.T) {
	prog := mergedProg(1)
	prog.Proc(0).Blocks[0].Addr = 1024
	fl := &fetchLog{stall: 6}
	res := run(t, prog, Config{Fetch: fl})
	if len(fl.ranges) != 2 { // merged block + early block
		t.Fatalf("fetch ranges = %v, want 2", fl.ranges)
	}
	// Early exit at instruction index 1: fetched bytes [1024, 1024+8).
	if fl.ranges[0] != [2]int64{1024, 1032} {
		t.Fatalf("first fetch = %v, want [1024,1032)", fl.ranges[0])
	}
	if res.FetchStall != 12 {
		t.Fatalf("fetch stall = %d, want 12", res.FetchStall)
	}
	noStall := run(t, prog, Config{}).Cycles
	if res.Cycles != noStall+12 {
		t.Fatalf("cycles = %d, want %d+12", res.Cycles, noStall)
	}
}

func TestFramePoolReuseDoesNotLeakState(t *testing.T) {
	// Callee writes a high register; a second call must observe zeroes.
	bd := ir.NewBuilder("pool", 8)
	pb := bd.Proc("main")
	callee := bd.Proc("leaf")
	cb := callee.NewBlock()
	cb.Add(ir.Emit(50), ir.MovI(50, 1234)) // emit r50 (stale?), then dirty it
	cb.Ret(50)
	m0, m1, m2 := pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	m0.Call(2, callee.ID(), m1.ID())
	m1.Call(3, callee.ID(), m2.ID())
	m2.Ret(3)
	res := run(t, bd.Finish(), Config{})
	if res.Output[0] != 0 || res.Output[1] != 0 {
		t.Fatalf("stale registers leaked across frames: %v", res.Output)
	}
}
