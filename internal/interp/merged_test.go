package interp

import (
	"testing"

	"pathsched/internal/ir"
)

// These tests pin down the merged-superblock execution semantics the
// compactor relies on: mid-block calls and switches with NoBlock
// continuation slots fall through to the next instruction.

func TestMidBlockCallFallsThrough(t *testing.T) {
	bd := ir.NewBuilder("midcall", 8)
	leaf := bd.Proc("leaf")
	lb := leaf.NewBlock()
	lb.Add(ir.AddI(0, 1, 100))
	lb.Ret(0)
	pb := bd.Proc("main")
	b := pb.NewBlock()
	call := ir.Call(2, leaf.ID(), ir.NoBlock, 1) // mid-block: continues
	b.Add(
		ir.MovI(1, 5),
		call,
		ir.AddI(3, 2, 1), // runs after the call returns, same block
		ir.Emit(3),
	)
	b.Ret(3)
	bd.SetMain(pb.ID())
	prog := bd.Program()
	if err := ir.Verify(prog); err != nil {
		t.Fatal(err)
	}
	res, err := Run(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 106 {
		t.Fatalf("ret = %d, want 106", res.Ret)
	}
}

func TestMidBlockSwitchFallThroughSlot(t *testing.T) {
	// switch with a NoBlock slot: selecting it continues in-block;
	// selecting a real slot exits.
	mk := func(idx int64) *ir.Program {
		bd := ir.NewBuilder("midsw", 8)
		pb := bd.Proc("main")
		b, out := pb.NewBlock(), pb.NewBlock()
		sw := ir.Switch(1, out.ID(), ir.NoBlock, out.ID())
		b.Add(ir.MovI(1, idx), sw, ir.MovI(2, 777), ir.Emit(2))
		b.Ret(2)
		out.Add(ir.MovI(2, 111))
		out.Ret(2)
		bd.SetMain(pb.ID())
		prog := bd.Program()
		if err := ir.Verify(prog); err != nil {
			t.Fatal(err)
		}
		return prog
	}
	if res, _ := Run(mk(1), Config{}); res.Ret != 777 {
		t.Fatalf("fall-through slot: ret = %d, want 777", res.Ret)
	}
	if res, _ := Run(mk(0), Config{}); res.Ret != 111 {
		t.Fatalf("real slot 0: ret = %d, want 111", res.Ret)
	}
	if res, _ := Run(mk(9), Config{}); res.Ret != 111 {
		t.Fatalf("default slot: ret = %d, want 111", res.Ret)
	}
}

func TestMidBlockBrTakenSlotFallThrough(t *testing.T) {
	// A br whose TAKEN slot is NoBlock: condition true continues
	// in-block, condition false exits.
	mk := func(cond int64) *ir.Program {
		bd := ir.NewBuilder("midbr", 8)
		pb := bd.Proc("main")
		b, out := pb.NewBlock(), pb.NewBlock()
		br := ir.Br(1, ir.NoBlock, out.ID())
		b.Add(ir.MovI(1, cond), br, ir.MovI(2, 50), ir.Emit(2))
		b.Ret(2)
		out.Add(ir.MovI(2, 60))
		out.Ret(2)
		bd.SetMain(pb.ID())
		prog := bd.Program()
		if err := ir.Verify(prog); err != nil {
			t.Fatal(err)
		}
		return prog
	}
	if res, _ := Run(mk(1), Config{}); res.Ret != 50 {
		t.Fatalf("true -> fall through: ret = %d", res.Ret)
	}
	if res, _ := Run(mk(0), Config{}); res.Ret != 60 {
		t.Fatalf("false -> exit: ret = %d", res.Ret)
	}
}

func TestExitUnitsDefaultsToSBSize(t *testing.T) {
	// Without ExitUnits, every departure counts the full size.
	bd := ir.NewBuilder("units", 8)
	pb := bd.Proc("main")
	b := pb.NewBlock()
	b.Add(ir.MovI(1, 1))
	b.Ret(1)
	prog := bd.Finish()
	blk := prog.Proc(0).Blocks[0]
	blk.SBSize = 5
	res, err := Run(prog, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SBEntries != 1 || res.SBExecuted != 5 || res.SBSize != 5 {
		t.Fatalf("SB stats = %d/%d/%d, want 1/5/5", res.SBEntries, res.SBExecuted, res.SBSize)
	}
}
