package interp

import (
	"fmt"

	"pathsched/internal/ir"
)

// This file is the execution half of the pre-decoded engine (see
// decode.go for the representation). One fused loop per activation
// drives both block selection and instruction execution — there is no
// per-block function call, and the instruction cases do no accounting
// at all:
//
//   - every counter a block departure implies (DynInstrs, DynBlocks,
//     DynBranches, Calls, Cycles, superblock credits) is a decode-time
//     constant of the exit index, so the loop's only accounting is one
//     visit-count increment per departure; the Result is reconstructed
//     when the run completes as Σ count(i) × exits[i] (flushCounts) —
//     exact, because every Result counter is a commutative sum. Only
//     the fetch model, which is stateful, is consulted live;
//   - the step limit is checked once per block against the block's
//     full instruction count instead of once per instruction
//     (Config.MaxSteps documents the resulting budget semantics);
//   - observer events and the fetch model are behind per-block nil
//     checks, so unhooked measurement runs pay only two predictable
//     branches per block.
//
// Event order on hooked runs is exactly the reference engine's:
// EnterProc, then per block Edge(prev, cur) (skipped for the entry
// block) followed by Block(cur), and ExitProc on return.

// Run executes the decoded program's main procedure. Results are
// byte-identical to ReferenceRun on verifier-clean programs; the
// differential tests in decode_test.go enforce this.
func (e *Engine) Run(cfg Config) (*Result, error) {
	res, _, err := e.runCore(cfg, false)
	return res, err
}

// RunCounted executes like Run but also returns the engine's dense
// per-exit visit counters as an EdgeCounts, from which exact edge,
// block-entry and call-graph profiles are reconstructed post-hoc (see
// counts.go) — a pure edge-profiled run therefore executes with no
// per-edge observer work at all. cfg.Batch may still be set (the
// training pipeline runs the path profiler batched and the edge
// profiler counted in one pass); cfg.Observer may not, as counted
// runs exist to avoid exactly that per-event cost. Errors if the
// program needs the reference-engine fallback, which keeps no
// counters — callers gate on Engine.Fallback().
func (e *Engine) RunCounted(cfg Config) (*Result, *EdgeCounts, error) {
	if e.fallback {
		return nil, nil, errCountedFallback
	}
	if cfg.Observer != nil {
		return nil, nil, errCountedObserver
	}
	return e.runCore(cfg, true)
}

func (e *Engine) runCore(cfg Config, counted bool) (*Result, *EdgeCounts, error) {
	if cfg.Observer != nil && cfg.Batch != nil {
		return nil, nil, errObserverAndBatch
	}
	if e.fallback {
		// Some procedure's register file exceeds the decoded frame
		// (256 registers); the reference engine handles any width
		// (and adapts cfg.Batch itself).
		res, err := ReferenceRun(e.prog, cfg)
		return res, nil, err
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = defaultMaxSteps
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = defaultMaxDepth
	}
	mem, err := initMem(e.prog)
	if err != nil {
		return nil, nil, err
	}
	m := &dmachine{
		eng:      e,
		mem:      mem,
		res:      &Result{},
		counts:   make([][]int64, len(e.procs)),
		maxSteps: cfg.MaxSteps,
		maxDepth: cfg.MaxDepth,
		obs:      cfg.Observer,
		fetch:    cfg.Fetch,
	}
	if cfg.Batch != nil {
		m.bat = &batcher{bo: cfg.Batch}
	}
	for i := range e.procs {
		if n := len(e.procs[i].code); n > 0 {
			m.counts[i] = make([]int64, n)
		}
	}
	if counted {
		// Live rows for the (rare) exit slots with several possible
		// destinations; everything else reconstructs from counts.
		m.mcounts = make([][][]int64, len(e.procs))
		for i := range e.procs {
			mt := e.procs[i].multiTargets
			if len(mt) == 0 {
				continue
			}
			rows := make([][]int64, len(mt))
			for k := range mt {
				rows[k] = make([]int64, len(mt[k]))
			}
			m.mcounts[i] = rows
		}
	}
	ret, err := m.call(int32(e.prog.Main), nil, 0)
	if err != nil {
		return nil, nil, err
	}
	m.flushCounts()
	m.res.Ret = ret
	var ec *EdgeCounts
	if counted {
		ec = newEdgeCounts(e, m.counts, m.mcounts)
	}
	return m.res, ec, nil
}

type dmachine struct {
	eng      *Engine
	mem      []int64
	res      *Result
	counts   [][]int64 // per proc, per code index: exit visit counts
	steps    int64
	maxSteps int64
	maxDepth int
	obs      Observer
	bat      *batcher    // batch event delivery (Config.Batch), or nil
	mcounts  [][][]int64 // counted runs: per proc, per multi-slot row
	fetch    FetchSink

	// framePool recycles register files across calls, as in the
	// reference engine. Frames are fixed 256-register arrays so the
	// executor's uint8 operand indexing needs no bounds checks; only
	// the [:frameLen] prefix is ever zeroed or read.
	framePool []*[256]int64
}

// flushCounts reconstructs the Result counters from the exit visit
// counts (see the file comment): each taking of exit i contributes the
// decode-time constants in exits[i] exactly once.
func (m *dmachine) flushCounts() {
	res := m.res
	for pid, c := range m.counts {
		p := &m.eng.procs[pid]
		for i, cnt := range c {
			if cnt == 0 {
				continue
			}
			e := &p.exits[i]
			res.DynBlocks += cnt
			res.DynInstrs += cnt * int64(e.n)
			res.Cycles += cnt * e.cycles
			res.DynBranches += cnt * int64(e.branches)
			res.Calls += cnt * int64(e.calls)
			res.SBEntries += cnt * int64(e.sbEntry)
			res.SBSize += cnt * int64(e.sbSize)
			res.SBExecuted += cnt * int64(e.units)
		}
	}
}

func (m *dmachine) getFrame(size int) *[256]int64 {
	if n := len(m.framePool); n > 0 {
		f := m.framePool[n-1]
		m.framePool = m.framePool[:n-1]
		for i := 0; i < size; i++ {
			f[i] = 0
		}
		return f
	}
	return new([256]int64)
}

func (m *dmachine) putFrame(f *[256]int64) { m.framePool = append(m.framePool, f) }

// call runs one procedure activation and returns its r0. Frames are
// returned to the pool only on the success path; an error aborts the
// whole run, so pool state no longer matters.
func (m *dmachine) call(id int32, args []int64, depth int) (int64, error) {
	if depth > m.maxDepth {
		return 0, fmt.Errorf("interp: call depth exceeds %d", m.maxDepth)
	}
	if id < 0 || int(id) >= len(m.eng.procs) || m.eng.procs[id].missing {
		return 0, fmt.Errorf("interp: call to unknown proc %d", id)
	}
	p := &m.eng.procs[id]
	regs := m.getFrame(p.frameLen)
	for i, v := range args {
		regs[int(ir.RegArg0)+i] = v
	}
	var mc [][]int64
	if m.mcounts != nil {
		mc = m.mcounts[id]
	}
	ret, err := m.run(p, m.counts[id], mc, regs, depth)
	if err != nil {
		return 0, err
	}
	m.putFrame(regs)
	return ret, nil
}

// run executes one activation of p over the flat code array. counts
// is m.counts[p] — the per-exit visit tallies flushCounts turns back
// into Result counters when the whole run completes.
//
// The executor is a single flat program-counter loop: pc walks p.code,
// straight-line cases fall back to the dispatch with one increment,
// and every block transition funnels through the transfer tail below
// the switch. Running past a block's last instruction executes its
// dFellOff sentinel, which produces the reference engine's error.
//
// steps locally mirrors the global step total: it is written back to
// m.steps before a nested call and reloaded after (the callee shares
// the budget), keeping the per-block limit check a pure register
// compare. Error paths never flush anything — an error abandons the
// Result.
func (m *dmachine) run(p *dproc, counts []int64, mc [][]int64, regs *[256]int64, depth int) (int64, error) {
	obs := m.obs
	bat := m.bat
	fetch := m.fetch
	ranges := p.ranges
	code := p.code
	mem := m.mem
	maxSteps := m.maxSteps
	steps := m.steps

	// Entry-block setup: same checks and events as the transfer tail,
	// minus the departure accounting (there is no block to depart).
	cur := p.entry
	if obs != nil {
		obs.EnterProc(p.id, ir.BlockID(p.entry))
	} else if bat != nil {
		bat.flush() // deliver the caller's pending records first
		bat.bo.BeginProc(p.id, ir.BlockID(p.entry))
	}
	// uint32 compare folds the cur < 0 check into the bounds test.
	if uint32(cur) >= uint32(len(ranges)) {
		return 0, fmt.Errorf("interp: proc %s: bad block b%d", p.name, cur)
	}
	if obs != nil {
		obs.Block(p.id, p.blocks[cur].id)
	}
	r := ranges[cur]
	lo := int32(r)
	n0 := int64(int32(r>>32) - lo)
	if r < 0 {
		n0 = 1 // single-jump block (see decode.go): hi half holds the target
	}
	if steps+n0 > maxSteps {
		return 0, fmt.Errorf("interp: step limit %d exceeded in %s/b%d", maxSteps, p.name, p.blocks[cur].id)
	}
	pc := lo
	var next int32
	for {
		ins := &code[pc]
		pc++
		switch ins.op {
		case dNop:
		case dMovI:
			regs[ins.dst] = ins.imm
		case dMov:
			regs[ins.dst] = regs[ins.src1]
		case dAdd:
			regs[ins.dst] = regs[ins.src1] + regs[ins.src2]
		case dSub:
			regs[ins.dst] = regs[ins.src1] - regs[ins.src2]
		case dMul:
			regs[ins.dst] = regs[ins.src1] * regs[ins.src2]
		case dAnd:
			regs[ins.dst] = regs[ins.src1] & regs[ins.src2]
		case dOr:
			regs[ins.dst] = regs[ins.src1] | regs[ins.src2]
		case dXor:
			regs[ins.dst] = regs[ins.src1] ^ regs[ins.src2]
		case dShl:
			regs[ins.dst] = regs[ins.src1] << (uint64(regs[ins.src2]) & 63)
		case dShr:
			regs[ins.dst] = regs[ins.src1] >> (uint64(regs[ins.src2]) & 63)
		case dAddI:
			regs[ins.dst] = regs[ins.src1] + ins.imm
		case dMulI:
			regs[ins.dst] = regs[ins.src1] * ins.imm
		case dAndI:
			regs[ins.dst] = regs[ins.src1] & ins.imm
		case dOrI:
			regs[ins.dst] = regs[ins.src1] | ins.imm
		case dXorI:
			regs[ins.dst] = regs[ins.src1] ^ ins.imm
		case dShlI:
			regs[ins.dst] = regs[ins.src1] << (uint64(ins.imm) & 63)
		case dShrI:
			regs[ins.dst] = regs[ins.src1] >> (uint64(ins.imm) & 63)
		case dCmpEQ:
			regs[ins.dst] = b2i(regs[ins.src1] == regs[ins.src2])
		case dCmpNE:
			regs[ins.dst] = b2i(regs[ins.src1] != regs[ins.src2])
		case dCmpLT:
			regs[ins.dst] = b2i(regs[ins.src1] < regs[ins.src2])
		case dCmpLE:
			regs[ins.dst] = b2i(regs[ins.src1] <= regs[ins.src2])
		case dCmpEQI:
			regs[ins.dst] = b2i(regs[ins.src1] == ins.imm)
		case dCmpNEI:
			regs[ins.dst] = b2i(regs[ins.src1] != ins.imm)
		case dCmpLTI:
			regs[ins.dst] = b2i(regs[ins.src1] < ins.imm)
		case dCmpLEI:
			regs[ins.dst] = b2i(regs[ins.src1] <= ins.imm)
		case dCmpGTI:
			regs[ins.dst] = b2i(regs[ins.src1] > ins.imm)
		case dCmpGEI:
			regs[ins.dst] = b2i(regs[ins.src1] >= ins.imm)

		// Fused compare+branch: one dispatch for the cmp/br pair that
		// closes nearly every block. The branch slot (at pc after the
		// increment above) holds the packed targets and supplies the
		// exit index, so accounting is identical to dispatching it
		// separately.
		case dCmpEQBr:
			v := b2i(regs[ins.src1] == regs[ins.src2])
			regs[ins.dst] = v
			t := code[pc].imm
			pc++
			if v != 0 {
				next = int32(uint32(t))
			} else {
				next = int32(uint32(t >> 32))
			}
			goto transfer
		case dCmpNEBr:
			v := b2i(regs[ins.src1] != regs[ins.src2])
			regs[ins.dst] = v
			t := code[pc].imm
			pc++
			if v != 0 {
				next = int32(uint32(t))
			} else {
				next = int32(uint32(t >> 32))
			}
			goto transfer
		case dCmpLTBr:
			v := b2i(regs[ins.src1] < regs[ins.src2])
			regs[ins.dst] = v
			t := code[pc].imm
			pc++
			if v != 0 {
				next = int32(uint32(t))
			} else {
				next = int32(uint32(t >> 32))
			}
			goto transfer
		case dCmpLEBr:
			v := b2i(regs[ins.src1] <= regs[ins.src2])
			regs[ins.dst] = v
			t := code[pc].imm
			pc++
			if v != 0 {
				next = int32(uint32(t))
			} else {
				next = int32(uint32(t >> 32))
			}
			goto transfer
		case dCmpEQIBr:
			v := b2i(regs[ins.src1] == ins.imm)
			regs[ins.dst] = v
			t := code[pc].imm
			pc++
			if v != 0 {
				next = int32(uint32(t))
			} else {
				next = int32(uint32(t >> 32))
			}
			goto transfer
		case dCmpNEIBr:
			v := b2i(regs[ins.src1] != ins.imm)
			regs[ins.dst] = v
			t := code[pc].imm
			pc++
			if v != 0 {
				next = int32(uint32(t))
			} else {
				next = int32(uint32(t >> 32))
			}
			goto transfer
		case dCmpLTIBr:
			v := b2i(regs[ins.src1] < ins.imm)
			regs[ins.dst] = v
			t := code[pc].imm
			pc++
			if v != 0 {
				next = int32(uint32(t))
			} else {
				next = int32(uint32(t >> 32))
			}
			goto transfer
		case dCmpLEIBr:
			v := b2i(regs[ins.src1] <= ins.imm)
			regs[ins.dst] = v
			t := code[pc].imm
			pc++
			if v != 0 {
				next = int32(uint32(t))
			} else {
				next = int32(uint32(t >> 32))
			}
			goto transfer
		case dCmpGTIBr:
			v := b2i(regs[ins.src1] > ins.imm)
			regs[ins.dst] = v
			t := code[pc].imm
			pc++
			if v != 0 {
				next = int32(uint32(t))
			} else {
				next = int32(uint32(t >> 32))
			}
			goto transfer
		case dCmpGEIBr:
			v := b2i(regs[ins.src1] >= ins.imm)
			regs[ins.dst] = v
			t := code[pc].imm
			pc++
			if v != 0 {
				next = int32(uint32(t))
			} else {
				next = int32(uint32(t >> 32))
			}
			goto transfer

		// Pair-tile superinstructions (see decode.go): the second
		// instruction is read straight from its own code slot, so every
		// transfer below exits with pc one past the departing slot and
		// the per-slot exit records apply unchanged. BrFT polarity:
		// src2 != 0 means jump when the condition is true (dBrElseFT),
		// src2 == 0 when it is false (dBrTakenFT).
		case dBrFTBrFT:
			if (regs[ins.src1] != 0) == (ins.src2 != 0) {
				next = int32(ins.imm)
				goto transfer
			}
			ins2 := &code[pc]
			pc++
			if (regs[ins2.src1] != 0) == (ins2.src2 != 0) {
				next = int32(ins2.imm)
				goto transfer
			}
		case dBrFTMov:
			if (regs[ins.src1] != 0) == (ins.src2 != 0) {
				next = int32(ins.imm)
				goto transfer
			}
			ins2 := &code[pc]
			pc++
			regs[ins2.dst] = regs[ins2.src1]
		case dBrFTCmpEQI:
			if (regs[ins.src1] != 0) == (ins.src2 != 0) {
				next = int32(ins.imm)
				goto transfer
			}
			ins2 := &code[pc]
			pc++
			regs[ins2.dst] = b2i(regs[ins2.src1] == ins2.imm)
		case dMovBrFT:
			regs[ins.dst] = regs[ins.src1]
			ins2 := &code[pc]
			pc++
			if (regs[ins2.src1] != 0) == (ins2.src2 != 0) {
				next = int32(ins2.imm)
				goto transfer
			}
		case dAddIBrFT:
			regs[ins.dst] = regs[ins.src1] + ins.imm
			ins2 := &code[pc]
			pc++
			if (regs[ins2.src1] != 0) == (ins2.src2 != 0) {
				next = int32(ins2.imm)
				goto transfer
			}
		case dCmpEQICmpEQI:
			regs[ins.dst] = b2i(regs[ins.src1] == ins.imm)
			ins2 := &code[pc]
			pc++
			regs[ins2.dst] = b2i(regs[ins2.src1] == ins2.imm)
		case dCmpLTIAndI:
			regs[ins.dst] = b2i(regs[ins.src1] < ins.imm)
			ins2 := &code[pc]
			pc++
			regs[ins2.dst] = regs[ins2.src1] & ins2.imm
		case dLoadSpecAddI:
			addr := regs[ins.src1] + ins.imm
			if uint64(addr) >= uint64(len(mem)) {
				regs[ins.dst] = 0
			} else {
				regs[ins.dst] = mem[addr]
			}
			ins2 := &code[pc]
			pc++
			regs[ins2.dst] = regs[ins2.src1] + ins2.imm
		case dAndILoadSpec:
			regs[ins.dst] = regs[ins.src1] & ins.imm
			ins2 := &code[pc]
			pc++
			addr := regs[ins2.src1] + ins2.imm
			if uint64(addr) >= uint64(len(mem)) {
				regs[ins2.dst] = 0
			} else {
				regs[ins2.dst] = mem[addr]
			}
		case dAddIAddI:
			regs[ins.dst] = regs[ins.src1] + ins.imm
			ins2 := &code[pc]
			pc++
			regs[ins2.dst] = regs[ins2.src1] + ins2.imm
		case dCmpEQIAddI:
			regs[ins.dst] = b2i(regs[ins.src1] == ins.imm)
			ins2 := &code[pc]
			pc++
			regs[ins2.dst] = regs[ins2.src1] + ins2.imm
		case dAddIJmp:
			regs[ins.dst] = regs[ins.src1] + ins.imm
			next = int32(code[pc].imm)
			pc++
			goto transfer
		case dMovIJmp:
			regs[ins.dst] = ins.imm
			next = int32(code[pc].imm)
			pc++
			goto transfer
		case dMovJmp:
			regs[ins.dst] = regs[ins.src1]
			next = int32(code[pc].imm)
			pc++
			goto transfer
		case dAndICmpEQI:
			regs[ins.dst] = regs[ins.src1] & ins.imm
			ins2 := &code[pc]
			pc++
			regs[ins2.dst] = b2i(regs[ins2.src1] == ins2.imm)
		case dAddICmpEQI:
			regs[ins.dst] = regs[ins.src1] + ins.imm
			ins2 := &code[pc]
			pc++
			regs[ins2.dst] = b2i(regs[ins2.src1] == ins2.imm)
		case dAndICmpEQIBr:
			regs[ins.dst] = regs[ins.src1] & ins.imm
			ins2 := &code[pc]
			pc++
			v := b2i(regs[ins2.src1] == ins2.imm)
			regs[ins2.dst] = v
			t := code[pc].imm
			pc++
			if v != 0 {
				next = int32(uint32(t))
			} else {
				next = int32(uint32(t >> 32))
			}
			goto transfer
		case dAddICmpEQIBr:
			regs[ins.dst] = regs[ins.src1] + ins.imm
			ins2 := &code[pc]
			pc++
			v := b2i(regs[ins2.src1] == ins2.imm)
			regs[ins2.dst] = v
			t := code[pc].imm
			pc++
			if v != 0 {
				next = int32(uint32(t))
			} else {
				next = int32(uint32(t >> 32))
			}
			goto transfer
		case dLoadAddI:
			addr := regs[ins.src1] + ins.imm
			if uint64(addr) >= uint64(len(mem)) {
				return 0, fmt.Errorf("%w: %d in %s/b%d", errUnmappedLoad, addr, p.name, p.blocks[cur].id)
			}
			regs[ins.dst] = mem[addr]
			ins2 := &code[pc]
			pc++
			regs[ins2.dst] = regs[ins2.src1] + ins2.imm
		case dMovMov:
			regs[ins.dst] = regs[ins.src1]
			ins2 := &code[pc]
			pc++
			regs[ins2.dst] = regs[ins2.src1]
		case dMovLoadSpec:
			regs[ins.dst] = regs[ins.src1]
			ins2 := &code[pc]
			pc++
			addr := regs[ins2.src1] + ins2.imm
			if uint64(addr) >= uint64(len(mem)) {
				regs[ins2.dst] = 0
			} else {
				regs[ins2.dst] = mem[addr]
			}
		case dAndIMov:
			regs[ins.dst] = regs[ins.src1] & ins.imm
			ins2 := &code[pc]
			pc++
			regs[ins2.dst] = regs[ins2.src1]
		case dCmpEQICmpLTI:
			regs[ins.dst] = b2i(regs[ins.src1] == ins.imm)
			ins2 := &code[pc]
			pc++
			regs[ins2.dst] = b2i(regs[ins2.src1] < ins2.imm)
		case dLoadSpecCmpEQI:
			addr := regs[ins.src1] + ins.imm
			if uint64(addr) >= uint64(len(mem)) {
				regs[ins.dst] = 0
			} else {
				regs[ins.dst] = mem[addr]
			}
			ins2 := &code[pc]
			pc++
			regs[ins2.dst] = b2i(regs[ins2.src1] == ins2.imm)
		case dMovIAddI:
			regs[ins.dst] = ins.imm
			ins2 := &code[pc]
			pc++
			regs[ins2.dst] = regs[ins2.src1] + ins2.imm
		case dAndIJmp:
			regs[ins.dst] = regs[ins.src1] & ins.imm
			next = int32(code[pc].imm)
			pc++
			goto transfer

		// Run superinstructions (see decode.go): the head instruction
		// carries the run length in an operand byte it does not use;
		// the body re-reads each successive slot, so a mid-run branch
		// exit leaves pc one past the jumping slot as usual.
		case dBrFTRun:
			for n := ins.dst; ; {
				if (regs[ins.src1] != 0) == (ins.src2 != 0) {
					next = int32(ins.imm)
					goto transfer
				}
				if n--; n == 0 {
					break
				}
				ins = &code[pc]
				pc++
			}
		case dCmpEQIRun:
			for n := ins.src2; ; {
				regs[ins.dst] = b2i(regs[ins.src1] == ins.imm)
				if n--; n == 0 {
					break
				}
				ins = &code[pc]
				pc++
			}
		case dMovRun:
			for n := ins.src2; ; {
				regs[ins.dst] = regs[ins.src1]
				if n--; n == 0 {
					break
				}
				ins = &code[pc]
				pc++
			}

		// Unit patterns (see decode.go): the scheduler's fixed
		// multi-instruction shapes under a single dispatch. Body slots
		// keep their exit records, so the side-exit branch leaves pc
		// one past its own slot as usual.
		case dLoadUnit:
			regs[ins.dst] = b2i(regs[ins.src1] < ins.imm)
			ins2 := &code[pc]
			pc++
			regs[ins2.dst] = regs[ins2.src1] & ins2.imm
			ins3 := &code[pc]
			pc++
			addr := regs[ins3.src1] + ins3.imm
			if uint64(addr) >= uint64(len(mem)) {
				regs[ins3.dst] = 0
			} else {
				regs[ins3.dst] = mem[addr]
			}
			ins4 := &code[pc]
			pc++
			regs[ins4.dst] = regs[ins4.src1] + ins4.imm
		case dLoadUnitBr:
			regs[ins.dst] = b2i(regs[ins.src1] < ins.imm)
			ins2 := &code[pc]
			pc++
			regs[ins2.dst] = regs[ins2.src1] & ins2.imm
			ins3 := &code[pc]
			pc++
			addr := regs[ins3.src1] + ins3.imm
			if uint64(addr) >= uint64(len(mem)) {
				regs[ins3.dst] = 0
			} else {
				regs[ins3.dst] = mem[addr]
			}
			ins4 := &code[pc]
			pc++
			regs[ins4.dst] = regs[ins4.src1] + ins4.imm
			ins5 := &code[pc]
			pc++
			if (regs[ins5.src1] != 0) == (ins5.src2 != 0) {
				next = int32(ins5.imm)
				goto transfer
			}
		case dMovBrFTMov:
			regs[ins.dst] = regs[ins.src1]
			ins2 := &code[pc]
			pc++
			if (regs[ins2.src1] != 0) == (ins2.src2 != 0) {
				next = int32(ins2.imm)
				goto transfer
			}
			ins3 := &code[pc]
			pc++
			regs[ins3.dst] = regs[ins3.src1]

		case dLoad:
			// uint64 compare folds the addr < 0 check into the bounds
			// test (negative addresses wrap to huge unsigned values).
			addr := regs[ins.src1] + ins.imm
			if uint64(addr) >= uint64(len(mem)) {
				return 0, fmt.Errorf("%w: %d in %s/b%d", errUnmappedLoad, addr, p.name, p.blocks[cur].id)
			}
			regs[ins.dst] = mem[addr]
		case dLoadSpec:
			addr := regs[ins.src1] + ins.imm
			if uint64(addr) >= uint64(len(mem)) {
				regs[ins.dst] = 0 // non-excepting speculative load
			} else {
				regs[ins.dst] = mem[addr]
			}
		case dStore:
			addr := regs[ins.src1] + ins.imm
			if uint64(addr) >= uint64(len(mem)) {
				return 0, fmt.Errorf("interp: store to unmapped address %d in %s/b%d", addr, p.name, p.blocks[cur].id)
			}
			mem[addr] = regs[ins.src2]
		case dEmit:
			m.res.Output = append(m.res.Output, regs[ins.src1])

		case dBr:
			if regs[ins.src1] != 0 {
				next = int32(uint32(ins.imm))
			} else {
				next = int32(uint32(ins.imm >> 32))
			}
			goto transfer
		case dBrTakenFT:
			// Merged superblock: condition true falls through in-block.
			if regs[ins.src1] == 0 {
				next = int32(ins.imm)
				goto transfer
			}
		case dBrElseFT:
			if regs[ins.src1] != 0 {
				next = int32(ins.imm)
				goto transfer
			}
		case dBrBothFT:
			// Always falls through in-block; its DynBranches credit is
			// carried by the exit record.

		case dJmp:
			next = int32(ins.imm)
			goto transfer

		case dSwitch:
			tab := p.tables[ins.imm]
			idx := regs[ins.src1]
			t := tab[len(tab)-1]
			if idx >= 0 && idx < int64(len(tab)-1) {
				t = tab[idx]
			}
			if t != int32(ir.NoBlock) {
				next = t
				goto transfer
			}
			// NoBlock slot: fall through in-block.

		case dCall, dCallFT:
			// Inlined call fast path: the callee was validated at
			// decode time (see NewEngine), so only the depth check
			// remains, and arguments are written straight into the
			// callee's frame. depth >= maxDepth here is the
			// reference's depth+1 > maxDepth check for the callee.
			if depth >= m.maxDepth {
				return 0, fmt.Errorf("interp: call depth exceeds %d", m.maxDepth)
			}
			c := &p.calls[ins.imm]
			cp := &m.eng.procs[c.callee]
			cregs := m.getFrame(cp.frameLen)
			for ai, rg := range p.args[c.argLo:c.argHi] {
				cregs[int(ir.RegArg0)+ai] = regs[rg]
			}
			// The callee shares the global step budget: publish our
			// local count, and reload whatever it consumed.
			m.steps = steps
			var cmc [][]int64
			if m.mcounts != nil {
				cmc = m.mcounts[c.callee]
			}
			rv, cerr := m.run(cp, m.counts[c.callee], cmc, cregs, depth+1)
			if cerr != nil {
				return 0, cerr
			}
			m.putFrame(cregs)
			steps = m.steps
			regs[ins.dst] = rv
			if ins.op == dCall {
				next = c.cont
				goto transfer
			}
			// dCallFT: fall through in-block.

		case dRet:
			// Departure accounting inline (see the transfer tail), then
			// straight out of the activation.
			counts[pc-1]++
			n := int64(pc - lo)
			steps += n
			if fetch != nil {
				b := &p.blocks[cur]
				stall := fetch.FetchRange(b.addr, b.addr+4*n)
				m.res.Cycles += stall
				m.res.FetchStall += stall
			}
			if obs != nil {
				obs.ExitProc(p.id)
			} else if bat != nil {
				bat.flush()
				bat.bo.EndProc(p.id)
			}
			m.steps = steps
			return regs[ins.src1], nil

		case dBad:
			return 0, fmt.Errorf("interp: unknown opcode %v", ir.Opcode(ins.imm))
		case dBadCall:
			if depth >= m.maxDepth {
				return 0, fmt.Errorf("interp: call depth exceeds %d", m.maxDepth)
			}
			return 0, fmt.Errorf("interp: call to unknown proc %d", ins.imm)
		case dFellOff:
			return 0, fmt.Errorf("interp: control fell off end of %s/b%d", p.name, ins.imm)
		}
		continue

	transfer:
		// Departure accounting: one visit-count increment (pc-1 is the
		// exit index). Everything the reference engine counted while
		// walking the departed block is reconstructed from this tally
		// by flushCounts. Only the fetch model is stateful and must be
		// consulted in visit order.
		counts[pc-1]++
		if mc != nil {
			// Counted run: an exit slot with several possible
			// destinations tallies which one was taken (everything
			// else reconstructs from counts alone). Chained jumps and
			// dRet below never reach here, and are single-destination
			// anyway.
			if mi := p.multiIdx[pc-1]; mi >= 0 {
				ts := p.multiTargets[mi]
				row := mc[mi]
				for k := 0; k < len(ts); k++ {
					if ts[k] == next {
						row[k]++
						break
					}
				}
			}
		}
		n := int64(pc - lo)
		steps += n
		if fetch != nil {
			b := &p.blocks[cur]
			stall := fetch.FetchRange(b.addr, b.addr+4*n)
			// Stalls count toward both total cycles and the stall
			// tally, as in the reference engine.
			m.res.Cycles += stall
			m.res.FetchStall += stall
		}
		// Entry into next: identical checks and events to the
		// entry-block setup above.
	chain:
		if uint32(next) >= uint32(len(ranges)) {
			return 0, fmt.Errorf("interp: proc %s: bad block b%d", p.name, next)
		}
		if obs != nil {
			obs.Edge(p.id, p.blocks[cur].id, p.blocks[next].id)
			obs.Block(p.id, p.blocks[next].id)
		} else if bat != nil {
			// Batched delivery: one append instead of two interface
			// calls; mirrors batcher.Edge exactly so both engines
			// produce identical batch streams.
			bat.proc = p.id
			bat.buf[bat.n] = EdgeRec{From: p.blocks[cur].id, To: p.blocks[next].id}
			if bat.n++; bat.n == batchCap {
				bat.bo.EdgeBatch(p.id, bat.buf[:batchCap])
				bat.n = 0
			}
		}
		r = ranges[next]
		lo = int32(r)
		if r < 0 {
			// Single-jump block (see decode.go): its whole execution —
			// step check, one-instruction departure accounting, fetch —
			// happens here, then control chains to the jump target
			// without dispatching the instruction.
			if steps+1 > maxSteps {
				return 0, fmt.Errorf("interp: step limit %d exceeded in %s/b%d", maxSteps, p.name, p.blocks[next].id)
			}
			counts[lo]++
			steps++
			if fetch != nil {
				b := &p.blocks[next]
				stall := fetch.FetchRange(b.addr, b.addr+4)
				m.res.Cycles += stall
				m.res.FetchStall += stall
			}
			cur = next
			next = int32((r >> 32) & 0x7fffffff)
			goto chain
		}
		if steps+int64(int32(r>>32)-lo) > maxSteps {
			return 0, fmt.Errorf("interp: step limit %d exceeded in %s/b%d", maxSteps, p.name, p.blocks[next].id)
		}
		cur = next
		pc = lo
	}
}
