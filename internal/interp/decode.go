package interp

import (
	"pathsched/internal/ir"
)

// This file implements the decode half of the pre-decoded execution
// engine. A program is decoded exactly once into flat, cache-resident
// per-procedure arrays:
//
//   - every block's instructions live in one contiguous code array,
//     addressed by a dense [lo,hi) index range per block;
//   - branch targets are resolved at decode time into specialized
//     opcodes (a mid-block exit branch whose fall-through slot is
//     ir.NoBlock becomes its own opcode, so the hot loop never
//     re-tests continuation slots);
//   - all per-departure accounting — the cycle charge, superblock exit
//     units, and the DynBranches/Calls credit for the instructions a
//     departure retires (which the reference engine recomputes or
//     increments instruction by instruction) — is precomputed into one
//     exit record per code index, so the hot loop touches no counters;
//   - call argument registers, call descriptors and switch jump tables
//     are flattened into per-procedure pools;
//   - the register-frame size (MaxReg+1, an O(proc) scan the seed
//     engine performed on every activation) is computed once.
//
// The execution half lives in exec.go.

// dop is a decoded opcode. ALU/memory ops map 1:1 from ir.Opcode;
// control ops are specialized by which continuation slots were
// resolved to ir.NoBlock at decode time.
type dop uint8

const (
	dNop dop = iota
	dMovI
	dMov
	dAdd
	dSub
	dMul
	dAnd
	dOr
	dXor
	dShl
	dShr
	dAddI
	dMulI
	dAndI
	dOrI
	dXorI
	dShlI
	dShrI
	dCmpEQ
	dCmpNE
	dCmpLT
	dCmpLE
	dCmpEQI
	dCmpNEI
	dCmpLTI
	dCmpLEI
	dCmpGTI
	dCmpGEI
	dLoad
	dLoadSpec // speculative: unmapped address yields 0, never faults
	dStore
	dEmit
	dBr        // both targets are real blocks
	dBrTakenFT // taken slot is NoBlock: condition true falls through
	dBrElseFT  // not-taken slot is NoBlock: condition false falls through
	dBrBothFT  // both slots NoBlock: counts a branch, always falls through
	dJmp
	dSwitch
	dCall   // continuation slot is a real block
	dCallFT // continuation slot is NoBlock: falls through in-block
	dRet
	dBad     // unknown ir.Opcode: reproduces the reference runtime error
	dBadCall // call to an out-of-range or missing proc (imm = raw callee id)
	dFellOff // sentinel appended after every block (imm = block id): the
	// executor is a single flat program-counter loop, and running past a
	// block's last instruction lands here, producing the reference
	// engine's "control fell off end" error.

	// Fused compare+branch superinstructions. When a compare is
	// immediately followed by a dBr conditioned on its destination —
	// the closing pattern of nearly every loop block — the decoder
	// rewrites the compare's opcode to the fused form. The branch slot
	// stays in place (the fused case reads its packed targets from
	// code[i+1] and exits through the branch's own index, so the exit
	// records need no adjustment); it just never gets its own dispatch.
	dCmpEQBr
	dCmpNEBr
	dCmpLTBr
	dCmpLEBr
	dCmpEQIBr
	dCmpNEIBr
	dCmpLTIBr
	dCmpLEIBr
	dCmpGTIBr
	dCmpGEIBr

	// Pair-tile superinstructions: the decoder greedily tiles adjacent
	// instruction pairs drawn from the dynamically hottest combinations
	// (side-exit branch runs and the compare/address arithmetic around
	// them in scheduled superblocks; the compare/jump idioms of
	// unscheduled block tails) into one dispatch. The second slot stays
	// in place — the fused case reads it directly from code — so exit
	// records, visit counts and observer event order are untouched;
	// only the dispatch for the second instruction disappears. Tiles
	// whose name ends in Br consume a fused compare+branch as their
	// second instruction (three ir instructions, one dispatch). BrFT
	// tiles cover both fall-through branch polarities via the src2
	// polarity byte (see decodeInstr).
	dBrFTBrFT
	dBrFTMov
	dBrFTCmpEQI
	dMovBrFT
	dAddIBrFT
	dCmpEQICmpEQI
	dCmpLTIAndI
	dLoadSpecAddI
	dAndILoadSpec
	dAddIAddI
	dCmpEQIAddI
	dAddIJmp
	dMovIJmp
	dMovJmp
	dAndICmpEQI
	dAddICmpEQI
	dAndICmpEQIBr
	dAddICmpEQIBr
	dLoadAddI
	dMovMov
	dMovLoadSpec
	dAndIMov
	dCmpEQICmpLTI
	dLoadSpecCmpEQI
	dMovIAddI
	dAndIJmp

	// Run superinstructions: three or more consecutive instructions of
	// the same kind — the side-exit branch chains closing scheduled
	// superblocks, and the compare/copy bursts trace scheduling packs
	// together — execute under a single dispatch. The run length is
	// stashed in an operand byte the head instruction does not use
	// (dst for branches, src2 for compares and moves); the remaining
	// slots stay in place and keep their exit records, exactly like
	// pair tiles.
	dBrFTRun
	dCmpEQIRun
	dMovRun

	// Unit patterns: wider fixed shapes the scheduler emits many times
	// per superblock. dLoadUnit covers the four-instruction speculative
	// load unit — bounds compare (dCmpLTI), mask (dAndI), speculative
	// load (dLoadSpec), pointer step (dAddI) — and dLoadUnitBr extends
	// it with the side-exit branch that closes the unit. dMovBrFTMov is
	// a copy straddling a side exit. As with pair tiles, every body
	// slot stays in place with its own exit record.
	dLoadUnit
	dLoadUnitBr
	dMovBrFTMov
)

// tiles maps an adjacent opcode pair to its pair-tile superinstruction.
var tiles = map[[2]dop]dop{
	{dBrTakenFT, dBrTakenFT}: dBrFTBrFT,
	{dBrTakenFT, dBrElseFT}:  dBrFTBrFT,
	{dBrElseFT, dBrTakenFT}:  dBrFTBrFT,
	{dBrElseFT, dBrElseFT}:   dBrFTBrFT,
	{dBrTakenFT, dMov}:       dBrFTMov,
	{dBrElseFT, dMov}:        dBrFTMov,
	{dBrTakenFT, dCmpEQI}:    dBrFTCmpEQI,
	{dBrElseFT, dCmpEQI}:     dBrFTCmpEQI,
	{dMov, dBrTakenFT}:       dMovBrFT,
	{dMov, dBrElseFT}:        dMovBrFT,
	{dAddI, dBrTakenFT}:      dAddIBrFT,
	{dAddI, dBrElseFT}:       dAddIBrFT,
	{dCmpEQI, dCmpEQI}:       dCmpEQICmpEQI,
	{dCmpLTI, dAndI}:         dCmpLTIAndI,
	{dLoadSpec, dAddI}:       dLoadSpecAddI,
	{dAndI, dLoadSpec}:       dAndILoadSpec,
	{dAddI, dAddI}:           dAddIAddI,
	{dCmpEQI, dAddI}:         dCmpEQIAddI,
	{dAddI, dJmp}:            dAddIJmp,
	{dMovI, dJmp}:            dMovIJmp,
	{dMov, dJmp}:             dMovJmp,
	{dAndI, dCmpEQI}:         dAndICmpEQI,
	{dAddI, dCmpEQI}:         dAddICmpEQI,
	{dAndI, dCmpEQIBr}:       dAndICmpEQIBr,
	{dAddI, dCmpEQIBr}:       dAddICmpEQIBr,
	{dLoad, dAddI}:           dLoadAddI,
	{dMov, dMov}:             dMovMov,
	{dMov, dLoadSpec}:        dMovLoadSpec,
	{dAndI, dMov}:            dAndIMov,
	{dCmpEQI, dCmpLTI}:       dCmpEQICmpLTI,
	{dLoadSpec, dCmpEQI}:     dLoadSpecCmpEQI,
	{dMovI, dAddI}:           dMovIAddI,
	{dAndI, dJmp}:            dAndIJmp,
}

// fusedBr maps a compare opcode to its fused compare+branch form, or
// dNop (zero) when the opcode is not a compare.
var fusedBr = [dCmpGEIBr + 1]dop{
	dCmpEQ: dCmpEQBr, dCmpNE: dCmpNEBr, dCmpLT: dCmpLTBr, dCmpLE: dCmpLEBr,
	dCmpEQI: dCmpEQIBr, dCmpNEI: dCmpNEIBr, dCmpLTI: dCmpLTIBr,
	dCmpLEI: dCmpLEIBr, dCmpGTI: dCmpGTIBr, dCmpGEI: dCmpGEIBr,
}

// dinstr is one decoded instruction: 16 bytes, four to a cache line,
// no pointers into the ir.Instr it came from. Register operands are
// narrowed to uint8 so the executor can index its fixed *[256]int64
// frame without bounds checks (a uint8 cannot reach 256); procedures
// with wider register files fall back to the reference engine (see
// NewEngine). ALU/memory ops use imm as the literal operand; control
// ops overload it:
//
//	dBr        imm = taken index (low 32) | not-taken index (high 32)
//	dBrTakenFT imm = not-taken block index
//	dBrElseFT  imm = taken block index
//	dJmp       imm = target block index
//	dSwitch    imm = index into dproc.tables
//	dCall(.FT) imm = index into dproc.calls
//	dBad       imm = the raw ir.Opcode, for the error message
type dinstr struct {
	op   dop
	dst  uint8
	src1 uint8
	src2 uint8
	imm  int64
}

// dcall is the cold descriptor of one call site.
type dcall struct {
	callee       int32
	cont         int32 // continuation block index; ir.NoBlock = fall through
	argLo, argHi int32 // slice of dproc.args holding argument registers
}

// dexit is the accounting for leaving a block via code index i. Every
// counter a departure implies is a decode-time constant of (block, i),
// so the executor only tallies how often each exit was taken and the
// Result is reconstructed at the end of the run as
// Σ count(i) × exits[i] (see dmachine.flushCounts — all Result
// counters are commutative sums, so deferring them is exact):
// n is the retired instruction count exit-lo+1; cycles the reference
// engine's leaveBlock charge; units the superblock exit credit (0 =
// not in a merged superblock); branches and calls the
// DynBranches/Calls counts the reference engine accumulated one
// instruction at a time over [block.lo, i]; sbEntry and sbSize the
// entry-time superblock bookkeeping (a block entered is always
// departed exactly once, so charging it per exit is equivalent —
// error paths abandon the Result either way).
type dexit struct {
	cycles   int64
	n        int32
	units    int32
	branches int32
	calls    int32
	sbEntry  int32
	sbSize   int32
}

// dblock is the per-block record: its code range plus the entry-time
// bookkeeping and the shape stamp EngineFor revalidates on cache hits.
type dblock struct {
	id      ir.BlockID
	lo, hi  int32
	addr    int64 // byte address of the first instruction (fetch model)
	sbEnter bool  // SBSize > 0 && SBIndex == 0: counts an SB entry
	sbSize  int32
	sched   bool  // Cycles != nil when decoded (shape stamp)
	span    int32 // Span when decoded (shape stamp)
}

// dproc is one decoded procedure.
type dproc struct {
	id       ir.ProcID
	name     string
	missing  bool // Procs slot was nil; calling it errors like the reference
	frameLen int  // MaxReg()+1, computed once instead of per activation
	entry    int32
	blocks   []dblock
	code     []dinstr
	exits    []dexit // parallel to code; see dexit

	// ranges[j] packs blocks[j]'s code range as lo | hi<<32: the only
	// per-block state the unhooked hot loop needs, eight blocks to a
	// cache line. The full dblock is consulted only on observer, fetch
	// and error paths.
	ranges []int64

	tables [][]int32 // switch jump tables (block index, -1 = fall through)
	calls  []dcall   // call-site descriptors
	args   []uint8   // flattened call argument registers

	// Exit classification for counter-fused edge profiling (see
	// counts.go): every code slot whose execution can produce a CFG
	// edge is resolved at decode time to its destination block set.
	// exitTarget[i] is the single destination block index, or
	// exitNone when slot i either never transfers (straight-line ops,
	// dCallFT, dRet) or has several possible destinations — in which
	// case multiIdx[i] is the slot's row in multiTargets (the distinct
	// destinations, decode order) and counted runs tally a live
	// per-destination counter. Classified from the pristine decoded
	// opcodes, before superinstruction rewriting obscures them; the
	// rewriting passes never move an exit to a different slot, so the
	// classification stays valid for the rewritten code.
	exitTarget   []int32
	multiIdx     []int32
	multiTargets [][]int32

	// wide is set when any register operand falls outside [0, 255] —
	// unrepresentable in dinstr's uint8 fields — and routes the whole
	// program to the reference engine (Engine.fallback).
	wide bool
}

// Engine is a program decoded for execution. It is immutable after
// NewEngine returns, so one engine may serve any number of concurrent
// Runs (the parallel pipeline relies on this).
type Engine struct {
	prog  *ir.Program
	procs []dproc

	// fallback routes Run to ReferenceRun: some procedure needs more
	// than the 256 registers the decoded frame carries. Register
	// pressure that high never survives the scheduler, so this path
	// exists for IR-level robustness, not performance.
	fallback bool
}

// NewEngine decodes prog. The program is read, never mutated.
func NewEngine(prog *ir.Program) *Engine {
	e := &Engine{prog: prog, procs: make([]dproc, len(prog.Procs))}
	for i, p := range prog.Procs {
		decodeProc(&e.procs[i], p)
	}
	for i := range e.procs {
		if e.procs[i].wide || e.procs[i].frameLen > 256 {
			e.fallback = true
		}
	}
	// Callee validation pass: calls to out-of-range or missing procs
	// become dBadCall, so the executor's call fast path needs no bounds
	// or missing checks — the error (identical to the reference's)
	// fires if and when such a call actually executes.
	for i := range e.procs {
		d := &e.procs[i]
		for j := range d.code {
			if op := d.code[j].op; op == dCall || op == dCallFT {
				c := d.calls[d.code[j].imm]
				if c.callee < 0 || int(c.callee) >= len(e.procs) || e.procs[c.callee].missing {
					d.code[j].op = dBadCall
					d.code[j].imm = int64(c.callee)
				}
			}
		}
	}
	return e
}

// EngineFor returns the memoized engine for prog, decoding on first
// use. The decode is stored on the program itself (ir.Program's exec
// cache), so every run of one build — the reference run, each scheme's
// measurement run, layout-profiling runs, benchmark iterations —
// shares a single decode, and the cache dies with the program.
//
// A hit is revalidated against the program's block shape (instruction
// counts, Addr, Span, superblock metadata), which catches the
// legitimate post-run mutations in this codebase (layout re-assigning
// addresses, compaction annotating schedules). Callers that mutate
// instruction *contents* in place after running must drop the cache
// with prog.StoreExecCache(nil).
func EngineFor(prog *ir.Program) *Engine {
	if v := prog.ExecCache(); v != nil {
		if e, ok := v.(*Engine); ok && e.matches(prog) {
			return e
		}
	}
	e := NewEngine(prog)
	prog.StoreExecCache(e)
	return e
}

// matches reports whether the engine's decode still reflects prog's
// shape (see EngineFor).
func (e *Engine) matches(prog *ir.Program) bool {
	if e.prog != prog || len(e.procs) != len(prog.Procs) {
		return false
	}
	for i := range e.procs {
		d, p := &e.procs[i], prog.Procs[i]
		if p == nil {
			if !d.missing {
				return false
			}
			continue
		}
		if d.missing || len(d.blocks) != len(p.Blocks) {
			return false
		}
		for j := range d.blocks {
			db, b := &d.blocks[j], p.Blocks[j]
			if int(db.hi-db.lo) != len(b.Instrs) || db.addr != b.Addr ||
				db.span != b.Span || db.sbSize != b.SBSize ||
				db.sched != (b.Cycles != nil) ||
				db.sbEnter != (b.SBSize > 0 && b.SBIndex == 0) {
				return false
			}
		}
	}
	return true
}

func decodeProc(d *dproc, p *ir.Proc) {
	if p == nil {
		d.missing = true
		return
	}
	d.id, d.name = p.ID, p.Name
	d.frameLen = int(p.MaxReg()) + 1
	if len(p.Blocks) > 0 {
		d.entry = int32(p.Blocks[0].ID)
	}
	total := 0
	for _, b := range p.Blocks {
		total += len(b.Instrs)
	}
	d.blocks = make([]dblock, len(p.Blocks))
	d.code = make([]dinstr, 0, total+len(p.Blocks))
	d.exits = make([]dexit, 0, total+len(p.Blocks))
	d.exitTarget = make([]int32, 0, total+len(p.Blocks))
	d.multiIdx = make([]int32, 0, total+len(p.Blocks))
	d.ranges = make([]int64, len(p.Blocks))
	for j, b := range p.Blocks {
		db := &d.blocks[j]
		db.id = b.ID
		db.lo = int32(len(d.code))
		db.addr = b.Addr
		db.span = b.Span
		db.sched = b.Cycles != nil
		db.sbSize = b.SBSize
		db.sbEnter = b.SBSize > 0 && b.SBIndex == 0
		var sbEntry, sbSize int32
		if db.sbEnter {
			sbEntry, sbSize = 1, b.SBSize
		}
		var branches, calls int32
		for i := range b.Instrs {
			switch b.Instrs[i].Op {
			case ir.OpBr, ir.OpSwitch:
				branches++
			case ir.OpCall:
				calls++
			}
			d.code = append(d.code, d.decodeInstr(&b.Instrs[i]))
			d.exits = append(d.exits, dexit{
				cycles:   exitCyclesFor(b, i),
				n:        int32(i + 1),
				units:    exitUnitsFor(b, i),
				branches: branches,
				calls:    calls,
				sbEntry:  sbEntry,
				sbSize:   sbSize,
			})
		}
		db.hi = int32(len(d.code))
		d.ranges[j] = int64(db.lo) | int64(db.hi)<<32
		d.classifyExits(db)
		// Fuse compare+branch pairs within the block (never across a
		// block boundary: db.hi-1 is the last fusable branch slot).
		for k := int(db.lo); k+1 < int(db.hi); k++ {
			if d.code[k+1].op == dBr && d.code[k+1].src1 == d.code[k].dst {
				if f := fusedBr[d.code[k].op]; f != dNop {
					d.code[k].op = f
				}
			}
		}
		// Run detection (before pair tiling, which would break runs
		// into pairs): ≥3 consecutive fall-through branches, compares
		// or moves become one run superinstruction.
		for k := int(db.lo); k < int(db.hi); {
			op := d.code[k].op
			isBr := op == dBrTakenFT || op == dBrElseFT
			if !isBr && op != dCmpEQI && op != dMov {
				k++
				continue
			}
			j := k + 1
			for j < int(db.hi) {
				o := d.code[j].op
				if isBr && (o == dBrTakenFT || o == dBrElseFT) || !isBr && o == op {
					j++
					continue
				}
				break
			}
			n := j - k
			if n < 3 || n > 255 {
				k = j
				continue
			}
			switch {
			case isBr:
				d.code[k].op = dBrFTRun
				d.code[k].dst = uint8(n)
			case op == dCmpEQI:
				d.code[k].op = dCmpEQIRun
				d.code[k].src2 = uint8(n)
			default:
				d.code[k].op = dMovRun
				d.code[k].src2 = uint8(n)
			}
			k = j
		}
		// Unit patterns (after run detection, which has first claim on
		// long homogeneous stretches; before pair tiling, which would
		// split these shapes into pairs): greedy left-to-right match of
		// the fixed multi-instruction shapes described at the opcode
		// declarations.
		for k := int(db.lo); k < int(db.hi); {
			a := d.code[k].op
			if a >= dCmpEQBr && a <= dCmpGEIBr {
				k += 2
				continue
			}
			if a == dBrFTRun {
				k += int(d.code[k].dst)
				continue
			}
			if a == dCmpEQIRun || a == dMovRun {
				k += int(d.code[k].src2)
				continue
			}
			if a == dCmpLTI && k+3 < int(db.hi) &&
				d.code[k+1].op == dAndI && d.code[k+2].op == dLoadSpec && d.code[k+3].op == dAddI {
				if k+4 < int(db.hi) && (d.code[k+4].op == dBrTakenFT || d.code[k+4].op == dBrElseFT) {
					d.code[k].op = dLoadUnitBr
					k += 5
				} else {
					d.code[k].op = dLoadUnit
					k += 4
				}
				continue
			}
			if a == dMov && k+2 < int(db.hi) &&
				(d.code[k+1].op == dBrTakenFT || d.code[k+1].op == dBrElseFT) && d.code[k+2].op == dMov {
				d.code[k].op = dMovBrFTMov
				k += 3
				continue
			}
			k++
		}
		// Greedy left-to-right pair tiling over what fusion, run
		// detection and unit matching left: each instruction joins at
		// most one tile, a consumed branch slot (the second half of a
		// fused compare+branch) is skipped, and run/unit bodies are
		// never re-tiled.
		for k := int(db.lo); k+1 < int(db.hi); {
			a := d.code[k].op
			if a >= dCmpEQBr && a <= dCmpGEIBr {
				k += 2 // fused compare + its consumed branch slot
				continue
			}
			if a == dBrFTRun {
				k += int(d.code[k].dst)
				continue
			}
			if a == dCmpEQIRun || a == dMovRun {
				k += int(d.code[k].src2)
				continue
			}
			if a == dLoadUnitBr {
				k += 5
				continue
			}
			if a == dLoadUnit {
				k += 4
				continue
			}
			if a == dMovBrFTMov {
				k += 3
				continue
			}
			t, ok := tiles[[2]dop{a, d.code[k+1].op}]
			if !ok {
				k++
				continue
			}
			d.code[k].op = t
			if b := d.code[k+1].op; b >= dCmpEQBr && b <= dCmpGEIBr {
				k += 3 // tile head + fused compare + its branch slot
			} else {
				k += 2
			}
		}
		// A block that is nothing but an unconditional jump — common in
		// the skeletal control flow unscheduled builds execute — is
		// marked with the sign bit of its packed range, and its target
		// replaces the (redundant, always lo+1) hi half. The executor's
		// transfer tail accounts such blocks inline and chains straight
		// to the target without a dispatch.
		if db.hi-db.lo == 1 && d.code[db.lo].op == dJmp {
			// Only with an in-range target: a bad target keeps normal
			// dispatch so it reports the reference engine's error.
			if t := int32(d.code[db.lo].imm); uint32(t) < uint32(len(p.Blocks)) {
				d.ranges[j] = int64(db.lo) | int64(t)<<32 | (-1 << 63)
			}
		}
		// Block terminator: [lo, hi) excludes the sentinel, so it only
		// executes when control runs past the last real instruction.
		d.code = append(d.code, dinstr{op: dFellOff, imm: int64(b.ID)})
		d.exits = append(d.exits, dexit{})
		d.exitTarget = append(d.exitTarget, exitNone)
		d.multiIdx = append(d.multiIdx, -1)
	}
}

// exitNone marks a code slot that never produces a CFG edge (or whose
// destinations live in multiTargets instead — multiIdx distinguishes).
const exitNone int32 = -1

// classifyExits appends the exit classification (see the dproc fields)
// for block db's slots. Must run on the pristine decoded opcodes,
// before the superinstruction rewriting passes.
func (d *dproc) classifyExits(db *dblock) {
	for i := db.lo; i < db.hi; i++ {
		ins := &d.code[i]
		tgt := exitNone
		var multi []int32
		switch ins.op {
		case dJmp, dBrTakenFT, dBrElseFT:
			tgt = int32(ins.imm)
		case dBr:
			t0, t1 := int32(uint32(ins.imm)), int32(uint32(ins.imm>>32))
			if t0 == t1 {
				tgt = t0
			} else {
				multi = []int32{t0, t1}
			}
		case dSwitch:
			// Distinct real destinations in table order (the default
			// entry is the table's last slot; NoBlock slots fall
			// through in-block and produce no edge).
			for _, t := range d.tables[ins.imm] {
				if t == int32(ir.NoBlock) {
					continue
				}
				dup := false
				for _, s := range multi {
					if s == t {
						dup = true
						break
					}
				}
				if !dup {
					multi = append(multi, t)
				}
			}
			if len(multi) == 1 {
				tgt, multi = multi[0], nil
			}
		case dCall:
			// The transfer to the continuation block fires when the
			// call returns; dCallFT falls through in-block (no edge).
			tgt = d.calls[ins.imm].cont
		}
		d.exitTarget = append(d.exitTarget, tgt)
		if multi != nil {
			d.multiIdx = append(d.multiIdx, int32(len(d.multiTargets)))
			d.multiTargets = append(d.multiTargets, multi)
		} else {
			d.multiIdx = append(d.multiIdx, -1)
		}
	}
}

// exitCyclesFor precomputes the reference engine's leaveBlock cycle
// charge for departing b via instruction i.
func exitCyclesFor(b *ir.Block, i int) int64 {
	if b.Cycles != nil {
		if i == len(b.Instrs)-1 {
			return int64(b.Span)
		}
		return int64(b.Cycles[i]) + 1
	}
	return int64(i + 1)
}

// exitUnitsFor precomputes the reference engine's exitUnits credit for
// departing b via instruction i; 0 marks "not in a merged superblock".
func exitUnitsFor(b *ir.Block, i int) int32 {
	if b.SBSize <= 0 {
		return 0
	}
	if b.ExitUnits != nil {
		if u := b.ExitUnits[i]; u > 0 {
			return u
		}
	}
	return b.SBSize
}

var aluOps = [...]struct {
	src ir.Opcode
	dst dop
}{
	{ir.OpNop, dNop}, {ir.OpMovI, dMovI}, {ir.OpMov, dMov},
	{ir.OpAdd, dAdd}, {ir.OpSub, dSub}, {ir.OpMul, dMul},
	{ir.OpAnd, dAnd}, {ir.OpOr, dOr}, {ir.OpXor, dXor},
	{ir.OpShl, dShl}, {ir.OpShr, dShr},
	{ir.OpAddI, dAddI}, {ir.OpMulI, dMulI}, {ir.OpAndI, dAndI},
	{ir.OpOrI, dOrI}, {ir.OpXorI, dXorI}, {ir.OpShlI, dShlI},
	{ir.OpShrI, dShrI},
	{ir.OpCmpEQ, dCmpEQ}, {ir.OpCmpNE, dCmpNE}, {ir.OpCmpLT, dCmpLT},
	{ir.OpCmpLE, dCmpLE}, {ir.OpCmpEQI, dCmpEQI}, {ir.OpCmpNEI, dCmpNEI},
	{ir.OpCmpLTI, dCmpLTI}, {ir.OpCmpLEI, dCmpLEI}, {ir.OpCmpGTI, dCmpGTI},
	{ir.OpCmpGEI, dCmpGEI},
	{ir.OpStore, dStore}, {ir.OpEmit, dEmit},
}

var aluMap = func() map[ir.Opcode]dop {
	m := make(map[ir.Opcode]dop, len(aluOps))
	for _, e := range aluOps {
		m[e.src] = e.dst
	}
	return m
}()

// reg narrows a register operand to dinstr's uint8 field, flagging the
// procedure for reference-engine fallback if it does not fit.
func (d *dproc) reg(r ir.Reg) uint8 {
	if r < 0 || r > 255 {
		d.wide = true
		return 0
	}
	return uint8(r)
}

func (d *dproc) decodeInstr(ins *ir.Instr) dinstr {
	out := dinstr{dst: d.reg(ins.Dst), src1: d.reg(ins.Src1), src2: d.reg(ins.Src2), imm: ins.Imm}
	switch ins.Op {
	case ir.OpLoad:
		if ins.Spec {
			out.op = dLoadSpec
		} else {
			out.op = dLoad
		}
	case ir.OpBr:
		t0, t1 := ins.Targets[0], ins.Targets[1]
		switch {
		case t0 == ir.NoBlock && t1 == ir.NoBlock:
			out.op = dBrBothFT
			out.imm = 0
		case t0 == ir.NoBlock:
			out.op = dBrTakenFT
			out.imm = int64(t1)
			out.src2 = 0 // polarity for pair tiles: jump when condition false
		case t1 == ir.NoBlock:
			out.op = dBrElseFT
			out.imm = int64(t0)
			out.src2 = 1 // polarity for pair tiles: jump when condition true
		default:
			out.op = dBr
			// Both targets in one word; uint32 keeps the low half from
			// sign-extending over the high half.
			out.imm = int64(uint32(t0)) | int64(uint32(t1))<<32
		}
	case ir.OpJmp:
		out.op = dJmp
		out.imm = int64(ins.Targets[0])
	case ir.OpSwitch:
		out.op = dSwitch
		tab := make([]int32, len(ins.Targets))
		for k, t := range ins.Targets {
			tab[k] = int32(t)
		}
		out.imm = int64(len(d.tables))
		d.tables = append(d.tables, tab)
	case ir.OpCall:
		out.op = dCall
		if ins.Targets[0] == ir.NoBlock {
			out.op = dCallFT
		}
		c := dcall{
			callee: int32(ins.Callee),
			cont:   int32(ins.Targets[0]),
			argLo:  int32(len(d.args)),
		}
		for _, a := range ins.Args {
			d.args = append(d.args, d.reg(a))
		}
		c.argHi = int32(len(d.args))
		if int(ir.RegArg0)+len(ins.Args) > 256 {
			d.wide = true
		}
		out.imm = int64(len(d.calls))
		d.calls = append(d.calls, c)
	case ir.OpRet:
		out.op = dRet
	default:
		if op, ok := aluMap[ins.Op]; ok {
			out.op = op
		} else {
			out.op = dBad
			out.imm = int64(ins.Op)
		}
	}
	return out
}
