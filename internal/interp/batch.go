package interp

import "pathsched/internal/ir"

// batchCap is the batch buffer size: 1024 records = 8KB, small enough
// to stay cache-resident, large enough that the per-record flush
// amortizes to noise. Both engines use the same capacity and the same
// flush points so their batch streams are identical call for call.
const batchCap = 1024

// batcher accumulates edge records for a BatchObserver. The decoded
// engine appends to buf inline in its transfer tail (see exec.go) and
// calls flush at activation boundaries; the reference engine reuses
// the same struct as a per-event Observer adapter (the methods below),
// which produces the exact same sequence of BeginProc/EdgeBatch/
// EndProc calls for the same event stream.
type batcher struct {
	bo   BatchObserver
	proc ir.ProcID // proc of the buffered records (set on every append)
	n    int
	buf  [batchCap]EdgeRec
}

// flush delivers pending records, if any. Called before BeginProc and
// EndProc so batches never span activations.
func (b *batcher) flush() {
	if b.n > 0 {
		b.bo.EdgeBatch(b.proc, b.buf[:b.n])
		b.n = 0
	}
}

// Observer adaptation for the reference engine: Block events are
// dropped (they are implied — see the BatchObserver contract), Edge
// events append, Enter/Exit flush and forward.

func (b *batcher) EnterProc(p ir.ProcID, entry ir.BlockID) {
	b.flush()
	b.bo.BeginProc(p, entry)
}

func (b *batcher) ExitProc(p ir.ProcID) {
	b.flush()
	b.bo.EndProc(p)
}

func (b *batcher) Edge(p ir.ProcID, from, to ir.BlockID) {
	b.proc = p
	b.buf[b.n] = EdgeRec{From: from, To: to}
	if b.n++; b.n == batchCap {
		b.bo.EdgeBatch(p, b.buf[:batchCap])
		b.n = 0
	}
}

func (b *batcher) Block(p ir.ProcID, blk ir.BlockID) {}
