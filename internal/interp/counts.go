package interp

import (
	"errors"

	"pathsched/internal/ir"
)

// This file turns the decoded engine's per-exit visit counters into
// exact control-flow profiles after the run completes ("counter-fused
// edge profiling"). The engine already tallies one counter per block
// departure for Result reconstruction (see exec.go); the decode-time
// exit classification (decode.go) resolves almost every exit slot to
// its single destination block, so the full edge profile — block entry
// frequencies, edge frequencies, call-site counts, procedure entry
// counts — is a post-hoc fold over those counters:
//
//   - block entry count  = Σ counts[i] over the block's slots (a block
//     entered is departed exactly once on a completed run; single-jump
//     chained blocks concentrate their tally at counts[lo], which is
//     the whole sum for their one-slot range);
//   - edge (b, target) via single-destination slot i = counts[i];
//   - edges via a multi-destination slot (a dBr with distinct targets,
//     a dSwitch with ≥2 distinct real destinations) come from the live
//     per-destination rows the counted run maintains;
//   - dCall site count = counts[call slot] (its continuation transfer
//     fires once per completed call); dCallFT executes without a
//     transfer, so its count is "times reached" = Σ counts[j] over the
//     later slots j ≥ i of its block (exactly one later exit fires per
//     pass through the slot);
//   - procedure entry count = Σ call-site counts into it, plus one for
//     main.
//
// Error paths abandon counters (RunCounted returns no EdgeCounts), so
// the equalities above need only hold for completed runs — the same
// contract flushCounts relies on.

var (
	errObserverAndBatch = errors.New("interp: Config.Observer and Config.Batch are mutually exclusive")
	errCountedFallback  = errors.New("interp: counted run needs the decoded engine (wide-register fallback active)")
	errCountedObserver  = errors.New("interp: counted run cannot carry a per-event Observer (use Config.Batch)")
)

// Fallback reports whether this engine routes runs to the reference
// engine (some procedure needs more than 256 registers). Callers use
// it to gate fast paths that exist only in the decoded engine, like
// RunCounted.
func (e *Engine) Fallback() bool { return e.fallback }

// EdgeCounts is the control-flow side of a counted run (RunCounted):
// dense per-exit visit counters plus the live multi-destination rows,
// exposed as deterministic traversals over exact per-procedure block,
// edge, call and entry counts. Reconstructed profiles are identical —
// including serialized bytes — to what per-event observers would have
// gathered on the same run; internal/profile builds its EdgeProfiler
// and call-graph counts from these traversals.
type EdgeCounts struct {
	eng     *Engine
	counts  [][]int64
	multi   [][][]int64
	entries []int64
	calls   []CallCount
}

// CallCount is one (caller, callee) total over every executed call
// site, as a call-graph profiler would have counted it.
type CallCount struct {
	Caller, Callee ir.ProcID
	N              int64
}

func newEdgeCounts(e *Engine, counts [][]int64, multi [][][]int64) *EdgeCounts {
	ec := &EdgeCounts{eng: e, counts: counts, multi: multi,
		entries: make([]int64, len(e.procs))}
	for pid := range e.procs {
		d := &e.procs[pid]
		c := counts[pid]
		for j := range d.blocks {
			db := &d.blocks[j]
			// One backward pass per block gives each slot's "times
			// reached" (the suffix sum of departures at or after it),
			// which is the dCallFT execution count.
			var reached int64
			for i := db.hi - 1; i >= db.lo; i-- {
				reached += c[i]
				var n int64
				switch d.code[i].op {
				case dCall:
					n = c[i]
				case dCallFT:
					n = reached
				default:
					continue
				}
				if n == 0 {
					continue
				}
				callee := d.calls[d.code[i].imm].callee
				ec.entries[callee] += n
				ec.calls = append(ec.calls, CallCount{
					Caller: d.id, Callee: e.procs[callee].id, N: n})
			}
		}
	}
	if main := e.prog.Main; int(main) >= 0 && int(main) < len(ec.entries) {
		ec.entries[main]++
	}
	return ec
}

// NumProcs returns the number of procedure slots.
func (ec *EdgeCounts) NumProcs() int { return len(ec.eng.procs) }

// Entries returns how many activations of p began (call-site totals
// into p, plus one for main) — the count an observer's EnterProc
// would have seen.
func (ec *EdgeCounts) Entries(p ir.ProcID) int64 { return ec.entries[p] }

// ForEachCall visits the executed (caller, callee) call-site totals in
// a deterministic order (caller, block, reverse slot).
func (ec *EdgeCounts) ForEachCall(fn func(caller, callee ir.ProcID, n int64)) {
	for _, c := range ec.calls {
		fn(c.Caller, c.Callee, c.N)
	}
}

// ForEachBlock visits p's executed blocks in block order with their
// entry counts.
func (ec *EdgeCounts) ForEachBlock(p ir.ProcID, fn func(b ir.BlockID, n int64)) {
	d := &ec.eng.procs[p]
	c := ec.counts[p]
	for j := range d.blocks {
		db := &d.blocks[j]
		var n int64
		for i := db.lo; i < db.hi; i++ {
			n += c[i]
		}
		if n != 0 {
			fn(db.id, n)
		}
	}
}

// ForEachEdge visits p's executed intra-procedure CFG edges with their
// counts in a deterministic order (block, exit slot, destination).
func (ec *EdgeCounts) ForEachEdge(p ir.ProcID, fn func(from, to ir.BlockID, n int64)) {
	d := &ec.eng.procs[p]
	c := ec.counts[p]
	var rows [][]int64
	if ec.multi != nil {
		rows = ec.multi[p]
	}
	for j := range d.blocks {
		db := &d.blocks[j]
		from := db.id
		for i := db.lo; i < db.hi; i++ {
			if mi := d.multiIdx[i]; mi >= 0 {
				ts := d.multiTargets[mi]
				row := rows[mi]
				for k, t := range ts {
					// Out-of-range destinations only occur on runs
					// that errored, whose counters are abandoned; the
					// guards keep even that path panic-free.
					if row[k] != 0 && uint32(t) < uint32(len(d.blocks)) {
						fn(from, d.blocks[t].id, row[k])
					}
				}
			} else if t := d.exitTarget[i]; c[i] != 0 && uint32(t) < uint32(len(d.blocks)) {
				fn(from, d.blocks[t].id, c[i])
			}
		}
	}
}
