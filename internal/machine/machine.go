// Package machine describes the experimental machine model of §3.2: a
// very powerful VLIW derived from the Digital Alpha ISA, with 8
// universal functional units, one control operation per cycle, a
// 128-register integer file, and single-cycle instruction latencies
// (an optional "realistic" latency table is provided; the paper notes
// the benefit of path-based scheduling grows under it). The package
// also implements the 32KB direct-mapped instruction cache with
// 32-byte lines and a 6-cycle miss penalty used in §4.
package machine

import "pathsched/internal/ir"

// Config describes the VLIW core.
type Config struct {
	// FuncUnits is the number of universal functional units (8).
	FuncUnits int
	// BranchPerCycle limits control operations per cycle (1).
	BranchPerCycle int
	// Realistic enables multi-cycle latencies for loads and multiplies
	// instead of the paper's single-cycle baseline.
	Realistic bool
}

// Default returns the paper's experimental machine.
func Default() Config {
	return Config{FuncUnits: 8, BranchPerCycle: 1}
}

// Latency returns the producer latency of op in cycles: the minimum
// distance to a consumer of its result.
func (c Config) Latency(op ir.Opcode) int32 {
	if !c.Realistic {
		return 1
	}
	switch op {
	case ir.OpLoad:
		return 3
	case ir.OpMul, ir.OpMulI:
		return 3
	case ir.OpCall:
		return 1
	default:
		return 1
	}
}

// ICache is a set-associative instruction cache with LRU replacement
// (the paper's configuration is direct-mapped, i.e. associativity 1).
// It implements interp.FetchSink: every fetched byte range is
// decomposed into lines, and each miss charges the configured penalty.
type ICache struct {
	lineShift uint
	sets      int64
	ways      int
	penalty   int64
	// tags[set*ways .. set*ways+ways) hold the set's lines in LRU
	// order, most recently used first; -1 is empty.
	tags []int64

	accesses int64
	misses   int64
}

// ICacheConfig sizes an instruction cache.
type ICacheConfig struct {
	SizeBytes int64 // total capacity (32 KB)
	LineBytes int64 // line size (32 B), must be a power of two
	Penalty   int64 // stall cycles per miss (6)
	Ways      int   // associativity; 0 or 1 = direct-mapped
}

// DefaultICache is the paper's 32KB direct-mapped, 32-byte-line cache
// with a 6-cycle miss penalty.
func DefaultICache() ICacheConfig {
	return ICacheConfig{SizeBytes: 32 << 10, LineBytes: 32, Penalty: 6}
}

// NewICache builds an empty cache.
func NewICache(cfg ICacheConfig) *ICache {
	if cfg.Ways <= 0 {
		cfg.Ways = 1
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	sets := cfg.SizeBytes / cfg.LineBytes / int64(cfg.Ways)
	if sets < 1 {
		sets = 1
	}
	tags := make([]int64, sets*int64(cfg.Ways))
	for i := range tags {
		tags[i] = -1
	}
	return &ICache{
		lineShift: shift,
		sets:      sets,
		ways:      cfg.Ways,
		penalty:   cfg.Penalty,
		tags:      tags,
	}
}

// FetchRange touches every line in [start, end) and returns the stall
// cycles incurred by misses.
func (c *ICache) FetchRange(start, end int64) int64 {
	if end <= start {
		return 0
	}
	first := start >> c.lineShift
	last := (end - 1) >> c.lineShift
	var stall int64
	for line := first; line <= last; line++ {
		c.accesses++
		if !c.touch(line) {
			c.misses++
			stall += c.penalty
		}
	}
	return stall
}

// touch looks the line up in its set, promotes it to MRU, and reports
// whether it hit. On a miss the LRU way is replaced.
func (c *ICache) touch(line int64) bool {
	set := line % c.sets
	base := int(set) * c.ways
	ways := c.tags[base : base+c.ways]
	for i, t := range ways {
		if t == line {
			// Promote to MRU: shift earlier entries down.
			copy(ways[1:i+1], ways[:i])
			ways[0] = line
			return true
		}
	}
	copy(ways[1:], ways[:c.ways-1])
	ways[0] = line
	return false
}

// Accesses and Misses report line-granularity traffic.
func (c *ICache) Accesses() int64 { return c.accesses }
func (c *ICache) Misses() int64   { return c.misses }

// MissRate returns misses/accesses, or 0 before any access.
func (c *ICache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset empties the cache and zeroes its counters.
func (c *ICache) Reset() {
	for i := range c.tags {
		c.tags[i] = -1
	}
	c.accesses, c.misses = 0, 0
}
