package machine

import (
	"testing"
	"testing/quick"

	"pathsched/internal/ir"
)

func TestDefaultConfig(t *testing.T) {
	c := Default()
	if c.FuncUnits != 8 || c.BranchPerCycle != 1 {
		t.Fatalf("default machine = %+v, want 8 FUs and 1 branch/cycle", c)
	}
	if c.Latency(ir.OpAdd) != 1 || c.Latency(ir.OpLoad) != 1 {
		t.Fatal("baseline latencies must be single-cycle")
	}
	c.Realistic = true
	if c.Latency(ir.OpLoad) <= 1 || c.Latency(ir.OpMul) <= 1 {
		t.Fatal("realistic latencies must exceed one cycle for loads and multiplies")
	}
	if c.Latency(ir.OpAdd) != 1 {
		t.Fatal("ALU latency stays 1 even under realistic model")
	}
}

func TestICacheColdMissesThenHits(t *testing.T) {
	c := NewICache(DefaultICache())
	stall := c.FetchRange(0, 64) // two lines, both cold
	if stall != 12 {
		t.Fatalf("cold stall = %d, want 12", stall)
	}
	if c.Misses() != 2 || c.Accesses() != 2 {
		t.Fatalf("misses=%d accesses=%d", c.Misses(), c.Accesses())
	}
	if s := c.FetchRange(0, 64); s != 0 {
		t.Fatalf("warm stall = %d, want 0", s)
	}
	if c.MissRate() != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", c.MissRate())
	}
}

func TestICacheConflictMapping(t *testing.T) {
	cfg := DefaultICache()
	c := NewICache(cfg)
	// Two addresses exactly one cache size apart map to the same set.
	if s := c.FetchRange(0, 1); s != cfg.Penalty {
		t.Fatalf("first access stall = %d", s)
	}
	if s := c.FetchRange(cfg.SizeBytes, cfg.SizeBytes+1); s != cfg.Penalty {
		t.Fatal("conflicting line must miss")
	}
	if s := c.FetchRange(0, 1); s != cfg.Penalty {
		t.Fatal("original line must have been evicted")
	}
}

func TestICacheLineGranularity(t *testing.T) {
	c := NewICache(DefaultICache())
	c.FetchRange(0, 4) // touches line 0 only
	if c.Accesses() != 1 {
		t.Fatalf("accesses = %d, want 1", c.Accesses())
	}
	c.FetchRange(28, 36) // spans lines 0 and 1
	if c.Accesses() != 3 {
		t.Fatalf("accesses = %d, want 3", c.Accesses())
	}
	if c.Misses() != 2 { // line 0 warm, line 1 cold
		t.Fatalf("misses = %d, want 2", c.Misses())
	}
}

func TestICacheEmptyAndReset(t *testing.T) {
	c := NewICache(DefaultICache())
	if s := c.FetchRange(100, 100); s != 0 {
		t.Fatal("empty range must not stall")
	}
	if c.MissRate() != 0 {
		t.Fatal("miss rate before any access must be 0")
	}
	c.FetchRange(0, 32)
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Fatal("reset must clear counters")
	}
	if s := c.FetchRange(0, 32); s == 0 {
		t.Fatal("reset must clear contents")
	}
}

// Property: fetching the same range twice in a row never misses the
// second time, for arbitrary ranges.
func TestICacheIdempotentRefetch(t *testing.T) {
	c := NewICache(DefaultICache())
	check := func(start uint16, length uint8) bool {
		s, e := int64(start), int64(start)+int64(length)
		c.FetchRange(s, e)
		return c.FetchRange(s, e) == 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: total misses never exceed total accesses, and stall is
// always penalty * misses.
func TestICacheAccounting(t *testing.T) {
	cfg := DefaultICache()
	c := NewICache(cfg)
	var stall int64
	for i := int64(0); i < 500; i++ {
		start := (i * 7919) % (1 << 20)
		stall += c.FetchRange(start, start+((i*13)%96))
	}
	if c.Misses() > c.Accesses() {
		t.Fatal("misses exceed accesses")
	}
	if stall != c.Misses()*cfg.Penalty {
		t.Fatalf("stall %d != misses %d * penalty %d", stall, c.Misses(), cfg.Penalty)
	}
}

func TestSetAssociativeCacheAvoidsConflictMisses(t *testing.T) {
	cfg := DefaultICache()
	cfg.Ways = 2
	c := NewICache(cfg)
	// Two lines one cache-size apart now share a 2-way set: both fit.
	c.FetchRange(0, 1)
	c.FetchRange(cfg.SizeBytes, cfg.SizeBytes+1)
	if s := c.FetchRange(0, 1); s != 0 {
		t.Fatal("2-way cache must retain both conflicting lines")
	}
	if s := c.FetchRange(cfg.SizeBytes, cfg.SizeBytes+1); s != 0 {
		t.Fatal("second conflicting line must also be retained")
	}
	// Re-touch line 0 so line S becomes LRU, then insert a third
	// conflicting line: S must be the victim.
	c.FetchRange(0, 1)
	c.FetchRange(2*cfg.SizeBytes, 2*cfg.SizeBytes+1) // evicts LRU = S
	if s := c.FetchRange(0, 1); s != 0 {
		t.Fatal("MRU line must survive")
	}
	if s := c.FetchRange(cfg.SizeBytes, cfg.SizeBytes+1); s == 0 {
		t.Fatal("LRU line must have been evicted")
	}
}

func TestFullyAssociativeSmallCache(t *testing.T) {
	c := NewICache(ICacheConfig{SizeBytes: 128, LineBytes: 32, Penalty: 6, Ways: 4})
	// 4 lines total, one set. Touch 4 distinct lines: all resident.
	for i := int64(0); i < 4; i++ {
		c.FetchRange(i*1000, i*1000+1)
	}
	miss := c.Misses()
	for i := int64(3); i >= 0; i-- {
		c.FetchRange(i*1000, i*1000+1)
	}
	if c.Misses() != miss {
		t.Fatal("all four lines must be resident in a 4-way single-set cache")
	}
	c.FetchRange(9000, 9001) // evicts LRU
	if s := c.FetchRange(3000, 3001); s == 0 {
		t.Fatal("LRU line must have been evicted")
	}
}
