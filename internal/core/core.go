// Package core implements the paper's primary contribution: superblock
// formation (trace selection + tail duplication + enlargement) driven
// either by classical edge profiles or by general path profiles.
//
// The edge-based path follows Hwu et al.'s superblock construction:
// mutual-most-likely trace selection, tail duplication, then the three
// separate enlarging optimizations — branch target expansion, loop
// peeling, and loop unrolling (paper §2.1). The path-based variant
// replaces selection with the most-likely-path-successor rule and
// replaces all three enlarging optimizations with the single unified
// path-driven enlargement of Figure 2 (§2.2).
//
// Formation runs on a clone of the input program and produces a
// transformed program whose blocks are partitioned into superblocks,
// each with a single entry at its head block. The companion compaction
// pass (internal/sched) later merges and schedules each superblock.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pathsched/internal/ir"
	"pathsched/internal/profile"
)

// Method selects the formation strategy.
type Method int

const (
	// EdgeBased is classical superblock formation from point profiles.
	EdgeBased Method = iota
	// PathBased is the paper's formation from general path profiles.
	PathBased
)

func (m Method) String() string {
	if m == PathBased {
		return "path"
	}
	return "edge"
}

// Config parameterizes formation. The zero value is not useful; start
// from DefaultConfig. Matching the paper's methodology, the thresholds
// are shared between the two methods (§2.3: "We apply similar
// thresholds to both scheduling approaches").
type Config struct {
	Method Method

	// Edge must be set for EdgeBased; Path for PathBased.
	Edge *profile.EdgeProfile
	Path *profile.PathProfile

	// UnrollFactor bounds edge-based loop unrolling and peeling
	// (paper: 4 for "M4", 16 for "M16").
	UnrollFactor int

	// MaxLoopHeads bounds how many superblock-loop heads path-driven
	// enlargement may pass through (paper: 4, giving "P4").
	MaxLoopHeads int

	// StopNonLoopAtFirstHead is the "P4e" variant: enlargement of a
	// superblock that is not itself a superblock loop stops at the
	// first superblock head of any kind, so non-loop superblocks use
	// only tail-duplicated code (§4).
	StopNonLoopAtFirstHead bool

	// MinExecFreq gates enlargement: superblocks whose head executed
	// fewer times are left alone, bounding cold-code expansion.
	MinExecFreq int64

	// CompletionMin gates path-based enlargement: only superblocks
	// whose exact completion ratio (path frequency of the whole block
	// sequence over head frequency) reaches this value are enlarged —
	// the "user-specified high frequency" of §2.2.
	CompletionMin float64

	// ExpandProb gates edge-based branch target expansion: the final
	// branch must reach its most likely target with at least this
	// probability.
	ExpandProb float64

	// MaxSBInstrs caps a superblock's instruction count during
	// enlargement (the "preset threshold" of §2.2).
	MaxSBInstrs int

	// Parallelism bounds concurrent per-procedure formation (0 =
	// GOMAXPROCS, 1 = serial). Procedures are independent given the
	// frozen profiles, and superblock ids are per-procedure, so results
	// are identical at any setting; the pipeline forwards its own knob
	// here.
	Parallelism int

	// GrowUpward enables upward trace growth for the path-based
	// selector: after downward growth stalls, the trace is extended
	// at its head by the most likely path *predecessor*. The paper's
	// implementation omitted this and predicted no noticeable benefit
	// (§2.2, footnote 2); the option exists to test that prediction.
	GrowUpward bool
}

// DefaultConfig returns the shared baseline parameters; callers then
// pick a Method, profiles, and scheme knobs.
func DefaultConfig() Config {
	return Config{
		UnrollFactor:  4,
		MaxLoopHeads:  4,
		MinExecFreq:   32,
		CompletionMin: 0.60,
		ExpandProb:    0.60,
		MaxSBInstrs:   512,
	}
}

// Superblock is a single-entry, multiple-exit sequence of blocks in the
// transformed program.
type Superblock struct {
	ID     int
	Proc   ir.ProcID
	Blocks []ir.BlockID // in trace order; Blocks[0] is the unique entry

	// IsLoop records whether the superblock's last block most likely
	// jumps back to its head (a "superblock loop", §2.1).
	IsLoop bool

	// CompletionRatio, for path-based formation, is the exact fraction
	// of entries that run the (depth-trimmed) block sequence to its
	// end — the quantity edge profiles can only bound (Figure 1).
	CompletionRatio float64

	// EntryFreq estimates how often control enters the head;
	// CompleteFreq, for path-based formation, is the exact frequency
	// with which the initially selected block sequence ran to
	// completion (both measured on the training input).
	EntryFreq    int64
	CompleteFreq int64
}

// Result is the outcome of formation.
type Result struct {
	// Prog is the transformed program (a private clone of the input).
	Prog *ir.Program
	// Superblocks lists every superblock per procedure; together they
	// partition each procedure's reachable blocks.
	Superblocks map[ir.ProcID][]*Superblock
	// Stats summarizes the work done, for reports and tests.
	Stats Stats
}

// Stats counts formation activity.
type Stats struct {
	Traces        int // initial traces selected
	TailDups      int // blocks cloned by tail duplication
	EnlargeCopies int // blocks cloned by enlargement
	Unrolled      int // edge-based: superblock loops unrolled
	Peeled        int // edge-based: superblock loops peeled
	Expanded      int // edge-based: branch target expansions
}

// add folds one procedure's stats into the aggregate.
func (s *Stats) add(o Stats) {
	s.Traces += o.Traces
	s.TailDups += o.TailDups
	s.EnlargeCopies += o.EnlargeCopies
	s.Unrolled += o.Unrolled
	s.Peeled += o.Peeled
	s.Expanded += o.Expanded
}

// forEachProc runs fn(0..n-1) with at most `parallelism` goroutines
// (0 = GOMAXPROCS, 1 = serial without spawning). It mirrors the
// pipeline's bounded fan-out, which core cannot import.
func forEachProc(n, parallelism int, fn func(int)) {
	limit := parallelism
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if limit == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if limit > n {
		limit = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(limit)
	for w := 0; w < limit; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Form runs superblock formation over every procedure of prog and
// returns the transformed program with its superblock partition. The
// input program is not modified.
func Form(prog *ir.Program, cfg Config) (*Result, error) {
	switch cfg.Method {
	case EdgeBased:
		if cfg.Edge == nil {
			return nil, fmt.Errorf("core: edge-based formation requires an edge profile")
		}
	case PathBased:
		if cfg.Path == nil {
			return nil, fmt.Errorf("core: path-based formation requires a path profile")
		}
	default:
		return nil, fmt.Errorf("core: unknown method %d", cfg.Method)
	}
	out := ir.CloneProgram(prog)
	res := &Result{Prog: out, Superblocks: map[ir.ProcID][]*Superblock{}}
	// Procedures are formed independently: each former touches only its
	// own proc and reads the frozen (immutable) profiles. Per-proc
	// outputs are merged in proc order below, so parallel and serial
	// runs produce identical Results.
	formers := make([]*former, len(out.Procs))
	errs := make([]error, len(out.Procs))
	forEachProc(len(out.Procs), cfg.Parallelism, func(i int) {
		p := out.Procs[i]
		normalizeBranches(p)
		f := &former{cfg: cfg, proc: p}
		formers[i] = f
		if err := f.run(); err != nil {
			errs[i] = fmt.Errorf("core: proc %s: %w", p.Name, err)
		}
	})
	for i, f := range formers {
		if errs[i] != nil {
			return nil, errs[i]
		}
		res.Superblocks[f.proc.ID] = f.sbs
		res.Stats.add(f.stats)
	}
	if err := ir.Verify(out); err != nil {
		return nil, fmt.Errorf("core: formation produced invalid IR: %w", err)
	}
	if err := CheckInvariants(res); err != nil {
		return nil, err
	}
	return res, nil
}

// normalizeBranches rewrites degenerate conditional branches whose two
// targets coincide into unconditional jumps, so that every block has at
// most one edge per distinct successor and superblock linkage stays
// unambiguous.
func normalizeBranches(p *ir.Proc) {
	for _, b := range p.Blocks {
		t := b.Terminator()
		if t.Op == ir.OpBr && t.Targets[0] == t.Targets[1] {
			*t = ir.Jmp(t.Targets[0])
		}
	}
}

// former carries per-procedure formation state. It owns everything it
// mutates (one procedure of the cloned program plus local stats), so
// formers for different procedures may run concurrently.
type former struct {
	cfg   Config
	proc  *ir.Proc
	stats Stats

	cfgGraph *ir.CFG // CFG of the *original* block set (pre-duplication)

	// traces are the initial selection over original blocks.
	traces [][]ir.BlockID

	// sbs collects this procedure's superblocks as they are built.
	sbs []*Superblock

	// headOf maps an original block id to the trace-derived superblock
	// it heads. Only initial traces contribute: the paper's "is s a
	// superblock head" tests are about the selected partition of the
	// original CFG, so tail-duplication clone chains do not register
	// here even though they are superblocks for compaction purposes.
	headOf map[ir.BlockID]*Superblock
}

// isHead reports whether original block o heads an initial trace.
func (f *former) isHead(o ir.BlockID) bool { return f.headOf[o] != nil }

// isCFGSucc reports whether to is an actual CFG successor of from in
// the original graph. Path profiles gathered with cross-activation
// windows can record block sequences that span a return-and-resume, so
// formation must never trust a path extension that has no edge.
func (f *former) isCFGSucc(from, to ir.BlockID) bool {
	for _, s := range f.cfgGraph.Succs(from) {
		if s == to {
			return true
		}
	}
	return false
}

// isLoopHead reports whether original block o heads a superblock loop.
func (f *former) isLoopHead(o ir.BlockID) bool {
	sb := f.headOf[o]
	return sb != nil && sb.IsLoop
}

func (f *former) run() error {
	f.cfgGraph = ir.NewCFG(f.proc)
	f.selectTraces()
	f.stats.Traces += len(f.traces)
	f.initTraceSuperblocks()
	f.fixSideEntrances()
	f.indexHeads()
	f.markLoops()
	f.enlargeAll()
	// Path enlargement can stop with a copy still branching into the
	// middle of another superblock; restore the single-entry invariant.
	f.fixSideEntrances()
	f.annotate()
	return nil
}

// indexHeads records which original blocks head trace-derived
// superblocks; the enlargement rules consult this via origin ids.
// Trace superblocks keep their original head block (ids are preserved
// by selection), so head id == head origin identifies them.
func (f *former) indexHeads() {
	f.headOf = map[ir.BlockID]*Superblock{}
	for _, sb := range f.sbs {
		head := f.proc.Block(sb.Blocks[0])
		if head.Origin == head.ID {
			f.headOf[head.Origin] = sb
		}
	}
}

// annotate writes the final superblock partition into block metadata.
func (f *former) annotate() {
	for _, sb := range f.sbs {
		for i, bid := range sb.Blocks {
			b := f.proc.Block(bid)
			b.SBID = int32(sb.ID)
			b.SBIndex = int32(i)
		}
	}
}

// blockFreq returns the training-run execution frequency of an original
// block under whichever profile drives formation.
func (f *former) blockFreq(b ir.BlockID) int64 {
	if f.cfg.Method == PathBased {
		return f.cfg.Path.BlockFreq(f.proc.ID, b)
	}
	return f.cfg.Edge.BlockFreq(f.proc.ID, b)
}

// edgeFreq is the analogous edge-frequency query.
func (f *former) edgeFreq(from, to ir.BlockID) int64 {
	if f.cfg.Method == PathBased {
		return f.cfg.Path.EdgeFreq(f.proc.ID, from, to)
	}
	return f.cfg.Edge.EdgeFreq(f.proc.ID, from, to)
}

// CheckInvariants validates the formation result:
//
//   - every reachable block belongs to exactly one superblock;
//   - superblocks are single-entry: an edge may only target a
//     superblock head, except the unique fall-through edge from each
//     superblock block to its successor within the same superblock;
//   - within a superblock, block i+1's only predecessor is block i.
//
// It is exported because integration tests and the pipeline re-check
// invariants after every transformation step.
func CheckInvariants(res *Result) error {
	// Sorted procedure order so the first-reported violation is stable
	// run to run.
	pids := make([]ir.ProcID, 0, len(res.Superblocks))
	for pid := range res.Superblocks {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		sbs := res.Superblocks[pid]
		p := res.Prog.Proc(pid)
		inSB := map[ir.BlockID]struct {
			sb  *Superblock
			idx int
		}{}
		for _, sb := range sbs {
			for i, b := range sb.Blocks {
				if _, dup := inSB[b]; dup {
					return fmt.Errorf("core: %s/b%d in two superblocks", p.Name, b)
				}
				inSB[b] = struct {
					sb  *Superblock
					idx int
				}{sb, i}
			}
		}
		if e, ok := inSB[p.Entry().ID]; !ok || e.idx != 0 {
			return fmt.Errorf("core: %s: procedure entry must head a superblock", p.Name)
		}
		g := ir.NewCFG(p)
		for _, b := range p.Blocks {
			if !g.Reachable(b.ID) {
				continue
			}
			if _, ok := inSB[b.ID]; !ok {
				return fmt.Errorf("core: %s/b%d reachable but not in any superblock", p.Name, b.ID)
			}
			for _, s := range g.Succs(b.ID) {
				ts, ok := inSB[s]
				if !ok {
					continue // target unreachable? impossible, but harmless
				}
				if ts.idx == 0 {
					continue // edges into heads are always fine
				}
				fs := inSB[b.ID]
				if fs.sb != ts.sb || fs.idx != ts.idx-1 {
					return fmt.Errorf("core: %s: edge b%d→b%d enters superblock %d mid-body",
						p.Name, b.ID, s, ts.sb.ID)
				}
			}
		}
	}
	return nil
}
