package core

import (
	"math/rand"
	"testing"

	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/profile"
)

// profiles runs prog on the interpreter once, feeding both profilers.
func profiles(t *testing.T, prog *ir.Program) (*profile.EdgeProfile, *profile.PathProfile) {
	t.Helper()
	ep := profile.NewEdgeProfiler(prog)
	pp := profile.NewPathProfiler(prog, profile.PathConfig{})
	if _, err := interp.Run(prog, interp.Config{Observer: profile.Multi{ep, pp}}); err != nil {
		t.Fatalf("training run: %v", err)
	}
	return ep.Profile(), pp.Profile()
}

func form(t *testing.T, prog *ir.Program, method Method, mut func(*Config)) *Result {
	t.Helper()
	e, p := profiles(t, prog)
	cfg := DefaultConfig()
	cfg.Method = method
	cfg.Edge, cfg.Path = e, p
	cfg.MinExecFreq = 2
	if mut != nil {
		mut(&cfg)
	}
	res, err := Form(prog, cfg)
	if err != nil {
		t.Fatalf("Form(%v): %v", method, err)
	}
	return res
}

// mustBehaveSame checks the transformed program is observationally
// equivalent to the original.
func mustBehaveSame(t *testing.T, orig, formed *ir.Program) {
	t.Helper()
	r1, err := interp.Run(orig, interp.Config{})
	if err != nil {
		t.Fatalf("original run: %v", err)
	}
	r2, err := interp.Run(formed, interp.Config{})
	if err != nil {
		t.Fatalf("formed run: %v", err)
	}
	if r1.Ret != r2.Ret {
		t.Fatalf("ret diverged: %d vs %d", r1.Ret, r2.Ret)
	}
	if len(r1.Output) != len(r2.Output) {
		t.Fatalf("output length diverged: %d vs %d", len(r1.Output), len(r2.Output))
	}
	for i := range r1.Output {
		if r1.Output[i] != r2.Output[i] {
			t.Fatalf("output[%d] diverged: %d vs %d", i, r1.Output[i], r2.Output[i])
		}
	}
}

// loopWithExit builds: entry → head; head: if i<n → body else exit;
// body: work, if (i%4==3) → rare else common; both → latch → head.
// The common/rare split creates a dominant path with a secondary path
// every 4th iteration (the paper's "alt" shape).
func altLoop(n int64) *ir.Program {
	bd := ir.NewBuilder("alt", 64)
	pb := bd.Proc("main")
	entry, head, body, common, rare, latch, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, sum, c, tmp = 1, 2, 3, 4
	entry.Add(ir.MovI(i, 0), ir.MovI(sum, 0))
	entry.Jmp(head.ID())
	head.Add(ir.CmpLTI(c, i, n))
	head.Br(c, body.ID(), exit.ID())
	body.Add(ir.AndI(tmp, i, 3), ir.CmpEQI(c, tmp, 3))
	body.Br(c, rare.ID(), common.ID())
	common.Add(ir.AddI(sum, sum, 1))
	common.Jmp(latch.ID())
	rare.Add(ir.AddI(sum, sum, 100))
	rare.Jmp(latch.ID())
	latch.Add(ir.AddI(i, i, 1))
	latch.Jmp(head.ID())
	exit.Add(ir.Emit(sum))
	exit.Ret(sum)
	return bd.Finish()
}

func TestEdgeSelectionMutualMostLikely(t *testing.T) {
	prog := altLoop(400)
	res := form(t, prog, EdgeBased, func(c *Config) { c.UnrollFactor = 1 })
	sbs := res.Superblocks[0]
	// The hottest superblock should start at the loop head and follow
	// head→body→common→latch.
	var hot *Superblock
	for _, sb := range sbs {
		if hot == nil || sb.EntryFreq > hot.EntryFreq {
			hot = sb
		}
	}
	origins := make([]ir.BlockID, len(hot.Blocks))
	for i, b := range hot.Blocks {
		origins[i] = res.Prog.Proc(0).Block(b).Origin
	}
	want := []ir.BlockID{1, 2, 3, 5} // head, body, common, latch
	if len(origins) != len(want) {
		t.Fatalf("hot trace origins = %v, want %v", origins, want)
	}
	for i := range want {
		if origins[i] != want[i] {
			t.Fatalf("hot trace origins = %v, want %v", origins, want)
		}
	}
	if !hot.IsLoop {
		t.Fatal("loop trace must be marked as superblock loop")
	}
	mustBehaveSame(t, prog, res.Prog)
}

func TestPathSelectionMatchesOnSimpleLoop(t *testing.T) {
	prog := altLoop(400)
	res := form(t, prog, PathBased, func(c *Config) { c.MaxLoopHeads = 0 })
	mustBehaveSame(t, prog, res.Prog)
	if err := CheckInvariants(res); err != nil {
		t.Fatal(err)
	}
}

// sideEntranceProg: A branches to B or X; X jumps to B (side entrance);
// B continues to C. Trace ABC gets a side entrance from X at B.
func sideEntranceProg() *ir.Program {
	bd := ir.NewBuilder("side", 64)
	pb := bd.Proc("main")
	loopH, a, x, b, c, latch, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, s, cond, tmp = 1, 2, 3, 4
	loopH.Add(ir.CmpLTI(cond, i, 300))
	loopH.Br(cond, a.ID(), exit.ID())
	a.Add(ir.AndI(tmp, i, 7), ir.CmpLEI(cond, tmp, 5))
	a.Br(cond, b.ID(), x.ID()) // mostly to B
	x.Add(ir.AddI(s, s, 10))
	x.Jmp(b.ID()) // side entrance into trace at B
	b.Add(ir.AddI(s, s, 1))
	b.Jmp(c.ID())
	c.Add(ir.Emit(s))
	c.Jmp(latch.ID())
	latch.Add(ir.AddI(i, i, 1))
	latch.Jmp(loopH.ID())
	exit.Ret(s)
	return bd.Finish()
}

func TestTailDuplicationRemovesSideEntrances(t *testing.T) {
	prog := sideEntranceProg()
	for _, method := range []Method{EdgeBased, PathBased} {
		res := form(t, prog, method, nil)
		if err := CheckInvariants(res); err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if res.Stats.TailDups == 0 {
			t.Fatalf("%v: expected tail duplication to fire", method)
		}
		mustBehaveSame(t, prog, res.Prog)
	}
}

func TestEdgeUnrollCreatesCopies(t *testing.T) {
	prog := altLoop(4000)
	res := form(t, prog, EdgeBased, func(c *Config) { c.UnrollFactor = 4 })
	if res.Stats.Unrolled == 0 {
		t.Fatal("high-iteration superblock loop should unroll")
	}
	mustBehaveSame(t, prog, res.Prog)
	// The unrolled superblock should contain ~4x the body blocks.
	var hot *Superblock
	for _, sb := range res.Superblocks[0] {
		if hot == nil || len(sb.Blocks) > len(hot.Blocks) {
			hot = sb
		}
	}
	if len(hot.Blocks) < 12 {
		t.Fatalf("unrolled superblock has %d blocks, want >= 12", len(hot.Blocks))
	}
}

// lowIterProg: an outer hot loop contains an inner loop that iterates
// exactly three times per entry — a peeling candidate (average
// iteration count below the unroll factor of 4).
func lowIterProg() *ir.Program {
	bd := ir.NewBuilder("lowiter", 64)
	pb := bd.Proc("main")
	entry, oh, ob, ih, ol, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, j, s, c = 1, 2, 3, 4
	entry.Add(ir.MovI(i, 0), ir.MovI(s, 0))
	entry.Jmp(oh.ID())
	oh.Add(ir.CmpLTI(c, i, 200))
	oh.Br(c, ob.ID(), exit.ID())
	ob.Add(ir.MovI(j, 0))
	ob.Jmp(ih.ID())
	ih.Add(ir.AddI(s, s, 1), ir.AddI(j, j, 1), ir.CmpLTI(c, j, 3))
	ih.Br(c, ih.ID(), ol.ID()) // inner loop: exactly 3 iterations
	ol.Add(ir.AddI(i, i, 1))
	ol.Jmp(oh.ID())
	exit.Add(ir.Emit(s))
	exit.Ret(s)
	return bd.Finish()
}

func TestEdgePeelLowIterationLoop(t *testing.T) {
	prog := lowIterProg()
	res := form(t, prog, EdgeBased, func(c *Config) { c.UnrollFactor = 4 })
	if res.Stats.Peeled == 0 {
		t.Fatal("3-iteration inner loop should peel, not unroll")
	}
	mustBehaveSame(t, prog, res.Prog)
	if err := CheckInvariants(res); err != nil {
		t.Fatal(err)
	}
}

func TestPathEnlargementPeelsViaPathHistory(t *testing.T) {
	// The same low-iteration loop under path-based formation: paths see
	// "ih ih ih ol" (three iterations then exit), so enlargement through
	// the loop head appends copies and then follows the exit — peeling
	// without a peeling optimization (paper Figure 3 discussion).
	prog := lowIterProg()
	res := form(t, prog, PathBased, nil)
	if res.Stats.EnlargeCopies == 0 {
		t.Fatal("path enlargement should have appended copies")
	}
	mustBehaveSame(t, prog, res.Prog)
}

func TestP4eStopsNonLoopEnlargementAtFirstHead(t *testing.T) {
	prog := altLoop(400)
	e, p := profiles(t, prog)

	mk := func(p4e bool) Stats {
		cfg := DefaultConfig()
		cfg.Method = PathBased
		cfg.Edge, cfg.Path = e, p
		cfg.MinExecFreq = 2
		cfg.StopNonLoopAtFirstHead = p4e
		res, err := Form(prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		mustBehaveSame(t, prog, res.Prog)
		return res.Stats
	}
	p4 := mk(false)
	p4e := mk(true)
	if p4e.EnlargeCopies > p4.EnlargeCopies {
		t.Fatalf("P4e copied more than P4: %d > %d", p4e.EnlargeCopies, p4.EnlargeCopies)
	}
}

func TestBranchTargetExpansion(t *testing.T) {
	// Straight-line chain of three traces separated by a cold diamond,
	// so the hot superblock's final branch strongly prefers one target
	// superblock: BTE should append it.
	bd := ir.NewBuilder("bte", 64)
	pb := bd.Proc("main")
	lh, a, b1, b2, join, latch, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, s, c, tmp = 1, 2, 3, 4
	lh.Add(ir.CmpLTI(c, i, 500))
	lh.Br(c, a.ID(), exit.ID())
	a.Add(ir.AndI(tmp, i, 15), ir.CmpEQI(c, tmp, 15))
	a.Br(c, b2.ID(), b1.ID()) // 15/16 to b1
	b1.Add(ir.AddI(s, s, 1))
	b1.Jmp(join.ID())
	b2.Add(ir.AddI(s, s, 50))
	b2.Jmp(join.ID())
	join.Add(ir.AddI(s, s, 2))
	join.Jmp(latch.ID())
	latch.Add(ir.AddI(i, i, 1))
	latch.Jmp(lh.ID())
	exit.Add(ir.Emit(s))
	exit.Ret(s)
	prog := bd.Finish()

	res := form(t, prog, EdgeBased, func(c *Config) { c.UnrollFactor = 1 })
	mustBehaveSame(t, prog, res.Prog)
	if err := CheckInvariants(res); err != nil {
		t.Fatal(err)
	}
}

func TestFormRejectsMissingProfiles(t *testing.T) {
	prog := altLoop(8)
	cfg := DefaultConfig()
	cfg.Method = EdgeBased
	if _, err := Form(prog, cfg); err == nil {
		t.Fatal("edge-based formation without an edge profile must fail")
	}
	cfg.Method = PathBased
	if _, err := Form(prog, cfg); err == nil {
		t.Fatal("path-based formation without a path profile must fail")
	}
}

func TestFormDoesNotMutateInput(t *testing.T) {
	prog := altLoop(100)
	before := prog.Dump()
	_ = form(t, prog, PathBased, nil)
	_ = form(t, prog, EdgeBased, nil)
	if prog.Dump() != before {
		t.Fatal("Form mutated the input program")
	}
}

// randStructuredProg emits a deterministic random program built from
// nested loops, biased branches, memory traffic, and a helper call —
// structurally rich but guaranteed to terminate.
func randStructuredProg(seed int64) *ir.Program {
	rng := rand.New(rand.NewSource(seed))
	bd := ir.NewBuilder("rand", 256)
	// Seed memory with pseudo-random data the branches will consume.
	vals := make([]int64, 64)
	for i := range vals {
		vals[i] = int64(rng.Intn(256))
	}
	bd.Data(0, vals...)

	helper := bd.Proc("helper")
	hEntry, hThen, hElse, hOut := helper.NewBlock(), helper.NewBlock(), helper.NewBlock(), helper.NewBlock()
	hEntry.Add(ir.AndI(8, 1, 1))
	hEntry.Br(8, hThen.ID(), hElse.ID())
	hThen.Add(ir.AddI(0, 1, 3))
	hThen.Jmp(hOut.ID())
	hElse.Add(ir.MulI(0, 1, 2))
	hElse.Jmp(hOut.ID())
	hOut.Ret(0)

	pb := bd.Proc("main")
	const i, j, s, c, tmp, addr = 1, 2, 3, 4, 5, 6
	entry := pb.NewBlock()
	oh, obody := pb.NewBlock(), pb.NewBlock()
	exit := pb.NewBlock()
	entry.Add(ir.MovI(i, 0), ir.MovI(s, 0))
	entry.Jmp(oh.ID())
	outerN := int64(20 + rng.Intn(60))
	oh.Add(ir.CmpLTI(c, i, outerN))
	oh.Br(c, obody.ID(), exit.ID())

	// Body: a chain of 2-5 random diamonds, then an inner loop, then a
	// call, then the latch.
	cur := obody
	nd := 2 + rng.Intn(4)
	for d := 0; d < nd; d++ {
		thenB, elseB, join := pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
		mask := int64(1) << uint(rng.Intn(4))
		cur.Add(
			ir.AndI(tmp, i, 63),
			ir.AddI(addr, tmp, 0),
			ir.Load(tmp, addr, 0),
			ir.AndI(tmp, tmp, mask),
		)
		cur.Br(tmp, thenB.ID(), elseB.ID())
		thenB.Add(ir.AddI(s, s, int64(d+1)))
		thenB.Jmp(join.ID())
		elseB.Add(ir.XorI(s, s, int64(d+7)))
		elseB.Jmp(join.ID())
		cur = join
	}
	innerN := int64(1 + rng.Intn(5))
	ih := pb.NewBlock()
	cur.Add(ir.MovI(j, 0))
	cur.Jmp(ih.ID())
	after := pb.NewBlock()
	ih.Add(ir.AddI(s, s, 1), ir.AddI(j, j, 1), ir.CmpLTI(c, j, innerN))
	ih.Br(c, ih.ID(), after.ID())
	latch := pb.NewBlock()
	after.Call(s, helper.ID(), latch.ID(), s)
	latch.Add(ir.AddI(i, i, 1), ir.Emit(s))
	latch.Jmp(oh.ID())
	exit.Add(ir.Emit(s))
	exit.Ret(s)
	return bd.Finish()
}

func TestFormPreservesSemanticsOnRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		prog := randStructuredProg(seed)
		for _, method := range []Method{EdgeBased, PathBased} {
			res := form(t, prog, method, nil)
			if err := CheckInvariants(res); err != nil {
				t.Fatalf("seed %d %v: %v", seed, method, err)
			}
			mustBehaveSame(t, prog, res.Prog)
		}
		// P4e variant too.
		res := form(t, prog, PathBased, func(c *Config) { c.StopNonLoopAtFirstHead = true })
		mustBehaveSame(t, prog, res.Prog)
		// And M16.
		res = form(t, prog, EdgeBased, func(c *Config) { c.UnrollFactor = 16 })
		mustBehaveSame(t, prog, res.Prog)
		_ = res
	}
}

func TestEveryReachableBlockInExactlyOneSuperblock(t *testing.T) {
	prog := randStructuredProg(42)
	for _, method := range []Method{EdgeBased, PathBased} {
		res := form(t, prog, method, nil)
		for pid, sbs := range res.Superblocks {
			p := res.Prog.Proc(pid)
			seen := map[ir.BlockID]int{}
			for _, sb := range sbs {
				for _, b := range sb.Blocks {
					seen[b]++
				}
			}
			g := ir.NewCFG(p)
			for _, b := range p.Blocks {
				if g.Reachable(b.ID) && seen[b.ID] != 1 {
					t.Fatalf("%v: %s/b%d appears %d times in partition",
						method, p.Name, b.ID, seen[b.ID])
				}
			}
		}
	}
}
