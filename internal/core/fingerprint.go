package core

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"

	"pathsched/internal/ir"
)

// Fingerprint returns a stable digest of every config field that
// influences the formed program: the method and all selection,
// duplication, and enlargement thresholds.
//
// Two inputs are deliberately excluded and must be keyed separately by
// callers that use the digest as a cache key:
//
//   - Edge and Path carry the training profiles. They are functions of
//     the pristine training build and the profiling parameters, so the
//     pipeline keys them as (pristine-build fingerprint, path depth,
//     cross-activation) alongside this digest.
//   - Parallelism only changes how the work is scheduled; formation is
//     pinned worker-count-independent, so it cannot affect the output.
func (c Config) Fingerprint() ir.Digest {
	h := sha256.New()
	word(h, uint64(len("pathsched-core-cfg-v1")))
	h.Write([]byte("pathsched-core-cfg-v1"))
	word(h, uint64(c.Method))
	word(h, uint64(c.UnrollFactor))
	word(h, uint64(c.MaxLoopHeads))
	wbool(h, c.StopNonLoopAtFirstHead)
	word(h, uint64(c.MinExecFreq))
	word(h, math.Float64bits(c.CompletionMin))
	word(h, math.Float64bits(c.ExpandProb))
	word(h, uint64(c.MaxSBInstrs))
	wbool(h, c.GrowUpward)

	var d ir.Digest
	h.Sum(d[:0])
	return d
}

func word(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

func wbool(h hash.Hash, b bool) {
	if b {
		word(h, 1)
	} else {
		word(h, 0)
	}
}
