package core

import (
	"sort"

	"pathsched/internal/ir"
)

// enlargeAll applies the configured enlargement strategy to every
// sufficiently hot superblock, hottest first. Afterwards the caller
// re-runs the side-entrance fixpoint, because path-driven enlargement
// may stop with its last appended copy still branching into the middle
// of another superblock.
func (f *former) enlargeAll() {
	order := make([]*Superblock, len(f.sbs))
	copy(order, f.sbs)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].EntryFreq != order[j].EntryFreq {
			return order[i].EntryFreq > order[j].EntryFreq
		}
		return order[i].ID < order[j].ID
	})
	for _, sb := range order {
		if sb.EntryFreq < f.cfg.MinExecFreq {
			continue
		}
		if f.cfg.Method == PathBased {
			// §2.2: enlarge only superblocks whose exact completion
			// ratio is high; edge profiles cannot even compute this.
			if sb.CompletionRatio < f.cfg.CompletionMin {
				continue
			}
			f.enlargePath(sb)
		} else {
			f.enlargeEdge(sb)
		}
	}
}

// originsOf maps a block sequence to the original blocks it was cloned
// from, the coordinate system of all profile queries.
func (f *former) originsOf(blocks []ir.BlockID) []ir.BlockID {
	out := make([]ir.BlockID, len(blocks))
	for i, b := range blocks {
		out[i] = f.proc.Block(b).Origin
	}
	return out
}

func (f *former) instrCount(sb *Superblock) int {
	n := 0
	for _, b := range sb.Blocks {
		n += len(f.proc.Block(b).Instrs)
	}
	return n
}

// enlargePath is Figure 2's enlarge_trace: repeatedly append a copy of
// the most-likely-path-successor block. Crossing the head of a non-loop
// superblock stops enlargement; crossing a superblock-loop head is
// allowed MaxLoopHeads times, which is what makes a single mechanism
// subsume branch target expansion, loop peeling, and loop unrolling.
// Under the P4e variant, a candidate that is not itself a superblock
// loop additionally stops at the first head of any kind.
func (f *former) enlargePath(sb *Superblock) {
	pid := f.proc.ID
	pf := f.cfg.Path
	origins := f.originsOf(sb.Blocks)
	instrs := f.instrCount(sb)
	loopHeads := 0
	for {
		q := pf.TrimToDepth(pid, origins)
		s, fq := pf.MostLikelyPathSuccessor(pid, q)
		if s == ir.NoBlock || fq == 0 {
			return
		}
		if !f.isCFGSucc(origins[len(origins)-1], s) {
			// Cross-activation path data can suggest extensions with no
			// CFG edge (a return-and-resume boundary); never follow them.
			return
		}
		if f.isHead(s) {
			if !f.isLoopHead(s) {
				return
			}
			if f.cfg.StopNonLoopAtFirstHead && !sb.IsLoop {
				return
			}
			if loopHeads >= f.cfg.MaxLoopHeads {
				return
			}
			loopHeads++
		}
		src := f.proc.Block(s)
		if instrs+len(src.Instrs) > f.cfg.MaxSBInstrs {
			return
		}
		f.appendCopy(sb, s)
		origins = append(origins, s)
		instrs += len(src.Instrs)
	}
}

// appendCopy clones original block s, appends it to sb, and redirects
// the superblock's current last block so that its edges toward s (or
// toward any copy of s, if tail duplication already redirected them)
// flow into the new clone.
func (f *former) appendCopy(sb *Superblock, s ir.BlockID) {
	last := f.proc.Block(sb.Blocks[len(sb.Blocks)-1])
	clone := ir.CloneBlockInto(f.proc, f.proc.Block(s))
	t := last.Terminator()
	for i, tgt := range t.Targets {
		if tgt != ir.NoBlock && f.proc.Block(tgt).Origin == s {
			t.Targets[i] = clone.ID
		}
	}
	sb.Blocks = append(sb.Blocks, clone.ID)
	f.stats.EnlargeCopies++
}

// enlargeEdge dispatches the three classical superblock-enlarging
// optimizations (§2.1): unrolling for high-iteration superblock loops,
// peeling for low-iteration ones, branch target expansion otherwise.
func (f *former) enlargeEdge(sb *Superblock) {
	if sb.IsLoop {
		head := sb.Blocks[0]
		last := sb.Blocks[len(sb.Blocks)-1]
		headFreq := f.blockFreq(head)
		backFreq := f.edgeFreq(last, head)
		outside := headFreq - backFreq
		if outside <= 0 {
			// Never observed entering from outside: treat as a
			// high-iteration loop.
			f.unrollLoop(sb)
			return
		}
		avgIter := float64(headFreq) / float64(outside)
		if avgIter >= float64(f.cfg.UnrollFactor) {
			f.unrollLoop(sb)
		} else {
			f.peelLoop(sb, int(avgIter+0.5))
		}
		return
	}
	f.expandBranchTarget(sb)
}

// cloneBody clones every block of body, wiring the copies' internal
// fall-through edges to each other; all other targets mirror the
// originals'.
func (f *former) cloneBody(body []ir.BlockID) []ir.BlockID {
	clones := make([]ir.BlockID, len(body))
	for j, b := range body {
		clones[j] = ir.CloneBlockInto(f.proc, f.proc.Block(b)).ID
	}
	for j := 0; j < len(clones)-1; j++ {
		ir.RedirectEdges(f.proc.Block(clones[j]), body[j+1], clones[j+1])
	}
	f.stats.EnlargeCopies += len(clones)
	return clones
}

// unrollLoop appends UnrollFactor-1 copies of the superblock-loop body;
// each copy's back edge feeds the next, and the final copy's back edge
// returns to the original head, "creating a much larger loop" (§2.1).
func (f *former) unrollLoop(sb *Superblock) {
	body := append([]ir.BlockID(nil), sb.Blocks...)
	bodyInstrs := f.instrCount(sb)
	head := body[0]
	// Clone every round *before* rewiring anything: the back edge of
	// the original body is about to be redirected, and copies must
	// reproduce the pristine loop, not a half-rewired one.
	var rounds [][]ir.BlockID
	total := bodyInstrs
	for u := 1; u < f.cfg.UnrollFactor; u++ {
		if total+bodyInstrs > f.cfg.MaxSBInstrs {
			break
		}
		rounds = append(rounds, f.cloneBody(body))
		total += bodyInstrs
	}
	prevLast := body[len(body)-1]
	for _, clones := range rounds {
		ir.RedirectEdges(f.proc.Block(prevLast), head, clones[0])
		sb.Blocks = append(sb.Blocks, clones...)
		prevLast = clones[len(clones)-1]
	}
	// The final copy's back edge still targets the original head,
	// closing the larger loop.
	f.stats.Unrolled++
}

// peelLoop builds a straight-line prologue of k copies of the loop
// body, redirects every outside entry into the prologue, and chains the
// final copy back into the original loop. The prologue becomes its own
// superblock whose completion corresponds to "the loop iterated more
// than k times".
func (f *former) peelLoop(sb *Superblock, k int) {
	if k < 1 {
		k = 1
	}
	bodyInstrs := f.instrCount(sb)
	if bodyInstrs == 0 {
		return
	}
	if max := f.cfg.MaxSBInstrs / bodyInstrs; k > max {
		k = max
	}
	if k < 1 {
		return
	}
	body := sb.Blocks
	head := body[0]

	// Outside predecessors of the head (everything but back edges from
	// within this superblock).
	inSB := map[ir.BlockID]bool{}
	for _, b := range body {
		inSB[b] = true
	}
	var outside []ir.BlockID
	for _, p := range buildPreds(f.proc)[head] {
		if !inSB[p] {
			outside = append(outside, p)
		}
	}
	if len(outside) == 0 {
		return
	}

	prologue := &Superblock{ID: len(f.sbs), Proc: f.proc.ID}
	var prevLast ir.BlockID = ir.NoBlock
	var entryFreq int64
	for i := 0; i < k; i++ {
		clones := f.cloneBody(body)
		if prevLast != ir.NoBlock {
			ir.RedirectEdges(f.proc.Block(prevLast), head, clones[0])
		}
		prologue.Blocks = append(prologue.Blocks, clones...)
		prevLast = clones[len(clones)-1]
	}
	for _, p := range outside {
		entryFreq += f.edgeFreq(f.proc.Block(p).Origin, f.proc.Block(head).Origin)
		ir.RedirectEdges(f.proc.Block(p), head, prologue.Blocks[0])
	}
	prologue.EntryFreq = entryFreq
	f.sbs = append(f.sbs, prologue)
	f.stats.Peeled++
}

// expandBranchTarget iteratively appends a copy of the superblock whose
// head the candidate's final branch most likely reaches, as long as the
// branch is sufficiently biased, the target is not a superblock loop,
// and the size budget holds (§2.1).
func (f *former) expandBranchTarget(sb *Superblock) {
	headSB := map[ir.BlockID]*Superblock{}
	for _, s := range f.sbs {
		headSB[s.Blocks[0]] = s
	}
	instrs := f.instrCount(sb)
	// Classical branch target expansion appends the target superblock
	// once per enlargement pass (§2.1); two rounds approximate IMPACT's
	// repeated application without unbounded growth.
	const maxExpansions = 2
	for n := 0; n < maxExpansions; n++ {
		last := f.proc.Block(sb.Blocks[len(sb.Blocks)-1])
		lastFreq := f.blockFreq(last.Origin)
		if lastFreq == 0 {
			return
		}
		s, fq := f.mostLikelySuccOrigin(last.Origin)
		if s == ir.NoBlock || float64(fq) < f.cfg.ExpandProb*float64(lastFreq) {
			return
		}
		// Locate the actual current target whose origin is s.
		var target ir.BlockID = ir.NoBlock
		for _, tgt := range last.Terminator().Targets {
			if tgt != ir.NoBlock && f.proc.Block(tgt).Origin == s {
				target = tgt
				break
			}
		}
		if target == ir.NoBlock {
			return
		}
		tsb := headSB[target]
		if tsb == nil || tsb == sb || tsb.IsLoop {
			return
		}
		add := f.instrCount(tsb)
		if instrs+add > f.cfg.MaxSBInstrs {
			return
		}
		clones := f.cloneBody(tsb.Blocks)
		ir.RedirectEdges(last, target, clones[0])
		sb.Blocks = append(sb.Blocks, clones...)
		instrs += add
		f.stats.Expanded++
	}
}

// mostLikelySuccOrigin returns the most likely successor of original
// block o under the driving profile, in original-block coordinates.
func (f *former) mostLikelySuccOrigin(o ir.BlockID) (ir.BlockID, int64) {
	if f.cfg.Method == PathBased {
		return f.cfg.Path.MostLikelyPathSuccessor(f.proc.ID, []ir.BlockID{o})
	}
	return f.cfg.Edge.MostLikelySucc(f.proc.ID, o)
}
