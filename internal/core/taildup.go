package core

import (
	"fmt"

	"pathsched/internal/ir"
)

// initTraceSuperblocks registers each selected trace as a superblock.
func (f *former) initTraceSuperblocks() {
	for _, trace := range f.traces {
		f.sbs = append(f.sbs, &Superblock{
			ID:     len(f.sbs),
			Proc:   f.proc.ID,
			Blocks: append([]ir.BlockID(nil), trace...),
		})
	}
}

// fixSideEntrances performs tail duplication (paper §2.1): any edge
// entering a superblock at position i ≥ 1 is redirected to a fresh copy
// of the superblock's tail blocks [i..n). The copy chain is itself a
// valid superblock (its interior blocks have a single predecessor
// each), so it joins the partition.
//
// Copies may themselves carry edges into the middle of other
// superblocks (their targets mirror the originals'), so duplication
// iterates to a fixed point. Termination is guaranteed because tails
// are memoized per (superblock, position) — every side entrance to the
// same spot shares one chain — and a chain cloned from position i is
// strictly shorter than its source, so the derivation depth is finite.
func (f *former) fixSideEntrances() {
	type key struct {
		sb  int
		pos int
	}
	chainFor := map[key]*Superblock{}

	const maxRounds = 10000
	for round := 0; ; round++ {
		if round == maxRounds {
			panic(fmt.Sprintf("core: tail duplication did not converge in %s", f.proc.Name))
		}
		preds := buildPreds(f.proc)

		changed := false
		for si := 0; si < len(f.sbs); si++ {
			sb := f.sbs[si]
			for i := 1; i < len(sb.Blocks); i++ {
				cur := sb.Blocks[i]
				prev := sb.Blocks[i-1]
				for _, p := range preds[cur] {
					if p == prev {
						continue
					}
					// Side entrance p→cur: redirect into the (shared)
					// duplicate of this superblock's tail.
					k := key{si, i}
					chain := chainFor[k]
					if chain == nil {
						chain = f.cloneTail(sb, i)
						chainFor[k] = chain
					}
					ir.RedirectEdges(f.proc.Block(p), cur, chain.Blocks[0])
					chain.EntryFreq += f.edgeFreq(f.proc.Block(p).Origin, f.proc.Block(cur).Origin)
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

// cloneTail copies sb.Blocks[i:] into a fresh superblock whose internal
// fall-through edges link the copies together; all other targets mirror
// the originals'.
func (f *former) cloneTail(sb *Superblock, i int) *Superblock {
	tail := sb.Blocks[i:]
	clones := make([]ir.BlockID, len(tail))
	for j, b := range tail {
		clones[j] = ir.CloneBlockInto(f.proc, f.proc.Block(b)).ID
	}
	for j := 0; j < len(clones)-1; j++ {
		ir.RedirectEdges(f.proc.Block(clones[j]), tail[j+1], clones[j+1])
	}
	f.stats.TailDups += len(clones)
	chain := &Superblock{
		ID:     len(f.sbs),
		Proc:   f.proc.ID,
		Blocks: clones,
	}
	f.sbs = append(f.sbs, chain)
	return chain
}

// buildPreds computes the predecessor lists of the current procedure.
func buildPreds(p *ir.Proc) map[ir.BlockID][]ir.BlockID {
	preds := map[ir.BlockID][]ir.BlockID{}
	for _, b := range p.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b.ID)
		}
	}
	return preds
}

// markLoops classifies each trace-derived superblock as a superblock
// loop ("superblocks whose last blocks are likely to jump to their
// first blocks", §2.1) and records entry and completion frequencies.
// The loop test is shared between methods: the last→head edge must be a
// back edge and must carry the majority of the last block's outgoing
// frequency.
func (f *former) markLoops() {
	pid := f.proc.ID
	for _, sb := range f.sbs {
		head := f.proc.Block(sb.Blocks[0])
		if head.Origin == head.ID {
			// Trace-derived superblock: its head is an original block,
			// so entry frequency is the head's profile count and
			// loop-ness is read off the original CFG. (Clone chains
			// had EntryFreq accumulated during duplication and are
			// never loops: their "back" edges target the original
			// trace's head, not their own.)
			sb.EntryFreq = f.blockFreq(head.ID)
			last := sb.Blocks[len(sb.Blocks)-1]
			if f.cfgGraph.IsBackEdge(last, head.ID) {
				backFreq := f.edgeFreq(last, head.ID)
				if 2*backFreq > f.blockFreq(last) {
					sb.IsLoop = true
				}
			}
		}
		if f.cfg.Method == PathBased {
			// Exact completion frequency of the selected sequence, on
			// the longest suffix the profile covers (§2.2).
			origins := f.originsOf(sb.Blocks)
			suffix := f.cfg.Path.TrimToDepth(pid, origins)
			if len(suffix) == 0 {
				continue
			}
			sb.CompleteFreq = f.cfg.Path.Freq(pid, suffix)
			if base := f.cfg.Path.Freq(pid, suffix[:1]); base > 0 {
				sb.CompletionRatio = float64(sb.CompleteFreq) / float64(base)
			}
		}
	}
}
