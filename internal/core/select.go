package core

import "pathsched/internal/ir"

// Trace selection partitions a procedure's blocks into traces. Both
// methods take seeds in decreasing block-frequency order; they differ
// in how a trace grows:
//
//   - Edge-based uses the mutual-most-likely heuristic of the
//     MultiFlow compiler (§2.1): B extends the trace after A only when
//     B is A's most likely successor *and* A is B's most likely
//     predecessor. Growth proceeds both downward and upward.
//   - Path-based (Figure 2) extends the trace by the
//     most-likely-path-successor: the CFG successor s maximizing the
//     exact frequency f(t·s) of the whole extended trace. Growth is
//     downward only; the paper's analysis predicts upward growth would
//     not noticeably help (§2.2 footnote).
//
// Both stop at back edges and at blocks already claimed by a trace, so
// traces never contain loops and the result is a partition. Blocks the
// training run never executed become singleton traces.
func (f *former) selectTraces() {
	switch f.cfg.Method {
	case PathBased:
		f.selectTracesPath()
	default:
		f.selectTracesEdge()
	}
	// Sweep up never-executed (or unreachable) blocks as singletons.
	taken := f.takenSet()
	for _, b := range f.proc.Blocks {
		if !taken[b.ID] {
			f.traces = append(f.traces, []ir.BlockID{b.ID})
		}
	}
}

func (f *former) takenSet() map[ir.BlockID]bool {
	taken := map[ir.BlockID]bool{}
	for _, t := range f.traces {
		for _, b := range t {
			taken[b] = true
		}
	}
	return taken
}

func (f *former) selectTracesEdge() {
	e := f.cfg.Edge
	pid := f.proc.ID
	entry := f.proc.Entry().ID
	taken := map[ir.BlockID]bool{}
	for _, seed := range e.BlocksByFreq(pid) {
		if taken[seed] {
			continue
		}
		trace := []ir.BlockID{seed}
		taken[seed] = true

		// Grow downward. The procedure entry may never become a trace
		// interior: activations begin there, which is an entry no CFG
		// edge (and hence no tail duplication) can see.
		for {
			last := trace[len(trace)-1]
			s, fq := e.MostLikelySucc(pid, last)
			if s == ir.NoBlock || fq == 0 || taken[s] || s == entry {
				break
			}
			if f.cfgGraph.IsBackEdge(last, s) {
				break
			}
			if p, _ := e.MostLikelyPred(pid, s); p != last {
				break // not mutual
			}
			trace = append(trace, s)
			taken[s] = true
		}
		// Grow upward from the seed (never past the procedure entry).
		for trace[0] != entry {
			head := trace[0]
			p, fq := e.MostLikelyPred(pid, head)
			if p == ir.NoBlock || fq == 0 || taken[p] {
				break
			}
			if f.cfgGraph.IsBackEdge(p, head) {
				break
			}
			if s, _ := e.MostLikelySucc(pid, p); s != head {
				break // not mutual
			}
			trace = append([]ir.BlockID{p}, trace...)
			taken[p] = true
		}
		f.traces = append(f.traces, trace)
	}
}

func (f *former) selectTracesPath() {
	pf := f.cfg.Path
	pid := f.proc.ID
	entry := f.proc.Entry().ID
	taken := map[ir.BlockID]bool{}
	for _, seed := range pf.BlocksByFreq(pid) {
		if taken[seed] {
			continue
		}
		trace := []ir.BlockID{seed}
		taken[seed] = true
		for {
			last := trace[len(trace)-1]
			q := pf.TrimToDepth(pid, trace)
			s, fq := pf.MostLikelyPathSuccessor(pid, q)
			if s == ir.NoBlock || fq == 0 || taken[s] || s == entry {
				break
			}
			if !f.isCFGSucc(last, s) || f.cfgGraph.IsBackEdge(last, s) {
				break
			}
			trace = append(trace, s)
			taken[s] = true
		}
		if f.cfg.GrowUpward {
			trace = f.growUpwardPath(trace, taken)
		}
		f.traces = append(f.traces, trace)
	}
}

// growUpwardPath extends a path-selected trace at its head: among the
// CFG predecessors p of the current head, pick the one maximizing the
// exact frequency f(p·t′) of the extended trace (t′ a depth-bounded
// prefix of the trace), subject to the usual back-edge, ownership, and
// entry-block rules. This is the capability the paper's footnote 2
// describes but does not implement.
func (f *former) growUpwardPath(trace []ir.BlockID, taken map[ir.BlockID]bool) []ir.BlockID {
	pf := f.cfg.Path
	pid := f.proc.ID
	entry := f.proc.Entry().ID
	for trace[0] != entry {
		head := trace[0]
		// Bound the query: one predecessor plus a prefix of the trace
		// must stay within the profile's exact range. Reuse the suffix
		// trimmer on the reversed problem by limiting the prefix length
		// conservatively to depth-1 blocks.
		prefLen := len(trace)
		if max := pf.Depth() - 1; prefLen > max {
			prefLen = max
		}
		var best ir.BlockID = ir.NoBlock
		var bestF int64
		for _, p := range f.cfgGraph.Preds(head) {
			if taken[p] {
				continue
			}
			if f.cfgGraph.IsBackEdge(p, head) {
				continue
			}
			seq := append([]ir.BlockID{p}, trace[:prefLen]...)
			if fq := pf.Freq(pid, seq); fq > bestF || (fq == bestF && fq > 0 && (best == ir.NoBlock || p < best)) {
				best, bestF = p, fq
			}
		}
		if best == ir.NoBlock || bestF == 0 {
			return trace
		}
		trace = append([]ir.BlockID{best}, trace...)
		taken[best] = true
	}
	return trace
}
