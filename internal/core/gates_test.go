package core

import (
	"testing"

	"pathsched/internal/ir"
)

// Tests for the formation thresholds ("we apply similar thresholds to
// both scheduling approaches", §2.3).

func TestMinExecFreqGatesEnlargement(t *testing.T) {
	prog := altLoop(400)
	// With the gate above every block's frequency, nothing enlarges.
	res := form(t, prog, PathBased, func(c *Config) { c.MinExecFreq = 1 << 40 })
	if res.Stats.EnlargeCopies != 0 {
		t.Fatalf("cold gate ignored: %d copies", res.Stats.EnlargeCopies)
	}
	resE := form(t, prog, EdgeBased, func(c *Config) { c.MinExecFreq = 1 << 40 })
	if resE.Stats.Unrolled+resE.Stats.Peeled+resE.Stats.Expanded != 0 {
		t.Fatalf("cold gate ignored by edge enlarger: %+v", resE.Stats)
	}
}

func TestCompletionMinGatesPathEnlargement(t *testing.T) {
	prog := altLoop(400)
	// The hot loop trace completes 75% of the time; a 0.99 gate must
	// block its enlargement while a 0.5 gate admits it.
	strict := form(t, prog, PathBased, func(c *Config) { c.CompletionMin = 0.99 })
	loose := form(t, prog, PathBased, func(c *Config) { c.CompletionMin = 0.5 })
	if strict.Stats.EnlargeCopies >= loose.Stats.EnlargeCopies {
		t.Fatalf("completion gate had no effect: strict %d vs loose %d copies",
			strict.Stats.EnlargeCopies, loose.Stats.EnlargeCopies)
	}
	mustBehaveSame(t, prog, strict.Prog)
	mustBehaveSame(t, prog, loose.Prog)
}

func TestMaxSBInstrsCapsEnlargement(t *testing.T) {
	prog := altLoop(4000)
	small := form(t, prog, PathBased, func(c *Config) { c.MaxSBInstrs = 24 })
	big := form(t, prog, PathBased, func(c *Config) { c.MaxSBInstrs = 512 })
	maxInstrs := func(r *Result) int {
		max := 0
		for _, sb := range r.Superblocks[0] {
			n := 0
			for _, b := range sb.Blocks {
				n += len(r.Prog.Proc(0).Block(b).Instrs)
			}
			if n > max {
				max = n
			}
		}
		return max
	}
	if m := maxInstrs(small); m > 24+12 { // one block of slack
		t.Fatalf("size cap ignored: superblock of %d instrs", m)
	}
	if maxInstrs(big) <= maxInstrs(small) {
		t.Fatal("raising the cap must allow bigger superblocks")
	}
	mustBehaveSame(t, prog, small.Prog)

	// Edge-based unrolling obeys the same cap.
	smallE := form(t, prog, EdgeBased, func(c *Config) { c.MaxSBInstrs = 24; c.UnrollFactor = 16 })
	if m := maxInstrs(smallE); m > 24+12 {
		t.Fatalf("unroll ignored size cap: %d instrs", m)
	}
	mustBehaveSame(t, prog, smallE.Prog)
}

func TestMaxLoopHeadsBoundsUnrolling(t *testing.T) {
	prog := altLoop(4000)
	count := func(maxHeads int) int {
		res := form(t, prog, PathBased, func(c *Config) { c.MaxLoopHeads = maxHeads })
		mustBehaveSame(t, prog, res.Prog)
		return res.Stats.EnlargeCopies
	}
	c0, c2, c8 := count(0), count(2), count(8)
	if !(c0 < c2 && c2 < c8) {
		t.Fatalf("loop-head bound not monotone: %d, %d, %d", c0, c2, c8)
	}
}

func TestExpandProbGatesBTE(t *testing.T) {
	// A non-loop superblock whose final branch is ~60/40 should expand
	// under a 0.5 gate but not under a 0.9 gate. The CFG is shaped so
	// mutual-most-likely selection terminates the hot trace exactly at
	// that branch: b1's most likely predecessor is x, not a, so the
	// [oh, a] trace cannot absorb b1.
	bd := ir.NewBuilder("bte", 64)
	pb := bd.Proc("main")
	oh, a, x, b1, b2, latch, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, s, c, tmp = 1, 2, 3, 4
	oh.Add(ir.CmpLTI(c, i, 500))
	oh.Br(c, a.ID(), exit.ID())
	// oh's hot successor splits ~56/44 between a-path and x-path via a
	// second branch inside a.
	a.Add(ir.MulI(tmp, i, 7), ir.AndI(tmp, tmp, 15), ir.CmpLEI(c, tmp, 8))
	a.Br(c, b1.ID(), b2.ID()) // the gated 56/44 branch
	x.Add(ir.AddI(s, s, 5))
	x.Jmp(b1.ID())
	b1.Add(ir.AddI(s, s, 1))
	b1.Jmp(latch.ID())
	b2.Add(ir.AddI(s, s, 2))
	b2.Jmp(latch.ID())
	latch.Add(ir.AddI(i, i, 1))
	latch.Jmp(oh.ID())
	exit.Add(ir.Emit(s))
	exit.Ret(s)
	// Give b1 its hotter second predecessor by routing part of oh's
	// flow through x: rewrite oh's taken edge into a pre-split.
	pre := pb.NewBlock()
	pre.Add(ir.AndI(tmp, i, 7), ir.CmpLEI(c, tmp, 2))
	pre.Br(c, x.ID(), a.ID()) // 3/8 to x, 5/8 to a
	ir.RedirectEdges(func() *ir.Block { return bd.Program().Proc(0).Block(oh.ID()) }(), a.ID(), pre.ID())
	prog := bd.Finish()

	strict := form(t, prog, EdgeBased, func(c *Config) { c.ExpandProb = 0.9; c.UnrollFactor = 1 })
	loose := form(t, prog, EdgeBased, func(c *Config) { c.ExpandProb = 0.5; c.UnrollFactor = 1 })
	if strict.Stats.Expanded >= loose.Stats.Expanded {
		t.Fatalf("expand gate had no effect: strict %d vs loose %d",
			strict.Stats.Expanded, loose.Stats.Expanded)
	}
	mustBehaveSame(t, prog, strict.Prog)
	mustBehaveSame(t, prog, loose.Prog)
}
