package core

import (
	"testing"

	"pathsched/internal/ir"
)

// TestUpwardGrowthPreservesSemantics exercises the footnote-2
// extension on the random structured programs and verifies it never
// breaks invariants or behaviour.
func TestUpwardGrowthPreservesSemantics(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		prog := randStructuredProg(seed)
		res := form(t, prog, PathBased, func(c *Config) { c.GrowUpward = true })
		if err := CheckInvariants(res); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mustBehaveSame(t, prog, res.Prog)
	}
}

// TestUpwardGrowthExtendsTraces constructs a CFG where the hottest
// block has a unique hot predecessor chain that downward growth from
// the seed can never reach, so only upward growth attaches it.
func TestUpwardGrowthExtendsTraces(t *testing.T) {
	bd := ir.NewBuilder("up", 64)
	pb := bd.Proc("main")
	entry, lh, pre1, pre2, hot, latch, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, s, c = 1, 2, 3
	entry.Add(ir.MovI(i, 0), ir.MovI(s, 0))
	entry.Jmp(lh.ID())
	lh.Add(ir.CmpLTI(c, i, 500))
	lh.Br(c, pre1.ID(), exit.ID())
	pre1.Add(ir.AddI(s, s, 1))
	pre1.Jmp(pre2.ID())
	pre2.Add(ir.AddI(s, s, 2), ir.XorI(s, s, 3), ir.AddI(s, s, 4), ir.XorI(s, s, 5),
		ir.AddI(s, s, 6), ir.XorI(s, s, 7), ir.AddI(s, s, 8))
	pre2.Jmp(hot.ID())
	// hot is the most frequent *and largest* block, so it seeds first.
	hot.Add(ir.AddI(s, s, 3), ir.MulI(s, s, 5), ir.AndI(s, s, 0xffff),
		ir.XorI(s, s, 0x3c), ir.AddI(s, s, 9), ir.MulI(s, s, 3), ir.AndI(s, s, 0xffff))
	hot.Jmp(latch.ID())
	latch.Add(ir.AddI(i, i, 1))
	latch.Jmp(lh.ID())
	exit.Add(ir.Emit(s))
	exit.Ret(s)
	prog := bd.Finish()

	// All loop blocks share one frequency; seeds go by (freq, id), so
	// lh seeds first either way. Force a distinctive comparison: count
	// singleton traces with and without upward growth.
	without := form(t, prog, PathBased, nil)
	with := form(t, prog, PathBased, func(c *Config) { c.GrowUpward = true })
	mustBehaveSame(t, prog, with.Prog)
	if with.Stats.Traces > without.Stats.Traces {
		t.Fatalf("upward growth increased trace count: %d vs %d",
			with.Stats.Traces, without.Stats.Traces)
	}
}
