package core

import (
	"reflect"
	"testing"

	"pathsched/internal/ir"
)

// multiProcProg builds a program with several procedures of differing
// shapes (loops with biased branches, a call chain, a multiway split)
// so parallel formation has real per-procedure work to interleave.
func multiProcProg() *ir.Program {
	bd := ir.NewBuilder("multi", 64)

	mainPB := bd.Proc("main")
	loopA := bd.Proc("loopA")
	loopB := bd.Proc("loopB")
	swproc := bd.Proc("swproc")

	// loopA(n): biased-branch countdown loop (alt shape).
	{
		entry, head, body, rare, common, latch, exit :=
			loopA.NewBlock(), loopA.NewBlock(), loopA.NewBlock(), loopA.NewBlock(), loopA.NewBlock(), loopA.NewBlock(), loopA.NewBlock()
		const i, sum, c, tmp = 1, 2, 3, 4
		entry.Add(ir.Mov(i, ir.RegArg0), ir.MovI(sum, 0))
		entry.Jmp(head.ID())
		head.Add(ir.CmpGTI(c, i, 0))
		head.Br(c, body.ID(), exit.ID())
		body.Add(ir.AndI(tmp, i, 7), ir.CmpEQI(c, tmp, 0))
		body.Br(c, rare.ID(), common.ID())
		common.Add(ir.AddI(sum, sum, 1))
		common.Jmp(latch.ID())
		rare.Add(ir.AddI(sum, sum, 50))
		rare.Jmp(latch.ID())
		latch.Add(ir.AddI(i, i, -1))
		latch.Jmp(head.ID())
		exit.Ret(sum)
	}

	// loopB(n): nested loop over memory.
	{
		entry, oh, ob, ih, ib, ol, exit :=
			loopB.NewBlock(), loopB.NewBlock(), loopB.NewBlock(), loopB.NewBlock(), loopB.NewBlock(), loopB.NewBlock(), loopB.NewBlock()
		const i, j, sum, c, addr = 1, 2, 3, 4, 5
		entry.Add(ir.Mov(i, ir.RegArg0), ir.MovI(sum, 0))
		entry.Jmp(oh.ID())
		oh.Add(ir.CmpGTI(c, i, 0))
		oh.Br(c, ob.ID(), exit.ID())
		ob.Add(ir.MovI(j, 4))
		ob.Jmp(ih.ID())
		ih.Add(ir.CmpGTI(c, j, 0))
		ih.Br(c, ib.ID(), ol.ID())
		ib.Add(ir.AndI(addr, j, 31), ir.Load(c, addr, 0), ir.Add(sum, sum, c), ir.AddI(j, j, -1))
		ib.Jmp(ih.ID())
		ol.Add(ir.AddI(i, i, -1))
		ol.Jmp(oh.ID())
		exit.Ret(sum)
	}

	// swproc(x): multiway dispatch.
	{
		entry := swproc.NewBlock()
		arms := []*ir.BlockBuilder{swproc.NewBlock(), swproc.NewBlock(), swproc.NewBlock()}
		join := swproc.NewBlock()
		const x, v = 1, 2
		entry.Add(ir.AndI(x, ir.RegArg0, 3))
		entry.Switch(x, arms[0].ID(), arms[1].ID(), arms[2].ID())
		for k, arm := range arms {
			arm.Add(ir.MovI(v, int64(10*k+1)))
			arm.Jmp(join.ID())
		}
		join.Ret(v)
	}

	// main: drive all three with a loop.
	{
		entry, head, body, latch, exit :=
			mainPB.NewBlock(), mainPB.NewBlock(), mainPB.NewBlock(), mainPB.NewBlock(), mainPB.NewBlock()
		const i, c, a, b2, s, acc = 1, 2, 3, 4, 5, 6
		entry.Add(ir.MovI(i, 60), ir.MovI(acc, 0))
		entry.Jmp(head.ID())
		head.Add(ir.CmpGTI(c, i, 0))
		head.Br(c, body.ID(), exit.ID())
		body.Call(a, loopA.ID(), latch.ID(), i)
		latch.Call(b2, loopB.ID(), ir.NoBlock, i)
		latch.Add(ir.Add(acc, acc, a), ir.Add(acc, acc, b2))
		latch.Call(s, swproc.ID(), ir.NoBlock, i)
		latch.Add(ir.Add(acc, acc, s), ir.AddI(i, i, -1))
		latch.Jmp(head.ID())
		exit.Add(ir.Emit(acc))
		exit.Ret(acc)
	}

	bd.Data(0, 2, 7, 1, 8, 2, 8, 1, 8)
	bd.SetMain(mainPB.ID())
	return bd.Finish()
}

// TestFormParallelMatchesSerial pins the determinism contract of the
// Parallelism knob: formation at any worker count must produce the
// same transformed program, the same superblock partition, and the
// same stats, proc for proc and block for block.
func TestFormParallelMatchesSerial(t *testing.T) {
	prog := multiProcProg()
	e, p := profiles(t, prog)

	for _, method := range []Method{EdgeBased, PathBased} {
		var base *Result
		var baseDump string
		for _, par := range []int{1, 0, 2, 8} {
			cfg := DefaultConfig()
			cfg.Method = method
			cfg.Edge, cfg.Path = e, p
			cfg.MinExecFreq = 2
			cfg.Parallelism = par
			res, err := Form(prog, cfg)
			if err != nil {
				t.Fatalf("%v/parallelism=%d: %v", method, par, err)
			}
			dump := res.Prog.Dump()
			if base == nil {
				base, baseDump = res, dump
				continue
			}
			if dump != baseDump {
				t.Fatalf("%v/parallelism=%d: transformed program differs from serial", method, par)
			}
			if !reflect.DeepEqual(res.Stats, base.Stats) {
				t.Fatalf("%v/parallelism=%d: stats %+v != serial %+v", method, par, res.Stats, base.Stats)
			}
			if !reflect.DeepEqual(res.Superblocks, base.Superblocks) {
				t.Fatalf("%v/parallelism=%d: superblock partition differs from serial", method, par)
			}
		}
		mustBehaveSame(t, prog, base.Prog)
	}
}
