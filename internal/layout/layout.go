// Package layout assigns code addresses: a Pettis–Hansen-style
// procedure placement over the dynamic call graph (the paper applies
// [15] as the final step of its back end, §2.3), hot-path block
// chaining within each procedure, and byte address assignment at 4
// bytes per instruction. The addresses feed the instruction-cache
// simulation of §4.
package layout

import (
	"sort"

	"pathsched/internal/ir"
)

// Input supplies the dynamic weights placement consumes. All weights
// come from a training run of the *transformed* program, mirroring a
// profile-guided link step.
type Input struct {
	// CallCounts holds dynamic caller→callee invocation counts.
	CallCounts map[[2]ir.ProcID]int64
	// BlockFreq returns a block's dynamic execution count (nil means
	// every block is equally cold).
	BlockFreq func(p ir.ProcID, b ir.BlockID) int64
	// EdgeFreq returns a CFG edge's dynamic count, used for hot-path
	// block chaining (nil disables chaining).
	EdgeFreq func(p ir.ProcID, from, to ir.BlockID) int64
	// ProcAlign aligns procedure start addresses (default 32, one
	// cache line).
	ProcAlign int64
}

// Assign computes the full code layout and writes Block.Addr for every
// block of every procedure. It returns the total code size in bytes.
func Assign(prog *ir.Program, in Input) int64 {
	if in.ProcAlign == 0 {
		in.ProcAlign = 32
	}
	procOrder := OrderProcs(prog, in.CallCounts)
	addr := int64(0)
	for _, pid := range procOrder {
		p := prog.Proc(pid)
		if rem := addr % in.ProcAlign; rem != 0 {
			addr += in.ProcAlign - rem
		}
		for _, bid := range OrderBlocks(p, in) {
			b := p.Block(bid)
			b.Addr = addr
			addr += int64(len(b.Instrs)) * 4
		}
	}
	return addr
}

// OrderProcs performs Pettis–Hansen "closest is best" greedy merging:
// procedures are chains; repeatedly the heaviest call edge between two
// chains merges them, orienting the chains so the two endpoints of the
// edge land as close together as possible. Procedures without call
// activity follow in id order.
func OrderProcs(prog *ir.Program, calls map[[2]ir.ProcID]int64) []ir.ProcID {
	n := len(prog.Procs)
	// Undirected weights.
	type pair struct{ a, b ir.ProcID }
	weight := map[pair]int64{}
	for k, c := range calls {
		a, b := k[0], k[1]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		weight[pair{a, b}] += c
	}
	type wedge struct {
		a, b ir.ProcID
		w    int64
	}
	edges := make([]wedge, 0, len(weight))
	for k, w := range weight {
		edges = append(edges, wedge{k.a, k.b, w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})

	chainOf := make([]int, n) // proc -> chain index
	chains := make([][]ir.ProcID, n)
	for i := 0; i < n; i++ {
		chainOf[i] = i
		chains[i] = []ir.ProcID{ir.ProcID(i)}
	}
	// distFromEnd returns the distance of p from the nearer end when
	// the chain is oriented with that end first; we approximate
	// closest-is-best by choosing, for each merge, among the four
	// orientations the one minimizing the gap between a and b.
	for _, e := range edges {
		ca, cb := chainOf[e.a], chainOf[e.b]
		if ca == cb {
			continue
		}
		A, B := chains[ca], chains[cb]
		posA := indexOf(A, e.a)
		posB := indexOf(B, e.b)
		// Gap for each orientation: A then B (maybe reversed each).
		bestGap := int(1 << 30)
		bestAR, bestBR := false, false
		for _, ar := range []bool{false, true} {
			for _, br := range []bool{false, true} {
				pa := posA
				if ar {
					pa = len(A) - 1 - posA
				}
				pb := posB
				if br {
					pb = len(B) - 1 - posB
				}
				gap := (len(A) - 1 - pa) + pb
				if gap < bestGap {
					bestGap, bestAR, bestBR = gap, ar, br
				}
			}
		}
		if bestAR {
			reverse(A)
		}
		if bestBR {
			reverse(B)
		}
		merged := append(A, B...)
		chains[ca] = merged
		chains[cb] = nil
		for _, p := range merged {
			chainOf[p] = ca
		}
	}

	// Emit chains: the chain containing main first, then remaining
	// chains by total call weight (hottest first), then untouched.
	mainChain := chainOf[prog.Main]
	var out []ir.ProcID
	emit := func(ci int) {
		out = append(out, chains[ci]...)
		chains[ci] = nil
	}
	emit(mainChain)
	type chainw struct {
		idx int
		w   int64
	}
	var rest []chainw
	chainWeight := make([]int64, n)
	for k, c := range calls {
		chainWeight[chainOf[k[0]]] += c
		chainWeight[chainOf[k[1]]] += c
	}
	for ci, ch := range chains {
		if ch == nil || len(ch) == 0 {
			continue
		}
		rest = append(rest, chainw{ci, chainWeight[ci]})
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].w != rest[j].w {
			return rest[i].w > rest[j].w
		}
		return rest[i].idx < rest[j].idx
	})
	for _, c := range rest {
		emit(c.idx)
	}
	return out
}

// OrderBlocks chains a procedure's blocks along hot edges: the entry
// block first, then repeatedly the most frequent not-yet-placed
// successor; when a chain dies out, the hottest unplaced block seeds
// the next chain. Cold blocks trail in id order.
func OrderBlocks(p *ir.Proc, in Input) []ir.BlockID {
	n := len(p.Blocks)
	placed := make([]bool, n)
	var out []ir.BlockID
	place := func(b ir.BlockID) {
		placed[b] = true
		out = append(out, b)
	}
	freq := func(b ir.BlockID) int64 {
		if in.BlockFreq == nil {
			return 0
		}
		return in.BlockFreq(p.ID, b)
	}
	chain := func(start ir.BlockID) {
		cur := start
		place(cur)
		for {
			var best ir.BlockID = ir.NoBlock
			var bestW int64 = -1
			for _, s := range p.Block(cur).Succs() {
				if placed[s] {
					continue
				}
				var w int64
				if in.EdgeFreq != nil {
					w = in.EdgeFreq(p.ID, cur, s)
				}
				if w > bestW || (w == bestW && (best == ir.NoBlock || s < best)) {
					best, bestW = s, w
				}
			}
			if best == ir.NoBlock {
				return
			}
			cur = best
			place(cur)
		}
	}
	chain(p.Entry().ID)
	// Seed further chains from the hottest unplaced blocks.
	ids := make([]ir.BlockID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, ir.BlockID(i))
	}
	sort.Slice(ids, func(i, j int) bool {
		fi, fj := freq(ids[i]), freq(ids[j])
		if fi != fj {
			return fi > fj
		}
		return ids[i] < ids[j]
	})
	for _, b := range ids {
		if !placed[b] {
			chain(b)
		}
	}
	return out
}

func indexOf(s []ir.ProcID, v ir.ProcID) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

func reverse(s []ir.ProcID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
