package layout

import (
	"sort"
	"testing"
	"testing/quick"

	"pathsched/internal/ir"
)

// multiProc builds a program with k leaf procedures plus main.
func multiProc(k int) *ir.Program {
	bd := ir.NewBuilder("multi", 16)
	pb := bd.Proc("main")
	var leaves []ir.ProcID
	for i := 0; i < k; i++ {
		lp := bd.Proc("leaf")
		b := lp.NewBlock()
		b.Add(ir.AddI(0, 1, int64(i)))
		b.Ret(0)
		leaves = append(leaves, lp.ID())
	}
	cur := pb.NewBlock()
	for _, l := range leaves {
		next := pb.NewBlock()
		cur.Call(2, l, next.ID(), 2)
		cur = next
	}
	cur.Ret(2)
	return bd.Finish()
}

func TestOrderProcsIsPermutation(t *testing.T) {
	check := func(seedCalls []uint16) bool {
		prog := multiProc(6)
		calls := map[[2]ir.ProcID]int64{}
		for i, c := range seedCalls {
			a := ir.ProcID(i % 7)
			b := ir.ProcID((i / 7) % 7)
			if a != b {
				calls[[2]ir.ProcID{a, b}] = int64(c)
			}
		}
		order := OrderProcs(prog, calls)
		if len(order) != len(prog.Procs) {
			return false
		}
		seen := map[ir.ProcID]bool{}
		for _, p := range order {
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHeavyCallersPlacedAdjacent(t *testing.T) {
	prog := multiProc(4) // procs: 0=main, 1..4 leaves
	calls := map[[2]ir.ProcID]int64{
		{0, 3}: 1000, // main calls leaf 3 hot
		{0, 1}: 10,
		{0, 2}: 5,
		{0, 4}: 1,
	}
	order := OrderProcs(prog, calls)
	pos := map[ir.ProcID]int{}
	for i, p := range order {
		pos[p] = i
	}
	d3 := abs(pos[0] - pos[3])
	d4 := abs(pos[0] - pos[4])
	if d3 > d4 {
		t.Fatalf("hot callee further from main than cold one: order %v", order)
	}
	// The heaviest edge is merged first and chain merges never separate
	// already-adjacent members, so main and leaf 3 stay adjacent.
	if d3 != 1 {
		t.Fatalf("heaviest call pair not adjacent: order %v", order)
	}
}

func TestAssignAddressesDisjointAndAligned(t *testing.T) {
	prog := multiProc(5)
	total := Assign(prog, Input{ProcAlign: 32})
	type rng struct{ lo, hi int64 }
	var ranges []rng
	for _, p := range prog.Procs {
		lo := int64(1 << 62)
		for _, b := range p.Blocks {
			if b.Addr < 0 {
				t.Fatal("negative address")
			}
			if b.Addr < lo {
				lo = b.Addr
			}
			ranges = append(ranges, rng{b.Addr, b.Addr + int64(len(b.Instrs))*4})
		}
		if lo%32 != 0 {
			t.Fatalf("proc %s starts at unaligned %d", p.Name, lo)
		}
	}
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].lo < ranges[j].lo })
	for i := 1; i < len(ranges); i++ {
		if ranges[i].lo < ranges[i-1].hi {
			t.Fatalf("overlapping code ranges %v and %v", ranges[i-1], ranges[i])
		}
	}
	if last := ranges[len(ranges)-1]; last.hi > total {
		t.Fatalf("total size %d below last range end %d", total, last.hi)
	}
}

func TestOrderBlocksFollowsHotEdges(t *testing.T) {
	bd := ir.NewBuilder("chainy", 8)
	pb := bd.Proc("main")
	a, b, c, d := pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	a.Add(ir.MovI(1, 1))
	a.Br(1, c.ID(), b.ID()) // hot edge a->c
	b.Ret(1)
	c.Add(ir.MovI(2, 2))
	c.Jmp(d.ID())
	d.Ret(2)
	prog := bd.Finish()
	p := prog.Proc(0)

	edgeFreq := func(pid ir.ProcID, from, to ir.BlockID) int64 {
		if from == a.ID() && to == c.ID() {
			return 100
		}
		return 1
	}
	blockFreq := func(pid ir.ProcID, bid ir.BlockID) int64 { return 1 }
	order := OrderBlocks(p, Input{EdgeFreq: edgeFreq, BlockFreq: blockFreq})
	if order[0] != a.ID() || order[1] != c.ID() || order[2] != d.ID() {
		t.Fatalf("block order %v; want hot chain a,c,d first", order)
	}
	if len(order) != 4 {
		t.Fatalf("order %v misses blocks", order)
	}
}

func TestOrderBlocksCoversAllBlocksEvenUnreachable(t *testing.T) {
	bd := ir.NewBuilder("unreach", 8)
	pb := bd.Proc("main")
	e, dead := pb.NewBlock(), pb.NewBlock()
	e.Ret(0)
	dead.Ret(1)
	prog := bd.Finish()
	order := OrderBlocks(prog.Proc(0), Input{})
	if len(order) != 2 {
		t.Fatalf("order %v must include unreachable blocks (they still occupy space)", order)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
