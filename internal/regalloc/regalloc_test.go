package regalloc

import (
	"testing"
	"testing/quick"

	"pathsched/internal/ir"
)

// mkBlock builds a block from instructions for allocation tests.
func mkBlock(instrs ...ir.Instr) *ir.Block {
	return &ir.Block{Instrs: instrs}
}

func v(n int32) ir.Reg { return ir.VirtBase + ir.Reg(n) }

func TestFreePoolExcludesUsedRegisters(t *testing.T) {
	bd := ir.NewBuilder("p", 8)
	pb := bd.Proc("main")
	b := pb.NewBlock()
	b.Add(ir.Add(3, 1, 2), ir.Store(4, 0, 3))
	b.Ret(0)
	prog := bd.Finish()
	pool := FreePool(prog.Proc(0))
	inPool := map[ir.Reg]bool{}
	for _, r := range pool {
		inPool[r] = true
	}
	for _, used := range []ir.Reg{0, 1, 2, 3, 4} {
		if inPool[used] {
			t.Errorf("r%d is used but appears in the free pool", used)
		}
	}
	if len(pool) != ir.PhysRegs-5 {
		t.Fatalf("pool size = %d, want %d", len(pool), ir.PhysRegs-5)
	}
}

func TestAssignSimpleChain(t *testing.T) {
	b := mkBlock(
		ir.MovI(v(0), 10),
		ir.AddI(v(1), v(0), 5),
		ir.Mov(2, v(1)),
		ir.Ret(2),
	)
	if err := AssignVirtuals(b, []ir.Reg{50, 51}); err != nil {
		t.Fatal(err)
	}
	if b.Instrs[0].Dst != 50 {
		t.Fatalf("first virtual got %v, want r50", b.Instrs[0].Dst)
	}
	if b.Instrs[1].Src1 != 50 {
		t.Fatalf("use not rewritten: %v", b.Instrs[1])
	}
	// v0 dies at instr 1, so v1 may reuse r50... but expiry happens at
	// the *next* position; either r50 or r51 is acceptable as long as
	// uses match defs.
	if b.Instrs[2].Src1 != b.Instrs[1].Dst {
		t.Fatalf("chained use mismatch: %v vs %v", b.Instrs[2], b.Instrs[1])
	}
}

func TestAssignReusesExpiredRegisters(t *testing.T) {
	// Two non-overlapping virtual live ranges must fit in one register.
	b := mkBlock(
		ir.MovI(v(0), 1),
		ir.Mov(2, v(0)), // v0 dies here
		ir.MovI(v(1), 2),
		ir.Mov(3, v(1)),
		ir.Ret(3),
	)
	if err := AssignVirtuals(b, []ir.Reg{60}); err != nil {
		t.Fatalf("single register should suffice: %v", err)
	}
	if b.Instrs[0].Dst != 60 || b.Instrs[2].Dst != 60 {
		t.Fatal("expired register not reused")
	}
}

func TestAssignFailsUnderPressure(t *testing.T) {
	// Three simultaneously live virtuals, pool of two.
	b := mkBlock(
		ir.MovI(v(0), 1),
		ir.MovI(v(1), 2),
		ir.MovI(v(2), 3),
		ir.Add(4, v(0), v(1)),
		ir.Add(4, 4, v(2)),
		ir.Ret(4),
	)
	if err := AssignVirtuals(b, []ir.Reg{60, 61}); err == nil {
		t.Fatal("allocation must fail with pool 2 and pressure 3")
	}
}

func TestAssignRejectsDoubleDef(t *testing.T) {
	b := mkBlock(
		ir.MovI(v(0), 1),
		ir.MovI(v(0), 2),
		ir.Ret(0),
	)
	if err := AssignVirtuals(b, []ir.Reg{60, 61}); err == nil {
		t.Fatal("virtuals are single-assignment; double def must error")
	}
}

func TestAssignDeadDefReleasedImmediately(t *testing.T) {
	// A dead virtual def (never used) must not hold a register.
	b := mkBlock(
		ir.MovI(v(0), 1), // dead
		ir.MovI(v(1), 2),
		ir.Mov(2, v(1)),
		ir.Ret(2),
	)
	if err := AssignVirtuals(b, []ir.Reg{60, 61}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignHandlesCallArgs(t *testing.T) {
	b := mkBlock(
		ir.MovI(v(0), 1),
		ir.MovI(v(1), 2),
		ir.Call(3, 0, ir.NoBlock, v(0), v(1)),
		ir.Ret(3),
	)
	if err := AssignVirtuals(b, []ir.Reg{60, 61}); err != nil {
		t.Fatal(err)
	}
	for _, a := range b.Instrs[2].Args {
		if a.IsVirtual() {
			t.Fatalf("call arg not rewritten: %v", b.Instrs[2])
		}
	}
}

// Property: for random straight-line blocks with bounded pressure,
// allocation succeeds, leaves no virtuals, and preserves the dataflow
// (each use reads the physical register its def was mapped to).
func TestAssignPropertyDataflowPreserved(t *testing.T) {
	check := func(seed uint8, nInstr uint8) bool {
		n := int(nInstr%40) + 5
		rngState := uint64(seed) + 1
		rnd := func(m int) int {
			rngState = rngState*6364136223846793005 + 1442695040888963407
			return int((rngState >> 33) % uint64(m))
		}
		var instrs []ir.Instr
		var liveVirts []ir.Reg
		next := int32(0)
		defUse := map[ir.Reg][]int{} // virtual -> instr indices using it
		defAt := map[ir.Reg]int{}
		for i := 0; i < n; i++ {
			if len(liveVirts) > 0 && rnd(3) == 0 {
				// Use one or two live virtuals.
				a := liveVirts[rnd(len(liveVirts))]
				bv := liveVirts[rnd(len(liveVirts))]
				nv := v(next)
				next++
				instrs = append(instrs, ir.Add(nv, a, bv))
				defUse[a] = append(defUse[a], len(instrs)-1)
				defUse[bv] = append(defUse[bv], len(instrs)-1)
				defAt[nv] = len(instrs) - 1
				liveVirts = append(liveVirts, nv)
			} else {
				nv := v(next)
				next++
				instrs = append(instrs, ir.MovI(nv, int64(i)))
				defAt[nv] = len(instrs) - 1
				liveVirts = append(liveVirts, nv)
			}
			// Randomly retire some virtuals so pressure stays bounded.
			if len(liveVirts) > 6 {
				liveVirts = liveVirts[len(liveVirts)-6:]
			}
		}
		instrs = append(instrs, ir.Ret(0))
		b := mkBlock(instrs...)

		// Remember the def-use structure by instruction index.
		pool := make([]ir.Reg, 32)
		for i := range pool {
			pool[i] = ir.Reg(64 + i)
		}
		if err := AssignVirtuals(b, pool); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// No virtuals remain.
		var buf []ir.Reg
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			if ins.Dst.IsVirtual() {
				return false
			}
			buf = ins.Uses(buf[:0])
			for _, u := range buf {
				if u.IsVirtual() {
					return false
				}
			}
		}
		// Dataflow: each recorded use must read exactly the register
		// its def now writes (no intervening redefinition, since every
		// def wrote a distinct virtual and linear scan must not alias
		// overlapping ranges).
		for virt, uses := range defUse {
			d := defAt[virt]
			phys := b.Instrs[d].Dst
			for _, u := range uses {
				found := false
				buf = b.Instrs[u].Uses(buf[:0])
				for _, r := range buf {
					if r == phys {
						found = true
					}
				}
				if !found {
					t.Logf("seed %d: use at %d lost its def's register", seed, u)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
