// Package regalloc maps the virtual registers that renaming introduces
// back onto the 128-register architected file, mirroring the paper's
// preschedule (infinite registers) → allocate → postschedule flow
// (§2.3). Virtual registers are single-assignment and never live
// across block boundaries, so a linear scan over the scheduled linear
// order suffices.
package regalloc

import (
	"fmt"
	"sort"

	"pathsched/internal/ir"
)

// FreePool returns the physical registers that appear nowhere in the
// procedure's architectural (pre-renaming) code: those are safe homes
// for block-local virtuals. The pool is shared by all blocks of the
// procedure — virtuals never outlive their block, so reuse across
// blocks is free.
func FreePool(p *ir.Proc) []ir.Reg {
	used := make([]bool, ir.PhysRegs)
	mark := func(r ir.Reg) {
		if r >= 0 && r < ir.VirtBase {
			used[r] = true
		}
	}
	for _, b := range p.Blocks {
		for i := range b.Instrs {
			ins := &b.Instrs[i]
			mark(ins.Dst)
			mark(ins.Src1)
			mark(ins.Src2)
			for _, a := range ins.Args {
				mark(a)
			}
		}
	}
	var pool []ir.Reg
	for r := ir.Reg(0); r < ir.VirtBase; r++ {
		if !used[r] {
			pool = append(pool, r)
		}
	}
	return pool
}

// AssignVirtuals rewrites every virtual register in b onto registers
// from pool using linear-scan allocation over the block's instruction
// order. It fails when live virtual pressure exceeds the pool — the
// caller then falls back to compaction without renaming.
func AssignVirtuals(b *ir.Block, pool []ir.Reg) error {
	// Interval ends: last position reading each virtual.
	lastUse := map[ir.Reg]int{}
	var buf []ir.Reg
	for i := range b.Instrs {
		buf = b.Instrs[i].Uses(buf[:0])
		for _, u := range buf {
			if u.IsVirtual() {
				lastUse[u] = i
			}
		}
	}

	free := append([]ir.Reg(nil), pool...)
	assign := map[ir.Reg]ir.Reg{}
	type active struct {
		virt ir.Reg
		end  int
	}
	var live []active

	expire := func(pos int) {
		kept := live[:0]
		for _, a := range live {
			if a.end < pos {
				free = append(free, assign[a.virt])
			} else {
				kept = append(kept, a)
			}
		}
		live = kept
	}

	rewrite := func(r *ir.Reg) {
		if r.IsVirtual() {
			if phys, ok := assign[*r]; ok {
				*r = phys
			}
		}
	}

	for i := range b.Instrs {
		expire(i)
		ins := &b.Instrs[i]
		// Uses first (they read values defined earlier).
		rewrite(&ins.Src1)
		rewrite(&ins.Src2)
		for ai := range ins.Args {
			rewrite(&ins.Args[ai])
		}
		// Then the def.
		if ins.HasDst() && ins.Dst.IsVirtual() {
			v := ins.Dst
			if _, dup := assign[v]; dup {
				return fmt.Errorf("regalloc: virtual %v defined twice", v)
			}
			if len(free) == 0 {
				return fmt.Errorf("regalloc: out of registers at instruction %d (pool %d)", i, len(pool))
			}
			// Deterministic choice: smallest-numbered free register.
			sort.Slice(free, func(a, b int) bool { return free[a] < free[b] })
			phys := free[0]
			free = free[1:]
			assign[v] = phys
			end, used := lastUse[v]
			if !used || end < i {
				end = i // dead def: release immediately on next expire
			}
			live = append(live, active{virt: v, end: end})
			ins.Dst = phys
		}
	}

	// Nothing virtual may survive.
	for i := range b.Instrs {
		ins := &b.Instrs[i]
		if ins.Dst.IsVirtual() || ins.Src1.IsVirtual() || ins.Src2.IsVirtual() {
			return fmt.Errorf("regalloc: unresolved virtual in %v", *ins)
		}
		for _, a := range ins.Args {
			if a.IsVirtual() {
				return fmt.Errorf("regalloc: unresolved virtual arg in %v", *ins)
			}
		}
	}
	return nil
}
