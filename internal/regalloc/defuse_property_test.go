package regalloc_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pathsched/internal/check"
	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/ir/irtest"
	"pathsched/internal/regalloc"
)

// Property: linear-scan allocation never introduces a read of an
// undefined register. Randomized executable programs get their
// block-local scratch defs rewritten onto fresh single-assignment
// virtuals (what renaming does), go through AssignVirtuals, and the
// result must pass check.DefBeforeUse against the pristine program's
// baseline — and still compute the same outputs.
func TestPropertyAllocPreservesDefBeforeUse(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		prog := irtest.RandExecProg(seed, int(sz%20)+6)
		pristine := ir.CloneProgram(prog)
		virtualize(prog, rand.New(rand.NewSource(seed^0x5eed)))

		for _, p := range prog.Procs {
			pool := regalloc.FreePool(p)
			for _, b := range p.Blocks {
				if err := regalloc.AssignVirtuals(b, pool); err != nil {
					t.Logf("seed %d: %v", seed, err)
					return false
				}
			}
		}
		if err := ir.Verify(prog); err != nil {
			t.Logf("seed %d: allocated program unverifiable: %v", seed, err)
			return false
		}
		if vs := check.DefBeforeUse(prog, check.BaselineOf(pristine)); len(vs) != 0 {
			t.Logf("seed %d: %v", seed, check.Err("regalloc", vs))
			return false
		}
		want, err1 := interp.Run(pristine, interp.Config{MaxSteps: 1 << 22})
		got, err2 := interp.Run(prog, interp.Config{MaxSteps: 1 << 22})
		if err1 != nil || err2 != nil {
			t.Logf("seed %d: run errors %v / %v", seed, err1, err2)
			return false
		}
		if want.Ret != got.Ret || len(want.Output) != len(got.Output) {
			t.Logf("seed %d: ret/output diverged after allocation", seed)
			return false
		}
		for i := range want.Output {
			if want.Output[i] != got.Output[i] {
				t.Logf("seed %d: output[%d] %d vs %d", seed, i, want.Output[i], got.Output[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// virtualize rewrites a random subset of the scratch-register defs of
// each block (and their same-block uses) onto fresh virtual registers.
// RandExecProg never reads a scratch register across a block boundary,
// so the rewrite preserves semantics by construction; each virtual is
// defined exactly once, matching renaming's single-assignment output.
func virtualize(prog *ir.Program, rng *rand.Rand) {
	next := ir.VirtBase
	for _, p := range prog.Procs {
		for _, b := range p.Blocks {
			cur := map[ir.Reg]ir.Reg{}
			sub := func(r *ir.Reg) {
				if v, ok := cur[*r]; ok {
					*r = v
				}
			}
			for i := range b.Instrs {
				ins := &b.Instrs[i]
				sub(&ins.Src1)
				sub(&ins.Src2)
				for j := range ins.Args {
					sub(&ins.Args[j])
				}
				if ins.HasDst() && ins.Dst >= 8 && ins.Dst < 24 {
					if rng.Intn(2) == 0 {
						cur[ins.Dst] = next
						ins.Dst = next
						next++
					} else {
						delete(cur, ins.Dst) // phys def shadows any earlier virtual
					}
				}
			}
		}
	}
}
