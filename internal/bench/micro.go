package bench

import "pathsched/internal/ir"

// The three microbenchmarks of Table 1: idealized examples of behaviour
// that path profiles expose but point profiles cannot (§3.3). They
// take no meaningful input ("null" in Table 1), so training and
// testing runs are identical by design.

func init() {
	register(&Benchmark{
		Name:        "alt",
		Description: "Sorted example: loop conditional repeats TTTF",
		Category:    "micro",
		Build:       buildAlt,
		Train:       Input{Label: "null", Scale: 60000},
		Test:        Input{Label: "null", Scale: 60000},
	})
	register(&Benchmark{
		Name:        "ph",
		Description: "Phased example: loop conditional runs TT…TFF…F",
		Category:    "micro",
		Build:       buildPh,
		Train:       Input{Label: "null", Scale: 60000},
		Test:        Input{Label: "null", Scale: 60000},
	})
	register(&Benchmark{
		Name:        "corr",
		Description: "Branch correlation example (Young & Smith [20])",
		Category:    "micro",
		Build:       buildCorr,
		Train:       Input{Label: "null", Seed: 11, Scale: 15000},
		Test:        Input{Label: "null", Seed: 11, Scale: 15000},
	})
}

// buildAlt is Figure 3's alternating loop: the conditional inside the
// loop follows the repeating pattern TTTF, so the dominant general
// path is ABD·ABD·ABD·ACD — invisible to an edge profile, which only
// records a 75/25 split.
func buildAlt(in Input) *ir.Program {
	bd := ir.NewBuilder("alt", 64)
	pb := bd.Proc("main")
	g := newGen(pb)
	const i, s, t, c = 1, 2, 3, 4
	g.emit(ir.MovI(s, 0))
	g.forRange(i, 0, in.Scale, 1, func() {
		g.emit(ir.AndI(t, i, 3), ir.CmpNEI(c, t, 3))
		g.ifElse(c, func() {
			g.emit(ir.AddI(s, s, 1), ir.XorI(s, s, 5))
		}, func() {
			g.emit(ir.MulI(s, s, 3), ir.AndI(s, s, 0xffff))
		})
		g.emit(ir.AddI(s, s, 2)) // block D: the common join work
	})
	g.emit(ir.Emit(s))
	g.ret(s)
	return bd.Finish()
}

// buildPh is Figure 3's phased loop: the conditional goes one way for
// the first phase of the loop and the other way afterwards. Path
// profiles within a phase see a pure single-direction history, so
// path-driven unrolling specializes both phases.
func buildPh(in Input) *ir.Program {
	bd := ir.NewBuilder("ph", 64)
	pb := bd.Proc("main")
	g := newGen(pb)
	const i, s, c = 1, 2, 3
	threshold := in.Scale * 2 / 3
	g.emit(ir.MovI(s, 0))
	g.forRange(i, 0, in.Scale, 1, func() {
		g.emit(ir.CmpLTI(c, i, threshold))
		g.ifElse(c, func() {
			g.emit(ir.AddI(s, s, 1), ir.XorI(s, s, 9))
		}, func() {
			g.emit(ir.MulI(s, s, 5), ir.AndI(s, s, 0xfffff))
		})
		g.emit(ir.AddI(s, s, 3))
	})
	g.emit(ir.Emit(s))
	g.ret(s)
	return bd.Finish()
}

// buildCorr is the simple correlation example: two branches in the
// loop body test the same data-dependent predicate, so the second is
// fully determined by the first. Edge profiles see two independent
// 50/50 branches; the path through the first branch predicts the
// second exactly.
func buildCorr(in Input) *ir.Program {
	const dataLen = 1024
	r := newRng(in.Seed)
	data := make([]int64, dataLen)
	for i := range data {
		data[i] = r.intn(2)
	}
	bd := ir.NewBuilder("corr", dataLen+64)
	bd.Data(0, data...)
	pb := bd.Proc("main")
	g := newGen(pb)
	const i, s, a, t, c = 1, 2, 3, 4, 5
	g.emit(ir.MovI(s, 0))
	g.forRange(i, 0, in.Scale, 1, func() {
		g.emit(
			ir.AndI(t, i, dataLen-1),
			ir.Load(a, t, 0), // a = data[i % dataLen] ∈ {0,1}
		)
		g.emit(ir.CmpEQI(c, a, 1))
		g.ifElse(c, func() {
			g.emit(ir.AddI(s, s, 7))
		}, func() {
			g.emit(ir.AddI(s, s, 1))
		})
		// Filler work between the correlated pair.
		g.emit(ir.XorI(s, s, 0x55), ir.AddI(s, s, 2))
		g.emit(ir.CmpEQI(c, a, 1)) // same predicate: fully correlated
		g.ifElse(c, func() {
			g.emit(ir.MulI(s, s, 3), ir.AndI(s, s, 0xfffff))
		}, func() {
			g.emit(ir.ShrI(s, s, 1))
		})
	})
	g.emit(ir.Emit(s))
	g.ret(s)
	return bd.Finish()
}
