// Package bench provides the benchmark suite of the evaluation
// (paper §3.3, Table 1). The paper measured DEC Alpha binaries of three
// microbenchmarks plus SPECint92/95 programs; those binaries cannot be
// reproduced here, so each benchmark is re-created as an IR program
// engineered to exhibit the same *control-flow character* the paper
// attributes to it — the property path-based formation actually
// exploits. Each benchmark has distinct training and testing inputs
// derived from seeded PRNGs, mirroring the paper's train/test split.
// Dynamic sizes are scaled down (~10⁵–10⁶ branches instead of
// 10⁶–10⁹) so the full suite runs in seconds.
package bench

import (
	"fmt"

	"pathsched/internal/ir"
)

// Input parameterizes one run of a benchmark. Microbenchmarks ignore
// the seed ("null" input, as in Table 1).
type Input struct {
	Label string // e.g. "train", "test"
	Seed  uint64 // PRNG seed for data generation
	Scale int64  // main size knob (iterations / input length)
}

// Benchmark describes one suite member.
type Benchmark struct {
	Name        string
	Description string // mirrors Table 1's description column
	Category    string // "micro", "SPECint92", "SPECint95"

	// Build constructs the program with the given input baked into its
	// data segments and loop bounds. Builds are deterministic and share
	// no mutable state, so Build may be called from many goroutines at
	// once (the parallel pipeline does).
	Build func(in Input) *ir.Program

	// Train and Test are the canonical inputs (Table 1 lists only the
	// testing data sets; training uses different seeds/sizes).
	Train Input
	Test  Input
}

// registry holds the suite in presentation order (micro, SPECint92,
// SPECint95), matching Table 1.
var registry []*Benchmark

func register(b *Benchmark) { registry = append(registry, b) }

// All returns the benchmark suite in Table 1 order.
func All() []*Benchmark { return registry }

// ByName returns the named benchmark or nil.
func ByName(name string) *Benchmark {
	for _, b := range registry {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Names returns all benchmark names, in suite order.
func Names() []string {
	out := make([]string, len(registry))
	for i, b := range registry {
		out[i] = b.Name
	}
	return out
}

// rng is a small deterministic splitmix64 generator, so benchmark data
// never depends on library PRNG evolution.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed + 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// gen is a tiny structured-programming layer over the IR builder:
// benchmarks describe loops, conditionals, switches, and calls, and
// gen wires the basic blocks. It keeps the 14 generators short and
// verifier-clean.
type gen struct {
	pb  *ir.ProcBuilder
	cur *ir.BlockBuilder
}

func newGen(pb *ir.ProcBuilder) *gen {
	return &gen{pb: pb, cur: pb.NewBlock()}
}

// emit appends straight-line instructions to the current block.
func (g *gen) emit(instrs ...ir.Instr) { g.cur.Add(instrs...) }

// while builds a loop: cond emits the condition computation into the
// loop head and returns the register tested; body emits the loop body.
func (g *gen) while(cond func() ir.Reg, body func()) {
	head := g.pb.NewBlock()
	g.cur.Jmp(head.ID())
	g.cur = head
	c := cond()
	bodyB := g.pb.NewBlock()
	exit := g.pb.NewBlock()
	g.cur.Br(c, bodyB.ID(), exit.ID())
	g.cur = bodyB
	body()
	if !g.cur.Terminated() {
		g.cur.Jmp(head.ID())
	}
	g.cur = exit
}

// forRange builds "for r = lo; r < hi; r += step { body }".
func (g *gen) forRange(r ir.Reg, lo, hi, step int64, body func()) {
	g.emit(ir.MovI(r, lo))
	g.while(func() ir.Reg {
		g.emit(ir.CmpLTI(scratch, r, hi))
		return scratch
	}, func() {
		body()
		g.emit(ir.AddI(r, r, step))
	})
}

// ifElse builds a diamond; either arm may be nil (an empty arm).
func (g *gen) ifElse(c ir.Reg, then, els func()) {
	tb := g.pb.NewBlock()
	eb := g.pb.NewBlock()
	join := g.pb.NewBlock()
	g.cur.Br(c, tb.ID(), eb.ID())
	g.cur = tb
	if then != nil {
		then()
	}
	if !g.cur.Terminated() {
		g.cur.Jmp(join.ID())
	}
	g.cur = eb
	if els != nil {
		els()
	}
	if !g.cur.Terminated() {
		g.cur.Jmp(join.ID())
	}
	g.cur = join
}

// switchOn builds a multiway dispatch; the last function handles the
// default (out-of-range) case.
func (g *gen) switchOn(idx ir.Reg, cases ...func()) {
	blocks := make([]*ir.BlockBuilder, len(cases))
	targets := make([]ir.BlockID, len(cases))
	for i := range cases {
		blocks[i] = g.pb.NewBlock()
		targets[i] = blocks[i].ID()
	}
	join := g.pb.NewBlock()
	g.cur.Switch(idx, targets...)
	for i, fn := range cases {
		g.cur = blocks[i]
		fn()
		if !g.cur.Terminated() {
			g.cur.Jmp(join.ID())
		}
	}
	g.cur = join
}

// call invokes callee and continues in a fresh block.
func (g *gen) call(dst ir.Reg, callee ir.ProcID, args ...ir.Reg) {
	cont := g.pb.NewBlock()
	g.cur.Call(dst, callee, cont.ID(), args...)
	g.cur = cont
}

// ret ends the procedure.
func (g *gen) ret(r ir.Reg) { g.cur.Ret(r) }

// scratch is the register gen's helpers use for conditions; benchmark
// bodies must not keep live values in it across helper calls.
const scratch ir.Reg = 63

// mustBuild wraps Build with a panic-on-invalid check used by the
// registry's self-test.
func mustBuild(b *Benchmark, in Input) *ir.Program {
	p := b.Build(in)
	if err := ir.Verify(p); err != nil {
		panic(fmt.Sprintf("bench %s: invalid program: %v", b.Name, err))
	}
	return p
}
