package bench

import (
	"testing"

	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/profile"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"alt", "ph", "corr", "wc", "com", "eqn", "esp",
		"gcc", "go", "ijpeg", "li", "m88k", "perl", "vortex"}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("suite has %d benchmarks %v, want %d", len(names), names, len(want))
	}
	for _, w := range want {
		if ByName(w) == nil {
			t.Errorf("missing benchmark %q", w)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName must return nil for unknown names")
	}
}

func TestAllBenchmarksBuildAndRun(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			for _, in := range []Input{b.Train, b.Test} {
				prog := mustBuild(b, in)
				if err := ir.Verify(prog); err != nil {
					t.Fatalf("%s/%s: %v", b.Name, in.Label, err)
				}
				res, err := interp.Run(prog, interp.Config{})
				if err != nil {
					t.Fatalf("%s/%s: %v", b.Name, in.Label, err)
				}
				if res.DynBranches < 1000 {
					t.Errorf("%s/%s: only %d dynamic branches; too small to schedule",
						b.Name, in.Label, res.DynBranches)
				}
				if len(res.Output) == 0 {
					t.Errorf("%s/%s: no observable output", b.Name, in.Label)
				}
			}
		})
	}
}

func TestBenchmarksDeterministic(t *testing.T) {
	for _, b := range All() {
		r1, err := interp.Run(b.Build(b.Test), interp.Config{})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		r2, err := interp.Run(b.Build(b.Test), interp.Config{})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if r1.Ret != r2.Ret || len(r1.Output) != len(r2.Output) {
			t.Fatalf("%s: nondeterministic results", b.Name)
		}
		for i := range r1.Output {
			if r1.Output[i] != r2.Output[i] {
				t.Fatalf("%s: nondeterministic output[%d]", b.Name, i)
			}
		}
	}
}

func TestTrainAndTestInputsDiffer(t *testing.T) {
	// Benchmarks with real inputs must behave differently on train vs
	// test (otherwise the train/test methodology is vacuous); the
	// microbenchmarks are identical by design, like the paper's "null"
	// inputs.
	for _, b := range All() {
		if b.Category == "micro" && b.Name != "wc" {
			continue
		}
		tr, err := interp.Run(b.Build(b.Train), interp.Config{})
		if err != nil {
			t.Fatalf("%s train: %v", b.Name, err)
		}
		te, err := interp.Run(b.Build(b.Test), interp.Config{})
		if err != nil {
			t.Fatalf("%s test: %v", b.Name, err)
		}
		if tr.DynInstrs == te.DynInstrs {
			t.Errorf("%s: train and test runs identical (%d instrs)", b.Name, tr.DynInstrs)
		}
	}
}

func TestSuiteScaleReport(t *testing.T) {
	if testing.Short() {
		t.Skip("report only")
	}
	for _, b := range All() {
		prog := b.Build(b.Test)
		res, err := interp.Run(prog, interp.Config{})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		t.Logf("%-7s size=%6.1fKB branches=%8d instrs=%9d blocks=%8d calls=%7d",
			b.Name, float64(prog.CodeBytes())/1024, res.DynBranches,
			res.DynInstrs, res.DynBlocks, res.Calls)
	}
}

func TestAltPatternIsTTTF(t *testing.T) {
	// Verify the conditional inside alt's loop really alternates TTTF:
	// the rare arm executes exactly Scale/4 times.
	prog := ByName("alt").Build(Input{Scale: 400})
	res, err := interp.Run(prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret == 0 {
		t.Fatal("alt produced zero checksum")
	}
	// 400 iterations, 2 branches each (loop + cond), plus loop exit.
	if res.DynBranches != 801 {
		t.Fatalf("alt dynamic branches = %d, want 801", res.DynBranches)
	}
}

func TestWcCountsAreConsistent(t *testing.T) {
	prog := ByName("wc").Build(Input{Seed: 7, Scale: 5000})
	res, err := interp.Run(prog, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 3 {
		t.Fatalf("wc output = %v", res.Output)
	}
	lines, words, chars := res.Output[0], res.Output[1], res.Output[2]
	if chars != 5000 {
		t.Fatalf("chars = %d, want 5000", chars)
	}
	if words <= lines || words == 0 || lines == 0 {
		t.Fatalf("implausible counts: lines=%d words=%d", lines, words)
	}
}

// profileForTest runs prog once with an edge profiler attached.
func profileForTest(t *testing.T, prog *ir.Program) *profile.EdgeProfile {
	t.Helper()
	ep := profile.NewEdgeProfiler(prog)
	if _, err := interp.Run(prog, interp.Config{Observer: ep}); err != nil {
		t.Fatal(err)
	}
	return ep.Profile()
}

func TestColdMassIsLukewarm(t *testing.T) {
	// The utility procedures exist to create I-cache pressure; they
	// must execute (so layout keeps them live) but stay well below the
	// hot kernel's frequency.
	b := ByName("m88k")
	prog := b.Build(b.Test)
	ep := profileForTest(t, prog)
	var mainEntries, utilCalls int64
	for _, p := range prog.Procs {
		if p.Name == "main" {
			mainEntries = ep.BlockFreq(p.ID, p.Entry().ID)
		}
		if p.Name == "util" {
			utilCalls += ep.Entries(p.ID)
		}
	}
	if utilCalls == 0 {
		t.Fatal("cold mass never executed")
	}
	_ = mainEntries
	// Every util proc individually stays lukewarm.
	for _, p := range prog.Procs {
		if p.Name != "util" {
			continue
		}
		if n := ep.Entries(p.ID); n > 1000 {
			t.Fatalf("util proc %d called %d times; cold mass too hot", p.ID, n)
		}
	}
}

func TestBenchmarkCodeSizesScale(t *testing.T) {
	// Relative binary sizes should mirror the paper's ordering: gcc
	// largest, micro tiny.
	size := func(name string) int64 {
		b := ByName(name)
		return b.Build(b.Test).CodeBytes()
	}
	if !(size("gcc") > size("m88k") && size("m88k") > size("wc") && size("wc") > size("alt")) {
		t.Fatalf("size ordering broken: gcc=%d m88k=%d wc=%d alt=%d",
			size("gcc"), size("m88k"), size("wc"), size("alt"))
	}
}

// TestConcurrentBuildsAreIndependent is the parallel pipeline's
// contract with this package: Build must be callable from many
// goroutines at once (the registry is only read after init) and every
// concurrent build of the same input must produce a structurally
// identical program. Run under -race this also proves builders share no
// hidden mutable state.
func TestConcurrentBuildsAreIndependent(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			const dup = 4
			progs := make([]*ir.Program, dup)
			done := make(chan int, dup)
			for i := 0; i < dup; i++ {
				go func(i int) {
					progs[i] = b.Build(b.Test)
					done <- i
				}(i)
			}
			for i := 0; i < dup; i++ {
				<-done
			}
			for i := 1; i < dup; i++ {
				if progs[i].NumInstrs() != progs[0].NumInstrs() {
					t.Fatalf("build %d has %d instrs, build 0 has %d",
						i, progs[i].NumInstrs(), progs[0].NumInstrs())
				}
				if len(progs[i].Procs) != len(progs[0].Procs) {
					t.Fatalf("build %d has %d procs, build 0 has %d",
						i, len(progs[i].Procs), len(progs[0].Procs))
				}
			}
		})
	}
}
