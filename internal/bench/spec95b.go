package bench

import "pathsched/internal/ir"

// li, m88ksim, perl, and vortex. Table 1's characterizations: li is
// the longest-running benchmark, a recursive interpreter with constant
// procedure calls and tiny loops; m88ksim and perl are dispatch-loop
// interpreters (multiway branches, with perl adding variable-length
// string loops); vortex is a call-heavy object store doing branchy
// structure walks.

func init() {
	register(&Benchmark{
		Name:        "li",
		Description: "XLISP interpreter (recursive evaluator)",
		Category:    "SPECint95",
		Build:       buildLi,
		Train:       Input{Label: "train exprs", Seed: 1515, Scale: 260},
		Test:        Input{Label: "SPEC95 ref", Seed: 1616, Scale: 430},
	})
	register(&Benchmark{
		Name:        "m88k",
		Description: "Microprocessor simulator (dispatch loop)",
		Category:    "SPECint95",
		Build:       buildM88k,
		Train:       Input{Label: "dhry train", Seed: 1717, Scale: 60000},
		Test:        Input{Label: "dhry (SPEC95 test)", Seed: 1818, Scale: 100000},
	})
	register(&Benchmark{
		Name:        "perl",
		Description: "Interpreted programming language (dispatch + strings)",
		Category:    "SPECint95",
		Build:       buildPerl,
		Train:       Input{Label: "train script", Seed: 1919, Scale: 30000},
		Test:        Input{Label: "primes (SPEC95 ref)", Seed: 2020, Scale: 50000},
	})
	register(&Benchmark{
		Name:        "vortex",
		Description: "Object-oriented database (hash store)",
		Category:    "SPECint95",
		Build:       buildVortex,
		Train:       Input{Label: "train ops", Seed: 2121, Scale: 25000},
		Test:        Input{Label: "SPEC95 test", Seed: 2222, Scale: 40000},
	})
}

// buildLi: expression trees over cons cells (tag/car/cdr planes in
// memory) evaluated by a recursive eval procedure with a type switch.
// Tags: 0 number (value in car), 1 add, 2 mul, 3 if.
func buildLi(in Input) *ir.Program {
	const maxNodes = 4096
	r := newRng(in.Seed)
	tag := make([]int64, maxNodes)
	car := make([]int64, maxNodes)
	cdr := make([]int64, maxNodes)
	next := int64(0)
	alloc := func() int64 { n := next; next++; return n }
	var genTree func(depth int64) int64
	genTree = func(depth int64) int64 {
		n := alloc()
		if depth <= 0 || r.intn(3) == 0 || next > maxNodes-8 {
			tag[n] = 0
			car[n] = r.intn(100)
			return n
		}
		switch r.intn(4) {
		case 0, 1:
			tag[n] = 1 // add
			car[n] = genTree(depth - 1)
			cdr[n] = genTree(depth - 1)
		case 2:
			tag[n] = 2 // mul
			car[n] = genTree(depth - 1)
			cdr[n] = genTree(depth - 1)
		default:
			tag[n] = 3 // if
			car[n] = genTree(depth - 1)
			pair := alloc()
			tag[pair] = 0
			pair2 := pair // pair node: car = then, cdr = else
			car[pair2] = genTree(depth - 1)
			cdr[pair2] = genTree(depth - 1)
			cdr[n] = pair2
		}
		return n
	}
	var roots []int64
	for next < maxNodes-64 && int64(len(roots)) < 24 {
		roots = append(roots, genTree(6))
	}

	const tagBase, carBase, cdrBase = 0, maxNodes, 2 * maxNodes
	bd := ir.NewBuilder("li", 3*maxNodes+64)
	bd.Data(tagBase, tag...)
	bd.Data(carBase, car...)
	bd.Data(cdrBase, cdr...)
	cold := addColdMass(bd, 61, 32, 5)

	eval := bd.Proc("eval")
	{
		g := newGen(eval)
		const n = ir.RegArg0
		const t, a, b, c, pair = 8, 9, 10, 11, 12
		g.emit(ir.Load(t, n, tagBase))
		g.switchOn(t,
			func() { // number
				g.emit(ir.Load(ir.RegRet, n, carBase))
				g.ret(ir.RegRet)
			},
			func() { // add
				g.emit(ir.Load(a, n, carBase))
				g.call(a, eval.ID(), a)
				g.emit(ir.Load(b, n, cdrBase))
				g.emit(ir.Mov(t, a)) // protect a across the call
				g.call(b, eval.ID(), b)
				g.emit(ir.Add(ir.RegRet, t, b))
				g.ret(ir.RegRet)
			},
			func() { // mul
				g.emit(ir.Load(a, n, carBase))
				g.call(a, eval.ID(), a)
				g.emit(ir.Load(b, n, cdrBase))
				g.emit(ir.Mov(t, a))
				g.call(b, eval.ID(), b)
				g.emit(ir.Mul(ir.RegRet, t, b), ir.AndI(ir.RegRet, ir.RegRet, 0xffffff))
				g.ret(ir.RegRet)
			},
			func() { // if
				g.emit(ir.Load(a, n, carBase))
				g.call(a, eval.ID(), a)
				g.emit(ir.Load(pair, n, cdrBase), ir.AndI(c, a, 1))
				g.ifElse(c, func() {
					g.emit(ir.Load(b, pair, carBase))
					g.call(ir.RegRet, eval.ID(), b)
					g.ret(ir.RegRet)
				}, func() {
					g.emit(ir.Load(b, pair, cdrBase))
					g.call(ir.RegRet, eval.ID(), b)
					g.ret(ir.RegRet)
				})
			},
		)
		// Unreachable default join.
		g.emit(ir.MovI(ir.RegRet, 0))
		g.ret(ir.RegRet)
	}

	pb := bd.Proc("main")
	g := newGen(pb)
	const rep, ri, sum, root, v, evalCtr = 8, 9, 10, 11, 12, 13
	g.emit(ir.MovI(sum, 0), ir.MovI(evalCtr, 0))
	g.forRange(rep, 0, in.Scale, 1, func() {
		g.forRange(ri, 0, int64(len(roots)), 1, func() {
			g.emit(ir.AddI(evalCtr, evalCtr, 1))
			touchColdMass(g, cold, evalCtr, 3, 32)
			g.emit(ir.Mov(root, ri))
			g.emit(ir.Load(v, root, rootTableBase))
			g.call(v, eval.ID(), v)
			g.emit(ir.Add(sum, sum, v), ir.AndI(sum, sum, 0xffffff))
		})
	})
	g.emit(ir.Emit(sum))
	g.ret(sum)
	prog := bd.Program()
	// Root table lives just past the cdr plane.
	prog.MemSize = rootTableBase + int64(len(roots)) + 8
	prog.Data = append(prog.Data, ir.DataSeg{Addr: rootTableBase, Values: roots})
	if err := ir.Verify(prog); err != nil {
		panic("bench li: " + err.Error())
	}
	return prog
}

const rootTableBase = 3 * 4096

// buildM88k: a fetch-decode-execute loop over a synthetic instruction
// stream. The dominant control structure is one hot multiway dispatch
// whose case mix (and hence path behaviour) follows the simulated
// program.
func buildM88k(in Input) *ir.Program {
	const codeLen = 1024 // instructions; stream wraps around
	const nregs = 16
	r := newRng(in.Seed)
	// Triples (op, a, b) at [0, 3*codeLen); simulated registers at
	// regBase; simulated data memory at datBase.
	ops := make([]int64, 3*codeLen)
	for i := 0; i < codeLen; i++ {
		op := int64(0)
		switch v := r.intn(100); {
		case v < 22:
			op = 1 // add
		case v < 38:
			op = 2 // sub
		case v < 48:
			op = 3 // and
		case v < 58:
			op = 4 // xor
		case v < 72:
			op = 5 // li
		case v < 82:
			op = 6 // load
		case v < 90:
			op = 7 // store
		case v < 96:
			op = 8 // brz
		default:
			op = 9 // nop
		}
		ops[3*i] = op
		ops[3*i+1] = r.intn(nregs)
		ops[3*i+2] = r.intn(nregs)
		if op == 5 {
			ops[3*i+2] = r.intn(1000) // immediate
		}
		if op == 8 {
			ops[3*i+2] = r.intn(12) + 2 // forward skip distance
		}
	}
	regBase := int64(3 * codeLen)
	datBase := regBase + nregs
	const datLen = 512
	bd := ir.NewBuilder("m88k", datBase+datLen+16)
	bd.Data(0, ops...)
	cold := addColdMass(bd, 67, 64, 8)

	pb := bd.Proc("main")
	g := newGen(pb)
	const pc, steps, op, a, b, va, vb, t, c = 8, 9, 10, 11, 12, 13, 14, 15, 16
	g.emit(ir.MovI(pc, 0), ir.MovI(steps, 0))
	g.while(func() ir.Reg {
		g.emit(ir.CmpLTI(scratch, steps, in.Scale))
		return scratch
	}, func() {
		touchColdMass(g, cold, steps, 5, 64)
		g.emit(
			ir.MulI(t, pc, 3),
			ir.Load(op, t, 0),
			ir.Load(a, t, 1),
			ir.Load(b, t, 2),
			ir.AddI(steps, steps, 1),
			ir.AddI(pc, pc, 1),
		)
		// Wrap the program counter.
		g.emit(ir.CmpGEI(c, pc, codeLen))
		g.ifElse(c, func() { g.emit(ir.MovI(pc, 0)) }, nil)
		g.switchOn(op,
			func() { /* 0: halt — treated as nop; steps cap ends the run */ },
			func() { // 1: add
				g.emit(ir.Load(va, a, regBase), ir.Load(vb, b, regBase),
					ir.Add(va, va, vb), ir.Store(a, regBase, va))
			},
			func() { // 2: sub
				g.emit(ir.Load(va, a, regBase), ir.Load(vb, b, regBase),
					ir.Sub(va, va, vb), ir.Store(a, regBase, va))
			},
			func() { // 3: and
				g.emit(ir.Load(va, a, regBase), ir.Load(vb, b, regBase),
					ir.And(va, va, vb), ir.Store(a, regBase, va))
			},
			func() { // 4: xor
				g.emit(ir.Load(va, a, regBase), ir.Load(vb, b, regBase),
					ir.Xor(va, va, vb), ir.Store(a, regBase, va))
			},
			func() { // 5: li
				g.emit(ir.Store(a, regBase, b))
			},
			func() { // 6: load
				g.emit(ir.Load(vb, b, regBase), ir.AndI(vb, vb, datLen-1),
					ir.AddI(vb, vb, datBase), ir.Load(va, vb, 0),
					ir.Store(a, regBase, va))
			},
			func() { // 7: store
				g.emit(ir.Load(vb, b, regBase), ir.AndI(vb, vb, datLen-1),
					ir.AddI(vb, vb, datBase), ir.Load(va, a, regBase),
					ir.Store(vb, 0, va))
			},
			func() { // 8: brz — skip forward if reg a is zero
				g.emit(ir.Load(va, a, regBase), ir.CmpEQI(c, va, 0))
				g.ifElse(c, func() {
					g.emit(ir.Add(pc, pc, b))
					g.emit(ir.CmpGEI(c, pc, codeLen))
					g.ifElse(c, func() { g.emit(ir.AddI(pc, pc, -codeLen)) }, nil)
				}, nil)
			},
			func() { /* 9+: nop / default */ },
		)
	})
	// Emit a checksum of the simulated register file so transformations
	// are checked against the simulated machine's final state.
	const sum, ri2 = 17, 18
	g.emit(ir.MovI(sum, 0))
	g.forRange(ri2, 0, nregs, 1, func() {
		g.emit(ir.Load(t, ri2, regBase), ir.Add(sum, sum, t), ir.AndI(sum, sum, 0xffffff))
	})
	g.emit(ir.Emit(sum), ir.Emit(steps))
	g.ret(steps)
	return bd.Finish()
}

// buildPerl: an opcode dispatch loop whose cases include
// variable-length string work (hashing and comparing byte runs), so
// the dispatch's dominant paths thread through data-dependent inner
// loops.
func buildPerl(in Input) *ir.Program {
	const codeLen = 512
	const heapLen = 2048
	r := newRng(in.Seed)
	code := make([]int64, 2*codeLen) // (op, arg) pairs
	for i := 0; i < codeLen; i++ {
		v := r.intn(100)
		switch {
		case v < 35:
			code[2*i] = 0 // hash string
		case v < 55:
			code[2*i] = 1 // compare strings
		case v < 75:
			code[2*i] = 2 // arith
		case v < 90:
			code[2*i] = 3 // index
		default:
			code[2*i] = 4 // misc
		}
		code[2*i+1] = r.intn(heapLen - 64)
	}
	heap := make([]int64, heapLen)
	for i := range heap {
		heap[i] = 97 + r.intn(26)
	}
	heapBase := int64(2 * codeLen)
	bd := ir.NewBuilder("perl", heapBase+heapLen+16)
	bd.Data(0, code...)
	bd.Data(heapBase, heap...)
	cold := addColdMass(bd, 71, 64, 8)

	// hash(base, len) -> djb2-style rolling hash over the heap.
	hash := bd.Proc("hash")
	{
		hg := newGen(hash)
		const base, ln = ir.RegArg0, ir.RegArg0 + 1
		const i, h, ch, t = 8, 9, 10, 11
		hg.emit(ir.MovI(h, 5381))
		hg.while(func() ir.Reg {
			hg.emit(ir.CmpLT(scratch, i, ln))
			return scratch
		}, func() {
			hg.emit(
				ir.Add(t, base, i),
				ir.Load(ch, t, heapBase),
				ir.MulI(h, h, 33),
				ir.Add(h, h, ch),
				ir.AndI(h, h, 0xffffff),
				ir.AddI(i, i, 1),
			)
		})
		hg.ret(h)
	}

	pb := bd.Proc("main")
	g := newGen(pb)
	const ip, steps, op, arg, acc, t, c, ln, i2, ch = 8, 9, 10, 11, 12, 13, 14, 15, 16, 17
	g.emit(ir.MovI(ip, 0), ir.MovI(steps, 0), ir.MovI(acc, 0))
	g.while(func() ir.Reg {
		g.emit(ir.CmpLTI(scratch, steps, in.Scale))
		return scratch
	}, func() {
		touchColdMass(g, cold, steps, 4, 64)
		g.emit(
			ir.MulI(t, ip, 2),
			ir.Load(op, t, 0),
			ir.Load(arg, t, 1),
			ir.AddI(steps, steps, 1),
			ir.AddI(ip, ip, 1),
		)
		g.emit(ir.CmpGEI(c, ip, codeLen))
		g.ifElse(c, func() { g.emit(ir.MovI(ip, 0)) }, nil)
		g.switchOn(op,
			func() { // hash a short string: data-dependent length 3..10
				g.emit(
					ir.AndI(ln, arg, 7),
					ir.AddI(ln, ln, 3),
				)
				g.call(t, hash.ID(), arg, ln)
				g.emit(ir.Add(acc, acc, t), ir.AndI(acc, acc, 0xffffff))
			},
			func() { // compare two runs until mismatch
				g.emit(ir.MovI(i2, 0), ir.MovI(c, 1))
				g.while(func() ir.Reg {
					g.emit(ir.CmpLTI(scratch, i2, 12))
					g.emit(ir.And(scratch, scratch, c))
					return scratch
				}, func() {
					g.emit(
						ir.Add(t, arg, i2),
						ir.Load(ch, t, heapBase),
						ir.AddI(t, t, 16),
						ir.Load(ln, t, heapBase),
						ir.CmpEQ(c, ch, ln),
						ir.AddI(i2, i2, 1),
					)
				})
				g.emit(ir.Add(acc, acc, i2))
			},
			func() { // arith
				g.emit(ir.MulI(t, arg, 3), ir.Xor(acc, acc, t), ir.AndI(acc, acc, 0xffffff))
			},
			func() { // index: single heap probe
				g.emit(ir.Load(t, arg, heapBase), ir.Add(acc, acc, t))
			},
			func() { // misc/default
				g.emit(ir.AddI(acc, acc, 1))
			},
		)
	})
	g.emit(ir.Emit(acc))
	g.ret(acc)
	return bd.Finish()
}

// buildVortex: a chained hash store. lookup and insert are separate
// procedures; the driver replays a seeded op stream that is mostly
// hits (lookups of present keys) with a steady trickle of inserts and
// misses — call-heavy, short data-dependent chain walks.
func buildVortex(in Input) *ir.Program {
	const buckets = 256
	const maxRecs = 4096
	// Memory: bucketHead [0,256), rec next/key/val planes, op stream.
	const nextBase = buckets
	const keyBase = nextBase + maxRecs
	const valBase = keyBase + maxRecs
	const ctrlBase = valBase + maxRecs // [0]=nextFree
	opsBase := int64(ctrlBase + 8)

	r := newRng(in.Seed)
	nops := in.Scale
	ops := make([]int64, 2*nops) // (kind, key): kind 0 lookup, 1 insert
	liveKeys := []int64{}
	for i := int64(0); i < nops; i++ {
		switch v := r.intn(100); {
		case v < 70 && len(liveKeys) > 0: // lookup existing
			ops[2*i] = 0
			ops[2*i+1] = liveKeys[r.intn(int64(len(liveKeys)))]
		case v < 85: // insert new
			ops[2*i] = 1
			k := r.intn(1 << 20)
			ops[2*i+1] = k
			if len(liveKeys) < 3000 {
				liveKeys = append(liveKeys, k)
			}
		default: // lookup probably-missing
			ops[2*i] = 0
			ops[2*i+1] = r.intn(1 << 20)
		}
	}
	bd := ir.NewBuilder("vortex", opsBase+2*nops+16)
	bd.Data(opsBase, ops...)
	cold := addColdMass(bd, 73, 64, 8)
	// bucket heads start at 0 = empty (record ids start at 1).

	// lookup(key) -> val+1 or 0.
	lookup := bd.Proc("lookup")
	{
		lg := newGen(lookup)
		const key = ir.RegArg0
		const h, cur, k, c = 8, 9, 10, 11
		lg.emit(ir.AndI(h, key, buckets-1), ir.Load(cur, h, 0))
		lg.while(func() ir.Reg {
			lg.emit(ir.CmpNEI(scratch, cur, 0))
			return scratch
		}, func() {
			lg.emit(ir.Load(k, cur, keyBase), ir.CmpEQ(c, k, key))
			lg.ifElse(c, func() {
				lg.emit(ir.Load(ir.RegRet, cur, valBase), ir.AddI(ir.RegRet, ir.RegRet, 1))
				lg.ret(ir.RegRet)
			}, nil)
			lg.emit(ir.Load(cur, cur, nextBase))
		})
		lg.emit(ir.MovI(ir.RegRet, 0))
		lg.ret(ir.RegRet)
	}

	// insert(key, val) -> record id (or 0 when full).
	insert := bd.Proc("insert")
	{
		ig := newGen(insert)
		const key, val = ir.RegArg0, ir.RegArg0 + 1
		const h, id, c, t = 8, 9, 10, 11
		ig.emit(ir.MovI(t, ctrlBase), ir.Load(id, t, 0))
		ig.emit(ir.CmpGEI(c, id, maxRecs-1))
		ig.ifElse(c, func() {
			ig.emit(ir.MovI(ir.RegRet, 0))
			ig.ret(ir.RegRet)
		}, nil)
		ig.emit(
			ir.AddI(id, id, 1),
			ir.MovI(t, ctrlBase),
			ir.Store(t, 0, id),
			ir.AndI(h, key, buckets-1),
			// push front: next[id] = head[h]; head[h] = id
			ir.Load(t, h, 0),
			ir.Store(id, nextBase, t),
			ir.Store(h, 0, id),
			ir.Store(id, keyBase, key),
			ir.Store(id, valBase, val),
		)
		ig.ret(id)
	}

	pb := bd.Proc("main")
	g := newGen(pb)
	const i, kind, key, res, hits, t = 8, 9, 10, 11, 12, 13
	g.emit(ir.MovI(hits, 0))
	g.forRange(i, 0, nops, 1, func() {
		touchColdMass(g, cold, i, 4, 64)
		g.emit(
			ir.MulI(t, i, 2),
			ir.AddI(t, t, opsBase),
			ir.Load(kind, t, 0),
			ir.Load(key, t, 1),
			ir.CmpEQI(scratch, kind, 0),
		)
		g.emit(ir.Mov(14, scratch)) // preserve across helper scratch use
		g.ifElse(14, func() {
			g.call(res, lookup.ID(), key)
			g.emit(ir.CmpNEI(scratch, res, 0))
			g.emit(ir.Mov(15, scratch))
			g.ifElse(15, func() {
				g.emit(ir.AddI(hits, hits, 1))
			}, nil)
		}, func() {
			g.emit(ir.AndI(res, key, 0xfff))
			g.call(res, insert.ID(), key, res)
		})
	})
	g.emit(ir.Emit(hits))
	g.ret(hits)
	return bd.Finish()
}
