package bench

import "pathsched/internal/ir"

// eqntott and espresso: the SPECint92 members of Table 1 beyond
// compress. eqntott's performance is dominated by a high-iteration
// comparison loop whose guarded block is tiny (the paper notes loop
// unrolling matters more for it than correlation exploitation, §4);
// espresso is branchy boolean-mask crunching over cube lists.

func init() {
	register(&Benchmark{
		Name:        "eqn",
		Description: "Translates boolean equations to truth tables",
		Category:    "SPECint92",
		Build:       buildEqntott,
		Train:       Input{Label: "train encoder", Seed: 505, Scale: 900},
		Test:        Input{Label: "priority encoder (SPEC92 ref)", Seed: 606, Scale: 1500},
	})
	register(&Benchmark{
		Name:        "esp",
		Description: "Boolean minimization",
		Category:    "SPECint92",
		Build:       buildEspresso,
		Train:       Input{Label: "train pla", Seed: 707, Scale: 120},
		Test:        Input{Label: "tial (SPEC92 ref)", Seed: 808, Scale: 200},
	})
}

// buildEqntott: Scale vector pairs of 64 words each are compared by a
// cmppt-style procedure. Vectors are mostly equal with a difference
// near the tail, so the inner loop's "elements differ" branch — which
// guards a very small block — is highly biased and iterates ~64 times
// per call: unrolling territory.
func buildEqntott(in Input) *ir.Program {
	const vecLen = 64
	r := newRng(in.Seed)
	pairs := in.Scale
	// Memory: pairs of vectors laid out consecutively: a at
	// pairBase, b at pairBase+vecLen.
	var data []int64
	for p := int64(0); p < pairs; p++ {
		a := make([]int64, vecLen)
		for i := range a {
			a[i] = r.intn(4)
		}
		b := append([]int64(nil), a...)
		if r.intn(8) != 0 { // most pairs differ somewhere near the end
			pos := vecLen - 1 - r.intn(6)
			b[pos] = a[pos] + 1 + r.intn(2)
		}
		data = append(data, a...)
		data = append(data, b...)
	}
	bd := ir.NewBuilder("eqn", int64(len(data))+64)
	bd.Data(0, data...)
	cold := addColdMass(bd, 41, 16, 5)

	// cmppt(aBase, bBase) -> -1/0/1, comparing vecLen words.
	cmp := bd.Proc("cmppt")
	cg := newGen(cmp)
	{
		const aBase, bBase = ir.RegArg0, ir.RegArg0 + 1
		const i, av, bv, c, t = 8, 9, 10, 11, 12
		cg.forRange(i, 0, vecLen, 1, func() {
			cg.emit(
				ir.Add(t, aBase, i),
				ir.Load(av, t, 0),
				ir.Add(t, bBase, i),
				ir.Load(bv, t, 0),
				ir.CmpNE(c, av, bv),
			)
			// The tiny guarded block: almost never entered until the
			// difference position.
			cg.ifElse(c, func() {
				cg.emit(ir.CmpLT(c, av, bv))
				cg.ifElse(c, func() {
					cg.emit(ir.MovI(ir.RegRet, -1))
					cg.ret(ir.RegRet)
				}, func() {
					cg.emit(ir.MovI(ir.RegRet, 1))
					cg.ret(ir.RegRet)
				})
				// Unreachable joins are harmless; the verifier accepts
				// them and layout skips them.
			}, nil)
		})
		cg.emit(ir.MovI(ir.RegRet, 0))
		cg.ret(ir.RegRet)
	}

	pb := bd.Proc("main")
	g := newGen(pb)
	const p, sum, a1, b1, res = 8, 9, 10, 11, 12
	g.emit(ir.MovI(sum, 0))
	g.forRange(p, 0, pairs, 1, func() {
		touchColdMass(g, cold, p, 2, 16)
		g.emit(
			ir.MulI(a1, p, 2*vecLen),
			ir.AddI(b1, a1, vecLen),
		)
		g.call(res, cmp.ID(), a1, b1)
		g.emit(ir.Add(sum, sum, res), ir.AddI(sum, sum, 2))
	})
	g.emit(ir.Emit(sum))
	g.ret(sum)
	return bd.Finish()
}

// buildEspresso: a cube-cover pass. Scale cubes of 4 mask words each;
// for every ordered pair, intersect masks word by word and classify
// (disjoint / contained / overlapping) with moderately biased
// branches, calling small helper procedures — espresso's flavour of
// pointer-light mask crunching over quadratic pair loops.
func buildEspresso(in Input) *ir.Program {
	const cubeWords = 4
	r := newRng(in.Seed)
	n := in.Scale
	data := make([]int64, n*cubeWords)
	for i := range data {
		// Sparse-ish masks so intersections are often empty.
		data[i] = int64(r.next() & r.next() & 0xffff)
	}
	bd := ir.NewBuilder("esp", int64(len(data))+64)
	bd.Data(0, data...)
	cold := addColdMass(bd, 43, 32, 7)

	// disjoint(aBase, bBase) -> 1 if masks never overlap.
	dis := bd.Proc("disjoint")
	{
		dg := newGen(dis)
		const aBase, bBase = ir.RegArg0, ir.RegArg0 + 1
		const i, av, bv, c, t, acc = 8, 9, 10, 11, 12, 13
		dg.emit(ir.MovI(acc, 0))
		dg.forRange(i, 0, cubeWords, 1, func() {
			dg.emit(
				ir.Add(t, aBase, i),
				ir.Load(av, t, 0),
				ir.Add(t, bBase, i),
				ir.Load(bv, t, 0),
				ir.And(av, av, bv),
				ir.Or(acc, acc, av),
			)
		})
		dg.emit(ir.CmpEQI(ir.RegRet, acc, 0))
		dg.ret(ir.RegRet)
	}

	// contains(aBase, bBase) -> 1 if b ⊆ a.
	con := bd.Proc("contains")
	{
		cg := newGen(con)
		const aBase, bBase = ir.RegArg0, ir.RegArg0 + 1
		const i, av, bv, c, t, ok = 8, 9, 10, 11, 12, 13
		cg.emit(ir.MovI(ok, 1))
		cg.forRange(i, 0, cubeWords, 1, func() {
			cg.emit(
				ir.Add(t, aBase, i),
				ir.Load(av, t, 0),
				ir.Add(t, bBase, i),
				ir.Load(bv, t, 0),
				ir.And(av, av, bv),
				ir.CmpEQ(c, av, bv),
			)
			cg.ifElse(c, nil, func() {
				cg.emit(ir.MovI(ok, 0))
			})
		})
		cg.ret(ok)
	}

	pb := bd.Proc("main")
	g := newGen(pb)
	const i, j, ai, bj, c, res, covers, djs, ovl = 8, 9, 10, 11, 12, 13, 14, 15, 16
	g.emit(ir.MovI(covers, 0), ir.MovI(djs, 0), ir.MovI(ovl, 0))
	g.forRange(i, 0, n, 1, func() {
		touchColdMass(g, cold, i, 0, 32)
		g.forRange(j, 0, n, 1, func() {
			g.emit(ir.CmpEQ(c, i, j))
			g.ifElse(c, nil, func() {
				g.emit(
					ir.MulI(ai, i, cubeWords),
					ir.MulI(bj, j, cubeWords),
				)
				g.call(res, dis.ID(), ai, bj)
				g.emit(ir.CmpEQI(c, res, 1))
				g.ifElse(c, func() {
					g.emit(ir.AddI(djs, djs, 1))
				}, func() {
					g.call(res, con.ID(), ai, bj)
					g.emit(ir.CmpEQI(c, res, 1))
					g.ifElse(c, func() {
						g.emit(ir.AddI(covers, covers, 1))
					}, func() {
						g.emit(ir.AddI(ovl, ovl, 1))
					})
				})
			})
		})
	})
	g.emit(ir.Emit(covers), ir.Emit(djs), ir.Emit(ovl))
	g.ret(ovl)
	return bd.Finish()
}
