package bench

import "pathsched/internal/ir"

// wc and compress: the two byte-stream utilities of Table 1. Their
// control flow is a single dominant loop whose branches follow the
// *data*; the generators synthesize inputs with the same statistical
// texture (English-like word/space structure for wc, compressible
// repetitive data for compress).

func init() {
	register(&Benchmark{
		Name:        "wc",
		Description: "UNIX word count program",
		Category:    "micro",
		Build:       buildWc,
		Train:       Input{Label: "train text", Seed: 101, Scale: 20000},
		Test:        Input{Label: "PostScript conference paper", Seed: 202, Scale: 30000},
	})
	register(&Benchmark{
		Name:        "com",
		Description: "Lempel/Ziv file compression",
		Category:    "SPECint92",
		Build:       buildCompress,
		Train:       Input{Label: "train data", Seed: 303, Scale: 40000},
		Test:        Input{Label: "MPEG movie data", Seed: 404, Scale: 70000},
	})
}

// genText synthesizes length bytes of word/whitespace text: word
// characters with spaces roughly every 2–9 characters and newlines
// roughly every 8 words.
func genText(r *rng, length int64) []int64 {
	text := make([]int64, length)
	wordLeft := r.intn(8) + 2
	wordsOnLine := int64(0)
	for i := range text {
		switch {
		case wordLeft > 0:
			text[i] = 97 + r.intn(26) // letter
			wordLeft--
		case wordsOnLine >= 8:
			text[i] = 10 // newline
			wordsOnLine = 0
			wordLeft = r.intn(8) + 2
		default:
			text[i] = 32 // space
			wordsOnLine++
			wordLeft = r.intn(8) + 2
		}
	}
	return text
}

// buildWc scans the text counting lines, words, and characters with
// the classic in-word state machine. The "inside a word" branch is
// strongly biased but its flips are path-predictable (a space is
// usually followed by a letter).
func buildWc(in Input) *ir.Program {
	r := newRng(in.Seed)
	text := genText(r, in.Scale)
	bd := ir.NewBuilder("wc", in.Scale+16)
	bd.Data(0, text...)
	cold := addColdMass(bd, 31, 16, 4)
	pb := bd.Proc("main")
	g := newGen(pb)
	const i, ch, lines, words, chars, inword, c = 1, 2, 3, 4, 5, 6, 7
	g.emit(ir.MovI(lines, 0), ir.MovI(words, 0), ir.MovI(chars, 0), ir.MovI(inword, 0))
	g.forRange(i, 0, in.Scale, 1, func() {
		touchColdMass(g, cold, i, 5, 16)
		g.emit(ir.Load(ch, i, 0), ir.AddI(chars, chars, 1))
		g.emit(ir.CmpEQI(c, ch, 10))
		g.ifElse(c, func() {
			g.emit(ir.AddI(lines, lines, 1), ir.MovI(inword, 0))
		}, func() {
			g.emit(ir.CmpEQI(c, ch, 32))
			g.ifElse(c, func() {
				g.emit(ir.MovI(inword, 0))
			}, func() {
				g.emit(ir.CmpEQI(c, inword, 0))
				g.ifElse(c, func() {
					g.emit(ir.AddI(words, words, 1), ir.MovI(inword, 1))
				}, nil)
			})
		})
	})
	g.emit(ir.Emit(lines), ir.Emit(words), ir.Emit(chars))
	g.ret(chars)
	return bd.Finish()
}

// genCompressible produces a byte stream with heavy repetition: runs
// drawn from a tiny alphabet with occasional literals, so the hash
// probe in the compressor hits most of the time — compress's dominant
// single-path loop (§4 notes com is "dominated by few loops").
func genCompressible(r *rng, length int64) []int64 {
	data := make([]int64, length)
	cur := r.intn(6)
	runLeft := r.intn(24) + 4
	for i := range data {
		if runLeft == 0 {
			if r.intn(8) == 0 {
				data[i] = r.intn(256) // rare literal
			}
			cur = r.intn(6)
			runLeft = r.intn(24) + 4
		}
		data[i] = cur*37 + 11
		runLeft--
	}
	return data
}

// buildCompress models the LZW table probe loop: hash the (prev, cur)
// pair, probe the chain table; a hit extends the current phrase (the
// hot path), a miss installs a new code.
func buildCompress(in Input) *ir.Program {
	const tableSize = 4096
	r := newRng(in.Seed)
	data := genCompressible(r, in.Scale)
	// Memory: [0, tableSize) keys, [tableSize, 2*tableSize) codes,
	// input at 2*tableSize.
	inputBase := int64(2 * tableSize)
	bd := ir.NewBuilder("com", inputBase+in.Scale+16)
	bd.Data(inputBase, data...)
	cold := addColdMass(bd, 37, 16, 4)
	pb := bd.Proc("main")
	g := newGen(pb)
	const i, prev, cur, h, key, probe, hits, miss, code, c, t = 1, 2, 3, 4, 5, 6, 8, 9, 10, 11, 12
	g.emit(
		ir.MovI(prev, 0), ir.MovI(hits, 0), ir.MovI(miss, 0), ir.MovI(code, 256),
	)
	g.forRange(i, 0, in.Scale, 1, func() {
		touchColdMass(g, cold, i, 6, 16)
		g.emit(
			ir.AddI(t, i, inputBase),
			ir.Load(cur, t, 0),
			// h = ((prev << 4) ^ cur) & (tableSize-1)
			ir.ShlI(h, prev, 4),
			ir.Xor(h, h, cur),
			ir.AndI(h, h, tableSize-1),
			// key = prev*256 + cur + 1 (never 0, the empty marker)
			ir.MulI(key, prev, 256),
			ir.Add(key, key, cur),
			ir.AddI(key, key, 1),
			ir.Load(probe, h, 0),
			ir.CmpEQ(c, probe, key),
		)
		g.ifElse(c, func() {
			// Hit: extend the phrase (hot path).
			g.emit(
				ir.AddI(hits, hits, 1),
				ir.Load(prev, h, tableSize), // prev = stored code
				ir.AndI(prev, prev, 255),
			)
		}, func() {
			// Miss: install new code, restart phrase.
			g.emit(
				ir.Store(h, 0, key),
				ir.Store(h, tableSize, code),
				ir.AddI(code, code, 1),
				ir.AndI(code, code, 4095),
				ir.AddI(miss, miss, 1),
				ir.Mov(prev, cur),
			)
		})
	})
	g.emit(ir.Emit(hits), ir.Emit(miss), ir.Emit(code))
	g.ret(hits)
	return bd.Finish()
}
