package bench

import "pathsched/internal/ir"

// Real SPEC binaries range from ~250KB (li) to 5.6MB (gcc) — far
// beyond the 32KB instruction cache — so the paper's Figure 5/6
// effects hinge on code-expansion-induced misses. The hot kernels
// re-created in this package are tiny, so without additional code mass
// every scheme would be cache-resident and the cache experiments
// degenerate. addColdMass supplies the missing realism: a flat tail of
// utility procedures (think error paths, printers, rarely-used
// library code) that the benchmark touches periodically, occupying
// cache lines the way a real program's lukewarm code does.
//
// The returned dispatch procedure takes a selector in r1 and invokes
// one utility procedure; hot loops call it every touchEvery-th
// iteration with a rotating selector.
func addColdMass(bd *ir.Builder, seed uint64, procs, bodyDiamonds int) ir.ProcID {
	r := newRng(seed)
	ids := make([]ir.ProcID, procs)
	for k := 0; k < procs; k++ {
		p := bd.Proc("util")
		g := newGen(p)
		const x, acc, c, t = ir.RegArg0, 8, 9, 10
		g.emit(ir.Mov(acc, x))
		for d := 0; d < bodyDiamonds; d++ {
			// A diamond with a chunky straight-line body on each arm:
			// ~14 instructions per diamond.
			mask := int64(1) << uint(r.intn(6))
			g.emit(ir.AndI(t, acc, mask), ir.CmpEQI(c, t, 0))
			g.ifElse(c, func() {
				g.emit(
					ir.AddI(acc, acc, r.intn(64)+1),
					ir.XorI(acc, acc, r.intn(255)+1),
					ir.ShlI(t, acc, 1),
					ir.Add(acc, acc, t),
					ir.AndI(acc, acc, 0xffffff),
				)
			}, func() {
				g.emit(
					ir.MulI(acc, acc, r.intn(7)+3),
					ir.ShrI(acc, acc, 2),
					ir.OrI(acc, acc, r.intn(15)+1),
					ir.AddI(acc, acc, r.intn(32)),
					ir.AndI(acc, acc, 0xffffff),
				)
			})
		}
		g.ret(acc)
		ids[k] = p.ID()
	}

	// Dispatcher: switch over all utility procedures.
	disp := bd.Proc("utilDispatch")
	dg := newGen(disp)
	const sel = ir.RegArg0
	targets := make([]*ir.BlockBuilder, procs+1)
	tids := make([]ir.BlockID, procs+1)
	for i := range targets {
		targets[i] = disp.NewBlock()
		tids[i] = targets[i].ID()
	}
	dg.cur.Switch(sel, tids...)
	for k := 0; k < procs; k++ {
		kg := &gen{pb: disp, cur: targets[k]}
		kg.call(ir.RegRet, ids[k], sel)
		kg.ret(ir.RegRet)
	}
	// Default: no work.
	targets[procs].Add(ir.MovI(ir.RegRet, 0))
	targets[procs].Ret(ir.RegRet)
	return disp.ID()
}

// touchColdMass emits, inside a hot loop, the periodic dispatch call:
// every 2^everyShift-th value of iter, call dispatch with selector
// (iter >> everyShift) & (procs-1). procs must be a power of two.
// Registers 58-60 are used as scratch.
func touchColdMass(g *gen, dispatch ir.ProcID, iter ir.Reg, everyShift uint, procs int64) {
	const t, sel, res = 58, 59, 60
	g.emit(
		ir.AndI(t, iter, (1<<everyShift)-1),
		ir.CmpEQI(t, t, 0),
	)
	g.ifElse(t, func() {
		g.emit(
			ir.ShrI(sel, iter, int64(everyShift)),
			ir.AndI(sel, sel, procs-1),
		)
		g.call(res, dispatch, sel)
	}, nil)
}
