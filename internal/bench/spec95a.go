package bench

import "pathsched/internal/ir"

// gcc, go, and ijpeg. Table 1's characterizations drive the shapes:
// gcc is a large, flat-profile program (5.6MB binary) with many small
// procedures and low-iteration loops; go is dominated by low-iteration
// loops and frequent procedure calls with irregular, data-dependent
// branches (§4: unrolling alone cannot help it); ijpeg is dominated by
// a few regular nested loops over image blocks.

func init() {
	register(&Benchmark{
		Name:        "gcc",
		Description: "GNU C compiler (many passes, flat profile)",
		Category:    "SPECint95",
		Build:       buildGcc,
		Train:       Input{Label: "train unit", Seed: 909, Scale: 2600},
		Test:        Input{Label: "cccp.i (SPEC95 ref)", Seed: 1010, Scale: 4200},
	})
	register(&Benchmark{
		Name:        "go",
		Description: "Plays the game of Go (search + evaluation)",
		Category:    "SPECint95",
		Build:       buildGo,
		Train:       Input{Label: "train position", Seed: 1111, Scale: 60},
		Test:        Input{Label: "9stone21 (SPEC95 ref)", Seed: 1212, Scale: 100},
	})
	register(&Benchmark{
		Name:        "ijpeg",
		Description: "JPEG encoder (blockwise nested loops)",
		Category:    "SPECint95",
		Build:       buildIjpeg,
		Train:       Input{Label: "train image", Seed: 1313, Scale: 160},
		Test:        Input{Label: "vigo (SPEC95 ref)", Seed: 1414, Scale: 240},
	})
}

// buildGcc generates numPasses little "compiler pass" procedures with
// seeded bodies (diamond chains, a small loop, a switch) and a driver
// that, for each input "function", dispatches a data-dependent subset
// of passes. The result is a big binary with a flat execution profile
// and mostly low-iteration control flow — the shape that made gcc's
// I-cache behaviour sensitive to code expansion in §4.
func buildGcc(in Input) *ir.Program {
	const numPasses = 36
	const dataLen = 2048
	r := newRng(in.Seed)
	data := make([]int64, dataLen)
	for i := range data {
		data[i] = int64(r.next() & 0xffff)
	}
	bd := ir.NewBuilder("gcc", dataLen+64)
	bd.Data(0, data...)
	cold := addColdMass(bd, 47, 128, 7)

	structRng := newRng(42) // pass structure is part of the "source code"
	var passes []ir.ProcID
	for p := 0; p < numPasses; p++ {
		proc := bd.Proc("pass")
		pg := newGen(proc)
		const x, acc, c, t, idx = ir.RegArg0, 8, 9, 10, 11
		pg.emit(ir.Mov(acc, x))
		// A chain of biased diamonds.
		nd := 2 + structRng.intn(4)
		for d := int64(0); d < nd; d++ {
			mask := int64(1) << uint(structRng.intn(5))
			pg.emit(ir.AndI(t, acc, mask), ir.CmpEQI(c, t, 0))
			pg.ifElse(c, func() {
				pg.emit(ir.AddI(acc, acc, 3+d))
			}, func() {
				pg.emit(ir.XorI(acc, acc, 0x1f+d), ir.ShrI(acc, acc, 1), ir.AddI(acc, acc, 1))
			})
		}
		// A low-iteration loop (1-4 trips), data independent.
		trips := 1 + structRng.intn(4)
		pg.forRange(idx, 0, trips, 1, func() {
			pg.emit(ir.MulI(acc, acc, 3), ir.AndI(acc, acc, 0xffffff), ir.AddI(acc, acc, 7))
		})
		// A small switch on low bits.
		pg.emit(ir.AndI(t, acc, 3))
		pg.switchOn(t,
			func() { pg.emit(ir.AddI(acc, acc, 11)) },
			func() { pg.emit(ir.XorI(acc, acc, 0x33)) },
			func() { pg.emit(ir.ShrI(acc, acc, 2), ir.AddI(acc, acc, 5)) },
			func() { pg.emit(ir.MulI(acc, acc, 5), ir.AndI(acc, acc, 0xfffff)) },
		)
		pg.ret(acc)
		passes = append(passes, proc.ID())
	}

	pb := bd.Proc("main")
	g := newGen(pb)
	const fn, word, acc, c, t, res = 8, 9, 10, 11, 12, 13
	g.emit(ir.MovI(acc, 0))
	g.forRange(fn, 0, in.Scale, 1, func() {
		touchColdMass(g, cold, fn, 2, 128)
		g.emit(
			ir.AndI(t, fn, dataLen-1),
			ir.Load(word, t, 0),
		)
		// Each "function" runs a data-selected subset of passes.
		for p := 0; p < numPasses; p++ {
			p := p
			bit := int64(1) << uint(p%14)
			g.emit(ir.AndI(t, word, bit), ir.CmpNEI(c, t, 0))
			g.ifElse(c, func() {
				g.call(res, passes[p], word)
				g.emit(ir.Add(acc, acc, res), ir.AndI(acc, acc, 0xffffff))
			}, nil)
		}
	})
	g.emit(ir.Emit(acc))
	g.ret(acc)
	return bd.Finish()
}

// buildGo models game-tree search: a recursive minimax over a branchy,
// data-dependent evaluation of a seeded "board". Depth is shallow and
// loops are short (legal-move scans of ≤4 candidates), but calls are
// everywhere — the profile §4 says defeats pure unrolling.
func buildGo(in Input) *ir.Program {
	const boardLen = 512
	r := newRng(in.Seed)
	board := make([]int64, boardLen)
	for i := range board {
		board[i] = r.intn(3) // empty/black/white
	}
	bd := ir.NewBuilder("go", boardLen+64)
	bd.Data(0, board...)
	cold := addColdMass(bd, 53, 64, 6)

	// eval(pos) -> score: branchy neighborhood inspection.
	eval := bd.Proc("eval")
	{
		eg := newGen(eval)
		const pos = ir.RegArg0
		const sc, v, c, t, k = 8, 9, 10, 11, 12
		eg.emit(ir.MovI(sc, 0))
		eg.forRange(k, 0, 4, 1, func() {
			eg.emit(
				ir.MulI(t, k, 17),
				ir.Add(t, t, pos),
				ir.AndI(t, t, boardLen-1),
				ir.Load(v, t, 0),
				ir.CmpEQI(c, v, 1),
			)
			eg.ifElse(c, func() {
				eg.emit(ir.AddI(sc, sc, 3))
			}, func() {
				eg.emit(ir.CmpEQI(c, v, 2))
				eg.ifElse(c, func() {
					eg.emit(ir.AddI(sc, sc, -2))
				}, func() {
					eg.emit(ir.AddI(sc, sc, 1))
				})
			})
		})
		eg.ret(sc)
	}

	// search(pos, depth) -> best score over up-to-4 candidate moves,
	// recursing to depth 0 with data-dependent pruning.
	search := bd.Proc("search")
	{
		sg := newGen(search)
		const pos, depth = ir.RegArg0, ir.RegArg0 + 1
		const best, m, np, v, c, sc = 8, 9, 10, 11, 12, 13
		sg.emit(ir.CmpEQI(c, depth, 0))
		sg.ifElse(c, func() {
			sg.call(ir.RegRet, eval.ID(), pos)
			sg.ret(ir.RegRet)
		}, nil)
		sg.emit(ir.MovI(best, -1_000_000))
		sg.forRange(m, 0, 4, 1, func() {
			sg.emit(
				ir.MulI(np, m, 31),
				ir.Add(np, np, pos),
				ir.MulI(np, np, 7),
				ir.AndI(np, np, boardLen-1),
				ir.Load(v, np, 0),
				ir.CmpEQI(c, v, 2), // occupied by opponent: prune
			)
			sg.ifElse(c, nil, func() {
				touchColdMass(sg, cold, np, 3, 64)
				sg.emit(ir.AddI(sc, depth, -1))
				sg.call(sc, search.ID(), np, sc)
				sg.emit(ir.CmpLT(c, best, sc))
				sg.ifElse(c, func() {
					sg.emit(ir.Mov(best, sc))
				}, nil)
			})
		})
		sg.ret(best)
	}

	pb := bd.Proc("main")
	g := newGen(pb)
	const root, total, sc, t = 8, 9, 10, 11
	g.emit(ir.MovI(total, 0))
	g.forRange(root, 0, in.Scale, 1, func() {
		g.emit(ir.MulI(t, root, 13), ir.AndI(t, t, boardLen-1))
		g.call(sc, search.ID(), t, constReg(g, 5))
		g.emit(ir.Add(total, total, sc))
	})
	g.emit(ir.Emit(total))
	g.ret(total)
	return bd.Finish()
}

// constReg materializes a small constant into a register for argument
// passing and returns that register.
func constReg(g *gen, v int64) ir.Reg {
	const tmp = 40
	g.emit(ir.MovI(tmp, v))
	return tmp
}

// buildIjpeg processes a Scale×Scale image 8×8-block-wise: a transform
// accumulation over each block (regular, high trip-count nests) and a
// data-biased quantization branch per coefficient. Performance is
// dominated by these few loops.
func buildIjpeg(in Input) *ir.Program {
	side := in.Scale - in.Scale%8 // multiple of 8
	if side < 16 {
		side = 16
	}
	pixels := side * side
	r := newRng(in.Seed)
	img := make([]int64, pixels)
	for i := range img {
		// Smooth-ish image: neighbouring values correlate, so the
		// quantization branch is strongly biased within regions.
		if i == 0 {
			img[i] = 128
		} else {
			img[i] = (img[i-1]*7+int64(r.intn(32))-16)/7 + r.intn(3) - 1
			if img[i] < 0 {
				img[i] = 0
			}
			if img[i] > 255 {
				img[i] = 255
			}
		}
	}
	outBase := pixels
	bd := ir.NewBuilder("ijpeg", pixels+pixels+64)
	bd.Data(0, img...)
	cold := addColdMass(bd, 59, 32, 7)

	pb := bd.Proc("main")
	g := newGen(pb)
	const bx, by, i, j, addr, v, sum, c, t, nz = 8, 9, 10, 11, 12, 13, 14, 15, 16, 17
	const blockCtr = 20
	g.emit(ir.MovI(nz, 0), ir.MovI(blockCtr, 0))
	g.forRange(by, 0, side/8, 1, func() {
		g.forRange(bx, 0, side/8, 1, func() {
			g.emit(ir.AddI(blockCtr, blockCtr, 1))
			touchColdMass(g, cold, blockCtr, 2, 32)
			g.emit(ir.MovI(sum, 0))
			// Transform accumulation over the 8x8 block.
			g.forRange(i, 0, 8, 1, func() {
				g.forRange(j, 0, 8, 1, func() {
					g.emit(
						ir.MulI(addr, by, 8),
						ir.Add(addr, addr, i),
						ir.MulI(addr, addr, side),
						ir.MulI(t, bx, 8),
						ir.Add(addr, addr, t),
						ir.Add(addr, addr, j),
						ir.Load(v, addr, 0),
						ir.Add(t, i, j),
						ir.MulI(t, t, 3),
						ir.AddI(t, t, 1),
						ir.Mul(v, v, t),
						ir.Add(sum, sum, v),
					)
				})
			})
			// Quantization: one biased branch per coefficient row.
			g.forRange(i, 0, 8, 1, func() {
				g.emit(
					ir.Mul(t, i, i),
					ir.AddI(t, t, 1),
					ir.ShrI(v, sum, 4),
					ir.CmpLT(c, t, v),
				)
				g.ifElse(c, func() {
					g.emit(ir.AddI(nz, nz, 1))
				}, nil)
				// Output coefficient i of block (bx, by): 8 words per
				// block, (side/8)² blocks, all inside the output plane.
				g.emit(
					ir.MulI(addr, by, side/8),
					ir.Add(addr, addr, bx),
					ir.MulI(addr, addr, 8),
					ir.Add(addr, addr, i),
					ir.AddI(addr, addr, outBase),
					ir.Store(addr, 0, v),
				)
			})
		})
	})
	g.emit(ir.Emit(nz))
	g.ret(nz)
	return bd.Finish()
}
