package pipeline

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"sync"

	"pathsched/internal/core"
	"pathsched/internal/ir"
	"pathsched/internal/layout"
	"pathsched/internal/profile"
	"pathsched/internal/sched"
	"pathsched/internal/store"
	"pathsched/internal/validate"
)

// Cache is a content-addressed memo of the two expensive steps every
// scheme's layout stage repeats: compiling (forming + compacting) a
// pristine build under a formation config, and layout-profiling the
// resulting transformed training build.
//
// Entries are addressed purely by structural fingerprints, never by
// benchmark or scheme name, so any two schemes, ablation configs, or
// runners that arrive at the same bytes share one computation:
//
//   - compile entries are keyed by (pristine-build fingerprint,
//     training-build fingerprint, config digest) — see compileKey —
//     and hold an immutable master of the compiled program, which
//     consumers clone before mutating;
//   - layout entries are keyed by the fingerprint of the *formed*
//     training build and hold its frozen layout profile (block and
//     edge frequencies plus dynamic call counts). P4 and P4e form
//     byte-identical programs on benchmarks with no non-loop heads,
//     so their configs miss the compile cache but their formed builds
//     collide here, and one training run serves both.
//
// Lookups are single-flight: the first goroutine to miss a key
// computes it while any concurrent worker asking for the same key
// blocks on the entry instead of duplicating the work (a "dedup" in
// CacheStats). Masters and profiles are immutable once published, so
// any number of workers may read one entry concurrently; the
// differential tests pin cache-on results byte-identical to the
// cache-off serial pipeline.
//
// When a disk artifact store is attached (NewDiskCache), the cache
// becomes two-tiered: memory → disk → build. A memory miss consults
// the store before building, and a local build publishes its artifact
// so other processes sharing the store directory skip it.
//
// A Cache may be shared across Runners (ablation sweeps pass one cache
// to every config's runner) and is safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	store    *store.Store // optional disk tier; nil = memory-only
	compiles map[ir.Digest]*entry[*compiled]
	layouts  map[ir.Digest]*entry[*layoutProfile]
	stats    struct {
		sync.Mutex
		s CacheStats
	}
}

// NewCache returns an empty memory-only cache.
func NewCache() *Cache {
	return &Cache{
		compiles: map[ir.Digest]*entry[*compiled]{},
		layouts:  map[ir.Digest]*entry[*layoutProfile]{},
	}
}

// NewDiskCache returns a cache backed by the given artifact store as a
// second tier. Results are identical to a memory-only cache; only
// where the work happens changes.
func NewDiskCache(st *store.Store) *Cache {
	c := NewCache()
	c.store = st
	return c
}

// TierStats counts lookup outcomes for one artifact kind. Every
// lookup lands in exactly one of MemHits, DiskHits, Dedups, or Builds;
// ClaimWaits additionally counts the lookups that blocked on another
// process's in-flight build before resolving.
type TierStats struct {
	MemHits    int64 // completed entry already in this process's memory
	DiskHits   int64 // decoded and verified from the artifact store
	ClaimWaits int64 // waited on another process's claim first
	Builds     int64 // computed from scratch in this process
	Dedups     int64 // waited on another goroutine's in-flight build
}

// Add returns the element-wise sum (merging per-shard stats).
func (t TierStats) Add(o TierStats) TierStats {
	return TierStats{
		MemHits:    t.MemHits + o.MemHits,
		DiskHits:   t.DiskHits + o.DiskHits,
		ClaimWaits: t.ClaimWaits + o.ClaimWaits,
		Builds:     t.Builds + o.Builds,
		Dedups:     t.Dedups + o.Dedups,
	}
}

func (t TierStats) String() string {
	return fmt.Sprintf("%d mem hits / %d disk hits / %d claim-waits / %d builds / %d dedups",
		t.MemHits, t.DiskHits, t.ClaimWaits, t.Builds, t.Dedups)
}

// CacheStats counts cache outcomes per artifact kind and tier.
type CacheStats struct {
	Compile TierStats
	Layout  TierStats
}

// Add returns the element-wise sum (merging per-shard stats).
func (s CacheStats) Add(o CacheStats) CacheStats {
	return CacheStats{Compile: s.Compile.Add(o.Compile), Layout: s.Layout.Add(o.Layout)}
}

// String renders the counters for the -cachestats report.
func (s CacheStats) String() string {
	return fmt.Sprintf("compile %s; layout-profile %s", s.Compile, s.Layout)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.stats.Lock()
	defer c.stats.Unlock()
	return c.stats.s
}

// compiled is an immutable compile-cache value: the master program
// (never handed to callers directly — they clone it), its structural
// fingerprint (which keys the layout cache without re-hashing), the
// formation stats the measurement reports, and — when the respective
// gates are enabled — the compile's gap accounting and translation
// validation stats (nil otherwise), so cache hits still report both.
// Validation enters the compile key (compileKey), so an entry built
// without validation can never be returned to a validated run.
type compiled struct {
	master *ir.Program
	fp     ir.Digest
	stats  core.Stats
	gap    *sched.GapStats
	vstats *validate.Stats
}

// layoutProfile is an immutable layout-cache value: the frozen weights
// layout.Assign consumes, gathered from one training run of a formed
// build. The profile and call-count map are read-only after the run
// completes, so one value may serve any number of schemes at once.
type layoutProfile struct {
	calls map[[2]ir.ProcID]int64
	prof  *profile.EdgeProfile
}

// input adapts the cached weights to layout.Assign's interface.
func (lp *layoutProfile) input() layout.Input {
	return layout.Input{
		CallCounts: lp.calls,
		BlockFreq:  lp.prof.BlockFreq,
		EdgeFreq:   lp.prof.EdgeFreq,
	}
}

// keyWriter frames cache-key components into a sha256, with the same
// length-prefixing discipline as ir.Fingerprint.
type keyWriter struct {
	h   hash.Hash
	buf [8]byte
}

func newKeyWriter() *keyWriter { return &keyWriter{h: sha256.New()} }

func (w *keyWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *keyWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.h.Write([]byte(s))
}

func (w *keyWriter) bool(b bool) {
	if b {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

func (w *keyWriter) digest(d ir.Digest) { w.h.Write(d[:]) }

func (w *keyWriter) sum() ir.Digest {
	var d ir.Digest
	w.h.Sum(d[:0])
	return d
}

// entry is a single-flight cell: ready is closed once val/err are
// published, after which both are immutable.
type entry[V any] struct {
	ready chan struct{}
	val   V
	err   error
}

// outcome classifies one lookup for the stats counters.
type outcome int

const (
	outcomeHit outcome = iota
	outcomeMiss
	outcomeDedup
)

// lookup returns m[key], computing it via build at most once across
// all concurrent callers. Errors are cached like values: a key that
// failed to build keeps failing without re-running build (the pipeline
// aborts the whole run on the first error anyway).
func lookup[V any](c *Cache, m map[ir.Digest]*entry[V], key ir.Digest, build func() (V, error)) (V, outcome, error) {
	c.mu.Lock()
	e, ok := m[key]
	if ok {
		c.mu.Unlock()
		out := outcomeDedup
		select {
		case <-e.ready:
			out = outcomeHit // already complete: no waiting involved
		default:
		}
		<-e.ready
		return e.val, out, e.err
	}
	e = &entry[V]{ready: make(chan struct{})}
	m[key] = e
	c.mu.Unlock()

	defer close(e.ready)
	e.val, e.err = build()
	return e.val, outcomeMiss, e.err
}

// bump applies f to one kind's tier counters under the stats lock.
func (c *Cache) bump(sel func(*CacheStats) *TierStats, f func(*TierStats)) {
	c.stats.Lock()
	f(sel(&c.stats.s))
	c.stats.Unlock()
}

// compile memoizes one formed+compacted build.
func (c *Cache) compile(key ir.Digest, build func() (*compiled, error)) (*compiled, error) {
	return lookupTiered(c, c.compiles, key, compiledCodec,
		func(s *CacheStats) *TierStats { return &s.Compile }, build)
}

// layout memoizes one layout-profiling run, keyed by the fingerprint
// of the formed training build it profiles.
func (c *Cache) layout(key ir.Digest, build func() (*layoutProfile, error)) (*layoutProfile, error) {
	return lookupTiered(c, c.layouts, key, layoutCodec,
		func(s *CacheStats) *TierStats { return &s.Layout }, build)
}
