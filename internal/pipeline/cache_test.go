package pipeline

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"pathsched/internal/ir"
)

func testKey(b byte) ir.Digest {
	var d ir.Digest
	d[0] = b
	return d
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache()
	builds := 0
	build := func() (*compiled, error) {
		builds++
		return &compiled{fp: testKey(0x77)}, nil
	}
	first, err := c.compile(testKey(1), build)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.compile(testKey(1), func() (*compiled, error) {
		t.Error("completed entry re-ran its build")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	if first != second {
		t.Fatal("hit returned a different value than the miss that created the entry")
	}
	s := c.Stats()
	if s.Compile.MemHits != 1 || s.Compile.Builds != 1 || s.Compile.Dedups != 0 {
		t.Fatalf("stats = %+v, want 1 mem hit / 1 build / 0 dedups", s)
	}
}

func TestCacheDistinctKeysDistinctEntries(t *testing.T) {
	c := NewCache()
	a, _ := c.compile(testKey(1), func() (*compiled, error) { return &compiled{}, nil })
	b, _ := c.compile(testKey(2), func() (*compiled, error) { return &compiled{}, nil })
	if a == b {
		t.Fatal("distinct keys shared one entry")
	}
	if s := c.Stats(); s.Compile.Builds != 2 {
		t.Fatalf("stats = %+v, want 2 builds", s)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache()
	gate := make(chan struct{})
	want := &layoutProfile{}
	builds := 0

	// The leader misses and blocks inside its build until the gate
	// opens, holding the entry in the "in flight" state.
	leaderDone := make(chan outcome, 1)
	go func() {
		_, out, _ := lookup(c, c.layouts, testKey(9), func() (*layoutProfile, error) {
			builds++
			<-gate
			return want, nil
		})
		leaderDone <- out
	}()

	// Wait until the leader has registered the entry.
	for {
		c.mu.Lock()
		_, ok := c.layouts[testKey(9)]
		c.mu.Unlock()
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}

	const waiters = 8
	outcomes := make(chan outcome, waiters)
	vals := make(chan *layoutProfile, waiters)
	var launched sync.WaitGroup
	for i := 0; i < waiters; i++ {
		launched.Add(1)
		go func() {
			launched.Done()
			v, out, _ := lookup(c, c.layouts, testKey(9), func() (*layoutProfile, error) {
				t.Error("waiter ran the build despite an in-flight leader")
				return nil, nil
			})
			outcomes <- out
			vals <- v
		}()
	}
	// Give every waiter time to find the in-flight entry before the
	// leader finishes; a waiter that classified late would report a
	// (still correct) hit and fail the dedup assertion below.
	launched.Wait()
	time.Sleep(100 * time.Millisecond)
	close(gate)

	if out := <-leaderDone; out != outcomeMiss {
		t.Fatalf("leader outcome = %v, want miss", out)
	}
	for i := 0; i < waiters; i++ {
		if out := <-outcomes; out != outcomeDedup {
			t.Fatalf("waiter outcome = %v, want dedup", out)
		}
		if v := <-vals; v != want {
			t.Fatal("waiter observed a different value than the leader built")
		}
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
}

func TestCacheErrorsAreCached(t *testing.T) {
	c := NewCache()
	boom := errors.New("formation failed")
	builds := 0
	for i := 0; i < 3; i++ {
		_, err := c.compile(testKey(3), func() (*compiled, error) {
			builds++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("lookup %d: err = %v, want the original build error", i, err)
		}
	}
	if builds != 1 {
		t.Fatalf("failing build ran %d times, want 1 (errors cache like values)", builds)
	}
}

func TestCacheStatsString(t *testing.T) {
	s := CacheStats{
		Compile: TierStats{MemHits: 1, DiskHits: 2, ClaimWaits: 3, Builds: 4, Dedups: 5},
		Layout:  TierStats{MemHits: 6, DiskHits: 7, ClaimWaits: 8, Builds: 9, Dedups: 10},
	}
	got := s.String()
	for _, want := range []string{
		"compile 1 mem hits / 2 disk hits / 3 claim-waits / 4 builds / 5 dedups",
		"layout-profile 6 mem hits / 7 disk hits / 8 claim-waits / 9 builds / 10 dedups",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("String() = %q, missing %q", got, want)
		}
	}
}
