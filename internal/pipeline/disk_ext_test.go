// Differential tests for the disk tier: a store-backed cache must
// render byte-identical reports to the memory-only pipeline — cold,
// disk-warm across a simulated process boundary (fresh cache, same
// store directory), and in the face of corrupted or misfiled entries,
// which may cost rebuilds but never change a byte of output.
package pipeline_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"pathsched/internal/machine"
	"pathsched/internal/pipeline"
	"pathsched/internal/store"
)

var diskTestNames = []string{"alt", "wc"}

// diskRun runs the suite with a fresh Runner over the given cache,
// returning the rendered report and the cache stats delta.
func diskRun(t *testing.T, cache *pipeline.Cache) (string, pipeline.CacheStats) {
	t.Helper()
	before := cache.Stats()
	c := machine.DefaultICache()
	r := pipeline.NewRunner(pipeline.Options{Cache: &c, Parallelism: 1, ProfileCache: cache})
	res, err := r.RunSuite(diskTestNames, pipeline.AllSchemes())
	if err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	return renderAll(t, res), pipeline.CacheStats{
		Compile: subTier(after.Compile, before.Compile),
		Layout:  subTier(after.Layout, before.Layout),
	}
}

func subTier(a, b pipeline.TierStats) pipeline.TierStats {
	return pipeline.TierStats{
		MemHits:    a.MemHits - b.MemHits,
		DiskHits:   a.DiskHits - b.DiskHits,
		ClaimWaits: a.ClaimWaits - b.ClaimWaits,
		Builds:     a.Builds - b.Builds,
		Dedups:     a.Dedups - b.Dedups,
	}
}

func openTestStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestDiskWarmMatchesMemoryByteForByte is the disk-tier differential:
// a cold store-backed run matches the memory-only baseline, and a
// second run through a *fresh* cache on the same store (the process-
// restart regime the store exists for) matches again while serving
// every compile and layout profile from disk.
func TestDiskWarmMatchesMemoryByteForByte(t *testing.T) {
	baseline, _ := diskRun(t, pipeline.NewCache())

	dir := filepath.Join(t.TempDir(), "store")
	cold, coldStats := diskRun(t, pipeline.NewDiskCache(openTestStore(t, dir)))
	if cold != baseline {
		t.Fatalf("store-backed cold run diverges from memory-only baseline:\n--- memory ---\n%s\n--- disk ---\n%s", baseline, cold)
	}
	if coldStats.Compile.Builds == 0 || coldStats.Layout.Builds == 0 {
		t.Fatalf("cold run built nothing: %s", coldStats)
	}
	if coldStats.Compile.DiskHits != 0 {
		t.Fatalf("cold run claims disk hits on an empty store: %s", coldStats)
	}

	// Fresh cache, same directory: everything is a disk hit.
	warm, warmStats := diskRun(t, pipeline.NewDiskCache(openTestStore(t, dir)))
	if warm != baseline {
		t.Fatalf("disk-warm run diverges from baseline:\n--- memory ---\n%s\n--- disk-warm ---\n%s", baseline, warm)
	}
	if warmStats.Compile.Builds != 0 || warmStats.Layout.Builds != 0 {
		t.Fatalf("disk-warm run rebuilt artifacts: %s", warmStats)
	}
	if warmStats.Compile.DiskHits != coldStats.Compile.Builds {
		t.Fatalf("disk-warm compile hits %d != cold builds %d", warmStats.Compile.DiskHits, coldStats.Compile.Builds)
	}
	if warmStats.Layout.DiskHits != coldStats.Layout.Builds {
		t.Fatalf("disk-warm layout hits %d != cold builds %d", warmStats.Layout.DiskHits, coldStats.Layout.Builds)
	}
}

// warmStore populates a store directory and returns the baseline
// report plus how many compiles the cold run built.
func warmStore(t *testing.T, dir string) (string, pipeline.CacheStats) {
	t.Helper()
	return diskRun(t, pipeline.NewDiskCache(openTestStore(t, dir)))
}

// TestDiskBitFlippedEntryRebuilt corrupts every published entry on
// disk (one flipped payload byte each, past the store header): the
// store's sha256 check must demote them all to misses, and the next
// run must rebuild them and still produce baseline bytes.
func TestDiskBitFlippedEntryRebuilt(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	baseline, coldStats := warmStore(t, dir)

	st := openTestStore(t, dir)
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("warm store has no entries")
	}
	for _, e := range entries {
		path := filepath.Join(dir, e.Kind, e.Key)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	got, stats := diskRun(t, pipeline.NewDiskCache(openTestStore(t, dir)))
	if got != baseline {
		t.Fatalf("run over corrupted store diverges:\n--- baseline ---\n%s\n--- corrupted ---\n%s", baseline, got)
	}
	if stats.Compile.DiskHits != 0 || stats.Layout.DiskHits != 0 {
		t.Fatalf("corrupted entries served as hits: %s", stats)
	}
	if stats.Compile.Builds != coldStats.Compile.Builds {
		t.Fatalf("rebuilds %d != original builds %d", stats.Compile.Builds, coldStats.Compile.Builds)
	}
	// The rebuilds republished: one more fresh cache sees only hits.
	_, again := diskRun(t, pipeline.NewDiskCache(openTestStore(t, dir)))
	if again.Compile.Builds != 0 || again.Layout.Builds != 0 {
		t.Fatalf("rebuilt entries were not republished: %s", again)
	}
}

// TestDiskMisfiledEntryRejected swaps two compile payloads between
// their keys. Each payload is perfectly valid in itself (intact
// framing sha, self-consistent fingerprint), so only the header's key
// binding can catch it — serving either would yield a wrong program.
func TestDiskMisfiledEntryRejected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	baseline, _ := warmStore(t, dir)

	st := openTestStore(t, dir)
	entries, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, e := range entries {
		if e.Kind == pipeline.StoreKindCompile {
			keys = append(keys, e.Key)
		}
	}
	if len(keys) < 2 {
		t.Fatalf("need 2 compile entries to swap, have %d", len(keys))
	}
	a, ok := st.Get(pipeline.StoreKindCompile, keys[0])
	if !ok {
		t.Fatal("missing entry")
	}
	b, ok := st.Get(pipeline.StoreKindCompile, keys[1])
	if !ok {
		t.Fatal("missing entry")
	}
	if err := st.Put(pipeline.StoreKindCompile, keys[0], b); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(pipeline.StoreKindCompile, keys[1], a); err != nil {
		t.Fatal(err)
	}
	if err := pipeline.VerifyEntry(pipeline.StoreKindCompile, keys[0], b); err == nil {
		t.Fatal("VerifyEntry accepted a misfiled payload")
	}

	got, stats := diskRun(t, pipeline.NewDiskCache(openTestStore(t, dir)))
	if got != baseline {
		t.Fatalf("run over misfiled store diverges:\n--- baseline ---\n%s\n--- misfiled ---\n%s", baseline, got)
	}
	if stats.Compile.Builds < 2 {
		t.Fatalf("swapped entries not rebuilt: %s", stats)
	}
}

// TestDiskStaleClaimFromDeadProcessTakenOver drops a never-refreshed
// claim file into the store (what a killed process leaves behind) and
// runs the suite: the runner must take the claim over after StaleAfter
// instead of hanging, and still produce baseline bytes.
func TestDiskStaleClaimFromDeadProcessTakenOver(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	baseline, _ := diskRun(t, pipeline.NewCache())

	st, err := store.Open(dir, store.Options{StaleAfter: 50 * time.Millisecond, PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// A claim whose key no runner computes still exercises the reap
	// path... but a claim on a *real* key is the interesting case. We
	// cannot know compile keys a priori (they hash configs), so warm a
	// sibling store, copy one real key's claim in, and age it.
	warmDir := filepath.Join(t.TempDir(), "warm")
	warmStore(t, warmDir)
	wst := openTestStore(t, warmDir)
	entries, err := wst.List()
	if err != nil || len(entries) == 0 {
		t.Fatalf("warm sibling store: %v, %d entries", err, len(entries))
	}
	victim := entries[0]
	claim := filepath.Join(dir, "claims", victim.Kind+"."+victim.Key)
	if err := os.WriteFile(claim, []byte("pid 999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(claim, old, old); err != nil {
		t.Fatal(err)
	}

	got, stats := diskRun(t, pipeline.NewDiskCache(st))
	if got != baseline {
		t.Fatalf("run with dead claim diverges:\n--- baseline ---\n%s\n--- dead claim ---\n%s", baseline, got)
	}
	if stats.Compile.Builds == 0 {
		t.Fatalf("nothing built: %s", stats)
	}
	if _, err := os.Stat(claim); !os.IsNotExist(err) {
		t.Fatal("stale claim not reaped")
	}
}
