package pipeline

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"pathsched/internal/bench"
	"pathsched/internal/ir"
	"pathsched/internal/machine"
)

func TestForEachLimitedRunsEveryItem(t *testing.T) {
	for _, par := range []int{1, 2, 7, 100} {
		var ran [17]int32
		err := forEachLimited(context.Background(), len(ran), par, func(_ context.Context, i int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i, n := range ran {
			if n != 1 {
				t.Fatalf("par=%d: item %d ran %d times", par, i, n)
			}
		}
	}
}

func TestForEachLimitedBoundsConcurrency(t *testing.T) {
	const par = 3
	var cur, peak int32
	err := forEachLimited(context.Background(), 20, par, func(_ context.Context, i int) error {
		n := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		atomic.AddInt32(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&peak); got > par {
		t.Fatalf("observed %d concurrent items, bound is %d", got, par)
	}
}

func TestForEachLimitedReturnsLowestErrorAndCancels(t *testing.T) {
	boom := errors.New("boom")
	var after int32
	err := forEachLimited(context.Background(), 50, 4, func(ctx context.Context, i int) error {
		if i == 2 {
			return fmt.Errorf("item %d: %w", i, boom)
		}
		if i > 10 && ctx.Err() == nil {
			atomic.AddInt32(&after, 1)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// Cancellation is advisory for in-flight items, but the claimed-item
	// loop must stop early: with 50 items and 4 workers, far fewer than
	// 39 late items may observe an uncancelled context.
	if n := atomic.LoadInt32(&after); n > 45 {
		t.Fatalf("%d items ran with live context after the failure", n)
	}
}

func TestForEachLimitedHonorsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := forEachLimited(ctx, 5, 3, func(_ context.Context, i int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunSuiteContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(Options{Parallelism: 2})
	if _, err := r.RunSuiteContext(ctx, []string{"alt", "ph"}, []Scheme{SchemeBB}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParallelMatchesSerial is the tentpole's determinism guarantee at
// the Result level: a Parallelism>1 run must produce measurements
// deeply equal to the historical serial order, benchmark by benchmark
// and scheme by scheme.
func TestParallelMatchesSerial(t *testing.T) {
	names := []string{"alt", "ph", "corr"}
	run := func(par int) []*Result {
		c := machine.DefaultICache()
		r := NewRunner(Options{Cache: &c, Parallelism: par})
		res, err := r.RunSuite(names, AllSchemes())
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return res
	}
	serial, parallel := run(1), run(4)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts diverge: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Name != parallel[i].Name {
			t.Fatalf("suite order diverges at %d: %s vs %s", i, serial[i].Name, parallel[i].Name)
		}
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("%s: parallel result differs from serial:\nserial:   %+v\nparallel: %+v",
				serial[i].Name, serial[i], parallel[i])
		}
	}
}

// countingBenchmark wraps b so every Build invocation is counted by
// input label. The counters are atomic because parallel scheme runs may
// build concurrently.
func countingBenchmark(b *bench.Benchmark, trainN, testN *int64) *bench.Benchmark {
	wrapped := *b
	wrapped.Build = func(in bench.Input) *ir.Program {
		switch in.Label {
		case b.Train.Label:
			atomic.AddInt64(trainN, 1)
		case b.Test.Label:
			atomic.AddInt64(testN, 1)
		}
		return b.Build(in)
	}
	return &wrapped
}

// TestBuildCountPerBenchmark locks in the redundant-build fix: one
// pristine train and one pristine test build serve profiling, the
// reference run, and every scheme compile (which clone rather than
// mutate). The acceptance bound is len(schemes)+1 test builds; the
// implementation achieves exactly one of each.
func TestBuildCountPerBenchmark(t *testing.T) {
	for _, par := range []int{1, 4} {
		var trainN, testN int64
		// wc has distinct train/test labels, so the counter can tell
		// the two build kinds apart (microbenchmarks share one label).
		b := countingBenchmark(bench.ByName("wc"), &trainN, &testN)
		r := NewRunner(Options{Parallelism: par})
		if _, err := r.RunBenchmark(b, AllSchemes()); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if max := int64(len(AllSchemes()) + 1); testN > max {
			t.Fatalf("par=%d: %d test builds, acceptance bound is %d", par, testN, max)
		}
		if trainN != 1 || testN != 1 {
			t.Fatalf("par=%d: train/test builds = %d/%d, want 1/1", par, trainN, testN)
		}
	}
}

// TestRunBenchmarkFirstErrorCancels drives the error path through a
// benchmark whose test build diverges structurally, which every scheme
// would report; exactly one wrapped error must surface.
func TestRunBenchmarkSchemeErrorPropagates(t *testing.T) {
	r := NewRunner(Options{Parallelism: 4})
	_, err := r.RunBenchmark(bench.ByName("alt"), []Scheme{SchemeBB, "bogus", SchemeP4})
	if err == nil {
		t.Fatal("unknown scheme must error")
	}
}
