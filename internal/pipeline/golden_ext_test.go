// Determinism golden test for the parallel pipeline: rendered reports
// from a Parallelism>1 suite run must be byte-identical to a serial
// run. It lives in an external test package because internal/stats
// imports internal/pipeline. Run under -race, this doubles as the
// concurrency-safety gate for the shared read path (frozen profiles,
// pristine builds, machine config).
package pipeline_test

import (
	"runtime"
	"testing"

	"pathsched/internal/machine"
	"pathsched/internal/pipeline"
	"pathsched/internal/stats"
)

// renderAll concatenates every report the experiments command emits.
func renderAll(t *testing.T, res []*pipeline.Result) string {
	t.Helper()
	js, err := stats.JSON(res)
	if err != nil {
		t.Fatal(err)
	}
	return stats.Table1(res) + stats.Figure4(res) + stats.Figure5(res) +
		stats.Figure6(res) + stats.Figure7(res) + stats.MissRates(res) +
		stats.Summary(res) + js
}

func TestParallelSuiteReportsAreByteIdentical(t *testing.T) {
	names := []string{"alt", "ph", "corr", "wc"}
	run := func(par int) string {
		c := machine.DefaultICache()
		r := pipeline.NewRunner(pipeline.Options{Cache: &c, Parallelism: par})
		res, err := r.RunSuite(names, pipeline.AllSchemes())
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return renderAll(t, res)
	}
	par := runtime.GOMAXPROCS(0)
	if par < 2 {
		par = 4 // exercise real interleaving even on a single-core runner
	}
	serial, parallel := run(1), run(par)
	if serial != parallel {
		t.Fatalf("reports diverge between Parallelism=1 and Parallelism=%d:\n--- serial ---\n%s\n--- parallel ---\n%s",
			par, serial, parallel)
	}
}
