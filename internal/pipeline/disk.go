package pipeline

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"pathsched/internal/core"
	"pathsched/internal/ir"
	"pathsched/internal/profile"
	"pathsched/internal/sched"
	"pathsched/internal/validate"
)

// Disk tier of the cache: serialization of the two cache value types
// and the memory → disk → build lookup that stitches the artifact
// store under the in-memory single-flight maps.
//
// Artifacts must survive a process boundary bit-exactly, which rules
// out the textual IR format (it deliberately drops schedule
// annotations and addresses); compiled masters travel through the
// binary ir codec instead, and are integrity-checked on read by
// re-fingerprinting the decoded program against the fingerprint
// recorded at publish time. Layout profiles travel as the existing
// edge-profile text plus the (sorted) dynamic call counts. Either
// decode failing — framing, fingerprint, or parse — demotes the entry
// to a miss and evicts it; a corrupt store can cost a rebuild, never a
// wrong answer.

// Store entry kinds. Keys under both kinds are hex cache digests:
// compileKey digests for compiles, formed-training-build fingerprints
// for layout profiles.
const (
	StoreKindCompile = "compile"
	StoreKindLayout  = "layout"
)

// diskCodec serializes one cache value type for the artifact store.
// Both directions carry the hex cache key: encode records it in the
// artifact header, decode requires it to match, so an entry that ends
// up under the wrong key (however valid in itself) is rejected rather
// than served as a wrong answer.
type diskCodec[V any] struct {
	kind   string
	encode func(V, string) ([]byte, error)
	decode func([]byte, string) (V, error)
}

var compiledCodec = diskCodec[*compiled]{
	kind:   StoreKindCompile,
	encode: encodeCompiled,
	decode: decodeCompiled,
}

var layoutCodec = diskCodec[*layoutProfile]{
	kind:   StoreKindLayout,
	encode: encodeLayout,
	decode: decodeLayout,
}

// lookupTiered is the full two-tier lookup: the in-memory single-flight
// map in front (counting MemHits/Dedups), the disk tier inside the
// build slot (counting DiskHits/ClaimWaits/Builds). Exactly one
// goroutine per process runs the disk path for a given key.
func lookupTiered[V any](c *Cache, m map[ir.Digest]*entry[V], key ir.Digest, cd diskCodec[V], sel func(*CacheStats) *TierStats, build func() (V, error)) (V, error) {
	v, out, err := lookup(c, m, key, func() (V, error) {
		return diskLookup(c, cd, key, sel, build)
	})
	switch out {
	case outcomeHit:
		c.bump(sel, func(t *TierStats) { t.MemHits++ })
	case outcomeDedup:
		c.bump(sel, func(t *TierStats) { t.Dedups++ })
	}
	// outcomeMiss was already classified inside diskLookup as a disk
	// hit or a build.
	return v, err
}

// diskLookup consults the artifact store before building, and
// publishes what it builds. With no store attached it degrades to a
// plain build.
func diskLookup[V any](c *Cache, cd diskCodec[V], key ir.Digest, sel func(*CacheStats) *TierStats, build func() (V, error)) (V, error) {
	if c.store == nil {
		c.bump(sel, func(t *TierStats) { t.Builds++ })
		return build()
	}
	hexKey := hex.EncodeToString(key[:])
	acq, aerr := c.store.Acquire(cd.kind, hexKey)
	if aerr != nil {
		// Store trouble (unwritable directory, ...): degrade to
		// memory-only rather than failing a run the cache exists to
		// speed up.
		c.bump(sel, func(t *TierStats) { t.Builds++ })
		return build()
	}
	if acq.Waited {
		c.bump(sel, func(t *TierStats) { t.ClaimWaits++ })
	}
	if acq.Claim == nil {
		// Published entry: the store already verified framing and
		// sha256; decode re-verifies semantics (fingerprint / parse).
		if v, derr := cd.decode(acq.Data, hexKey); derr == nil {
			c.bump(sel, func(t *TierStats) { t.DiskHits++ })
			return v, nil
		}
		// Semantically corrupt despite intact framing: evict, rebuild,
		// republish (claimless — a concurrent duplicate publish writes
		// identical bytes).
		c.store.Delete(cd.kind, hexKey)
		c.bump(sel, func(t *TierStats) { t.Builds++ })
		v, err := build()
		if err == nil {
			if p, eerr := cd.encode(v, hexKey); eerr == nil {
				c.store.Put(cd.kind, hexKey, p)
			}
		}
		return v, err
	}
	// We hold the claim: build and publish. Build errors abandon the
	// claim so other processes retry instead of inheriting a failure
	// that may be local (errors stay cached in this process's memory
	// tier as before).
	c.bump(sel, func(t *TierStats) { t.Builds++ })
	v, err := build()
	if err != nil {
		acq.Claim.Abandon()
		return v, err
	}
	if p, eerr := cd.encode(v, hexKey); eerr == nil {
		acq.Claim.Publish(p)
	} else {
		acq.Claim.Abandon()
	}
	return v, nil
}

// VerifyEntry decodes and integrity-checks one store payload of the
// given kind and key (the store entry's filename); irtool's
// `store verify` runs it over the whole store.
func VerifyEntry(kind, key string, payload []byte) error {
	switch kind {
	case StoreKindCompile:
		_, err := decodeCompiled(payload, key)
		return err
	case StoreKindLayout:
		_, err := decodeLayout(payload, key)
		return err
	default:
		return fmt.Errorf("pipeline: unknown artifact kind %q", kind)
	}
}

// compiledHeader is the JSON side-car of a compiled artifact: the
// fields of compiled that are not the program, plus the cache key it
// was published under and the master's fingerprint for the read-side
// integrity checks.
type compiledHeader struct {
	Key    string
	FP     string
	Stats  core.Stats
	Gap    *sched.GapStats `json:",omitempty"`
	VStats *validate.Stats `json:",omitempty"`
}

// frame prefixes a JSON header to a binary body with a uvarint length.
func frame(header any, body []byte) ([]byte, error) {
	hdr, err := json.Marshal(header)
	if err != nil {
		return nil, err
	}
	out := binary.AppendUvarint(nil, uint64(len(hdr)))
	out = append(out, hdr...)
	return append(out, body...), nil
}

// unframe splits a payload written by frame.
func unframe(payload []byte, header any) (body []byte, err error) {
	n, w := binary.Uvarint(payload)
	if w <= 0 || n > uint64(len(payload)-w) {
		return nil, fmt.Errorf("pipeline: artifact header framing corrupt")
	}
	if err := json.Unmarshal(payload[w:w+int(n)], header); err != nil {
		return nil, fmt.Errorf("pipeline: artifact header: %w", err)
	}
	return payload[w+int(n):], nil
}

func encodeCompiled(c *compiled, key string) ([]byte, error) {
	return frame(compiledHeader{
		Key:    key,
		FP:     hex.EncodeToString(c.fp[:]),
		Stats:  c.stats,
		Gap:    c.gap,
		VStats: c.vstats,
	}, ir.EncodeProgram(c.master))
}

func decodeCompiled(payload []byte, key string) (*compiled, error) {
	var hdr compiledHeader
	body, err := unframe(payload, &hdr)
	if err != nil {
		return nil, err
	}
	// Key binding: a payload that is valid in itself but filed under a
	// different compile key (a swap, a copy, a botched sync of the
	// store directory) must read as corrupt, not as a wrong program.
	if hdr.Key != key {
		return nil, fmt.Errorf("pipeline: compiled artifact key mismatch (header %.16s..., entry %.16s...)", hdr.Key, key)
	}
	master, err := ir.DecodeProgram(body)
	if err != nil {
		return nil, err
	}
	// The integrity check the whole tier rests on: the decoded program
	// must re-fingerprint to what the publisher fingerprinted. This
	// catches anything the store's framing sha cannot — a codec bug, a
	// payload swapped whole between keys — because the fingerprint is
	// recomputed from the decoded structure, not read from the entry.
	fp := ir.Fingerprint(master)
	if hex.EncodeToString(fp[:]) != hdr.FP {
		return nil, fmt.Errorf("pipeline: compiled artifact fingerprint mismatch")
	}
	return &compiled{master: master, fp: fp, stats: hdr.Stats, gap: hdr.Gap, vstats: hdr.VStats}, nil
}

// layoutHeader is the JSON side-car of a layout-profile artifact; the
// body is the edge profile's canonical text form.
type layoutHeader struct {
	Key    string
	NProcs int
	Calls  [][3]int64 // (caller, callee, count), sorted
}

func encodeLayout(lp *layoutProfile, key string) ([]byte, error) {
	hdr := layoutHeader{Key: key, NProcs: lp.prof.NProcs()}
	for k, n := range lp.calls { //lint:ordered — collected then sorted below
		hdr.Calls = append(hdr.Calls, [3]int64{int64(k[0]), int64(k[1]), n})
	}
	// Map iteration order is not deterministic; published bytes must
	// be, so identical profiles publish identical entries.
	sort.Slice(hdr.Calls, func(i, j int) bool {
		a, b := hdr.Calls[i], hdr.Calls[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})
	return frame(hdr, []byte(lp.prof.WriteText()))
}

func decodeLayout(payload []byte, key string) (*layoutProfile, error) {
	var hdr layoutHeader
	body, err := unframe(payload, &hdr)
	if err != nil {
		return nil, err
	}
	if hdr.Key != key {
		return nil, fmt.Errorf("pipeline: layout artifact key mismatch (header %.16s..., entry %.16s...)", hdr.Key, key)
	}
	if hdr.NProcs < 0 {
		return nil, fmt.Errorf("pipeline: layout artifact: negative proc count")
	}
	prof, err := profile.ParseEdgeProfile(hdr.NProcs, string(body))
	if err != nil {
		return nil, err
	}
	calls := make(map[[2]ir.ProcID]int64, len(hdr.Calls))
	for _, c := range hdr.Calls {
		calls[[2]ir.ProcID{ir.ProcID(c[0]), ir.ProcID(c[1])}] = c[2]
	}
	return &layoutProfile{calls: calls, prof: prof}, nil
}
