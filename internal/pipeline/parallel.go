package pipeline

import (
	"context"
	"sync"
	"sync/atomic"
)

// forEachLimited runs fn(ctx, i) for every i in [0, n) on at most
// parallelism goroutines. The first failure (or expiry of ctx) cancels
// the derived context handed to fn, workers stop claiming new items,
// and the error for the lowest failed index is returned once in-flight
// items finish. With parallelism 1 the items run on the calling
// goroutine in index order, exactly like the historical serial loops.
func forEachLimited(ctx context.Context, n, parallelism int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next int64 // atomically claimed work index
		wg   sync.WaitGroup
		errs = make([]error, n) // each worker writes only its own index
	)
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err() // a parent cancellation with no item error still surfaces
}
