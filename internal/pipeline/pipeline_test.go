package pipeline

import (
	"testing"

	"pathsched/internal/bench"
	"pathsched/internal/machine"
)

func testCache() *machine.ICacheConfig {
	c := machine.DefaultICache()
	return &c
}

func TestPipelineMicroBenchmarks(t *testing.T) {
	r := NewRunner(Options{Cache: testCache()})
	for _, name := range []string{"alt", "ph", "corr"} {
		res, err := r.RunBenchmark(bench.ByName(name), AllSchemes())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		bb := res.ByScheme[SchemeBB]
		if bb == nil || bb.Cycles == 0 {
			t.Fatalf("%s: missing BB baseline", name)
		}
		for _, s := range AllSchemes() {
			m := res.ByScheme[s]
			if m.IdealCycles <= 0 || m.IdealCycles > bb.Cycles*2 {
				t.Errorf("%s/%s: implausible ideal cycles %d (bb %d)", name, s, m.IdealCycles, bb.Cycles)
			}
			if s != SchemeBB && m.IdealCycles >= bb.IdealCycles {
				t.Errorf("%s/%s: superblock scheduling (%d) did not beat BB (%d)",
					name, s, m.IdealCycles, bb.IdealCycles)
			}
		}
		// The microbenchmarks were constructed so path formation wins.
		p4 := res.ByScheme[SchemeP4]
		m4 := res.ByScheme[SchemeM4]
		if p4.IdealCycles >= m4.IdealCycles {
			t.Errorf("%s: P4 (%d cycles) must beat M4 (%d) on a path-friendly microbenchmark",
				name, p4.IdealCycles, m4.IdealCycles)
		}
	}
}

func TestPipelineSchemesProduceFigure7Stats(t *testing.T) {
	r := NewRunner(Options{})
	res, err := r.RunBenchmark(bench.ByName("wc"), []Scheme{SchemeM4, SchemeP4})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheme{SchemeM4, SchemeP4} {
		m := res.ByScheme[s]
		if m.SBEntries == 0 {
			t.Fatalf("%s: no superblock entries recorded", s)
		}
		if m.AvgBlocksExecuted <= 0 || m.AvgSBSize < m.AvgBlocksExecuted {
			t.Fatalf("%s: inconsistent Figure 7 stats: exec %.2f size %.2f",
				s, m.AvgBlocksExecuted, m.AvgSBSize)
		}
	}
}

func TestPipelineCacheAccounting(t *testing.T) {
	r := NewRunner(Options{Cache: testCache()})
	res, err := r.RunBenchmark(bench.ByName("wc"), []Scheme{SchemeBB, SchemeP4})
	if err != nil {
		t.Fatal(err)
	}
	for s, m := range res.ByScheme {
		if m.Cycles != m.IdealCycles+m.FetchStall {
			t.Fatalf("%s: cycles %d != ideal %d + stall %d", s, m.Cycles, m.IdealCycles, m.FetchStall)
		}
		if m.CacheAccesses == 0 {
			t.Fatalf("%s: cache never accessed", s)
		}
		if m.MissRate < 0 || m.MissRate > 1 {
			t.Fatalf("%s: miss rate %v", s, m.MissRate)
		}
	}
}

func TestPipelineRejectsUnknownBenchmark(t *testing.T) {
	r := NewRunner(Options{})
	if _, err := r.RunSuite([]string{"nope"}, []Scheme{SchemeBB}); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestPipelineSuiteSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := NewRunner(Options{Cache: testCache()})
	results, err := r.RunSuite([]string{"eqn", "li"}, AllSchemes())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, res := range results {
		if len(res.ByScheme) != len(AllSchemes()) {
			t.Fatalf("%s: missing schemes", res.Name)
		}
	}
}
