// Package pipeline wires the full system together, reproducing the
// paper's methodology (§3): profile the training input (edge + general
// path + call graph in one run), form superblocks with the scheme
// under study, compact them for the experimental VLIW, place
// procedures Pettis–Hansen style, and measure the testing input by
// direct execution — cycle counts with and without the 32KB
// direct-mapped instruction cache.
//
// Benchmarks bake their input into the program (data segments and loop
// bounds), while their CFG structure is input-independent. Profiles
// therefore transfer from the training build to the testing build by
// block id, and formation — which is deterministic given a profile —
// produces structurally identical transformed programs for both
// builds. The pipeline exploits that: layout weights are gathered by
// running the *transformed training build* (never the testing input),
// exactly like a profile-guided link step.
//
// Because formation is deterministic given an immutable frozen profile,
// the per-benchmark and per-scheme measurements are independent of one
// another: RunSuite fans benchmarks out across a bounded worker pool,
// and RunBenchmark fans the schemes out likewise. Frozen profiles
// (EdgeProfile, PathProfile) and pristine builds are shared read-only
// across workers; everything a scheme mutates (formed clones, layout,
// cache model, layout profilers) is private to its worker. Results are
// assembled in input order regardless of completion order, so parallel
// and serial runs produce identical output. Options.Parallelism
// controls the pool (1 reproduces the historical serial order).
//
// Determinism also enables memoization: a content-addressed Cache
// (cache.go) keys each scheme's compile by structural fingerprints of
// its inputs and each layout-profiling run by the fingerprint of the
// formed training build, with single-flight deduplication across
// concurrent workers. Schemes or ablation configs that form identical
// programs share one compile and one training run; the differential
// golden tests pin cached results byte-identical to the uncached
// serial pipeline.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"pathsched/internal/bench"
	"pathsched/internal/check"
	"pathsched/internal/core"
	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/layout"
	"pathsched/internal/machine"
	"pathsched/internal/profile"
	"pathsched/internal/sched"
	"pathsched/internal/store"
	"pathsched/internal/validate"
)

// Scheme names follow the paper's figures.
type Scheme string

const (
	// SchemeBB is the basic-block-scheduled baseline of Table 1.
	SchemeBB Scheme = "BB"
	// SchemeM4 and SchemeM16 are edge-profile mutual-most-likely
	// formation with unroll factors 4 and 16.
	SchemeM4  Scheme = "M4"
	SchemeM16 Scheme = "M16"
	// SchemeP4 is path-based formation with up to 4 superblock-loop
	// heads; SchemeP4e limits non-loop superblocks to tail-duplicated
	// code (§4).
	SchemeP4  Scheme = "P4"
	SchemeP4e Scheme = "P4e"
)

// AllSchemes returns every scheme in presentation order.
func AllSchemes() []Scheme {
	return []Scheme{SchemeBB, SchemeM4, SchemeM16, SchemeP4e, SchemeP4}
}

// CheckMode selects whether the semantic checker (internal/check)
// gates each pipeline stage.
type CheckMode int

const (
	// CheckAuto (the zero value) enables checking under `go test` and
	// disables it otherwise, so every test run validates the pipeline
	// at no cost to production measurement runs.
	CheckAuto CheckMode = iota
	// CheckOn always checks.
	CheckOn
	// CheckOff never checks.
	CheckOff
)

// ValidateMode selects whether the symbolic translation validator
// (internal/validate) gates each compile.
type ValidateMode int

const (
	// ValidateAuto (the zero value) enables validation under `go test`
	// and disables it otherwise, mirroring CheckAuto: every test run
	// proves each compile semantically equivalent to its pristine input
	// at no cost to production measurement runs.
	ValidateAuto ValidateMode = iota
	// ValidateOn always validates.
	ValidateOn
	// ValidateOff never validates.
	ValidateOff
)

// ProfilerScheme selects which path-profiling scheme gathers the
// training profile.
type ProfilerScheme string

const (
	// ProfilerWindow is the paper's sliding-window general-path
	// profiler (the default; "" means the same).
	ProfilerWindow ProfilerScheme = "window"
	// ProfilerBL is Ball–Larus numbered path profiling with the
	// k-iteration extension: cheaper training runs, k-bounded
	// cross-iteration visibility.
	ProfilerBL ProfilerScheme = "bl"
)

// Options configures a pipeline run.
type Options struct {
	// Machine is the VLIW model (default machine.Default).
	Machine machine.Config
	// Cache, when non-nil, simulates the instruction cache; the
	// measurement then reports both ideal and cache-adjusted cycles.
	Cache *machine.ICacheConfig
	// Profiler selects the path-profiling scheme for training runs
	// (default ProfilerWindow). Every downstream consumer (formation,
	// ablations, checks) sees an ordinary PathProfile either way.
	Profiler ProfilerScheme
	// BLIterations is the Ball–Larus k-iteration extension depth
	// (profile.BLConfig.Iterations, 0 = adapt to PathDepth); only
	// meaningful with ProfilerBL.
	BLIterations int
	// PathDepth overrides the general-path depth (default 15).
	PathDepth int
	// PathCrossActivation keeps path windows per procedure instead of
	// per activation (see profile.PathConfig.CrossActivation). Only
	// supported by the window profiler: Ball–Larus state is strictly
	// per-activation.
	PathCrossActivation bool
	// Form tweaks the formation config after scheme defaults apply
	// (used by ablation benches). It may be called from several
	// goroutines at once; it must only mutate the config it is given.
	Form func(*core.Config)
	// Sched carries compaction options (renaming/DCE ablations).
	Sched sched.Options
	// Parallelism bounds how many benchmarks (in RunSuite) and schemes
	// (in RunBenchmark) are measured concurrently. 0 means
	// runtime.GOMAXPROCS(0); 1 reproduces the historical serial
	// execution order exactly. Results are identical at any setting.
	Parallelism int
	// ProfileCache is the content-addressed compile/layout-profile
	// cache (see Cache). Nil means NewRunner creates a private cache;
	// pass one cache to several runners to share compiles across
	// ablation configs. Results are identical with or without it.
	ProfileCache *Cache
	// ArtifactStore backs the cache with a persistent disk tier (see
	// internal/store): compiles and layout profiles are published
	// there and shared across processes. Only consulted when NewRunner
	// creates the cache itself (ProfileCache nil, caching enabled);
	// callers passing an explicit ProfileCache attach a store with
	// NewDiskCache instead. Results are identical with or without it.
	ArtifactStore *store.Store
	// DisableProfileCache turns memoization off entirely, restoring the
	// historical every-scheme-recompiles behavior. The differential
	// tests pin cached runs byte-identical to this path.
	DisableProfileCache bool
	// Check gates each stage with the semantic analyses of
	// internal/check: profile flow conservation after profiling,
	// superblock invariants after formation, schedule legality and
	// def-before-use after compaction, and flow conservation of the
	// layout profile. Stage checks run on cache misses; a cache hit
	// returns a result whose (content-identical) inputs were checked
	// when first compiled. Checking is purely observational — it never
	// changes results, so it deliberately does not enter cache keys.
	Check CheckMode
	// Validate gates every compile with the symbolic translation
	// validator (check.Equiv): each compiled procedure must prove
	// semantically equivalent to its pristine input, with budget
	// fallbacks reported as explicit Bounded counts in
	// Measurement.Validation. Unlike Check, validation enters the
	// compile-cache key: a cache entry compiled without validation
	// carries no proof or stats, so validated and unvalidated runs must
	// not share entries.
	Validate ValidateMode
}

// Measurement is one (benchmark, scheme) data point.
type Measurement struct {
	Scheme Scheme

	Cycles      int64 // including fetch stalls when a cache is simulated
	IdealCycles int64 // cycles with a perfect I-cache
	FetchStall  int64

	CacheAccesses int64
	CacheMisses   int64
	MissRate      float64

	DynInstrs   int64
	DynBranches int64
	CodeBytes   int64 // transformed program size

	// Figure 7 statistics, dynamically weighted over superblock
	// entries.
	SBEntries         int64
	AvgBlocksExecuted float64
	AvgSBSize         float64

	FormStats core.Stats

	// Gap is the list-vs-exact span accounting of the measured build's
	// compile, present only when Options.Sched.Exact is enabled (the
	// "% of optimal" table). Cache hits carry the gap computed when the
	// entry was first compiled.
	Gap *sched.GapStats `json:"Gap,omitempty"`

	// Validation is the translation-validator verdict tally of the
	// measured build's compile, present only when Options.Validate
	// resolves on. Cache hits carry the stats recorded when the entry
	// was first compiled and validated. Excluded from JSON output,
	// which is pinned to measurement data.
	Validation *validate.Stats `json:"-"`
}

// Result bundles all measurements for one benchmark.
type Result struct {
	Name        string
	Description string
	Category    string

	// OrigCodeBytes is the untransformed binary size (Table 1 "Size").
	OrigCodeBytes int64

	ByScheme map[Scheme]*Measurement

	// ProfStats describes how the training run executed (fast-path
	// modes, automaton sizes, batch statistics); surfaced by
	// cmd/experiments -profstats. Excluded from JSON output, which is
	// pinned to measurement data.
	ProfStats *profile.TrainStats `json:"-"`
}

// Runner caches per-benchmark training state so several schemes reuse
// one profiling run.
type Runner struct {
	opts     Options
	cache    *Cache // nil when caching is disabled
	check    bool   // resolved CheckMode
	validate bool   // resolved ValidateMode
	stats    stageStats
}

// stageStats accumulates wall time per compile stage across all of a
// runner's (possibly concurrent) compiles.
type stageStats struct {
	formNS, compactNS, checkNS, validateNS, layoutNS atomic.Int64
	compiles, layoutRuns                             atomic.Int64
}

// CompileStats reports where a runner's compile time went, summed over
// every compile it performed (concurrent stage times add up, so the
// totals can exceed wall time on parallel runs). Surfaced by
// cmd/experiments -compilestats.
type CompileStats struct {
	Compiles   int64 // compileWith invocations (cache misses only, when caching)
	LayoutRuns int64 // layout-weight training runs

	FormSeconds     float64 // superblock formation
	CompactSeconds  float64 // sched.Compact / CompactBasicBlocks
	CheckSeconds    float64 // semantic checker gates (0 when checking is off)
	ValidateSeconds float64 // translation validation (0 when validation is off)
	LayoutSeconds   float64 // layout training runs
}

// CompileStats returns the per-stage compile wall-time counters
// accumulated so far.
func (r *Runner) CompileStats() CompileStats {
	return CompileStats{
		Compiles:        r.stats.compiles.Load(),
		LayoutRuns:      r.stats.layoutRuns.Load(),
		FormSeconds:     float64(r.stats.formNS.Load()) / 1e9,
		CompactSeconds:  float64(r.stats.compactNS.Load()) / 1e9,
		CheckSeconds:    float64(r.stats.checkNS.Load()) / 1e9,
		ValidateSeconds: float64(r.stats.validateNS.Load()) / 1e9,
		LayoutSeconds:   float64(r.stats.layoutNS.Load()) / 1e9,
	}
}

// NewRunner returns a runner with the given options.
func NewRunner(opts Options) *Runner {
	if opts.Machine.FuncUnits == 0 {
		opts.Machine = machine.Default()
	}
	if opts.Sched.Machine.FuncUnits == 0 {
		// The compactor schedules for the same machine the pipeline
		// measures on.
		opts.Sched.Machine = opts.Machine
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	if opts.Sched.Parallelism == 0 {
		// Compaction fans out across procedures under the same knob
		// that bounds benchmark/scheme fan-out; output is identical at
		// any setting.
		opts.Sched.Parallelism = opts.Parallelism
	}
	r := &Runner{opts: opts}
	switch opts.Check {
	case CheckOn:
		r.check = true
	case CheckOff:
		r.check = false
	default:
		r.check = testing.Testing()
	}
	switch opts.Validate {
	case ValidateOn:
		r.validate = true
	case ValidateOff:
		r.validate = false
	default:
		r.validate = testing.Testing()
	}
	if !opts.DisableProfileCache {
		if r.cache = opts.ProfileCache; r.cache == nil {
			if opts.ArtifactStore != nil {
				r.cache = NewDiskCache(opts.ArtifactStore)
			} else {
				r.cache = NewCache()
			}
		}
	}
	return r
}

// train runs the configured profiling scheme over the training build.
func (r *Runner) train(trainProg *ir.Program) (*profile.TrainingProfiles, error) {
	switch r.opts.Profiler {
	case "", ProfilerWindow:
		return profile.Train(trainProg, profile.PathConfig{
			Depth:           r.opts.PathDepth,
			CrossActivation: r.opts.PathCrossActivation,
		})
	case ProfilerBL:
		if r.opts.PathCrossActivation {
			return nil, fmt.Errorf("profiler %q does not support cross-activation windows", r.opts.Profiler)
		}
		return profile.TrainBL(trainProg, profile.BLConfig{
			Depth:      r.opts.PathDepth,
			Iterations: r.opts.BLIterations,
		})
	default:
		return nil, fmt.Errorf("unknown profiler scheme %q", r.opts.Profiler)
	}
}

// CacheStats returns the runner's cache counters; ok is false when
// caching is disabled.
func (r *Runner) CacheStats() (stats CacheStats, ok bool) {
	if r.cache == nil {
		return CacheStats{}, false
	}
	return r.cache.Stats(), true
}

// RunBenchmark measures b under every requested scheme.
func (r *Runner) RunBenchmark(b *bench.Benchmark, schemes []Scheme) (*Result, error) {
	return r.RunBenchmarkContext(context.Background(), b, schemes)
}

// RunBenchmarkContext is RunBenchmark with cancellation: the first
// scheme error (or ctx expiry) cancels the remaining scheme runs.
func (r *Runner) RunBenchmarkContext(ctx context.Context, b *bench.Benchmark, schemes []Scheme) (*Result, error) {
	trainProg := b.Build(b.Train)
	testProg := b.Build(b.Test)
	if err := checkSameShape(trainProg, testProg); err != nil {
		return nil, fmt.Errorf("pipeline: %s: train/test builds diverge: %w", b.Name, err)
	}

	// One training run feeds all profile consumers. Both trainers pick
	// the fast path automatically: batched path profiling plus
	// counter-fused edge reconstruction on decodable programs,
	// per-event observers on wide-register fallbacks — the profiles
	// are identical either way.
	tp, err := r.train(trainProg)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s: training run: %w", b.Name, err)
	}
	eprof, pprof := tp.Edge, tp.Path
	var bases benchBases
	if r.check {
		vs := check.EdgeFlow(trainProg, eprof)
		vs = append(vs, check.PathFlow(trainProg, pprof, eprof)...)
		if tp.BL != nil {
			vs = append(vs, check.BLFlow(trainProg, tp.BL, eprof)...)
		}
		if err := check.Err("profile", vs); err != nil {
			return nil, fmt.Errorf("pipeline: %s: %w", b.Name, err)
		}
		// The def-before-use baselines are functions of the pristine
		// builds alone, so compute them once here rather than inside
		// every scheme compile (ten per benchmark).
		bases.train = check.BaselineOf(trainProg)
		bases.test = check.BaselineOf(testProg)
	}

	// Reference output for the correctness cross-check. The pristine
	// testing build doubles as the reference program: nothing below
	// mutates it (compileWith clones before compacting), so no extra
	// build is needed.
	ref, err := interp.Run(testProg, interp.Config{})
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s: reference run: %w", b.Name, err)
	}

	// Pristine-build fingerprints key the compile cache. They are
	// computed once per benchmark, not per scheme; the training
	// fingerprint rides along in every key because the profiles that
	// feed formation derive from the training build.
	var keys benchKeys
	if r.cache != nil {
		keys.on = true
		keys.train = ir.Fingerprint(trainProg)
		keys.test = ir.Fingerprint(testProg)
	}

	// Fan the schemes out. Each worker only reads the shared builds and
	// frozen profiles; measurements land at their scheme's index, so
	// assembly order is independent of completion order.
	ms := make([]*Measurement, len(schemes))
	err = forEachLimited(ctx, len(schemes), r.opts.Parallelism, func(ctx context.Context, i int) error {
		m, err := r.runScheme(schemes[i], trainProg, testProg, eprof, pprof, ref, keys, bases)
		if err != nil {
			return fmt.Errorf("pipeline: %s/%s: %w", b.Name, schemes[i], err)
		}
		ms[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Name:          b.Name,
		Description:   b.Description,
		Category:      b.Category,
		OrigCodeBytes: testProg.CodeBytes(),
		ByScheme:      map[Scheme]*Measurement{},
		ProfStats:     &tp.Stats,
	}
	for i, s := range schemes {
		res.ByScheme[s] = ms[i]
	}
	return res, nil
}

// formConfig resolves the fully configured formation config for scheme
// s: defaults, scheme knobs, profiles, parallelism, and the Form hook.
// ok is false for the BB baseline, which does not form superblocks.
func (r *Runner) formConfig(s Scheme, eprof *profile.EdgeProfile, pprof *profile.PathProfile) (cfg core.Config, ok bool, err error) {
	if s == SchemeBB {
		return core.Config{}, false, nil
	}
	cfg = core.DefaultConfig()
	cfg.Edge, cfg.Path = eprof, pprof
	// Formation fans out across procedures under the same knob that
	// bounds scheme fan-out (the Form hook below may still override).
	cfg.Parallelism = r.opts.Parallelism
	switch s {
	case SchemeM4:
		cfg.Method = core.EdgeBased
		cfg.UnrollFactor = 4
	case SchemeM16:
		cfg.Method = core.EdgeBased
		cfg.UnrollFactor = 16
	case SchemeP4:
		cfg.Method = core.PathBased
	case SchemeP4e:
		cfg.Method = core.PathBased
		cfg.StopNonLoopAtFirstHead = true
	default:
		return core.Config{}, false, fmt.Errorf("unknown scheme %q", s)
	}
	if r.opts.Form != nil {
		r.opts.Form(&cfg)
	}
	return cfg, true, nil
}

// compileWith forms and compacts prog under the config formConfig
// resolved for a scheme (haveCfg false selects the BB baseline). prog
// is treated as read-only — formation clones internally and the BB
// baseline clones explicitly — so one shared build can feed concurrent
// scheme compiles. base is prog's precomputed def-before-use baseline
// (nil when checking is off).
func (r *Runner) compileWith(prog *ir.Program, base check.Baseline, cfg core.Config, haveCfg bool) (*ir.Program, core.Stats, *sched.GapStats, *validate.Stats, error) {
	r.stats.compiles.Add(1)
	// Checked compiles record the scheduler's own dependence edges so
	// the schedule check consumes them instead of recomputing every
	// block's dependences. The options copy keeps the recording map
	// private to this compile (r.opts.Sched is shared across workers).
	so := r.opts.Sched
	if r.check {
		so.RecordDeps = sched.BlockDeps{}
	}
	var gap *sched.GapStats
	if so.Exact.Enabled {
		// Gap accounting is private to this compile for the same reason
		// the recording map is.
		gap = &sched.GapStats{}
		so.GapStats = gap
	}
	if !haveCfg {
		bb := ir.CloneProgram(prog)
		t0 := time.Now()
		err := sched.CompactBasicBlocks(bb, so)
		r.stats.compactNS.Add(int64(time.Since(t0)))
		if err != nil {
			return nil, core.Stats{}, nil, nil, err
		}
		if err := r.checkCompacted(base, bb, so.RecordDeps); err != nil {
			return nil, core.Stats{}, nil, nil, err
		}
		vstats, err := r.validateCompiled(prog, bb)
		if err != nil {
			return nil, core.Stats{}, nil, nil, err
		}
		return bb, core.Stats{}, gap, vstats, nil
	}
	t0 := time.Now()
	formed, err := core.Form(prog, cfg)
	r.stats.formNS.Add(int64(time.Since(t0)))
	if err != nil {
		return nil, core.Stats{}, nil, nil, err
	}
	if r.check {
		t1 := time.Now()
		err := check.Err("form", check.Superblocks(formed))
		r.stats.checkNS.Add(int64(time.Since(t1)))
		if err != nil {
			return nil, core.Stats{}, nil, nil, err
		}
	}
	t2 := time.Now()
	err = sched.Compact(formed, so)
	r.stats.compactNS.Add(int64(time.Since(t2)))
	if err != nil {
		return nil, core.Stats{}, nil, nil, err
	}
	if err := r.checkCompacted(base, formed.Prog, so.RecordDeps); err != nil {
		return nil, core.Stats{}, nil, nil, err
	}
	vstats, err := r.validateCompiled(prog, formed.Prog)
	if err != nil {
		return nil, core.Stats{}, nil, nil, err
	}
	return formed.Prog, formed.Stats, gap, vstats, nil
}

// validateCompiled gates a compile with the symbolic translation
// validator: every procedure of bin must prove semantically equivalent
// to its pristine counterpart in prog, or the compile fails the same
// way a structural check failure does. Budget-bounded procedures are
// not failures — they fall back to the structural gates above and are
// tallied explicitly in the returned stats.
func (r *Runner) validateCompiled(prog, bin *ir.Program) (*validate.Stats, error) {
	if !r.validate {
		return nil, nil
	}
	t0 := time.Now()
	rep, vs := check.Equiv(prog, bin, validate.Options{})
	r.stats.validateNS.Add(int64(time.Since(t0)))
	if err := check.Err("validate", vs); err != nil {
		return nil, err
	}
	stats := rep.Stats
	return &stats, nil
}

// checkCompacted gates a compaction result: the emitted schedules must
// be legal for the machine, and the transformed program must not read
// any register the pristine input did not already possibly read
// undefined (renaming and allocation bugs surface exactly there). base
// is the pristine input's baseline, shared across every compile of the
// same build; deps is the compile's recorded dependence edges (nil
// falls back to recomputation).
func (r *Runner) checkCompacted(base check.Baseline, bin *ir.Program, deps sched.BlockDeps) error {
	if !r.check {
		return nil
	}
	t0 := time.Now()
	vs := check.SchedulesWithDeps(bin, r.opts.Sched.Machine, deps)
	vs = append(vs, check.DefBeforeUse(bin, base)...)
	r.stats.checkNS.Add(int64(time.Since(t0)))
	return check.Err("compact", vs)
}

// benchKeys carries one benchmark's pristine-build fingerprints to the
// scheme workers; the zero value means caching is off.
type benchKeys struct {
	on          bool
	train, test ir.Digest
}

// benchBases carries one benchmark's pristine-build def-before-use
// baselines to the scheme workers; the zero value (checking off) is
// fine because checkCompacted never touches it then.
type benchBases struct {
	train, test check.Baseline
}

// compileKey content-addresses one compile: the pristine build being
// compiled, the training build the formation profiles derive from, the
// resolved formation config, the compaction options and machine model,
// and the profiling parameters. Everything that can change the
// compiled bytes is in the key; names and schemes are not, so distinct
// configs that resolve to identical inputs share an entry.
func (r *Runner) compileKey(progFP, trainFP ir.Digest, cfg core.Config, haveCfg bool) ir.Digest {
	w := newKeyWriter()
	w.str("pathsched-pipeline-compile-v2")
	w.digest(progFP)
	w.digest(trainFP)
	// Validation never changes the compiled bytes, but validated
	// entries carry proof stats that unvalidated ones lack, so the two
	// kinds must not share cache entries (contrast Check, which stores
	// nothing on the entry and stays out of the key).
	w.bool(r.validate)
	if haveCfg {
		w.u64(1)
		w.digest(cfg.Fingerprint())
	} else {
		w.u64(0) // BB baseline: no formation config
	}
	w.bool(r.opts.Sched.DisableRenaming)
	w.bool(r.opts.Sched.DisableDCE)
	w.bool(r.opts.Sched.DisableVN)
	w.u64(uint64(r.opts.Sched.Machine.FuncUnits))
	w.u64(uint64(r.opts.Sched.Machine.BranchPerCycle))
	w.bool(r.opts.Sched.Machine.Realistic)
	// Exact-mode compiles produce different schedules (and carry gap
	// stats), so the normalized exact config is its own key dimension;
	// normalizing keeps explicit-default and zero configs colliding.
	ec := r.opts.Sched.Exact.Normalized()
	w.bool(ec.Enabled)
	w.u64(uint64(ec.NodeBudget))
	w.u64(uint64(ec.SearchBudget))
	// The formation profiles are functions of (training build,
	// profiling scheme, path parameters); the build is already keyed
	// above, so scheme and parameters complete the profile identity.
	// Normalizing resolves zero fields to their defaults, so
	// explicit-default and default-by-omission configs share entries
	// (ablation sweeps hit this).
	if r.opts.Profiler == ProfilerBL {
		bc := profile.BLConfig{
			Depth:      r.opts.PathDepth,
			Iterations: r.opts.BLIterations,
		}.Normalized()
		w.str(string(ProfilerBL))
		w.u64(uint64(bc.Depth))
		w.u64(uint64(bc.MaxBlocks))
		w.u64(uint64(bc.Iterations))
		w.bool(false)
	} else {
		pc := profile.PathConfig{
			Depth:           r.opts.PathDepth,
			CrossActivation: r.opts.PathCrossActivation,
		}.Normalized()
		w.str(string(ProfilerWindow))
		w.u64(uint64(pc.Depth))
		w.u64(uint64(pc.MaxBlocks))
		w.u64(0)
		w.bool(pc.CrossActivation)
	}
	return w.sum()
}

// cachedCompile returns the memoized compile of prog under key,
// computing and fingerprinting it on a miss. The returned master is
// immutable; callers clone before mutating.
func (r *Runner) cachedCompile(key ir.Digest, prog *ir.Program, base check.Baseline, cfg core.Config, haveCfg bool) (*compiled, error) {
	return r.cache.compile(key, func() (*compiled, error) {
		bin, stats, gap, vstats, err := r.compileWith(prog, base, cfg, haveCfg)
		if err != nil {
			return nil, err
		}
		return &compiled{master: bin, fp: ir.Fingerprint(bin), stats: stats, gap: gap, vstats: vstats}, nil
	})
}

// buildScheme compiles a scheme's training and testing builds and
// gathers the layout weights from a training run of the transformed
// training build, via the cache when one is configured. It returns a
// private (mutable) testing binary, the formation stats of its
// compile, the layout weights to assign to it, and — when enabled —
// the testing compile's gap accounting and validation stats.
func (r *Runner) buildScheme(s Scheme, trainProg, testProg *ir.Program, eprof *profile.EdgeProfile, pprof *profile.PathProfile, keys benchKeys, bases benchBases) (*ir.Program, core.Stats, layout.Input, *sched.GapStats, *validate.Stats, error) {
	cfg, haveCfg, err := r.formConfig(s, eprof, pprof)
	if err != nil {
		return nil, core.Stats{}, layout.Input{}, nil, nil, err
	}

	if !keys.on {
		// Historical uncached path: compile the training build to
		// harvest layout weights, then the testing build for
		// measurement. Formation is deterministic given (CFG, profile),
		// so both compiles produce the same structure.
		trainBin, _, _, _, err := r.compileWith(trainProg, bases.train, cfg, haveCfg)
		if err != nil {
			return nil, core.Stats{}, layout.Input{}, nil, nil, fmt.Errorf("train compile: %w", err)
		}
		testBin, stats, gap, vstats, err := r.compileWith(testProg, bases.test, cfg, haveCfg)
		if err != nil {
			return nil, core.Stats{}, layout.Input{}, nil, nil, fmt.Errorf("test compile: %w", err)
		}
		if err := checkSameShape(trainBin, testBin); err != nil {
			return nil, core.Stats{}, layout.Input{}, nil, nil, fmt.Errorf("formed builds diverge: %w", err)
		}
		lw, err := r.layoutWeights(trainBin)
		if err != nil {
			return nil, core.Stats{}, layout.Input{}, nil, nil, err
		}
		return testBin, stats, lw.input(), gap, vstats, nil
	}

	// Cached path: the same steps, each memoized by content address
	// and deduplicated across concurrent scheme workers.
	trainC, err := r.cachedCompile(r.compileKey(keys.train, keys.train, cfg, haveCfg), trainProg, bases.train, cfg, haveCfg)
	if err != nil {
		return nil, core.Stats{}, layout.Input{}, nil, nil, fmt.Errorf("train compile: %w", err)
	}
	testC, err := r.cachedCompile(r.compileKey(keys.test, keys.train, cfg, haveCfg), testProg, bases.test, cfg, haveCfg)
	if err != nil {
		return nil, core.Stats{}, layout.Input{}, nil, nil, fmt.Errorf("test compile: %w", err)
	}
	if err := checkSameShape(trainC.master, testC.master); err != nil {
		return nil, core.Stats{}, layout.Input{}, nil, nil, fmt.Errorf("formed builds diverge: %w", err)
	}
	// Layout weights are keyed by the *formed* training build's
	// fingerprint: schemes whose configs differ but whose formed
	// programs coincide (P4 vs P4e with no non-loop heads) share one
	// training run. The master is only read — the interpreter's run
	// state is private and its decode memo is published atomically —
	// so no clone is needed.
	lp, err := r.cache.layout(trainC.fp, func() (*layoutProfile, error) {
		return r.layoutWeights(trainC.master)
	})
	if err != nil {
		return nil, core.Stats{}, layout.Input{}, nil, nil, err
	}
	return ir.CloneProgram(testC.master), testC.stats, lp.input(), testC.gap, testC.vstats, nil
}

// layoutWeights runs the transformed training build once and returns
// the frozen weights layout.Assign consumes.
func (r *Runner) layoutWeights(trainBin *ir.Program) (*layoutProfile, error) {
	r.stats.layoutRuns.Add(1)
	t0 := time.Now()
	defer func() { r.stats.layoutNS.Add(int64(time.Since(t0))) }()
	// Pure point profiling: on decodable programs this run carries no
	// observer at all — the edge and call-graph weights reconstruct
	// from the engine's visit counters (profile.PointProfiles).
	prof, calls, err := profile.PointProfiles(trainBin)
	if err != nil {
		return nil, fmt.Errorf("layout training run: %w", err)
	}
	if r.check {
		if err := check.Err("layout", check.EdgeFlow(trainBin, prof)); err != nil {
			return nil, err
		}
	}
	return &layoutProfile{calls: calls, prof: prof}, nil
}

// runScheme compiles and measures one scheme. trainProg and testProg
// are the benchmark's shared pristine builds; runScheme only reads them
// (compileWith clones), so concurrent scheme runs can share one pair.
func (r *Runner) runScheme(s Scheme, trainProg, testProg *ir.Program, eprof *profile.EdgeProfile, pprof *profile.PathProfile, ref *interp.Result, keys benchKeys, bases benchBases) (*Measurement, error) {
	testBin, stats, lin, gap, vstats, err := r.buildScheme(s, trainProg, testProg, eprof, pprof, keys, bases)
	if err != nil {
		return nil, err
	}
	layout.Assign(testBin, lin)

	// Measurement run. Decoding after layout.Assign means the engine
	// memoized on testBin (interp caches the decode on the program)
	// carries final addresses; any later run of this build reuses the
	// decode instead of re-walking the IR.
	eng := interp.EngineFor(testBin)
	cfg := interp.Config{}
	var cache *machine.ICache
	if r.opts.Cache != nil {
		cache = machine.NewICache(*r.opts.Cache)
		cfg.Fetch = cache
	}
	got, err := eng.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("measurement run: %w", err)
	}
	if err := sameBehaviour(ref, got); err != nil {
		return nil, fmt.Errorf("transformed program diverged: %w", err)
	}

	m := &Measurement{
		Scheme:      s,
		Cycles:      got.Cycles,
		IdealCycles: got.Cycles - got.FetchStall,
		FetchStall:  got.FetchStall,
		DynInstrs:   got.DynInstrs,
		DynBranches: got.DynBranches,
		CodeBytes:   testBin.CodeBytes(),
		SBEntries:   got.SBEntries,
		FormStats:   stats,
		Gap:         gap,
		Validation:  vstats,
	}
	if got.SBEntries > 0 {
		m.AvgBlocksExecuted = float64(got.SBExecuted) / float64(got.SBEntries)
		m.AvgSBSize = float64(got.SBSize) / float64(got.SBEntries)
	}
	if cache != nil {
		m.CacheAccesses = cache.Accesses()
		m.CacheMisses = cache.Misses()
		m.MissRate = cache.MissRate()
	}
	return m, nil
}

// RunSuite measures every named benchmark (nil means the whole suite).
func (r *Runner) RunSuite(names []string, schemes []Scheme) ([]*Result, error) {
	return r.RunSuiteContext(context.Background(), names, schemes)
}

// ShardNames deterministically partitions a suite's benchmark list for
// shard index of count (0 <= index < count), preserving suite order
// within the shard. The split is round-robin so the suite's expensive
// benchmarks, which cluster at neither end, spread across shards. The
// shards of any fixed count are a disjoint cover of names: a driver
// that merges per-shard results back into suite-list order reproduces
// the unsharded suite exactly.
func ShardNames(names []string, index, count int) ([]string, error) {
	if count < 1 || index < 0 || index >= count {
		return nil, fmt.Errorf("pipeline: bad shard %d/%d", index, count)
	}
	if names == nil {
		names = bench.Names()
	}
	out := []string{} // non-nil: an empty shard must not mean "whole suite"
	for i := index; i < len(names); i += count {
		out = append(out, names[i])
	}
	return out, nil
}

// RunSuiteContext is RunSuite with cancellation: benchmarks are
// dispatched across a bounded worker pool, the first error cancels the
// rest, and results come back in suite order regardless of which
// benchmark finished first.
func (r *Runner) RunSuiteContext(ctx context.Context, names []string, schemes []Scheme) ([]*Result, error) {
	if names == nil {
		names = bench.Names()
	}
	bs := make([]*bench.Benchmark, len(names))
	for i, n := range names {
		if bs[i] = bench.ByName(n); bs[i] == nil {
			return nil, fmt.Errorf("pipeline: unknown benchmark %q", n)
		}
	}
	out := make([]*Result, len(bs))
	err := forEachLimited(ctx, len(bs), r.opts.Parallelism, func(ctx context.Context, i int) error {
		res, err := r.RunBenchmarkContext(ctx, bs[i], schemes)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// checkSameShape verifies two builds of a benchmark have identical CFG
// structure (procedures, block counts, terminator opcodes and arities),
// the property profile transfer relies on. Successor counts matter as
// much as opcodes: two switches over differently sized jump tables have
// the same terminator opcode but different out-degrees, and a profile
// gathered on one does not transfer to the other.
func checkSameShape(a, b *ir.Program) error {
	if len(a.Procs) != len(b.Procs) {
		return fmt.Errorf("proc count %d vs %d", len(a.Procs), len(b.Procs))
	}
	for i := range a.Procs {
		pa, pb := a.Procs[i], b.Procs[i]
		if len(pa.Blocks) != len(pb.Blocks) {
			return fmt.Errorf("proc %s: block count %d vs %d", pa.Name, len(pa.Blocks), len(pb.Blocks))
		}
		for j := range pa.Blocks {
			ta := pa.Blocks[j].Terminator()
			tb := pb.Blocks[j].Terminator()
			if ta.Op != tb.Op {
				return fmt.Errorf("proc %s block b%d: terminator %v vs %v", pa.Name, j, ta.Op, tb.Op)
			}
			if len(ta.Targets) != len(tb.Targets) {
				return fmt.Errorf("proc %s block b%d: %v successor count %d vs %d",
					pa.Name, j, ta.Op, len(ta.Targets), len(tb.Targets))
			}
		}
	}
	return nil
}

// sameBehaviour checks observable equivalence of two runs.
func sameBehaviour(a, b *interp.Result) error {
	if a.Ret != b.Ret {
		return fmt.Errorf("return value %d vs %d", a.Ret, b.Ret)
	}
	if len(a.Output) != len(b.Output) {
		return fmt.Errorf("output length %d vs %d", len(a.Output), len(b.Output))
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			return fmt.Errorf("output[%d] = %d vs %d", i, a.Output[i], b.Output[i])
		}
	}
	return nil
}
