// Package pipeline wires the full system together, reproducing the
// paper's methodology (§3): profile the training input (edge + general
// path + call graph in one run), form superblocks with the scheme
// under study, compact them for the experimental VLIW, place
// procedures Pettis–Hansen style, and measure the testing input by
// direct execution — cycle counts with and without the 32KB
// direct-mapped instruction cache.
//
// Benchmarks bake their input into the program (data segments and loop
// bounds), while their CFG structure is input-independent. Profiles
// therefore transfer from the training build to the testing build by
// block id, and formation — which is deterministic given a profile —
// produces structurally identical transformed programs for both
// builds. The pipeline exploits that: layout weights are gathered by
// running the *transformed training build* (never the testing input),
// exactly like a profile-guided link step.
//
// Because formation is deterministic given an immutable frozen profile,
// the per-benchmark and per-scheme measurements are independent of one
// another: RunSuite fans benchmarks out across a bounded worker pool,
// and RunBenchmark fans the schemes out likewise. Frozen profiles
// (EdgeProfile, PathProfile) and pristine builds are shared read-only
// across workers; everything a scheme mutates (formed clones, layout,
// cache model, layout profilers) is private to its worker. Results are
// assembled in input order regardless of completion order, so parallel
// and serial runs produce identical output. Options.Parallelism
// controls the pool (1 reproduces the historical serial order).
package pipeline

import (
	"context"
	"fmt"
	"runtime"

	"pathsched/internal/bench"
	"pathsched/internal/core"
	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/layout"
	"pathsched/internal/machine"
	"pathsched/internal/profile"
	"pathsched/internal/sched"
)

// Scheme names follow the paper's figures.
type Scheme string

const (
	// SchemeBB is the basic-block-scheduled baseline of Table 1.
	SchemeBB Scheme = "BB"
	// SchemeM4 and SchemeM16 are edge-profile mutual-most-likely
	// formation with unroll factors 4 and 16.
	SchemeM4  Scheme = "M4"
	SchemeM16 Scheme = "M16"
	// SchemeP4 is path-based formation with up to 4 superblock-loop
	// heads; SchemeP4e limits non-loop superblocks to tail-duplicated
	// code (§4).
	SchemeP4  Scheme = "P4"
	SchemeP4e Scheme = "P4e"
)

// AllSchemes returns every scheme in presentation order.
func AllSchemes() []Scheme {
	return []Scheme{SchemeBB, SchemeM4, SchemeM16, SchemeP4e, SchemeP4}
}

// Options configures a pipeline run.
type Options struct {
	// Machine is the VLIW model (default machine.Default).
	Machine machine.Config
	// Cache, when non-nil, simulates the instruction cache; the
	// measurement then reports both ideal and cache-adjusted cycles.
	Cache *machine.ICacheConfig
	// PathDepth overrides the general-path depth (default 15).
	PathDepth int
	// PathCrossActivation keeps path windows per procedure instead of
	// per activation (see profile.PathConfig.CrossActivation).
	PathCrossActivation bool
	// Form tweaks the formation config after scheme defaults apply
	// (used by ablation benches). It may be called from several
	// goroutines at once; it must only mutate the config it is given.
	Form func(*core.Config)
	// Sched carries compaction options (renaming/DCE ablations).
	Sched sched.Options
	// Parallelism bounds how many benchmarks (in RunSuite) and schemes
	// (in RunBenchmark) are measured concurrently. 0 means
	// runtime.GOMAXPROCS(0); 1 reproduces the historical serial
	// execution order exactly. Results are identical at any setting.
	Parallelism int
}

// Measurement is one (benchmark, scheme) data point.
type Measurement struct {
	Scheme Scheme

	Cycles      int64 // including fetch stalls when a cache is simulated
	IdealCycles int64 // cycles with a perfect I-cache
	FetchStall  int64

	CacheAccesses int64
	CacheMisses   int64
	MissRate      float64

	DynInstrs   int64
	DynBranches int64
	CodeBytes   int64 // transformed program size

	// Figure 7 statistics, dynamically weighted over superblock
	// entries.
	SBEntries         int64
	AvgBlocksExecuted float64
	AvgSBSize         float64

	FormStats core.Stats
}

// Result bundles all measurements for one benchmark.
type Result struct {
	Name        string
	Description string
	Category    string

	// OrigCodeBytes is the untransformed binary size (Table 1 "Size").
	OrigCodeBytes int64

	ByScheme map[Scheme]*Measurement
}

// Runner caches per-benchmark training state so several schemes reuse
// one profiling run.
type Runner struct {
	opts Options
}

// NewRunner returns a runner with the given options.
func NewRunner(opts Options) *Runner {
	if opts.Machine.FuncUnits == 0 {
		opts.Machine = machine.Default()
	}
	if opts.Sched.Machine.FuncUnits == 0 {
		// The compactor schedules for the same machine the pipeline
		// measures on.
		opts.Sched.Machine = opts.Machine
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	return &Runner{opts: opts}
}

// RunBenchmark measures b under every requested scheme.
func (r *Runner) RunBenchmark(b *bench.Benchmark, schemes []Scheme) (*Result, error) {
	return r.RunBenchmarkContext(context.Background(), b, schemes)
}

// RunBenchmarkContext is RunBenchmark with cancellation: the first
// scheme error (or ctx expiry) cancels the remaining scheme runs.
func (r *Runner) RunBenchmarkContext(ctx context.Context, b *bench.Benchmark, schemes []Scheme) (*Result, error) {
	trainProg := b.Build(b.Train)
	testProg := b.Build(b.Test)
	if err := checkSameShape(trainProg, testProg); err != nil {
		return nil, fmt.Errorf("pipeline: %s: train/test builds diverge: %w", b.Name, err)
	}

	// One training run feeds all profile consumers.
	ep := profile.NewEdgeProfiler(trainProg)
	pp := profile.NewPathProfiler(trainProg, profile.PathConfig{
		Depth:           r.opts.PathDepth,
		CrossActivation: r.opts.PathCrossActivation,
	})
	if _, err := interp.Run(trainProg, interp.Config{Observer: profile.Multi{ep, pp}}); err != nil {
		return nil, fmt.Errorf("pipeline: %s: training run: %w", b.Name, err)
	}
	eprof, pprof := ep.Profile(), pp.Profile()

	// Reference output for the correctness cross-check. The pristine
	// testing build doubles as the reference program: nothing below
	// mutates it (compileWith clones before compacting), so no extra
	// build is needed.
	ref, err := interp.Run(testProg, interp.Config{})
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s: reference run: %w", b.Name, err)
	}

	// Fan the schemes out. Each worker only reads the shared builds and
	// frozen profiles; measurements land at their scheme's index, so
	// assembly order is independent of completion order.
	ms := make([]*Measurement, len(schemes))
	err = forEachLimited(ctx, len(schemes), r.opts.Parallelism, func(ctx context.Context, i int) error {
		m, err := r.runScheme(schemes[i], trainProg, testProg, eprof, pprof, ref)
		if err != nil {
			return fmt.Errorf("pipeline: %s/%s: %w", b.Name, schemes[i], err)
		}
		ms[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Name:          b.Name,
		Description:   b.Description,
		Category:      b.Category,
		OrigCodeBytes: testProg.CodeBytes(),
		ByScheme:      map[Scheme]*Measurement{},
	}
	for i, s := range schemes {
		res.ByScheme[s] = ms[i]
	}
	return res, nil
}

// compileWith forms and compacts prog under scheme s. prog is treated
// as read-only — formation clones internally and the BB baseline clones
// explicitly — so one shared build can feed concurrent scheme compiles.
func (r *Runner) compileWith(prog *ir.Program, s Scheme, eprof *profile.EdgeProfile, pprof *profile.PathProfile) (*ir.Program, *core.Result, core.Stats, error) {
	if s == SchemeBB {
		bb := ir.CloneProgram(prog)
		if err := sched.CompactBasicBlocks(bb, r.opts.Sched); err != nil {
			return nil, nil, core.Stats{}, err
		}
		return bb, nil, core.Stats{}, nil
	}
	cfg := core.DefaultConfig()
	cfg.Edge, cfg.Path = eprof, pprof
	// Formation fans out across procedures under the same knob that
	// bounds scheme fan-out (the Form hook below may still override).
	cfg.Parallelism = r.opts.Parallelism
	switch s {
	case SchemeM4:
		cfg.Method = core.EdgeBased
		cfg.UnrollFactor = 4
	case SchemeM16:
		cfg.Method = core.EdgeBased
		cfg.UnrollFactor = 16
	case SchemeP4:
		cfg.Method = core.PathBased
	case SchemeP4e:
		cfg.Method = core.PathBased
		cfg.StopNonLoopAtFirstHead = true
	default:
		return nil, nil, core.Stats{}, fmt.Errorf("unknown scheme %q", s)
	}
	if r.opts.Form != nil {
		r.opts.Form(&cfg)
	}
	formed, err := core.Form(prog, cfg)
	if err != nil {
		return nil, nil, core.Stats{}, err
	}
	if err := sched.Compact(formed, r.opts.Sched); err != nil {
		return nil, nil, core.Stats{}, err
	}
	return formed.Prog, formed, formed.Stats, nil
}

// runScheme compiles and measures one scheme. trainProg and testProg
// are the benchmark's shared pristine builds; runScheme only reads them
// (compileWith clones), so concurrent scheme runs can share one pair.
func (r *Runner) runScheme(s Scheme, trainProg, testProg *ir.Program, eprof *profile.EdgeProfile, pprof *profile.PathProfile, ref *interp.Result) (*Measurement, error) {
	// Compile the training build to harvest layout weights, then the
	// testing build for measurement. Formation is deterministic given
	// (CFG, profile), so both compiles produce the same structure.
	trainBin, _, _, err := r.compileWith(trainProg, s, eprof, pprof)
	if err != nil {
		return nil, fmt.Errorf("train compile: %w", err)
	}
	testBin, _, stats, err := r.compileWith(testProg, s, eprof, pprof)
	if err != nil {
		return nil, fmt.Errorf("test compile: %w", err)
	}
	if err := checkSameShape(trainBin, testBin); err != nil {
		return nil, fmt.Errorf("formed builds diverge: %w", err)
	}

	// Layout weights from the transformed training build.
	lep := profile.NewEdgeProfiler(trainBin)
	cg := profile.NewCallGraphProfiler()
	if _, err := interp.Run(trainBin, interp.Config{Observer: profile.Multi{lep, cg}}); err != nil {
		return nil, fmt.Errorf("layout training run: %w", err)
	}
	lprof := lep.Profile()
	layout.Assign(testBin, layout.Input{
		CallCounts: cg.Counts(),
		BlockFreq:  lprof.BlockFreq,
		EdgeFreq:   lprof.EdgeFreq,
	})

	// Measurement run. Decoding after layout.Assign means the engine
	// memoized on testBin (interp caches the decode on the program)
	// carries final addresses; any later run of this build reuses the
	// decode instead of re-walking the IR.
	eng := interp.EngineFor(testBin)
	cfg := interp.Config{}
	var cache *machine.ICache
	if r.opts.Cache != nil {
		cache = machine.NewICache(*r.opts.Cache)
		cfg.Fetch = cache
	}
	got, err := eng.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("measurement run: %w", err)
	}
	if err := sameBehaviour(ref, got); err != nil {
		return nil, fmt.Errorf("transformed program diverged: %w", err)
	}

	m := &Measurement{
		Scheme:      s,
		Cycles:      got.Cycles,
		IdealCycles: got.Cycles - got.FetchStall,
		FetchStall:  got.FetchStall,
		DynInstrs:   got.DynInstrs,
		DynBranches: got.DynBranches,
		CodeBytes:   testBin.CodeBytes(),
		SBEntries:   got.SBEntries,
		FormStats:   stats,
	}
	if got.SBEntries > 0 {
		m.AvgBlocksExecuted = float64(got.SBExecuted) / float64(got.SBEntries)
		m.AvgSBSize = float64(got.SBSize) / float64(got.SBEntries)
	}
	if cache != nil {
		m.CacheAccesses = cache.Accesses()
		m.CacheMisses = cache.Misses()
		m.MissRate = cache.MissRate()
	}
	return m, nil
}

// RunSuite measures every named benchmark (nil means the whole suite).
func (r *Runner) RunSuite(names []string, schemes []Scheme) ([]*Result, error) {
	return r.RunSuiteContext(context.Background(), names, schemes)
}

// RunSuiteContext is RunSuite with cancellation: benchmarks are
// dispatched across a bounded worker pool, the first error cancels the
// rest, and results come back in suite order regardless of which
// benchmark finished first.
func (r *Runner) RunSuiteContext(ctx context.Context, names []string, schemes []Scheme) ([]*Result, error) {
	if names == nil {
		names = bench.Names()
	}
	bs := make([]*bench.Benchmark, len(names))
	for i, n := range names {
		if bs[i] = bench.ByName(n); bs[i] == nil {
			return nil, fmt.Errorf("pipeline: unknown benchmark %q", n)
		}
	}
	out := make([]*Result, len(bs))
	err := forEachLimited(ctx, len(bs), r.opts.Parallelism, func(ctx context.Context, i int) error {
		res, err := r.RunBenchmarkContext(ctx, bs[i], schemes)
		if err != nil {
			return err
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// checkSameShape verifies two builds of a benchmark have identical CFG
// structure (procedures, block counts, terminator opcodes), the
// property profile transfer relies on.
func checkSameShape(a, b *ir.Program) error {
	if len(a.Procs) != len(b.Procs) {
		return fmt.Errorf("proc count %d vs %d", len(a.Procs), len(b.Procs))
	}
	for i := range a.Procs {
		pa, pb := a.Procs[i], b.Procs[i]
		if len(pa.Blocks) != len(pb.Blocks) {
			return fmt.Errorf("proc %s: block count %d vs %d", pa.Name, len(pa.Blocks), len(pb.Blocks))
		}
		for j := range pa.Blocks {
			ta := pa.Blocks[j].Terminator().Op
			tb := pb.Blocks[j].Terminator().Op
			if ta != tb {
				return fmt.Errorf("proc %s block b%d: terminator %v vs %v", pa.Name, j, ta, tb)
			}
		}
	}
	return nil
}

// sameBehaviour checks observable equivalence of two runs.
func sameBehaviour(a, b *interp.Result) error {
	if a.Ret != b.Ret {
		return fmt.Errorf("return value %d vs %d", a.Ret, b.Ret)
	}
	if len(a.Output) != len(b.Output) {
		return fmt.Errorf("output length %d vs %d", len(a.Output), len(b.Output))
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			return fmt.Errorf("output[%d] = %d vs %d", i, a.Output[i], b.Output[i])
		}
	}
	return nil
}
