// Multi-process differential test for sharded suite execution: the
// suite split across 1, 2, and 4 spawned worker processes sharing one
// artifact-store directory must merge to byte-identical reports
// against the serial in-memory runner, and the shards together must
// build each distinct artifact exactly once. The workers are real
// processes — this test binary re-execs itself (TestMain intercepts
// the child mode before the test framework starts), so the claim
// protocol runs across genuine process boundaries, under -race when
// the parent is.
package pipeline_test

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pathsched/internal/machine"
	"pathsched/internal/pipeline"
	"pathsched/internal/stats"
	"pathsched/internal/store"
)

const (
	shardChildEnv = "PATHSCHED_SHARD_CHILD" // "i/n" selects child mode
	shardNamesEnv = "PATHSCHED_SHARD_NAMES" // comma-separated suite list
	shardStoreEnv = "PATHSCHED_SHARD_STORE" // shared store directory
	shardOutEnv   = "PATHSCHED_SHARD_OUT"   // result envelope path
)

// shardEnvelope is what a worker process reports back: its shard's
// results in shard order, plus its cache counters.
type shardEnvelope struct {
	Results []*pipeline.Result
	Stats   pipeline.CacheStats
}

// TestMain turns the test binary into its own worker pool: when the
// child env var is set, run one shard and exit instead of running
// tests. testing.Testing() is true in the child too, so CheckAuto and
// ValidateAuto resolve exactly as in the parent's serial baseline and
// the two agree on compile keys.
func TestMain(m *testing.M) {
	if spec := os.Getenv(shardChildEnv); spec != "" {
		if err := runShardChild(spec); err != nil {
			fmt.Fprintln(os.Stderr, "shard child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runShardChild(spec string) error {
	var index, count int
	if _, err := fmt.Sscanf(spec, "%d/%d", &index, &count); err != nil {
		return fmt.Errorf("bad shard spec %q: %w", spec, err)
	}
	names, err := pipeline.ShardNames(strings.Split(os.Getenv(shardNamesEnv), ","), index, count)
	if err != nil {
		return err
	}
	st, err := store.Open(os.Getenv(shardStoreEnv), store.Options{})
	if err != nil {
		return err
	}
	cache := pipeline.NewDiskCache(st)
	c := machine.DefaultICache()
	r := pipeline.NewRunner(pipeline.Options{Cache: &c, Parallelism: 1, ProfileCache: cache})
	res, err := r.RunSuite(names, pipeline.AllSchemes())
	if err != nil {
		return err
	}
	data, err := json.Marshal(shardEnvelope{Results: res, Stats: cache.Stats()})
	if err != nil {
		return err
	}
	return os.WriteFile(os.Getenv(shardOutEnv), data, 0o644)
}

// shardTestNames spans enough benchmarks that even 4 shards are all
// non-empty, while staying in the suite's cheap microbenchmark tier.
var shardTestNames = []string{"alt", "wc", "ph", "corr", "com"}

// spawnShards runs count worker processes concurrently over one store
// directory and returns their envelopes, indexed by shard.
func spawnShards(t *testing.T, dir string, count int) []shardEnvelope {
	t.Helper()
	outs := make([]shardEnvelope, count)
	var wg sync.WaitGroup
	for i := 0; i < count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outFile := filepath.Join(t.TempDir(), "out.json")
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(),
				fmt.Sprintf("%s=%d/%d", shardChildEnv, i, count),
				shardNamesEnv+"="+strings.Join(shardTestNames, ","),
				shardStoreEnv+"="+dir,
				shardOutEnv+"="+outFile,
			)
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Errorf("shard %d/%d: %v\n%s", i, count, err, out)
				return
			}
			data, err := os.ReadFile(outFile)
			if err != nil {
				t.Errorf("shard %d/%d: %v", i, count, err)
				return
			}
			if err := json.Unmarshal(data, &outs[i]); err != nil {
				t.Errorf("shard %d/%d: %v", i, count, err)
			}
		}(i)
	}
	wg.Wait()
	return outs
}

// mergeShards interleaves per-shard results back into suite order,
// inverting ShardNames' round-robin split.
func mergeShards(t *testing.T, outs []shardEnvelope, total int) []*pipeline.Result {
	t.Helper()
	merged := make([]*pipeline.Result, total)
	for i := range merged {
		shard := outs[i%len(outs)]
		if j := i / len(outs); j < len(shard.Results) {
			merged[i] = shard.Results[j]
		}
	}
	for i, r := range merged {
		if r == nil {
			t.Fatalf("merge hole at suite position %d", i)
		}
		if r.Name != shardTestNames[i] {
			t.Fatalf("merge order: position %d is %q, want %q", i, r.Name, shardTestNames[i])
		}
	}
	return merged
}

func TestSpawnedShardsMatchSerialByteForByte(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	// Serial in-memory baseline, as the unsharded runner produces it.
	serialCache := pipeline.NewCache()
	c := machine.DefaultICache()
	r := pipeline.NewRunner(pipeline.Options{Cache: &c, Parallelism: 1, ProfileCache: serialCache})
	serialRes, err := r.RunSuite(shardTestNames, pipeline.AllSchemes())
	if err != nil {
		t.Fatal(err)
	}
	serialJSON, err := stats.JSON(serialRes)
	if err != nil {
		t.Fatal(err)
	}
	serialBuilds := serialCache.Stats().Compile.Builds
	serialLayoutBuilds := serialCache.Stats().Layout.Builds

	for _, count := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", count), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "store")
			outs := spawnShards(t, dir, count)
			if t.Failed() {
				t.FailNow()
			}
			merged := mergeShards(t, outs, len(shardTestNames))

			// Byte identity of the full merged report against serial.
			mergedJSON, err := stats.JSON(merged)
			if err != nil {
				t.Fatal(err)
			}
			if mergedJSON != serialJSON {
				t.Errorf("merged %d-shard JSON diverges from serial runner", count)
			}
			if got, want := renderAll(t, merged), renderAll(t, serialRes); got != want {
				t.Errorf("merged %d-shard report diverges from serial runner:\n--- serial ---\n%s\n--- merged ---\n%s", count, want, got)
			}

			// Exactly-once building across all worker processes: the
			// claim protocol dedups concurrent shards, so total builds
			// equal the serial runner's distinct-key builds.
			var builds, layoutBuilds int64
			for _, o := range outs {
				builds += o.Stats.Compile.Builds
				layoutBuilds += o.Stats.Layout.Builds
			}
			if builds != serialBuilds {
				t.Errorf("%d shards built %d compiles, serial runner built %d (want exactly-once)", count, builds, serialBuilds)
			}
			if layoutBuilds != serialLayoutBuilds {
				t.Errorf("%d shards built %d layout profiles, serial runner built %d", count, layoutBuilds, serialLayoutBuilds)
			}

			// Cross-process sharing: a second spawn over the now-warm
			// store must build nothing — every artifact comes off disk
			// — and still merge to the same bytes.
			warm := spawnShards(t, dir, count)
			if t.Failed() {
				t.FailNow()
			}
			warmJSON, err := stats.JSON(mergeShards(t, warm, len(shardTestNames)))
			if err != nil {
				t.Fatal(err)
			}
			if warmJSON != serialJSON {
				t.Errorf("disk-warm %d-shard JSON diverges from serial runner", count)
			}
			var warmBuilds, warmDiskHits int64
			for _, o := range warm {
				warmBuilds += o.Stats.Compile.Builds + o.Stats.Layout.Builds
				warmDiskHits += o.Stats.Compile.DiskHits + o.Stats.Layout.DiskHits
			}
			if warmBuilds != 0 {
				t.Errorf("disk-warm %d-shard spawn rebuilt %d artifacts", count, warmBuilds)
			}
			if warmDiskHits == 0 {
				t.Errorf("disk-warm %d-shard spawn reported no disk hits", count)
			}
		})
	}
}
