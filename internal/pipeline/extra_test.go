package pipeline

import (
	"strings"
	"testing"

	"pathsched/internal/bench"
	"pathsched/internal/core"
	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/machine"
	"pathsched/internal/sched"
)

func TestFormHookApplies(t *testing.T) {
	// Forbid all enlargement through the hook; formation stats must
	// show zero copies.
	r := NewRunner(Options{Form: func(c *core.Config) { c.MinExecFreq = 1 << 40 }})
	res, err := r.RunBenchmark(bench.ByName("alt"), []Scheme{SchemeP4})
	if err != nil {
		t.Fatal(err)
	}
	if res.ByScheme[SchemeP4].FormStats.EnlargeCopies != 0 {
		t.Fatal("Form hook did not reach the formation config")
	}
}

func TestSchedOptionsReachCompactor(t *testing.T) {
	on := NewRunner(Options{})
	off := NewRunner(Options{Sched: sched.Options{DisableRenaming: true}})
	rOn, err := on.RunBenchmark(bench.ByName("corr"), []Scheme{SchemeP4})
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := off.RunBenchmark(bench.ByName("corr"), []Scheme{SchemeP4})
	if err != nil {
		t.Fatal(err)
	}
	if rOff.ByScheme[SchemeP4].IdealCycles <= rOn.ByScheme[SchemeP4].IdealCycles {
		t.Fatalf("disabling renaming must cost cycles: %d vs %d",
			rOff.ByScheme[SchemeP4].IdealCycles, rOn.ByScheme[SchemeP4].IdealCycles)
	}
}

func TestRealisticMachineReachesSchedules(t *testing.T) {
	mc := machine.Default()
	mc.Realistic = true
	unit, err := NewRunner(Options{}).RunBenchmark(bench.ByName("eqn"), []Scheme{SchemeBB})
	if err != nil {
		t.Fatal(err)
	}
	real, err := NewRunner(Options{Machine: mc}).RunBenchmark(bench.ByName("eqn"), []Scheme{SchemeBB})
	if err != nil {
		t.Fatal(err)
	}
	if real.ByScheme[SchemeBB].IdealCycles <= unit.ByScheme[SchemeBB].IdealCycles {
		t.Fatalf("realistic latencies must lengthen schedules: %d vs %d",
			real.ByScheme[SchemeBB].IdealCycles, unit.ByScheme[SchemeBB].IdealCycles)
	}
}

func TestPipelineDeterministic(t *testing.T) {
	run := func() *Measurement {
		c := machine.DefaultICache()
		r := NewRunner(Options{Cache: &c})
		res, err := r.RunBenchmark(bench.ByName("wc"), []Scheme{SchemeP4})
		if err != nil {
			t.Fatal(err)
		}
		return res.ByScheme[SchemeP4]
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.DynInstrs != b.DynInstrs ||
		a.CacheMisses != b.CacheMisses || a.CodeBytes != b.CodeBytes {
		t.Fatalf("pipeline nondeterministic: %+v vs %+v", a, b)
	}
}

func TestCheckSameShapeDetectsDivergence(t *testing.T) {
	a := bench.ByName("alt").Build(bench.ByName("alt").Test)
	b := bench.ByName("alt").Build(bench.ByName("alt").Test)
	if err := checkSameShape(a, b); err != nil {
		t.Fatalf("identical builds flagged: %v", err)
	}
	// Perturb b's structure.
	p := b.Proc(0)
	blk := p.AddBlock(ir.NoBlock)
	blk.Instrs = []ir.Instr{ir.Ret(0)}
	if err := checkSameShape(a, b); err == nil {
		t.Fatal("block-count divergence not detected")
	} else if !strings.Contains(err.Error(), "block count") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSameBehaviourDetectsDivergence(t *testing.T) {
	r1, err := NewRunner(Options{}).RunBenchmark(bench.ByName("corr"), []Scheme{SchemeBB})
	if err != nil {
		t.Fatal(err)
	}
	_ = r1
	// sameBehaviour is exercised on every pipeline run; check its
	// negative cases directly.
	ra := &fakeRun{ret: 1, out: []int64{1, 2}}
	rb := &fakeRun{ret: 2, out: []int64{1, 2}}
	if err := sameBehaviour(ra.res(), rb.res()); err == nil {
		t.Fatal("ret divergence not detected")
	}
	rb = &fakeRun{ret: 1, out: []int64{1}}
	if err := sameBehaviour(ra.res(), rb.res()); err == nil {
		t.Fatal("output length divergence not detected")
	}
	rb = &fakeRun{ret: 1, out: []int64{1, 3}}
	if err := sameBehaviour(ra.res(), rb.res()); err == nil {
		t.Fatal("output value divergence not detected")
	}
}

type fakeRun struct {
	ret int64
	out []int64
}

func (f *fakeRun) res() *interp.Result { return &interp.Result{Ret: f.ret, Output: f.out} }

// TestFullSuiteAllSchemesCorrect is the heavyweight integration test:
// every benchmark under every scheme must behave identically to the
// unscheduled original (the pipeline enforces this internally; here we
// simply drive the whole matrix). Skipped with -short.
func TestFullSuiteAllSchemesCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is slow")
	}
	c := machine.DefaultICache()
	r := NewRunner(Options{Cache: &c})
	results, err := r.RunSuite(nil, AllSchemes())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(bench.Names()) {
		t.Fatalf("got %d results, want %d", len(results), len(bench.Names()))
	}
	for _, res := range results {
		bb := res.ByScheme[SchemeBB]
		for s, m := range res.ByScheme {
			if m.Cycles <= 0 || m.DynInstrs <= 0 {
				t.Errorf("%s/%s: empty measurement", res.Name, s)
			}
			if s != SchemeBB && m.IdealCycles >= bb.IdealCycles {
				// Superblock scheduling should never lose to BB on
				// ideal cycles by construction of the suite; flag it
				// as informational rather than fatal.
				t.Logf("note: %s/%s ideal %d >= BB %d", res.Name, s, m.IdealCycles, bb.IdealCycles)
			}
		}
	}
}
