package pipeline

import (
	"testing"

	"pathsched/internal/bench"
	"pathsched/internal/core"
	"pathsched/internal/ir"
	"pathsched/internal/sched"
)

// The compile cache must not serve a list-scheduled build to an
// exact-mode run (or vice versa), and must serve identical exact
// configs from one entry: the key gains a normalized exact dimension.
func TestExactCompileKeyDimension(t *testing.T) {
	var progFP, trainFP ir.Digest
	progFP[0], trainFP[0] = 1, 2
	cfg := core.DefaultConfig()
	key := func(ec sched.ExactConfig) ir.Digest {
		r := NewRunner(Options{Sched: sched.Options{Exact: ec}})
		return r.compileKey(progFP, trainFP, cfg, true)
	}
	off := key(sched.ExactConfig{})
	on := key(sched.ExactConfig{Enabled: true})
	if off == on {
		t.Fatal("exact on/off compiles share a cache key")
	}
	if key(sched.ExactConfig{Enabled: true, NodeBudget: 16}) == on {
		t.Fatal("node budgets 16 and default share a cache key")
	}
	if key(sched.ExactConfig{Enabled: true, SearchBudget: 5}) == on {
		t.Fatal("search budgets 5 and default share a cache key")
	}
	// Normalization: a disabled config's budgets are irrelevant, and an
	// explicit default budget equals the implied one.
	if key(sched.ExactConfig{NodeBudget: 99, SearchBudget: 77}) != off {
		t.Fatal("disabled exact configs with junk budgets miss the cache")
	}
	if key(sched.ExactConfig{Enabled: true, NodeBudget: 32, SearchBudget: 200000}) != on {
		t.Fatal("explicit default budgets miss the default-budget cache entry")
	}
}

// An exact-mode run reports gap stats on every scheduled scheme's
// measurement — including when the compile is a cache hit — and the
// counters are internally consistent.
func TestExactMeasurementGap(t *testing.T) {
	ec := sched.ExactConfig{Enabled: true, NodeBudget: 16, SearchBudget: 50000}
	cache := NewCache()
	run := func() *Result {
		r := NewRunner(Options{
			ProfileCache: cache,
			Sched:        sched.Options{Exact: ec},
		})
		res, err := r.RunBenchmark(bench.ByName("wc"), []Scheme{SchemeM4, SchemeP4})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	for _, s := range []Scheme{SchemeM4, SchemeP4} {
		g := first.ByScheme[s].Gap
		if g == nil {
			t.Fatalf("%s: no gap stats on exact-mode measurement", s)
		}
		if g.Blocks == 0 || g.Proved == 0 {
			t.Fatalf("%s: empty gap stats %+v", s, g)
		}
		if g.Blocks != g.Proved+g.Bounded || g.BoundedSearch > g.Bounded {
			t.Fatalf("%s: inconsistent gap stats %+v", s, g)
		}
		if g.ExactSpan > g.ListSpan {
			t.Fatalf("%s: exact span sum %d exceeds list %d", s, g.ExactSpan, g.ListSpan)
		}
	}
	second := run() // same cache: compiles are hits now
	cs := cache.Stats()
	if cs.Compile.MemHits == 0 {
		t.Fatalf("second run missed the compile cache: %+v", cs)
	}
	for _, s := range []Scheme{SchemeM4, SchemeP4} {
		fg, sg := first.ByScheme[s].Gap, second.ByScheme[s].Gap
		if sg == nil {
			t.Fatalf("%s: cache-hit measurement lost its gap stats", s)
		}
		if *fg != *sg {
			t.Fatalf("%s: gap stats differ across cache hit: %+v vs %+v", s, fg, sg)
		}
	}
	// List-scheduled runs must stay gap-free.
	plain := NewRunner(Options{})
	res, err := plain.RunBenchmark(bench.ByName("wc"), []Scheme{SchemeM4})
	if err != nil {
		t.Fatal(err)
	}
	if res.ByScheme[SchemeM4].Gap != nil {
		t.Fatal("list-scheduled measurement carries gap stats")
	}
}
