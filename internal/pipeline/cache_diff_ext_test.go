// Differential test pinning the content-addressed cache: a cached
// RunSuite — serial, parallel, or sharing one cache across runners —
// must render byte-identical reports to the cache-off serial pipeline.
// Run under -race, this is also the concurrency gate for the cache's
// single-flight path and for the immutable masters and frozen layout
// profiles it shares between scheme workers.
package pipeline_test

import (
	"runtime"
	"testing"

	"pathsched/internal/machine"
	"pathsched/internal/pipeline"
)

func TestCachedSuiteMatchesUncachedByteForByte(t *testing.T) {
	// Includes microbenchmarks whose training and test inputs build
	// identical programs (alt, ph, corr) so the compile cache's
	// train==test collapse is exercised, plus one (wc) where the two
	// builds differ.
	names := []string{"alt", "ph", "corr", "wc"}
	run := func(opts pipeline.Options) (string, *pipeline.Runner) {
		c := machine.DefaultICache()
		opts.Cache = &c
		r := pipeline.NewRunner(opts)
		res, err := r.RunSuite(names, pipeline.AllSchemes())
		if err != nil {
			t.Fatalf("RunSuite(%+v): %v", opts, err)
		}
		return renderAll(t, res), r
	}

	baseline, offRunner := run(pipeline.Options{Parallelism: 1, DisableProfileCache: true})
	if _, ok := offRunner.CacheStats(); ok {
		t.Fatal("DisableProfileCache runner still reports cache stats")
	}

	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 4 // exercise real interleaving even on a single-core runner
	}
	for _, par := range []int{1, 2, workers} {
		got, r := run(pipeline.Options{Parallelism: par})
		if got != baseline {
			t.Errorf("cache-on Parallelism=%d diverges from cache-off serial baseline:\n--- cache-off ---\n%s\n--- cache-on ---\n%s",
				par, baseline, got)
		}
		s, ok := r.CacheStats()
		if !ok {
			t.Fatalf("Parallelism=%d: cache enabled but no stats", par)
		}
		if s.Compile.Builds == 0 || s.Layout.Builds == 0 {
			t.Errorf("Parallelism=%d: cache saw no work (stats %s)", par, s)
		}
		if s.Compile.MemHits == 0 {
			t.Errorf("Parallelism=%d: expected train==test compile hits on alt/ph/corr (stats %s)", par, s)
		}
	}
}

// TestSharedCacheAcrossRunnersIsWarm is the ablation-sweep regime: a
// second runner handed the first runner's cache must produce the same
// bytes while serving every compile and layout-profiling run from
// cache.
func TestSharedCacheAcrossRunnersIsWarm(t *testing.T) {
	names := []string{"alt", "wc"}
	shared := pipeline.NewCache()
	run := func() string {
		c := machine.DefaultICache()
		r := pipeline.NewRunner(pipeline.Options{Cache: &c, Parallelism: 1, ProfileCache: shared})
		res, err := r.RunSuite(names, pipeline.AllSchemes())
		if err != nil {
			t.Fatal(err)
		}
		return renderAll(t, res)
	}
	first := run()
	before := shared.Stats()
	second := run()
	after := shared.Stats()
	if first != second {
		t.Fatalf("warm re-run diverges from cold run:\n--- cold ---\n%s\n--- warm ---\n%s", first, second)
	}
	if after.Compile.Builds != before.Compile.Builds || after.Layout.Builds != before.Layout.Builds {
		t.Errorf("warm re-run recompiled: builds went %d/%d -> %d/%d",
			before.Compile.Builds, before.Layout.Builds, after.Compile.Builds, after.Layout.Builds)
	}
	wantHits := before.Compile.Builds + before.Compile.MemHits + before.Compile.Dedups
	if gotHits := after.Compile.MemHits - before.Compile.MemHits; gotHits != wantHits {
		t.Errorf("warm re-run compile mem hits = %d, want %d (every lookup a hit)", gotHits, wantHits)
	}
}
