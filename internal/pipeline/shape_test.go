package pipeline

import (
	"strings"
	"testing"

	"pathsched/internal/ir"
)

// shapeProgram builds a two-block program whose entry ends in a switch
// with the given number of targets (all to the exit block).
func shapeProgram(switchTargets int) *ir.Program {
	bd := ir.NewBuilder("shape", 16)
	p := bd.Proc("main")
	bs := p.NewBlocks(2)
	targets := make([]ir.BlockID, switchTargets)
	for i := range targets {
		targets[i] = bs[1].ID()
	}
	bs[0].Add(ir.MovI(1, 0))
	bs[0].Switch(1, targets...)
	bs[1].Ret(1)
	return bd.Program()
}

func TestCheckSameShapeAccepts(t *testing.T) {
	if err := checkSameShape(shapeProgram(3), shapeProgram(3)); err != nil {
		t.Fatalf("identical shapes rejected: %v", err)
	}
}

// Regression test: two builds can agree on every terminator opcode yet
// disagree on successor counts (a switch that lost a duplicated arm),
// which would let runScheme pair a training profile with a test CFG it
// doesn't describe. checkSameShape must compare Targets lengths too.
func TestCheckSameShapeRejectsSuccessorCountMismatch(t *testing.T) {
	err := checkSameShape(shapeProgram(3), shapeProgram(2))
	if err == nil {
		t.Fatal("successor-count mismatch not detected")
	}
	if !strings.Contains(err.Error(), "successor count 3 vs 2") {
		t.Fatalf("err = %v, want a successor-count message", err)
	}
}

func TestCheckSameShapeRejectsTerminatorMismatch(t *testing.T) {
	a := shapeProgram(2)
	b := shapeProgram(2)
	term := b.Procs[0].Blocks[0].Terminator()
	term.Op = ir.OpBr
	if err := checkSameShape(a, b); err == nil {
		t.Fatal("terminator opcode mismatch not detected")
	}
}
