// Package profile implements the two profile kinds the paper compares:
// point (edge) profiles and general path profiles.
//
// Edge profiles independently count executed CFG edges and block
// entries, which is exactly the information the classical
// mutual-most-likely trace picker consumes. Path profiles record the
// frequency of every executed bounded-length block sequence: the
// profiler observes a sliding window over the dynamic block trace,
// bounded to at most Depth conditional (or multiway) branches, and
// counts each distinct window. General paths may cross loop back edges,
// which is what lets path-based formation see iteration counts and
// cross-iteration branch correlation (paper §2.2).
//
// The online data structure follows §3.1: path nodes are created
// lazily, and each node keeps successor pointers, so steady-state
// profiling does O(1) amortized work per executed edge — the same
// asymptotic overhead as edge profiling. Exact frequencies for shorter
// sequences are recovered offline by summing each recorded window into
// all of its suffixes.
package profile

import (
	"fmt"
	"sort"

	"pathsched/internal/ir"
)

// DefaultDepth is the paper's path length limit: up to 15 conditional
// or multiway branches per path.
const DefaultDepth = 15

// DefaultMaxBlocks caps the block length of a window so that long
// branch-free chains cannot grow windows without bound.
const DefaultMaxBlocks = 64

// seqKey encodes a block sequence as a map key.
func seqKey(seq []ir.BlockID) string {
	buf := make([]byte, 4*len(seq))
	for i, b := range seq {
		v := uint32(b)
		buf[4*i] = byte(v)
		buf[4*i+1] = byte(v >> 8)
		buf[4*i+2] = byte(v >> 16)
		buf[4*i+3] = byte(v >> 24)
	}
	return string(buf)
}

// decodeSeqKey inverts seqKey.
func decodeSeqKey(key string) []ir.BlockID {
	seq := make([]ir.BlockID, len(key)/4)
	for i := range seq {
		v := uint32(key[4*i]) | uint32(key[4*i+1])<<8 |
			uint32(key[4*i+2])<<16 | uint32(key[4*i+3])<<24
		seq[i] = ir.BlockID(v)
	}
	return seq
}

// condBrMap precomputes, for one procedure, which blocks terminate in a
// conditional or multiway branch (the blocks that consume path depth).
func condBrMap(p *ir.Proc) []bool {
	m := make([]bool, len(p.Blocks))
	for i, b := range p.Blocks {
		m[i] = b.Terminator().Op.IsCondBranch()
	}
	return m
}

// FmtSeq renders a block sequence for diagnostics, e.g. "b0→b2→b1".
func FmtSeq(seq []ir.BlockID) string {
	s := ""
	for i, b := range seq {
		if i > 0 {
			s += "→"
		}
		s += fmt.Sprintf("b%d", b)
	}
	return s
}

// argmax returns the entry with the largest count, breaking ties toward
// the smallest block id so results never depend on map iteration order.
func argmax(m map[ir.BlockID]int64) (ir.BlockID, int64) {
	best, bestN := ir.NoBlock, int64(0)
	keys := make([]ir.BlockID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if n := m[k]; n > bestN {
			best, bestN = k, n
		}
	}
	return best, bestN
}
