package profile

import (
	"testing"

	"pathsched/internal/interp"
	"pathsched/internal/ir"
)

// loopProgF builds entry → head; head → body | exit; body → head, the
// canonical loop for contrasting general and forward paths.
func loopProgF(n int64) *ir.Program {
	bd := ir.NewBuilder("loop", 8)
	pb := bd.Proc("main")
	entry, head, body, exit := pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	entry.Add(ir.MovI(1, 0))
	entry.Jmp(head.ID())
	head.Add(ir.CmpLTI(2, 1, n))
	head.Br(2, body.ID(), exit.ID())
	body.Add(ir.AddI(1, 1, 1))
	body.Jmp(head.ID())
	exit.Ret(1)
	return bd.Finish()
}

func TestForwardPathsTruncateAtBackEdges(t *testing.T) {
	prog := loopProgF(50)
	gp := NewPathProfiler(prog, PathConfig{})
	fp := NewForwardPathProfiler(prog, PathConfig{})
	if _, err := interp.Run(prog, interp.Config{Observer: Multi{gp, fp}}); err != nil {
		t.Fatal(err)
	}
	g, f := gp.Profile(), fp.Profile()

	// Both agree on point statistics and forward-only sequences.
	for b := ir.BlockID(0); b < 4; b++ {
		if g.BlockFreq(0, b) != f.BlockFreq(0, b) {
			t.Fatalf("block b%d: general %d vs forward %d", b, g.BlockFreq(0, b), f.BlockFreq(0, b))
		}
	}
	hb := []ir.BlockID{1, 2} // head, body: no back edge inside
	if g.Freq(0, hb) != f.Freq(0, hb) {
		t.Fatalf("within-iteration path differs: %d vs %d", g.Freq(0, hb), f.Freq(0, hb))
	}

	// The defining difference (§2.2): a two-iteration sequence crosses
	// the body→head back edge. General paths count it; forward paths
	// cannot see it at all.
	twoIter := []ir.BlockID{1, 2, 1, 2}
	if got := g.Freq(0, twoIter); got != 49 {
		t.Fatalf("general two-iteration freq = %d, want 49", got)
	}
	if got := f.Freq(0, twoIter); got != 0 {
		t.Fatalf("forward two-iteration freq = %d, want 0", got)
	}
	// Even the bare back edge is invisible to forward paths.
	if got := f.Freq(0, []ir.BlockID{2, 1}); got != 0 {
		t.Fatalf("forward back-edge freq = %d, want 0", got)
	}
	if got := g.Freq(0, []ir.BlockID{2, 1}); got != 50 {
		t.Fatalf("general back-edge freq = %d, want 50", got)
	}
}

func TestForwardPathsStillSeeAcyclicCorrelation(t *testing.T) {
	// Correlation within one loop body (no back edge between the two
	// branches) is visible to both profile kinds.
	bd := ir.NewBuilder("corr", 8)
	pb := bd.Proc("main")
	entry, head, first, t1, f1, mid, t2, f2, latch, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(),
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	const i, c, a = 1, 2, 3
	entry.Add(ir.MovI(i, 0))
	entry.Jmp(head.ID())
	head.Add(ir.CmpLTI(c, i, 60))
	head.Br(c, first.ID(), exit.ID())
	first.Add(ir.AndI(a, i, 1), ir.CmpEQI(c, a, 0))
	first.Br(c, t1.ID(), f1.ID())
	t1.Jmp(mid.ID())
	f1.Jmp(mid.ID())
	mid.Add(ir.CmpEQI(c, a, 0))
	mid.Br(c, t2.ID(), f2.ID())
	t2.Jmp(latch.ID())
	f2.Jmp(latch.ID())
	latch.Add(ir.AddI(i, i, 1))
	latch.Jmp(head.ID())
	exit.Ret(i)
	prog := bd.Finish()

	fp := NewForwardPathProfiler(prog, PathConfig{})
	if _, err := interp.Run(prog, interp.Config{Observer: fp}); err != nil {
		t.Fatal(err)
	}
	f := fp.Profile()
	// t1 (block 3) → mid (5) → t2 (6): perfectly correlated, and the
	// whole sequence is forward, so the forward profile captures it.
	if got := f.Freq(0, []ir.BlockID{3, 5, 6}); got != 30 {
		t.Fatalf("correlated path freq = %d, want 30", got)
	}
	if got := f.Freq(0, []ir.BlockID{3, 5, 7}); got != 0 {
		t.Fatalf("anti-correlated path freq = %d, want 0", got)
	}
}

func TestForwardProfilerWorksWithFormationQueries(t *testing.T) {
	// TrimToDepth and MostLikelyPathSuccessor behave identically; only
	// the recorded windows differ. A forward profile can thus drive the
	// path-based selector (an experiment the paper's framework allows).
	prog := loopProgF(30)
	fp := NewForwardPathProfiler(prog, PathConfig{})
	if _, err := interp.Run(prog, interp.Config{Observer: fp}); err != nil {
		t.Fatal(err)
	}
	f := fp.Profile()
	s, n := f.MostLikelyPathSuccessor(0, []ir.BlockID{1})
	if s != 2 || n != 30 {
		t.Fatalf("MLPS(head) = (b%d,%d), want (b2,30)", s, n)
	}
	// But after body, the forward profile has no successor: the only
	// dynamic successor is via the back edge.
	if s, n := f.MostLikelyPathSuccessor(0, []ir.BlockID{1, 2}); s != ir.NoBlock || n != 0 {
		t.Fatalf("MLPS(head,body) = (b%d,%d), want none", s, n)
	}
}
