package profile

import (
	"pathsched/internal/interp"
	"pathsched/internal/ir"
)

// Multi fans interpreter events out to several observers, so one
// training run can feed the edge and path profilers simultaneously —
// keeping both formation methods honest about using identical training
// behaviour.
type Multi []interp.Observer

// EnterProc implements interp.Observer.
func (m Multi) EnterProc(p ir.ProcID, entry ir.BlockID) {
	for _, o := range m {
		o.EnterProc(p, entry)
	}
}

// ExitProc implements interp.Observer.
func (m Multi) ExitProc(p ir.ProcID) {
	for _, o := range m {
		o.ExitProc(p)
	}
}

// Edge implements interp.Observer.
func (m Multi) Edge(p ir.ProcID, from, to ir.BlockID) {
	for _, o := range m {
		o.Edge(p, from, to)
	}
}

// Block implements interp.Observer.
func (m Multi) Block(p ir.ProcID, b ir.BlockID) {
	for _, o := range m {
		o.Block(p, b)
	}
}

var _ interp.Observer = Multi(nil)
