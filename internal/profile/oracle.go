package profile

import "pathsched/internal/ir"

// OraclePathProfiler is a deliberately simple reference implementation
// of general-path profiling: it keeps an explicit ring of recent blocks
// per activation and, at every step, increments the count of *every*
// suffix of the current window directly. It does O(window length) work
// per executed block, so it is only suitable for tests — where it
// serves as the ground truth the efficient PathProfiler is checked
// against.
type OraclePathProfiler struct {
	cfg   PathConfig
	procs []*oracleProc
	stack []*oracleFrame
}

type oracleProc struct {
	condBr []bool
	freq   map[string]int64
}

type oracleFrame struct {
	proc     ir.ProcID
	window   []ir.BlockID
	branches int
}

// NewOraclePathProfiler returns the reference profiler for prog.
func NewOraclePathProfiler(prog *ir.Program, cfg PathConfig) *OraclePathProfiler {
	cfg = cfg.withDefaults()
	op := &OraclePathProfiler{cfg: cfg, procs: make([]*oracleProc, len(prog.Procs))}
	for i, p := range prog.Procs {
		op.procs[i] = &oracleProc{condBr: condBrMap(p), freq: map[string]int64{}}
	}
	return op
}

// EnterProc implements interp.Observer.
func (op *OraclePathProfiler) EnterProc(p ir.ProcID, entry ir.BlockID) {
	op.stack = append(op.stack, &oracleFrame{proc: p})
}

// ExitProc implements interp.Observer.
func (op *OraclePathProfiler) ExitProc(p ir.ProcID) {
	if n := len(op.stack); n > 0 {
		op.stack = op.stack[:n-1]
	}
}

// Edge implements interp.Observer.
func (op *OraclePathProfiler) Edge(p ir.ProcID, from, to ir.BlockID) {}

// Block implements interp.Observer.
func (op *OraclePathProfiler) Block(p ir.ProcID, b ir.BlockID) {
	fr := op.stack[len(op.stack)-1]
	st := op.procs[p]
	fr.window = append(fr.window, b)
	if st.condBr[b] {
		fr.branches++
	}
	for fr.branches > op.cfg.Depth || len(fr.window) > op.cfg.MaxBlocks {
		if st.condBr[fr.window[0]] {
			fr.branches--
		}
		fr.window = fr.window[1:]
	}
	// Count every suffix of the current window: by definition, f(q) is
	// the number of trace positions whose last |q| blocks equal q.
	for s := 0; s < len(fr.window); s++ {
		st.freq[seqKey(fr.window[s:])]++
	}
}

// Freq returns the exact dynamic occurrence count of seq in p.
func (op *OraclePathProfiler) Freq(p ir.ProcID, seq []ir.BlockID) int64 {
	return op.procs[p].freq[seqKey(seq)]
}
