package profile

import (
	"pathsched/internal/ir"
)

// Forward-path profiling (Ball & Larus [2], Bala [1]) restricts paths
// so they never contain a loop back edge: the window resets whenever
// one is crossed. The paper (§2.2) chooses *general* paths instead
// precisely because forward paths cannot see loop iteration counts or
// cross-iteration branch correlation; this implementation exists to
// make that comparison concrete (see the package tests) and as a
// drop-in for experiments with forward-path-based formation.
//
// The implementation reuses the general profiler's interned automaton;
// the only difference is the reset rule, driven by dominator-derived
// back edges of each procedure's CFG.

// NewForwardPathProfiler returns a profiler identical to
// NewPathProfiler except that windows are truncated at loop back
// edges.
func NewForwardPathProfiler(prog *ir.Program, cfg PathConfig) *PathProfiler {
	pp := NewPathProfiler(prog, cfg)
	pp.forward = true
	pp.backEdges = make([]map[[2]ir.BlockID]bool, len(prog.Procs))
	for i, p := range prog.Procs {
		g := ir.NewCFG(p)
		m := map[[2]ir.BlockID]bool{}
		for _, b := range p.Blocks {
			for _, s := range b.Succs() {
				if g.IsBackEdge(b.ID, s) {
					m[[2]ir.BlockID{b.ID, s}] = true
				}
			}
		}
		pp.backEdges[i] = m
	}
	return pp
}
