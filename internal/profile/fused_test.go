package profile

import (
	"reflect"
	"testing"

	"pathsched/internal/interp"
	"pathsched/internal/ir"
	"pathsched/internal/ir/irtest"
)

// Differential gates for the fast profiling paths: a batched-observer
// path profile and a counter-fused edge/call profile must be
// byte-identical (via the text serialization) to what the legacy
// per-event observers gather on the same run. Run under -race in CI,
// these also shake out unsynchronized state in the batch seam.

// loopCallProg builds an executable program with a counted loop, a
// conditional, and a call into a leaf, so one run exercises edges,
// multi-destination branches, and cross-procedure batch attribution.
func loopCallProg(n int64) *ir.Program {
	bd := ir.NewBuilder("loopcall", 16)
	main := bd.Proc("main")
	leaf := bd.Proc("leaf")

	lb := leaf.NewBlock()
	lb.Add(ir.AddI(0, ir.RegArg0, 2))
	lb.Ret(0)

	entry, head, body, odd, latch, exit := main.NewBlock(), main.NewBlock(),
		main.NewBlock(), main.NewBlock(), main.NewBlock(), main.NewBlock()
	const i, sum, c, t = 1, 2, 3, 4
	entry.Add(ir.MovI(i, 0), ir.MovI(sum, 0))
	entry.Jmp(head.ID())
	head.Add(ir.CmpLTI(c, i, n))
	head.Br(c, body.ID(), exit.ID())
	body.Add(ir.AndI(t, i, 1))
	body.Br(t, odd.ID(), latch.ID())
	odd.Add(ir.Call(t, leaf.ID(), latch.ID(), i))
	latch.Add(ir.Add(sum, sum, i), ir.AddI(i, i, 1))
	latch.Jmp(head.ID())
	exit.Add(ir.Emit(sum))
	exit.Ret(sum)
	bd.SetMain(main.ID())
	return bd.Finish()
}

// recurseProg builds a self-recursive program, so batched records of
// nested activations interleave with Begin/End flush boundaries.
func recurseProg(depth int64) *ir.Program {
	bd := ir.NewBuilder("recurse", 8)
	main := bd.Proc("main")
	rec := bd.Proc("rec")

	check, base, down := rec.NewBlock(), rec.NewBlock(), rec.NewBlock()
	const arg, c, r = ir.RegArg0, 1, 2
	check.Add(ir.CmpLTI(c, arg, 1))
	check.Br(c, base.ID(), down.ID())
	base.Add(ir.MovI(r, 0))
	base.Ret(r)
	down.Add(ir.AddI(r, arg, -1), ir.Call(r, rec.ID(), ir.NoBlock, r), ir.AddI(r, r, 1))
	down.Ret(r)

	mb := main.NewBlock()
	mb.Add(ir.MovI(1, depth), ir.Call(2, rec.ID(), ir.NoBlock, 1), ir.Emit(2))
	mb.Ret(2)
	bd.SetMain(main.ID())
	return bd.Finish()
}

// wideProg pushes scratch registers past the decoded engine's frame so
// Train must take the legacy fallback.
func wideProg() *ir.Program {
	bd := ir.NewBuilder("wideprof", 8)
	pb := bd.Proc("main")
	b := pb.NewBlock()
	const r = ir.Reg(300)
	b.Add(ir.MovI(r, 21), ir.AddI(r+1, r, 21), ir.Emit(r+1))
	b.Ret(r + 1)
	return bd.Finish()
}

// diffTrain pins every fast path against the legacy observers on one
// program and config: batched path profiles, counter-fused edge and
// call profiles, and the Train entry point itself.
func diffTrain(t *testing.T, name string, prog *ir.Program, cfg PathConfig) {
	t.Helper()

	lep := NewEdgeProfiler(prog)
	lpp := NewPathProfiler(prog, cfg)
	lcg := NewCallGraphProfiler()
	if _, err := interp.Run(prog, interp.Config{Observer: Multi{lep, lpp, lcg}}); err != nil {
		t.Fatalf("%s: legacy run: %v", name, err)
	}

	eng := interp.EngineFor(prog)
	if eng.Fallback() {
		t.Fatalf("%s: expected a decodable program", name)
	}
	fpp := NewPathProfiler(prog, cfg)
	_, ec, err := eng.RunCounted(interp.Config{Batch: fpp})
	if err != nil {
		t.Fatalf("%s: counted run: %v", name, err)
	}

	if got, want := fpp.WriteText(), lpp.WriteText(); got != want {
		t.Fatalf("%s: batched path profile differs from legacy\nbatched:\n%s\nlegacy:\n%s",
			name, got, want)
	}
	if batches, recs := fpp.BatchStats(); batches == 0 || recs == 0 {
		t.Fatalf("%s: batched run delivered no batches (batches=%d records=%d)", name, batches, recs)
	}
	fep := EdgeProfilerFromCounts(prog, ec)
	if got, want := fep.Profile().WriteText(), lep.Profile().WriteText(); got != want {
		t.Fatalf("%s: fused edge profile differs from legacy\nfused:\n%s\nlegacy:\n%s",
			name, got, want)
	}
	if got, want := CallCountsFromCounts(ec), lcg.Counts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: fused call counts = %v, legacy = %v", name, got, want)
	}

	tp, err := Train(prog, cfg)
	if err != nil {
		t.Fatalf("%s: Train: %v", name, err)
	}
	if !tp.Stats.Fused || !tp.Stats.Batched {
		t.Fatalf("%s: Train stats = %+v, want fused+batched", name, tp.Stats)
	}
	if got, want := tp.Edge.WriteText(), lep.Profile().WriteText(); got != want {
		t.Fatalf("%s: Train edge profile differs from legacy", name)
	}
	lpf := lpp.Profile()
	for p := 0; p < tp.Path.NumProcs(); p++ {
		pid := ir.ProcID(p)
		if !reflect.DeepEqual(tp.Path.procs[p].freq, lpf.procs[p].freq) {
			t.Fatalf("%s: proc %d: Train path index differs from legacy", name, p)
		}
		gw, gd := tp.Path.Windows(pid)
		ww, wd := lpf.Windows(pid)
		if gw != ww || gd != wd {
			t.Fatalf("%s: proc %d: windows (%d,%d) != legacy (%d,%d)", name, p, gw, gd, ww, wd)
		}
	}
	if !reflect.DeepEqual(tp.Calls, lcg.Counts()) {
		t.Fatalf("%s: Train calls = %v, legacy = %v", name, tp.Calls, lcg.Counts())
	}
}

func TestFastTrainMatchesLegacyHandCases(t *testing.T) {
	for _, tc := range []struct {
		name string
		prog *ir.Program
		cfg  PathConfig
	}{
		{"loopCall", loopCallProg(40), PathConfig{}},
		{"loopCallShallow", loopCallProg(40), PathConfig{Depth: 2}},
		{"loopCallShortWindows", loopCallProg(25), PathConfig{MaxBlocks: 3}},
		{"recurse", recurseProg(12), PathConfig{}},
		{"recurseCrossAct", recurseProg(12), PathConfig{CrossActivation: true}},
	} {
		diffTrain(t, tc.name, tc.prog, tc.cfg)
	}
}

func TestFastTrainMatchesLegacyRandomPrograms(t *testing.T) {
	n := int64(60)
	if testing.Short() {
		n = 15
	}
	for seed := int64(1); seed <= n; seed++ {
		prog := irtest.RandExecProg(seed, int(seed%17)+4)
		diffTrain(t, prog.Name, prog, PathConfig{})
	}
}

func TestPointProfilesMatchesLegacy(t *testing.T) {
	progs := []*ir.Program{loopCallProg(40), recurseProg(12)}
	for seed := int64(1); seed <= 20; seed++ {
		progs = append(progs, irtest.RandExecProg(seed, int(seed%11)+4))
	}
	for _, prog := range progs {
		lep := NewEdgeProfiler(prog)
		lcg := NewCallGraphProfiler()
		if _, err := interp.Run(prog, interp.Config{Observer: Multi{lep, lcg}}); err != nil {
			t.Fatalf("%s: legacy run: %v", prog.Name, err)
		}
		ep, calls, err := PointProfiles(prog)
		if err != nil {
			t.Fatalf("%s: PointProfiles: %v", prog.Name, err)
		}
		if got, want := ep.WriteText(), lep.Profile().WriteText(); got != want {
			t.Fatalf("%s: fused point profile differs from legacy\nfused:\n%s\nlegacy:\n%s",
				prog.Name, got, want)
		}
		if !reflect.DeepEqual(calls, lcg.Counts()) {
			t.Fatalf("%s: fused calls = %v, legacy = %v", prog.Name, calls, lcg.Counts())
		}
	}
}

// TestTrainFallbackWide pins the wide-register path: Train must fall
// back to the legacy per-event observers and report no fast-path modes.
func TestTrainFallbackWide(t *testing.T) {
	prog := wideProg()
	if !interp.EngineFor(prog).Fallback() {
		t.Fatal("wideProg should exceed the decoded engine's register frame")
	}
	lep := NewEdgeProfiler(prog)
	lpp := NewPathProfiler(prog, PathConfig{})
	lcg := NewCallGraphProfiler()
	if _, err := interp.Run(prog, interp.Config{Observer: Multi{lep, lpp, lcg}}); err != nil {
		t.Fatal(err)
	}
	tp, err := Train(prog, PathConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tp.Stats.Fused || tp.Stats.Batched {
		t.Fatalf("fallback Train stats = %+v, want legacy modes", tp.Stats)
	}
	if got, want := tp.Edge.WriteText(), lep.Profile().WriteText(); got != want {
		t.Fatalf("fallback edge profile differs from legacy")
	}
	if !reflect.DeepEqual(tp.Calls, lcg.Counts()) {
		t.Fatalf("fallback calls = %v, legacy = %v", tp.Calls, lcg.Counts())
	}
}
