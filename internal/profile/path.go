package profile

import (
	"sort"

	"pathsched/internal/ir"
)

// PathConfig parameterizes general-path profiling.
type PathConfig struct {
	// Depth is the maximum number of conditional or multiway branches
	// a path window may contain (paper: 15). Zero means DefaultDepth.
	Depth int
	// MaxBlocks caps a window's block length. Zero means
	// DefaultMaxBlocks.
	MaxBlocks int
	// CrossActivation keeps one window per *procedure* rather than per
	// activation: a recursive call interleaves its blocks into the
	// caller's window instead of starting fresh. This approximates an
	// instrumentation scheme with global per-procedure analysis state
	// (plausibly the paper's, which observes a flat edge stream); the
	// default per-activation windows are cleaner but see only very
	// short histories in heavily recursive code such as li.
	CrossActivation bool
}

// Normalized resolves zero fields to their defaults. Two configs with
// equal Normalized values profile identically, which is what cache
// keys over profiling parameters must compare (the pipeline's compile
// cache collapses an explicit Depth: 15 and the default-by-omission
// config to one entry this way).
func (c PathConfig) Normalized() PathConfig {
	if c.Depth == 0 {
		c.Depth = DefaultDepth
	}
	if c.MaxBlocks == 0 {
		c.MaxBlocks = DefaultMaxBlocks
	}
	return c
}

func (c PathConfig) withDefaults() PathConfig { return c.Normalized() }

// pathNode is one lazily-created state of the path automaton: the
// window of recently-executed blocks it represents, the number of
// branch-terminated blocks inside that window, its execution count,
// and successor pointers keyed by the next executed block.
type pathNode struct {
	seq      []ir.BlockID
	branches int
	count    int64
	succ     map[ir.BlockID]*pathNode
}

// procPaths holds the automaton for one procedure. Nodes are interned
// by window contents, so a loop that repeats the same paths reuses the
// same nodes and total node count stays proportional to the number of
// *distinct* paths — the paper's O(npaths + nedges) bound. The intern
// table is consulted only on the first traversal of a transition;
// afterwards the cached successor pointer makes the step O(1).
type procPaths struct {
	condBr []bool // per block: terminator is a conditional branch
	roots  map[ir.BlockID]*pathNode
	intern map[string]*pathNode
	nodes  int // total distinct nodes, for overhead statistics
}

// PathProfiler is an interp.Observer implementing the efficient
// general-path profiling algorithm of §3.1: it maintains the current
// path node per activation and follows (or lazily creates) successor
// pointers on each executed edge, so steady-state work per edge is a
// single map probe.
type PathProfiler struct {
	cfg   PathConfig
	procs []*procPaths

	// stack holds the current path node per live activation; Enter and
	// Exit events keep it aligned with the call stack, so recursion in
	// the profiled program does not corrupt windows.
	stack []*pathNode
	// procStack mirrors stack with the owning procedure.
	procStack []ir.ProcID
	// prevStack mirrors stack with the previously executed block of
	// each activation (NoBlock before the first).
	prevStack []ir.BlockID

	// procCur and procPrev replace the activation stack when
	// CrossActivation is set: one cursor per procedure.
	procCur  []*pathNode
	procPrev []ir.BlockID

	// forward, when true, truncates windows at loop back edges,
	// turning the profiler into a forward-path profiler (see
	// NewForwardPathProfiler). backEdges is per procedure.
	forward   bool
	backEdges []map[[2]ir.BlockID]bool

	dynEdges int64
}

// NewPathProfiler returns a general-path profiler for prog.
func NewPathProfiler(prog *ir.Program, cfg PathConfig) *PathProfiler {
	cfg = cfg.withDefaults()
	pp := &PathProfiler{cfg: cfg, procs: make([]*procPaths, len(prog.Procs))}
	for i, p := range prog.Procs {
		pp.procs[i] = &procPaths{
			condBr: condBrMap(p),
			roots:  map[ir.BlockID]*pathNode{},
			intern: map[string]*pathNode{},
		}
	}
	if cfg.CrossActivation {
		pp.procCur = make([]*pathNode, len(prog.Procs))
		pp.procPrev = make([]ir.BlockID, len(prog.Procs))
		for i := range pp.procPrev {
			pp.procPrev[i] = ir.NoBlock
		}
	}
	return pp
}

// EnterProc implements interp.Observer.
func (pp *PathProfiler) EnterProc(p ir.ProcID, entry ir.BlockID) {
	pp.stack = append(pp.stack, nil)
	pp.procStack = append(pp.procStack, p)
	pp.prevStack = append(pp.prevStack, ir.NoBlock)
}

// ExitProc implements interp.Observer. A mismatched exit — one whose
// procedure is not the innermost live activation, as a malformed or
// replayed event stream can produce — is ignored defensively, mirroring
// Block; popping unconditionally would silently corrupt the caller's
// window.
func (pp *PathProfiler) ExitProc(p ir.ProcID) {
	n := len(pp.stack)
	if n == 0 || pp.procStack[n-1] != p {
		return
	}
	pp.stack = pp.stack[:n-1]
	pp.procStack = pp.procStack[:n-1]
	pp.prevStack = pp.prevStack[:n-1]
}

// Edge implements interp.Observer. All window extension happens in
// Block events; edges only feed the overhead statistic.
func (pp *PathProfiler) Edge(p ir.ProcID, from, to ir.BlockID) { pp.dynEdges++ }

// Block implements interp.Observer: extend the current window by b and
// count the resulting path. The window cursor lives per activation by
// default, or per procedure under CrossActivation.
func (pp *PathProfiler) Block(p ir.ProcID, b ir.BlockID) {
	var cur *pathNode
	var prev ir.BlockID
	if pp.procCur != nil {
		cur, prev = pp.procCur[p], pp.procPrev[p]
	} else {
		top := len(pp.stack) - 1
		if top < 0 || pp.procStack[top] != p {
			return // events from an unmatched activation; ignore defensively
		}
		cur, prev = pp.stack[top], pp.prevStack[top]
	}
	st := pp.procs[p]
	if pp.forward && cur != nil {
		// Forward paths end at back edges: crossing one starts a new
		// window at b.
		if prev != ir.NoBlock && pp.backEdges[p][[2]ir.BlockID{prev, b}] {
			cur = nil
		}
	}
	var nxt *pathNode
	if cur == nil {
		nxt = st.roots[b]
		if nxt == nil {
			nxt = st.internNode([]ir.BlockID{b})
			st.roots[b] = nxt
		}
	} else {
		nxt = cur.succ[b]
		if nxt == nil {
			nxt = st.internNode(pp.extend(st, cur, b))
			if cur.succ == nil {
				cur.succ = map[ir.BlockID]*pathNode{}
			}
			cur.succ[b] = nxt
		}
	}
	nxt.count++
	if pp.procCur != nil {
		pp.procCur[p] = nxt
		pp.procPrev[p] = b
	} else {
		top := len(pp.stack) - 1
		pp.stack[top] = nxt
		pp.prevStack[top] = b
	}
}

// extend computes the window that follows cur when block b executes:
// append b, then trim from the front until the window respects both
// the branch-depth bound and the block-length cap.
func (pp *PathProfiler) extend(st *procPaths, cur *pathNode, b ir.BlockID) []ir.BlockID {
	seq := make([]ir.BlockID, 0, len(cur.seq)+1)
	seq = append(seq, cur.seq...)
	seq = append(seq, b)
	branches := cur.branches
	if st.condBr[b] {
		branches++
	}
	start := 0
	for branches > pp.cfg.Depth || len(seq)-start > pp.cfg.MaxBlocks {
		if st.condBr[seq[start]] {
			branches--
		}
		start++
	}
	return seq[start:]
}

// internNode returns the unique node for the given window, creating it
// on first sight.
func (st *procPaths) internNode(seq []ir.BlockID) *pathNode {
	key := seqKey(seq)
	if nd := st.intern[key]; nd != nil {
		return nd
	}
	branches := 0
	for _, b := range seq {
		if st.condBr[b] {
			branches++
		}
	}
	st.nodes++
	nd := &pathNode{seq: seq, branches: branches}
	st.intern[key] = nd
	return nd
}

// Stats reports profiling overhead: distinct path nodes created and
// dynamic edges observed. The paper's efficiency argument is that
// nodes ≪ edges in steady state.
func (pp *PathProfiler) Stats() (nodes int, dynEdges int64) {
	for _, st := range pp.procs {
		nodes += st.nodes
	}
	return nodes, pp.dynEdges
}

// Profile freezes the gathered data into a queryable PathProfile,
// building the per-procedure suffix index: every recorded window
// contributes its count to each of its suffixes, so Freq answers exact
// dynamic occurrence counts for any sequence within the profiled depth.
func (pp *PathProfiler) Profile() *PathProfile {
	out := &PathProfile{cfg: pp.cfg, procs: make([]*procPathIndex, len(pp.procs))}
	for i, st := range pp.procs {
		idx := &procPathIndex{
			condBr: st.condBr,
			freq:   map[string]int64{},
			succs:  map[string]map[ir.BlockID]int64{},
		}
		keys := make([]string, 0, len(st.intern))
		for k := range st.intern {
			keys = append(keys, k)
		}
		sort.Strings(keys) // determinism for any iteration-order effects
		for _, k := range keys {
			n := st.intern[k]
			if n.count == 0 {
				continue
			}
			for s := 0; s < len(n.seq); s++ {
				suffix := n.seq[s:]
				idx.freq[seqKey(suffix)] += n.count
				if len(suffix) >= 2 {
					// Record "suffix minus last block, extended by the
					// last block" so most-likely-path-successor queries
					// can enumerate candidates without consulting the
					// CFG.
					head := suffix[:len(suffix)-1]
					last := suffix[len(suffix)-1]
					hk := seqKey(head)
					sm := idx.succs[hk]
					if sm == nil {
						sm = map[ir.BlockID]int64{}
						idx.succs[hk] = sm
					}
					sm[last] += n.count
				}
			}
			idx.windows += n.count
			idx.distinct++
		}
		out.procs[i] = idx
	}
	return out
}

// procPathIndex is the frozen per-procedure query structure.
type procPathIndex struct {
	condBr   []bool
	freq     map[string]int64
	succs    map[string]map[ir.BlockID]int64
	windows  int64 // total windows recorded (= dynamic blocks observed)
	distinct int   // distinct windows
}

// PathProfile answers exact path-frequency queries (paper §2.2). A
// frozen profile is immutable: every method only reads the suffix
// index, so one profile may serve any number of goroutines at once
// (the parallel pipeline relies on this).
type PathProfile struct {
	cfg   PathConfig
	procs []*procPathIndex
}

// Depth returns the branch-depth bound the profile was gathered with.
func (pf *PathProfile) Depth() int { return pf.cfg.Depth }

// CrossActivation reports whether the profile was gathered with one
// window per procedure (recursion interleaves) rather than one per
// activation. Consumers comparing path-derived point statistics against
// an edge profile of the same run can expect exact agreement only when
// this is false.
func (pf *PathProfile) CrossActivation() bool { return pf.cfg.CrossActivation }

// NumProcs returns the number of procedures the profile covers.
func (pf *PathProfile) NumProcs() int { return len(pf.procs) }

// ForEachSeq calls fn for every indexed block sequence of procedure p
// with its exact occurrence count, in unspecified order. The slice
// passed to fn is freshly allocated per call and may be retained.
func (pf *PathProfile) ForEachSeq(p ir.ProcID, fn func(seq []ir.BlockID, n int64)) {
	if int(p) >= len(pf.procs) {
		return
	}
	for k, n := range pf.procs[p].freq {
		fn(decodeSeqKey(k), n)
	}
}

// ForEachSeqKey is ForEachSeq over the raw interned keys: no decoding,
// no per-call allocation. A key encodes its sequence as 4 bytes per
// block, so key[i*4:(i+2)*4] is the key of the i-th adjacent pair and
// FreqKey answers subsequence queries with zero-allocation substrings.
// Bulk consumers (the profile-consistency checker sweeps every indexed
// sequence of every procedure) need this; everything else should stay
// on the decoded API.
func (pf *PathProfile) ForEachSeqKey(p ir.ProcID, fn func(key string, n int64)) {
	if int(p) >= len(pf.procs) {
		return
	}
	for k, n := range pf.procs[p].freq {
		fn(k, n)
	}
}

// NumSeqs returns the number of distinct indexed sequences of
// procedure p — the number of calls a ForEachSeqKey sweep will make.
func (pf *PathProfile) NumSeqs(p ir.ProcID) int {
	if int(p) >= len(pf.procs) {
		return 0
	}
	return len(pf.procs[p].freq)
}

// FreqKey is Freq for a raw key (see ForEachSeqKey).
func (pf *PathProfile) FreqKey(p ir.ProcID, key string) int64 {
	return pf.procs[p].freq[key]
}

// SuccTotalKey returns the summed frequency of all one-block
// extensions of the sequence encoded by key.
func (pf *PathProfile) SuccTotalKey(p ir.ProcID, key string) int64 {
	var total int64
	for _, n := range pf.procs[p].succs[key] {
		total += n
	}
	return total
}

// DecodeKey decodes a raw key (see ForEachSeqKey) back into its block
// sequence.
func DecodeKey(key string) []ir.BlockID { return decodeSeqKey(key) }

// Freq returns the exact number of times the contiguous block sequence
// seq executed in procedure p, provided seq fits within the profiling
// depth (use TrimToDepth first for longer sequences). Sequences beyond
// the profiled depth return 0.
func (pf *PathProfile) Freq(p ir.ProcID, seq []ir.BlockID) int64 {
	if len(seq) == 0 {
		return 0
	}
	return pf.procs[p].freq[seqKey(seq)]
}

// BlockFreq returns the execution count of a single block.
func (pf *PathProfile) BlockFreq(p ir.ProcID, b ir.BlockID) int64 {
	return pf.Freq(p, []ir.BlockID{b})
}

// EdgeFreq returns the execution count of the CFG edge from→to,
// derived from the path data (a point statistic is a sum of paths).
func (pf *PathProfile) EdgeFreq(p ir.ProcID, from, to ir.BlockID) int64 {
	return pf.Freq(p, []ir.BlockID{from, to})
}

// SuccFreqs returns the observed one-block extensions of seq and their
// exact frequencies: for each block s that ever executed immediately
// after seq, the count of seq·s. The caller must pass a sequence
// already within depth.
func (pf *PathProfile) SuccFreqs(p ir.ProcID, seq []ir.BlockID) map[ir.BlockID]int64 {
	return pf.procs[p].succs[seqKey(seq)]
}

// MostLikelyPathSuccessor implements the paper's Figure 2 primitive:
// the successor block s maximizing f(seq·s), with its frequency.
// Returns (NoBlock, 0) when seq was never extended. Ties break toward
// the smallest block id for determinism.
func (pf *PathProfile) MostLikelyPathSuccessor(p ir.ProcID, seq []ir.BlockID) (ir.BlockID, int64) {
	return argmax(pf.SuccFreqs(p, seq))
}

// TrimToDepth returns the longest suffix of seq whose conditional
// branch count is within the profiling depth and whose length is
// within the window cap — the "longest suffix of the superblock for
// which we have exact frequencies" from §2.2. One branch slot is
// reserved so the suffix can still be extended by one block. The
// suffix never shrinks below the final block: single blocks are always
// recorded, so returning at least seq's last block keeps Freq and
// SuccFreqs queries meaningful even when every block consumes depth
// (e.g. an all-conditional sequence at Depth 1, where a full trim would
// yield an empty suffix and silently disable path guidance).
func (pf *PathProfile) TrimToDepth(p ir.ProcID, seq []ir.BlockID) []ir.BlockID {
	condBr := pf.procs[p].condBr
	branches := 0
	for _, b := range seq {
		if int(b) < len(condBr) && condBr[b] {
			branches++
		}
	}
	start := 0
	for start < len(seq)-1 && (branches > pf.cfg.Depth-1 || len(seq)-start > pf.cfg.MaxBlocks-1) {
		if int(seq[start]) < len(condBr) && condBr[seq[start]] {
			branches--
		}
		start++
	}
	return seq[start:]
}

// Windows returns (total, distinct) recorded windows for procedure p.
func (pf *PathProfile) Windows(p ir.ProcID) (int64, int) {
	return pf.procs[p].windows, pf.procs[p].distinct
}

// BlocksByFreq returns p's executed blocks in decreasing frequency
// order, the seed order for path-based trace selection.
func (pf *PathProfile) BlocksByFreq(p ir.ProcID) []ir.BlockID {
	idx := pf.procs[p]
	count := map[ir.BlockID]int64{}
	for b := range idx.condBr {
		if f := pf.BlockFreq(p, ir.BlockID(b)); f > 0 {
			count[ir.BlockID(b)] = f
		}
	}
	out := make([]ir.BlockID, 0, len(count))
	for b := range count {
		out = append(out, b)
	}
	sortBlocksByCount(out, count)
	return out
}
