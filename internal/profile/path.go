package profile

import (
	"sort"
	"sync"

	"pathsched/internal/interp"
	"pathsched/internal/ir"
)

// PathConfig parameterizes general-path profiling.
type PathConfig struct {
	// Depth is the maximum number of conditional or multiway branches
	// a path window may contain (paper: 15). Zero means DefaultDepth.
	Depth int
	// MaxBlocks caps a window's block length. Zero means
	// DefaultMaxBlocks.
	MaxBlocks int
	// CrossActivation keeps one window per *procedure* rather than per
	// activation: a recursive call interleaves its blocks into the
	// caller's window instead of starting fresh. This approximates an
	// instrumentation scheme with global per-procedure analysis state
	// (plausibly the paper's, which observes a flat edge stream); the
	// default per-activation windows are cleaner but see only very
	// short histories in heavily recursive code such as li.
	CrossActivation bool
}

// Normalized resolves zero fields to their defaults. Two configs with
// equal Normalized values profile identically, which is what cache
// keys over profiling parameters must compare (the pipeline's compile
// cache collapses an explicit Depth: 15 and the default-by-omission
// config to one entry this way).
func (c PathConfig) Normalized() PathConfig {
	if c.Depth == 0 {
		c.Depth = DefaultDepth
	}
	if c.MaxBlocks == 0 {
		c.MaxBlocks = DefaultMaxBlocks
	}
	return c
}

func (c PathConfig) withDefaults() PathConfig { return c.Normalized() }

// pathNode is one lazily-created state of the path automaton: the
// window of recently-executed blocks it represents, the number of
// branch-terminated blocks inside that window, its execution count,
// and successor pointers keyed by the next executed block — a dense
// slice indexed by BlockID in dense mode (allocated lazily on the
// first successor insert), a map in the fallback mode.
type pathNode struct {
	seq      []ir.BlockID
	branches int
	count    int64
	dense    []*pathNode
	succ     map[ir.BlockID]*pathNode
}

// denseLimit is the per-procedure block-count threshold for dense
// successor slices. Below it, a node's successor table costs at most
// denseLimit pointers (1KB) and the steady-state step is one array
// index; above it, nodes fall back to maps so sparse automatons over
// huge CFGs don't pay quadratic memory.
const denseLimit = 128

// procPaths holds the automaton for one procedure. Nodes are interned
// by window contents, so a loop that repeats the same paths reuses the
// same nodes and total node count stays proportional to the number of
// *distinct* paths — the paper's O(npaths + nedges) bound. The intern
// table is consulted only on the first traversal of a transition —
// it is keyed by a sequence hash with exact comparison inside the
// bucket, so interning never materializes a key string — and
// afterwards the cached successor pointer makes the step O(1): an
// array index in dense mode, a map probe in the fallback.
type procPaths struct {
	condBr  []bool // per block: terminator is a conditional branch
	nblocks int
	dense   bool                     // nblocks <= denseLimit
	roots   []*pathNode              // dense mode: window starts, by first block
	rootsM  map[ir.BlockID]*pathNode // fallback mode
	intern  map[uint64][]*pathNode   // seqHash → bucket
	// nodesList holds every interned node in creation order; freezing
	// and serialization sort it by seqKey to preserve the exact
	// iteration order of the historical string-keyed intern table.
	nodesList []*pathNode
	nodes     int // total distinct nodes, for overhead statistics
}

// PathProfiler is an interp.Observer implementing the efficient
// general-path profiling algorithm of §3.1: it maintains the current
// path node per activation and follows (or lazily creates) successor
// pointers on each executed edge, so steady-state work per edge is a
// single map probe.
type PathProfiler struct {
	cfg   PathConfig
	procs []*procPaths

	// stack holds the current path node per live activation; Enter and
	// Exit events keep it aligned with the call stack, so recursion in
	// the profiled program does not corrupt windows.
	stack []*pathNode
	// procStack mirrors stack with the owning procedure.
	procStack []ir.ProcID
	// prevStack mirrors stack with the previously executed block of
	// each activation (NoBlock before the first).
	prevStack []ir.BlockID

	// procCur and procPrev replace the activation stack when
	// CrossActivation is set: one cursor per procedure.
	procCur  []*pathNode
	procPrev []ir.BlockID

	// forward, when true, truncates windows at loop back edges,
	// turning the profiler into a forward-path profiler (see
	// NewForwardPathProfiler). backEdges is per procedure.
	forward   bool
	backEdges []map[[2]ir.BlockID]bool

	dynEdges int64

	// Batch-delivery statistics (see EdgeBatch), surfaced by
	// BatchStats for cmd/experiments -profstats.
	batches   int64
	batchRecs int64
}

// NewPathProfiler returns a general-path profiler for prog.
func NewPathProfiler(prog *ir.Program, cfg PathConfig) *PathProfiler {
	cfg = cfg.withDefaults()
	pp := &PathProfiler{cfg: cfg, procs: make([]*procPaths, len(prog.Procs))}
	for i, p := range prog.Procs {
		condBr := condBrMap(p)
		st := &procPaths{
			condBr:  condBr,
			nblocks: len(condBr),
			intern:  map[uint64][]*pathNode{},
		}
		if st.nblocks <= denseLimit {
			st.dense = true
			st.roots = make([]*pathNode, st.nblocks)
		} else {
			st.rootsM = map[ir.BlockID]*pathNode{}
		}
		pp.procs[i] = st
	}
	if cfg.CrossActivation {
		pp.procCur = make([]*pathNode, len(prog.Procs))
		pp.procPrev = make([]ir.BlockID, len(prog.Procs))
		for i := range pp.procPrev {
			pp.procPrev[i] = ir.NoBlock
		}
	}
	return pp
}

// EnterProc implements interp.Observer.
func (pp *PathProfiler) EnterProc(p ir.ProcID, entry ir.BlockID) {
	pp.stack = append(pp.stack, nil)
	pp.procStack = append(pp.procStack, p)
	pp.prevStack = append(pp.prevStack, ir.NoBlock)
}

// ExitProc implements interp.Observer. A mismatched exit — one whose
// procedure is not the innermost live activation, as a malformed or
// replayed event stream can produce — is ignored defensively, mirroring
// Block; popping unconditionally would silently corrupt the caller's
// window.
func (pp *PathProfiler) ExitProc(p ir.ProcID) {
	n := len(pp.stack)
	if n == 0 || pp.procStack[n-1] != p {
		return
	}
	pp.stack = pp.stack[:n-1]
	pp.procStack = pp.procStack[:n-1]
	pp.prevStack = pp.prevStack[:n-1]
}

// Edge implements interp.Observer. All window extension happens in
// Block events; edges only feed the overhead statistic.
func (pp *PathProfiler) Edge(p ir.ProcID, from, to ir.BlockID) { pp.dynEdges++ }

// Block implements interp.Observer: extend the current window by b and
// count the resulting path. The window cursor lives per activation by
// default, or per procedure under CrossActivation.
func (pp *PathProfiler) Block(p ir.ProcID, b ir.BlockID) {
	var cur *pathNode
	var prev ir.BlockID
	if pp.procCur != nil {
		cur, prev = pp.procCur[p], pp.procPrev[p]
	} else {
		top := len(pp.stack) - 1
		if top < 0 || pp.procStack[top] != p {
			return // events from an unmatched activation; ignore defensively
		}
		cur, prev = pp.stack[top], pp.prevStack[top]
	}
	nxt := pp.step(p, pp.procs[p], cur, prev, b)
	if pp.procCur != nil {
		pp.procCur[p] = nxt
		pp.procPrev[p] = b
	} else {
		top := len(pp.stack) - 1
		pp.stack[top] = nxt
		pp.prevStack[top] = b
	}
}

// step advances one automaton transition: extend the window ending at
// cur by block b, counting the resulting path. Shared by the per-event
// Block path and the batched EdgeBatch path so both observe identical
// automatons.
func (pp *PathProfiler) step(p ir.ProcID, st *procPaths, cur *pathNode, prev, b ir.BlockID) *pathNode {
	if pp.forward && cur != nil {
		// Forward paths end at back edges: crossing one starts a new
		// window at b.
		if prev != ir.NoBlock && pp.backEdges[p][[2]ir.BlockID{prev, b}] {
			cur = nil
		}
	}
	nxt := st.lookup(cur, b)
	if nxt == nil {
		nxt = pp.stepNew(st, cur, b)
	}
	nxt.count++
	return nxt
}

// lookup follows the cached successor (or root) pointer for block b,
// returning nil on a first-traversal miss.
func (st *procPaths) lookup(cur *pathNode, b ir.BlockID) *pathNode {
	if cur == nil {
		if st.dense {
			return st.roots[b]
		}
		return st.rootsM[b]
	}
	if st.dense {
		if d := cur.dense; d != nil {
			return d[b]
		}
		return nil
	}
	return cur.succ[b]
}

// stepNew handles the cold first traversal of a transition: intern the
// extended window and cache the successor (or root) pointer. The
// caller counts the returned node.
func (pp *PathProfiler) stepNew(st *procPaths, cur *pathNode, b ir.BlockID) *pathNode {
	if cur == nil {
		nxt := st.internNode([]ir.BlockID{b})
		if st.dense {
			st.roots[b] = nxt
		} else {
			st.rootsM[b] = nxt
		}
		return nxt
	}
	nxt := st.internNode(pp.extend(st, cur, b))
	if st.dense {
		if cur.dense == nil {
			cur.dense = make([]*pathNode, st.nblocks)
		}
		cur.dense[b] = nxt
	} else {
		if cur.succ == nil {
			cur.succ = map[ir.BlockID]*pathNode{}
		}
		cur.succ[b] = nxt
	}
	return nxt
}

// BeginProc implements interp.BatchObserver: an activation begins with
// its entry block already entered (BeginProc ≡ EnterProc + Block).
func (pp *PathProfiler) BeginProc(p ir.ProcID, entry ir.BlockID) {
	pp.EnterProc(p, entry)
	pp.Block(p, entry)
}

// EndProc implements interp.BatchObserver.
func (pp *PathProfiler) EndProc(p ir.ProcID) { pp.ExitProc(p) }

// EdgeBatch implements interp.BatchObserver: the hot path of batched
// training runs. The activation cursor is loaded once per batch
// instead of once per event, and in dense non-forward mode (the
// pipeline's configuration) the steady-state step is two pointer loads
// and an increment per edge. The automaton built is identical to the
// per-event path's — each record is exactly one Block event whose
// Edge half carried no extra information.
func (pp *PathProfiler) EdgeBatch(p ir.ProcID, recs []interp.EdgeRec) {
	pp.batches++
	pp.batchRecs += int64(len(recs))
	pp.dynEdges += int64(len(recs))
	if len(recs) == 0 {
		return
	}
	var cur *pathNode
	var prev ir.BlockID
	if pp.procCur != nil {
		cur, prev = pp.procCur[p], pp.procPrev[p]
	} else {
		top := len(pp.stack) - 1
		if top < 0 || pp.procStack[top] != p {
			return // records from an unmatched activation; ignore defensively
		}
		cur, prev = pp.stack[top], pp.prevStack[top]
	}
	st := pp.procs[p]
	if st.dense && !pp.forward {
		for i := range recs {
			b := recs[i].To
			var nxt *pathNode
			if cur == nil {
				nxt = st.roots[b]
			} else if d := cur.dense; d != nil {
				nxt = d[b]
			}
			if nxt == nil {
				nxt = pp.stepNew(st, cur, b)
			}
			nxt.count++
			cur = nxt
		}
	} else {
		for i := range recs {
			b := recs[i].To
			cur = pp.step(p, st, cur, prev, b)
			prev = b
		}
	}
	prev = recs[len(recs)-1].To
	if pp.procCur != nil {
		pp.procCur[p] = cur
		pp.procPrev[p] = prev
	} else {
		top := len(pp.stack) - 1
		pp.stack[top] = cur
		pp.prevStack[top] = prev
	}
}

// extend computes the window that follows cur when block b executes:
// append b, then trim from the front until the window respects both
// the branch-depth bound and the block-length cap.
func (pp *PathProfiler) extend(st *procPaths, cur *pathNode, b ir.BlockID) []ir.BlockID {
	seq := make([]ir.BlockID, 0, len(cur.seq)+1)
	seq = append(seq, cur.seq...)
	seq = append(seq, b)
	branches := cur.branches
	if st.condBr[b] {
		branches++
	}
	start := 0
	for branches > pp.cfg.Depth || len(seq)-start > pp.cfg.MaxBlocks {
		if st.condBr[seq[start]] {
			branches--
		}
		start++
	}
	return seq[start:]
}

// internNode returns the unique node for the given window, creating it
// on first sight. The table is keyed by a 64-bit FNV-1a hash of the
// sequence with exact comparison inside the bucket — node creation no
// longer materializes a key string; seqKey strings are regenerated
// only when freezing or serializing (see sortedNodes).
func (st *procPaths) internNode(seq []ir.BlockID) *pathNode {
	h := seqHash(seq)
	for _, nd := range st.intern[h] {
		if seqEqual(nd.seq, seq) {
			return nd
		}
	}
	branches := 0
	for _, b := range seq {
		if st.condBr[b] {
			branches++
		}
	}
	st.nodes++
	nd := &pathNode{seq: seq, branches: branches}
	st.intern[h] = append(st.intern[h], nd)
	st.nodesList = append(st.nodesList, nd)
	return nd
}

// seqHash is 64-bit FNV-1a over the block ids.
func seqHash(seq []ir.BlockID) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range seq {
		h ^= uint64(uint32(b))
		h *= 1099511628211
	}
	return h
}

func seqEqual(a, b []ir.BlockID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// keyedNode pairs an interned node with its seqKey string for
// freeze-time sorting.
type keyedNode struct {
	key string
	nd  *pathNode
}

// sortedNodes returns every interned node with its seqKey, sorted by
// key — exactly the iteration order the historical string-keyed intern
// table gave Profile and WriteText, preserved so frozen profiles and
// serialized bytes are unchanged by the hashed intern table.
func (st *procPaths) sortedNodes() []keyedNode {
	out := make([]keyedNode, len(st.nodesList))
	for i, nd := range st.nodesList {
		out[i] = keyedNode{seqKey(nd.seq), nd}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// Stats reports profiling overhead: distinct path nodes created and
// dynamic edges observed. The paper's efficiency argument is that
// nodes ≪ edges in steady state.
func (pp *PathProfiler) Stats() (nodes int, dynEdges int64) {
	for _, st := range pp.procs {
		nodes += st.nodes
	}
	return nodes, pp.dynEdges
}

// ProcAutomatonStats describes one procedure's path automaton for
// overhead reporting (cmd/experiments -profstats).
type ProcAutomatonStats struct {
	Proc  ir.ProcID
	Nodes int  // distinct path nodes created
	Dense bool // dense successor slices vs map fallback
}

// AutomatonStats reports every procedure's automaton size and
// successor-table mode.
func (pp *PathProfiler) AutomatonStats() []ProcAutomatonStats {
	out := make([]ProcAutomatonStats, len(pp.procs))
	for i, st := range pp.procs {
		out[i] = ProcAutomatonStats{Proc: ir.ProcID(i), Nodes: st.nodes, Dense: st.dense}
	}
	return out
}

// BatchStats reports how many EdgeBatch deliveries the profiler
// received and how many edge records they carried in total (zero on
// per-event runs).
func (pp *PathProfiler) BatchStats() (batches, records int64) {
	return pp.batches, pp.batchRecs
}

// Profile freezes the gathered data into a queryable PathProfile,
// building the per-procedure suffix index: every recorded window
// contributes its count to each of its suffixes, so Freq answers exact
// dynamic occurrence counts for any sequence within the profiled depth.
func (pp *PathProfiler) Profile() *PathProfile {
	out := &PathProfile{cfg: pp.cfg, procs: make([]*procPathIndex, len(pp.procs))}
	for i, st := range pp.procs {
		// Presize the suffix index: counted nodes contribute one freq
		// entry per suffix (suffixes of distinct windows collide, so
		// this is an upper bound that avoids growth rehashing).
		var nsuf int
		for _, nd := range st.nodesList {
			if nd.count != 0 {
				nsuf += len(nd.seq)
			}
		}
		idx := &procPathIndex{
			condBr: st.condBr,
			freq:   make(map[string]int64, nsuf),
		}
		// A suffix's key is a substring of the whole window's key (4
		// fixed bytes per block), so each node's key is built once and
		// sliced — freezing allocates no per-suffix key strings. Node
		// order doesn't matter: the index is a pair of maps whose final
		// contents are order-independent sums.
		for _, n := range st.nodesList {
			if n.count == 0 {
				continue
			}
			key := seqKey(n.seq)
			for s := 0; s < len(key); s += 4 {
				idx.freq[key[s:]] += n.count
			}
			idx.windows += n.count
			idx.distinct++
		}
		out.procs[i] = idx
	}
	return out
}

// procPathIndex is the frozen per-procedure query structure. succs is
// derived lazily from freq on the first successor query (succIndex):
// training runs freeze profiles they may never ask successor queries
// of, and the derivation is pure, so deferring it keeps the profiling
// phase lean without changing any query result.
type procPathIndex struct {
	condBr   []bool
	freq     map[string]int64
	succOnce sync.Once
	succs    map[string]map[ir.BlockID]int64
	windows  int64 // total windows recorded (= dynamic blocks observed)
	distinct int   // distinct windows
}

// succIndex builds (once) and returns the successor index: for each
// sequence head, the frequency of every observed one-block extension.
// It is fully determined by freq — every indexed sequence of length
// ≥ 2 extends its own head by its own last block with exactly its own
// frequency — so the build touches each distinct suffix once. The
// sync.Once keeps frozen profiles safe for concurrent queries (the
// parallel pipeline shares them across goroutines).
func (idx *procPathIndex) succIndex() map[string]map[ir.BlockID]int64 {
	idx.succOnce.Do(func() {
		succs := make(map[string]map[ir.BlockID]int64, len(idx.freq))
		// Map-to-map += accumulation: any visit order builds the same index.
		for k, n := range idx.freq { //lint:ordered
			if len(k) < 8 {
				continue
			}
			hk := k[:len(k)-4]
			last := ir.BlockID(uint32(k[len(k)-4]) | uint32(k[len(k)-3])<<8 |
				uint32(k[len(k)-2])<<16 | uint32(k[len(k)-1])<<24)
			sm := succs[hk]
			if sm == nil {
				sm = map[ir.BlockID]int64{}
				succs[hk] = sm
			}
			sm[last] = n
		}
		idx.succs = succs
	})
	return idx.succs
}

// PathProfile answers exact path-frequency queries (paper §2.2). A
// frozen profile is immutable: every method only reads the suffix
// index, so one profile may serve any number of goroutines at once
// (the parallel pipeline relies on this).
type PathProfile struct {
	cfg   PathConfig
	procs []*procPathIndex
}

// Depth returns the branch-depth bound the profile was gathered with.
func (pf *PathProfile) Depth() int { return pf.cfg.Depth }

// Config returns the (normalized) configuration the profile was
// gathered with — the value cache keys over profiling parameters must
// reproduce after a serialize→parse round trip.
func (pf *PathProfile) Config() PathConfig { return pf.cfg }

// CrossActivation reports whether the profile was gathered with one
// window per procedure (recursion interleaves) rather than one per
// activation. Consumers comparing path-derived point statistics against
// an edge profile of the same run can expect exact agreement only when
// this is false.
func (pf *PathProfile) CrossActivation() bool { return pf.cfg.CrossActivation }

// NumProcs returns the number of procedures the profile covers.
func (pf *PathProfile) NumProcs() int { return len(pf.procs) }

// ForEachSeq calls fn for every indexed block sequence of procedure p
// with its exact occurrence count, in unspecified order. The slice
// passed to fn is freshly allocated per call and may be retained.
func (pf *PathProfile) ForEachSeq(p ir.ProcID, fn func(seq []ir.BlockID, n int64)) {
	if int(p) >= len(pf.procs) {
		return
	}
	for k, n := range pf.procs[p].freq { //lint:ordered — unordered sweep is the documented contract
		fn(decodeSeqKey(k), n)
	}
}

// ForEachSeqKey is ForEachSeq over the raw interned keys: no decoding,
// no per-call allocation. A key encodes its sequence as 4 bytes per
// block, so key[i*4:(i+2)*4] is the key of the i-th adjacent pair and
// FreqKey answers subsequence queries with zero-allocation substrings.
// Bulk consumers (the profile-consistency checker sweeps every indexed
// sequence of every procedure) need this; everything else should stay
// on the decoded API.
func (pf *PathProfile) ForEachSeqKey(p ir.ProcID, fn func(key string, n int64)) {
	if int(p) >= len(pf.procs) {
		return
	}
	for k, n := range pf.procs[p].freq { //lint:ordered — unordered sweep is the documented contract
		fn(k, n)
	}
}

// NumSeqs returns the number of distinct indexed sequences of
// procedure p — the number of calls a ForEachSeqKey sweep will make.
func (pf *PathProfile) NumSeqs(p ir.ProcID) int {
	if int(p) >= len(pf.procs) {
		return 0
	}
	return len(pf.procs[p].freq)
}

// FreqKey is Freq for a raw key (see ForEachSeqKey).
func (pf *PathProfile) FreqKey(p ir.ProcID, key string) int64 {
	return pf.procs[p].freq[key]
}

// SuccTotalKey returns the summed frequency of all one-block
// extensions of the sequence encoded by key.
func (pf *PathProfile) SuccTotalKey(p ir.ProcID, key string) int64 {
	var total int64
	for _, n := range pf.procs[p].succIndex()[key] { //lint:ordered — commutative sum
		total += n
	}
	return total
}

// DecodeKey decodes a raw key (see ForEachSeqKey) back into its block
// sequence.
func DecodeKey(key string) []ir.BlockID { return decodeSeqKey(key) }

// Freq returns the exact number of times the contiguous block sequence
// seq executed in procedure p, provided seq fits within the profiling
// depth (use TrimToDepth first for longer sequences). Sequences beyond
// the profiled depth return 0.
func (pf *PathProfile) Freq(p ir.ProcID, seq []ir.BlockID) int64 {
	if len(seq) == 0 {
		return 0
	}
	return pf.procs[p].freq[seqKey(seq)]
}

// BlockFreq returns the execution count of a single block.
func (pf *PathProfile) BlockFreq(p ir.ProcID, b ir.BlockID) int64 {
	return pf.Freq(p, []ir.BlockID{b})
}

// EdgeFreq returns the execution count of the CFG edge from→to,
// derived from the path data (a point statistic is a sum of paths).
func (pf *PathProfile) EdgeFreq(p ir.ProcID, from, to ir.BlockID) int64 {
	return pf.Freq(p, []ir.BlockID{from, to})
}

// SuccFreqs returns the observed one-block extensions of seq and their
// exact frequencies: for each block s that ever executed immediately
// after seq, the count of seq·s. The caller must pass a sequence
// already within depth.
func (pf *PathProfile) SuccFreqs(p ir.ProcID, seq []ir.BlockID) map[ir.BlockID]int64 {
	return pf.procs[p].succIndex()[seqKey(seq)]
}

// MostLikelyPathSuccessor implements the paper's Figure 2 primitive:
// the successor block s maximizing f(seq·s), with its frequency.
// Returns (NoBlock, 0) when seq was never extended. Ties break toward
// the smallest block id for determinism.
func (pf *PathProfile) MostLikelyPathSuccessor(p ir.ProcID, seq []ir.BlockID) (ir.BlockID, int64) {
	return argmax(pf.SuccFreqs(p, seq))
}

// TrimToDepth returns the longest suffix of seq whose conditional
// branch count is within the profiling depth and whose length is
// within the window cap — the "longest suffix of the superblock for
// which we have exact frequencies" from §2.2. One branch slot is
// reserved so the suffix can still be extended by one block. The
// suffix never shrinks below the final block: single blocks are always
// recorded, so returning at least seq's last block keeps Freq and
// SuccFreqs queries meaningful even when every block consumes depth
// (e.g. an all-conditional sequence at Depth 1, where a full trim would
// yield an empty suffix and silently disable path guidance).
func (pf *PathProfile) TrimToDepth(p ir.ProcID, seq []ir.BlockID) []ir.BlockID {
	condBr := pf.procs[p].condBr
	branches := 0
	for _, b := range seq {
		if int(b) < len(condBr) && condBr[b] {
			branches++
		}
	}
	start := 0
	for start < len(seq)-1 && (branches > pf.cfg.Depth-1 || len(seq)-start > pf.cfg.MaxBlocks-1) {
		if int(seq[start]) < len(condBr) && condBr[seq[start]] {
			branches--
		}
		start++
	}
	return seq[start:]
}

// Windows returns (total, distinct) recorded windows for procedure p.
func (pf *PathProfile) Windows(p ir.ProcID) (int64, int) {
	return pf.procs[p].windows, pf.procs[p].distinct
}

// BlocksByFreq returns p's executed blocks in decreasing frequency
// order, the seed order for path-based trace selection.
func (pf *PathProfile) BlocksByFreq(p ir.ProcID) []ir.BlockID {
	idx := pf.procs[p]
	count := map[ir.BlockID]int64{}
	for b := range idx.condBr {
		if f := pf.BlockFreq(p, ir.BlockID(b)); f > 0 {
			count[ir.BlockID(b)] = f
		}
	}
	out := make([]ir.BlockID, 0, len(count))
	for b := range count {
		out = append(out, b)
	}
	sortBlocksByCount(out, count)
	return out
}
