package profile

import (
	"testing"

	"pathsched/internal/interp"
	"pathsched/internal/ir"
)

// blDiamondProc builds a loop-free procedure of two stacked diamonds:
// four acyclic paths, no back edges, so Ball–Larus numbering must
// assign exactly four dense ids with no cut edges.
func blDiamondProc() *ir.Program {
	bd := ir.NewBuilder("diamond", 8)
	pb := bd.Proc("main")
	e, l, r, j, a, b, end :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	e.Add(ir.MovI(1, 1))
	e.Br(1, l.ID(), r.ID())
	l.Add(ir.MovI(2, 10))
	l.Jmp(j.ID())
	r.Add(ir.MovI(2, 20))
	r.Jmp(j.ID())
	j.Add(ir.MovI(3, 0))
	j.Br(3, a.ID(), b.ID())
	a.Add(ir.AddI(2, 2, 1))
	a.Jmp(end.ID())
	b.Add(ir.AddI(2, 2, 2))
	b.Jmp(end.ID())
	end.Ret(2)
	return bd.Finish()
}

func TestBLNumberingDiamond(t *testing.T) {
	prog := blDiamondProc()
	bl := NewBLProfiler(prog, BLConfig{})
	if got := bl.NumPaths(0); got != 4 {
		t.Fatalf("NumPaths = %d, want 4 (two stacked diamonds)", got)
	}
	bl.ForEachCutEdge(0, func(from, to ir.BlockID) {
		t.Errorf("unexpected cut edge b%d->b%d in a loop-free procedure", from, to)
	})
	p := prog.Proc(0)
	seen := map[string]bool{}
	for id := int64(0); id < 4; id++ {
		blocks, cutTo := bl.DecodePath(0, id)
		if cutTo != ir.NoBlock {
			t.Fatalf("path %d: cutTo = b%d, want ret-terminated", id, cutTo)
		}
		if len(blocks) == 0 || blocks[0] != p.Entry().ID {
			t.Fatalf("path %d: decodes to %v, want entry-rooted path", id, blocks)
		}
		for i := 1; i < len(blocks); i++ {
			ok := false
			for _, s := range p.Block(blocks[i-1]).Succs() {
				if s == blocks[i] {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("path %d: b%d->b%d is not a CFG edge", id, blocks[i-1], blocks[i])
			}
		}
		if last := p.Block(blocks[len(blocks)-1]); last.Terminator().Op != ir.OpRet {
			t.Fatalf("path %d ends at b%d, not a ret block", id, last.ID)
		}
		key := string(seqKey(blocks))
		if seen[key] {
			t.Fatalf("path %d decodes to a sequence another id already produced", id)
		}
		seen[key] = true
	}
}

// blCallProg is loop-free across the whole program: main performs a
// straight-line chain of eight calls to a two-diamond helper whose
// branches depend on the argument, so the helper sees eight
// activations across four distinct acyclic paths.
func blCallProg() *ir.Program {
	bd := ir.NewBuilder("blcalls", 8)
	f := bd.Proc("f")
	e, l, r, j, a, b, end :=
		f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	e.Add(ir.AndI(2, ir.RegArg0, 1))
	e.Br(2, l.ID(), r.ID())
	l.Add(ir.MovI(3, 10))
	l.Jmp(j.ID())
	r.Add(ir.MovI(3, 20))
	r.Jmp(j.ID())
	j.Add(ir.AndI(4, ir.RegArg0, 2))
	j.Br(4, a.ID(), b.ID())
	a.Add(ir.AddI(3, 3, 1))
	a.Jmp(end.ID())
	b.Add(ir.AddI(3, 3, 2))
	b.Jmp(end.ID())
	end.Ret(3)

	pb := bd.Proc("main")
	const n = 8
	blocks := pb.NewBlocks(n + 1)
	for i := 0; i < n; i++ {
		blocks[i].Add(ir.MovI(1, int64(i)))
		blocks[i].Call(5, f.ID(), blocks[i+1].ID(), 1)
	}
	blocks[n].Ret(5)
	return bd.Finish()
}

// requireSameProfiles asserts two frozen path profiles are exactly
// equal: same indexed sequences, same frequencies, same window and
// distinct-window counts.
func requireSameProfiles(t *testing.T, ctx string, a, b *PathProfile) {
	t.Helper()
	if a.NumProcs() != b.NumProcs() {
		t.Fatalf("%s: %d vs %d procs", ctx, a.NumProcs(), b.NumProcs())
	}
	for pid := 0; pid < a.NumProcs(); pid++ {
		p := ir.ProcID(pid)
		if an, bn := a.NumSeqs(p), b.NumSeqs(p); an != bn {
			t.Errorf("%s: proc %d: %d vs %d indexed sequences", ctx, pid, an, bn)
		}
		a.ForEachSeqKey(p, func(key string, n int64) {
			if got := b.FreqKey(p, key); got != n {
				t.Errorf("%s: proc %d seq %s: %d vs %d", ctx, pid, FmtSeq(DecodeKey(key)), n, got)
			}
		})
		wa, da := a.Windows(p)
		wb, db := b.Windows(p)
		if wa != wb || da != db {
			t.Errorf("%s: proc %d: %d windows (%d distinct) vs %d (%d)", ctx, pid, wa, da, wb, db)
		}
	}
}

// On loop-free procedures every activation is a single numbered path,
// so the Ball–Larus profile must equal the window profiler's exactly —
// per-event and batched, at default and at tight non-default bounds.
func TestBLDifferentialLoopFree(t *testing.T) {
	for _, cfg := range []struct {
		name       string
		depth, max int
	}{
		{"default", 0, 0},
		{"tight", 2, 3},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			prog := blCallProg()
			wp := NewPathProfiler(prog, PathConfig{Depth: cfg.depth, MaxBlocks: cfg.max})
			bl := NewBLProfiler(prog, BLConfig{Depth: cfg.depth, MaxBlocks: cfg.max})
			if _, err := interp.Run(prog, interp.Config{Observer: Multi{wp, bl}}); err != nil {
				t.Fatal(err)
			}
			requireSameProfiles(t, "per-event", wp.Profile(), bl.Profile())

			tpw, err := Train(prog, PathConfig{Depth: cfg.depth, MaxBlocks: cfg.max})
			if err != nil {
				t.Fatal(err)
			}
			tpb, err := TrainBL(prog, BLConfig{Depth: cfg.depth, MaxBlocks: cfg.max})
			if err != nil {
				t.Fatal(err)
			}
			if tpw.Stats.Scheme != TrainSchemeWindow || tpb.Stats.Scheme != TrainSchemeBallLarus {
				t.Fatalf("schemes %q/%q", tpw.Stats.Scheme, tpb.Stats.Scheme)
			}
			if tpb.BL == nil {
				t.Fatal("TrainBL did not surface the raw profiler")
			}
			requireSameProfiles(t, "batched", tpw.Path, tpb.Path)
		})
	}
}

// blAltLoop builds a loop whose branch direction alternates each
// iteration: head -> body -> {odd, even} -> head, 40 iterations.
// Block ids: entry 0, head 1, body 2, odd 3, even 4, exit 5.
func blAltLoop() *ir.Program {
	bd := ir.NewBuilder("blalt", 8)
	pb := bd.Proc("main")
	entry, head, body, odd, even, exit :=
		pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	entry.Add(ir.MovI(1, 0), ir.MovI(2, 0))
	entry.Jmp(head.ID())
	head.Add(ir.CmpLTI(3, 1, 40))
	head.Br(3, body.ID(), exit.ID())
	body.Add(ir.AndI(4, 1, 1))
	body.Br(4, odd.ID(), even.ID())
	odd.Add(ir.AddI(2, 2, 1), ir.AddI(1, 1, 1))
	odd.Jmp(head.ID())
	even.Add(ir.AddI(2, 2, 2), ir.AddI(1, 1, 1))
	even.Jmp(head.ID())
	exit.Ret(2)
	return bd.Finish()
}

// On loops the k-iteration extension must (a) keep block and edge
// frequencies exact against the run's edge profile, and (b) expose
// cross-back-edge branch correlation: the alternating loop's
// two-iteration windows strictly interleave odd and even paths, which
// single acyclic paths cannot see.
func TestBLLoopExtension(t *testing.T) {
	prog := blAltLoop()
	tp, err := TrainBL(prog, BLConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pf, ep := tp.Path, tp.Edge
	p := prog.Proc(0)
	for _, b := range p.Blocks {
		if pn, en := pf.BlockFreq(0, b.ID), ep.BlockFreq(0, b.ID); pn != en {
			t.Errorf("block b%d: decoded paths say %d, edge profile says %d", b.ID, pn, en)
		}
		for _, s := range b.Succs() {
			if pn, en := pf.EdgeFreq(0, b.ID, s), ep.EdgeFreq(0, b.ID, s); pn != en {
				t.Errorf("edge b%d->b%d: decoded paths say %d, edge profile says %d", b.ID, s, pn, en)
			}
		}
	}

	// 40 iterations alternating even (i&1 == 0) and odd: every window
	// spanning two iterations pairs opposite parities, never the same.
	head, body, odd, even := ir.BlockID(1), ir.BlockID(2), ir.BlockID(3), ir.BlockID(4)
	if n := pf.Freq(0, []ir.BlockID{head, body, even, head, body, odd}); n != 20 {
		t.Errorf("even->odd two-iteration window ran %d times, want 20", n)
	}
	if n := pf.Freq(0, []ir.BlockID{head, body, odd, head, body, even}); n != 19 {
		t.Errorf("odd->even two-iteration window ran %d times, want 19", n)
	}
	for _, same := range [][]ir.BlockID{
		{head, body, even, head, body, even},
		{head, body, odd, head, body, odd},
	} {
		if n := pf.Freq(0, same); n != 0 {
			t.Errorf("same-parity window %s ran %d times, want 0", FmtSeq(same), n)
		}
	}
	// The cross-iteration context makes the next branch deterministic.
	if succ, _ := pf.MostLikelyPathSuccessor(0, []ir.BlockID{body, even, head, body}); succ != odd {
		t.Errorf("successor after an even iteration = b%d, want b%d (odd)", succ, odd)
	}

	// The window profiler sees the same alternation at matched depth —
	// the guidance the two schemes hand formation agrees here.
	tpw, err := Train(prog, PathConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range [][]ir.BlockID{
		{head, body, even, head, body, odd},
		{head, body, odd, head, body, even},
		{head, body, even, head, body, even},
	} {
		if wn, bn := tpw.Path.Freq(0, seq), pf.Freq(0, seq); wn != bn {
			t.Errorf("window %s: window profiler %d, Ball–Larus %d", FmtSeq(seq), wn, bn)
		}
	}
}

// blWideLoop wraps a chain of 20 diamonds (2^20 acyclic paths — far
// past blMaxPathsPerBlock) in a 32-iteration loop, forcing overflow
// cut edges on forward edges alongside the loop's back-edge cut.
func blWideLoop() *ir.Program {
	const diamonds, iters = 20, 32
	bd := ir.NewBuilder("blwide", 8)
	pb := bd.Proc("main")
	entry, head, pre := pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	exit := pb.NewBlock()
	tops := make([]*ir.BlockBuilder, diamonds+1)
	for i := range tops {
		tops[i] = pb.NewBlock()
	}
	entry.Add(ir.MovI(4, 0), ir.MovI(3, 0))
	entry.Jmp(head.ID())
	head.Add(ir.CmpLTI(5, 4, iters))
	head.Br(5, pre.ID(), exit.ID())
	pre.Add(ir.MulI(1, 4, 1103515245), ir.AddI(1, 1, 12345))
	pre.Jmp(tops[0].ID())
	for i := 0; i < diamonds; i++ {
		l, r := pb.NewBlock(), pb.NewBlock()
		tops[i].Add(ir.AndI(2, 1, 1), ir.ShrI(1, 1, 1))
		tops[i].Br(2, l.ID(), r.ID())
		l.Add(ir.AddI(3, 3, 1))
		l.Jmp(tops[i+1].ID())
		r.Add(ir.AddI(3, 3, 2))
		r.Jmp(tops[i+1].ID())
	}
	tops[diamonds].Add(ir.AddI(4, 4, 1))
	tops[diamonds].Jmp(head.ID())
	exit.Ret(3)
	return bd.Finish()
}

// Overflow cuts: a procedure whose acyclic path count explodes must
// fall back to extra cut edges, and the decoded profile must still
// conserve flow exactly.
func TestBLOverflowCuts(t *testing.T) {
	prog := blWideLoop()
	bl := NewBLProfiler(prog, BLConfig{})
	g := ir.NewCFG(prog.Proc(0))
	forwardCuts := 0
	bl.ForEachCutEdge(0, func(from, to ir.BlockID) {
		if !g.IsBackEdge(from, to) {
			forwardCuts++
		}
	})
	if forwardCuts == 0 {
		t.Fatalf("no overflow cut on 2^20 acyclic paths (NumPaths = %d)", bl.NumPaths(0))
	}
	if total := bl.NumPaths(0); total > blDenseLimit {
		t.Fatalf("NumPaths = %d still exceeds the dense limit after cuts", total)
	}

	tp, err := TrainBL(prog, BLConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p := prog.Proc(0)
	for _, b := range p.Blocks {
		if pn, en := tp.Path.BlockFreq(0, b.ID), tp.Edge.BlockFreq(0, b.ID); pn != en {
			t.Errorf("block b%d: decoded paths say %d, edge profile says %d", b.ID, pn, en)
		}
		for _, s := range b.Succs() {
			if pn, en := tp.Path.EdgeFreq(0, b.ID, s), tp.Edge.EdgeFreq(0, b.ID, s); pn != en {
				t.Errorf("edge b%d->b%d: decoded paths say %d, edge profile says %d", b.ID, s, pn, en)
			}
		}
	}
}
