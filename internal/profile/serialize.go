package profile

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pathsched/internal/ir"
)

// Profile serialization: a line-oriented text format so training runs
// can be decoupled from compilation (profile on one invocation, form
// superblocks in another — the usual profile-guided build workflow).
//
// Edge profiles:
//
//	edgeprofile
//	proc <id> entries=<n>
//	block b<i>: <count>
//	edge b<i>->b<j>: <count>
//
// Path profiles serialize the distinct windows the profiler recorded
// (not the derived suffix index, which is reconstructed on load):
//
//	pathprofile depth=<d> maxblocks=<m> [crossact=1]
//	proc <id>
//	path <count>: b<i> b<j> ...
//
// crossact appears only when set, so profiles written without it keep
// their exact historical bytes. The header must carry the complete
// normalized configuration: cache keys fingerprint the parsed config,
// and a field that doesn't survive the round trip silently conflates
// differently-gathered profiles.

// WriteText serializes an edge profile.
func (e *EdgeProfile) WriteText() string {
	var sb strings.Builder
	sb.WriteString("edgeprofile\n")
	for pid, pe := range e.procs {
		fmt.Fprintf(&sb, "proc %d entries=%d\n", pid, pe.entries)
		for b, n := range pe.block {
			if n != 0 {
				fmt.Fprintf(&sb, "block b%d: %d\n", b, n)
			}
		}
		for f := range pe.succID {
			tos := make([]ir.BlockID, len(pe.succID[f]))
			copy(tos, pe.succID[f])
			sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
			for _, t := range tos {
				if n := e.EdgeFreq(ir.ProcID(pid), ir.BlockID(f), t); n != 0 {
					fmt.Fprintf(&sb, "edge b%d->b%d: %d\n", f, t, n)
				}
			}
		}
	}
	return sb.String()
}

// ParseEdgeProfile reads the text form back. nprocs sizes the profile
// (use len(prog.Procs)).
func ParseEdgeProfile(nprocs int, text string) (*EdgeProfile, error) {
	ep := NewEdgeProfiler(&ir.Program{Procs: make([]*ir.Proc, nprocs)})
	var cur *procEdges
	lines := strings.Split(text, "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != "edgeprofile" {
		return nil, fmt.Errorf("profile: missing edgeprofile header")
	}
	for no, raw := range lines[1:] {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "proc "):
			fields := strings.Fields(line)
			if len(fields) != 3 || !strings.HasPrefix(fields[2], "entries=") {
				return nil, fmt.Errorf("profile: line %d: malformed proc line", no+2)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 || id >= nprocs {
				return nil, fmt.Errorf("profile: line %d: bad proc id", no+2)
			}
			n, err := strconv.ParseInt(fields[2][len("entries="):], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("profile: line %d: bad entries", no+2)
			}
			cur = ep.procs[id]
			cur.entries = n
		case strings.HasPrefix(line, "block "):
			if cur == nil {
				return nil, fmt.Errorf("profile: line %d: block before proc", no+2)
			}
			var b ir.BlockID
			var n int64
			if _, err := fmt.Sscanf(line, "block b%d: %d", &b, &n); err != nil {
				return nil, fmt.Errorf("profile: line %d: %v", no+2, err)
			}
			if b < 0 {
				return nil, fmt.Errorf("profile: line %d: negative block id", no+2)
			}
			cur.addBlock(b, n)
		case strings.HasPrefix(line, "edge "):
			if cur == nil {
				return nil, fmt.Errorf("profile: line %d: edge before proc", no+2)
			}
			var f, t ir.BlockID
			var n int64
			if _, err := fmt.Sscanf(line, "edge b%d->b%d: %d", &f, &t, &n); err != nil {
				return nil, fmt.Errorf("profile: line %d: %v", no+2, err)
			}
			if f < 0 || t < 0 {
				return nil, fmt.Errorf("profile: line %d: negative block id", no+2)
			}
			cur.addEdge(f, t, n)
		default:
			return nil, fmt.Errorf("profile: line %d: unrecognized %q", no+2, line)
		}
	}
	return ep.Profile(), nil
}

// WriteText serializes the profiler's recorded windows.
func (pp *PathProfiler) WriteText() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pathprofile depth=%d maxblocks=%d", pp.cfg.Depth, pp.cfg.MaxBlocks)
	if pp.cfg.CrossActivation {
		sb.WriteString(" crossact=1")
	}
	sb.WriteString("\n")
	for pid, st := range pp.procs {
		if len(st.nodesList) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "proc %d\n", pid)
		for _, kn := range st.sortedNodes() {
			nd := kn.nd
			if nd.count == 0 {
				continue
			}
			fmt.Fprintf(&sb, "path %d:", nd.count)
			for _, b := range nd.seq {
				fmt.Fprintf(&sb, " b%d", b)
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// ParsePathProfile reads a serialized path profile back into a
// queryable PathProfile. prog supplies the branch classification
// TrimToDepth depends on.
func ParsePathProfile(prog *ir.Program, text string) (*PathProfile, error) {
	pp, err := ParsePathProfiler(prog, text)
	if err != nil {
		return nil, err
	}
	return pp.Profile(), nil
}

// ParsePathProfiler reads the text form back into a live profiler, so
// callers can re-serialize: WriteText∘ParsePathProfiler∘WriteText is
// the identity, which keeps cache keys over serialized profiles
// stable.
func ParsePathProfiler(prog *ir.Program, text string) (*PathProfiler, error) {
	lines := strings.Split(text, "\n")
	if len(lines) == 0 || !strings.HasPrefix(strings.TrimSpace(lines[0]), "pathprofile") {
		return nil, fmt.Errorf("profile: missing pathprofile header")
	}
	cfg := PathConfig{}
	for _, f := range strings.Fields(lines[0])[1:] {
		switch {
		case strings.HasPrefix(f, "depth="):
			v, err := strconv.Atoi(f[len("depth="):])
			if err != nil {
				return nil, fmt.Errorf("profile: bad depth %q", f)
			}
			cfg.Depth = v
		case strings.HasPrefix(f, "maxblocks="):
			v, err := strconv.Atoi(f[len("maxblocks="):])
			if err != nil {
				return nil, fmt.Errorf("profile: bad maxblocks %q", f)
			}
			cfg.MaxBlocks = v
		case f == "crossact=1":
			cfg.CrossActivation = true
		default:
			return nil, fmt.Errorf("profile: unknown header field %q", f)
		}
	}
	pp := NewPathProfiler(prog, cfg)
	curProc := -1
	for no, raw := range lines[1:] {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "proc "):
			id, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "proc ")))
			if err != nil || id < 0 || id >= len(pp.procs) {
				return nil, fmt.Errorf("profile: line %d: bad proc id", no+2)
			}
			curProc = id
		case strings.HasPrefix(line, "path "):
			if curProc < 0 {
				return nil, fmt.Errorf("profile: line %d: path before proc", no+2)
			}
			rest := strings.TrimPrefix(line, "path ")
			colon := strings.IndexByte(rest, ':')
			if colon < 0 {
				return nil, fmt.Errorf("profile: line %d: malformed path", no+2)
			}
			count, err := strconv.ParseInt(strings.TrimSpace(rest[:colon]), 10, 64)
			if err != nil || count < 0 {
				return nil, fmt.Errorf("profile: line %d: bad count", no+2)
			}
			var seq []ir.BlockID
			for _, f := range strings.Fields(rest[colon+1:]) {
				if !strings.HasPrefix(f, "b") {
					return nil, fmt.Errorf("profile: line %d: bad block %q", no+2, f)
				}
				v, err := strconv.ParseInt(f[1:], 10, 32)
				if err != nil {
					return nil, fmt.Errorf("profile: line %d: bad block %q", no+2, f)
				}
				seq = append(seq, ir.BlockID(v))
			}
			if len(seq) == 0 {
				return nil, fmt.Errorf("profile: line %d: empty path", no+2)
			}
			st := pp.procs[curProc]
			nd := st.internNode(seq)
			nd.count += count
		default:
			return nil, fmt.Errorf("profile: line %d: unrecognized %q", no+2, line)
		}
	}
	return pp, nil
}
