package profile

import (
	"sort"

	"pathsched/internal/ir"
)

// EdgeProfiler is an interp.Observer that gathers a point profile:
// per-procedure block and edge execution counts.
type EdgeProfiler struct {
	procs []*procEdges
}

type procEdges struct {
	entries    int64
	blockCount map[ir.BlockID]int64
	succCount  map[ir.BlockID]map[ir.BlockID]int64
	predCount  map[ir.BlockID]map[ir.BlockID]int64
}

// NewEdgeProfiler returns an edge profiler for prog.
func NewEdgeProfiler(prog *ir.Program) *EdgeProfiler {
	ep := &EdgeProfiler{procs: make([]*procEdges, len(prog.Procs))}
	for i := range ep.procs {
		ep.procs[i] = &procEdges{
			blockCount: map[ir.BlockID]int64{},
			succCount:  map[ir.BlockID]map[ir.BlockID]int64{},
			predCount:  map[ir.BlockID]map[ir.BlockID]int64{},
		}
	}
	return ep
}

// EnterProc implements interp.Observer.
func (ep *EdgeProfiler) EnterProc(p ir.ProcID, entry ir.BlockID) { ep.procs[p].entries++ }

// ExitProc implements interp.Observer.
func (ep *EdgeProfiler) ExitProc(p ir.ProcID) {}

// Block implements interp.Observer.
func (ep *EdgeProfiler) Block(p ir.ProcID, b ir.BlockID) { ep.procs[p].blockCount[b]++ }

// Edge implements interp.Observer.
func (ep *EdgeProfiler) Edge(p ir.ProcID, from, to ir.BlockID) {
	pe := ep.procs[p]
	sm := pe.succCount[from]
	if sm == nil {
		sm = map[ir.BlockID]int64{}
		pe.succCount[from] = sm
	}
	sm[to]++
	pm := pe.predCount[to]
	if pm == nil {
		pm = map[ir.BlockID]int64{}
		pe.predCount[to] = pm
	}
	pm[from]++
}

// Profile freezes the profiler into a queryable EdgeProfile. The
// profiler may keep observing; the returned profile shares its counts.
func (ep *EdgeProfiler) Profile() *EdgeProfile { return &EdgeProfile{procs: ep.procs} }

// EdgeProfile answers point-profile queries for trace selection and
// enlargement. All methods are read-only, so a profile whose backing
// profiler has stopped observing may serve any number of goroutines at
// once (the parallel pipeline relies on this).
type EdgeProfile struct {
	procs []*procEdges
}

// Entries returns how many times procedure p was invoked.
func (e *EdgeProfile) Entries(p ir.ProcID) int64 { return e.procs[p].entries }

// BlockFreq returns the execution count of block b in procedure p.
func (e *EdgeProfile) BlockFreq(p ir.ProcID, b ir.BlockID) int64 {
	return e.procs[p].blockCount[b]
}

// EdgeFreq returns the execution count of the CFG edge from→to.
func (e *EdgeProfile) EdgeFreq(p ir.ProcID, from, to ir.BlockID) int64 {
	return e.procs[p].succCount[from][to]
}

// MostLikelySucc returns the successor of b with the highest edge
// count and that count, or (NoBlock, 0) when b never transferred
// control. Ties break toward the smallest block id.
func (e *EdgeProfile) MostLikelySucc(p ir.ProcID, b ir.BlockID) (ir.BlockID, int64) {
	return argmax(e.procs[p].succCount[b])
}

// MostLikelyPred is the mirror of MostLikelySucc over predecessors.
func (e *EdgeProfile) MostLikelyPred(p ir.ProcID, b ir.BlockID) (ir.BlockID, int64) {
	return argmax(e.procs[p].predCount[b])
}

// BlocksByFreq returns procedure p's executed blocks in decreasing
// frequency order (ties toward smaller ids): the seed order for trace
// selection.
func (e *EdgeProfile) BlocksByFreq(p ir.ProcID) []ir.BlockID {
	pe := e.procs[p]
	out := make([]ir.BlockID, 0, len(pe.blockCount))
	for b := range pe.blockCount {
		out = append(out, b)
	}
	sortBlocksByCount(out, pe.blockCount)
	return out
}

// sortBlocksByCount orders ids by (count desc, id asc), the
// deterministic seed order used everywhere in formation.
func sortBlocksByCount(ids []ir.BlockID, count map[ir.BlockID]int64) {
	sort.Slice(ids, func(i, j int) bool {
		ci, cj := count[ids[i]], count[ids[j]]
		if ci != cj {
			return ci > cj
		}
		return ids[i] < ids[j]
	})
}
