package profile

import (
	"sort"

	"pathsched/internal/ir"
)

// EdgeProfiler is an interp.Observer that gathers a point profile:
// per-procedure block and edge execution counts.
//
// Edge fires on every executed CFG edge, so its storage is dense:
// block counts are a slice indexed by block id (ids are dense in this
// IR — AddBlock assigns them sequentially), and the succ/pred counters
// are small adjacency lists per block. A CFG block has a handful of
// successors at most, so a linear scan of the id list beats the two
// map probes (hash + possible allocation) the previous representation
// paid per event.
type EdgeProfiler struct {
	procs []*procEdges
}

type procEdges struct {
	entries int64
	block   []int64 // execution count, indexed by block id

	// Adjacency-list counters, indexed by block id; ids and counts are
	// parallel, in first-observed order. succID[b] lists the observed
	// successors of b, predID[b] the observed predecessors.
	succID [][]ir.BlockID
	succN  [][]int64
	predID [][]ir.BlockID
	predN  [][]int64
}

// grow extends the per-block slices to cover block id b. Profilers
// built over a program are pre-sized, so the hot path never grows;
// profiles reconstructed by ParseEdgeProfile (no program in hand)
// grow on demand.
func (pe *procEdges) grow(b ir.BlockID) {
	need := int(b) + 1
	for len(pe.block) < need {
		pe.block = append(pe.block, 0)
		pe.succID = append(pe.succID, nil)
		pe.succN = append(pe.succN, nil)
		pe.predID = append(pe.predID, nil)
		pe.predN = append(pe.predN, nil)
	}
}

// bump adds n to key's counter in a parallel (ids, counts) adjacency
// list, appending on first sight.
func bump(ids *[]ir.BlockID, ns *[]int64, key ir.BlockID, n int64) {
	s := *ids
	for k := range s {
		if s[k] == key {
			(*ns)[k] += n
			return
		}
	}
	*ids = append(s, key)
	*ns = append(*ns, n)
}

// addEdge records n traversals of from→to.
func (pe *procEdges) addEdge(from, to ir.BlockID, n int64) {
	if from > to {
		pe.grow(from)
	} else {
		pe.grow(to)
	}
	bump(&pe.succID[from], &pe.succN[from], to, n)
	bump(&pe.predID[to], &pe.predN[to], from, n)
}

// addBlock records n executions of b.
func (pe *procEdges) addBlock(b ir.BlockID, n int64) {
	pe.grow(b)
	pe.block[b] += n
}

// NewEdgeProfiler returns an edge profiler for prog, with counters
// pre-sized to each procedure's block count.
func NewEdgeProfiler(prog *ir.Program) *EdgeProfiler {
	ep := &EdgeProfiler{procs: make([]*procEdges, len(prog.Procs))}
	for i := range ep.procs {
		pe := &procEdges{}
		if p := prog.Procs[i]; p != nil && len(p.Blocks) > 0 {
			n := len(p.Blocks)
			pe.block = make([]int64, n)
			pe.succID = make([][]ir.BlockID, n)
			pe.succN = make([][]int64, n)
			pe.predID = make([][]ir.BlockID, n)
			pe.predN = make([][]int64, n)
		}
		ep.procs[i] = pe
	}
	return ep
}

// EnterProc implements interp.Observer.
func (ep *EdgeProfiler) EnterProc(p ir.ProcID, entry ir.BlockID) { ep.procs[p].entries++ }

// ExitProc implements interp.Observer.
func (ep *EdgeProfiler) ExitProc(p ir.ProcID) {}

// Block implements interp.Observer.
func (ep *EdgeProfiler) Block(p ir.ProcID, b ir.BlockID) {
	pe := ep.procs[p]
	if int(b) < len(pe.block) {
		pe.block[b]++
		return
	}
	pe.addBlock(b, 1)
}

// Edge implements interp.Observer.
func (ep *EdgeProfiler) Edge(p ir.ProcID, from, to ir.BlockID) {
	pe := ep.procs[p]
	if int(from) < len(pe.succID) && int(to) < len(pe.predID) {
		bump(&pe.succID[from], &pe.succN[from], to, 1)
		bump(&pe.predID[to], &pe.predN[to], from, 1)
		return
	}
	pe.addEdge(from, to, 1)
}

// Profile freezes the profiler into a queryable EdgeProfile. The
// profiler may keep observing; the returned profile shares its counts.
func (ep *EdgeProfiler) Profile() *EdgeProfile { return &EdgeProfile{procs: ep.procs} }

// EdgeProfile answers point-profile queries for trace selection and
// enlargement. All methods are read-only, so a profile whose backing
// profiler has stopped observing may serve any number of goroutines at
// once (the parallel pipeline relies on this).
type EdgeProfile struct {
	procs []*procEdges
}

// Entries returns how many times procedure p was invoked.
func (e *EdgeProfile) Entries(p ir.ProcID) int64 { return e.procs[p].entries }

// NProcs returns the procedure count the profile was sized for — the
// nprocs a ParseEdgeProfile round trip needs.
func (e *EdgeProfile) NProcs() int { return len(e.procs) }

// BlockFreq returns the execution count of block b in procedure p.
func (e *EdgeProfile) BlockFreq(p ir.ProcID, b ir.BlockID) int64 {
	pe := e.procs[p]
	if b < 0 || int(b) >= len(pe.block) {
		return 0
	}
	return pe.block[b]
}

// EdgeFreq returns the execution count of the CFG edge from→to.
func (e *EdgeProfile) EdgeFreq(p ir.ProcID, from, to ir.BlockID) int64 {
	pe := e.procs[p]
	if from < 0 || int(from) >= len(pe.succID) {
		return 0
	}
	for k, id := range pe.succID[from] {
		if id == to {
			return pe.succN[from][k]
		}
	}
	return 0
}

// NumProcs returns the number of procedures the profile covers.
func (e *EdgeProfile) NumProcs() int { return len(e.procs) }

// NumBlocks returns the number of blocks with counters in procedure p
// (at least the procedure's block count when the profiler was built
// over a program).
func (e *EdgeProfile) NumBlocks(p ir.ProcID) int {
	if int(p) >= len(e.procs) {
		return 0
	}
	return len(e.procs[p].block)
}

// ForEachSucc calls fn for every recorded successor edge b→to with its
// traversal count, in first-observed order.
func (e *EdgeProfile) ForEachSucc(p ir.ProcID, b ir.BlockID, fn func(to ir.BlockID, n int64)) {
	pe := e.procs[p]
	if b < 0 || int(b) >= len(pe.succID) {
		return
	}
	for k, id := range pe.succID[b] {
		fn(id, pe.succN[b][k])
	}
}

// ForEachPred calls fn for every recorded predecessor edge from→b with
// its traversal count, in first-observed order.
func (e *EdgeProfile) ForEachPred(p ir.ProcID, b ir.BlockID, fn func(from ir.BlockID, n int64)) {
	pe := e.procs[p]
	if b < 0 || int(b) >= len(pe.predID) {
		return
	}
	for k, id := range pe.predID[b] {
		fn(id, pe.predN[b][k])
	}
}

// listArgmax returns the id with the largest positive count (ties
// toward the smallest id), or (NoBlock, 0) when every count is zero:
// the same contract as the map-based argmax used for path queries.
func listArgmax(ids []ir.BlockID, ns []int64) (ir.BlockID, int64) {
	best, bestN := ir.NoBlock, int64(0)
	for k, id := range ids {
		n := ns[k]
		if n > bestN || (n == bestN && n > 0 && id < best) {
			best, bestN = id, n
		}
	}
	return best, bestN
}

// MostLikelySucc returns the successor of b with the highest edge
// count and that count, or (NoBlock, 0) when b never transferred
// control. Ties break toward the smallest block id.
func (e *EdgeProfile) MostLikelySucc(p ir.ProcID, b ir.BlockID) (ir.BlockID, int64) {
	pe := e.procs[p]
	if b < 0 || int(b) >= len(pe.succID) {
		return ir.NoBlock, 0
	}
	return listArgmax(pe.succID[b], pe.succN[b])
}

// MostLikelyPred is the mirror of MostLikelySucc over predecessors.
func (e *EdgeProfile) MostLikelyPred(p ir.ProcID, b ir.BlockID) (ir.BlockID, int64) {
	pe := e.procs[p]
	if b < 0 || int(b) >= len(pe.predID) {
		return ir.NoBlock, 0
	}
	return listArgmax(pe.predID[b], pe.predN[b])
}

// BlocksByFreq returns procedure p's executed blocks in decreasing
// frequency order (ties toward smaller ids): the seed order for trace
// selection.
func (e *EdgeProfile) BlocksByFreq(p ir.ProcID) []ir.BlockID {
	pe := e.procs[p]
	out := make([]ir.BlockID, 0, len(pe.block))
	for b, n := range pe.block {
		if n != 0 {
			out = append(out, ir.BlockID(b))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := pe.block[out[i]], pe.block[out[j]]
		if ci != cj {
			return ci > cj
		}
		return out[i] < out[j]
	})
	return out
}

// sortBlocksByCount orders ids by (count desc, id asc), the
// deterministic seed order used everywhere in formation.
func sortBlocksByCount(ids []ir.BlockID, count map[ir.BlockID]int64) {
	sort.Slice(ids, func(i, j int) bool {
		ci, cj := count[ids[i]], count[ids[j]]
		if ci != cj {
			return ci > cj
		}
		return ids[i] < ids[j]
	})
}
