package profile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pathsched/internal/interp"
	"pathsched/internal/ir"
)

// chainProg builds a procedure of n blocks where block i ends in a
// conditional branch to blocks (i+1) mod n and (i+2) mod n when
// branchy[i], or a jump to (i+1) mod n otherwise. It is only used to
// give profilers realistic condBr maps and legal walks.
func chainProg(branchy []bool) *ir.Program {
	n := len(branchy)
	bd := ir.NewBuilder("chain", 8)
	pb := bd.Proc("main")
	bbs := pb.NewBlocks(n)
	for i, bb := range bbs {
		bb.Add(ir.MovI(1, int64(i)))
		if branchy[i] {
			bb.Br(1, bbs[(i+1)%n].ID(), bbs[(i+2)%n].ID())
		} else {
			bb.Jmp(bbs[(i+1)%n].ID())
		}
	}
	return bd.Program() // skip Finish: no ret; we never execute it
}

// walkFeeder drives observers with a synthetic activation walk.
func feedWalk(obs interp.Observer, walk []ir.BlockID) {
	obs.EnterProc(0, walk[0])
	for i, b := range walk {
		if i > 0 {
			obs.Edge(0, walk[i-1], b)
		}
		obs.Block(0, b)
	}
	obs.ExitProc(0)
}

// legalWalk produces a length-m walk over prog's proc 0 following
// random successors.
func legalWalk(prog *ir.Program, rng *rand.Rand, m int) []ir.BlockID {
	p := prog.Proc(0)
	cur := p.Entry().ID
	walk := []ir.BlockID{cur}
	for len(walk) < m {
		succs := p.Block(cur).Succs()
		if len(succs) == 0 {
			break
		}
		cur = succs[rng.Intn(len(succs))]
		walk = append(walk, cur)
	}
	return walk
}

func TestPathFreqSimpleRepeat(t *testing.T) {
	prog := chainProg([]bool{true, true, true})
	pp := NewPathProfiler(prog, PathConfig{Depth: 15})
	// Walk b0 b1 b2 b0 b1 b2 b0.
	feedWalk(pp, []ir.BlockID{0, 1, 2, 0, 1, 2, 0})
	pf := pp.Profile()
	cases := []struct {
		seq  []ir.BlockID
		want int64
	}{
		{[]ir.BlockID{0}, 3},
		{[]ir.BlockID{1}, 2},
		{[]ir.BlockID{0, 1}, 2},
		{[]ir.BlockID{1, 2}, 2},
		{[]ir.BlockID{2, 0}, 2},
		{[]ir.BlockID{0, 1, 2}, 2},
		{[]ir.BlockID{0, 1, 2, 0}, 2},
		{[]ir.BlockID{0, 1, 2, 0, 1, 2, 0}, 1},
		{[]ir.BlockID{2, 1}, 0},
	}
	for _, c := range cases {
		if got := pf.Freq(0, c.seq); got != c.want {
			t.Errorf("Freq(%s) = %d, want %d", FmtSeq(c.seq), got, c.want)
		}
	}
}

func TestGeneralPathsCrossBackEdges(t *testing.T) {
	// The defining property of general (vs forward) paths: a window may
	// span a loop back edge, so multi-iteration sequences have exact
	// counts.
	prog := chainProg([]bool{true, true})
	pp := NewPathProfiler(prog, PathConfig{Depth: 15})
	feedWalk(pp, []ir.BlockID{0, 1, 0, 1, 0, 1})
	pf := pp.Profile()
	if got := pf.Freq(0, []ir.BlockID{0, 1, 0, 1}); got != 2 {
		t.Fatalf("two-iteration path freq = %d, want 2", got)
	}
	if got := pf.Freq(0, []ir.BlockID{1, 0, 1, 0}); got != 1 {
		t.Fatalf("offset two-iteration path freq = %d, want 1", got)
	}
}

func TestDepthLimitTrimsWindows(t *testing.T) {
	prog := chainProg([]bool{true, true, true, true})
	pp := NewPathProfiler(prog, PathConfig{Depth: 2})
	feedWalk(pp, []ir.BlockID{0, 1, 2, 3, 0, 1, 2, 3})
	pf := pp.Profile()
	// Windows never contain 3 branch blocks, so any 3-block sequence
	// (all blocks branchy here) beyond depth has count 0.
	if got := pf.Freq(0, []ir.BlockID{0, 1, 2}); got != 0 {
		t.Fatalf("beyond-depth freq = %d, want 0", got)
	}
	if got := pf.Freq(0, []ir.BlockID{1, 2}); got != 2 {
		t.Fatalf("within-depth freq = %d, want 2", got)
	}
}

func TestMaxBlocksCap(t *testing.T) {
	prog := chainProg([]bool{false, false, false, false, false, false})
	pp := NewPathProfiler(prog, PathConfig{Depth: 15, MaxBlocks: 3})
	feedWalk(pp, []ir.BlockID{0, 1, 2, 3, 4, 5})
	pf := pp.Profile()
	if got := pf.Freq(0, []ir.BlockID{2, 3, 4}); got != 1 {
		t.Fatalf("3-block window freq = %d, want 1", got)
	}
	if got := pf.Freq(0, []ir.BlockID{1, 2, 3, 4}); got != 0 {
		t.Fatalf("4-block seq beyond cap = %d, want 0", got)
	}
}

func TestTrimToDepth(t *testing.T) {
	prog := chainProg([]bool{true, false, true, true})
	pp := NewPathProfiler(prog, PathConfig{Depth: 3})
	feedWalk(pp, []ir.BlockID{0, 1, 2, 3})
	pf := pp.Profile()
	// Sequence 0,1,2,3 has 3 branch blocks (0,2,3); with one slot
	// reserved for extension only 2 may remain: trim to [2,3]? No:
	// trimming drops from the front until ≤ Depth-1 = 2 branches:
	// dropping 0 leaves [1,2,3] with branches {2,3} = 2.
	got := pf.TrimToDepth(0, []ir.BlockID{0, 1, 2, 3})
	want := []ir.BlockID{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("TrimToDepth = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TrimToDepth = %v, want %v", got, want)
		}
	}
}

func TestMostLikelyPathSuccessor(t *testing.T) {
	prog := chainProg([]bool{true, true, true})
	pp := NewPathProfiler(prog, PathConfig{Depth: 15})
	// After [0,1], block 2 follows twice and block 0 once.
	feedWalk(pp, []ir.BlockID{0, 1, 2, 0, 1, 2, 0, 1, 0})
	pf := pp.Profile()
	succ, f := pf.MostLikelyPathSuccessor(0, []ir.BlockID{0, 1})
	if succ != 2 || f != 2 {
		t.Fatalf("MLPS([0,1]) = (b%d, %d), want (b2, 2)", succ, f)
	}
	if s, f := pf.MostLikelyPathSuccessor(0, []ir.BlockID{9}); s != ir.NoBlock || f != 0 {
		t.Fatalf("MLPS(unseen) = (b%d, %d), want (none, 0)", s, f)
	}
}

func TestFigure1PathProfilesDisambiguate(t *testing.T) {
	// Paper Figure 1: edge profiles bound f(ABC) only to [500, 1000];
	// path profiles give it exactly. Blocks: A=0, X=1, B=2, C=3, Y=4.
	bd := ir.NewBuilder("fig1", 8)
	pb := bd.Proc("main")
	bbs := pb.NewBlocks(6)
	a, x, b, c, y, exit := bbs[0], bbs[1], bbs[2], bbs[3], bbs[4], bbs[5]
	a.Add(ir.MovI(1, 0))
	a.Br(1, b.ID(), x.ID())
	x.Jmp(b.ID())
	b.Add(ir.MovI(2, 0))
	b.Br(2, c.ID(), y.ID())
	c.Jmp(exit.ID())
	y.Jmp(exit.ID())
	exit.Ret(0)
	prog := bd.Finish()

	ep := NewEdgeProfiler(prog)
	pp := NewPathProfiler(prog, PathConfig{})
	obs := Multi{ep, pp}
	// Scenario: ABC 500 times, XBY 500 times. Edge counts then show
	// A→B 500, X→B 500, B→C 500, B→Y 500: perfectly ambiguous.
	for i := 0; i < 500; i++ {
		feedWalk(obs, []ir.BlockID{0, 2, 3, 5})
		feedWalk(obs, []ir.BlockID{1, 2, 4, 5})
	}
	e := ep.Profile()
	if e.EdgeFreq(0, 0, 2) != 500 || e.EdgeFreq(0, 1, 2) != 500 ||
		e.EdgeFreq(0, 2, 3) != 500 || e.EdgeFreq(0, 2, 4) != 500 {
		t.Fatal("edge counts not as constructed")
	}
	pf := pp.Profile()
	if got := pf.Freq(0, []ir.BlockID{0, 2, 3}); got != 500 {
		t.Fatalf("f(ABC) = %d, want exactly 500", got)
	}
	if got := pf.Freq(0, []ir.BlockID{0, 2, 4}); got != 0 {
		t.Fatalf("f(ABY) = %d, want exactly 0", got)
	}
}

func TestEdgeProfilerQueries(t *testing.T) {
	prog := chainProg([]bool{true, true, true})
	ep := NewEdgeProfiler(prog)
	feedWalk(ep, []ir.BlockID{0, 1, 2, 0, 1, 0})
	e := ep.Profile()
	if e.Entries(0) != 1 {
		t.Fatalf("entries = %d", e.Entries(0))
	}
	if e.BlockFreq(0, 0) != 3 || e.BlockFreq(0, 1) != 2 || e.BlockFreq(0, 2) != 1 {
		t.Fatal("block counts wrong")
	}
	if s, f := e.MostLikelySucc(0, 0); s != 1 || f != 2 {
		t.Fatalf("MostLikelySucc(0) = (b%d,%d)", s, f)
	}
	if p, f := e.MostLikelyPred(0, 0); p != 1 || f != 1 {
		// predecessors of 0: from 2 once, from 1 once; tie toward b1.
		t.Fatalf("MostLikelyPred(0) = (b%d,%d), want (b1,1)", p, f)
	}
	order := e.BlocksByFreq(0)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("BlocksByFreq = %v", order)
	}
}

func TestPathProfileMatchesEdgeProfileOnPointQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	branchy := make([]bool, 12)
	for i := range branchy {
		branchy[i] = rng.Intn(2) == 0
	}
	branchy[0] = true
	prog := chainProg(branchy)
	ep := NewEdgeProfiler(prog)
	pp := NewPathProfiler(prog, PathConfig{Depth: 5})
	obs := Multi{ep, pp}
	for a := 0; a < 20; a++ {
		walk := legalWalk(prog, rng, 50+rng.Intn(100))
		feedWalk(obs, walk)
	}
	e, pf := ep.Profile(), pp.Profile()
	for b := 0; b < 12; b++ {
		if e.BlockFreq(0, ir.BlockID(b)) != pf.BlockFreq(0, ir.BlockID(b)) {
			t.Fatalf("block b%d: edge %d vs path %d", b,
				e.BlockFreq(0, ir.BlockID(b)), pf.BlockFreq(0, ir.BlockID(b)))
		}
		for to := 0; to < 12; to++ {
			ef := e.EdgeFreq(0, ir.BlockID(b), ir.BlockID(to))
			pfq := pf.EdgeFreq(0, ir.BlockID(b), ir.BlockID(to))
			if ef != pfq {
				t.Fatalf("edge b%d->b%d: edge %d vs path %d", b, to, ef, pfq)
			}
		}
	}
}

// TestOracleEquivalence is the central property test: on random CFGs
// and random walks (including nested activations), the efficient
// profiler and the brute-force oracle agree on every queried sequence.
func TestOracleEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		branchy := make([]bool, n)
		for i := range branchy {
			branchy[i] = rng.Intn(3) > 0
		}
		prog := chainProg(branchy)
		depth := 1 + rng.Intn(5)
		maxBlocks := 2 + rng.Intn(12)
		cfgP := PathConfig{Depth: depth, MaxBlocks: maxBlocks}
		pp := NewPathProfiler(prog, cfgP)
		op := NewOraclePathProfiler(prog, cfgP)
		obs := Multi{pp, op}

		var walks [][]ir.BlockID
		for a := 0; a < 1+rng.Intn(5); a++ {
			w := legalWalk(prog, rng, 5+rng.Intn(120))
			walks = append(walks, w)
			// Occasionally nest a recursive activation mid-walk.
			if rng.Intn(2) == 0 {
				obs.EnterProc(0, w[0])
				for i, b := range w {
					if i > 0 {
						obs.Edge(0, w[i-1], b)
					}
					obs.Block(0, b)
					if i == len(w)/2 {
						inner := legalWalk(prog, rng, 5+rng.Intn(40))
						walks = append(walks, inner)
						feedWalk(obs, inner)
					}
				}
				obs.ExitProc(0)
			} else {
				feedWalk(obs, w)
			}
		}
		pf := pp.Profile()
		// Query every subsequence of every walk up to 6 blocks, plus
		// random garbage sequences.
		for _, w := range walks {
			for s := 0; s < len(w); s++ {
				for l := 1; l <= 6 && s+l <= len(w); l++ {
					seq := w[s : s+l]
					if pf.Freq(0, seq) != op.Freq(0, seq) {
						t.Logf("seed %d: Freq(%s) = %d, oracle %d",
							seed, FmtSeq(seq), pf.Freq(0, seq), op.Freq(0, seq))
						return false
					}
				}
			}
		}
		for q := 0; q < 30; q++ {
			l := 1 + rng.Intn(4)
			seq := make([]ir.BlockID, l)
			for i := range seq {
				seq[i] = ir.BlockID(rng.Intn(n))
			}
			if pf.Freq(0, seq) != op.Freq(0, seq) {
				t.Logf("seed %d: random Freq(%s) = %d, oracle %d",
					seed, FmtSeq(seq), pf.Freq(0, seq), op.Freq(0, seq))
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRecursionKeepsWindowsSeparate(t *testing.T) {
	prog := chainProg([]bool{true, true, true, true})
	pp := NewPathProfiler(prog, PathConfig{Depth: 15})
	// Outer activation walks 0,1; inner activation walks 2,3; outer
	// resumes with 2. The sequence [1,2] must NOT be counted (the 2 ran
	// in a different activation), but outer [0,1,2] must be.
	pp.EnterProc(0, 0)
	pp.Block(0, 0)
	pp.Block(0, 1)
	pp.EnterProc(0, 2)
	pp.Block(0, 2)
	pp.Block(0, 3)
	pp.ExitProc(0)
	pp.Block(0, 2)
	pp.ExitProc(0)
	pf := pp.Profile()
	if got := pf.Freq(0, []ir.BlockID{0, 1, 2}); got != 1 {
		t.Fatalf("outer path [0,1,2] freq = %d, want 1", got)
	}
	if got := pf.Freq(0, []ir.BlockID{3, 2}); got != 0 {
		t.Fatalf("cross-activation [3,2] freq = %d, want 0", got)
	}
	if got := pf.Freq(0, []ir.BlockID{2, 3}); got != 1 {
		t.Fatalf("inner path [2,3] freq = %d, want 1", got)
	}
}

func TestInterningBoundsNodeCount(t *testing.T) {
	prog := chainProg([]bool{true, true})
	pp := NewPathProfiler(prog, PathConfig{Depth: 3})
	walk := make([]ir.BlockID, 0, 20000)
	for i := 0; i < 10000; i++ {
		walk = append(walk, 0, 1)
	}
	feedWalk(pp, walk)
	nodes, edges := pp.Stats()
	if edges < 19000 {
		t.Fatalf("edges = %d, expected ~20k", edges)
	}
	if nodes > 64 {
		t.Fatalf("nodes = %d; interning failed, node count must stay "+
			"proportional to distinct paths", nodes)
	}
}

func TestProfilerOnRealProgram(t *testing.T) {
	// End-to-end: run the interpreter over a loop program and check the
	// path profile sees the loop's dominant path.
	bd := ir.NewBuilder("loop", 8)
	pb := bd.Proc("main")
	entry, head, body, exit := pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	entry.Add(ir.MovI(1, 0))
	entry.Jmp(head.ID())
	head.Add(ir.CmpLTI(2, 1, 50))
	head.Br(2, body.ID(), exit.ID())
	body.Add(ir.AddI(1, 1, 1))
	body.Jmp(head.ID())
	exit.Ret(1)
	prog := bd.Finish()

	pp := NewPathProfiler(prog, PathConfig{})
	if _, err := interp.Run(prog, interp.Config{Observer: pp}); err != nil {
		t.Fatal(err)
	}
	pf := pp.Profile()
	hb := []ir.BlockID{head.ID(), body.ID()}
	if got := pf.Freq(0, hb); got != 50 {
		t.Fatalf("f(head,body) = %d, want 50", got)
	}
	if got := pf.Freq(0, []ir.BlockID{head.ID(), exit.ID()}); got != 1 {
		t.Fatalf("f(head,exit) = %d, want 1", got)
	}
	if w, d := pf.Windows(0); w != 103 || d == 0 {
		// entry + head + (body+head)*50 + exit = 103 block events.
		t.Fatalf("windows = (%d,%d), want 103 total", w, d)
	}
}

func TestCrossActivationWindowsSpanCalls(t *testing.T) {
	prog := chainProg([]bool{true, true, true, true})
	pp := NewPathProfiler(prog, PathConfig{Depth: 15, CrossActivation: true})
	// Outer activation runs 0,1; a recursive activation runs 2,3; the
	// outer activation resumes with 2. Under cross-activation windows
	// the sequence 0,1,2,3,2 is one window of the procedure.
	pp.EnterProc(0, 0)
	pp.Block(0, 0)
	pp.Block(0, 1)
	pp.EnterProc(0, 2)
	pp.Block(0, 2)
	pp.Block(0, 3)
	pp.ExitProc(0)
	pp.Block(0, 2)
	pp.ExitProc(0)
	pf := pp.Profile()
	if got := pf.Freq(0, []ir.BlockID{0, 1, 2, 3, 2}); got != 1 {
		t.Fatalf("interleaved window freq = %d, want 1", got)
	}
	// Per-activation semantics would record [0,1,2] as contiguous; the
	// cross-activation stream interposes the inner blocks.
	if got := pf.Freq(0, []ir.BlockID{0, 1, 2, 3}); got != 1 {
		t.Fatalf("f(0,1,2,3) = %d, want 1 under cross-activation", got)
	}
	if got := pf.Freq(0, []ir.BlockID{1, 2, 3}); got != 1 {
		t.Fatalf("f(1,2,3) = %d", got)
	}
}

func TestCrossActivationMatchesDefaultWithoutRecursion(t *testing.T) {
	// Without recursion or interleaving, the two window policies agree.
	prog := chainProg([]bool{true, true, true})
	a := NewPathProfiler(prog, PathConfig{Depth: 6})
	b := NewPathProfiler(prog, PathConfig{Depth: 6, CrossActivation: true})
	walk := []ir.BlockID{0, 1, 2, 0, 1, 2, 0, 1}
	feedWalk(Multi{a, b}, walk)
	pa, pb := a.Profile(), b.Profile()
	for s := 0; s < len(walk); s++ {
		for l := 1; l <= 5 && s+l <= len(walk); l++ {
			seq := walk[s : s+l]
			if pa.Freq(0, seq) != pb.Freq(0, seq) {
				t.Fatalf("policies diverge on %s without recursion", FmtSeq(seq))
			}
		}
	}
}
