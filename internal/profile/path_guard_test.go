package profile

import (
	"testing"

	"pathsched/internal/ir"
)

// twoProcProg builds a program with two procedures so Enter/Exit events
// can legally carry different proc ids: proc 0 is a three-block jump
// chain, proc 1 a single returning block.
func twoProcProg() *ir.Program {
	bd := ir.NewBuilder("twoproc", 8)
	pb := bd.Proc("main")
	bbs := pb.NewBlocks(3)
	for i, bb := range bbs {
		bb.Add(ir.MovI(1, int64(i)))
		bb.Jmp(bbs[(i+1)%3].ID())
	}
	qb := bd.Proc("leaf")
	qb.NewBlock().Ret(0)
	return bd.Program()
}

// A mismatched ExitProc — one whose procedure is not the innermost live
// activation — must not pop the caller's window. The old unconditional
// pop discarded proc 0's activation here, so the window restarted at b1
// and the two-block path [b0,b1] was never counted.
func TestExitProcMismatchedDoesNotCorruptCallerWindow(t *testing.T) {
	prog := twoProcProg()
	pp := NewPathProfiler(prog, PathConfig{Depth: 15})

	pp.EnterProc(0, 0)
	pp.Block(0, 0)
	pp.ExitProc(1) // unbalanced: proc 1 never entered
	pp.Block(0, 1)
	pp.ExitProc(0)

	pf := pp.Profile()
	if got := pf.Freq(0, []ir.BlockID{0, 1}); got != 1 {
		t.Fatalf("Freq([b0,b1]) = %d, want 1: mismatched ExitProc corrupted the caller's window", got)
	}
}

// The same guard must keep a properly nested callee's exit working.
func TestExitProcBalancedStillPops(t *testing.T) {
	prog := twoProcProg()
	pp := NewPathProfiler(prog, PathConfig{Depth: 15})

	pp.EnterProc(0, 0)
	pp.Block(0, 0)
	pp.EnterProc(1, 0)
	pp.Block(1, 0)
	pp.ExitProc(1) // matched: pops the callee
	pp.Block(0, 1) // caller's window resumes at [b0]
	pp.ExitProc(0)

	pf := pp.Profile()
	if got := pf.Freq(0, []ir.BlockID{0, 1}); got != 1 {
		t.Fatalf("caller Freq([b0,b1]) = %d, want 1", got)
	}
	if got := pf.Freq(1, []ir.BlockID{0}); got != 1 {
		t.Fatalf("callee Freq([b0]) = %d, want 1", got)
	}
}

// An unbalanced event stream must leave later, well-formed activations
// intact: after a stray exit drains nothing, a fresh Enter/Block/Exit
// round still profiles normally.
func TestExitProcUnbalancedStreamKeepsProfiling(t *testing.T) {
	prog := twoProcProg()
	pp := NewPathProfiler(prog, PathConfig{Depth: 15})

	pp.ExitProc(0) // stray exit on an empty stack
	pp.EnterProc(0, 0)
	pp.Block(0, 0)
	pp.Block(0, 1)
	pp.ExitProc(1) // stray exit for the wrong proc
	pp.Block(0, 2)
	pp.ExitProc(0)

	pf := pp.Profile()
	if got := pf.Freq(0, []ir.BlockID{0, 1, 2}); got != 1 {
		t.Fatalf("Freq([b0,b1,b2]) = %d, want 1", got)
	}
}

// TrimToDepth must never trim a sequence to nothing: with Depth=1 every
// conditional block overflows the reserved extension slot, and the old
// loop emptied the suffix entirely, making downstream Freq queries
// return 0 and silently disabling path guidance for the trace.
func TestTrimToDepthAllConditionalReturnsFinalBlock(t *testing.T) {
	prog := chainProg([]bool{true, true, true, true})
	pp := NewPathProfiler(prog, PathConfig{Depth: 1})
	feedWalk(pp, []ir.BlockID{0, 1, 2, 3})
	pf := pp.Profile()

	got := pf.TrimToDepth(0, []ir.BlockID{0, 1, 2, 3})
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("TrimToDepth = %v, want [3] (minimum suffix)", got)
	}
	// The minimum suffix must be queryable: single blocks are always
	// recorded, so guidance stays alive.
	if f := pf.Freq(0, got); f != 1 {
		t.Fatalf("Freq(min suffix) = %d, want 1", f)
	}
}

// The MaxBlocks arm of the trim loop gets the same floor.
func TestTrimToDepthMaxBlocksOneReturnsFinalBlock(t *testing.T) {
	prog := chainProg([]bool{false, false, false, false})
	pp := NewPathProfiler(prog, PathConfig{Depth: 15, MaxBlocks: 1})
	feedWalk(pp, []ir.BlockID{0, 1, 2, 3})
	pf := pp.Profile()

	got := pf.TrimToDepth(0, []ir.BlockID{0, 1, 2})
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("TrimToDepth = %v, want [2]", got)
	}
}

// Empty input stays empty — the floor applies to non-empty sequences.
func TestTrimToDepthEmptyInput(t *testing.T) {
	prog := chainProg([]bool{true, true})
	pp := NewPathProfiler(prog, PathConfig{Depth: 1})
	feedWalk(pp, []ir.BlockID{0, 1})
	if got := pp.Profile().TrimToDepth(0, nil); len(got) != 0 {
		t.Fatalf("TrimToDepth(nil) = %v, want empty", got)
	}
}
