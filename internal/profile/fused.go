package profile

import (
	"pathsched/internal/interp"
	"pathsched/internal/ir"
)

// Counter-fused profiling: the decoded engine's per-exit visit
// counters (interp.RunCounted) carry the complete point profile of a
// run, so the edge and call-graph profilers can be reconstructed after
// the fact instead of observing every event. Train and PointProfiles
// below are the entry points the pipeline uses — they pick the fastest
// run mode the program supports and fall back to per-event observers
// only for wide-register programs the decoded engine cannot execute.
// Reconstruction is exact: the profiles (and their serialized bytes)
// are identical to what the per-event observers would have gathered,
// which the differential tests in fused_test.go pin.

// EdgeProfilerFromCounts rebuilds the edge profiler a per-event run
// would have produced from a counted run's counters. Determinism:
// blocks and edges are inserted in decode order (block, exit slot,
// destination), and every EdgeProfile query and its serialization are
// insertion-order independent.
func EdgeProfilerFromCounts(prog *ir.Program, ec *interp.EdgeCounts) *EdgeProfiler {
	ep := NewEdgeProfiler(prog)
	for pid := range ep.procs {
		p := ir.ProcID(pid)
		pe := ep.procs[pid]
		pe.entries = ec.Entries(p)
		ec.ForEachBlock(p, func(b ir.BlockID, n int64) { pe.addBlock(b, n) })
		ec.ForEachEdge(p, func(from, to ir.BlockID, n int64) { pe.addEdge(from, to, n) })
	}
	return ep
}

// CallCountsFromCounts rebuilds the call-graph profile (dynamic
// caller→callee invocation counts, CallGraphProfiler semantics: one
// per executed call site, main's root entry excluded).
func CallCountsFromCounts(ec *interp.EdgeCounts) map[[2]ir.ProcID]int64 {
	m := map[[2]ir.ProcID]int64{}
	ec.ForEachCall(func(caller, callee ir.ProcID, n int64) {
		m[[2]ir.ProcID{caller, callee}] += n
	})
	return m
}

// Profiling scheme names reported in TrainStats.Scheme.
const (
	TrainSchemeWindow    = "window"   // Young–Smith sliding-window path profiler
	TrainSchemeBallLarus = "ballarus" // Ball–Larus numbering + k-iteration extension
)

// TrainStats describes how a Train (or PointProfiles) run executed,
// for cmd/experiments -profstats.
type TrainStats struct {
	Scheme    string // which profiling scheme produced the path profile
	Fused     bool   // edge/call profiles reconstructed from engine counters
	Batched   bool   // path profiler fed through interp.BatchObserver
	Batches   int64
	Records   int64
	Automaton []ProcAutomatonStats
}

// TrainingProfiles bundles everything one training run yields. BL is
// non-nil only for TrainBL runs: the raw numbered-path counters behind
// Path, kept for flow checking and diagnostics.
type TrainingProfiles struct {
	Edge  *EdgeProfile
	Path  *PathProfile
	Calls map[[2]ir.ProcID]int64
	BL    *BLProfiler
	Stats TrainStats
}

// Train executes prog once and gathers its edge, path and call-graph
// profiles, using the fastest mode the program supports: on decodable
// programs the path profiler observes batched edge records while the
// edge and call-graph halves are reconstructed from the engine's visit
// counters (no per-event work at all); wide-register programs fall
// back to the legacy per-event observers on the reference engine. Both
// modes produce identical profiles.
func Train(prog *ir.Program, cfg PathConfig) (*TrainingProfiles, error) {
	pp := NewPathProfiler(prog, cfg)
	eng := interp.EngineFor(prog)
	if eng.Fallback() {
		ep := NewEdgeProfiler(prog)
		cg := NewCallGraphProfiler()
		if _, err := interp.Run(prog, interp.Config{Observer: Multi{ep, pp, cg}}); err != nil {
			return nil, err
		}
		tp := &TrainingProfiles{Edge: ep.Profile(), Path: pp.Profile(), Calls: cg.Counts()}
		tp.Stats.Scheme = TrainSchemeWindow
		tp.Stats.Automaton = pp.AutomatonStats()
		return tp, nil
	}
	_, ec, err := eng.RunCounted(interp.Config{Batch: pp})
	if err != nil {
		return nil, err
	}
	tp := &TrainingProfiles{
		Edge:  EdgeProfilerFromCounts(prog, ec).Profile(),
		Path:  pp.Profile(),
		Calls: CallCountsFromCounts(ec),
	}
	tp.Stats.Scheme = TrainSchemeWindow
	tp.Stats.Fused, tp.Stats.Batched = true, true
	tp.Stats.Batches, tp.Stats.Records = pp.BatchStats()
	tp.Stats.Automaton = pp.AutomatonStats()
	return tp, nil
}

// TrainBL is Train with the Ball–Larus numbered path profiler in place
// of the window profiler: same run modes (batched records on decodable
// programs, per-event observers on fallback programs), same
// counter-fused edge/call reconstruction, but the path half costs one
// arithmetic add per edge record. The returned Path is the decoded
// k-iteration profile; BL keeps the raw numbered counters.
func TrainBL(prog *ir.Program, cfg BLConfig) (*TrainingProfiles, error) {
	bl := NewBLProfiler(prog, cfg)
	eng := interp.EngineFor(prog)
	if eng.Fallback() {
		ep := NewEdgeProfiler(prog)
		cg := NewCallGraphProfiler()
		if _, err := interp.Run(prog, interp.Config{Observer: Multi{ep, bl, cg}}); err != nil {
			return nil, err
		}
		tp := &TrainingProfiles{Edge: ep.Profile(), Path: bl.Profile(), Calls: cg.Counts(), BL: bl}
		tp.Stats.Scheme = TrainSchemeBallLarus
		tp.Stats.Automaton = bl.AutomatonStats()
		return tp, nil
	}
	_, ec, err := eng.RunCounted(interp.Config{Batch: bl})
	if err != nil {
		return nil, err
	}
	tp := &TrainingProfiles{
		Edge:  EdgeProfilerFromCounts(prog, ec).Profile(),
		Path:  bl.Profile(),
		Calls: CallCountsFromCounts(ec),
		BL:    bl,
	}
	tp.Stats.Scheme = TrainSchemeBallLarus
	tp.Stats.Fused, tp.Stats.Batched = true, true
	tp.Stats.Batches, tp.Stats.Records = bl.BatchStats()
	tp.Stats.Automaton = bl.AutomatonStats()
	return tp, nil
}

// PointProfiles executes prog once and gathers only its edge and
// call-graph profiles — on decodable programs the run carries no
// observer at all (pure counter-fused reconstruction), which is what
// layout-profiling runs want.
func PointProfiles(prog *ir.Program) (*EdgeProfile, map[[2]ir.ProcID]int64, error) {
	eng := interp.EngineFor(prog)
	if eng.Fallback() {
		lep := NewEdgeProfiler(prog)
		cg := NewCallGraphProfiler()
		if _, err := interp.Run(prog, interp.Config{Observer: Multi{lep, cg}}); err != nil {
			return nil, nil, err
		}
		return lep.Profile(), cg.Counts(), nil
	}
	_, ec, err := eng.RunCounted(interp.Config{})
	if err != nil {
		return nil, nil, err
	}
	return EdgeProfilerFromCounts(prog, ec).Profile(), CallCountsFromCounts(ec), nil
}
