package profile

import (
	"math/rand"
	"strings"
	"testing"

	"pathsched/internal/interp"
	"pathsched/internal/ir"
)

func TestEdgeProfileRoundTrip(t *testing.T) {
	prog := chainProg([]bool{true, true, false, true})
	ep := NewEdgeProfiler(prog)
	rng := rand.New(rand.NewSource(9))
	for a := 0; a < 5; a++ {
		feedWalk(ep, legalWalk(prog, rng, 40))
	}
	orig := ep.Profile()
	text := orig.WriteText()
	back, err := ParseEdgeProfile(len(prog.Procs), text)
	if err != nil {
		t.Fatalf("ParseEdgeProfile: %v\n%s", err, text)
	}
	if back.Entries(0) != orig.Entries(0) {
		t.Fatal("entries diverged")
	}
	for b := ir.BlockID(0); b < 4; b++ {
		if back.BlockFreq(0, b) != orig.BlockFreq(0, b) {
			t.Fatalf("block b%d diverged", b)
		}
		for to := ir.BlockID(0); to < 4; to++ {
			if back.EdgeFreq(0, b, to) != orig.EdgeFreq(0, b, to) {
				t.Fatalf("edge b%d->b%d diverged", b, to)
			}
		}
		s1, f1 := orig.MostLikelySucc(0, b)
		s2, f2 := back.MostLikelySucc(0, b)
		if s1 != s2 || f1 != f2 {
			t.Fatalf("MostLikelySucc(b%d) diverged", b)
		}
		p1, g1 := orig.MostLikelyPred(0, b)
		p2, g2 := back.MostLikelyPred(0, b)
		if p1 != p2 || g1 != g2 {
			t.Fatalf("MostLikelyPred(b%d) diverged", b)
		}
	}
}

func TestPathProfileRoundTrip(t *testing.T) {
	prog := chainProg([]bool{true, false, true, true, false})
	pp := NewPathProfiler(prog, PathConfig{Depth: 4, MaxBlocks: 10})
	rng := rand.New(rand.NewSource(17))
	var walks [][]ir.BlockID
	for a := 0; a < 6; a++ {
		w := legalWalk(prog, rng, 60)
		walks = append(walks, w)
		feedWalk(pp, w)
	}
	orig := pp.Profile()
	text := pp.WriteText()
	back, err := ParsePathProfile(prog, text)
	if err != nil {
		t.Fatalf("ParsePathProfile: %v", err)
	}
	if back.Depth() != 4 {
		t.Fatalf("depth = %d, want 4", back.Depth())
	}
	for _, w := range walks {
		for s := 0; s < len(w); s++ {
			for l := 1; l <= 5 && s+l <= len(w); l++ {
				seq := w[s : s+l]
				if orig.Freq(0, seq) != back.Freq(0, seq) {
					t.Fatalf("Freq(%s) diverged: %d vs %d",
						FmtSeq(seq), orig.Freq(0, seq), back.Freq(0, seq))
				}
			}
		}
	}
}

func TestPathProfileRoundTripOnRealRun(t *testing.T) {
	bd := ir.NewBuilder("loop", 8)
	pb := bd.Proc("main")
	entry, head, body, exit := pb.NewBlock(), pb.NewBlock(), pb.NewBlock(), pb.NewBlock()
	entry.Add(ir.MovI(1, 0))
	entry.Jmp(head.ID())
	head.Add(ir.CmpLTI(2, 1, 40))
	head.Br(2, body.ID(), exit.ID())
	body.Add(ir.AddI(1, 1, 1))
	body.Jmp(head.ID())
	exit.Ret(1)
	prog := bd.Finish()

	pp := NewPathProfiler(prog, PathConfig{})
	if _, err := interp.Run(prog, interp.Config{Observer: pp}); err != nil {
		t.Fatal(err)
	}
	back, err := ParsePathProfile(prog, pp.WriteText())
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Freq(0, []ir.BlockID{1, 2, 1, 2}); got != 39 {
		t.Fatalf("two-iteration freq after round trip = %d, want 39", got)
	}
}

// The parsed profile must carry the complete configuration the writer
// had — cache keys fingerprint the normalized config, so any field
// that fails to survive the round trip silently conflates
// differently-gathered profiles — and re-serializing must reproduce
// the exact bytes.
func TestPathProfileConfigRoundTrip(t *testing.T) {
	prog := chainProg([]bool{true, false, true})
	configs := []PathConfig{
		{},
		{Depth: 4, MaxBlocks: 10},
		{Depth: 7},
		{MaxBlocks: 9},
		{Depth: 4, MaxBlocks: 10, CrossActivation: true},
		{CrossActivation: true},
	}
	for _, cfg := range configs {
		pp := NewPathProfiler(prog, cfg)
		rng := rand.New(rand.NewSource(23))
		for a := 0; a < 4; a++ {
			feedWalk(pp, legalWalk(prog, rng, 30))
		}
		text := pp.WriteText()
		back, err := ParsePathProfiler(prog, text)
		if err != nil {
			t.Fatalf("%+v: ParsePathProfiler: %v", cfg, err)
		}
		if got, want := back.Profile().Config(), cfg.Normalized(); got != want {
			t.Errorf("%+v: config after round trip = %+v, want %+v", cfg, got, want)
		}
		if again := back.WriteText(); again != text {
			t.Errorf("%+v: serialize->parse->serialize not byte-identical:\n%s\nvs\n%s", cfg, text, again)
		}
	}
}

func TestProfileParseErrors(t *testing.T) {
	prog := chainProg([]bool{true, true})
	edgeCases := []string{
		"",
		"wrongheader\n",
		"edgeprofile\nblock b0: 5\n", // block before proc
		"edgeprofile\nproc 99 entries=1\n",
		"edgeprofile\nproc 0 entries=x\n",
		"edgeprofile\nproc 0 entries=1\nnonsense\n",
	}
	for _, text := range edgeCases {
		if _, err := ParseEdgeProfile(1, text); err == nil {
			t.Errorf("edge parse accepted %q", text)
		}
	}
	pathCases := []string{
		"",
		"edgeprofile\n",
		"pathprofile depth=zz\n",
		"pathprofile depth=4 maxblocks=8\npath 5: b0\n", // path before proc
		"pathprofile depth=4 maxblocks=8\nproc 0\npath x: b0\n",
		"pathprofile depth=4 maxblocks=8\nproc 0\npath 5:\n",
		"pathprofile depth=4 maxblocks=8\nproc 7\n",
	}
	for _, text := range pathCases {
		if _, err := ParsePathProfile(prog, text); err == nil {
			t.Errorf("path parse accepted %q", text)
		}
	}
}

func TestProfileTextIsStable(t *testing.T) {
	// Serialization must be deterministic (sorted) so diffs are usable.
	prog := chainProg([]bool{true, true, true})
	mk := func() (string, string) {
		ep := NewEdgeProfiler(prog)
		pp := NewPathProfiler(prog, PathConfig{Depth: 3})
		rng := rand.New(rand.NewSource(5))
		for a := 0; a < 4; a++ {
			w := legalWalk(prog, rng, 30)
			feedWalk(Multi{ep, pp}, w)
		}
		return ep.Profile().WriteText(), pp.WriteText()
	}
	e1, p1 := mk()
	e2, p2 := mk()
	if e1 != e2 || p1 != p2 {
		t.Fatal("profile serialization is not deterministic")
	}
	if !strings.Contains(p1, "pathprofile depth=3") {
		t.Fatalf("header malformed:\n%s", p1)
	}
}
