package profile

import (
	"sort"

	"pathsched/internal/interp"
	"pathsched/internal/ir"
)

// Ball–Larus numbered path profiling (PAPERS.md: Ball & Larus,
// "Efficient Path Profiling", MICRO-29), extended across loop
// iterations per D'Elia & Demetrescu's k-iteration path scheme.
//
// Where the window profiler pays an automaton transition (pointer
// chase + node count) on every executed edge, the Ball–Larus scheme
// numbers the acyclic paths of each procedure statically: every back
// edge (and every overflow "cut" edge, see below) ends a path, each
// remaining edge carries a precomputed integer increment, and the hot
// loop is one add into a register-resident accumulator per edge plus
// one dense counter increment per *completed* path — work proportional
// to path completions, not path lengths.
//
// Acyclic paths alone cannot see loop iteration counts or
// cross-iteration branch correlation — exactly why the paper chose
// general paths (§2.2). The k-iteration extension recovers that: each
// activation remembers its most recent completed path numbers in a
// small interned automaton (the same structure as the window
// profiler's, but stepped once per path completion instead of once per
// block). By default the retained count adapts per tuple so the
// previous paths cover Depth branches of context — matching the
// window profiler's horizon exactly — or a fixed k can be configured. Freezing decodes each recorded k-tuple back into its block
// sequence and replays the window profiler's exact trimming rule over
// it, producing a PathProfile that formation and the depth ablation
// consume unchanged. On loop-free procedures an activation is a single
// path, tuples degenerate to single paths, and the frozen profile is
// identical to the window profiler's (pinned by the differential
// tests); on loops it is the k-iteration approximation — block
// frequencies stay exact, edge frequencies stay exact for k ≥ 2, and
// the PathFlow bounds hold by the same suffix-counting construction.

// BLConfig parameterizes Ball–Larus profiling. Depth and MaxBlocks
// bound the decoded windows exactly like PathConfig (matched depths
// make window-vs-BL comparisons meaningful); Iterations is k, the
// number of consecutive completed paths an activation remembers.
type BLConfig struct {
	// Depth is the maximum number of conditional or multiway branches
	// a decoded path window may contain. Zero means DefaultDepth.
	Depth int
	// MaxBlocks caps a decoded window's block length. Zero means
	// DefaultMaxBlocks.
	MaxBlocks int
	// Iterations is the k-iteration extension depth: how many
	// consecutive completed paths concatenate into one observable
	// sequence. Zero (the default) means adaptive: an activation
	// retains as many previous paths as needed to cover Depth branches
	// of context behind its current path — the window profiler's trim
	// rule applied at path granularity — so matched-depth comparisons
	// see the same windows regardless of how many branches each
	// benchmark packs into one acyclic path. An explicit value fixes k;
	// values below 2 are raised to 2 (k = 1 would lose every
	// cross-back-edge block pair, and with it the exact edge
	// frequencies the flow checker and edge-based formation rely on).
	Iterations int
}

// blMaxTupleLen hard-caps an adaptive tuple's path count, bounding
// automaton growth on pathological procedures whose paths contain no
// conditional branches at all (context never fills the Depth budget).
const blMaxTupleLen = 64

// Normalized resolves zero fields to their defaults (see
// PathConfig.Normalized — cache keys over profiling parameters compare
// normalized configs). Iterations stays 0 for the adaptive mode.
func (c BLConfig) Normalized() BLConfig {
	if c.Depth == 0 {
		c.Depth = DefaultDepth
	}
	if c.MaxBlocks == 0 {
		c.MaxBlocks = DefaultMaxBlocks
	}
	if c.Iterations < 0 {
		c.Iterations = 0
	}
	if c.Iterations == 1 {
		c.Iterations = 2
	}
	return c
}

// blMaxPathsPerBlock caps a single block's outgoing path count. When
// the running sum of successor path counts would exceed it, the
// remaining edges become "cut" edges that end the current path exactly
// like a back edge — Ball & Larus's standard defense against CFGs
// whose acyclic path counts explode combinatorially.
const blMaxPathsPerBlock = 1 << 16

// blDenseLimit is the per-procedure total path count up to which
// counters live in one dense array; beyond it they fall back to a map.
const blDenseLimit = 1 << 20

// blEdge is one outgoing CFG edge with its numbering: traversing a
// non-cut edge adds val to the accumulator; traversing a cut edge
// (back edge or overflow cut) completes path id base+r+val and starts
// a new path at the target.
type blEdge struct {
	to  ir.BlockID
	val int64
	cut bool
}

// blNode is one state of the k-tuple automaton: the window of up to k
// most recently completed path ids, its occurrence count, and lazily
// created successor pointers keyed by the next completed id.
type blNode struct {
	seq   []int64
	count int64
	// succ caches the node reached when one more path id completes.
	// A tuple state is followed by very few distinct next ids (the
	// paths actually taken out of its last id's cut target), so a
	// linearly scanned slice beats a map on the per-completion path.
	succ []blSucc
}

type blSucc struct {
	id int64
	nd *blNode
}

// blProc is the per-procedure static numbering plus runtime counters.
type blProc struct {
	condBr   []bool
	k        int // fixed tuple length; 0 = adaptive (cover depth branches)
	depth    int
	rows     [][]blEdge // outgoing numbered edges, indexed by block
	numPaths []int64    // acyclic paths from each block to any path end
	offset   []int64    // global id offset per path-start block, -1 otherwise
	starts   []ir.BlockID
	startOff []int64 // offset[starts[i]], sorted increasing
	total    int64   // Σ numPaths over starts = count of distinct path ids

	dense  []int64 // path counters when total <= blDenseLimit
	sparse map[int64]int64

	completions int64

	// k-tuple automaton, interned like the window profiler's.
	roots     map[int64]*blNode
	intern    map[uint64][]*blNode
	nodesList []*blNode
	nodes     int

	// Per-path-id conditional branch counts, decoded lazily — only
	// consulted when the automaton creates a node, never in the
	// steady-state counting loop.
	pathBr map[int64]int
	brBuf  []ir.BlockID
}

// blAct is one live activation's profiling state: the base offset of
// the current path's start block, the Ball–Larus accumulator, and the
// tuple-automaton cursor. The whole struct stays register-friendly —
// the batch loop loads it once per batch.
type blAct struct {
	proc ir.ProcID
	base int64
	r    int64
	cur  *blNode
}

// BLProfiler implements interp.Observer and interp.BatchObserver,
// gathering Ball–Larus numbered path counts with the k-iteration
// extension.
type BLProfiler struct {
	cfg   BLConfig
	procs []*blProc
	acts  []blAct

	dynEdges  int64
	batches   int64
	batchRecs int64
}

// NewBLProfiler numbers every procedure of prog and returns a profiler
// ready to observe a run.
func NewBLProfiler(prog *ir.Program, cfg BLConfig) *BLProfiler {
	cfg = cfg.Normalized()
	bl := &BLProfiler{cfg: cfg, procs: make([]*blProc, len(prog.Procs))}
	for i, p := range prog.Procs {
		bl.procs[i] = newBLProc(p, cfg)
	}
	return bl
}

// newBLProc computes the static path numbering of p: back edges (and
// overflow cuts) removed, the remaining DAG's path counts accumulate
// in reverse topological order, and each edge's val is the prefix sum
// of its earlier siblings' path counts — the classic Ball–Larus
// assignment, under which the accumulated sum at a path's end is a
// unique dense id in [0, numPaths(start)).
func newBLProc(p *ir.Proc, cfg BLConfig) *blProc {
	n := len(p.Blocks)
	st := &blProc{
		condBr:   condBrMap(p),
		k:        cfg.Iterations,
		depth:    cfg.Depth,
		rows:     make([][]blEdge, n),
		numPaths: make([]int64, n),
		offset:   make([]int64, n),
		roots:    map[int64]*blNode{},
		intern:   map[uint64][]*blNode{},
		pathBr:   map[int64]int{},
	}
	for i := range st.offset {
		st.offset[i] = -1
	}
	g := ir.NewCFG(p)
	rpo := g.RPO()
	isStart := make([]bool, n)
	isStart[p.Entry().ID] = true

	// Reverse postorder is a topological order of the forward-edge
	// subgraph, so iterating it backwards sees every forward successor
	// before its predecessors.
	var uniq []ir.BlockID
	for i := len(rpo) - 1; i >= 0; i-- {
		b := rpo[i]
		// Duplicate successor targets collapse to one edge: the runtime
		// event stream identifies an edge only by (from, to).
		uniq = uniq[:0]
		for _, t := range g.Succs(b) {
			dup := false
			for _, u := range uniq {
				if u == t {
					dup = true
					break
				}
			}
			if !dup {
				uniq = append(uniq, t)
			}
		}
		if len(uniq) == 0 {
			st.numPaths[b] = 1 // a ret block ends exactly one path
			continue
		}
		row := make([]blEdge, 0, len(uniq))
		var acc int64
		for _, t := range uniq {
			cut := g.IsBackEdge(b, t)
			w := int64(1)
			if !cut {
				w = st.numPaths[t]
				if acc+w > blMaxPathsPerBlock {
					cut, w = true, 1
				}
			}
			if cut {
				isStart[t] = true
			}
			row = append(row, blEdge{to: t, val: acc, cut: cut})
			acc += w
		}
		st.rows[b] = row
		st.numPaths[b] = acc
	}

	// Path starts (entry + cut targets) get disjoint global id ranges,
	// assigned in reverse postorder for determinism.
	for _, b := range rpo {
		if !isStart[b] {
			continue
		}
		st.offset[b] = st.total
		st.starts = append(st.starts, b)
		st.startOff = append(st.startOff, st.total)
		st.total += st.numPaths[b]
	}
	if st.total <= blDenseLimit {
		st.dense = make([]int64, st.total)
	} else {
		st.sparse = map[int64]int64{}
	}
	return st
}

// record counts one completed path and advances the tuple automaton.
// Out-of-range ids (a corrupt or replayed event stream) are dropped
// defensively, mirroring the window profiler.
func (st *blProc) record(cur *blNode, id int64) *blNode {
	if id < 0 || id >= st.total {
		return cur
	}
	if st.dense != nil {
		st.dense[id]++
	} else {
		st.sparse[id]++
	}
	st.completions++
	return st.tupleStep(cur, id)
}

// tupleStep advances the k-tuple automaton by one completed path id,
// counting the resulting tuple. Structure and interning mirror the
// window profiler's pathNode automaton; it just steps once per path
// completion instead of once per executed block.
func (st *blProc) tupleStep(cur *blNode, id int64) *blNode {
	var nxt *blNode
	if cur == nil {
		nxt = st.roots[id]
	} else {
		for i := range cur.succ {
			if cur.succ[i].id == id {
				nxt = cur.succ[i].nd
				break
			}
		}
	}
	if nxt == nil {
		nxt = st.tupleStepNew(cur, id)
	}
	nxt.count++
	return nxt
}

func (st *blProc) tupleStepNew(cur *blNode, id int64) *blNode {
	var seq []int64
	if cur == nil {
		seq = []int64{id}
	} else {
		seq = make([]int64, 0, len(cur.seq)+1)
		seq = append(seq, cur.seq...)
		seq = append(seq, id)
		if st.k > 0 {
			if len(seq) > st.k {
				seq = seq[len(seq)-st.k:]
			}
		} else {
			// Adaptive: drop leading paths while the remaining previous
			// paths still hold at least depth branches of context for
			// windows ending anywhere in the last path (and never keep
			// fewer than two paths, preserving exact edge frequencies).
			ctx := 0
			for _, pid := range seq[:len(seq)-1] {
				ctx += st.pathBranches(pid)
			}
			for len(seq) > 2 && (len(seq) > blMaxTupleLen || ctx-st.pathBranches(seq[0]) >= st.depth) {
				ctx -= st.pathBranches(seq[0])
				seq = seq[1:]
			}
		}
	}
	nxt := st.internTuple(seq)
	if cur == nil {
		st.roots[id] = nxt
	} else {
		cur.succ = append(cur.succ, blSucc{id: id, nd: nxt})
	}
	return nxt
}

func (st *blProc) internTuple(seq []int64) *blNode {
	h := blSeqHash(seq)
	for _, nd := range st.intern[h] {
		if blSeqEqual(nd.seq, seq) {
			return nd
		}
	}
	nd := &blNode{seq: seq}
	st.intern[h] = append(st.intern[h], nd)
	st.nodesList = append(st.nodesList, nd)
	st.nodes++
	return nd
}

// pathBranches returns how many conditional/multiway branch blocks
// path id contains, decoding it on first use and caching the count.
func (st *blProc) pathBranches(id int64) int {
	if n, ok := st.pathBr[id]; ok {
		return n
	}
	st.brBuf = st.brBuf[:0]
	st.brBuf, _ = st.appendPath(st.brBuf, id)
	n := 0
	for _, b := range st.brBuf {
		if st.condBr[b] {
			n++
		}
	}
	st.pathBr[id] = n
	return n
}

func blSeqHash(seq []int64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range seq {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

func blSeqEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EnterProc implements interp.Observer.
func (bl *BLProfiler) EnterProc(p ir.ProcID, entry ir.BlockID) {
	st := bl.procs[p]
	base := int64(-1)
	if int(entry) < len(st.offset) {
		base = st.offset[entry]
	}
	bl.acts = append(bl.acts, blAct{proc: p, base: base})
}

// ExitProc implements interp.Observer: the activation's in-flight path
// ends at its ret block (weight 1, so the accumulator already holds
// the final id). Mismatched exits are ignored defensively, mirroring
// PathProfiler.ExitProc.
func (bl *BLProfiler) ExitProc(p ir.ProcID) {
	n := len(bl.acts)
	if n == 0 || bl.acts[n-1].proc != p {
		return
	}
	a := &bl.acts[n-1]
	if a.base >= 0 {
		bl.procs[p].record(a.cur, a.base+a.r)
	}
	bl.acts = bl.acts[:n-1]
}

// Edge implements interp.Observer: one arithmetic increment per edge,
// one counter increment per completed path.
func (bl *BLProfiler) Edge(p ir.ProcID, from, to ir.BlockID) {
	bl.dynEdges++
	n := len(bl.acts)
	if n == 0 || bl.acts[n-1].proc != p {
		return // events from an unmatched activation; ignore defensively
	}
	a := &bl.acts[n-1]
	st := bl.procs[p]
	if int(from) >= len(st.rows) {
		return
	}
	row := st.rows[from]
	for j := range row {
		if row[j].to != to {
			continue
		}
		if e := &row[j]; e.cut {
			a.cur = st.record(a.cur, a.base+a.r+e.val)
			a.base = st.offset[to]
			a.r = 0
		} else {
			a.r += e.val
		}
		return
	}
}

// Block implements interp.Observer. All accounting rides on edges;
// the entry block is covered by EnterProc and path completion.
func (bl *BLProfiler) Block(p ir.ProcID, b ir.BlockID) {}

// BeginProc implements interp.BatchObserver.
func (bl *BLProfiler) BeginProc(p ir.ProcID, entry ir.BlockID) { bl.EnterProc(p, entry) }

// EndProc implements interp.BatchObserver.
func (bl *BLProfiler) EndProc(p ir.ProcID) { bl.ExitProc(p) }

// EdgeBatch implements interp.BatchObserver: the hot path of batched
// training runs. The activation state is loaded into locals once per
// batch; the steady-state per-record work is one small row scan and
// one add into a local — no stores at all until a path completes.
func (bl *BLProfiler) EdgeBatch(p ir.ProcID, recs []interp.EdgeRec) {
	bl.batches++
	bl.batchRecs += int64(len(recs))
	bl.dynEdges += int64(len(recs))
	if len(recs) == 0 {
		return
	}
	top := len(bl.acts) - 1
	if top < 0 || bl.acts[top].proc != p {
		return // records from an unmatched activation; ignore defensively
	}
	a := &bl.acts[top]
	st := bl.procs[p]
	rows := st.rows
	base, r, cur := a.base, a.r, a.cur
	for i := range recs {
		row := rows[recs[i].From]
		to := recs[i].To
		for j := range row {
			if row[j].to != to {
				continue
			}
			if e := &row[j]; e.cut {
				cur = st.record(cur, base+r+e.val)
				base = st.offset[to]
				r = 0
			} else {
				r += e.val
			}
			break
		}
	}
	a.base, a.r, a.cur = base, r, cur
}

var (
	_ interp.Observer      = (*BLProfiler)(nil)
	_ interp.BatchObserver = (*BLProfiler)(nil)
)

// Config returns the profiler's normalized configuration.
func (bl *BLProfiler) Config() BLConfig { return bl.cfg }

// NumPaths returns how many distinct static path ids procedure p was
// numbered with.
func (bl *BLProfiler) NumPaths(p ir.ProcID) int64 { return bl.procs[p].total }

// Completions returns how many paths completed in procedure p (= its
// activations plus its back-edge/cut traversals).
func (bl *BLProfiler) Completions(p ir.ProcID) int64 { return bl.procs[p].completions }

// ForEachPath calls fn for every counted path id of procedure p in
// increasing id order.
func (bl *BLProfiler) ForEachPath(p ir.ProcID, fn func(id, n int64)) {
	st := bl.procs[p]
	if st.dense != nil {
		for id, n := range st.dense {
			if n != 0 {
				fn(int64(id), n)
			}
		}
		return
	}
	ids := make([]int64, 0, len(st.sparse))
	for id := range st.sparse {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fn(id, st.sparse[id])
	}
}

// ForEachCutEdge calls fn for every path-ending edge of procedure p
// (back edges and overflow cuts), in block order.
func (bl *BLProfiler) ForEachCutEdge(p ir.ProcID, fn func(from, to ir.BlockID)) {
	st := bl.procs[p]
	for from, row := range st.rows {
		for _, e := range row {
			if e.cut {
				fn(ir.BlockID(from), e.to)
			}
		}
	}
}

// DecodePath maps a path id back to its block sequence. cutTo is the
// target of the path-ending cut edge, or ir.NoBlock when the path ends
// at a return.
func (bl *BLProfiler) DecodePath(p ir.ProcID, id int64) (blocks []ir.BlockID, cutTo ir.BlockID) {
	return bl.procs[p].appendPath(nil, id)
}

// appendPath appends the decoded blocks of id to out. The decode walks
// the numbering in reverse: at each block, the taken edge is the last
// one whose val does not exceed the remaining id.
func (st *blProc) appendPath(out []ir.BlockID, id int64) ([]ir.BlockID, ir.BlockID) {
	s := sort.Search(len(st.startOff), func(i int) bool { return st.startOff[i] > id }) - 1
	if s < 0 {
		return out, ir.NoBlock
	}
	b := st.starts[s]
	rem := id - st.startOff[s]
	for {
		out = append(out, b)
		row := st.rows[b]
		if len(row) == 0 {
			return out, ir.NoBlock // ret block, rem == 0
		}
		k := len(row) - 1
		for k > 0 && row[k].val > rem {
			k--
		}
		e := row[k]
		if e.cut {
			return out, e.to // rem == e.val: the cut traversal ends the path
		}
		rem -= e.val
		b = e.to
	}
}

// Stats reports distinct tuple-automaton nodes and dynamic edges
// observed, mirroring PathProfiler.Stats.
func (bl *BLProfiler) Stats() (nodes int, dynEdges int64) {
	for _, st := range bl.procs {
		nodes += st.nodes
	}
	return nodes, bl.dynEdges
}

// AutomatonStats reports the k-tuple automaton size per procedure.
// Dense reports whether the path counters use the dense array.
func (bl *BLProfiler) AutomatonStats() []ProcAutomatonStats {
	out := make([]ProcAutomatonStats, len(bl.procs))
	for i, st := range bl.procs {
		out[i] = ProcAutomatonStats{Proc: ir.ProcID(i), Nodes: st.nodes, Dense: st.dense != nil}
	}
	return out
}

// BatchStats reports EdgeBatch delivery statistics (zero on per-event
// runs).
func (bl *BLProfiler) BatchStats() (batches, records int64) {
	return bl.batches, bl.batchRecs
}

// Profile freezes the gathered tuples into a PathProfile: each
// recorded k-tuple is decoded into its concatenated block sequence
// (consecutive paths are contiguous — each ends with the cut edge the
// next one starts at), and the window profiler's exact trimming rule
// slides over it. Only windows ending inside the tuple's *last* path
// are counted — every executed block of a completed activation lies in
// the last path of exactly one recorded tuple, so no window is counted
// twice. Each window adds its count to every suffix, the same
// construction Profile uses, so all PathProfile queries (and the
// PathFlow bounds) behave identically.
func (bl *BLProfiler) Profile() *PathProfile {
	cfg := PathConfig{Depth: bl.cfg.Depth, MaxBlocks: bl.cfg.MaxBlocks}
	out := &PathProfile{cfg: cfg, procs: make([]*procPathIndex, len(bl.procs))}
	for i, st := range bl.procs {
		// Stage 1: aggregate. Overlapping tuples from the same loop keep
		// producing the same few maximal windows, so collapse the
		// (#tuples × end positions) window instances into distinct
		// window contents first. Keys are substrings of each tuple's one
		// concatenation key (4 fixed bytes per block), so this stage
		// allocates one string per counted tuple, not per window.
		maxw := map[string]int64{}
		var blocks []ir.BlockID
		for _, nd := range st.nodesList {
			if nd.count == 0 {
				continue
			}
			blocks = blocks[:0]
			lastStart := 0
			for t, id := range nd.seq {
				if t == len(nd.seq)-1 {
					lastStart = len(blocks)
				}
				blocks, _ = st.appendPath(blocks, id)
			}
			key := seqKey(blocks)
			start, branches := 0, 0
			for e := 0; e < len(blocks); e++ {
				if st.condBr[blocks[e]] {
					branches++
				}
				for branches > cfg.Depth || e-start+1 > cfg.MaxBlocks {
					if st.condBr[blocks[start]] {
						branches--
					}
					start++
				}
				if e < lastStart {
					continue
				}
				maxw[key[4*start:4*(e+1)]] += nd.count
			}
		}

		// Stage 2: sweep, exactly as the window profiler's freeze does —
		// each distinct maximal window sliced per suffix, so suffixes
		// shared between windows aggregate in the map and nothing
		// allocates per-suffix strings.
		var nsuf int
		for wk := range maxw { //lint:ordered — commutative size sum
			nsuf += len(wk) / 4
		}
		idx := &procPathIndex{
			condBr: st.condBr,
			freq:   make(map[string]int64, nsuf),
		}
		// Every visit order produces the same freq table: += into a map.
		for wk, n := range maxw { //lint:ordered
			for s := 0; s < len(wk); s += 4 {
				idx.freq[wk[s:]] += n
			}
			idx.windows += n
			idx.distinct++
		}
		out.procs[i] = idx
	}
	return out
}
