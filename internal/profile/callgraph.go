package profile

import "pathsched/internal/ir"

// CallGraphProfiler is an interp.Observer that counts dynamic
// caller→callee invocation edges, the input weights for Pettis–Hansen
// procedure placement (§2.3, [15]). It derives the caller from the
// properly nested Enter/Exit event stream.
type CallGraphProfiler struct {
	stack  []ir.ProcID
	counts map[[2]ir.ProcID]int64
}

// NewCallGraphProfiler returns an empty call-graph profiler.
func NewCallGraphProfiler() *CallGraphProfiler {
	return &CallGraphProfiler{counts: map[[2]ir.ProcID]int64{}}
}

// EnterProc implements interp.Observer.
func (cg *CallGraphProfiler) EnterProc(p ir.ProcID, entry ir.BlockID) {
	if n := len(cg.stack); n > 0 {
		cg.counts[[2]ir.ProcID{cg.stack[n-1], p}]++
	}
	cg.stack = append(cg.stack, p)
}

// ExitProc implements interp.Observer.
func (cg *CallGraphProfiler) ExitProc(p ir.ProcID) {
	if n := len(cg.stack); n > 0 {
		cg.stack = cg.stack[:n-1]
	}
}

// Edge implements interp.Observer.
func (cg *CallGraphProfiler) Edge(p ir.ProcID, from, to ir.BlockID) {}

// Block implements interp.Observer.
func (cg *CallGraphProfiler) Block(p ir.ProcID, b ir.BlockID) {}

// Counts returns the dynamic (caller, callee) edge counts. The map is
// live; callers must not mutate it.
func (cg *CallGraphProfiler) Counts() map[[2]ir.ProcID]int64 { return cg.counts }
